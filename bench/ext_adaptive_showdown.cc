// Extension: self-tuning policies head to head. The paper's ASB adapts a
// spatial/LRU mix from overflow-buffer feedback; ARC (Megiddo & Modha,
// 2003) adapts a recency/frequency mix from ghost-list feedback; 2Q and
// LRU-2 are the static frequency-aware classics. This bench compares them
// across all query families and on the Fig. 14 mixed workload — the
// question being whether generic adaptivity (ARC) can match adaptivity
// that understands the *spatial* structure of the working set (ASB).

#include <algorithm>
#include <cstdint>

#include "bench_util.h"
#include "obs/collector.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::vector<std::string> policies{"ASB", "ARC", "2Q", "GCLOCK",
                                          "LRU-2"};
  bench::PrintGainTables(scenario, bench::AllSets(), policies,
                         {0.006, 0.047},
                         "Extension — adaptive policy shootdown");

  // The mixed workload that drives Fig. 14: does each adaptive policy keep
  // up when the distribution changes mid-stream?
  const workload::QuerySet mixed = workload::ConcatQuerySets(
      {sim::StandardQuerySet(scenario, workload::QueryFamily::kIntensified,
                             100),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kSimilar,
                             100)});
  sim::RunOptions options;
  options.buffer_frames = scenario.BufferFrames(0.047);
  const sim::RunResult lru = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "LRU", mixed, options);
  sim::Table table({"policy", "disk reads", "gain vs LRU"});
  table.AddRow({"LRU", std::to_string(lru.disk_reads), "+0.0%"});
  // The ASB run carries a collector so its self-tuning activity on the
  // drifting workload is visible, not just its end-to-end I/O.
  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector asb_collector(collect);
  for (const std::string& policy : policies) {
    options.collector = policy == "ASB" ? &asb_collector : nullptr;
    const sim::RunResult result = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, policy, mixed, options);
    table.AddRow({result.policy, std::to_string(result.disk_reads),
                  sim::FormatGain(sim::GainVersus(lru, result))});
  }
  table.Print("Extension — drifting workload " + mixed.name +
              " (4.7% buffer)");

  uint64_t down = 0, up = 0, tie = 0;
  size_t c_min = SIZE_MAX, c_max = 0;
  asb_collector.events().ForEach([&](const obs::Event& event) {
    if (event.kind != obs::EventKind::kAsbAdapt) return;
    if (event.delta < 0) ++down;
    else if (event.delta > 0) ++up;
    else ++tie;
    c_min = std::min(c_min, static_cast<size_t>(event.c));
    c_max = std::max(c_max, static_cast<size_t>(event.c));
  });
  std::printf(
      "\nASB adaptation on the drifting workload: %llu overflow hits "
      "(c down: %llu, up: %llu, unchanged: %llu), candidate set ranged "
      "%zu..%zu\n",
      static_cast<unsigned long long>(down + up + tie),
      static_cast<unsigned long long>(down),
      static_cast<unsigned long long>(up),
      static_cast<unsigned long long>(tie), c_min == SIZE_MAX ? 0 : c_min,
      c_max);
  return 0;
}
