// Extension: self-tuning policies head to head. The paper's ASB adapts a
// spatial/LRU mix from overflow-buffer feedback; ARC (Megiddo & Modha,
// 2003) adapts a recency/frequency mix from ghost-list feedback; 2Q and
// LRU-2 are the static frequency-aware classics. This bench compares them
// across all query families and on the Fig. 14 mixed workload — the
// question being whether generic adaptivity (ARC) can match adaptivity
// that understands the *spatial* structure of the working set (ASB).

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::vector<std::string> policies{"ASB", "ARC", "2Q", "GCLOCK",
                                          "LRU-2"};
  bench::PrintGainTables(scenario, bench::AllSets(), policies,
                         {0.006, 0.047},
                         "Extension — adaptive policy shootdown");

  // The mixed workload that drives Fig. 14: does each adaptive policy keep
  // up when the distribution changes mid-stream?
  const workload::QuerySet mixed = workload::ConcatQuerySets(
      {sim::StandardQuerySet(scenario, workload::QueryFamily::kIntensified,
                             100),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kSimilar,
                             100)});
  sim::RunOptions options;
  options.buffer_frames = scenario.BufferFrames(0.047);
  const sim::RunResult lru = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "LRU", mixed, options);
  sim::Table table({"policy", "disk reads", "gain vs LRU"});
  table.AddRow({"LRU", std::to_string(lru.disk_reads), "+0.0%"});
  for (const std::string& policy : policies) {
    const sim::RunResult result = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, policy, mixed, options);
    table.AddRow({result.policy, std::to_string(result.disk_reads),
                  sim::FormatGain(sim::GainVersus(lru, result))});
  }
  table.Print("Extension — drifting workload " + mixed.name +
              " (4.7% buffer)");
  return 0;
}
