// Reproduces the database/tree statistics the paper reports in Sec. 3:
// object counts, page counts, directory share (~2.8%), and tree height for
// both databases. Absolute counts scale with SDB_SCALE; the directory share
// and height behaviour are the comparable quantities.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace sdb;
  std::printf("== Database statistics (paper Sec. 3) ==\n");
  std::printf(
      "paper database 1: 1,641,079 objects, 58,405 pages "
      "(1,660 directory = 2.84%%), height 4\n");
  std::printf(
      "paper database 2: 572,694 objects, 21,501 pages "
      "(617 directory = 2.87%%), height n/a\n\n");

  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    const rtree::TreeStats& stats = scenario.tree_stats;
    std::printf(
        "  avg fill: %.1f / %u directory entries, %.1f / %u data entries\n",
        stats.avg_dir_fill, scenario.dataset.objects.empty() ? 0 : 51,
        stats.avg_data_fill, 42);
    std::printf("  coverage of the data space: %.1f%%\n\n",
                100.0 * workload::CoverageFraction(scenario.dataset));
  }
  return 0;
}
