// Reproduces the database/tree statistics the paper reports in Sec. 3:
// object counts, page counts, directory share (~2.8%), and tree height for
// both databases. Absolute counts scale with SDB_SCALE; the directory share
// and height behaviour are the comparable quantities.
//
// The live stats surface rides along: after the static statistics, a short
// uniform workload runs through a sharded BufferService and the service's
// Prometheus text exposition (svc::BufferService::StatsText) is printed —
// and written to SDB_BENCH_PROM when set — so the dump format is exercised
// on every bench run and scrapable from a file.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/access_context.h"
#include "rtree/rtree.h"
#include "svc/buffer_service.h"

namespace {

using namespace sdb;

/// Drives a small uniform window workload through a 4-shard service and
/// dumps the resulting live stats.
void PrintServiceStats(const sim::Scenario& scenario) {
  svc::BufferServiceConfig config;
  config.total_frames = std::max<size_t>(scenario.BufferFrames(0.012), 64);
  config.shard_count = 4;
  config.policy_spec = "ASB";
  config.collect_metrics = true;
  svc::BufferService service(*scenario.disk, config);
  const rtree::RTree tree =
      rtree::RTree::Open(scenario.disk.get(), &service, scenario.tree_meta);
  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100);
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx, [](const rtree::Entry&) {});
  }
  const std::string text = service.StatsText();
  std::printf("== Live service stats (Prometheus text exposition) ==\n%s\n",
              text.c_str());
  const std::string prom_path = bench::EnvOr("SDB_BENCH_PROM", "");
  if (!prom_path.empty()) {
    std::FILE* file = std::fopen(prom_path.c_str(), "w");
    if (file == nullptr || std::fputs(text.c_str(), file) < 0) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   prom_path.c_str());
    }
    if (file != nullptr) std::fclose(file);
  }
}

}  // namespace

int main() {
  using namespace sdb;
  std::printf("== Database statistics (paper Sec. 3) ==\n");
  std::printf(
      "paper database 1: 1,641,079 objects, 58,405 pages "
      "(1,660 directory = 2.84%%), height 4\n");
  std::printf(
      "paper database 2: 572,694 objects, 21,501 pages "
      "(617 directory = 2.87%%), height n/a\n\n");

  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    const rtree::TreeStats& stats = scenario.tree_stats;
    std::printf(
        "  avg fill: %.1f / %u directory entries, %.1f / %u data entries\n",
        stats.avg_dir_fill, scenario.dataset.objects.empty() ? 0 : 51,
        stats.avg_data_fill, 42);
    std::printf("  coverage of the data space: %.1f%%\n\n",
                100.0 * workload::CoverageFraction(scenario.dataset));
    if (kind == sim::DatabaseKind::kUsLike) PrintServiceStats(scenario);
  }
  return 0;
}
