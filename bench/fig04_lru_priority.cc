// Figure 4: performance gain of priority-based LRU (LRU-P) versus LRU for
// the uniform and intensified query sets on both databases, across the
// buffer-size ladder. Expected shape: clear gains for small buffers (the
// upper index levels are worth protecting), shrinking — and for point/small
// window queries on database 1 sometimes turning negative — as the buffer
// grows.

#include <string>
#include <vector>

#include "bench_util.h"

namespace {

/// Sec. 3.2's textual claim: "no differences between both approaches in
/// the case of larger buffers ... Using small buffer sizes, LRU-P has
/// beaten LRU-T for all investigated query sets."
void CompareTypeVsPriority(const sdb::sim::Scenario& scenario) {
  using namespace sdb;
  sim::Table table({"query set", "buffer", "LRU-T", "LRU-P"});
  for (const bench::SetSpec& spec :
       {bench::SetSpec{workload::QueryFamily::kUniform, 333},
        bench::SetSpec{workload::QueryFamily::kSimilar, 100},
        bench::SetSpec{workload::QueryFamily::kIntensified, 0}}) {
    const workload::QuerySet queries =
        sim::StandardQuerySet(scenario, spec.family, spec.ex);
    for (const double fraction : {0.003, 0.047}) {
      sim::RunOptions options;
      options.buffer_frames = scenario.BufferFrames(fraction);
      const sim::RunResult lru = sim::RunQuerySet(
          scenario.disk.get(), scenario.tree_meta, "LRU", queries, options);
      const sim::RunResult lru_t = sim::RunQuerySet(
          scenario.disk.get(), scenario.tree_meta, "LRU-T", queries,
          options);
      const sim::RunResult lru_p = sim::RunQuerySet(
          scenario.disk.get(), scenario.tree_meta, "LRU-P", queries,
          options);
      table.AddRow({queries.name, sim::FormatPercent(fraction),
                    sim::FormatGain(sim::GainVersus(lru, lru_t)),
                    sim::FormatGain(sim::GainVersus(lru, lru_p))});
    }
  }
  table.Print("Sec. 3.2 — type-based vs priority-based LRU, " +
              scenario.name);
}

}  // namespace

int main() {
  using namespace sdb;
  using bench::SetSpec;

  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    if (kind == sim::DatabaseKind::kUsLike) {
      CompareTypeVsPriority(scenario);
    }
    // Rows = query sets, one gain column per buffer size.
    for (const std::vector<SetSpec>& sets :
         {bench::UniformSets(), bench::IntensifiedSets()}) {
      std::vector<std::string> header{"query set"};
      for (const double fraction : sim::kBufferFractions) {
        header.push_back(sim::FormatPercent(fraction) + " buf");
      }
      sim::Table table(header);
      for (const SetSpec& spec : sets) {
        const workload::QuerySet queries =
            sim::StandardQuerySet(scenario, spec.family, spec.ex);
        std::vector<std::string> row{queries.name};
        for (const double fraction : sim::kBufferFractions) {
          sim::RunOptions options;
          options.buffer_frames = scenario.BufferFrames(fraction);
          const sim::RunResult lru =
              sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                               "LRU", queries, options);
          const sim::RunResult lru_p =
              sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                               "LRU-P", queries, options);
          row.push_back(sim::FormatGain(sim::GainVersus(lru, lru_p)));
        }
        table.AddRow(std::move(row));
      }
      table.Print("Fig. 4 — LRU-P gain vs LRU, " + scenario.name);
    }
  }
  return 0;
}
