// Figure 13 — the paper's headline comparison: pure spatial A, static SLRU
// (25% candidate set), the self-tuning adaptable spatial buffer (ASB), and
// LRU-2, all as gains versus LRU, on both databases. Expected shape: ASB
// behaves like A where A wins and unlike A where A loses; unlike A it gains
// (or at worst roughly ties) on *every* distribution, with peaks around
// 15-25%; LRU-2 remains strong on intensified sets but pays for it with
// history state for pages outside the buffer, which ASB does not need.

#include "bench_util.h"

int main() {
  using namespace sdb;
  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    bench::PrintGainTables(scenario, bench::AllSets(),
                           {"A", "SLRU:A:0.25", "ASB", "LRU-2"},
                           {0.006, 0.047},
                           "Fig. 13 — A / SLRU / ASB / LRU-2");
  }
  return 0;
}
