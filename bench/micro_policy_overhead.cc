// Microbenchmark (google-benchmark): CPU overhead of the replacement
// policies themselves — buffer-hit cost and miss/eviction cost per request.
// The paper argues criterion A is essentially free to maintain; this bench
// quantifies the bookkeeping and victim-selection cost of every policy at
// realistic buffer sizes.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "storage/disk_manager.h"

namespace {

using namespace sdb;

/// Disk with `n` staged data pages of varying MBR area.
std::unique_ptr<storage::DiskManager> StageDisk(size_t n) {
  auto disk = std::make_unique<storage::DiskManager>();
  std::vector<std::byte> image(disk->page_size(), std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    storage::PageHeaderView header(image.data());
    header.set_type(storage::PageType::kData);
    header.set_level(0);
    geom::EntryAggregates agg;
    const double side = 0.001 * static_cast<double>(i % 97 + 1);
    agg.mbr = geom::Rect(0, 0, side, side);
    agg.sum_entry_area = side * side;
    agg.sum_entry_margin = 2 * side;
    header.set_aggregates(agg);
    const storage::PageId id = disk->Allocate();
    disk->Write(id, image);
  }
  return disk;
}

void RunAccessLoop(benchmark::State& state, const std::string& policy,
                   bool force_misses) {
  const size_t frames = static_cast<size_t>(state.range(0));
  // Working set: half the buffer for pure hits, 4x the buffer for misses.
  const size_t pages = force_misses ? 4 * frames : frames / 2;
  auto disk = StageDisk(pages);
  core::BufferManager buffer(disk.get(), frames,
                             core::CreatePolicy(policy));
  uint64_t query = 0;
  storage::PageId next = 0;
  for (auto _ : state) {
    const core::AccessContext ctx{++query};
    core::PageHandle handle =
        buffer.Fetch(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  }
  state.counters["hit_rate"] = buffer.stats().HitRate();
}

void RegisterAll() {
  for (const char* policy :
       {"LRU", "FIFO", "CLOCK", "GCLOCK", "2Q", "PIN-1", "LRU-T", "LRU-P",
        "LRU-2", "A", "EO", "SLRU:A:0.25", "ASB"}) {
    benchmark::RegisterBenchmark(
        (std::string("hit/") + policy).c_str(),
        [policy](benchmark::State& state) {
          RunAccessLoop(state, policy, /*force_misses=*/false);
        })
        ->Arg(256)
        ->Arg(2048);
    benchmark::RegisterBenchmark(
        (std::string("evict/") + policy).c_str(),
        [policy](benchmark::State& state) {
          RunAccessLoop(state, policy, /*force_misses=*/true);
        })
        ->Arg(256)
        ->Arg(2048);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
