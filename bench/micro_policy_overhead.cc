// Microbenchmark (google-benchmark): CPU overhead of the replacement
// policies themselves — buffer-hit cost and miss/eviction cost per request.
// The paper argues criterion A is essentially free to maintain; this bench
// quantifies the bookkeeping and victim-selection cost of every policy at
// realistic buffer sizes.
//
// In addition to the google-benchmark timings, the binary prints an
// eviction-cost table for the spatial policies with the frame-metadata
// cache enabled versus disabled: ns per eviction and header decodes per
// eviction (steady state should be 0 decodes with the cache on, ~frames
// decodes per victim scan with it off). The table is also appended as
// JSON-Lines to BENCH_policy_overhead.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "geom/kernels/kernels.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "rtree/node_view.h"
#include "sim/report.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "svc/buffer_service.h"

namespace {

using namespace sdb;

/// Disk with `n` staged data pages of varying MBR area.
std::unique_ptr<storage::DiskManager> StageDisk(size_t n) {
  auto disk = std::make_unique<storage::DiskManager>();
  std::vector<std::byte> image(disk->page_size(), std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    storage::PageHeaderView header(image.data());
    header.set_type(storage::PageType::kData);
    header.set_level(0);
    geom::EntryAggregates agg;
    const double side = 0.001 * static_cast<double>(i % 97 + 1);
    agg.mbr = geom::Rect(0, 0, side, side);
    agg.sum_entry_area = side * side;
    agg.sum_entry_margin = 2 * side;
    header.set_aggregates(agg);
    const storage::PageId id = disk->AllocateOrDie();
    SDB_CHECK(disk->Write(id, image).ok());
  }
  return disk;
}

void RunAccessLoop(benchmark::State& state, const std::string& policy,
                   bool force_misses) {
  const size_t frames = static_cast<size_t>(state.range(0));
  // Working set: half the buffer for pure hits, 4x the buffer for misses.
  const size_t pages = force_misses ? 4 * frames : frames / 2;
  auto disk = StageDisk(pages);
  core::BufferManager buffer(disk.get(), frames,
                             core::CreatePolicy(policy));
  uint64_t query = 0;
  storage::PageId next = 0;
  for (auto _ : state) {
    const core::AccessContext ctx{++query};
    core::PageHandle handle =
        buffer.FetchOrDie(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  }
  state.counters["hit_rate"] = buffer.stats().HitRate();
}

void RegisterAll() {
  for (const char* policy :
       {"LRU", "FIFO", "CLOCK", "GCLOCK", "2Q", "PIN-1", "LRU-T", "LRU-P",
        "LRU-2", "A", "EO", "SLRU:A:0.25", "ASB"}) {
    benchmark::RegisterBenchmark(
        (std::string("hit/") + policy).c_str(),
        [policy](benchmark::State& state) {
          RunAccessLoop(state, policy, /*force_misses=*/false);
        })
        ->Arg(256)
        ->Arg(2048);
    benchmark::RegisterBenchmark(
        (std::string("evict/") + policy).c_str(),
        [policy](benchmark::State& state) {
          RunAccessLoop(state, policy, /*force_misses=*/true);
        })
        ->Arg(256)
        ->Arg(2048);
  }
}

/// One steady-state eviction measurement: cost and header-decode count per
/// eviction over a sequential scan 4x the buffer size (every access misses
/// once the buffer is warm).
struct EvictionCost {
  double ns_per_eviction = 0.0;
  double decodes_per_eviction = 0.0;
  uint64_t evictions = 0;
};

EvictionCost MeasureEvictionCost(const std::string& policy, size_t frames,
                                 bool cache_enabled,
                                 obs::Collector* collector = nullptr) {
  const size_t pages = 4 * frames;
  auto disk = StageDisk(pages);
  core::BufferManager buffer(disk.get(), frames, core::CreatePolicy(policy),
                             collector);
  buffer.set_meta_cache_enabled(cache_enabled);
  uint64_t query = 0;
  storage::PageId next = 0;
  const auto touch = [&] {
    const core::AccessContext ctx{++query};
    core::PageHandle handle = buffer.FetchOrDie(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  };
  // Warm-up: fill every frame and reach the policy's steady state.
  for (size_t i = 0; i < 2 * pages; ++i) touch();

  const uint64_t evictions_before = buffer.stats().evictions;
  const uint64_t decodes_before = buffer.header_decodes();
  const size_t accesses = 4 * pages;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < accesses; ++i) touch();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EvictionCost cost;
  cost.evictions = buffer.stats().evictions - evictions_before;
  if (cost.evictions == 0) return cost;
  const double evictions = static_cast<double>(cost.evictions);
  cost.ns_per_eviction =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      evictions;
  cost.decodes_per_eviction =
      static_cast<double>(buffer.header_decodes() - decodes_before) /
      evictions;
  return cost;
}

/// Prints (and JSON-logs) the metadata-cache A/B table: the same steady-
/// state eviction loop with the cache enabled and disabled, per policy and
/// buffer size — plus an observability A/B column (collector attached, ring
/// at its default capacity) quantifying the instrumentation cost the obs
/// subsystem promises to keep near zero when detached.
void RunEvictionCostTable() {
  const std::vector<std::string> policies = {"LRU", "A", "EO", "SLRU:A:0.25",
                                             "ASB"};
  const std::vector<size_t> frame_counts = {256, 1024};
  const std::string json_path = "BENCH_policy_overhead.json";
  bool json_ok = true;
  for (const size_t frames : frame_counts) {
    sim::Table table({"policy", "ns/evict (cache)", "ns/evict (no cache)",
                      "ns/evict (obs)", "decodes/evict (cache)",
                      "decodes/evict (no cache)"});
    for (const std::string& policy : policies) {
      const EvictionCost cached =
          MeasureEvictionCost(policy, frames, /*cache_enabled=*/true);
      const EvictionCost uncached =
          MeasureEvictionCost(policy, frames, /*cache_enabled=*/false);
      obs::Collector collector;
      const EvictionCost observed = MeasureEvictionCost(
          policy, frames, /*cache_enabled=*/true, &collector);
      table.AddRow({policy, sim::FormatDouble(cached.ns_per_eviction, 1),
                    sim::FormatDouble(uncached.ns_per_eviction, 1),
                    sim::FormatDouble(observed.ns_per_eviction, 1),
                    sim::FormatDouble(cached.decodes_per_eviction, 2),
                    sim::FormatDouble(uncached.decodes_per_eviction, 2)});
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "{\"schema_version\":%d,"
          "\"bench\":\"policy_overhead\",\"policy\":\"%s\","
          "\"frames\":%zu,\"ns_per_eviction\":%.1f,"
          "\"ns_per_eviction_no_cache\":%.1f,"
          "\"ns_per_eviction_obs\":%.1f,\"decodes_per_eviction\":%.3f,"
          "\"decodes_per_eviction_no_cache\":%.3f,\"evictions\":%llu}",
          obs::kBenchJsonSchemaVersion,
          sim::JsonEscape(policy).c_str(), frames, cached.ns_per_eviction,
          uncached.ns_per_eviction, observed.ns_per_eviction,
          cached.decodes_per_eviction, uncached.decodes_per_eviction,
          static_cast<unsigned long long>(cached.evictions));
      json_ok = sim::AppendJsonLine(json_path, line) && json_ok;
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "eviction cost, metadata cache on/off — %zu frames",
                  frames);
    table.Print(title);
  }
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

/// Same steady-state eviction loop as MeasureEvictionCost, but reading
/// through a FaultInjectingDevice with a *disabled* profile and checksum
/// verification on — the exact configuration every production run pays now
/// that the fault layer is always compiled in. The delta against the plain
/// device is the zero-fault overhead of the resilience machinery on the
/// eviction hot path (accepted budget: < 3%).
EvictionCost MeasureEvictionCostFaultLayer(const std::string& policy,
                                           size_t frames) {
  const size_t pages = 4 * frames;
  auto disk = StageDisk(pages);
  storage::FaultInjectingDevice device(*disk, storage::FaultProfile{});
  core::BufferManager buffer(&device, frames, core::CreatePolicy(policy));
  uint64_t query = 0;
  storage::PageId next = 0;
  const auto touch = [&] {
    const core::AccessContext ctx{++query};
    core::PageHandle handle = buffer.FetchOrDie(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  };
  for (size_t i = 0; i < 2 * pages; ++i) touch();

  const uint64_t evictions_before = buffer.stats().evictions;
  const size_t accesses = 4 * pages;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < accesses; ++i) touch();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EvictionCost cost;
  cost.evictions = buffer.stats().evictions - evictions_before;
  if (cost.evictions == 0) return cost;
  cost.ns_per_eviction =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(cost.evictions);
  return cost;
}

/// Fault-layer A/B: plain device versus disabled-profile fault device with
/// checksum verification, on the miss/eviction hot path where every access
/// pays a device Read plus a checksum verify. Appended to
/// BENCH_policy_overhead.json as bench:"fault_overhead".
void RunFaultOverheadTable() {
  const std::vector<std::string> policies = {"LRU", "ASB"};
  const std::vector<size_t> frame_counts = {256, 1024};
  const std::string json_path = "BENCH_policy_overhead.json";
  bool json_ok = true;
  sim::Table table({"policy", "frames", "ns/evict (plain)",
                    "ns/evict (fault layer)", "overhead"});
  for (const size_t frames : frame_counts) {
    for (const std::string& policy : policies) {
      // Best-of-3 per side: the A/B difference is a few ns on a ~µs path,
      // so take minima to shave scheduler noise off both sides.
      EvictionCost plain, fault;
      for (int rep = 0; rep < 3; ++rep) {
        const EvictionCost p =
            MeasureEvictionCost(policy, frames, /*cache_enabled=*/true);
        const EvictionCost f = MeasureEvictionCostFaultLayer(policy, frames);
        if (rep == 0 || p.ns_per_eviction < plain.ns_per_eviction) plain = p;
        if (rep == 0 || f.ns_per_eviction < fault.ns_per_eviction) fault = f;
      }
      const double overhead =
          plain.ns_per_eviction > 0.0
              ? (fault.ns_per_eviction - plain.ns_per_eviction) /
                    plain.ns_per_eviction
              : 0.0;
      table.AddRow({policy, std::to_string(frames),
                    sim::FormatDouble(plain.ns_per_eviction, 1),
                    sim::FormatDouble(fault.ns_per_eviction, 1),
                    sim::FormatDouble(100.0 * overhead, 2) + "%"});
      char line[384];
      std::snprintf(line, sizeof(line),
                    "{\"schema_version\":%d,\"bench\":\"fault_overhead\","
                    "\"policy\":\"%s\",\"frames\":%zu,"
                    "\"ns_per_eviction_plain\":%.1f,"
                    "\"ns_per_eviction_fault_layer\":%.1f,"
                    "\"overhead_frac\":%.4f,\"evictions\":%llu}",
                    obs::kBenchJsonSchemaVersion,
                    sim::JsonEscape(policy).c_str(), frames,
                    plain.ns_per_eviction, fault.ns_per_eviction, overhead,
                    static_cast<unsigned long long>(fault.evictions));
      json_ok = sim::AppendJsonLine(json_path, line) && json_ok;
    }
  }
  table.Print(
      "zero-fault overhead of the fault layer (disabled profile, checksum "
      "verify on) on the eviction hot path");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

/// ns per fetch through a 1-shard BufferService driven single-threaded
/// with a hit-dominated loop (working set = half the buffer). The
/// mutex-vs-optimistic delta measured this way is the raw per-pin protocol
/// cost: one uncontended mutex round-trip versus a version-stamp probe,
/// pin-validate, and deferred policy event — with zero contention on either
/// side.
double MeasureServiceFetchNs(const storage::DiskManager& disk,
                             svc::LatchMode mode, size_t frames,
                             size_t pages) {
  svc::BufferServiceConfig config;
  config.total_frames = frames;
  config.shard_count = 1;
  config.policy_spec = "ASB";
  config.latch_mode = mode;
  svc::BufferService service(disk, config);
  uint64_t query = 0;
  storage::PageId next = 0;
  const auto touch = [&] {
    const core::AccessContext ctx{++query};
    core::PageHandle handle = service.FetchOrDie(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  };
  for (size_t i = 0; i < 2 * pages; ++i) touch();  // warm: all-hit steady state
  size_t reps = 1024;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) touch();
    const auto total_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (total_ns >= 20'000'000 || reps >= (1ULL << 30)) {
      return static_cast<double>(total_ns) / static_cast<double>(reps);
    }
    reps = total_ns <= 0 ? reps * 16 : reps * 4;
  }
}

/// Latch-protocol A/B on the service's pin hot path (see
/// MeasureServiceFetchNs). Appended to BENCH_policy_overhead.json as
/// bench:"latch_overhead".
void RunLatchOverheadTable() {
  const std::vector<size_t> frame_counts = {256, 1024};
  const std::string json_path = "BENCH_policy_overhead.json";
  bool json_ok = true;
  sim::Table table({"frames", "ns/fetch (mutex)", "ns/fetch (optimistic)",
                    "overhead"});
  for (const size_t frames : frame_counts) {
    const size_t pages = frames / 2;
    auto disk = StageDisk(pages);
    // Best-of-3 per side: single-digit-ns deltas drown in scheduler noise
    // otherwise.
    double mutex_ns = 0.0, optimistic_ns = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double m =
          MeasureServiceFetchNs(*disk, svc::LatchMode::kMutex, frames, pages);
      const double o = MeasureServiceFetchNs(
          *disk, svc::LatchMode::kOptimistic, frames, pages);
      if (rep == 0 || m < mutex_ns) mutex_ns = m;
      if (rep == 0 || o < optimistic_ns) optimistic_ns = o;
    }
    const double overhead =
        mutex_ns > 0.0 ? (optimistic_ns - mutex_ns) / mutex_ns : 0.0;
    table.AddRow({std::to_string(frames), sim::FormatDouble(mutex_ns, 1),
                  sim::FormatDouble(optimistic_ns, 1),
                  sim::FormatDouble(100.0 * overhead, 2) + "%"});
    char line[384];
    std::snprintf(line, sizeof(line),
                  "{\"schema_version\":%d,\"bench\":\"latch_overhead\","
                  "\"policy\":\"ASB\",\"frames\":%zu,"
                  "\"ns_per_fetch_mutex\":%.1f,"
                  "\"ns_per_fetch_optimistic\":%.1f,\"overhead_frac\":%.4f}",
                  obs::kBenchJsonSchemaVersion, frames, mutex_ns,
                  optimistic_ns, overhead);
    json_ok = sim::AppendJsonLine(json_path, line) && json_ok;
  }
  table.Print(
      "single-threaded latch-protocol cost on the service pin path, "
      "mutex vs optimistic (1 shard, all hits)");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

/// ns per fetch on a hit-dominated BufferManager loop (working set = half
/// the buffer, every access a hit after warm-up) with or without a
/// metrics-only collector attached. This is the CI-guarded overhead: the
/// detached side is one pointer compare per request, the attached side a
/// handful of counter increments — unlike the eviction path there is no
/// O(frames) scan to hide behind, so the A/B isolates the per-request
/// instrumentation cost itself.
double MeasureHitFetchNs(size_t frames, bool attach_collector) {
  const size_t pages = frames / 2;
  auto disk = StageDisk(pages);
  obs::CollectorOptions options;
  options.event_capacity = 0;  // metrics only, like the service shards
  obs::Collector collector(options);
  core::BufferManager buffer(
      disk.get(), frames, core::CreatePolicy("LRU"),
      attach_collector && obs::kEnabled ? &collector : nullptr);
  uint64_t query = 0;
  storage::PageId next = 0;
  const auto touch = [&] {
    const core::AccessContext ctx{++query};
    core::PageHandle handle = buffer.FetchOrDie(next, ctx);
    benchmark::DoNotOptimize(handle.bytes().data());
    handle.Release();
    next = static_cast<storage::PageId>((next + 1) % pages);
  };
  for (size_t i = 0; i < 2 * pages; ++i) touch();  // warm: all-hit
  size_t reps = 1024;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) touch();
    const auto total_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (total_ns >= 20'000'000 || reps >= (1ULL << 30)) {
      return static_cast<double>(total_ns) / static_cast<double>(reps);
    }
    reps = total_ns <= 0 ? reps * 16 : reps * 4;
  }
}

/// Collector-attachment A/B on the buffer-hit path (see MeasureHitFetchNs).
/// Appended to BENCH_policy_overhead.json as bench:"obs_overhead"; CI's
/// obs-guard job asserts overhead_frac against its threshold via
/// check_bench_regression.py.
void RunObsOverheadTable() {
  const std::vector<size_t> frame_counts = {256, 1024};
  const std::string json_path = "BENCH_policy_overhead.json";
  bool json_ok = true;
  sim::Table table({"frames", "ns/fetch (detached)", "ns/fetch (attached)",
                    "overhead"});
  for (const size_t frames : frame_counts) {
    // Best-of-3 per side: the attached delta is a few ns of counter
    // increments, easily drowned by scheduler noise otherwise.
    double detached_ns = 0.0, attached_ns = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double d = MeasureHitFetchNs(frames, /*attach_collector=*/false);
      const double a = MeasureHitFetchNs(frames, /*attach_collector=*/true);
      if (rep == 0 || d < detached_ns) detached_ns = d;
      if (rep == 0 || a < attached_ns) attached_ns = a;
    }
    const double overhead =
        detached_ns > 0.0 ? (attached_ns - detached_ns) / detached_ns : 0.0;
    table.AddRow({std::to_string(frames), sim::FormatDouble(detached_ns, 1),
                  sim::FormatDouble(attached_ns, 1),
                  sim::FormatDouble(100.0 * overhead, 2) + "%"});
    char line[384];
    std::snprintf(line, sizeof(line),
                  "{\"schema_version\":%d,\"bench\":\"obs_overhead\","
                  "\"policy\":\"LRU\",\"frames\":%zu,"
                  "\"ns_per_fetch_detached\":%.1f,"
                  "\"ns_per_fetch_attached\":%.1f,\"overhead_frac\":%.4f}",
                  obs::kBenchJsonSchemaVersion, frames, detached_ns,
                  attached_ns, overhead);
    json_ok = sim::AppendJsonLine(json_path, line) && json_ok;
  }
  table.Print(
      "observability cost on the buffer-hit path, no collector vs "
      "metrics-only collector (LRU, all hits)");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

/// EO-criterion maintenance cost at increasing fanout: ns per
/// NodeView::RefreshAggregates — whose pairwise-overlap term is O(n²) in the
/// entry count — with the geometry kernels forced to scalar versus the
/// dispatched tier. High fanout (entries near NodeView::Capacity) is where
/// the quadratic term dominates and the SIMD speedup shows. Rows are
/// appended to BENCH_policy_overhead.json as bench:"eo_refresh".
void RunEoRefreshCostTable() {
  using geom::kernels::Level;
  const size_t capacity =
      rtree::NodeView::Capacity(storage::kDefaultPageSize);  // 84 for 4 KiB
  const std::vector<size_t> fanouts = {16, 42, capacity};
  const Level original = geom::kernels::ActiveLevel();
  const std::string dispatched_name(geom::kernels::LevelName(original));
  const std::string json_path = "BENCH_policy_overhead.json";
  bool json_ok = true;
  sim::Table table({"fanout", "ns/refresh (scalar)",
                    "ns/refresh (" + dispatched_name + ")", "speedup"});
  for (const size_t fanout : fanouts) {
    // Pool of distinct nodes, cycled per refresh, so the scalar tier's
    // data-dependent branches see traversal-like (unpredictable) input.
    constexpr size_t kPool = 32;
    std::vector<std::vector<std::byte>> pages;
    Rng rng(71);
    for (size_t p = 0; p < kPool; ++p) {
      pages.emplace_back(storage::kDefaultPageSize);
      rtree::NodeView node(pages.back());
      node.Init(/*level=*/0);
      for (size_t i = 0; i < fanout; ++i) {
        rtree::Entry e;
        e.id = i + 1;
        const double x = rng.NextDouble(), y = rng.NextDouble();
        e.rect = geom::Rect(x, y, x + rng.NextDouble() * 0.3,
                            y + rng.NextDouble() * 0.3);
        node.Append(e);
      }
    }
    double ns[2] = {0.0, 0.0};
    const Level levels[2] = {Level::kScalar, original};
    for (int li = 0; li < 2; ++li) {
      geom::kernels::ForceLevel(levels[li]);
      size_t reps = 1;
      for (;;) {
        const auto start = std::chrono::steady_clock::now();
        for (size_t r = 0; r < reps; ++r) {
          rtree::NodeView node(pages[r % kPool]);
          node.RefreshAggregates();
          benchmark::DoNotOptimize(pages[r % kPool].data());
        }
        const auto elapsed = std::chrono::steady_clock::now() - start;
        const auto total_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count();
        if (total_ns >= 20'000'000 || reps >= (1ULL << 30)) {
          ns[li] = static_cast<double>(total_ns) / static_cast<double>(reps);
          break;
        }
        reps = total_ns <= 0 ? reps * 16 : reps * 4;
      }
    }
    geom::kernels::ForceLevel(original);
    const double speedup = ns[1] > 0.0 ? ns[0] / ns[1] : 0.0;
    table.AddRow({std::to_string(fanout), sim::FormatDouble(ns[0], 1),
                  sim::FormatDouble(ns[1], 1),
                  sim::FormatDouble(speedup, 2) + "x"});
    char line[384];
    std::snprintf(line, sizeof(line),
                  "{\"schema_version\":%d,\"bench\":\"eo_refresh\","
                  "\"fanout\":%zu,\"ns_refresh_scalar\":%.1f,"
                  "\"ns_refresh_dispatched\":%.1f,"
                  "\"dispatched_level\":\"%s\",\"speedup\":%.3f}",
                  obs::kBenchJsonSchemaVersion, fanout, ns[0], ns[1],
                  dispatched_name.c_str(), speedup);
    json_ok = sim::AppendJsonLine(json_path, line) && json_ok;
  }
  table.Print("EO aggregate refresh (O(n²) overlap term), "
              "scalar vs dispatched kernels");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunEvictionCostTable();
  RunFaultOverheadTable();
  RunLatchOverheadTable();
  RunObsOverheadTable();
  RunEoRefreshCostTable();
  return 0;
}
