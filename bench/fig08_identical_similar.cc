// Figure 8: LRU-P vs. A vs. LRU-2 (gains against LRU) for the identical and
// similar query distributions on both databases. Expected shape: A mostly
// matches or beats LRU-2 with gains up to ~30%, but the advantage can
// collapse for large windows (foreshadowing the robustness problem the
// intensified sets expose fully).

#include "bench_util.h"

int main() {
  using namespace sdb;
  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    std::vector<bench::SetSpec> sets = bench::IdenticalSets();
    for (const bench::SetSpec& s : bench::SimilarSets()) sets.push_back(s);
    bench::PrintGainTables(scenario, sets, {"LRU-P", "A", "LRU-2"},
                           {0.006, 0.047},
                           "Fig. 8 — identical & similar distributions");
  }
  return 0;
}
