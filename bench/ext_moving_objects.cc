// Extension (paper future work 3): the impact of (spatial) page-replacement
// policies on the management of moving spatial objects. A fleet of objects
// moves along random headings over the us-like map (network-free variant of
// the classic moving-objects generators); every tick a slice of the fleet
// reports a new position (delete + insert in the R*-tree) while range
// queries monitor hot regions. Reported: total disk accesses per policy.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"

namespace {

using namespace sdb;

struct MovingObject {
  uint64_t id;
  geom::Point position;
  double heading_x, heading_y;
};

geom::Rect FootprintOf(const MovingObject& object) {
  return geom::Rect::Centered(object.position, 0.0008, 0.0008);
}

}  // namespace

int main() {
  constexpr size_t kFleet = 20'000;
  constexpr size_t kTicks = 60;
  constexpr double kMoveFraction = 0.10;  // fleet share updating per tick
  constexpr size_t kQueriesPerTick = 30;
  constexpr double kSpeed = 0.004;

  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "A",
                                          "ASB"};
  sim::Table table({"policy", "disk accesses", "gain vs LRU", "hit rate"});
  uint64_t lru_accesses = 0;

  for (const std::string& policy : policies) {
    // Fresh world per policy: identical initial fleet and random streams.
    Rng rng(99);
    storage::DiskManager disk;
    auto buffer = std::make_unique<core::BufferManager>(
        &disk, 4096, core::CreatePolicy("LRU"));
    rtree::RTree tree(&disk, buffer.get());

    std::vector<MovingObject> fleet;
    fleet.reserve(kFleet);
    for (uint64_t id = 1; id <= kFleet; ++id) {
      MovingObject object;
      object.id = id;
      object.position = {rng.NextDouble(), rng.NextDouble()};
      const double angle = rng.NextDouble() * 6.283185307;
      object.heading_x = std::cos(angle);
      object.heading_y = std::sin(angle);
      fleet.push_back(object);
      rtree::Entry entry;
      entry.id = id;
      entry.rect = FootprintOf(object);
      tree.Insert(entry, core::AccessContext{});
    }
    tree.PersistMeta();
    buffer->FlushAll();

    // Swap in the measured buffer (2% of the tree).
    const size_t frames =
        std::max<size_t>(16, tree.ComputeStats().total_pages() / 50);
    core::BufferManager measured(&disk, frames, core::CreatePolicy(policy));
    tree.set_buffer(&measured);
    disk.ResetStats();

    uint64_t query_id = 0;
    for (size_t tick = 0; tick < kTicks; ++tick) {
      // Position reports.
      const size_t updates = static_cast<size_t>(kFleet * kMoveFraction);
      for (size_t u = 0; u < updates; ++u) {
        MovingObject& object =
            fleet[static_cast<size_t>(rng.NextBelow(kFleet))];
        const core::AccessContext ctx{++query_id};
        tree.Delete(object.id, FootprintOf(object), ctx);
        object.position.x += object.heading_x * kSpeed;
        object.position.y += object.heading_y * kSpeed;
        // Bounce at the borders.
        if (object.position.x < 0 || object.position.x > 1) {
          object.heading_x = -object.heading_x;
          object.position.x = std::clamp(object.position.x, 0.0, 1.0);
        }
        if (object.position.y < 0 || object.position.y > 1) {
          object.heading_y = -object.heading_y;
          object.position.y = std::clamp(object.position.y, 0.0, 1.0);
        }
        rtree::Entry entry;
        entry.id = object.id;
        entry.rect = FootprintOf(object);
        tree.Insert(entry, ctx);
      }
      // Monitoring queries over fixed hot regions plus roaming windows.
      for (size_t q = 0; q < kQueriesPerTick; ++q) {
        const core::AccessContext ctx{++query_id};
        const geom::Rect window =
            q % 3 == 0
                ? geom::Rect(0.45, 0.45, 0.55, 0.55)  // fixed hot region
                : geom::Rect::Centered(
                      {rng.NextDouble(), rng.NextDouble()}, 0.03, 0.03);
        tree.WindowQueryVisit(window, ctx, [](const rtree::Entry&) {});
      }
    }
    measured.FlushAll();

    const uint64_t accesses = disk.stats().accesses();
    if (lru_accesses == 0) lru_accesses = accesses;
    table.AddRow({policy, std::to_string(accesses),
                  sim::FormatGain(static_cast<double>(lru_accesses) /
                                      static_cast<double>(accesses) -
                                  1.0),
                  sim::FormatPercent(measured.stats().HitRate())});
  }
  table.Print(
      "Extension — moving objects (20k objects, 60 ticks, 10% position "
      "reports per tick, 2% buffer)");
  return 0;
}
