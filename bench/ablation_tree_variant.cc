// Ablation: how much do the replacement-policy results depend on the
// *quality of the tree structure*? The paper uses R*-trees; Guttman trees
// (quadratic/linear split, no forced reinsertion) have larger, more
// overlapping directory rectangles. That changes both the absolute I/O and
// what the spatial criteria can exploit. Expected: the qualitative policy
// ranking (A wins uniform, loses intensified; ASB robust) is a property of
// spatial workloads, not of the R*-tree's tuning — it should survive the
// sloppier structures, with the absolute I/O rising.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace sdb;
  struct VariantSpec {
    rtree::TreeVariant variant;
    const char* name;
  };
  const std::vector<VariantSpec> variants{
      {rtree::TreeVariant::kRStar, "R*-tree"},
      {rtree::TreeVariant::kGuttmanQuadratic, "Guttman quadratic"},
      {rtree::TreeVariant::kGuttmanLinear, "Guttman linear"},
  };
  const std::vector<std::string> policies{"LRU", "LRU-2", "A", "ASB"};
  const std::vector<bench::SetSpec> sets{
      {workload::QueryFamily::kUniform, 100},
      {workload::QueryFamily::kIntensified, 100}};

  for (const VariantSpec& variant : variants) {
    sim::ScenarioOptions options;
    options.kind = sim::DatabaseKind::kUsLike;
    options.build = sim::BuildMode::kInsert;
    options.variant = variant.variant;
    options.scale = bench::kBenchScale * sim::DefaultScale();
    const sim::Scenario scenario = sim::BuildScenario(options);
    std::printf("%s: %u pages (%u directory), height %u\n", variant.name,
                scenario.tree_stats.total_pages(),
                scenario.tree_stats.directory_pages,
                scenario.tree_stats.height);

    std::vector<std::string> header{"query set", "LRU reads"};
    for (size_t i = 1; i < policies.size(); ++i) {
      header.push_back(policies[i]);
    }
    sim::Table table(header);
    for (const bench::SetSpec& spec : sets) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(scenario, spec.family, spec.ex);
      sim::RunOptions run;
      run.buffer_frames = scenario.BufferFrames(0.047);
      const sim::RunResult lru =
          sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta, "LRU",
                           queries, run);
      std::vector<std::string> row{queries.name,
                                   std::to_string(lru.disk_reads)};
      for (size_t i = 1; i < policies.size(); ++i) {
        const sim::RunResult result =
            sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                             policies[i], queries, run);
        row.push_back(sim::FormatGain(sim::GainVersus(lru, result)));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::string("Ablation — tree structure: ") + variant.name +
                ", 4.7% buffer, gain vs LRU");
  }
  return 0;
}
