// Extension (paper future work 2): the influence of the replacement
// strategies on spatial joins and on update workloads.
//
// Part 1 joins two overlapping maps by synchronized R-tree traversal, each
// tree reading through its own small buffer, and reports the join's disk
// reads per policy.
//
// Part 2 runs a mixed update workload (window queries + inserts + deletes)
// through each policy and reports total disk accesses including write-backs.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/policy_factory.h"
#include "rtree/spatial_join.h"

namespace {

using namespace sdb;

sim::Scenario BuildOverlay(double scale) {
  sim::ScenarioOptions options;
  options.kind = sim::DatabaseKind::kUsLike;
  options.build = sim::BuildMode::kInsert;
  options.scale = scale;
  options.seed = 4242;  // a different map over the same mainland
  return sim::BuildScenario(options);
}

void JoinBench(const sim::Scenario& left, const sim::Scenario& right,
               const std::vector<std::string>& policies) {
  sim::Table table({"policy", "disk reads", "gain vs LRU", "result pairs"});
  uint64_t lru_reads = 0;
  for (const std::string& policy : policies) {
    core::BufferManager left_buffer(left.disk.get(),
                                    left.BufferFrames(0.012),
                                    core::CreatePolicy(policy));
    core::BufferManager right_buffer(right.disk.get(),
                                     right.BufferFrames(0.012),
                                     core::CreatePolicy(policy));
    const rtree::RTree left_tree =
        rtree::RTree::Open(left.disk.get(), &left_buffer, left.tree_meta);
    const rtree::RTree right_tree =
        rtree::RTree::Open(right.disk.get(), &right_buffer, right.tree_meta);
    left.disk->ResetStats();
    right.disk->ResetStats();
    const rtree::JoinStats stats = rtree::SpatialJoinCount(
        left_tree, right_tree, core::AccessContext{1});
    const uint64_t reads = left.disk->stats().reads +
                           right.disk->stats().reads;
    if (lru_reads == 0) lru_reads = reads;
    table.AddRow({policy, std::to_string(reads),
                  sim::FormatGain(static_cast<double>(lru_reads) /
                                      static_cast<double>(reads) -
                                  1.0),
                  std::to_string(stats.result_pairs)});
  }
  table.Print("Extension — spatial join I/O per policy (1.2% buffers)");
}

void UpdateBench(const sim::Scenario& base,
                 const std::vector<std::string>& policies) {
  sim::Table table({"policy", "disk accesses", "gain vs LRU"});
  uint64_t lru_accesses = 0;
  for (const std::string& policy : policies) {
    // Each policy gets its own copy of the workload on the SAME persisted
    // tree image; updates are rolled forward identically.
    core::BufferManager buffer(base.disk.get(), base.BufferFrames(0.047),
                               core::CreatePolicy(policy));
    rtree::RTree tree =
        rtree::RTree::Open(base.disk.get(), &buffer, base.tree_meta);
    base.disk->ResetStats();

    Rng rng(123);
    uint64_t next_id = 10'000'000 + 1;
    std::vector<rtree::Entry> inserted;
    uint64_t query_id = 0;
    const size_t rounds = 3000;
    for (size_t i = 0; i < rounds; ++i) {
      const core::AccessContext ctx{++query_id};
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        const geom::Rect window = geom::Rect::Centered(
            {rng.NextDouble(), rng.NextDouble()}, 0.01, 0.01);
        tree.WindowQueryVisit(window, ctx, [](const rtree::Entry&) {});
      } else if (dice < 0.8 || inserted.empty()) {
        rtree::Entry e;
        e.id = next_id++;
        e.rect = geom::Rect::Centered({rng.NextDouble(), rng.NextDouble()},
                                      0.001, 0.001);
        tree.Insert(e, ctx);
        inserted.push_back(e);
      } else {
        const size_t victim = rng.NextBelow(inserted.size());
        tree.Delete(inserted[victim].id, inserted[victim].rect, ctx);
        inserted.erase(inserted.begin() + victim);
      }
    }
    buffer.FlushAll();
    const uint64_t accesses = base.disk->stats().accesses();
    if (lru_accesses == 0) lru_accesses = accesses;
    table.AddRow({policy, std::to_string(accesses),
                  sim::FormatGain(static_cast<double>(lru_accesses) /
                                      static_cast<double>(accesses) -
                                  1.0)});
    // Roll the updates back so the next policy sees the identical tree.
    for (const rtree::Entry& e : inserted) {
      tree.Delete(e.id, e.rect, core::AccessContext{++query_id});
    }
    tree.PersistMeta();
    buffer.FlushAll();
  }
  table.Print(
      "Extension — mixed update workload (50% query / 30% insert / "
      "20% delete, 4.7% buffer)");
}

}  // namespace

int main() {
  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "A",
                                          "ASB"};
  const sim::Scenario left = bench::BuildBenchDatabase(
      sim::DatabaseKind::kUsLike);
  const sim::Scenario right = BuildOverlay(0.25 * sim::DefaultScale());
  JoinBench(left, right, policies);
  UpdateBench(left, policies);
  return 0;
}
