// Ablation (paper future work 1): distinguishing random and sequential I/O.
// The paper counts every access alike; on spinning disks a sequential read
// is far cheaper. This bench reports, per policy, the plain access count
// next to a weighted cost where a sequential read costs only 10% of a
// random one — checking whether the policy ranking survives the richer cost
// model.

#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace sdb;
  constexpr double kSequentialCost = 0.1;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "A",
                                          "ASB"};
  const std::vector<bench::SetSpec> sets{
      {workload::QueryFamily::kUniform, 100},
      {workload::QueryFamily::kSimilar, 0},
      {workload::QueryFamily::kIntensified, 100}};

  sim::Table table({"query set", "policy", "reads", "seq reads",
                    "plain gain", "weighted gain"});
  for (const bench::SetSpec& spec : sets) {
    const workload::QuerySet queries =
        sim::StandardQuerySet(scenario, spec.family, spec.ex);
    sim::RunOptions options;
    options.buffer_frames = scenario.BufferFrames(0.047);
    sim::RunResult lru;
    double lru_cost = 0.0;
    for (const std::string& policy : policies) {
      const sim::RunResult result =
          sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta, policy,
                           queries, options);
      const double cost =
          static_cast<double>(result.disk_reads - result.sequential_reads) +
          kSequentialCost * static_cast<double>(result.sequential_reads);
      if (policy == "LRU") {
        lru = result;
        lru_cost = cost;
      }
      table.AddRow({queries.name, policy, std::to_string(result.disk_reads),
                    std::to_string(result.sequential_reads),
                    sim::FormatGain(sim::GainVersus(lru, result)),
                    sim::FormatGain(lru_cost / cost - 1.0)});
    }
  }
  table.Print(
      "Ablation — random vs sequential I/O (sequential read = 0.1 random)");
  return 0;
}
