// Ablation: the ASB adaptation step size (the paper fixes it at 1% of the
// main section). Small steps adapt slowly but smoothly; large steps react
// fast but overshoot. The sweep runs the Fig. 14 mixed workload and reports
// both the I/O gain and how far the candidate set travels per phase.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/collector.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);

  const workload::QuerySet mixed = workload::ConcatQuerySets(
      {sim::StandardQuerySet(scenario, workload::QueryFamily::kIntensified,
                             33),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 33),
       sim::StandardQuerySet(scenario, workload::QueryFamily::kSimilar,
                             33)});

  sim::RunOptions options;
  options.buffer_frames = scenario.BufferFrames(0.047);
  const sim::RunResult lru = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "LRU", mixed, options);

  sim::Table table({"step", "gain vs LRU", "min c", "max c", "mean c"});
  for (const double step : {0.01, 0.02, 0.04, 0.08, 0.16}) {
    char spec[64];
    std::snprintf(spec, sizeof(spec), "ASB:A:0.2:0.25:%g", step);
    obs::CollectorOptions collect;
    collect.event_capacity = obs::EventRing::kUnbounded;
    obs::Collector collector(collect);
    options.collector = &collector;
    const sim::RunResult result = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, spec, mixed, options);
    const std::vector<size_t> trace =
        sim::AsbCandidateTrace(collector.events(), mixed.queries.size());
    const size_t min_c = *std::min_element(trace.begin(), trace.end());
    const size_t max_c = *std::max_element(trace.begin(), trace.end());
    const double mean_c =
        std::accumulate(trace.begin(), trace.end(), 0.0) / trace.size();
    table.AddRow({sim::FormatPercent(step),
                  sim::FormatGain(sim::GainVersus(lru, result)),
                  std::to_string(min_c), std::to_string(max_c),
                  sim::FormatDouble(mean_c, 1)});
  }
  table.Print("Ablation — ASB adaptation step size (mixed workload " +
              mixed.name + ")");
  return 0;
}
