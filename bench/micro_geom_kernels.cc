// Microbenchmark (google-benchmark): throughput of the batch geometry
// kernels (geom/kernels) per dispatch tier — IntersectMask, SumAreas,
// SumMargins and the O(n²) PairwiseOverlapSum — on SoA coordinate arrays at
// R*-tree node fanouts.
//
// Besides the google-benchmark timings, the binary runs a deterministic
// scalar-vs-tier A/B table over the kernel × fanout grid, verifies the
// tiers' results are bit-identical to the scalar reference while timing
// them, and appends one JSON-Lines row per (kernel, level, fanout) cell to
// BENCH_kernels.json (schema_version stamped, obs metrics snapshot
// embedded). The acceptance gate of the SIMD work reads this file: the
// dispatched tier must reach >= 2x scalar throughput on intersect_mask and
// pairwise_overlap_sum at fanout >= 64 on AVX2 hardware.

#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "geom/kernels/kernels.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/report.h"

namespace {

using namespace sdb;
using geom::kernels::Level;
using geom::kernels::Ops;

/// SoA coordinate set of `n` random boxes in the unit square, with extents
/// like the entry MBRs of one R*-tree directory node: sibling regions
/// overlap each other and a window query intersects a mixed fraction of
/// them (what the EO criterion and node scans actually see — and the
/// data-dependent branches of the scalar reference can't predict).
struct CoordSet {
  explicit CoordSet(size_t n, uint64_t seed = 29) {
    buf.Reserve(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const double x = rng.NextDouble(), y = rng.NextDouble();
      buf.xmin()[i] = x;
      buf.ymin()[i] = y;
      buf.xmax()[i] = x + rng.NextDouble() * 0.3;
      buf.ymax()[i] = y + rng.NextDouble() * 0.3;
    }
  }
  geom::kernels::SoaBuffer buf;
  geom::Rect query = geom::Rect(0.3, 0.3, 0.7, 0.7);
};

/// Pool of distinct coordinate sets, cycled per kernel call. Repeating one
/// set lets the branch predictor memorize the scalar reference's
/// data-dependent branches (its pair count fits predictor capacity up to
/// n ~ 100), which no real traversal — visiting a different node every call
/// — gets to do.
std::vector<CoordSet> MakeSets(size_t n, size_t k) {
  std::vector<CoordSet> sets;
  sets.reserve(k);
  for (size_t i = 0; i < k; ++i) sets.emplace_back(n, 29 + 101 * i);
  return sets;
}

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels{Level::kScalar};
  if (geom::kernels::LevelAvailable(Level::kSse2)) {
    levels.push_back(Level::kSse2);
  }
  if (geom::kernels::LevelAvailable(Level::kAvx2)) {
    levels.push_back(Level::kAvx2);
  }
  return levels;
}

// --- google-benchmark timings --------------------------------------------

void BM_IntersectMask(benchmark::State& state, Level level) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<CoordSet> sets = MakeSets(n, 8);
  std::vector<uint8_t> mask(n);
  const Ops& ops = geom::kernels::OpsFor(level);
  size_t idx = 0;
  for (auto _ : state) {
    const CoordSet& set = sets[idx];
    idx = (idx + 1) % sets.size();
    const size_t hits = ops.intersect_mask(
        set.query, set.buf.xmin(), set.buf.ymin(), set.buf.xmax(),
        set.buf.ymax(), n, mask.data());
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Sum(benchmark::State& state,
            double (*Ops::*kernel)(const double*, const double*,
                                   const double*, const double*, size_t),
            Level level) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<CoordSet> sets = MakeSets(n, 8);
  const Ops& ops = geom::kernels::OpsFor(level);
  size_t idx = 0;
  for (auto _ : state) {
    const CoordSet& set = sets[idx];
    idx = (idx + 1) % sets.size();
    const double sum = (ops.*kernel)(set.buf.xmin(), set.buf.ymin(),
                                     set.buf.xmax(), set.buf.ymax(), n);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterAll() {
  for (const Level level : AvailableLevels()) {
    const std::string suffix(geom::kernels::LevelName(level));
    benchmark::RegisterBenchmark(
        ("intersect_mask/" + suffix).c_str(),
        [level](benchmark::State& state) { BM_IntersectMask(state, level); })
        ->Arg(16)
        ->Arg(64)
        ->Arg(84)
        ->Arg(256);
    benchmark::RegisterBenchmark(
        ("sum_areas/" + suffix).c_str(),
        [level](benchmark::State& state) {
          BM_Sum(state, &Ops::sum_areas, level);
        })
        ->Arg(64)
        ->Arg(256);
    benchmark::RegisterBenchmark(
        ("sum_margins/" + suffix).c_str(),
        [level](benchmark::State& state) {
          BM_Sum(state, &Ops::sum_margins, level);
        })
        ->Arg(64)
        ->Arg(256);
    benchmark::RegisterBenchmark(
        ("pairwise_overlap_sum/" + suffix).c_str(),
        [level](benchmark::State& state) {
          BM_Sum(state, &Ops::pairwise_overlap_sum, level);
        })
        ->Arg(16)
        ->Arg(64)
        ->Arg(84);
  }
}

// --- deterministic A/B table + BENCH_kernels.json ------------------------

/// One timed cell: ns per kernel call and a result checksum for the
/// bit-identity cross-check against the scalar reference.
struct Cell {
  double ns_per_call = 0.0;
  uint64_t checksum = 0;
};

uint64_t FoldChecksum(uint64_t acc, double value) {
  return acc * 1099511628211ULL + std::bit_cast<uint64_t>(value);
}

Cell TimeKernel(const std::string& kernel, Level level,
                const std::vector<CoordSet>& sets, size_t n,
                std::vector<uint8_t>& mask) {
  const Ops& ops = geom::kernels::OpsFor(level);
  size_t idx = 0;
  const auto call = [&]() -> double {
    const CoordSet& set = sets[idx];
    idx = (idx + 1) % sets.size();
    if (kernel == "intersect_mask") {
      return static_cast<double>(ops.intersect_mask(
          set.query, set.buf.xmin(), set.buf.ymin(), set.buf.xmax(),
          set.buf.ymax(), n, mask.data()));
    }
    const auto sum = kernel == "sum_areas"        ? ops.sum_areas
                     : kernel == "sum_margins"    ? ops.sum_margins
                                                  : ops.pairwise_overlap_sum;
    return sum(set.buf.xmin(), set.buf.ymin(), set.buf.xmax(), set.buf.ymax(),
               n);
  };
  // Result checksum from one rotation over the set pool, outside the timing
  // loop — the timed repetition count is calibrated per level, so folding
  // every repetition in would make equal results hash differently.
  Cell cell;
  for (size_t i = 0; i < sets.size(); ++i) {
    cell.checksum = FoldChecksum(cell.checksum, call());
  }
  idx = 0;
  // Calibrate the repetition count so each measurement spans >= ~10 ms.
  size_t reps = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(call());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    if (ns >= 10'000'000 || reps >= (1ULL << 30)) break;
    reps = ns <= 0 ? reps * 16 : reps * 4;
  }
  // Best of 3 measurements: the minimum is the usual robust estimator
  // against scheduling/frequency noise on shared machines.
  double best_ns = 0.0;
  for (int round = 0; round < 3; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(call());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    if (round == 0 || ns < best_ns) best_ns = ns;
  }
  cell.ns_per_call = best_ns / static_cast<double>(reps);
  return cell;
}

void RunKernelTable() {
  const std::vector<Level> levels = AvailableLevels();
  const std::vector<std::string> kernels = {
      "intersect_mask", "sum_areas", "sum_margins", "pairwise_overlap_sum"};
  // 42 / 84: the data-page fanout of the paper's trees and the 4 KiB page
  // capacity; 256: a large directory sweep.
  const std::vector<size_t> fanouts = {16, 42, 64, 84, 256};
  const std::string json_path = "BENCH_kernels.json";
  bool json_ok = true;
  bool identical = true;

  obs::MetricsRegistry registry;
  obs::Counter* calls = registry.GetCounter("kernels.bench.calls");
  obs::Counter* entries = registry.GetCounter("kernels.bench.entries");
  registry.GetGauge("kernels.bench.active_level")
      ->Set(static_cast<double>(geom::kernels::ActiveLevel()));

  sim::Table table({"kernel", "n", "ns scalar", "ns " +
                    std::string(geom::kernels::LevelName(levels.back())),
                    "speedup"});
  for (const std::string& kernel : kernels) {
    for (const size_t n : fanouts) {
      const std::vector<CoordSet> sets = MakeSets(n, 16);
      std::vector<uint8_t> mask(n);
      std::vector<Cell> cells;
      for (const Level level : levels) {
        cells.push_back(TimeKernel(kernel, level, sets, n, mask));
        calls->Add();
        entries->Add(n);
        if (cells.back().checksum != cells.front().checksum) {
          identical = false;
          std::fprintf(stderr,
                       "ERROR: %s diverges from scalar at level %s, n=%zu\n",
                       kernel.c_str(),
                       std::string(geom::kernels::LevelName(level)).c_str(),
                       n);
        }
      }
      const double scalar_ns = cells.front().ns_per_call;
      for (size_t li = 0; li < levels.size(); ++li) {
        const double speedup =
            cells[li].ns_per_call > 0.0 ? scalar_ns / cells[li].ns_per_call
                                        : 0.0;
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "{\"schema_version\":%d,\"bench\":\"geom_kernels\","
            "\"kernel\":\"%s\",\"level\":\"%s\",\"n\":%zu,"
            "\"ns_per_call\":%.2f,\"entries_per_us\":%.2f,"
            "\"speedup_vs_scalar\":%.3f,\"bit_identical\":%s,"
            "\"active_level\":\"%s\"",
            obs::kBenchJsonSchemaVersion, kernel.c_str(),
            std::string(geom::kernels::LevelName(levels[li])).c_str(), n,
            cells[li].ns_per_call,
            1000.0 * static_cast<double>(n) / cells[li].ns_per_call, speedup,
            cells[li].checksum == cells.front().checksum ? "true" : "false",
            std::string(geom::kernels::LevelName(geom::kernels::ActiveLevel()))
                .c_str());
        std::string row(line);
        row += ",\"metrics\":";
        row += obs::MetricsJson(registry.Snapshot());
        row += "}";
        json_ok = sim::AppendJsonLine(json_path, row) && json_ok;
      }
      table.AddRow({kernel, std::to_string(n),
                    sim::FormatDouble(scalar_ns, 1),
                    sim::FormatDouble(cells.back().ns_per_call, 1),
                    sim::FormatDouble(scalar_ns /
                                          cells.back().ns_per_call, 2) + "x"});
    }
  }
  table.Print("geom kernels: scalar vs " +
              std::string(geom::kernels::LevelName(levels.back())) +
              " (dispatched: " +
              std::string(
                  geom::kernels::LevelName(geom::kernels::ActiveLevel())) +
              ")");
  std::printf("bit-identical across tiers: %s\n", identical ? "yes" : "NO");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunKernelTable();
  return 0;
}
