// Figure 9: LRU-P vs. A vs. LRU-2 (gains against LRU) for the independent
// and intensified distributions — the robustness stress test for pure
// spatial replacement. Expected shape: on the intensified sets A *loses*
// against LRU on both databases (hot regions are dense, so their pages are
// small — the opposite of what criterion A protects), while LRU-2 wins
// them. On the independent sets A still gains on database 1 (the x-flipped
// queries mostly hit the mainland again) but offers nothing on database 2,
// where flipped queries mostly meet water and are answered near the root.

#include "bench_util.h"

int main() {
  using namespace sdb;
  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    std::vector<bench::SetSpec> sets = bench::IndependentSets();
    for (const bench::SetSpec& s : bench::IntensifiedSets()) {
      sets.push_back(s);
    }
    bench::PrintGainTables(scenario, sets, {"LRU-P", "A", "LRU-2"},
                           {0.006, 0.047},
                           "Fig. 9 — independent & intensified distributions");
  }
  return 0;
}
