// Figure 7: LRU-P vs. spatial criterion A vs. LRU-2 (gains against LRU) for
// the uniform distribution on both databases, at 0.6% and 4.7% buffers.
// Expected shape: the spatial strategy is the clear winner — uniformly
// distributed queries constantly request subtrees of large spatial
// extension, exactly what criterion A protects; LRU-P is the weakest of the
// three.

#include "bench_util.h"

int main() {
  using namespace sdb;
  for (const sim::DatabaseKind kind :
       {sim::DatabaseKind::kUsLike, sim::DatabaseKind::kWorldLike}) {
    const sim::Scenario scenario = bench::BuildBenchDatabase(kind);
    bench::PrintGainTables(scenario, bench::UniformSets(),
                           {"LRU-P", "A", "LRU-2"}, {0.006, 0.047},
                           "Fig. 7 — uniform distribution");
  }
  return 0;
}
