#ifndef SPATIALBUFFER_BENCH_BENCH_UTIL_H_
#define SPATIALBUFFER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace sdb::bench {

/// Default scale of the benchmark databases relative to the generator
/// defaults (0.5 -> 100k objects for database 1). The SDB_SCALE environment
/// variable multiplies object counts further; the paper's setup corresponds
/// to roughly SDB_SCALE=8 (1.6M objects) and is not needed to reproduce the
/// relative effects, since buffers are sized relative to the tree.
inline constexpr double kBenchScale = 0.5;

/// Builds one of the two experiment databases with insert-based (paper-
/// faithful) construction and prints its headline statistics.
///
/// If SDB_CACHE_DIR is set, the built disk image is cached there (keyed by
/// database kind and scale) and reloaded on subsequent runs, cutting the
/// multi-second tree construction from every bench invocation. The map and
/// query generators re-run either way (they are fast and deterministic).
inline sim::Scenario BuildBenchDatabase(sim::DatabaseKind kind) {
  sim::ScenarioOptions options;
  options.kind = kind;
  options.build = sim::BuildMode::kInsert;
  options.scale = kBenchScale * sim::DefaultScale();
  sim::Scenario scenario = sim::BuildCachedScenario(options);
  std::printf(
      "database %-10s: %llu objects, %u pages (%u directory = %.2f%%), "
      "height %u\n",
      scenario.name.c_str(),
      static_cast<unsigned long long>(scenario.tree_stats.object_count),
      scenario.tree_stats.total_pages(), scenario.tree_stats.directory_pages,
      100.0 * scenario.tree_stats.directory_share(),
      scenario.tree_stats.height);
  return scenario;
}

/// One (family, extent) pair with its paper-style name.
struct SetSpec {
  workload::QueryFamily family;
  int ex;
};

/// The full query-set rosters used by the paper's figures.
inline std::vector<SetSpec> UniformSets() {
  using F = workload::QueryFamily;
  return {{F::kUniform, 0},   {F::kUniform, 1000}, {F::kUniform, 333},
          {F::kUniform, 100}, {F::kUniform, 33}};
}
inline std::vector<SetSpec> IdenticalSets() {
  using F = workload::QueryFamily;
  return {{F::kIdentical, 0}, {F::kIdentical, 1}};
}
inline std::vector<SetSpec> SimilarSets() {
  using F = workload::QueryFamily;
  return {{F::kSimilar, 0},   {F::kSimilar, 1000}, {F::kSimilar, 333},
          {F::kSimilar, 100}, {F::kSimilar, 33}};
}
inline std::vector<SetSpec> IntensifiedSets() {
  using F = workload::QueryFamily;
  return {{F::kIntensified, 0},   {F::kIntensified, 1000},
          {F::kIntensified, 333}, {F::kIntensified, 100},
          {F::kIntensified, 33}};
}
inline std::vector<SetSpec> IndependentSets() {
  using F = workload::QueryFamily;
  return {{F::kIndependent, 0},   {F::kIndependent, 1000},
          {F::kIndependent, 333}, {F::kIndependent, 100},
          {F::kIndependent, 33}};
}
inline std::vector<SetSpec> AllSets() {
  std::vector<SetSpec> all;
  for (const auto& group : {UniformSets(), IdenticalSets(), SimilarSets(),
                            IntensifiedSets(), IndependentSets()}) {
    all.insert(all.end(), group.begin(), group.end());
  }
  return all;
}

/// Runs `policies` against each query set at each buffer fraction and
/// prints one table per buffer fraction: rows = query sets, columns = the
/// policies' relative gains versus LRU (the paper's reporting format).
inline void PrintGainTables(const sim::Scenario& scenario,
                            const std::vector<SetSpec>& sets,
                            const std::vector<std::string>& policies,
                            const std::vector<double>& buffer_fractions,
                            const std::string& title) {
  for (const double fraction : buffer_fractions) {
    std::vector<std::string> header{"query set"};
    for (const std::string& p : policies) header.push_back(p);
    sim::Table table(header);
    for (const SetSpec& spec : sets) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(scenario, spec.family, spec.ex);
      sim::RunOptions options;
      options.buffer_frames = scenario.BufferFrames(fraction);
      const sim::RunResult baseline = sim::RunQuerySet(
          scenario.disk.get(), scenario.tree_meta, "LRU", queries, options);
      std::vector<std::string> row{queries.name};
      for (const std::string& policy : policies) {
        const sim::RunResult result =
            sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta, policy,
                             queries, options);
        row.push_back(sim::FormatGain(sim::GainVersus(baseline, result)));
      }
      table.AddRow(std::move(row));
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s — %s, buffer %.1f%% (%zu frames), gain vs LRU",
                  title.c_str(), scenario.name.c_str(), fraction * 100.0,
                  scenario.BufferFrames(fraction));
    table.Print(buf);
  }
}

}  // namespace sdb::bench

#endif  // SPATIALBUFFER_BENCH_BENCH_UTIL_H_
