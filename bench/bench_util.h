#ifndef SPATIALBUFFER_BENCH_BENCH_UTIL_H_
#define SPATIALBUFFER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "sim/sweep.h"
#include "storage/fault_injection.h"

namespace sdb::bench {

/// Environment knob with a default: unset -> `fallback`, set -> the value
/// verbatim (so an empty value disables path-valued knobs). The bench mains
/// share these helpers instead of hand-rolling getenv parsing.
inline std::string EnvOr(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? std::string(fallback) : std::string(env);
}

/// Positive-integer environment knob: unset/empty/non-positive -> fallback.
inline size_t EnvSizeT(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const long long value = std::strtoll(env, nullptr, 10);
  return value < 1 ? fallback : static_cast<size_t>(value);
}

/// Fault profile of the bench run. SDB_FAULT_PROFILE holds a
/// storage::FaultProfile spec ("transient=0.01,bitflip=0.001,bad=18-20");
/// SDB_FAULT_SEED overrides the profile's seed without re-stating the rest
/// of the spec. Unset or empty -> a disabled profile, and the benches run
/// exactly as before the fault layer existed.
inline storage::FaultProfile BenchFaultProfile() {
  storage::FaultProfile profile;
  const std::string spec = EnvOr("SDB_FAULT_PROFILE", "");
  if (!spec.empty()) {
    const std::optional<storage::FaultProfile> parsed =
        storage::FaultProfile::Parse(spec);
    if (parsed.has_value()) {
      profile = *parsed;
    } else {
      std::fprintf(stderr,
                   "warning: malformed SDB_FAULT_PROFILE ignored: %s\n",
                   spec.c_str());
    }
  }
  const std::string seed = EnvOr("SDB_FAULT_SEED", "");
  if (!seed.empty()) {
    profile.seed = std::strtoull(seed.c_str(), nullptr, 10);
  }
  return profile;
}

/// JSON-Lines sink of the merged metrics registry (SDB_BENCH_METRICS;
/// empty disables).
inline std::string BenchMetricsPath() {
  return EnvOr("SDB_BENCH_METRICS", "BENCH_metrics.json");
}

/// Chrome trace_event sink of the sweep runner's worker timelines
/// (SDB_BENCH_TRACE; off by default).
inline std::string BenchTracePath() { return EnvOr("SDB_BENCH_TRACE", ""); }

/// Default scale of the benchmark databases relative to the generator
/// defaults (0.5 -> 100k objects for database 1). The SDB_SCALE environment
/// variable multiplies object counts further; the paper's setup corresponds
/// to roughly SDB_SCALE=8 (1.6M objects) and is not needed to reproduce the
/// relative effects, since buffers are sized relative to the tree.
inline constexpr double kBenchScale = 0.5;

/// Builds one of the two experiment databases with insert-based (paper-
/// faithful) construction and prints its headline statistics.
///
/// If SDB_CACHE_DIR is set, the built disk image is cached there (keyed by
/// database kind and scale) and reloaded on subsequent runs, cutting the
/// multi-second tree construction from every bench invocation. The map and
/// query generators re-run either way (they are fast and deterministic).
inline sim::Scenario BuildBenchDatabase(sim::DatabaseKind kind) {
  sim::ScenarioOptions options;
  options.kind = kind;
  options.build = sim::BuildMode::kInsert;
  options.scale = kBenchScale * sim::DefaultScale();
  sim::Scenario scenario = sim::BuildCachedScenario(options);
  std::printf(
      "database %-10s: %llu objects, %u pages (%u directory = %.2f%%), "
      "height %u\n",
      scenario.name.c_str(),
      static_cast<unsigned long long>(scenario.tree_stats.object_count),
      scenario.tree_stats.total_pages(), scenario.tree_stats.directory_pages,
      100.0 * scenario.tree_stats.directory_share(),
      scenario.tree_stats.height);
  return scenario;
}

/// One (family, extent) pair with its paper-style name.
struct SetSpec {
  workload::QueryFamily family;
  int ex;
};

/// The full query-set rosters used by the paper's figures.
inline std::vector<SetSpec> UniformSets() {
  using F = workload::QueryFamily;
  return {{F::kUniform, 0},   {F::kUniform, 1000}, {F::kUniform, 333},
          {F::kUniform, 100}, {F::kUniform, 33}};
}
inline std::vector<SetSpec> IdenticalSets() {
  using F = workload::QueryFamily;
  return {{F::kIdentical, 0}, {F::kIdentical, 1}};
}
inline std::vector<SetSpec> SimilarSets() {
  using F = workload::QueryFamily;
  return {{F::kSimilar, 0},   {F::kSimilar, 1000}, {F::kSimilar, 333},
          {F::kSimilar, 100}, {F::kSimilar, 33}};
}
inline std::vector<SetSpec> IntensifiedSets() {
  using F = workload::QueryFamily;
  return {{F::kIntensified, 0},   {F::kIntensified, 1000},
          {F::kIntensified, 333}, {F::kIntensified, 100},
          {F::kIntensified, 33}};
}
inline std::vector<SetSpec> IndependentSets() {
  using F = workload::QueryFamily;
  return {{F::kIndependent, 0},   {F::kIndependent, 1000},
          {F::kIndependent, 333}, {F::kIndependent, 100},
          {F::kIndependent, 33}};
}
inline std::vector<SetSpec> AllSets() {
  std::vector<SetSpec> all;
  for (const auto& group : {UniformSets(), IdenticalSets(), SimilarSets(),
                            IntensifiedSets(), IndependentSets()}) {
    all.insert(all.end(), group.begin(), group.end());
  }
  return all;
}

/// Runs `policies` against each query set at each buffer fraction and
/// prints one table per buffer fraction: rows = query sets, columns = the
/// policies' relative gains versus LRU (the paper's reporting format).
///
/// The grid executes on the sweep runner: the LRU baseline is replayed once
/// per (fraction, query set) and shared across all policy columns, cells
/// run on SDB_BENCH_THREADS worker threads (default 1; the tables are
/// identical for every thread count), and a machine-readable record of
/// every run is appended to BENCH_sweep.json (path overridable via
/// SDB_BENCH_JSON; set it empty to disable).
///
/// Observability: every run carries a private metrics collector; its
/// snapshot is embedded in the run's JSON row, and the merged registry of
/// the whole sweep is dumped to BENCH_metrics.json (override/disable via
/// SDB_BENCH_METRICS; the file holds the most recent sweep of the bench).
/// Setting SDB_BENCH_TRACE=<path> additionally writes the runner's worker
/// timelines as a Chrome trace_event file for chrome://tracing / Perfetto.
inline void PrintGainTables(const sim::Scenario& scenario,
                            const std::vector<SetSpec>& sets,
                            const std::vector<std::string>& policies,
                            const std::vector<double>& buffer_fractions,
                            const std::string& title) {
  sim::SweepSpec spec;
  spec.fractions = buffer_fractions;
  spec.sets.reserve(sets.size());
  for (const SetSpec& set : sets) spec.sets.push_back({set.family, set.ex});
  spec.policies = policies;
  spec.collect_metrics = true;
  // Fault soak: a nonzero SDB_FAULT_PROFILE runs the whole sweep through
  // the fault-injecting device (recovered faults leave the tables and the
  // JSON byte-identical; unrecoverable ones surface as io_errors rows).
  spec.fault_profile = BenchFaultProfile();
  const sim::SweepResult result = sim::RunSweep(scenario, spec);
  sim::PrintSweepTables(scenario, spec, result, title);
  const std::string json = sim::BenchJsonPath();
  if (!json.empty() &&
      !sim::AppendSweepJson(json, title, scenario, spec, result)) {
    std::fprintf(stderr, "warning: could not write %s\n", json.c_str());
  }
  const std::string metrics_path = BenchMetricsPath();
  if (!metrics_path.empty() &&
      !obs::WriteMetricsJsonLines(metrics_path, title, result.metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 metrics_path.c_str());
  }
  const std::string trace_path = BenchTracePath();
  if (!trace_path.empty() && !sim::WriteSweepTrace(trace_path, result)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 trace_path.c_str());
  }
}

}  // namespace sdb::bench

#endif  // SPATIALBUFFER_BENCH_BENCH_UTIL_H_
