// Extension: interactive browsing sessions. The paper's query sets are
// i.i.d. draws from fixed distributions; GIS clients issue *sessions* whose
// consecutive viewports overlap heavily (pans) with occasional jumps to hot
// places. Sessions combine spatial locality (good for spatial criteria)
// with hot-spot revisits (good for recency/frequency) inside one stream —
// the regime the adaptable buffer was designed for. Three session profiles
// sweep the mix from pan-dominated to jump-dominated.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/session_generator.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);

  struct Profile {
    const char* name;
    double pan, zoom;
  };
  const std::vector<Profile> profiles{
      {"pan-heavy (80/15/5)", 0.80, 0.15},
      {"balanced  (65/20/15)", 0.65, 0.20},
      {"jump-heavy (40/20/40)", 0.40, 0.20},
  };
  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "ARC",
                                          "A", "ASB"};

  for (const double fraction : {0.012, 0.047}) {
    std::vector<std::string> header{"session profile"};
    for (const std::string& p : policies) header.push_back(p);
    sim::Table table(header);
    for (const Profile& profile : profiles) {
      workload::SessionParams params;
      params.steps = 4000;
      params.pan_probability = profile.pan;
      params.zoom_probability = profile.zoom;
      params.seed = 2026;
      const workload::QuerySet session =
          workload::MakeSessionQuerySet(params, scenario.places);
      sim::RunOptions options;
      options.buffer_frames = scenario.BufferFrames(fraction);
      sim::RunResult lru;
      std::vector<std::string> row{profile.name};
      for (const std::string& policy : policies) {
        const sim::RunResult result =
            sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                             policy, session, options);
        if (lru.disk_reads == 0) lru = result;
        row.push_back(sim::FormatGain(sim::GainVersus(lru, result)));
      }
      table.AddRow(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Extension — browsing sessions (4000 viewports), buffer "
                  "%.1f%%, gain vs LRU",
                  fraction * 100.0);
    table.Print(title);
  }
  return 0;
}
