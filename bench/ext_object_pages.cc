// Extension: all three page categories in ONE buffer. The paper buffers
// object pages separately and reports tree I/O only; type-based LRU (LRU-T,
// Sec. 2.1) however exists precisely for buffers that mix directory, data
// and object pages — it drops object pages first and directory pages last.
// This bench runs the full filter + refinement pipeline with tree and
// object pages sharing a single disk file and a single buffer, where the
// category-aware policies can finally show their design intent.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/policy_factory.h"
#include "objstore/object_store.h"
#include "rtree/rtree.h"

int main() {
  using namespace sdb;

  // One shared file for tree AND object pages.
  const workload::GeneratedMap map = workload::GenerateMap(
      workload::UsLikeParams(0.25 * sim::DefaultScale()));
  storage::DiskManager disk;
  storage::PageId tree_meta;
  uint32_t total_pages = 0;
  {
    core::BufferManager build(&disk, 1u << 15, core::CreatePolicy("LRU"));
    rtree::RTree tree(&disk, &build);
    objstore::ObjectStore store(&disk, &build);
    for (const workload::SpatialObject& object : map.dataset.objects) {
      objstore::ExactObject exact;
      exact.id = object.id;
      exact.mbr = object.rect;
      exact.vertices = object.vertices;
      const rtree::ObjectRef ref =
          store.Append(exact, core::AccessContext{});
      rtree::Entry entry;
      entry.id = object.id;
      entry.rect = object.rect;
      entry.ref = ref;
      tree.Insert(entry, core::AccessContext{});
    }
    tree.PersistMeta();
    build.FlushAll();
    tree_meta = tree.meta_page();
    total_pages = static_cast<uint32_t>(disk.page_count());
  }
  std::printf("shared file: %u pages (tree + object pages)\n", total_pages);

  workload::QuerySpec spec;
  spec.family = workload::QueryFamily::kSimilar;
  spec.ex = 100;
  spec.count = 600;
  spec.seed = 17;
  const workload::QuerySet queries =
      workload::MakeQuerySet(spec, map.dataset, map.places);

  for (const double fraction : {0.01, 0.04}) {
    const size_t frames = std::max<size_t>(
        8, static_cast<size_t>(total_pages * fraction));
    sim::Table table({"policy", "disk reads", "gain vs LRU", "hit rate",
                      "exact matches"});
    uint64_t lru_reads = 0;
    for (const std::string policy :
         {"LRU", "LRU-T", "LRU-P", "LRU-2", "A", "ASB"}) {
      core::BufferManager buffer(&disk, frames,
                                 core::CreatePolicy(policy));
      rtree::RTree tree = rtree::RTree::Open(&disk, &buffer, tree_meta);
      objstore::ObjectStore store(&disk, &buffer);
      disk.ResetStats();
      uint64_t matches = 0;
      uint64_t query_id = 0;
      for (const geom::Rect& window : queries.queries) {
        const core::AccessContext ctx{++query_id};
        // Filter on the tree, refine on the shared-buffer object pages.
        for (const rtree::Entry& candidate : tree.WindowQuery(window, ctx)) {
          if (store.RefineWindow(candidate.ref, window, ctx)) ++matches;
        }
      }
      const uint64_t reads = disk.stats().reads;
      if (lru_reads == 0) lru_reads = reads;
      table.AddRow({policy, std::to_string(reads),
                    sim::FormatGain(static_cast<double>(lru_reads) /
                                        static_cast<double>(reads) -
                                    1.0),
                    sim::FormatPercent(buffer.stats().HitRate()),
                    std::to_string(matches)});
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Extension — mixed tree+object buffer (filter+refine, "
                  "%.0f%% of %u pages = %zu frames)",
                  fraction * 100.0, total_pages, frames);
    table.Print(title);
  }
  return 0;
}
