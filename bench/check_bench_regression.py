#!/usr/bin/env python3
"""CI guards over the BENCH_*.json JSON-Lines files.

Two modes:

  obs-overhead BENCH_policy_overhead.json --max-frac 0.5
      Asserts every bench:"obs_overhead" row keeps overhead_frac at or
      under the threshold (the attached-collector cost on the buffer-hit
      path must stay bounded).

  wal A.json B.json --max-drop 0.5
      Joins the bench:"wal_commit" rows of two BENCH_wal.json runs on
      (window_us, threads) and fails when commits_per_sec in B dropped
      by more than the fraction --max-drop relative to A (group commit
      must keep paying for itself).

  writeback BENCH_wal.json [--max-p99-ratio 1.0]
      Reads the bench:"wal_writeback" pair (flusher off/on) from one run
      and fails unless the flusher-on row shows ZERO steady-state
      sync_writeback_fallbacks and forced_steals, flushed at least one
      page in the background, and kept p99 pin latency at or under
      --max-p99-ratio times the flusher-off row.

  writefault BENCH_fault.json
      Reads the bench:"fault_write" chaos-soak rows (churn x write faults
      x crash x recover) and fails unless every row recovered the last
      acknowledged commit exactly, every sticky-outage row entered
      degraded mode while still serving reads, and the fault matrix as a
      whole demonstrably injected write faults (a soak that injected
      nothing proves nothing).

  compare A.json B.json [--field hit_rate] [--tol 0]
      Joins two BENCH_sweep.json runs on the row key
      (bench, database, fraction, query_set, policy, baseline,
      buffer_frames) and fails when the field drifts beyond the tolerance
      in any row present in both files. hit_rate is derived as
      buffer_hits / buffer_requests when the row does not carry it
      directly, so the sweep rows work as-is.

Exit status: 0 clean, 1 regression found, 2 usage/input error.
"""

import argparse
import json
import sys


def read_rows(path):
    rows = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as err:
                    print(f"{path}:{lineno}: malformed JSON: {err}",
                          file=sys.stderr)
                    sys.exit(2)
    except OSError as err:
        print(f"cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    return rows


def check_obs_overhead(args):
    rows = [r for r in read_rows(args.file)
            if r.get("bench") == "obs_overhead"]
    if not rows:
        print(f"{args.file}: no obs_overhead rows found", file=sys.stderr)
        return 2
    failures = 0
    for row in rows:
        frac = row.get("overhead_frac")
        if frac is None:
            print(f"obs_overhead row without overhead_frac: {row}",
                  file=sys.stderr)
            failures += 1
            continue
        label = f"{row.get('policy', '?')}/{row.get('frames', '?')} frames"
        if frac > args.max_frac:
            print(f"FAIL {label}: overhead_frac {frac:.4f} > "
                  f"threshold {args.max_frac:.4f}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {label}: overhead_frac {frac:.4f} <= "
                  f"{args.max_frac:.4f}")
    return 1 if failures else 0


ROW_KEY = ("bench", "database", "fraction", "query_set", "policy",
           "baseline", "buffer_frames")


def row_key(row):
    return tuple(row.get(field) for field in ROW_KEY)


def field_value(row, field):
    if field in row:
        return row[field]
    if field == "hit_rate":
        requests = row.get("buffer_requests")
        hits = row.get("buffer_hits")
        if requests:
            return hits / requests
    return None


def check_compare(args):
    rows_a = {row_key(r): r for r in read_rows(args.file_a)}
    rows_b = {row_key(r): r for r in read_rows(args.file_b)}
    shared = sorted(set(rows_a) & set(rows_b), key=repr)
    if not shared:
        print("no shared rows between the two files", file=sys.stderr)
        return 2
    failures = 0
    compared = 0
    for key in shared:
        va = field_value(rows_a[key], args.field)
        vb = field_value(rows_b[key], args.field)
        if va is None or vb is None:
            continue
        compared += 1
        if abs(va - vb) > args.tol:
            label = "/".join(str(k) for k in key if k is not None)
            print(f"FAIL {label}: {args.field} {va} vs {vb} "
                  f"(drift {abs(va - vb):g} > tol {args.tol:g})",
                  file=sys.stderr)
            failures += 1
    if compared == 0:
        print(f"no shared rows carry field {args.field!r}", file=sys.stderr)
        return 2
    print(f"compared {compared} shared rows on {args.field!r}: "
          f"{failures} drifted")
    return 1 if failures else 0


def check_wal(args):
    def commit_rows(path):
        rows = {}
        for row in read_rows(path):
            if row.get("bench") != "wal_commit":
                continue
            rows[(row.get("window_us"), row.get("threads"))] = row
        return rows

    rows_a = commit_rows(args.file_a)
    rows_b = commit_rows(args.file_b)
    shared = sorted(set(rows_a) & set(rows_b), key=repr)
    if not shared:
        print("no shared wal_commit rows between the two files",
              file=sys.stderr)
        return 2
    failures = 0
    for key in shared:
        base = rows_a[key].get("commits_per_sec")
        cand = rows_b[key].get("commits_per_sec")
        if not base or cand is None:
            continue
        label = f"window={key[0]}us/threads={key[1]}"
        floor = (1.0 - args.max_drop) * base
        if cand < floor:
            print(f"FAIL {label}: commits_per_sec {cand:.0f} < "
                  f"{floor:.0f} ({base:.0f} - {100 * args.max_drop:.0f}%)",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {label}: commits_per_sec {cand:.0f} "
                  f">= {floor:.0f}")
    return 1 if failures else 0


def check_writeback(args):
    rows = {}
    for row in read_rows(args.file):
        if row.get("bench") != "wal_writeback":
            continue
        key = (row.get("operations"), row.get("frames"), row.get("flusher"))
        rows[key] = row
    pairs = sorted({(ops, frames) for (ops, frames, _) in rows}, key=repr)
    if not pairs:
        print(f"{args.file}: no wal_writeback rows found", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for ops, frames in pairs:
        off = rows.get((ops, frames, 0))
        on = rows.get((ops, frames, 1))
        label = f"ops={ops}/frames={frames}"
        if off is None or on is None:
            print(f"FAIL {label}: missing flusher "
                  f"{'off' if off is None else 'on'} row", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for counter in ("sync_writeback_fallbacks", "forced_steals"):
            value = on.get(counter)
            if value != 0:
                print(f"FAIL {label}: flusher-on {counter} = {value} "
                      f"(expected 0 in steady state)", file=sys.stderr)
                failures += 1
            else:
                print(f"ok   {label}: flusher-on {counter} = 0")
        flushed = on.get("pages_flushed")
        if not flushed:
            print(f"FAIL {label}: flusher-on pages_flushed = {flushed} "
                  f"(background flusher did no work)", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {label}: pages_flushed = {flushed}")
        base = off.get("p99_pin_ns")
        cand = on.get("p99_pin_ns")
        if not base or cand is None:
            print(f"FAIL {label}: rows missing p99_pin_ns", file=sys.stderr)
            failures += 1
            continue
        ceiling = args.max_p99_ratio * base
        if cand > ceiling:
            print(f"FAIL {label}: flusher-on p99_pin_ns {cand:.0f} > "
                  f"{ceiling:.0f} ({base:.0f} x {args.max_p99_ratio:g})",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {label}: p99_pin_ns {cand:.0f} <= {ceiling:.0f} "
                  f"(off: {base:.0f})")
    if checked == 0:
        return 2
    return 1 if failures else 0


def check_writefault(args):
    rows = [r for r in read_rows(args.file)
            if r.get("bench") == "fault_write"]
    if not rows:
        print(f"{args.file}: no fault_write rows found", file=sys.stderr)
        return 2
    failures = 0
    injected_total = 0
    faulty_rows = 0
    for row in rows:
        label = f"{row.get('profile', '?')}/seed={row.get('seed', '?')}"
        if row.get("recovered_match") != 1:
            print(f"FAIL {label}: recovery diverged from the last "
                  f"acknowledged commit", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {label}: recovered {row.get('recovered_entries')} "
                  f"entries exactly ({row.get('commits_acked')} commits "
                  f"acked)")
        if row.get("sticky") == 1:
            if not row.get("degraded"):
                print(f"FAIL {label}: fsync outage never entered degraded "
                      f"mode", file=sys.stderr)
                failures += 1
            if not row.get("degraded_reads_served"):
                print(f"FAIL {label}: degraded service served no reads "
                      f"(read availability floor)", file=sys.stderr)
                failures += 1
        elif row.get("degraded"):
            print(f"FAIL {label}: transient-only profile entered degraded "
                  f"mode", file=sys.stderr)
            failures += 1
        is_faulty = (row.get("wal_write_rate") or row.get("sync_fail_rate")
                     or row.get("data_write_rate") or row.get("sticky"))
        if is_faulty:
            faulty_rows += 1
            injected_total += (row.get("wal_faults_injected", 0)
                              + row.get("data_faults_injected", 0))
    if faulty_rows and injected_total == 0:
        print("FAIL soak injected zero write faults across every faulty "
              "profile: the matrix proved nothing", file=sys.stderr)
        failures += 1
    elif faulty_rows:
        print(f"ok   {injected_total} write faults injected across "
              f"{faulty_rows} faulty cells")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    obs = sub.add_parser("obs-overhead",
                         help="guard obs_overhead rows against a threshold")
    obs.add_argument("file")
    obs.add_argument("--max-frac", type=float, default=0.5)

    cmp_parser = sub.add_parser("compare",
                                help="diff a field between two bench runs")
    cmp_parser.add_argument("file_a")
    cmp_parser.add_argument("file_b")
    cmp_parser.add_argument("--field", default="hit_rate")
    cmp_parser.add_argument("--tol", type=float, default=0.0)

    wal = sub.add_parser("wal",
                         help="guard wal_commit throughput between runs")
    wal.add_argument("file_a")
    wal.add_argument("file_b")
    wal.add_argument("--max-drop", type=float, default=0.5)

    wb = sub.add_parser("writeback",
                        help="guard the background-flusher churn rows")
    wb.add_argument("file")
    wb.add_argument("--max-p99-ratio", type=float, default=1.0)

    wf = sub.add_parser("writefault",
                        help="guard the write-fault chaos-soak rows")
    wf.add_argument("file")

    args = parser.parse_args()
    if args.mode == "obs-overhead":
        sys.exit(check_obs_overhead(args))
    if args.mode == "wal":
        sys.exit(check_wal(args))
    if args.mode == "writeback":
        sys.exit(check_writeback(args))
    if args.mode == "writefault":
        sys.exit(check_writefault(args))
    sys.exit(check_compare(args))


if __name__ == "__main__":
    main()
