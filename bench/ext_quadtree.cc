// Extension: the spatial replacement criteria on the quadtree, the third
// access method the paper names ("in a quadtree, the quadtree cells match
// these entries"). Quadrant cells halve per level, so dense (hot) regions
// live in geometrically small pages — the intensified-distribution
// robustness problem is structural here, which makes the quadtree a sharp
// test for ASB's self-tuning.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/policy_factory.h"
#include "quadtree/quadtree.h"

namespace {

using namespace sdb;

uint64_t RunQuadQueries(storage::DiskManager* disk, storage::PageId meta,
                        const std::string& policy,
                        const workload::QuerySet& queries, size_t frames) {
  core::BufferManager buffer(disk, frames, core::CreatePolicy(policy));
  const quadtree::QuadTree tree =
      quadtree::QuadTree::Open(disk, &buffer, meta);
  disk->ResetStats();
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    tree.WindowQueryVisit(window, core::AccessContext{++query_id},
                          [](const quadtree::QuadPoint&) {});
  }
  return disk->stats().reads;
}

}  // namespace

int main() {
  workload::MapParams params = workload::UsLikeParams(bench::kBenchScale *
                                                      sim::DefaultScale());
  const workload::GeneratedMap map = workload::GenerateMap(params);

  auto disk = std::make_unique<storage::DiskManager>();
  storage::PageId meta;
  quadtree::QuadTreeStats stats;
  {
    core::BufferManager build(disk.get(), 1u << 15,
                              core::CreatePolicy("LRU"));
    quadtree::QuadTree tree(disk.get(), &build);
    for (const workload::SpatialObject& object : map.dataset.objects) {
      tree.Insert(object.rect.Center(), object.id, core::AccessContext{});
    }
    tree.PersistMeta();
    build.FlushAll();
    meta = tree.meta_page();
    stats = tree.ComputeStats();
  }
  std::printf(
      "quadtree: %llu points, %u pages (%u directory), max depth %u\n",
      static_cast<unsigned long long>(stats.point_count),
      stats.total_pages(), stats.directory_pages, stats.max_depth_used);

  sim::Scenario shim;
  shim.dataset = map.dataset;
  shim.places = map.places;
  shim.tree_stats.data_pages = stats.leaf_pages;
  shim.tree_stats.directory_pages = stats.directory_pages;

  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "A",
                                          "SLRU:A:0.25", "ASB"};
  for (const double fraction : {0.012, 0.047}) {
    const size_t frames = shim.BufferFrames(fraction);
    std::vector<std::string> header{"query set"};
    for (const auto& p : policies) header.push_back(p);
    sim::Table table(header);
    for (const bench::SetSpec spec :
         {bench::SetSpec{workload::QueryFamily::kUniform, 100},
          bench::SetSpec{workload::QueryFamily::kUniform, 33},
          bench::SetSpec{workload::QueryFamily::kSimilar, 100},
          bench::SetSpec{workload::QueryFamily::kIntensified, 100},
          bench::SetSpec{workload::QueryFamily::kIntensified, 33}}) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(shim, spec.family, spec.ex);
      uint64_t lru = 0;
      std::vector<std::string> row{queries.name};
      for (const std::string& policy : policies) {
        const uint64_t reads =
            RunQuadQueries(disk.get(), meta, policy, queries, frames);
        if (lru == 0) lru = reads;
        row.push_back(sim::FormatGain(
            static_cast<double>(lru) / static_cast<double>(reads) - 1.0));
      }
      table.AddRow(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Extension — policies on the quadtree, buffer %.1f%% "
                  "(%zu frames)",
                  fraction * 100.0, frames);
    table.Print(title);
  }
  return 0;
}
