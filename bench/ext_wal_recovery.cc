// Extension: the write path under measurement. Three experiments, all
// appended as JSON-Lines to BENCH_wal.json (override with SDB_BENCH_WAL;
// empty disables):
//
//   wal_commit    — commit throughput vs the group-commit window
//                   {inline, 50us, 200us, 1000us} with concurrent
//                   committer threads. CI gates this table: batching
//                   commits into one fsync must keep paying for itself.
//   wal_recovery  — redo-recovery time and replayed-image count vs the
//                   churn volume {64, 256, 1024 ops} that produced the
//                   log (the recovery-time-vs-dirty-set axis).
//   wal_write_mix — ASB vs LRU hit rates when {10%, 50%, 90%} of the
//                   operations against the US-like database are churn
//                   writes instead of window queries. The paper evaluates
//                   read-only replays; this probes whether ASB's spatial
//                   criterion survives a mutating working set.
//   wal_writeback — foreground pin latency (p99) under write churn with
//                   the background flusher off vs on. The flusher-on row
//                   must show zero sync write-back fallbacks and zero
//                   forced steals after warm-up; CI gates both plus the
//                   p99 ratio.
//   wal_redo      — recovery wall time vs redo worker count {1, 2, 4, 8}
//                   over one churn-built log, with byte-identity of every
//                   parallel replay against the serial device asserted.
//
// Knobs: SDB_WAL_THREADS (committers, default 4), SDB_WAL_COMMITS
// (commits per thread, default 250), SDB_WAL_MIX_OPS (mixed-workload
// operations per cell, default 1500), SDB_WAL_CHURN_OPS (write-back cell
// operations, default 24000), SDB_REDO_WORKERS is deliberately ignored
// here (the redo sweep sets worker counts explicitly).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "sim/churn.h"
#include "sim/report.h"
#include "storage/disk_manager.h"
#include "svc/buffer_service.h"
#include "svc/flush_coordinator.h"
#include "svc/session_executor.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace {

using namespace sdb;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// wal_commit: throughput vs group-commit window

struct CommitCell {
  uint32_t window_us = 0;
  size_t threads = 0;
  uint64_t commits = 0;
  double elapsed_ms = 0.0;
  double commits_per_sec = 0.0;
  uint64_t fsyncs = 0;
  uint64_t appends = 0;
};

CommitCell RunCommitCell(uint32_t window_us, size_t threads,
                         size_t commits_per_thread) {
  storage::DiskManager log;
  wal::WalOptions options;
  options.group_commit = window_us > 0;
  options.group_window_us = window_us;
  wal::WalManager wal(&log, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&wal, t, threads, commits_per_thread] {
      std::vector<std::byte> image(wal.device().page_size(),
                                   std::byte{static_cast<uint8_t>(t)});
      const core::AccessContext ctx{t + 1};
      for (size_t i = 0; i < commits_per_thread; ++i) {
        const wal::PageImageRef ref{static_cast<storage::PageId>(t), image};
        const core::StatusOr<wal::Lsn> end =
            wal.CommitPages({&ref, 1}, threads, ctx);
        SDB_CHECK_MSG(end.ok(), "bench commit failed");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  CommitCell cell;
  cell.window_us = window_us;
  cell.threads = threads;
  cell.elapsed_ms = ElapsedMs(start);
  const wal::WalStats stats = wal.stats();
  cell.commits = stats.commits;
  cell.fsyncs = stats.fsyncs;
  cell.appends = stats.appends;
  cell.commits_per_sec =
      cell.elapsed_ms <= 0.0
          ? 0.0
          : 1000.0 * static_cast<double>(cell.commits) / cell.elapsed_ms;
  return cell;
}

std::string CommitJson(const CommitCell& cell) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_commit\",\"window_us\":%u,\"threads\":%zu,"
      "\"commits\":%llu,\"elapsed_ms\":%.3f,\"commits_per_sec\":%.1f,"
      "\"fsyncs\":%llu,\"appends\":%llu}",
      cell.window_us, cell.threads,
      static_cast<unsigned long long>(cell.commits), cell.elapsed_ms,
      cell.commits_per_sec, static_cast<unsigned long long>(cell.fsyncs),
      static_cast<unsigned long long>(cell.appends));
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_recovery: redo time vs churn volume

struct RecoveryCell {
  size_t churn_ops = 0;
  uint64_t log_pages = 0;
  uint64_t scanned = 0;
  uint64_t replayed = 0;
  double recover_ms = 0.0;
};

RecoveryCell RunRecoveryCell(size_t churn_ops) {
  storage::DiskManager data;
  storage::DiskManager log;
  wal::WalManager wal(&log);
  core::BufferManager buffer(&data, /*frames=*/128,
                             core::CreatePolicy("LRU"));
  buffer.AttachWal(&wal);
  const core::AccessContext ctx{1};
  rtree::RTree tree(&data, &buffer);

  sim::ChurnOptions options;
  options.operations = churn_ops;
  options.delete_fraction = 0.3;
  options.seed = 4242;
  options.commit_every = 16;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return buffer.Commit(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, geom::Rect(0, 0, 100, 100), options, hooks, ctx);
  SDB_CHECK_MSG(churn.ok(), "bench churn failed");
  tree.PersistMeta();
  SDB_CHECK_MSG(buffer.Commit(ctx).ok(), "bench final commit failed");

  RecoveryCell cell;
  cell.churn_ops = churn_ops;
  cell.log_pages = log.page_count();
  storage::DiskManager recovered;
  const auto start = std::chrono::steady_clock::now();
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log, recovered);
  cell.recover_ms = ElapsedMs(start);
  SDB_CHECK_MSG(result.ok(), "bench recovery failed");
  cell.scanned = result->scanned_records;
  cell.replayed = result->replayed_pages;
  return cell;
}

std::string RecoveryJson(const RecoveryCell& cell) {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_recovery\",\"churn_ops\":%zu,\"log_pages\":%llu,"
      "\"scanned_records\":%llu,\"replayed_pages\":%llu,"
      "\"recover_ms\":%.3f}",
      cell.churn_ops, static_cast<unsigned long long>(cell.log_pages),
      static_cast<unsigned long long>(cell.scanned),
      static_cast<unsigned long long>(cell.replayed), cell.recover_ms);
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_write_mix: ASB vs LRU under mixed read/write traffic

struct MixCell {
  std::string policy;
  double write_frac = 0.0;
  size_t operations = 0;
  double hit_rate = 0.0;
  uint64_t requests = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t commits = 0;
};

MixCell RunMixCell(const std::string& image_path,
                   storage::PageId tree_meta, const geom::Rect& space,
                   const workload::QuerySet& queries,
                   const std::string& policy, size_t frames,
                   double write_frac, size_t operations) {
  std::optional<storage::DiskManager> disk =
      storage::DiskManager::LoadImage(image_path);
  SDB_CHECK_MSG(disk.has_value(), "bench disk image reload failed");
  storage::DiskManager log;
  wal::WalManager wal(&log);
  core::BufferManager buffer(&*disk, frames, core::CreatePolicy(policy));
  buffer.AttachWal(&wal);
  const core::AccessContext ctx{7};
  rtree::RTree tree = rtree::RTree::Open(&*disk, &buffer, tree_meta);

  Rng rng(0x5EED0000 + static_cast<uint64_t>(write_frac * 100));
  const double w = space.width() * 0.002;
  const double h = space.height() * 0.002;
  std::vector<rtree::Entry> live;
  uint64_t next_id = 1ull << 40;
  size_t next_query = 0;
  // Warm-up pass over a slice of the query set so the two policies start
  // from a populated buffer, as the paper's replays do.
  for (size_t i = 0; i < queries.queries.size() / 10; ++i) {
    (void)tree.WindowQuery(queries.queries[i], ctx);
  }
  buffer.ResetStats();
  disk->ResetStats();

  for (size_t op = 1; op <= operations; ++op) {
    if (rng.NextDouble() < write_frac) {
      const bool do_delete = !live.empty() && rng.NextDouble() < 0.3;
      if (do_delete) {
        const size_t pick = static_cast<size_t>(rng.NextBelow(live.size()));
        const rtree::Entry victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        SDB_CHECK_MSG(tree.Delete(victim.id, victim.rect, ctx),
                      "bench churn delete lost an entry");
      } else {
        rtree::Entry entry;
        entry.rect = geom::Rect::Centered(
            {rng.Uniform(space.xmin, space.xmax),
             rng.Uniform(space.ymin, space.ymax)},
            w, h);
        entry.id = next_id++;
        tree.Insert(entry, ctx);
        live.push_back(entry);
      }
    } else {
      (void)tree.WindowQuery(
          queries.queries[next_query++ % queries.queries.size()], ctx);
    }
    if (op % 64 == 0) {
      tree.PersistMeta();
      SDB_CHECK_MSG(buffer.Commit(ctx).ok(), "bench mix commit failed");
    }
  }
  tree.PersistMeta();
  SDB_CHECK_MSG(buffer.Checkpoint(ctx).ok(), "bench mix checkpoint failed");

  MixCell cell;
  cell.policy = policy;
  cell.write_frac = write_frac;
  cell.operations = operations;
  const core::BufferStats& stats = buffer.stats();
  cell.hit_rate = stats.HitRate();
  cell.requests = stats.requests;
  cell.disk_reads = disk->stats().reads;
  cell.disk_writes = disk->stats().writes;
  cell.commits = wal.stats().commits;
  return cell;
}

std::string MixJson(const MixCell& cell) {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_write_mix\",\"policy\":\"%s\",\"write_frac\":%.2f,"
      "\"operations\":%zu,\"hit_rate\":%.6f,\"requests\":%llu,"
      "\"disk_reads\":%llu,\"disk_writes\":%llu,\"commits\":%llu}",
      cell.policy.c_str(), cell.write_frac, cell.operations, cell.hit_rate,
      static_cast<unsigned long long>(cell.requests),
      static_cast<unsigned long long>(cell.disk_reads),
      static_cast<unsigned long long>(cell.disk_writes),
      static_cast<unsigned long long>(cell.commits));
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_writeback: foreground pin latency with the flusher off vs on

struct WritebackCell {
  bool flusher = false;
  size_t operations = 0;
  size_t frames = 0;
  uint64_t pins = 0;  ///< steady-state pins the latency stats cover
  double p99_pin_ns = 0.0;
  double mean_pin_ns = 0.0;
  uint64_t sync_fallbacks = 0;  ///< steady-state delta
  uint64_t forced_steals = 0;   ///< steady-state delta
  uint64_t pages_flushed = 0;
  uint64_t dirty_writebacks = 0;
  double elapsed_ms = 0.0;
};

/// p99 of the steady-state window: the per-bucket difference between the
/// end-of-run histogram and its warm-up snapshot.
double SteadyStateQuantile(const svc::PinLatencyHistogram& end,
                           const svc::PinLatencyHistogram& warm, double q) {
  uint64_t counts[svc::PinLatencyHistogram::kBuckets];
  for (size_t i = 0; i < svc::PinLatencyHistogram::kBuckets; ++i) {
    counts[i] = end.counts[i] - warm.counts[i];
  }
  return obs::HistogramQuantile(
      std::span<const double>(svc::kPinLatencyBoundsNs),
      std::span<const uint64_t>(counts), q);
}

WritebackCell RunWritebackCell(bool flusher_on, size_t operations,
                               size_t frames) {
  storage::DiskManager disk;
  storage::DiskManager log;
  wal::WalOptions wal_options;
  wal_options.group_commit = true;
  wal::WalManager wal(&log, wal_options);
  svc::BufferServiceConfig config;
  config.shard_count = 2;
  config.total_frames = frames;
  config.policy_spec = "LRU";
  if (flusher_on) {
    config.flusher_threads = 2;
    config.dirty_low_watermark = 0.02;
  }
  svc::BufferService service(&disk, &wal, config);
  svc::CountingSource source(&service, /*time_pins=*/true);
  const core::AccessContext ctx{11};
  rtree::RTree tree(&disk, &source);

  sim::ChurnOptions options;
  options.operations = operations;
  options.delete_fraction = 0.3;
  options.seed = 20260807;
  options.commit_every = 32;
  options.warmup_operations = operations / 4;
  svc::PinLatencyHistogram warm;
  uint64_t warm_fallbacks = 0;
  uint64_t warm_steals = 0;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.on_steady_state = [&] {
    warm = source.pin_latency();
    warm_fallbacks =
        service.AggregateStats().buffer.sync_writeback_fallbacks;
    warm_steals = wal.stats().forced_steals;
    return core::Status::Ok();
  };
  const auto start = std::chrono::steady_clock::now();
  const core::StatusOr<sim::ChurnResult> churn = sim::RunChurn(
      tree, geom::Rect(0, 0, 100, 100), options, hooks, ctx);
  SDB_CHECK_MSG(churn.ok(), "writeback bench churn failed");
  tree.PersistMeta();
  SDB_CHECK_MSG(service.Commit(ctx).ok(), "writeback bench commit failed");

  WritebackCell cell;
  cell.flusher = flusher_on;
  cell.operations = operations;
  cell.frames = frames;
  cell.elapsed_ms = ElapsedMs(start);
  if (flusher_on) {
    service.flusher()->Stop();  // quiesce so the flushed count is final
    cell.pages_flushed = service.flusher()->stats().pages_flushed;
  }
  const svc::PinLatencyHistogram end = source.pin_latency();
  cell.pins = end.observations - warm.observations;
  cell.p99_pin_ns = SteadyStateQuantile(end, warm, 0.99);
  cell.mean_pin_ns =
      cell.pins == 0 ? 0.0 : (end.sum_ns - warm.sum_ns) /
                                 static_cast<double>(cell.pins);
  const svc::ShardStats stats = service.AggregateStats();
  cell.sync_fallbacks =
      stats.buffer.sync_writeback_fallbacks - warm_fallbacks;
  cell.forced_steals = wal.stats().forced_steals - warm_steals;
  cell.dirty_writebacks = stats.buffer.dirty_writebacks;
  SDB_CHECK_MSG(service.Checkpoint(ctx).ok(),
                "writeback bench quiesce failed");
  return cell;
}

std::string WritebackJson(const WritebackCell& cell) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_writeback\",\"flusher\":%d,\"operations\":%zu,"
      "\"frames\":%zu,\"pins\":%llu,\"p99_pin_ns\":%.1f,"
      "\"mean_pin_ns\":%.1f,\"sync_writeback_fallbacks\":%llu,"
      "\"forced_steals\":%llu,\"pages_flushed\":%llu,"
      "\"dirty_writebacks\":%llu,\"elapsed_ms\":%.3f}",
      cell.flusher ? 1 : 0, cell.operations, cell.frames,
      static_cast<unsigned long long>(cell.pins), cell.p99_pin_ns,
      cell.mean_pin_ns, static_cast<unsigned long long>(cell.sync_fallbacks),
      static_cast<unsigned long long>(cell.forced_steals),
      static_cast<unsigned long long>(cell.pages_flushed),
      static_cast<unsigned long long>(cell.dirty_writebacks),
      cell.elapsed_ms);
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_redo: recovery wall time vs redo worker count

struct RedoCell {
  size_t workers = 0;
  uint64_t replayed = 0;
  double recover_ms = 0.0;
  bool byte_identical = true;
};

std::string RedoJson(const RedoCell& cell) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"bench\":\"wal_redo\",\"workers\":%zu,"
                "\"replayed_pages\":%llu,\"recover_ms\":%.3f,"
                "\"byte_identical\":%d}",
                cell.workers,
                static_cast<unsigned long long>(cell.replayed),
                cell.recover_ms, cell.byte_identical ? 1 : 0);
  return buffer;
}

std::vector<RedoCell> RunRedoSweep(size_t churn_ops) {
  // One churn-built log, recovered once per worker count onto a fresh
  // device; every parallel device is compared byte-for-byte to serial.
  storage::DiskManager data;
  storage::DiskManager log;
  {
    wal::WalManager wal(&log);
    core::BufferManager buffer(&data, /*frames=*/128,
                               core::CreatePolicy("LRU"));
    buffer.AttachWal(&wal);
    const core::AccessContext ctx{13};
    rtree::RTree tree(&data, &buffer);
    sim::ChurnOptions options;
    options.operations = churn_ops;
    options.delete_fraction = 0.3;
    options.seed = 1789;
    options.commit_every = 16;
    sim::ChurnHooks hooks;
    hooks.commit = [&] {
      tree.PersistMeta();
      return buffer.Commit(ctx);
    };
    const core::StatusOr<sim::ChurnResult> churn = sim::RunChurn(
        tree, geom::Rect(0, 0, 100, 100), options, hooks, ctx);
    SDB_CHECK_MSG(churn.ok(), "redo bench churn failed");
    tree.PersistMeta();
    SDB_CHECK_MSG(buffer.Commit(ctx).ok(), "redo bench commit failed");
  }

  std::vector<RedoCell> cells;
  storage::DiskManager serial;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    storage::DiskManager recovered;
    storage::DiskManager& target = workers == 1 ? serial : recovered;
    wal::RecoveryOptions options;
    options.redo_workers = workers;
    const auto start = std::chrono::steady_clock::now();
    const core::StatusOr<wal::RecoveryResult> result =
        wal::Recover(log, target, {}, nullptr, options);
    RedoCell cell;
    cell.recover_ms = ElapsedMs(start);
    SDB_CHECK_MSG(result.ok(), "redo bench recovery failed");
    cell.workers = result->redo_workers;
    cell.replayed = result->replayed_pages;
    if (workers > 1) {
      cell.byte_identical = target.page_count() == serial.page_count();
      std::vector<std::byte> a(serial.page_size());
      std::vector<std::byte> b(serial.page_size());
      for (storage::PageId p = 0;
           cell.byte_identical && p < serial.page_count(); ++p) {
        SDB_CHECK(serial.Read(p, a).ok() && target.Read(p, b).ok());
        cell.byte_identical = std::memcmp(a.data(), b.data(), a.size()) == 0;
      }
      SDB_CHECK_MSG(cell.byte_identical,
                    "parallel redo diverged from serial");
    }
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

int main() {
  const std::string json_path = bench::EnvOr("SDB_BENCH_WAL",
                                             "BENCH_wal.json");
  bool json_ok = true;
  auto emit = [&](const std::string& row) {
    if (!json_path.empty()) {
      json_ok = sim::AppendJsonLine(json_path, row) && json_ok;
    }
  };

  // --- wal_commit ---------------------------------------------------------
  const size_t threads = bench::EnvSizeT("SDB_WAL_THREADS", 4);
  const size_t per_thread = bench::EnvSizeT("SDB_WAL_COMMITS", 250);
  sim::Table commit_table({"window", "threads", "commits", "elapsed",
                           "commits/s", "fsyncs", "commits/fsync"});
  for (const uint32_t window_us : {0u, 50u, 200u, 1000u}) {
    const CommitCell cell = RunCommitCell(window_us, threads, per_thread);
    emit(CommitJson(cell));
    commit_table.AddRow(
        {window_us == 0 ? "inline" : std::to_string(window_us) + " us",
         std::to_string(cell.threads), std::to_string(cell.commits),
         sim::FormatDouble(cell.elapsed_ms, 1) + " ms",
         sim::FormatDouble(cell.commits_per_sec, 0),
         std::to_string(cell.fsyncs),
         sim::FormatDouble(cell.fsyncs == 0
                               ? 0.0
                               : static_cast<double>(cell.commits) /
                                     static_cast<double>(cell.fsyncs),
                           2)});
  }
  commit_table.Print("WAL — commit throughput vs group-commit window");

  // --- wal_recovery -------------------------------------------------------
  sim::Table recovery_table({"churn ops", "log pages", "records",
                             "replayed", "recover"});
  for (const size_t ops : {size_t{64}, size_t{256}, size_t{1024}}) {
    const RecoveryCell cell = RunRecoveryCell(ops);
    emit(RecoveryJson(cell));
    recovery_table.AddRow({std::to_string(cell.churn_ops),
                           std::to_string(cell.log_pages),
                           std::to_string(cell.scanned),
                           std::to_string(cell.replayed),
                           sim::FormatDouble(cell.recover_ms, 2) + " ms"});
  }
  recovery_table.Print("WAL — redo recovery vs churn volume");

  // --- wal_writeback ------------------------------------------------------
  const size_t churn_ops = bench::EnvSizeT("SDB_WAL_CHURN_OPS", 24000);
  sim::Table writeback_table({"flusher", "pins", "p99 pin", "mean pin",
                              "fallbacks", "steals", "bg flushed",
                              "elapsed"});
  for (const bool flusher_on : {false, true}) {
    const WritebackCell cell =
        RunWritebackCell(flusher_on, churn_ops, /*frames=*/96);
    emit(WritebackJson(cell));
    writeback_table.AddRow(
        {flusher_on ? "on" : "off", std::to_string(cell.pins),
         sim::FormatDouble(cell.p99_pin_ns / 1000.0, 1) + " us",
         sim::FormatDouble(cell.mean_pin_ns / 1000.0, 2) + " us",
         std::to_string(cell.sync_fallbacks),
         std::to_string(cell.forced_steals),
         std::to_string(cell.pages_flushed),
         sim::FormatDouble(cell.elapsed_ms, 1) + " ms"});
  }
  writeback_table.Print(
      "WAL — steady-state pin latency, background flusher off vs on");

  // --- wal_redo -----------------------------------------------------------
  sim::Table redo_table({"workers", "replayed", "recover", "identical"});
  for (const RedoCell& cell : RunRedoSweep(/*churn_ops=*/2048)) {
    emit(RedoJson(cell));
    redo_table.AddRow({std::to_string(cell.workers),
                       std::to_string(cell.replayed),
                       sim::FormatDouble(cell.recover_ms, 2) + " ms",
                       cell.workers == 1 ? "baseline"
                                         : (cell.byte_identical ? "yes"
                                                                : "NO")});
  }
  redo_table.Print("WAL — parallel redo vs worker count");

  // --- wal_write_mix ------------------------------------------------------
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100);
  const size_t frames = scenario.BufferFrames(0.012);
  const size_t mix_ops = bench::EnvSizeT("SDB_WAL_MIX_OPS", 1500);
  const std::string image_path =
      bench::EnvOr("TMPDIR", "/tmp") + "/sdb_wal_mix.img";
  SDB_CHECK_MSG(scenario.disk->SaveImage(image_path),
                "bench disk image save failed");

  sim::Table mix_table({"policy", "write frac", "hit rate", "requests",
                        "disk reads", "disk writes", "commits"});
  for (const std::string policy : {"LRU", "ASB"}) {
    for (const double write_frac : {0.1, 0.5, 0.9}) {
      const MixCell cell = RunMixCell(
          image_path, scenario.tree_meta, scenario.dataset.data_space,
          queries, policy, frames, write_frac, mix_ops);
      emit(MixJson(cell));
      mix_table.AddRow({cell.policy, sim::FormatPercent(cell.write_frac),
                        sim::FormatDouble(cell.hit_rate, 4),
                        std::to_string(cell.requests),
                        std::to_string(cell.disk_reads),
                        std::to_string(cell.disk_writes),
                        std::to_string(cell.commits)});
    }
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "WAL — write-mix hit rates, %zu ops, buffer %zu frames",
                mix_ops, frames);
  mix_table.Print(title);
  std::remove(image_path.c_str());

  if (!json_path.empty()) {
    if (json_ok) {
      std::printf("\nJSON rows appended to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not append to %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
