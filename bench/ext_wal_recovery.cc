// Extension: the write path under measurement. Three experiments, all
// appended as JSON-Lines to BENCH_wal.json (override with SDB_BENCH_WAL;
// empty disables):
//
//   wal_commit    — commit throughput vs the group-commit window
//                   {inline, 50us, 200us, 1000us} with concurrent
//                   committer threads. CI gates this table: batching
//                   commits into one fsync must keep paying for itself.
//   wal_recovery  — redo-recovery time and replayed-image count vs the
//                   churn volume {64, 256, 1024 ops} that produced the
//                   log (the recovery-time-vs-dirty-set axis).
//   wal_write_mix — ASB vs LRU hit rates when {10%, 50%, 90%} of the
//                   operations against the US-like database are churn
//                   writes instead of window queries. The paper evaluates
//                   read-only replays; this probes whether ASB's spatial
//                   criterion survives a mutating working set.
//
// Knobs: SDB_WAL_THREADS (committers, default 4), SDB_WAL_COMMITS
// (commits per thread, default 250), SDB_WAL_MIX_OPS (mixed-workload
// operations per cell, default 1500).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "rtree/rtree.h"
#include "sim/churn.h"
#include "sim/report.h"
#include "storage/disk_manager.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace {

using namespace sdb;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// wal_commit: throughput vs group-commit window

struct CommitCell {
  uint32_t window_us = 0;
  size_t threads = 0;
  uint64_t commits = 0;
  double elapsed_ms = 0.0;
  double commits_per_sec = 0.0;
  uint64_t fsyncs = 0;
  uint64_t appends = 0;
};

CommitCell RunCommitCell(uint32_t window_us, size_t threads,
                         size_t commits_per_thread) {
  storage::DiskManager log;
  wal::WalOptions options;
  options.group_commit = window_us > 0;
  options.group_window_us = window_us;
  wal::WalManager wal(&log, options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&wal, t, threads, commits_per_thread] {
      std::vector<std::byte> image(wal.device().page_size(),
                                   std::byte{static_cast<uint8_t>(t)});
      const core::AccessContext ctx{t + 1};
      for (size_t i = 0; i < commits_per_thread; ++i) {
        const wal::PageImageRef ref{static_cast<storage::PageId>(t), image};
        const core::StatusOr<wal::Lsn> end =
            wal.CommitPages({&ref, 1}, threads, ctx);
        SDB_CHECK_MSG(end.ok(), "bench commit failed");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  CommitCell cell;
  cell.window_us = window_us;
  cell.threads = threads;
  cell.elapsed_ms = ElapsedMs(start);
  const wal::WalStats stats = wal.stats();
  cell.commits = stats.commits;
  cell.fsyncs = stats.fsyncs;
  cell.appends = stats.appends;
  cell.commits_per_sec =
      cell.elapsed_ms <= 0.0
          ? 0.0
          : 1000.0 * static_cast<double>(cell.commits) / cell.elapsed_ms;
  return cell;
}

std::string CommitJson(const CommitCell& cell) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_commit\",\"window_us\":%u,\"threads\":%zu,"
      "\"commits\":%llu,\"elapsed_ms\":%.3f,\"commits_per_sec\":%.1f,"
      "\"fsyncs\":%llu,\"appends\":%llu}",
      cell.window_us, cell.threads,
      static_cast<unsigned long long>(cell.commits), cell.elapsed_ms,
      cell.commits_per_sec, static_cast<unsigned long long>(cell.fsyncs),
      static_cast<unsigned long long>(cell.appends));
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_recovery: redo time vs churn volume

struct RecoveryCell {
  size_t churn_ops = 0;
  uint64_t log_pages = 0;
  uint64_t scanned = 0;
  uint64_t replayed = 0;
  double recover_ms = 0.0;
};

RecoveryCell RunRecoveryCell(size_t churn_ops) {
  storage::DiskManager data;
  storage::DiskManager log;
  wal::WalManager wal(&log);
  core::BufferManager buffer(&data, /*frames=*/128,
                             core::CreatePolicy("LRU"));
  buffer.AttachWal(&wal);
  const core::AccessContext ctx{1};
  rtree::RTree tree(&data, &buffer);

  sim::ChurnOptions options;
  options.operations = churn_ops;
  options.delete_fraction = 0.3;
  options.seed = 4242;
  options.commit_every = 16;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return buffer.Commit(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, geom::Rect(0, 0, 100, 100), options, hooks, ctx);
  SDB_CHECK_MSG(churn.ok(), "bench churn failed");
  tree.PersistMeta();
  SDB_CHECK_MSG(buffer.Commit(ctx).ok(), "bench final commit failed");

  RecoveryCell cell;
  cell.churn_ops = churn_ops;
  cell.log_pages = log.page_count();
  storage::DiskManager recovered;
  const auto start = std::chrono::steady_clock::now();
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log, recovered);
  cell.recover_ms = ElapsedMs(start);
  SDB_CHECK_MSG(result.ok(), "bench recovery failed");
  cell.scanned = result->scanned_records;
  cell.replayed = result->replayed_pages;
  return cell;
}

std::string RecoveryJson(const RecoveryCell& cell) {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_recovery\",\"churn_ops\":%zu,\"log_pages\":%llu,"
      "\"scanned_records\":%llu,\"replayed_pages\":%llu,"
      "\"recover_ms\":%.3f}",
      cell.churn_ops, static_cast<unsigned long long>(cell.log_pages),
      static_cast<unsigned long long>(cell.scanned),
      static_cast<unsigned long long>(cell.replayed), cell.recover_ms);
  return buffer;
}

// ---------------------------------------------------------------------------
// wal_write_mix: ASB vs LRU under mixed read/write traffic

struct MixCell {
  std::string policy;
  double write_frac = 0.0;
  size_t operations = 0;
  double hit_rate = 0.0;
  uint64_t requests = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t commits = 0;
};

MixCell RunMixCell(const std::string& image_path,
                   storage::PageId tree_meta, const geom::Rect& space,
                   const workload::QuerySet& queries,
                   const std::string& policy, size_t frames,
                   double write_frac, size_t operations) {
  std::optional<storage::DiskManager> disk =
      storage::DiskManager::LoadImage(image_path);
  SDB_CHECK_MSG(disk.has_value(), "bench disk image reload failed");
  storage::DiskManager log;
  wal::WalManager wal(&log);
  core::BufferManager buffer(&*disk, frames, core::CreatePolicy(policy));
  buffer.AttachWal(&wal);
  const core::AccessContext ctx{7};
  rtree::RTree tree = rtree::RTree::Open(&*disk, &buffer, tree_meta);

  Rng rng(0x5EED0000 + static_cast<uint64_t>(write_frac * 100));
  const double w = space.width() * 0.002;
  const double h = space.height() * 0.002;
  std::vector<rtree::Entry> live;
  uint64_t next_id = 1ull << 40;
  size_t next_query = 0;
  // Warm-up pass over a slice of the query set so the two policies start
  // from a populated buffer, as the paper's replays do.
  for (size_t i = 0; i < queries.queries.size() / 10; ++i) {
    (void)tree.WindowQuery(queries.queries[i], ctx);
  }
  buffer.ResetStats();
  disk->ResetStats();

  for (size_t op = 1; op <= operations; ++op) {
    if (rng.NextDouble() < write_frac) {
      const bool do_delete = !live.empty() && rng.NextDouble() < 0.3;
      if (do_delete) {
        const size_t pick = static_cast<size_t>(rng.NextBelow(live.size()));
        const rtree::Entry victim = live[pick];
        live[pick] = live.back();
        live.pop_back();
        SDB_CHECK_MSG(tree.Delete(victim.id, victim.rect, ctx),
                      "bench churn delete lost an entry");
      } else {
        rtree::Entry entry;
        entry.rect = geom::Rect::Centered(
            {rng.Uniform(space.xmin, space.xmax),
             rng.Uniform(space.ymin, space.ymax)},
            w, h);
        entry.id = next_id++;
        tree.Insert(entry, ctx);
        live.push_back(entry);
      }
    } else {
      (void)tree.WindowQuery(
          queries.queries[next_query++ % queries.queries.size()], ctx);
    }
    if (op % 64 == 0) {
      tree.PersistMeta();
      SDB_CHECK_MSG(buffer.Commit(ctx).ok(), "bench mix commit failed");
    }
  }
  tree.PersistMeta();
  SDB_CHECK_MSG(buffer.Checkpoint(ctx).ok(), "bench mix checkpoint failed");

  MixCell cell;
  cell.policy = policy;
  cell.write_frac = write_frac;
  cell.operations = operations;
  const core::BufferStats& stats = buffer.stats();
  cell.hit_rate = stats.HitRate();
  cell.requests = stats.requests;
  cell.disk_reads = disk->stats().reads;
  cell.disk_writes = disk->stats().writes;
  cell.commits = wal.stats().commits;
  return cell;
}

std::string MixJson(const MixCell& cell) {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"wal_write_mix\",\"policy\":\"%s\",\"write_frac\":%.2f,"
      "\"operations\":%zu,\"hit_rate\":%.6f,\"requests\":%llu,"
      "\"disk_reads\":%llu,\"disk_writes\":%llu,\"commits\":%llu}",
      cell.policy.c_str(), cell.write_frac, cell.operations, cell.hit_rate,
      static_cast<unsigned long long>(cell.requests),
      static_cast<unsigned long long>(cell.disk_reads),
      static_cast<unsigned long long>(cell.disk_writes),
      static_cast<unsigned long long>(cell.commits));
  return buffer;
}

}  // namespace

int main() {
  const std::string json_path = bench::EnvOr("SDB_BENCH_WAL",
                                             "BENCH_wal.json");
  bool json_ok = true;
  auto emit = [&](const std::string& row) {
    if (!json_path.empty()) {
      json_ok = sim::AppendJsonLine(json_path, row) && json_ok;
    }
  };

  // --- wal_commit ---------------------------------------------------------
  const size_t threads = bench::EnvSizeT("SDB_WAL_THREADS", 4);
  const size_t per_thread = bench::EnvSizeT("SDB_WAL_COMMITS", 250);
  sim::Table commit_table({"window", "threads", "commits", "elapsed",
                           "commits/s", "fsyncs", "commits/fsync"});
  for (const uint32_t window_us : {0u, 50u, 200u, 1000u}) {
    const CommitCell cell = RunCommitCell(window_us, threads, per_thread);
    emit(CommitJson(cell));
    commit_table.AddRow(
        {window_us == 0 ? "inline" : std::to_string(window_us) + " us",
         std::to_string(cell.threads), std::to_string(cell.commits),
         sim::FormatDouble(cell.elapsed_ms, 1) + " ms",
         sim::FormatDouble(cell.commits_per_sec, 0),
         std::to_string(cell.fsyncs),
         sim::FormatDouble(cell.fsyncs == 0
                               ? 0.0
                               : static_cast<double>(cell.commits) /
                                     static_cast<double>(cell.fsyncs),
                           2)});
  }
  commit_table.Print("WAL — commit throughput vs group-commit window");

  // --- wal_recovery -------------------------------------------------------
  sim::Table recovery_table({"churn ops", "log pages", "records",
                             "replayed", "recover"});
  for (const size_t ops : {size_t{64}, size_t{256}, size_t{1024}}) {
    const RecoveryCell cell = RunRecoveryCell(ops);
    emit(RecoveryJson(cell));
    recovery_table.AddRow({std::to_string(cell.churn_ops),
                           std::to_string(cell.log_pages),
                           std::to_string(cell.scanned),
                           std::to_string(cell.replayed),
                           sim::FormatDouble(cell.recover_ms, 2) + " ms"});
  }
  recovery_table.Print("WAL — redo recovery vs churn volume");

  // --- wal_write_mix ------------------------------------------------------
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100);
  const size_t frames = scenario.BufferFrames(0.012);
  const size_t mix_ops = bench::EnvSizeT("SDB_WAL_MIX_OPS", 1500);
  const std::string image_path =
      bench::EnvOr("TMPDIR", "/tmp") + "/sdb_wal_mix.img";
  SDB_CHECK_MSG(scenario.disk->SaveImage(image_path),
                "bench disk image save failed");

  sim::Table mix_table({"policy", "write frac", "hit rate", "requests",
                        "disk reads", "disk writes", "commits"});
  for (const std::string policy : {"LRU", "ASB"}) {
    for (const double write_frac : {0.1, 0.5, 0.9}) {
      const MixCell cell = RunMixCell(
          image_path, scenario.tree_meta, scenario.dataset.data_space,
          queries, policy, frames, write_frac, mix_ops);
      emit(MixJson(cell));
      mix_table.AddRow({cell.policy, sim::FormatPercent(cell.write_frac),
                        sim::FormatDouble(cell.hit_rate, 4),
                        std::to_string(cell.requests),
                        std::to_string(cell.disk_reads),
                        std::to_string(cell.disk_writes),
                        std::to_string(cell.commits)});
    }
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "WAL — write-mix hit rates, %zu ops, buffer %zu frames",
                mix_ops, frames);
  mix_table.Print(title);
  std::remove(image_path.c_str());

  if (!json_path.empty()) {
    if (json_ok) {
      std::printf("\nJSON rows appended to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not append to %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
