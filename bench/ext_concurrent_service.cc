// Extension: the concurrent shared-buffer service. The paper evaluates its
// buffers single-client; a spatial database server runs many clients over
// one shared pool. This bench drives batches of browsing sessions through
// the sharded BufferService via the SessionExecutor and reports throughput
// (pages accessed per second), hit rate, and per-pin latency percentiles
// (p50/p95/p99 from the executor's fixed-bucket histogram) as the worker
// count (1..16) and shard count (1, 4, 16) grow. The whole grid runs twice
// — latch_mode=mutex (blocking baseline) and latch_mode=optimistic
// (version-stamped latch-free hits + batched async misses) — so the A/B
// isolates the latching protocol.
//
// Accounting contracts verified on every cell: total logical page accesses
// are identical for every (latch mode, workers, shards) configuration —
// concurrency must never change what the workload reads — a repeated
// 1-worker run reproduces its hit count exactly at a fixed seed, and both
// latch modes produce the same serial hit count (the optimistic path's
// deferred policy events replay in arrival order, so a single-threaded run
// is bit-identical to the mutex path). Rows are appended as JSON-Lines to
// BENCH_concurrent.json (override with SDB_BENCH_CONCURRENT; empty
// disables). Note that speedup numbers are only meaningful on a multi-core
// host; the invariants hold anywhere.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/asb_timeline.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "svc/buffer_service.h"
#include "svc/session_executor.h"
#include "workload/query_generator.h"
#include "workload/session_generator.h"

namespace {

using namespace sdb;

const char* ModeName(svc::LatchMode mode) {
  return mode == svc::LatchMode::kMutex ? "mutex" : "optimistic";
}

struct CellResult {
  svc::LatchMode mode = svc::LatchMode::kOptimistic;
  size_t workers = 0;
  size_t shards = 0;
  double seconds = 0.0;
  uint64_t accesses = 0;
  uint64_t result_objects = 0;
  svc::ShardStats stats;
  uint64_t backpressure_waits = 0;
  svc::PinLatencyHistogram pin_latency;
  obs::MetricsSnapshot metrics;

  double PagesPerSecond() const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(accesses) / seconds;
  }
  double PinQuantileNs(double q) const {
    return obs::HistogramQuantile(
        std::span<const double>(svc::kPinLatencyBoundsNs),
        std::span<const uint64_t>(pin_latency.counts), q);
  }
};

CellResult RunCell(const sim::Scenario& scenario,
                   const std::vector<workload::QuerySet>& sessions,
                   size_t total_frames, svc::LatchMode mode, size_t workers,
                   size_t shards) {
  svc::BufferServiceConfig service_config;
  service_config.total_frames = total_frames;
  service_config.shard_count = shards;
  service_config.policy_spec = "ASB";
  service_config.latch_mode = mode;
  // Collectors only count — attaching them must not (and does not) perturb
  // the grid's access/hit invariants.
  service_config.collect_metrics = true;
  // Fault soak via SDB_FAULT_PROFILE (disabled when unset). The grid's
  // cross-configuration invariants assume a *recoverable* profile
  // (transient/bitflip/torn): a bad-sector range makes traversals skip
  // subtrees, which legitimately changes the per-cell access counts.
  service_config.fault_profile = bench::BenchFaultProfile();
  svc::BufferService service(*scenario.disk, service_config);

  svc::SessionExecutorConfig executor_config;
  executor_config.workers = workers;
  executor_config.queue_capacity = std::max<size_t>(2 * workers, 4);
  executor_config.record_pin_latency = true;

  CellResult cell;
  cell.mode = mode;
  cell.workers = workers;
  cell.shards = shards;
  const auto begin = std::chrono::steady_clock::now();
  {
    svc::SessionExecutor executor(scenario.disk.get(), &service,
                                  scenario.tree_meta, executor_config);
    for (const workload::QuerySet& session : sessions) {
      executor.Submit(session);
    }
    const std::vector<svc::SessionResult> results = executor.Finish();
    cell.backpressure_waits = executor.stats().backpressure_waits;
    cell.pin_latency = executor.pin_latency();
    for (const svc::SessionResult& result : results) {
      cell.accesses += result.page_accesses;
      cell.result_objects += result.result_objects;
    }
  }
  cell.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count();
  cell.stats = service.AggregateStats();
  cell.metrics = service.MetricsSnapshot();
  if (cell.accesses != cell.stats.buffer.requests) {
    std::fprintf(stderr,
                 "FATAL: session accounting (%llu) != service requests "
                 "(%llu)\n",
                 static_cast<unsigned long long>(cell.accesses),
                 static_cast<unsigned long long>(cell.stats.buffer.requests));
    std::exit(1);
  }
  return cell;
}

std::string CellJson(const std::string& workload_name, size_t total_frames,
                     const CellResult& cell) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":%d,\"bench\":\"concurrent_service\","
      "\"workload\":\"%s\",\"policy\":\"ASB\",\"latch_mode\":\"%s\","
      "\"buffer_frames\":%zu,\"workers\":%zu,\"shards\":%zu,"
      "\"seconds\":%.6f,\"pages_per_sec\":%.1f,\"accesses\":%llu,"
      "\"hits\":%llu,\"hit_rate\":%.6f,\"disk_reads\":%llu,"
      "\"latch_waits\":%llu,\"latch_acquires\":%llu,"
      "\"optimistic_hits\":%llu,\"optimistic_retries\":%llu,"
      "\"version_conflicts\":%llu,\"batch_submits\":%llu,"
      "\"async_reads\":%llu,\"pin_p50_ns\":%.0f,\"pin_p95_ns\":%.0f,"
      "\"pin_p99_ns\":%.0f,\"backpressure_waits\":%llu",
      obs::kBenchJsonSchemaVersion, workload_name.c_str(),
      ModeName(cell.mode), total_frames, cell.workers, cell.shards,
      cell.seconds, cell.PagesPerSecond(),
      static_cast<unsigned long long>(cell.accesses),
      static_cast<unsigned long long>(cell.stats.buffer.hits),
      cell.stats.buffer.HitRate(),
      static_cast<unsigned long long>(cell.stats.io.reads),
      static_cast<unsigned long long>(cell.stats.latch_waits),
      static_cast<unsigned long long>(cell.stats.latch_acquires),
      static_cast<unsigned long long>(cell.stats.optimistic_hits),
      static_cast<unsigned long long>(cell.stats.optimistic_retries),
      static_cast<unsigned long long>(cell.stats.version_conflicts),
      static_cast<unsigned long long>(cell.stats.batch_submits),
      static_cast<unsigned long long>(cell.stats.async_reads),
      cell.PinQuantileNs(0.50), cell.PinQuantileNs(0.95),
      cell.PinQuantileNs(0.99),
      static_cast<unsigned long long>(cell.backpressure_waits));
  std::string line(buf);
  if (!cell.metrics.empty()) {
    line += ",\"metrics\":";
    line += obs::MetricsJson(cell.metrics);
  }
  line += "}";
  return line;
}

/// A batch of sessions with disjoint seeds; `uniform` draws i.i.d. uniform
/// windows (the paper's U family — the acceptance workload), otherwise
/// Markov browsing sessions.
std::vector<workload::QuerySet> MakeSessions(const sim::Scenario& scenario,
                                             bool uniform, size_t count,
                                             size_t steps) {
  std::vector<workload::QuerySet> sessions;
  sessions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (uniform) {
      workload::QuerySpec spec;
      spec.family = workload::QueryFamily::kUniform;
      spec.ex = 100;
      spec.count = steps;
      spec.seed = 7000 + i;
      sessions.push_back(
          workload::MakeQuerySet(spec, scenario.dataset, scenario.places));
    } else {
      workload::SessionParams params;
      params.steps = steps;
      params.seed = 7000 + i;
      sessions.push_back(
          workload::MakeSessionQuerySet(params, scenario.places));
    }
  }
  return sessions;
}

void RunGrid(const sim::Scenario& scenario, const std::string& workload_name,
             bool uniform, const std::string& json_path) {
  const size_t session_count = bench::EnvSizeT("SDB_BENCH_SESSIONS", 16);
  const size_t steps = bench::EnvSizeT("SDB_BENCH_SESSION_STEPS", 1000);
  const std::vector<workload::QuerySet> sessions =
      MakeSessions(scenario, uniform, session_count, steps);
  const std::vector<size_t> worker_counts{1, 2, 4, 8, 16};
  const std::vector<size_t> shard_counts{1, 4, 16};
  // One buffer size for the whole grid (cells stay comparable), floored so
  // every shard keeps an evictable frame even when every worker has a full
  // leaf batch (up to 8 handles) pinned in that one shard at once.
  constexpr size_t kMaxBatchPins = 8;
  const size_t total_frames =
      std::max(scenario.BufferFrames(0.047),
               shard_counts.back() *
                   (worker_counts.back() * kMaxBatchPins + 1));

  sim::Table table({"mode", "workers", "shards", "pages/s", "hit rate",
                    "latch waits", "p50 ns", "p99 ns", "speedup vs 1w/1s"});
  bool json_ok = true;
  uint64_t expected_accesses = 0;
  uint64_t serial_hits = 0;  // shared across modes: serial runs must agree
  for (const svc::LatchMode mode :
       {svc::LatchMode::kMutex, svc::LatchMode::kOptimistic}) {
    double base_pages_per_sec = 0.0;
    for (const size_t shards : shard_counts) {
      for (const size_t workers : worker_counts) {
        const CellResult cell = RunCell(scenario, sessions, total_frames,
                                        mode, workers, shards);
        // Hard contract: the logical workload is configuration-invariant
        // (across worker counts, shard counts, AND latch modes).
        if (expected_accesses == 0) {
          expected_accesses = cell.accesses;
        } else if (cell.accesses != expected_accesses) {
          std::fprintf(
              stderr,
              "FATAL: %s %zuw/%zus accessed %llu pages, expected %llu\n",
              ModeName(mode), workers, shards,
              static_cast<unsigned long long>(cell.accesses),
              static_cast<unsigned long long>(expected_accesses));
          std::exit(1);
        }
        if (workers == 1 && shards == 1) {
          // Reproducibility: a second serial run must reproduce the hit
          // count bit-for-bit at the fixed seed — and the optimistic
          // protocol's serial execution must match the mutex baseline
          // exactly (deferred events replay in arrival order).
          if (serial_hits == 0) serial_hits = cell.stats.buffer.hits;
          const CellResult again = RunCell(scenario, sessions, total_frames,
                                           mode, workers, shards);
          if (again.stats.buffer.hits != serial_hits ||
              cell.stats.buffer.hits != serial_hits) {
            std::fprintf(
                stderr,
                "FATAL: %s serial runs hit %llu/%llu pages, expected %llu\n",
                ModeName(mode),
                static_cast<unsigned long long>(cell.stats.buffer.hits),
                static_cast<unsigned long long>(again.stats.buffer.hits),
                static_cast<unsigned long long>(serial_hits));
            std::exit(1);
          }
          base_pages_per_sec = cell.PagesPerSecond();
        }
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base_pages_per_sec <= 0.0
                          ? 0.0
                          : cell.PagesPerSecond() / base_pages_per_sec);
        table.AddRow({ModeName(mode), std::to_string(workers),
                      std::to_string(shards),
                      sim::FormatDouble(cell.PagesPerSecond(), 0),
                      sim::FormatDouble(cell.stats.buffer.HitRate(), 4),
                      std::to_string(cell.stats.latch_waits),
                      sim::FormatDouble(cell.PinQuantileNs(0.50), 0),
                      sim::FormatDouble(cell.PinQuantileNs(0.99), 0),
                      speedup});
        if (!json_path.empty()) {
          json_ok =
              sim::AppendJsonLine(json_path,
                                  CellJson(workload_name, total_frames,
                                           cell)) &&
              json_ok;
        }
      }
    }
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Extension — concurrent service, %s, %zu sessions x %zu "
                "queries, ASB, buffer %zu frames, mutex vs optimistic",
                workload_name.c_str(), session_count, steps, total_frames);
  table.Print(title);
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

/// Telemetry phase: one persistent 16-worker x 4-shard service runs a
/// uniform workload, shifts mid-run to browsing sessions, and a poller
/// thread samples the merged service metrics into an obs::TelemetryHub on
/// a logical clock (buffer requests). Products: BENCH_timeseries.json
/// (per-window hit rate, latch contention, queue depth, ASB candidate
/// size), a convergence-lag report of the candidate series around the
/// shift (obs::AnalyzeAsbTimeline), and — with SDB_BENCH_TRACE set — a
/// Perfetto span trace where sampled queries show their
/// session -> shard-fetch -> async-submit/complete causality.
void RunAdaptationTimeline(const sim::Scenario& scenario) {
  constexpr size_t kWorkers = 16;
  constexpr size_t kShards = 4;
  constexpr size_t kMaxBatchPins = 8;
  const size_t session_count = bench::EnvSizeT("SDB_BENCH_SESSIONS", 16);
  const size_t steps = bench::EnvSizeT("SDB_BENCH_SESSION_STEPS", 1000);
  const size_t total_frames =
      std::max(scenario.BufferFrames(0.047),
               kShards * (kWorkers * kMaxBatchPins + 1));

  svc::BufferServiceConfig service_config;
  service_config.total_frames = total_frames;
  service_config.shard_count = kShards;
  service_config.policy_spec = "ASB";
  service_config.collect_metrics = true;
  service_config.fault_profile = bench::BenchFaultProfile();
  svc::BufferService service(*scenario.disk, service_config);

  obs::TracerOptions tracer_options;
  tracer_options.sample_every =
      bench::EnvSizeT("SDB_BENCH_TRACE_SAMPLE", 64);
  obs::Tracer tracer(tracer_options);

  obs::TelemetryHubOptions hub_options;
  hub_options.window_clock_interval =
      bench::EnvSizeT("SDB_BENCH_WINDOW", 2048);
  obs::TelemetryHub hub(hub_options);

  // The poller is the only consumer of the stats surface while the
  // workload runs — exactly the live-dashboard shape the hub is for.
  std::atomic<bool> stop{false};
  const auto clock_now = [&service] {
    return service.AggregateStats().buffer.requests;
  };
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t clock = clock_now();
      if (hub.WantsSample(clock)) {
        hub.Sample(clock, service.MetricsSnapshot(),
                   service.shared_candidate());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const auto run_phase = [&](bool uniform, size_t index_offset) {
    svc::SessionExecutorConfig executor_config;
    executor_config.workers = kWorkers;
    executor_config.queue_capacity = 2 * kWorkers;
    executor_config.tracer = &tracer;
    executor_config.session_index_offset = index_offset;
    svc::SessionExecutor executor(scenario.disk.get(), &service,
                                  scenario.tree_meta, executor_config);
    for (const workload::QuerySet& session :
         MakeSessions(scenario, uniform, session_count, steps)) {
      executor.Submit(session);
    }
    executor.Finish();
  };
  hub.Sample(0, service.MetricsSnapshot(), service.shared_candidate());
  run_phase(/*uniform=*/true, 0);
  const uint64_t shift_clock = clock_now();
  hub.Mark(shift_clock, "workload_shift:uniform->browsing");
  run_phase(/*uniform=*/false, session_count);
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  // Close the final window so the tail of phase 2 is in the series.
  hub.Sample(clock_now(), service.MetricsSnapshot(),
             service.shared_candidate());

  const std::vector<obs::TelemetryWindow> windows = hub.Windows();
  const std::string timeseries_path =
      bench::EnvOr("SDB_BENCH_TIMESERIES", "BENCH_timeseries.json");
  if (!timeseries_path.empty() &&
      !obs::WriteTimeSeriesJson(timeseries_path, windows, hub.Marks())) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 timeseries_path.c_str());
  }

  // Convergence lag of the ASB candidate series around the shift.
  const obs::AsbTimelineReport report = obs::AnalyzeAsbTimeline(
      obs::AsbPointsFromWindows(windows), {shift_clock}, /*tolerance=*/2);
  sim::Table table({"phase start", "settled candidate", "converged at",
                    "lag (accesses)"});
  for (const obs::AsbPhase& phase : report.phases) {
    table.AddRow({std::to_string(phase.shift_clock),
                  std::to_string(phase.settled_candidate),
                  phase.converged ? std::to_string(phase.converged_clock)
                                  : std::string("never"),
                  phase.converged ? std::to_string(phase.lag)
                                  : std::string("-")});
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Extension — ASB adaptation timeline, %zu windows, shift "
                "at access %llu, %zuw/%zus, buffer %zu frames",
                windows.size(),
                static_cast<unsigned long long>(shift_clock), kWorkers,
                kShards, total_frames);
  table.Print(title);

  // Span accounting: every sampled query trace should show the full
  // session -> shard-fetch -> async causality chain at least once.
  const std::vector<obs::Event> spans = tracer.Spans();
  uint64_t sessions = 0, queries = 0, shard_fetches = 0, async_spans = 0;
  for (const obs::Event& span : spans) {
    switch (obs::SpanKindOf(span)) {
      case obs::SpanKind::kSession: ++sessions; break;
      case obs::SpanKind::kQuery: ++queries; break;
      case obs::SpanKind::kShardFetch: ++shard_fetches; break;
      case obs::SpanKind::kAsyncSubmit:
      case obs::SpanKind::kAsyncComplete: ++async_spans; break;
    }
  }
  std::printf(
      "spans: %llu session, %llu query (1-in-%llu sampled), %llu "
      "shard-fetch, %llu async (%llu emitted, %llu dropped)\n",
      static_cast<unsigned long long>(sessions),
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(tracer.sample_every()),
      static_cast<unsigned long long>(shard_fetches),
      static_cast<unsigned long long>(async_spans),
      static_cast<unsigned long long>(tracer.total()),
      static_cast<unsigned long long>(tracer.dropped()));
  const std::string trace_path = bench::BenchTracePath();
  if (!trace_path.empty() && !tracer.WriteChromeTrace(trace_path)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 trace_path.c_str());
  }
  // Live stats surface smoke: the dump must render (consumed by db_stats;
  // printed here once so the bench log shows the service's final shape).
  const std::string prom = service.StatsText();
  std::printf("prometheus dump: %zu bytes, %zu series\n", prom.size(),
              static_cast<size_t>(
                  std::count(prom.begin(), prom.end(), '\n')));
}

}  // namespace

int main() {
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::string json_path =
      bench::EnvOr("SDB_BENCH_CONCURRENT", "BENCH_concurrent.json");
  RunGrid(scenario, "uniform U-W-100", /*uniform=*/true, json_path);
  RunGrid(scenario, "browsing sessions", /*uniform=*/false, json_path);
  RunAdaptationTimeline(scenario);
  return 0;
}
