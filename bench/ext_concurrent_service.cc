// Extension: the concurrent shared-buffer service. The paper evaluates its
// buffers single-client; a spatial database server runs many clients over
// one shared pool. This bench drives batches of browsing sessions through
// the sharded BufferService via the SessionExecutor and reports throughput
// (pages accessed per second) and hit rate as the worker count (1..16) and
// shard count (1, 4, 16) grow.
//
// Accounting contracts verified on every cell: total logical page accesses
// are identical for every (workers, shards) configuration — concurrency
// must never change what the workload reads — and a repeated 1-worker run
// reproduces its hit count exactly at a fixed seed. Rows are appended as
// JSON-Lines to BENCH_concurrent.json (override with SDB_BENCH_CONCURRENT;
// empty disables). Note that speedup numbers are only meaningful on a
// multi-core host; the invariants hold anywhere.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "svc/buffer_service.h"
#include "svc/session_executor.h"
#include "workload/query_generator.h"
#include "workload/session_generator.h"

namespace {

using namespace sdb;

struct CellResult {
  size_t workers = 0;
  size_t shards = 0;
  double seconds = 0.0;
  uint64_t accesses = 0;
  uint64_t result_objects = 0;
  svc::ShardStats stats;
  uint64_t backpressure_waits = 0;

  double PagesPerSecond() const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(accesses) / seconds;
  }
};

CellResult RunCell(const sim::Scenario& scenario,
                   const std::vector<workload::QuerySet>& sessions,
                   size_t total_frames, size_t workers, size_t shards) {
  svc::BufferServiceConfig service_config;
  service_config.total_frames = total_frames;
  service_config.shard_count = shards;
  service_config.policy_spec = "ASB";
  // Fault soak via SDB_FAULT_PROFILE (disabled when unset). The grid's
  // cross-configuration invariants assume a *recoverable* profile
  // (transient/bitflip/torn): a bad-sector range makes traversals skip
  // subtrees, which legitimately changes the per-cell access counts.
  service_config.fault_profile = bench::BenchFaultProfile();
  svc::BufferService service(*scenario.disk, service_config);

  svc::SessionExecutorConfig executor_config;
  executor_config.workers = workers;
  executor_config.queue_capacity = std::max<size_t>(2 * workers, 4);

  CellResult cell;
  cell.workers = workers;
  cell.shards = shards;
  const auto begin = std::chrono::steady_clock::now();
  {
    svc::SessionExecutor executor(scenario.disk.get(), &service,
                                  scenario.tree_meta, executor_config);
    for (const workload::QuerySet& session : sessions) {
      executor.Submit(session);
    }
    const std::vector<svc::SessionResult> results = executor.Finish();
    cell.backpressure_waits = executor.stats().backpressure_waits;
    for (const svc::SessionResult& result : results) {
      cell.accesses += result.page_accesses;
      cell.result_objects += result.result_objects;
    }
  }
  cell.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count();
  cell.stats = service.AggregateStats();
  if (cell.accesses != cell.stats.buffer.requests) {
    std::fprintf(stderr,
                 "FATAL: session accounting (%llu) != service requests "
                 "(%llu)\n",
                 static_cast<unsigned long long>(cell.accesses),
                 static_cast<unsigned long long>(cell.stats.buffer.requests));
    std::exit(1);
  }
  return cell;
}

std::string CellJson(const std::string& workload_name, size_t total_frames,
                     const CellResult& cell) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":%d,\"bench\":\"concurrent_service\","
      "\"workload\":\"%s\",\"policy\":\"ASB\",\"buffer_frames\":%zu,"
      "\"workers\":%zu,\"shards\":%zu,\"seconds\":%.6f,"
      "\"pages_per_sec\":%.1f,\"accesses\":%llu,\"hits\":%llu,"
      "\"hit_rate\":%.6f,\"disk_reads\":%llu,\"latch_waits\":%llu,"
      "\"latch_acquires\":%llu,\"backpressure_waits\":%llu}",
      obs::kBenchJsonSchemaVersion, workload_name.c_str(), total_frames,
      cell.workers, cell.shards, cell.seconds, cell.PagesPerSecond(),
      static_cast<unsigned long long>(cell.accesses),
      static_cast<unsigned long long>(cell.stats.buffer.hits),
      cell.stats.buffer.HitRate(),
      static_cast<unsigned long long>(cell.stats.io.reads),
      static_cast<unsigned long long>(cell.stats.latch_waits),
      static_cast<unsigned long long>(cell.stats.latch_acquires),
      static_cast<unsigned long long>(cell.backpressure_waits));
  return std::string(buf);
}

/// A batch of sessions with disjoint seeds; `uniform` draws i.i.d. uniform
/// windows (the paper's U family — the acceptance workload), otherwise
/// Markov browsing sessions.
std::vector<workload::QuerySet> MakeSessions(const sim::Scenario& scenario,
                                             bool uniform, size_t count,
                                             size_t steps) {
  std::vector<workload::QuerySet> sessions;
  sessions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (uniform) {
      workload::QuerySpec spec;
      spec.family = workload::QueryFamily::kUniform;
      spec.ex = 100;
      spec.count = steps;
      spec.seed = 7000 + i;
      sessions.push_back(
          workload::MakeQuerySet(spec, scenario.dataset, scenario.places));
    } else {
      workload::SessionParams params;
      params.steps = steps;
      params.seed = 7000 + i;
      sessions.push_back(
          workload::MakeSessionQuerySet(params, scenario.places));
    }
  }
  return sessions;
}

void RunGrid(const sim::Scenario& scenario, const std::string& workload_name,
             bool uniform, const std::string& json_path) {
  const size_t session_count = bench::EnvSizeT("SDB_BENCH_SESSIONS", 16);
  const size_t steps = bench::EnvSizeT("SDB_BENCH_SESSION_STEPS", 1000);
  const std::vector<workload::QuerySet> sessions =
      MakeSessions(scenario, uniform, session_count, steps);
  const std::vector<size_t> worker_counts{1, 2, 4, 8, 16};
  const std::vector<size_t> shard_counts{1, 4, 16};
  // One buffer size for the whole grid (cells stay comparable), floored so
  // every shard keeps an evictable frame even when every worker has a page
  // of that shard pinned at once (query traversal pins one page at a time).
  const size_t total_frames =
      std::max(scenario.BufferFrames(0.047),
               shard_counts.back() * (worker_counts.back() + 1));

  sim::Table table({"workers", "shards", "pages/s", "hit rate", "latch waits",
                    "speedup vs 1w/1s"});
  bool json_ok = true;
  double base_pages_per_sec = 0.0;
  uint64_t expected_accesses = 0;
  uint64_t serial_hits = 0;
  for (const size_t shards : shard_counts) {
    for (const size_t workers : worker_counts) {
      const CellResult cell =
          RunCell(scenario, sessions, total_frames, workers, shards);
      // Hard contract: the logical workload is configuration-invariant.
      if (expected_accesses == 0) {
        expected_accesses = cell.accesses;
      } else if (cell.accesses != expected_accesses) {
        std::fprintf(stderr,
                     "FATAL: %zuw/%zus accessed %llu pages, expected %llu\n",
                     workers, shards,
                     static_cast<unsigned long long>(cell.accesses),
                     static_cast<unsigned long long>(expected_accesses));
        std::exit(1);
      }
      if (workers == 1 && shards == 1) {
        // Reproducibility: a second serial run must reproduce the hit
        // count bit-for-bit at the fixed seed.
        serial_hits = cell.stats.buffer.hits;
        const CellResult again =
            RunCell(scenario, sessions, total_frames, workers, shards);
        if (again.stats.buffer.hits != serial_hits) {
          std::fprintf(stderr,
                       "FATAL: serial rerun hit %llu pages, first run %llu\n",
                       static_cast<unsigned long long>(
                           again.stats.buffer.hits),
                       static_cast<unsigned long long>(serial_hits));
          std::exit(1);
        }
        base_pages_per_sec = cell.PagesPerSecond();
      }
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    base_pages_per_sec <= 0.0
                        ? 0.0
                        : cell.PagesPerSecond() / base_pages_per_sec);
      table.AddRow({std::to_string(workers), std::to_string(shards),
                    sim::FormatDouble(cell.PagesPerSecond(), 0),
                    sim::FormatDouble(cell.stats.buffer.HitRate(), 4),
                    std::to_string(cell.stats.latch_waits), speedup});
      if (!json_path.empty()) {
        json_ok = sim::AppendJsonLine(
                      json_path, CellJson(workload_name, total_frames, cell)) &&
                  json_ok;
      }
    }
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Extension — concurrent service, %s, %zu sessions x %zu "
                "queries, ASB, buffer %zu frames",
                workload_name.c_str(), session_count, steps, total_frames);
  table.Print(title);
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
}

}  // namespace

int main() {
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::string json_path =
      bench::EnvOr("SDB_BENCH_CONCURRENT", "BENCH_concurrent.json");
  RunGrid(scenario, "uniform U-W-100", /*uniform=*/true, json_path);
  RunGrid(scenario, "browsing sessions", /*uniform=*/false, json_path);
  return 0;
}
