// Microbenchmark (google-benchmark): R*-tree operation throughput on the
// paged tree — insertion, point/window queries, STR bulk loading, and the
// synchronized-traversal join — all through a large (all-resident) buffer,
// i.e. measuring CPU cost rather than I/O.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "geom/kernels/kernels.h"
#include "rtree/bulk_load.h"
#include "rtree/node_view.h"
#include "rtree/rtree.h"
#include "rtree/spatial_join.h"
#include "storage/page.h"

namespace {

using namespace sdb;

std::vector<rtree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<rtree::Entry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i].id = i + 1;
    const double x = rng.NextDouble(), y = rng.NextDouble();
    const double w = rng.NextDouble() * 0.005;
    const double h = rng.NextDouble() * 0.005;
    entries[i].rect = geom::Rect(x, y, x + w, y + h);
  }
  return entries;
}

struct TreeFixture {
  explicit TreeFixture(size_t n, bool bulk = true)
      : buffer(&disk, n / 8 + 1024, std::make_unique<core::LruPolicy>()),
        tree(&disk, &buffer) {
    auto entries = RandomEntries(n, 7);
    if (bulk) {
      rtree::BulkLoad(&tree, std::move(entries), core::AccessContext{});
    } else {
      for (const rtree::Entry& e : entries) {
        tree.Insert(e, core::AccessContext{});
      }
    }
  }
  storage::DiskManager disk;
  core::BufferManager buffer;
  rtree::RTree tree;
};

void BM_Insert(benchmark::State& state) {
  storage::DiskManager disk;
  core::BufferManager buffer(&disk, 1u << 16,
                             std::make_unique<core::LruPolicy>());
  rtree::RTree tree(&disk, &buffer);
  Rng rng(3);
  uint64_t id = 0;
  for (auto _ : state) {
    rtree::Entry e;
    e.id = ++id;
    const double x = rng.NextDouble(), y = rng.NextDouble();
    e.rect = geom::Rect(x, y, x + 0.001, y + 0.001);
    tree.Insert(e, core::AccessContext{});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Insert);

void BM_PointQuery(benchmark::State& state) {
  TreeFixture fixture(static_cast<size_t>(state.range(0)));
  Rng rng(9);
  uint64_t query = 0;
  for (auto _ : state) {
    const geom::Point p{rng.NextDouble(), rng.NextDouble()};
    const auto hits =
        fixture.tree.PointQuery(p, core::AccessContext{++query});
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointQuery)->Arg(10'000)->Arg(100'000);

void BM_WindowQuery(benchmark::State& state) {
  TreeFixture fixture(static_cast<size_t>(state.range(0)));
  Rng rng(11);
  uint64_t query = 0;
  size_t results = 0;
  for (auto _ : state) {
    const geom::Rect window = geom::Rect::Centered(
        {rng.NextDouble(), rng.NextDouble()}, 1.0 / 33, 1.0 / 33);
    fixture.tree.WindowQueryVisit(window, core::AccessContext{++query},
                                  [&results](const rtree::Entry&) {
                                    ++results;
                                  });
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowQuery)->Arg(10'000)->Arg(100'000);

// Same window-query workload with the geometry kernels pinned to one
// dispatch tier — the scalar/dispatched pair isolates how much of the query
// CPU cost the SIMD entry scans remove end to end.
void BM_WindowQueryKernelLevel(benchmark::State& state,
                               bool use_dispatched) {
  const geom::kernels::Level original = geom::kernels::ActiveLevel();
  geom::kernels::ForceLevel(use_dispatched ? original
                                           : geom::kernels::Level::kScalar);
  TreeFixture fixture(static_cast<size_t>(state.range(0)));
  Rng rng(11);
  uint64_t query = 0;
  size_t results = 0;
  for (auto _ : state) {
    const geom::Rect window = geom::Rect::Centered(
        {rng.NextDouble(), rng.NextDouble()}, 1.0 / 33, 1.0 / 33);
    fixture.tree.WindowQueryVisit(window, core::AccessContext{++query},
                                  [&results](const rtree::Entry&) {
                                    ++results;
                                  });
  }
  geom::kernels::ForceLevel(original);
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_WindowQueryKernelLevel, scalar, false)->Arg(100'000);
BENCHMARK_CAPTURE(BM_WindowQueryKernelLevel, dispatched, true)->Arg(100'000);

// One full node (fanout = NodeView::Capacity) scanned against a window:
// the pre-kernels hot path copied every entry into a fresh std::vector via
// LoadEntries() before testing intersections; ScanEntries deinterleaves into
// reused SoA scratch and runs the batch kernel — the gap here is the
// per-node allocation churn plus the SIMD win.
struct FullNodeFixture {
  FullNodeFixture() : page(storage::kDefaultPageSize) {
    rtree::NodeView node(page);
    node.Init(/*level=*/0);
    Rng rng(37);
    const uint32_t fanout = rtree::NodeView::Capacity(page.size());
    for (uint32_t i = 0; i < fanout; ++i) {
      rtree::Entry e;
      e.id = i + 1;
      const double x = rng.NextDouble(), y = rng.NextDouble();
      e.rect = geom::Rect(x, y, x + rng.NextDouble() * 0.1,
                          y + rng.NextDouble() * 0.1);
      node.Append(e);
    }
    node.RefreshAggregates();
  }
  std::vector<std::byte> page;
};

void BM_NodeScanLoadEntries(benchmark::State& state) {
  FullNodeFixture fixture;
  rtree::NodeView node(fixture.page);
  Rng rng(41);
  size_t hits = 0;
  for (auto _ : state) {
    const geom::Rect window = geom::Rect::Centered(
        {rng.NextDouble(), rng.NextDouble()}, 0.2, 0.2);
    const std::vector<rtree::Entry> entries = node.LoadEntries();
    for (const rtree::Entry& e : entries) {
      if (window.Intersects(e.rect)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * node.count());
}
BENCHMARK(BM_NodeScanLoadEntries);

void BM_NodeScanKernels(benchmark::State& state) {
  FullNodeFixture fixture;
  rtree::NodeView node(fixture.page);
  Rng rng(41);
  geom::kernels::SoaBuffer coords;
  std::vector<uint8_t> mask;
  size_t hits = 0;
  for (auto _ : state) {
    const geom::Rect window = geom::Rect::Centered(
        {rng.NextDouble(), rng.NextDouble()}, 0.2, 0.2);
    hits += node.ScanEntries(window, &coords, &mask);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * node.count());
}
BENCHMARK(BM_NodeScanKernels);

void BM_BulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto entries = RandomEntries(n, 13);
  for (auto _ : state) {
    storage::DiskManager disk;
    core::BufferManager buffer(&disk, n / 8 + 1024,
                               std::make_unique<core::LruPolicy>());
    rtree::RTree tree(&disk, &buffer);
    auto copy = entries;
    rtree::BulkLoad(&tree, std::move(copy), core::AccessContext{});
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BulkLoad)->Arg(100'000);

void BM_SpatialJoin(benchmark::State& state) {
  TreeFixture left(static_cast<size_t>(state.range(0)));
  TreeFixture right(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const rtree::JoinStats stats = rtree::SpatialJoinCount(
        left.tree, right.tree, core::AccessContext{1});
    benchmark::DoNotOptimize(stats.result_pairs);
  }
}
BENCHMARK(BM_SpatialJoin)->Arg(20'000);

void BM_Delete(benchmark::State& state) {
  // Rebuild periodically; measure delete amortized over fresh trees.
  const size_t n = 20'000;
  auto entries = RandomEntries(n, 21);
  TreeFixture fixture(n);
  size_t next = 0;
  for (auto _ : state) {
    if (next >= entries.size()) {
      state.PauseTiming();
      for (const auto& e :
           std::vector<rtree::Entry>(entries.begin(),
                                     entries.begin() + next)) {
        fixture.tree.Insert(e, core::AccessContext{});
      }
      next = 0;
      state.ResumeTiming();
    }
    fixture.tree.Delete(entries[next].id, entries[next].rect,
                        core::AccessContext{});
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Delete);

}  // namespace

BENCHMARK_MAIN();
