// Ablation: how the tree-construction method (dynamic R* insertion vs STR
// packing vs z-order packing) affects query I/O and the policy gains. STR
// and insertion produce compact pages; z-order pages straddle curve jumps
// and cover more area, which inflates I/O — and changes what criterion A
// can exploit.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/policy_lru.h"
#include "rtree/bulk_load.h"

int main() {
  using namespace sdb;
  workload::MapParams params = workload::UsLikeParams(bench::kBenchScale *
                                                      sim::DefaultScale());
  const workload::GeneratedMap map = workload::GenerateMap(params);

  struct Method {
    const char* name;
    bool insert;
    rtree::PackingOrder order;
  };
  const std::vector<Method> methods{
      {"R* insertion", true, rtree::PackingOrder::kStr},
      {"STR packing", false, rtree::PackingOrder::kStr},
      {"z-order packing", false, rtree::PackingOrder::kZOrder},
  };
  const std::vector<std::string> policies{"LRU-2", "A", "ASB"};

  for (const Method& method : methods) {
    storage::DiskManager disk;
    storage::PageId meta;
    rtree::TreeStats stats;
    {
      core::BufferManager build(&disk, 1u << 15,
                                std::make_unique<core::LruPolicy>());
      rtree::RTree tree(&disk, &build);
      if (method.insert) {
        for (const workload::SpatialObject& object : map.dataset.objects) {
          rtree::Entry e;
          e.id = object.id;
          e.rect = object.rect;
          tree.Insert(e, core::AccessContext{});
        }
        tree.PersistMeta();
      } else {
        std::vector<rtree::Entry> entries;
        entries.reserve(map.dataset.objects.size());
        for (const workload::SpatialObject& object : map.dataset.objects) {
          rtree::Entry e;
          e.id = object.id;
          e.rect = object.rect;
          entries.push_back(e);
        }
        rtree::BulkLoadOptions options;
        options.order = method.order;
        rtree::BulkLoad(&tree, std::move(entries), core::AccessContext{},
                        options);
      }
      build.FlushAll();
      meta = tree.meta_page();
      stats = tree.ComputeStats();
    }

    sim::Scenario shim;
    shim.dataset = map.dataset;
    shim.places = map.places;
    shim.tree_stats = stats;

    std::printf("\n%s: %u pages, height %u, avg data fill %.1f\n",
                method.name, stats.total_pages(), stats.height,
                stats.avg_data_fill);
    sim::Table table({"query set", "LRU reads", "LRU-2", "A", "ASB"});
    for (const bench::SetSpec spec :
         {bench::SetSpec{workload::QueryFamily::kUniform, 100},
          bench::SetSpec{workload::QueryFamily::kIntensified, 100}}) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(shim, spec.family, spec.ex);
      sim::RunOptions run;
      run.buffer_frames = shim.BufferFrames(0.047);
      const sim::RunResult lru =
          sim::RunQuerySet(&disk, meta, "LRU", queries, run);
      std::vector<std::string> row{queries.name,
                                   std::to_string(lru.disk_reads)};
      for (const std::string& policy : policies) {
        const sim::RunResult result =
            sim::RunQuerySet(&disk, meta, policy, queries, run);
        row.push_back(sim::FormatGain(sim::GainVersus(lru, result)));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::string("Ablation — construction: ") + method.name +
                ", 4.7% buffer, gain vs LRU");
  }
  return 0;
}
