// Figure 14: the ASB candidate-set size over a concatenated workload
// INT-W-ex -> U-W-ex -> S-W-ex (paper parameters: 20% overflow buffer,
// initial candidate set 25% of the main section, 1% steps). Expected
// shape: the size drops during the intensified phase (LRU dominates),
// climbs during the uniform phase (the spatial criterion dominates), and
// settles in between during the similar phase.
//
// The paper runs this with W-33 windows on its 1.64M-object database. At
// the default bench scale, W-33 windows are large relative to the hot
// regions and the intensified penalty for the spatial criterion nearly
// vanishes (see fig09/fig13), so the W-33 trace only shows the INT < U
// ordering; the W-100 trace reproduces the full drop/climb trajectory.
// Both are printed.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "obs/collector.h"

namespace {

using namespace sdb;

void TraceMixedWorkload(const sim::Scenario& scenario, int ex) {
  const workload::QuerySet intensified = sim::StandardQuerySet(
      scenario, workload::QueryFamily::kIntensified, ex);
  const workload::QuerySet uniform =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, ex);
  const workload::QuerySet similar =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kSimilar, ex);
  const workload::QuerySet mixed =
      workload::ConcatQuerySets({intensified, uniform, similar});

  // The ASB adaptation history arrives as kAsbInit/kAsbAdapt events on the
  // observability stream; the per-query trace is reconstructed from it.
  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(collect);
  sim::RunOptions options;
  options.buffer_frames = scenario.BufferFrames(0.047);
  options.collector = &collector;
  const sim::RunResult result = sim::RunQuerySet(
      scenario.disk.get(), scenario.tree_meta, "ASB", mixed, options);

  const size_t p1 = intensified.queries.size();
  const size_t p2 = p1 + uniform.queries.size();
  const std::vector<size_t> trace =
      sim::AsbCandidateTrace(collector.events(), mixed.queries.size());

  uint64_t decreases = 0, increases = 0, ties = 0;
  collector.events().ForEach([&](const obs::Event& event) {
    if (event.kind != obs::EventKind::kAsbAdapt) return;
    if (event.delta < 0) ++decreases;
    else if (event.delta > 0) ++increases;
    else ++ties;
  });

  auto mean = [&trace](size_t begin, size_t end) {
    if (begin >= end) return 0.0;
    return std::accumulate(trace.begin() + begin, trace.begin() + end, 0.0) /
           static_cast<double>(end - begin);
  };
  std::printf(
      "\n== Fig. 14 — ASB candidate-set size, mixed workload %s ==\n",
      mixed.name.c_str());
  std::printf("buffer: %zu frames, initial candidate set: %zu\n",
              options.buffer_frames, trace.empty() ? 0 : trace.front());
  std::printf(
      "overflow hits: %llu (c down: %llu, c up: %llu, unchanged: %llu)\n",
      static_cast<unsigned long long>(decreases + increases + ties),
      static_cast<unsigned long long>(decreases),
      static_cast<unsigned long long>(increases),
      static_cast<unsigned long long>(ties));
  std::printf("phase averages (settled half of each phase):\n");
  std::printf("  %-10s: %.0f\n", intensified.name.c_str(), mean(p1 / 2, p1));
  std::printf("  %-10s: %.0f\n", uniform.name.c_str(),
              mean((p1 + p2) / 2, p2));
  std::printf("  %-10s: %.0f\n", similar.name.c_str(),
              mean((p2 + trace.size()) / 2, trace.size()));

  // Down-sampled trace: ~50 rows.
  std::printf("\nquery#  candidate-set size  phase\n");
  const size_t step = trace.size() < 50 ? 1 : trace.size() / 50;
  for (size_t i = 0; i < trace.size(); i += step) {
    const char* phase = i < p1 ? intensified.name.c_str()
                               : (i < p2 ? uniform.name.c_str()
                                         : similar.name.c_str());
    std::printf("%6zu  %18zu  %s\n", i, trace[i], phase);
  }
}

}  // namespace

int main() {
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  TraceMixedWorkload(scenario, /*ex=*/33);   // the paper's parameters
  TraceMixedWorkload(scenario, /*ex=*/100);  // full trajectory at this scale
  return 0;
}
