// Extension: the spatial replacement criteria on a *different* spatial
// access method. The paper notes (Sec. 2.3) that its page entries — and
// hence the criteria A/EA/M/EM/EO — are equally defined for "z-values
// stored in a B-tree" [Orenstein & Manola]. This bench indexes the point
// features of the us-like map in a z-order B+-tree and compares the
// policies on uniform and intensified window workloads, mirroring the
// robustness contrast of Figs. 7/9 on the second SAM.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/policy_factory.h"
#include "zbtree/zbtree.h"

namespace {

using namespace sdb;

uint64_t RunZQueries(storage::DiskManager* disk, storage::PageId meta,
                     const std::string& policy,
                     const workload::QuerySet& queries, size_t frames) {
  core::BufferManager buffer(disk, frames, core::CreatePolicy(policy));
  const zbtree::ZBTree tree = zbtree::ZBTree::Open(disk, &buffer, meta);
  disk->ResetStats();
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    tree.WindowQueryVisit(window, core::AccessContext{++query_id},
                          [](const zbtree::ZPoint&) {});
  }
  return disk->stats().reads;
}

}  // namespace

int main() {
  // Build the z-tree over the point features of the us-like map.
  workload::MapParams params = workload::UsLikeParams(bench::kBenchScale *
                                                      sim::DefaultScale());
  const workload::GeneratedMap map = workload::GenerateMap(params);

  auto disk = std::make_unique<storage::DiskManager>();
  storage::PageId meta;
  zbtree::ZTreeStats stats;
  {
    core::BufferManager build(disk.get(), 1u << 15,
                              core::CreatePolicy("LRU"));
    zbtree::ZBTree tree(disk.get(), &build);
    for (const workload::SpatialObject& object : map.dataset.objects) {
      tree.Insert(object.rect.Center(), object.id, core::AccessContext{});
    }
    tree.PersistMeta();
    build.FlushAll();
    meta = tree.meta_page();
    stats = tree.ComputeStats();
  }
  std::printf("z-order B+-tree: %llu points, %u pages (%u inner), height %u\n",
              static_cast<unsigned long long>(stats.point_count),
              stats.total_pages(), stats.inner_pages, stats.height);

  // Query sets reuse the standard generators.
  sim::Scenario shim;
  shim.dataset = map.dataset;
  shim.places = map.places;
  shim.tree_stats.data_pages = stats.leaf_pages;
  shim.tree_stats.directory_pages = stats.inner_pages;

  const std::vector<std::string> policies{"LRU", "LRU-P", "LRU-2", "A", "M",
                                          "SLRU:A:0.25", "ASB"};
  for (const double fraction : {0.012, 0.047}) {
    const size_t frames = shim.BufferFrames(fraction);
    std::vector<std::string> header{"query set"};
    for (const auto& p : policies) header.push_back(p);
    sim::Table table(header);
    for (const bench::SetSpec spec :
         {bench::SetSpec{workload::QueryFamily::kUniform, 100},
          bench::SetSpec{workload::QueryFamily::kUniform, 33},
          bench::SetSpec{workload::QueryFamily::kSimilar, 100},
          bench::SetSpec{workload::QueryFamily::kIntensified, 100},
          bench::SetSpec{workload::QueryFamily::kIntensified, 33}}) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(shim, spec.family, spec.ex);
      uint64_t lru = 0;
      std::vector<std::string> row{queries.name};
      for (const std::string& policy : policies) {
        const uint64_t reads =
            RunZQueries(disk.get(), meta, policy, queries, frames);
        if (lru == 0) lru = reads;
        row.push_back(sim::FormatGain(
            static_cast<double>(lru) / static_cast<double>(reads) - 1.0));
      }
      table.AddRow(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Extension — policies on the z-order B+-tree, buffer "
                  "%.1f%% (%zu frames)",
                  fraction * 100.0, frames);
    table.Print(title);
  }
  return 0;
}
