// Extension: quantifying the memory argument of Sec. 2.2 / 4.3. LRU-K must
// keep reference-history records for pages that have *left* the buffer —
// "the memory requirements ... are not only determined by the number of
// pages in the buffer but also by the total number of requested pages" —
// while ASB's state never exceeds the buffer itself. This bench measures
// the retained records as the workload grows, next to the I/O gains both
// policies deliver.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const size_t frames = scenario.BufferFrames(0.012);

  sim::Table table({"queries", "buffer frames", "LRU-2 retained records",
                    "x buffer size", "LRU-2 gain", "ASB gain",
                    "ASB extra state"});
  for (const size_t count : {250, 500, 1000, 2000, 4000}) {
    workload::QuerySpec spec;
    spec.family = workload::QueryFamily::kSimilar;
    spec.ex = 100;
    spec.count = count;
    spec.seed = 31;
    const workload::QuerySet queries =
        workload::MakeQuerySet(spec, scenario.dataset, scenario.places);
    sim::RunOptions options;
    options.buffer_frames = frames;
    const sim::RunResult lru = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, "LRU", queries, options);
    const sim::RunResult lru2 = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, "LRU-2", queries, options);
    const sim::RunResult asb = sim::RunQuerySet(
        scenario.disk.get(), scenario.tree_meta, "ASB", queries, options);
    table.AddRow(
        {std::to_string(count), std::to_string(frames),
         std::to_string(lru2.retained_history_records),
         sim::FormatDouble(static_cast<double>(
                               lru2.retained_history_records) /
                               static_cast<double>(frames),
                           1),
         sim::FormatGain(sim::GainVersus(lru, lru2)),
         sim::FormatGain(sim::GainVersus(lru, asb)), "0"});
  }
  table.Print(
      "Extension — LRU-K's out-of-buffer history state vs ASB (S-W-100, "
      "1.2% buffer)");
  std::printf(
      "\nLRU-K keeps one history record per page ever evicted; ASB keeps\n"
      "no state for pages outside the buffer (Sec. 4.3).\n");
  return 0;
}
