// Ablation (paper future work 1): influence of the ASB overflow-buffer
// size. Sweeps the overflow fraction while keeping the total buffer fixed,
// on one set where the spatial criterion wins (U-P), one where it loses
// (INT-W-100) and one in between (S-W-100). A larger overflow section
// observes more eviction mistakes (faster adaptation) but shrinks the main
// section that actually exploits the learned policy.

#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::vector<double> overflow_fractions{0.05, 0.10, 0.20, 0.30, 0.40};
  const std::vector<bench::SetSpec> sets{
      {workload::QueryFamily::kUniform, 0},
      {workload::QueryFamily::kSimilar, 100},
      {workload::QueryFamily::kIntensified, 100}};

  for (const double buffer_fraction : {0.012, 0.047}) {
    std::vector<std::string> header{"query set"};
    for (const double f : overflow_fractions) {
      header.push_back("ovfl " + sim::FormatPercent(f));
    }
    sim::Table table(header);
    for (const bench::SetSpec& spec : sets) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(scenario, spec.family, spec.ex);
      sim::RunOptions options;
      options.buffer_frames = scenario.BufferFrames(buffer_fraction);
      const sim::RunResult lru = sim::RunQuerySet(
          scenario.disk.get(), scenario.tree_meta, "LRU", queries, options);
      std::vector<std::string> row{queries.name};
      for (const double f : overflow_fractions) {
        char spec_buf[64];
        std::snprintf(spec_buf, sizeof(spec_buf), "ASB:A:%g:0.25:0.01", f);
        const sim::RunResult result =
            sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                             spec_buf, queries, options);
        row.push_back(sim::FormatGain(sim::GainVersus(lru, result)));
      }
      table.AddRow(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Ablation — ASB overflow-size sweep, buffer %.1f%%, "
                  "gain vs LRU",
                  buffer_fraction * 100.0);
    table.Print(title);
  }
  return 0;
}
