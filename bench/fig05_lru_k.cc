// Figure 5: performance gain of LRU-K (K = 2, 3, 5) versus LRU on the
// primary database across all query families. Expected shape: 15-25% gains
// on point and small/medium window queries, next to nothing on large
// windows, and hardly any difference between K = 2, 3 and 5 — which is why
// the paper carries LRU-2 into the later comparisons.

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  bench::PrintGainTables(scenario, bench::AllSets(),
                         {"LRU-2", "LRU-3", "LRU-5"}, {0.006, 0.047},
                         "Fig. 5 — LRU-K gain vs LRU");
  return 0;
}
