// Figure 12: the static LRU+spatial combination (SLRU) with candidate sets
// of 50% and 25% of the buffer, against the pure spatial strategy A (all as
// gains versus LRU). Expected shape: the combination shifts A toward LRU —
// it gives up part of A's wins and recovers most of A's losses, more so
// with the smaller (25%) candidate set.

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  bench::PrintGainTables(scenario, bench::AllSets(),
                         {"A", "SLRU:A:0.5", "SLRU:A:0.25"}, {0.006, 0.047},
                         "Fig. 12 — static candidate sets");
  return 0;
}
