// Extension: resilience of the replay pipeline under injected I/O faults.
// The paper's experiments assume a perfect disk; a deployed spatial server
// sees transient read errors and the occasional corrupted transfer. This
// bench replays the paper's uniform window workload for LRU and ASB with
// the fault layer injecting transient errors and corruptions at rates
// {0, 0.1%, 1%} and reports the hit rate and the p50/p99 Fetch latency per
// cell.
//
// Contracts verified on every cell: the recovery ledger balances (every
// injected fault is a retry or a permanent failure), and whenever every
// fault was recovered the clean-I/O counters and the query results are
// bit-identical to the fault-free baseline — retries must never perturb
// the paper's disk-access metric. The rate-0 cell reads through the fault
// device with a *disabled* profile and is the A/B against the plain device
// proving the always-compiled-in layer costs nothing when idle.
//
// The write half is a chaos soak: churn an R-tree through the writable
// service with transient write faults and lying fsyncs on the WAL device
// plus transient write faults on the data device, crash (snapshot the
// underlying devices), recover, and demand the recovered tree equals the
// last acknowledged commit exactly — no silent loss. A lying-fsync-forever
// profile drives the service into degraded read-only mode and proves the
// failed commit is absent after recovery while reads keep serving. Any
// violated contract exits 1; seeds come from SDB_SOAK_SEED when set.
//
// Rows are appended as JSON-Lines to BENCH_fault.json (override with
// SDB_BENCH_FAULT; empty disables).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "rtree/rtree.h"
#include "sim/churn.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "svc/buffer_service.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace {

using namespace sdb;

/// PageSource decorator that timestamps every Fetch, so per-access latency
/// includes retries, checksum verification and backoff of the layer below.
class TimingSource final : public core::PageSource {
 public:
  explicit TimingSource(core::PageSource* inner) : inner_(inner) {
    latencies_ns_.reserve(1 << 20);
  }

  core::StatusOr<core::PageHandle> Fetch(
      storage::PageId page, const core::AccessContext& ctx) override {
    const auto start = std::chrono::steady_clock::now();
    core::StatusOr<core::PageHandle> fetched = inner_->Fetch(page, ctx);
    latencies_ns_.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return fetched;
  }

  core::StatusOr<core::PageHandle> New(const core::AccessContext& ctx)
      override {
    return inner_->New(ctx);
  }

  std::span<const std::byte> Peek(storage::PageId page) const override {
    return inner_->Peek(page);
  }

  /// Latency at `quantile` (0..1) in nanoseconds; 0 with no samples.
  uint64_t LatencyNs(double quantile) {
    if (latencies_ns_.empty()) return 0;
    std::vector<uint64_t> sorted = latencies_ns_;
    std::sort(sorted.begin(), sorted.end());
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(quantile * static_cast<double>(sorted.size())));
    return sorted[index];
  }

  size_t samples() const { return latencies_ns_.size(); }

 private:
  core::PageSource* inner_;
  std::vector<uint64_t> latencies_ns_;
};

struct CellResult {
  double hit_rate = 0.0;
  uint64_t reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t hits = 0;
  uint64_t result_objects = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t faults_injected = 0;
  uint64_t io_read_retries = 0;
  uint64_t io_checksum_mismatches = 0;
  uint64_t io_recovered_reads = 0;
  uint64_t io_permanent_failures = 0;
  uint64_t io_errors = 0;
  obs::MetricsSnapshot metrics;

  bool CleanRun() const {
    return io_permanent_failures == 0 && io_errors == 0;
  }
  bool SameCleanIo(const CellResult& other) const {
    return reads == other.reads &&
           sequential_reads == other.sequential_reads &&
           hits == other.hits && result_objects == other.result_objects;
  }
};

/// One replay cell. `use_fault_layer` false = plain read-only view (the
/// seed configuration); true = reads go through FaultInjectingDevice with
/// `rate` transient faults and rate/10 corruptions (rate 0 -> disabled
/// profile, the zero-overhead A/B).
CellResult RunCell(const sim::Scenario& scenario,
                   const workload::QuerySet& queries,
                   const std::string& policy, size_t frames, double rate,
                   bool use_fault_layer) {
  storage::ReadOnlyDiskView view(*scenario.disk);
  std::unique_ptr<storage::FaultInjectingDevice> fault_device;
  storage::PageDevice* device = &view;
  if (use_fault_layer) {
    storage::FaultProfile profile;
    profile.seed = 1771;
    profile.transient_prob = rate;
    profile.bit_flip_prob = rate / 20.0;
    profile.torn_read_prob = rate / 20.0;
    fault_device =
        std::make_unique<storage::FaultInjectingDevice>(view, profile);
    device = fault_device.get();
  }
  // The collector only counts; the ledger and clean-run identity checks
  // below compare counted behavior, which attaching it does not perturb.
  obs::CollectorOptions collector_options;
  collector_options.event_capacity = 0;  // metrics only
  obs::Collector collector(collector_options);
  core::BufferManager buffer(device, frames, core::CreatePolicy(policy),
                             obs::kEnabled ? &collector : nullptr);
  TimingSource timing(&buffer);
  const rtree::RTree tree =
      rtree::RTree::Open(scenario.disk.get(), &timing, scenario.tree_meta);

  CellResult cell;
  uint64_t query_id = 0;
  for (const geom::Rect& window : queries.queries) {
    const core::AccessContext ctx{++query_id};
    tree.WindowQueryVisit(window, ctx, [&cell](const rtree::Entry&) {
      ++cell.result_objects;
    });
  }

  cell.hit_rate = buffer.stats().HitRate();
  cell.reads = device->stats().reads;
  cell.sequential_reads = device->stats().sequential_reads;
  cell.hits = buffer.stats().hits;
  cell.p50_ns = timing.LatencyNs(0.50);
  cell.p99_ns = timing.LatencyNs(0.99);
  cell.io_read_retries = buffer.stats().io_read_retries;
  cell.io_checksum_mismatches = buffer.stats().io_checksum_mismatches;
  cell.io_recovered_reads = buffer.stats().io_recovered_reads;
  cell.io_permanent_failures = buffer.stats().io_permanent_failures;
  cell.io_errors = tree.io_errors();
  if constexpr (obs::kEnabled) {
    buffer.FlushObservability();
    cell.metrics = collector.metrics().Snapshot();
  }
  if (fault_device != nullptr) {
    cell.faults_injected = fault_device->fault_stats().injected();
    // Recovery ledger: every injected data fault is exactly one retried
    // attempt or one terminal failure — nothing slips through unaccounted.
    if (cell.faults_injected !=
        cell.io_read_retries + cell.io_permanent_failures) {
      std::fprintf(stderr,
                   "FATAL: fault ledger out of balance: injected %llu != "
                   "retries %llu + permanent %llu\n",
                   static_cast<unsigned long long>(cell.faults_injected),
                   static_cast<unsigned long long>(cell.io_read_retries),
                   static_cast<unsigned long long>(
                       cell.io_permanent_failures));
      std::exit(1);
    }
  }
  return cell;
}

std::string CellJson(const std::string& workload_name,
                     const std::string& policy, size_t frames, double rate,
                     bool use_fault_layer, const CellResult& cell) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":%d,\"bench\":\"fault_resilience\","
      "\"workload\":\"%s\",\"policy\":\"%s\",\"buffer_frames\":%zu,"
      "\"fault_rate\":%.4f,\"device\":\"%s\",\"hit_rate\":%.6f,"
      "\"disk_reads\":%llu,\"result_objects\":%llu,\"p50_fetch_ns\":%llu,"
      "\"p99_fetch_ns\":%llu,\"faults_injected\":%llu,"
      "\"io_read_retries\":%llu,\"io_checksum_mismatches\":%llu,"
      "\"io_recovered_reads\":%llu,\"io_permanent_failures\":%llu,"
      "\"io_errors\":%llu",
      obs::kBenchJsonSchemaVersion, workload_name.c_str(),
      sim::JsonEscape(policy).c_str(), frames, rate,
      use_fault_layer ? "fault_layer" : "plain", cell.hit_rate,
      static_cast<unsigned long long>(cell.reads),
      static_cast<unsigned long long>(cell.result_objects),
      static_cast<unsigned long long>(cell.p50_ns),
      static_cast<unsigned long long>(cell.p99_ns),
      static_cast<unsigned long long>(cell.faults_injected),
      static_cast<unsigned long long>(cell.io_read_retries),
      static_cast<unsigned long long>(cell.io_checksum_mismatches),
      static_cast<unsigned long long>(cell.io_recovered_reads),
      static_cast<unsigned long long>(cell.io_permanent_failures),
      static_cast<unsigned long long>(cell.io_errors));
  std::string line(buf);
  if (!cell.metrics.empty()) {
    line += ",\"metrics\":";
    line += obs::MetricsJson(cell.metrics);
  }
  line += "}";
  return line;
}

// ---------------------------------------------------------------------------
// Write-path chaos soak: churn x write faults x crash x recover

/// One write-fault profile of the soak matrix.
struct WriteProfile {
  const char* label;
  double wal_write_rate = 0.0;   ///< transient write faults on the log device
  double sync_fail_rate = 0.0;   ///< lying fsyncs on the log device
  double data_write_rate = 0.0;  ///< transient write faults on the data path
  bool sticky = false;  ///< schedule a permanent fsync outage mid-run
};

struct WriteCellResult {
  uint64_t commits_acked = 0;
  uint64_t wal_write_retries = 0;
  uint64_t wal_faults_injected = 0;
  uint64_t data_faults_injected = 0;
  uint64_t data_write_retries = 0;
  uint64_t degraded = 0;  ///< DegradedState as an integer
  uint64_t live_entries = 0;
  uint64_t recovered_entries = 0;
  uint64_t degraded_reads_served = 0;
  bool recovered_match = false;
};

std::vector<uint64_t> SortedIds(const std::vector<rtree::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const rtree::Entry& entry : entries) ids.push_back(entry.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Churns a fresh tree through the writable service under `profile`, then
/// crashes (snapshots the *underlying* devices — the power-cut view),
/// recovers and compares against the last acknowledged commit. Violations
/// of the no-silent-loss contract are fatal.
WriteCellResult RunWriteCell(const WriteProfile& profile, uint64_t seed) {
  const geom::Rect space(0, 0, 100, 100);
  storage::DiskManager disk;
  storage::DiskManager log;
  storage::FaultProfile log_faults;
  log_faults.seed = seed;
  log_faults.write_transient_prob = profile.wal_write_rate;
  log_faults.sync_failure_prob = profile.sync_fail_rate;
  if (profile.sticky) {
    // A deterministic mid-run fsync outage: syncs 12..40 all fail, which
    // outlasts max_flush_retries and turns the log sticky after roughly
    // the first dozen commit groups.
    for (uint64_t s = 12; s < 41; ++s) log_faults.sync_schedule.push_back(s);
  }
  storage::FaultInjectingDevice faulty_log(log, log_faults);
  wal::WalOptions wal_options;
  wal_options.max_flush_retries = 8;
  wal::WalManager wal(&faulty_log, wal_options);
  svc::BufferServiceConfig config;
  config.shard_count = 2;
  config.total_frames = 128;
  config.policy_spec = "LRU";
  config.fault_profile.seed = seed ^ 0x9E3779B97F4A7C15ull;
  config.fault_profile.write_transient_prob = profile.data_write_rate;
  svc::BufferService service(&disk, &wal, config);
  const core::AccessContext ctx{seed};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 400;
  options.delete_fraction = 0.35;
  options.seed = seed;
  options.commit_every = 25;
  options.checkpoint_every = 100;
  WriteCellResult cell;
  std::vector<uint64_t> acked_ids;  // answer at the last acknowledged commit
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    const core::Status committed = service.Commit(ctx);
    if (committed.ok()) {
      ++cell.commits_acked;
      acked_ids = SortedIds(tree.WindowQuery(space, ctx));
    }
    return committed;
  };
  hooks.checkpoint = [&] {
    tree.PersistMeta();
    const core::Status checkpointed = service.Checkpoint(ctx);
    if (checkpointed.ok()) {
      ++cell.commits_acked;
      acked_ids = SortedIds(tree.WindowQuery(space, ctx));
    }
    return checkpointed;
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  if (!churn.ok() && !profile.sticky) {
    std::fprintf(stderr,
                 "FATAL: %s seed %llu: transient-only faults aborted the "
                 "run: %s\n",
                 profile.label, static_cast<unsigned long long>(seed),
                 churn.status().ToString().c_str());
    std::exit(1);
  }
  if (profile.sticky && churn.ok()) {
    std::fprintf(stderr,
                 "FATAL: %s seed %llu: the scheduled fsync outage never "
                 "failed a commit\n",
                 profile.label, static_cast<unsigned long long>(seed));
    std::exit(1);
  }
  if (churn.ok()) {
    // Final commit: this is the state recovery must reproduce.
    tree.PersistMeta();
    const core::Status committed = service.Commit(ctx);
    if (!committed.ok()) {
      std::fprintf(stderr, "FATAL: %s seed %llu: final commit failed: %s\n",
                   profile.label, static_cast<unsigned long long>(seed),
                   committed.ToString().c_str());
      std::exit(1);
    }
    ++cell.commits_acked;
    acked_ids = SortedIds(tree.WindowQuery(space, ctx));
  } else {
    // Degraded path: mutations are refused, reads must keep serving.
    if (!service.degraded()) {
      std::fprintf(stderr,
                   "FATAL: %s seed %llu: commit failed but the service "
                   "never entered degraded mode\n",
                   profile.label, static_cast<unsigned long long>(seed));
      std::exit(1);
    }
    cell.degraded_reads_served = tree.WindowQuery(space, ctx).size();
  }
  cell.degraded = static_cast<uint64_t>(service.degraded_state());
  cell.live_entries = acked_ids.size();
  cell.wal_write_retries = wal.stats().write_retries;
  cell.wal_faults_injected = faulty_log.fault_stats().write_injected();
  cell.data_faults_injected = service.AggregateFaultStats().write_injected();
  cell.data_write_retries =
      service.AggregateStats().buffer.io_write_retries;

  // Crash: snapshot the underlying devices (not the fault wrappers) while
  // the service still holds dirty frames, then recover the snapshots.
  const std::string data_path = "BENCH_writefault_data.tmp";
  const std::string log_path = "BENCH_writefault_log.tmp";
  if (!disk.SaveImage(data_path) || !log.SaveImage(log_path)) {
    std::fprintf(stderr, "FATAL: could not snapshot the crash images\n");
    std::exit(1);
  }
  auto crashed_data = storage::DiskManager::LoadImage(data_path);
  auto crashed_log = storage::DiskManager::LoadImage(log_path);
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
  if (!crashed_data.has_value() || !crashed_log.has_value()) {
    std::fprintf(stderr, "FATAL: could not reload the crash images\n");
    std::exit(1);
  }
  const core::StatusOr<wal::RecoveryResult> recovered =
      wal::Recover(*crashed_log, *crashed_data);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FATAL: %s seed %llu: recovery failed: %s\n",
                 profile.label, static_cast<unsigned long long>(seed),
                 recovered.status().ToString().c_str());
    std::exit(1);
  }
  if (cell.commits_acked == 0) {
    // Nothing was acknowledged, so an empty recovered database is correct.
    cell.recovered_match = crashed_data->page_count() == 0;
    return cell;
  }
  svc::BufferServiceConfig read_config;
  read_config.shard_count = 2;
  read_config.total_frames = 128;
  read_config.policy_spec = "LRU";
  svc::BufferService reader(*crashed_data, read_config);
  rtree::RTree reopened =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  const std::vector<uint64_t> replayed_ids =
      SortedIds(reopened.WindowQuery(space, ctx));
  cell.recovered_entries = replayed_ids.size();
  cell.recovered_match =
      reopened.Validate().empty() && replayed_ids == acked_ids;
  if (!cell.recovered_match) {
    std::fprintf(stderr,
                 "FATAL: %s seed %llu: recovered tree diverged from the "
                 "last acknowledged commit (%zu vs %zu entries)\n",
                 profile.label, static_cast<unsigned long long>(seed),
                 replayed_ids.size(), acked_ids.size());
    std::exit(1);
  }
  return cell;
}

std::string WriteCellJson(const WriteProfile& profile, uint64_t seed,
                          const WriteCellResult& cell) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":%d,\"bench\":\"fault_write\",\"profile\":\"%s\","
      "\"seed\":%llu,\"wal_write_rate\":%.4f,\"sync_fail_rate\":%.4f,"
      "\"data_write_rate\":%.4f,\"sticky\":%d,\"commits_acked\":%llu,"
      "\"wal_write_retries\":%llu,\"wal_faults_injected\":%llu,"
      "\"data_faults_injected\":%llu,\"data_write_retries\":%llu,"
      "\"degraded\":%llu,\"live_entries\":%llu,\"recovered_entries\":%llu,"
      "\"degraded_reads_served\":%llu,\"recovered_match\":%d}",
      obs::kBenchJsonSchemaVersion, sim::JsonEscape(profile.label).c_str(),
      static_cast<unsigned long long>(seed), profile.wal_write_rate,
      profile.sync_fail_rate, profile.data_write_rate,
      profile.sticky ? 1 : 0,
      static_cast<unsigned long long>(cell.commits_acked),
      static_cast<unsigned long long>(cell.wal_write_retries),
      static_cast<unsigned long long>(cell.wal_faults_injected),
      static_cast<unsigned long long>(cell.data_faults_injected),
      static_cast<unsigned long long>(cell.data_write_retries),
      static_cast<unsigned long long>(cell.degraded),
      static_cast<unsigned long long>(cell.live_entries),
      static_cast<unsigned long long>(cell.recovered_entries),
      static_cast<unsigned long long>(cell.degraded_reads_served),
      cell.recovered_match ? 1 : 0);
  return std::string(buf);
}

}  // namespace

int main() {
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const workload::QuerySet queries =
      sim::StandardQuerySet(scenario, workload::QueryFamily::kUniform, 100);
  const size_t frames = scenario.BufferFrames(0.012);
  const std::string workload_name = "uniform U-W-100";
  const std::string json_path =
      bench::EnvOr("SDB_BENCH_FAULT", "BENCH_fault.json");

  const std::vector<std::string> policies = {"LRU", "ASB"};
  const std::vector<double> rates = {0.0, 0.001, 0.01};

  sim::Table table({"policy", "fault rate", "hit rate", "disk reads",
                    "p99 fetch", "retries", "recovered", "io errors"});
  bool json_ok = true;
  for (const std::string& policy : policies) {
    // Fault-free baseline over the bare device: the seed configuration.
    const CellResult plain = RunCell(scenario, queries, policy, frames,
                                     /*rate=*/0.0,
                                     /*use_fault_layer=*/false);
    if (!json_path.empty()) {
      json_ok = sim::AppendJsonLine(
                    json_path, CellJson(workload_name, policy, frames, 0.0,
                                        /*use_fault_layer=*/false, plain)) &&
                json_ok;
    }
    table.AddRow({policy, "0 (plain)", sim::FormatDouble(plain.hit_rate, 4),
                  std::to_string(plain.reads),
                  sim::FormatDouble(plain.p99_ns / 1000.0, 1) + " us", "0",
                  "0", "0"});

    for (const double rate : rates) {
      const CellResult cell = RunCell(scenario, queries, policy, frames,
                                      rate, /*use_fault_layer=*/true);
      // Determinism contract: a fully-recovered run is indistinguishable
      // from the fault-free run in clean I/O, hits and results — at rate 0
      // that also proves the idle fault layer changes nothing.
      if (cell.CleanRun() && !cell.SameCleanIo(plain)) {
        std::fprintf(stderr,
                     "FATAL: %s at rate %.4f recovered every fault but "
                     "diverged from the fault-free run "
                     "(reads %llu vs %llu, hits %llu vs %llu)\n",
                     policy.c_str(), rate,
                     static_cast<unsigned long long>(cell.reads),
                     static_cast<unsigned long long>(plain.reads),
                     static_cast<unsigned long long>(cell.hits),
                     static_cast<unsigned long long>(plain.hits));
        std::exit(1);
      }
      char rate_label[32];
      std::snprintf(rate_label, sizeof(rate_label), "%.1f%%", 100.0 * rate);
      table.AddRow({policy, rate_label, sim::FormatDouble(cell.hit_rate, 4),
                    std::to_string(cell.reads),
                    sim::FormatDouble(cell.p99_ns / 1000.0, 1) + " us",
                    std::to_string(cell.io_read_retries),
                    std::to_string(cell.io_recovered_reads),
                    std::to_string(cell.io_errors)});
      if (!json_path.empty()) {
        json_ok = sim::AppendJsonLine(
                      json_path, CellJson(workload_name, policy, frames,
                                          rate, /*use_fault_layer=*/true,
                                          cell)) &&
                  json_ok;
      }
    }
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Extension — fault resilience, %s, %zu queries, buffer %zu "
                "frames",
                workload_name.c_str(), queries.queries.size(), frames);
  table.Print(title);

  // Write-path chaos soak: every cell must either recover the last
  // acknowledged commit byte-exact or prove the failed commit absent;
  // RunWriteCell exits 1 on any violation.
  const uint64_t soak_seed =
      std::strtoull(bench::EnvOr("SDB_SOAK_SEED", "7").c_str(), nullptr, 10);
  const std::vector<WriteProfile> write_profiles = {
      {"clean", 0.0, 0.0, 0.0, false},
      {"wtransient 1%", 0.01, 0.0, 0.01, false},
      {"wtransient 1% + sync_fail 2%", 0.01, 0.02, 0.01, false},
      {"lying fsync outage", 0.0, 0.0, 0.01, true},
  };
  sim::Table write_table({"profile", "seed", "acked", "wal retries",
                          "data retries", "degraded", "recovered",
                          "verdict"});
  for (const WriteProfile& profile : write_profiles) {
    const WriteCellResult cell = RunWriteCell(profile, soak_seed);
    write_table.AddRow(
        {profile.label, std::to_string(soak_seed),
         std::to_string(cell.commits_acked),
         std::to_string(cell.wal_write_retries),
         std::to_string(cell.data_write_retries),
         std::to_string(cell.degraded),
         std::to_string(cell.recovered_entries),
         cell.recovered_match ? "exact" : "acked-prefix"});
    if (!json_path.empty()) {
      json_ok = sim::AppendJsonLine(json_path,
                                    WriteCellJson(profile, soak_seed, cell)) &&
                json_ok;
    }
  }
  write_table.Print("Extension — write-path chaos soak (churn x faults x "
                    "crash x recover)");
  if (!json_ok) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
  return 0;
}
