#!/usr/bin/env bash
# Regenerates the repository's canonical machine-readable benchmark set in
# one command:
#
#   BENCH_sweep.json            all figure benches' sweep rows (concatenated)
#   BENCH_metrics.json          the figure sweeps' merged metrics registries
#   BENCH_policy_overhead.json  eviction-cost + EO-refresh A/B rows, plus a
#                               latch_overhead row (mutex vs optimistic
#                               ns/fetch on the uncontended hit path)
#   BENCH_kernels.json          geometry-kernel dispatch-tier A/B rows
#   BENCH_concurrent.json       concurrent shared-buffer service rows; the
#                               grid runs twice (latch_mode mutex vs
#                               optimistic) and each row carries pin-latency
#                               percentiles (pin_p50_ns/p95/p99)
#   BENCH_fault.json            fault-resilience rows (hit rate + fetch
#                               latency vs injected fault rate, LRU vs ASB)
#
# Usage: bench/run_bench_suite.sh [build-dir] [out-dir]
#   build-dir  CMake build tree with the bench targets built (default: build)
#   out-dir    where the BENCH_*.json files land (default: current directory)
#
# Honors the usual knobs: SDB_SCALE (database scale; e.g. 0.2 for a quick
# pass), SDB_BENCH_THREADS (sweep worker threads — results are identical for
# every thread count), SDB_KERNELS (geometry-kernel dispatch tier; results
# are bit-identical across tiers), and SDB_CACHE_DIR (strongly recommended:
# caches the built databases across benches and runs).
#
# Each bench process truncates its JSON sink on first append (fresh file per
# run), so the figure benches write to a shared part file that is folded
# into the combined BENCH_sweep.json after each bench finishes.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_ARG=${2:-.}
if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build the project first" >&2
  echo "  cmake -B $BUILD_DIR -DCMAKE_BUILD_TYPE=RelWithDebInfo && cmake --build $BUILD_DIR" >&2
  exit 1
fi
BENCH_DIR=$(cd "$BUILD_DIR/bench" && pwd)
mkdir -p "$OUT_ARG"
OUT_DIR=$(cd "$OUT_ARG" && pwd)
TMP_DIR=$(mktemp -d)
trap 'rm -rf "$TMP_DIR"' EXIT

FIGS=(
  fig04_lru_priority
  fig05_lru_k
  fig06_spatial_variants
  fig07_uniform
  fig08_identical_similar
  fig09_independent_intensified
  fig12_slru_static
  fig13_asb_comparison
  fig14_candidate_trace
)

: > "$TMP_DIR/sweep.json"
: > "$TMP_DIR/metrics.json"
for fig in "${FIGS[@]}"; do
  echo "== $fig =="
  SDB_BENCH_JSON="$TMP_DIR/part_sweep.json" \
    SDB_BENCH_METRICS="$TMP_DIR/part_metrics.json" \
    "$BENCH_DIR/$fig"
  # Some figure benches (fig04, fig06, fig14) print bespoke tables and have
  # no sweep-JSON sink; fold in whatever parts this bench produced.
  for part in sweep metrics; do
    if [[ -f "$TMP_DIR/part_$part.json" ]]; then
      cat "$TMP_DIR/part_$part.json" >> "$TMP_DIR/$part.json"
      rm -f "$TMP_DIR/part_$part.json"
    fi
  done
done
mv "$TMP_DIR/sweep.json" "$OUT_DIR/BENCH_sweep.json"
mv "$TMP_DIR/metrics.json" "$OUT_DIR/BENCH_metrics.json"

echo "== micro_policy_overhead (tables only) =="
(cd "$OUT_DIR" && "$BENCH_DIR/micro_policy_overhead" --benchmark_filter='^$')

echo "== micro_geom_kernels (tables only) =="
(cd "$OUT_DIR" && "$BENCH_DIR/micro_geom_kernels" --benchmark_filter='^$')

echo "== ext_concurrent_service =="
(cd "$OUT_DIR" && SDB_BENCH_CONCURRENT=BENCH_concurrent.json \
  "$BENCH_DIR/ext_concurrent_service")

echo "== ext_fault_resilience =="
(cd "$OUT_DIR" && SDB_BENCH_FAULT=BENCH_fault.json \
  "$BENCH_DIR/ext_fault_resilience")

echo
echo "canonical benchmark set written to $OUT_DIR:"
(cd "$OUT_DIR" && wc -l BENCH_sweep.json BENCH_metrics.json \
  BENCH_policy_overhead.json BENCH_kernels.json BENCH_concurrent.json \
  BENCH_fault.json)
