// Figure 6: the five spatial page-replacement criteria compared against
// each other. For every query set the disk accesses of criterion A define
// 100%; the other criteria are reported relative to that base. Expected
// shape: A best at the small buffer (EO clearly worst); A and M on par at
// the large buffer with EA/EM/EO losing more clearly.

#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace sdb;
  const sim::Scenario scenario =
      bench::BuildBenchDatabase(sim::DatabaseKind::kUsLike);
  const std::vector<std::string> criteria{"A", "EA", "M", "EM", "EO"};

  for (const double fraction : {0.003, 0.047}) {
    std::vector<std::string> header{"query set"};
    for (const std::string& c : criteria) header.push_back(c);
    sim::Table table(header);
    for (const bench::SetSpec& spec : bench::AllSets()) {
      const workload::QuerySet queries =
          sim::StandardQuerySet(scenario, spec.family, spec.ex);
      sim::RunOptions options;
      options.buffer_frames = scenario.BufferFrames(fraction);
      std::vector<std::string> row{queries.name};
      uint64_t base = 0;
      for (const std::string& criterion : criteria) {
        const sim::RunResult result =
            sim::RunQuerySet(scenario.disk.get(), scenario.tree_meta,
                             criterion, queries, options);
        if (base == 0) base = result.disk_reads;
        row.push_back(sim::FormatPercent(
            static_cast<double>(result.disk_reads) /
            static_cast<double>(base)));
      }
      table.AddRow(std::move(row));
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Fig. 6 — disk accesses relative to criterion A (=100%%), "
                  "buffer %.1f%%",
                  fraction * 100.0);
    table.Print(title);
  }
  return 0;
}
