#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace sdb::rtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Point;
using geom::Rect;
using storage::DiskManager;

Entry MakeEntry(uint64_t id, const Rect& rect) {
  Entry e;
  e.id = id;
  e.rect = rect;
  return e;
}

/// Ids of all brute-force matches.
std::set<uint64_t> BruteForceWindow(const std::vector<Entry>& entries,
                                    const Rect& window) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) {
    if (e.rect.Intersects(window)) ids.insert(e.id);
  }
  return ids;
}

std::set<uint64_t> Ids(const std::vector<Entry>& entries) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) ids.insert(e.id);
  return ids;
}

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest()
      : buffer_(&disk_, 4096, std::make_unique<core::LruPolicy>()),
        tree_(&disk_, &buffer_) {}

  void InsertRandom(size_t n, uint64_t seed, double max_extent = 0.01) {
    Rng rng(seed);
    const Rect space(0, 0, 1, 1);
    for (size_t i = 0; i < n; ++i) {
      const Entry e =
          MakeEntry(all_.size() + 1, test::RandomRect(rng, space, max_extent));
      tree_.Insert(e, ctx_);
      all_.push_back(e);
    }
  }

  DiskManager disk_;
  BufferManager buffer_;
  RTree tree_;
  AccessContext ctx_{1};
  std::vector<Entry> all_;
};

TEST_F(RTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.size(), 0u);
  EXPECT_EQ(tree_.height(), 1u);
  EXPECT_TRUE(tree_.WindowQuery(Rect(0, 0, 1, 1), ctx_).empty());
  EXPECT_EQ(tree_.Validate(), "");
}

TEST_F(RTreeTest, SingleInsertIsFindable) {
  const Entry e = MakeEntry(7, Rect(0.1, 0.1, 0.2, 0.2));
  tree_.Insert(e, ctx_);
  EXPECT_EQ(tree_.size(), 1u);
  const auto hits = tree_.PointQuery(Point{0.15, 0.15}, ctx_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], e);
  EXPECT_TRUE(tree_.PointQuery(Point{0.5, 0.5}, ctx_).empty());
}

TEST_F(RTreeTest, GrowsBeyondOneNodeAndStaysValid) {
  InsertRandom(500, 11);
  EXPECT_GT(tree_.height(), 1u);
  EXPECT_EQ(tree_.size(), 500u);
  EXPECT_EQ(tree_.Validate(), "");
}

TEST_F(RTreeTest, WindowQueriesMatchBruteForce) {
  InsertRandom(2000, 22);
  Rng rng(99);
  const Rect space(0, 0, 1, 1);
  for (int q = 0; q < 50; ++q) {
    const Rect window = test::RandomRect(rng, space, 0.2);
    EXPECT_EQ(Ids(tree_.WindowQuery(window, ctx_)),
              BruteForceWindow(all_, window))
        << "window " << geom::ToString(window);
  }
}

TEST_F(RTreeTest, PointQueriesMatchBruteForce) {
  InsertRandom(1500, 33, /*max_extent=*/0.05);
  Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    EXPECT_EQ(Ids(tree_.PointQuery(p, ctx_)),
              BruteForceWindow(all_, Rect::FromPoint(p)));
  }
}

TEST_F(RTreeTest, EveryInsertedObjectIsRetrievable) {
  InsertRandom(800, 44);
  for (const Entry& e : all_) {
    const auto hits = tree_.WindowQuery(e.rect, ctx_);
    EXPECT_TRUE(Ids(hits).contains(e.id)) << "lost object " << e.id;
  }
}

TEST_F(RTreeTest, StatsReflectTheTree) {
  InsertRandom(2000, 55);
  const TreeStats stats = tree_.ComputeStats();
  EXPECT_EQ(stats.object_count, 2000u);
  EXPECT_EQ(stats.height, tree_.height());
  EXPECT_GT(stats.data_pages, 0u);
  EXPECT_GT(stats.directory_pages, 0u);
  EXPECT_GE(stats.avg_data_fill,
            static_cast<double>(tree_.config().min_data_entries()));
  EXPECT_LE(stats.avg_data_fill,
            static_cast<double>(tree_.config().max_data_entries));
  // Directory pages are a small share of the tree (paper: ~2.8%).
  EXPECT_LT(stats.directory_share(), 0.2);
}

TEST_F(RTreeTest, DeleteRemovesExactlyTheEntry) {
  InsertRandom(300, 66);
  const Entry victim = all_[137];
  EXPECT_TRUE(tree_.Delete(victim.id, victim.rect, ctx_));
  EXPECT_EQ(tree_.size(), 299u);
  EXPECT_EQ(tree_.Validate(), "");
  EXPECT_FALSE(Ids(tree_.WindowQuery(victim.rect, ctx_)).contains(victim.id));
  // A second delete of the same entry fails.
  EXPECT_FALSE(tree_.Delete(victim.id, victim.rect, ctx_));
}

TEST_F(RTreeTest, DeleteWithWrongRectFails) {
  InsertRandom(50, 77);
  const Entry victim = all_[10];
  EXPECT_FALSE(tree_.Delete(victim.id, Rect(0.9, 0.9, 0.95, 0.95), ctx_));
  EXPECT_EQ(tree_.size(), 50u);
}

TEST_F(RTreeTest, MassDeletionKeepsTreeValidAndQueriesCorrect) {
  InsertRandom(1200, 88);
  Rng rng(3);
  // Delete ~2/3 in random order.
  std::vector<size_t> order(all_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  std::vector<Entry> remaining;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < 800) {
      EXPECT_TRUE(tree_.Delete(all_[order[i]].id, all_[order[i]].rect, ctx_));
    } else {
      remaining.push_back(all_[order[i]]);
    }
  }
  EXPECT_EQ(tree_.size(), remaining.size());
  ASSERT_EQ(tree_.Validate(), "");
  for (int q = 0; q < 30; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.3);
    EXPECT_EQ(Ids(tree_.WindowQuery(window, ctx_)),
              BruteForceWindow(remaining, window));
  }
}

TEST_F(RTreeTest, DeleteDownToEmpty) {
  InsertRandom(150, 99);
  for (const Entry& e : all_) {
    EXPECT_TRUE(tree_.Delete(e.id, e.rect, ctx_));
  }
  EXPECT_EQ(tree_.size(), 0u);
  EXPECT_TRUE(tree_.WindowQuery(Rect(0, 0, 1, 1), ctx_).empty());
  EXPECT_EQ(tree_.Validate(), "");
}

TEST_F(RTreeTest, PersistAndReopenWithFreshBuffer) {
  InsertRandom(600, 123);
  tree_.PersistMeta();
  buffer_.FlushAll();

  BufferManager fresh(&disk_, 64, std::make_unique<core::LruPolicy>());
  const RTree reopened = RTree::Open(&disk_, &fresh, tree_.meta_page());
  EXPECT_EQ(reopened.size(), 600u);
  EXPECT_EQ(reopened.height(), tree_.height());
  EXPECT_EQ(reopened.root(), tree_.root());
  EXPECT_EQ(reopened.config().max_dir_entries,
            tree_.config().max_dir_entries);

  Rng rng(5);
  for (int q = 0; q < 20; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2);
    EXPECT_EQ(Ids(reopened.WindowQuery(window, AccessContext{9})),
              BruteForceWindow(all_, window));
  }
}

TEST_F(RTreeTest, NearestNeighborsMatchBruteForce) {
  InsertRandom(700, 31);
  Rng rng(8);
  auto rect_dist = [](const Point& p, const Rect& r) {
    const double dx = std::max({r.xmin - p.x, 0.0, p.x - r.xmax});
    const double dy = std::max({r.ymin - p.y, 0.0, p.y - r.ymax});
    return dx * dx + dy * dy;
  };
  for (int q = 0; q < 20; ++q) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    const auto knn = tree_.NearestNeighbors(p, 5, ctx_);
    ASSERT_EQ(knn.size(), 5u);
    // The k-th reported distance must equal the brute-force k-th distance.
    std::vector<double> distances;
    for (const Entry& e : all_) distances.push_back(rect_dist(p, e.rect));
    std::sort(distances.begin(), distances.end());
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_DOUBLE_EQ(rect_dist(p, knn[i].rect), distances[i]);
    }
  }
}

TEST_F(RTreeTest, DuplicateRectanglesAreSupported) {
  const Rect r(0.4, 0.4, 0.5, 0.5);
  for (uint64_t id = 1; id <= 100; ++id) {
    tree_.Insert(MakeEntry(id, r), ctx_);
  }
  EXPECT_EQ(tree_.Validate(), "");
  EXPECT_EQ(tree_.WindowQuery(r, ctx_).size(), 100u);
  EXPECT_TRUE(tree_.Delete(42, r, ctx_));
  EXPECT_EQ(tree_.WindowQuery(r, ctx_).size(), 99u);
}

TEST_F(RTreeTest, CustomFanoutIsRespected) {
  DiskManager disk;
  BufferManager buffer(&disk, 512, std::make_unique<core::LruPolicy>());
  RTreeConfig config;
  config.max_dir_entries = 8;
  config.max_data_entries = 6;
  RTree tree(&disk, &buffer, config);
  Rng rng(17);
  std::vector<Entry> entries;
  const AccessContext ctx{1};
  for (uint64_t id = 1; id <= 400; ++id) {
    const Entry e =
        MakeEntry(id, test::RandomRect(rng, Rect(0, 0, 1, 1), 0.02));
    tree.Insert(e, ctx);
    entries.push_back(e);
  }
  EXPECT_EQ(tree.Validate(), "");
  EXPECT_GE(tree.height(), 3u) << "small fanout must produce a deep tree";
  const Rect window(0.2, 0.2, 0.6, 0.6);
  EXPECT_EQ(Ids(tree.WindowQuery(window, ctx)),
            BruteForceWindow(entries, window));
}

TEST_F(RTreeTest, ObjectRefsSurviveTheTree) {
  Entry e = MakeEntry(5, Rect(0.1, 0.1, 0.2, 0.2));
  e.ref = ObjectRef{999, 3};
  tree_.Insert(e, ctx_);
  const auto hits = tree_.PointQuery(Point{0.15, 0.15}, ctx_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].ref, (ObjectRef{999, 3}));
}

}  // namespace
}  // namespace sdb::rtree
