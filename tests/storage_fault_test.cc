#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/node_view.h"
#include "storage/crc32c.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "svc/buffer_service.h"
#include "test_util.h"

namespace sdb::storage {
namespace {

using core::AccessContext;
using core::BufferManager;
using core::PageHandle;
using core::ResilienceOptions;
using core::StatusCode;
using core::StatusOr;
using core::UnpinStatus;

std::unique_ptr<core::ReplacementPolicy> Lru() {
  return std::make_unique<core::LruPolicy>();
}

// ---------------------------------------------------------------------------
// CRC-32C

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix / "123456789").
  const char digits[] = "123456789";
  const auto* bytes = reinterpret_cast<const std::byte*>(digits);
  EXPECT_EQ(crc32c::ChecksumScalar({bytes, 9}), 0xE3069283u);
  EXPECT_EQ(crc32c::Checksum({bytes, 9}), 0xE3069283u);
  EXPECT_EQ(crc32c::Checksum({bytes, size_t{0}}), 0u);
}

TEST(Crc32cTest, ActiveLevelMatchesScalarOnAllLengths) {
  // Cover every tail length the SSE4.2 path distinguishes (8-byte chunks
  // plus 0..7 tail bytes), with non-trivial content.
  std::vector<std::byte> data(129);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
  }
  for (size_t len = 0; len <= data.size(); ++len) {
    const std::span<const std::byte> s{data.data(), len};
    ASSERT_EQ(crc32c::Checksum(s), crc32c::ChecksumScalar(s)) << len;
  }
}

TEST(Crc32cTest, SensitiveToEverySingleBit) {
  std::vector<std::byte> data(64, std::byte{0});
  const uint32_t base = crc32c::Checksum({data.data(), data.size()});
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    ASSERT_NE(crc32c::Checksum({data.data(), data.size()}), base) << bit;
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// Checksum sidecar round-trips over adversarial pages

class ChecksumSidecarTest : public ::testing::Test {
 protected:
  // Fetch the page through a verifying buffer: a checksum/sidecar mismatch
  // would fail the fetch (kDataLoss after retries).
  void ExpectVerifiedFetch(DiskManager& disk, PageId id) {
    BufferManager buffer(&disk, 2, Lru());
    const StatusOr<PageHandle> fetched = buffer.Fetch(id, AccessContext{1});
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    EXPECT_EQ(disk.PageChecksum(id),
              crc32c::Checksum(disk.PeekPage(id)));
  }
};

TEST_F(ChecksumSidecarTest, EmptyPage) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();  // all-zero page, stamped at allocation
  ExpectVerifiedFetch(disk, id);
}

TEST_F(ChecksumSidecarTest, FullFanoutNode) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  std::vector<std::byte> image(disk.page_size(), std::byte{0});
  rtree::NodeView node({image.data(), image.size()});
  node.Init(/*level=*/0);
  const uint32_t cap = rtree::NodeView::Capacity(disk.page_size());
  for (uint32_t i = 0; i < cap; ++i) {
    rtree::Entry e;
    e.rect = geom::Rect(i, i, i + 1.0, i + 1.0);
    e.id = i;
    node.Append(e);
  }
  ASSERT_TRUE(disk.Write(id, image).ok());
  ExpectVerifiedFetch(disk, id);
}

TEST_F(ChecksumSidecarTest, NonFiniteCoordinates) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  std::vector<std::byte> image(disk.page_size(), std::byte{0});
  rtree::NodeView node({image.data(), image.size()});
  node.Init(/*level=*/0);
  const double inf = std::numeric_limits<double>::infinity();
  rtree::Entry e;
  e.rect = geom::Rect(-inf, -inf, inf, inf);
  e.id = 1;
  node.Append(e);
  ASSERT_TRUE(disk.Write(id, image).ok());
  ExpectVerifiedFetch(disk, id);
}

TEST_F(ChecksumSidecarTest, WriteRestampsAndViewForwards) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  const uint32_t zero_crc = *disk.PageChecksum(id);
  std::vector<std::byte> image(disk.page_size(), std::byte{0});
  image[100] = std::byte{0x5A};
  ASSERT_TRUE(disk.Write(id, image).ok());
  EXPECT_NE(*disk.PageChecksum(id), zero_crc);
  const ReadOnlyDiskView view(disk);
  EXPECT_EQ(view.PageChecksum(id), disk.PageChecksum(id));
}

// ---------------------------------------------------------------------------
// FaultProfile parsing

TEST(FaultProfileTest, ParsesFullSpec) {
  const auto profile = FaultProfile::Parse(
      "seed=7,transient=0.01,torn=0.002,bitflip=0.001,latency=0.05,"
      "latency_us=200,bad=18-20,target=0-4096,sched=12:transient,"
      "sched=40:bitflip");
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->seed, 7u);
  EXPECT_DOUBLE_EQ(profile->transient_prob, 0.01);
  EXPECT_DOUBLE_EQ(profile->torn_read_prob, 0.002);
  EXPECT_DOUBLE_EQ(profile->bit_flip_prob, 0.001);
  EXPECT_DOUBLE_EQ(profile->latency_spike_prob, 0.05);
  EXPECT_EQ(profile->latency_spike_us, 200u);
  EXPECT_EQ(profile->bad_begin, 18u);
  EXPECT_EQ(profile->bad_end, 20u);
  EXPECT_EQ(profile->target_begin, 0u);
  EXPECT_EQ(profile->target_end, 4096u);
  ASSERT_EQ(profile->schedule.size(), 2u);
  EXPECT_EQ(profile->schedule[0].read_index, 12u);
  EXPECT_EQ(profile->schedule[0].kind, FaultKind::kTransient);
  EXPECT_EQ(profile->schedule[1].kind, FaultKind::kBitFlip);
  EXPECT_TRUE(profile->enabled());
}

TEST(FaultProfileTest, EmptySpecIsDisabled) {
  const auto profile = FaultProfile::Parse("");
  ASSERT_TRUE(profile.has_value());
  EXPECT_FALSE(profile->enabled());
}

TEST(FaultProfileTest, MalformedSpecsRejected) {
  EXPECT_FALSE(FaultProfile::Parse("transient=x").has_value());
  EXPECT_FALSE(FaultProfile::Parse("bad=9").has_value());
  EXPECT_FALSE(FaultProfile::Parse("sched=5:frob").has_value());
  EXPECT_FALSE(FaultProfile::Parse("nonsense=1").has_value());
}

// ---------------------------------------------------------------------------
// Deterministic replay

class FaultReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 16; ++i) {
      pages_.push_back(test::StagePage(disk_, PageType::kData, 0,
                                       geom::Rect(0, 0, i + 1.0, 1.0)));
    }
  }

  // Reads every page `rounds` times and records each call's outcome:
  // status code, and the checksum of whatever landed in the output buffer
  // (so silent corruptions are part of the signature too).
  std::vector<std::pair<StatusCode, uint32_t>> Replay(
      const FaultProfile& profile, int rounds) {
    FaultInjectingDevice device(disk_, profile);
    std::vector<std::byte> out(disk_.page_size());
    std::vector<std::pair<StatusCode, uint32_t>> outcomes;
    for (int r = 0; r < rounds; ++r) {
      for (const PageId page : pages_) {
        const core::Status status = device.Read(page, out);
        outcomes.emplace_back(status.code(),
                              crc32c::Checksum({out.data(), out.size()}));
      }
    }
    return outcomes;
  }

  DiskManager disk_;
  std::vector<PageId> pages_;
};

TEST_F(FaultReplayTest, SameSeedSameSchedule) {
  FaultProfile profile;
  profile.seed = 42;
  profile.transient_prob = 0.2;
  profile.torn_read_prob = 0.1;
  profile.bit_flip_prob = 0.1;
  const auto first = Replay(profile, 8);
  const auto second = Replay(profile, 8);
  EXPECT_EQ(first, second) << "fixed seed must replay bit-identically";
  bool any_fault = false;
  for (const auto& [code, crc] : first) {
    if (code != StatusCode::kOk) any_fault = true;
  }
  EXPECT_TRUE(any_fault) << "profile was supposed to inject something";
}

TEST_F(FaultReplayTest, DifferentSeedsDiverge) {
  FaultProfile profile;
  profile.transient_prob = 0.2;
  profile.seed = 1;
  const auto first = Replay(profile, 8);
  profile.seed = 2;
  const auto second = Replay(profile, 8);
  EXPECT_NE(first, second);
}

TEST_F(FaultReplayTest, ScriptedScheduleOverridesDraws) {
  FaultProfile profile;  // no probabilistic faults at all
  profile.schedule.push_back({3, FaultKind::kTransient});
  profile.schedule.push_back({5, FaultKind::kBitFlip});
  const auto outcomes = Replay(profile, 1);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(outcomes[i].first, StatusCode::kUnavailable) << i;
    } else {
      EXPECT_EQ(outcomes[i].first, StatusCode::kOk) << i;
    }
    if (i == 5) {
      EXPECT_NE(outcomes[i].second,
                crc32c::Checksum(disk_.PeekPage(pages_[5]))) << i;
    }
  }
}

TEST_F(FaultReplayTest, LatencySpikesAreNotDataFaults) {
  FaultProfile profile;
  profile.latency_spike_prob = 1.0;
  profile.latency_spike_us = 0;  // accounting only — keeps the test instant
  FaultInjectingDevice device(disk_, profile);
  std::vector<std::byte> out(disk_.page_size());
  for (const PageId page : pages_) {
    ASSERT_TRUE(device.Read(page, out).ok());
  }
  EXPECT_EQ(device.fault_stats().latency_spikes, pages_.size());
  EXPECT_EQ(device.fault_stats().injected(), 0u);
  EXPECT_EQ(device.stats().reads, pages_.size())
      << "delayed-but-correct reads are clean reads";
}

// ---------------------------------------------------------------------------
// Buffer recovery: retries, checksum verification, quarantine, ledger

class BufferRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 12; ++i) {
      pages_.push_back(test::StagePage(disk_, PageType::kData, 0,
                                       geom::Rect(0, 0, i + 1.0, 1.0)));
    }
  }

  DiskManager disk_;
  std::vector<PageId> pages_;
};

TEST_F(BufferRecoveryTest, TransientFaultsRecoverAndLedgerBalances) {
  FaultProfile profile;
  profile.seed = 9;
  profile.transient_prob = 0.15;
  FaultInjectingDevice device(disk_, profile);
  ResilienceOptions resilience;
  resilience.max_read_retries = 8;  // 0.15^9 — retry exhaustion impossible
  BufferManager buffer(&device, 4, Lru(), nullptr, resilience);
  uint64_t query = 0;
  for (int round = 0; round < 10; ++round) {
    for (const PageId page : pages_) {
      const StatusOr<PageHandle> fetched =
          buffer.Fetch(page, AccessContext{++query});
      ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    }
  }
  const core::BufferStats& stats = buffer.stats();
  EXPECT_GT(device.fault_stats().injected(), 0u);
  // Every injected data fault is exactly one failed buffer read attempt:
  // either it was retried, or it ended the fetch as a permanent failure.
  EXPECT_EQ(device.fault_stats().injected(),
            stats.io_read_retries + stats.io_permanent_failures);
  EXPECT_EQ(stats.io_permanent_failures, 0u)
      << "transient faults must always recover within the retry budget";
  EXPECT_GT(stats.io_recovered_reads, 0u);
  EXPECT_EQ(buffer.quarantined_count(), 0u);
}

TEST_F(BufferRecoveryTest, RecoveredRunMatchesFaultFreeRunBitForBit) {
  const auto run = [&](PageDevice& device) {
    BufferManager buffer(&device, 4, Lru());
    uint64_t query = 0;
    for (int round = 0; round < 6; ++round) {
      for (const PageId page : pages_) {
        PageHandle handle = buffer.FetchOrDie(page, AccessContext{++query});
        handle.Release();
      }
    }
    return std::make_tuple(device.stats().reads,
                           device.stats().sequential_reads,
                           buffer.stats().hits, buffer.stats().misses);
  };

  ReadOnlyDiskView plain(disk_);
  const auto baseline = run(plain);

  FaultProfile profile;
  profile.seed = 11;
  profile.transient_prob = 0.2;
  profile.bit_flip_prob = 0.05;
  profile.torn_read_prob = 0.05;
  ReadOnlyDiskView faulted_view(disk_);
  FaultInjectingDevice device(faulted_view, profile);
  const auto with_faults = run(device);

  EXPECT_GT(device.fault_stats().injected(), 0u);
  EXPECT_EQ(baseline, with_faults)
      << "clean-read accounting must hide recovered retry traffic";
}

TEST_F(BufferRecoveryTest, CorruptionIsDetectedAndReread) {
  FaultProfile profile;
  profile.schedule.push_back({0, FaultKind::kBitFlip});
  profile.schedule.push_back({2, FaultKind::kTornRead});
  FaultInjectingDevice device(disk_, profile);
  BufferManager buffer(&device, 4, Lru());
  PageHandle a = buffer.FetchOrDie(pages_[0], AccessContext{1});
  PageHandle b = buffer.FetchOrDie(pages_[1], AccessContext{2});
  EXPECT_EQ(buffer.stats().io_checksum_mismatches, 2u);
  EXPECT_EQ(buffer.stats().io_recovered_reads, 2u);
  // The delivered images are the true pages, not the corrupted transfers.
  EXPECT_EQ(crc32c::Checksum(a.bytes()), *disk_.PageChecksum(pages_[0]));
  EXPECT_EQ(crc32c::Checksum(b.bytes()), *disk_.PageChecksum(pages_[1]));
}

TEST_F(BufferRecoveryTest, CorruptionUndetectedWithoutVerification) {
  FaultProfile profile;
  profile.schedule.push_back({0, FaultKind::kBitFlip});
  FaultInjectingDevice device(disk_, profile);
  ResilienceOptions resilience;
  resilience.verify_checksums = false;
  BufferManager buffer(&device, 4, Lru(), nullptr, resilience);
  PageHandle handle = buffer.FetchOrDie(pages_[0], AccessContext{1});
  EXPECT_EQ(buffer.stats().io_checksum_mismatches, 0u);
  EXPECT_NE(crc32c::Checksum(handle.bytes()), *disk_.PageChecksum(pages_[0]))
      << "without verification the corrupt image reaches the caller";
}

TEST_F(BufferRecoveryTest, BadSectorQuarantinesFrameAndFailsFast) {
  FaultProfile profile;
  profile.bad_begin = pages_[3];
  profile.bad_end = pages_[3] + 1;
  FaultInjectingDevice device(disk_, profile);
  BufferManager buffer(&device, 4, Lru());

  const StatusOr<PageHandle> fetched =
      buffer.Fetch(pages_[3], AccessContext{1});
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kPermanentFailure);
  EXPECT_EQ(buffer.quarantined_count(), 1u);
  EXPECT_EQ(buffer.stats().io_quarantined_frames, 1u);
  EXPECT_TRUE(buffer.IsBadPage(pages_[3]));
  EXPECT_EQ(device.fault_stats().injected(),
            buffer.stats().io_read_retries +
                buffer.stats().io_permanent_failures);

  // Fail-fast: the second fetch does not touch the device at all.
  const uint64_t attempts = device.reads_attempted();
  const StatusOr<PageHandle> again =
      buffer.Fetch(pages_[3], AccessContext{2});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kPermanentFailure);
  EXPECT_EQ(device.reads_attempted(), attempts);

  // The rest of the pool keeps serving.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(buffer.Fetch(pages_[i], AccessContext{3}).ok());
  }
}

TEST_F(BufferRecoveryTest, QuarantineCapRecyclesFramesBeyondCap) {
  FaultProfile profile;
  profile.bad_begin = pages_[0];
  profile.bad_end = pages_[8];  // more bad pages than the quarantine cap
  FaultInjectingDevice device(disk_, profile);
  BufferManager buffer(&device, 4, Lru());  // cap = frames/2 = 2
  uint64_t query = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_FALSE(buffer.Fetch(pages_[i], AccessContext{++query}).ok());
  }
  EXPECT_EQ(buffer.quarantined_count(), 2u)
      << "quarantine stops at the cap; later failures recycle the frame";
  EXPECT_EQ(buffer.bad_page_count(), 8u);
  // Healthy pages still fit in the remaining frames.
  for (int i = 8; i < 12; ++i) {
    ASSERT_TRUE(buffer.Fetch(pages_[i], AccessContext{++query}).ok());
  }
}

TEST_F(BufferRecoveryTest, RetryBudgetExhaustionIsTerminal) {
  // A page that fails on every single read: scripted transient faults on
  // each of the 1 + max_read_retries attempts of the first fetch.
  FaultProfile profile;
  for (uint64_t i = 0; i < 4; ++i) {
    profile.schedule.push_back({i, FaultKind::kTransient});
  }
  FaultInjectingDevice device(disk_, profile);
  ResilienceOptions resilience;
  resilience.max_read_retries = 3;
  BufferManager buffer(&device, 4, Lru(), nullptr, resilience);
  const StatusOr<PageHandle> fetched =
      buffer.Fetch(pages_[0], AccessContext{1});
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(buffer.stats().io_read_retries, 3u);
  EXPECT_EQ(buffer.stats().io_permanent_failures, 1u);
  EXPECT_EQ(device.reads_attempted(), 4u);
  EXPECT_EQ(device.fault_stats().injected(),
            buffer.stats().io_read_retries +
                buffer.stats().io_permanent_failures);
}

// ---------------------------------------------------------------------------
// Concurrent quarantine through the sharded service

TEST(ServiceFaultTest, ConcurrentFetchesDegradeInsteadOfAborting) {
  DiskManager disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 64; ++i) {
    pages.push_back(test::StagePage(disk, PageType::kData, 0,
                                    geom::Rect(0, 0, i + 1.0, 1.0)));
  }
  svc::BufferServiceConfig config;
  config.total_frames = 32;
  config.shard_count = 4;
  config.policy_spec = "LRU";
  config.fault_profile.seed = 21;
  config.fault_profile.transient_prob = 0.02;
  config.fault_profile.bad_begin = pages[5];
  config.fault_profile.bad_end = pages[5] + 2;
  svc::BufferService service(disk, config);

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> succeeded{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        uint64_t query = static_cast<uint64_t>(t) << 32;
        for (int r = 0; r < kRounds; ++r) {
          for (const PageId page : pages) {
            StatusOr<PageHandle> fetched =
                service.Fetch(page, AccessContext{++query});
            if (fetched.ok()) {
              succeeded.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
  }

  const svc::ShardStats total = service.AggregateStats();
  EXPECT_EQ(succeeded.load() + failed.load(),
            uint64_t{kThreads} * kRounds * pages.size());
  // The two bad pages failed for every thread on every round (fail-fast
  // after the first terminal failure), everything else kept serving.
  EXPECT_GE(failed.load(), uint64_t{kThreads} * kRounds * 2);
  EXPECT_EQ(total.bad_pages, 2u);
  EXPECT_GE(total.quarantined_frames, 1u);
  EXPECT_EQ(total.usable_frames,
            config.total_frames - total.quarantined_frames);
  // Ledger over all shards: injected == retried + terminal.
  const FaultStats faults = service.AggregateFaultStats();
  EXPECT_EQ(faults.injected(),
            total.buffer.io_read_retries + total.buffer.io_permanent_failures);
}

// ---------------------------------------------------------------------------
// Write-path fault injection: profile grammar, determinism, fsyncgate

TEST(FaultProfileTest, ParsesWriteSpec) {
  const auto profile = FaultProfile::Parse(
      "seed=11,wtransient=0.01,sync_fail=0.02,disk_full=0.003,full_after=100,"
      "wbad=3-5,wsched=7:torn_write,wsched=9:transient,wsched=11:permanent,"
      "wsched=13,ssched=2");
  ASSERT_TRUE(profile.has_value());
  EXPECT_DOUBLE_EQ(profile->write_transient_prob, 0.01);
  EXPECT_DOUBLE_EQ(profile->sync_failure_prob, 0.02);
  EXPECT_DOUBLE_EQ(profile->disk_full_prob, 0.003);
  EXPECT_EQ(profile->disk_full_after, 100u);
  EXPECT_EQ(profile->write_bad_begin, 3u);
  EXPECT_EQ(profile->write_bad_end, 5u);
  ASSERT_EQ(profile->write_schedule.size(), 4u);
  EXPECT_EQ(profile->write_schedule[0].write_index, 7u);
  EXPECT_EQ(profile->write_schedule[0].kind, FaultKind::kTornWrite);
  EXPECT_EQ(profile->write_schedule[1].kind, FaultKind::kWriteTransient);
  EXPECT_EQ(profile->write_schedule[2].kind, FaultKind::kWriteBadSector);
  EXPECT_EQ(profile->write_schedule[3].kind, FaultKind::kTornWrite)
      << "a bare wsched index defaults to the legacy torn write";
  ASSERT_EQ(profile->sync_schedule.size(), 1u);
  EXPECT_EQ(profile->sync_schedule[0], 2u);
  EXPECT_TRUE(profile->enabled());
  EXPECT_TRUE(profile->sync_faults_enabled());
  EXPECT_FALSE(FaultProfile::Parse("wsched=5:frob").has_value());
  EXPECT_FALSE(FaultProfile::Parse("wbad=9").has_value());
}

class WriteFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      pages_.push_back(test::StagePage(disk_, PageType::kData, 0,
                                       geom::Rect(0, 0, i + 1.0, 1.0)));
    }
    image_.assign(disk_.page_size(), std::byte{0x7C});
  }

  DiskManager disk_;
  std::vector<PageId> pages_;
  std::vector<std::byte> image_;
};

TEST_F(WriteFaultTest, SameSeedReplaysWriteOutcomes) {
  FaultProfile profile;
  profile.seed = 33;
  profile.write_transient_prob = 0.25;
  const auto run = [&] {
    FaultInjectingDevice device(disk_, profile);
    std::vector<StatusCode> outcomes;
    for (int round = 0; round < 8; ++round) {
      for (const PageId page : pages_) {
        outcomes.push_back(device.Write(page, image_).code());
      }
    }
    return outcomes;
  };
  const auto first = run();
  EXPECT_EQ(first, run()) << "fixed seed must replay bit-identically";
  EXPECT_TRUE(std::find(first.begin(), first.end(),
                        StatusCode::kUnavailable) != first.end());
}

TEST_F(WriteFaultTest, ScriptedWriteScheduleAndBadRange) {
  FaultProfile profile;  // no probabilistic faults
  profile.write_schedule.push_back({2, FaultKind::kWriteTransient});
  profile.write_bad_begin = pages_[5];
  profile.write_bad_end = pages_[5] + 1;
  FaultInjectingDevice device(disk_, profile);
  for (size_t i = 0; i < pages_.size(); ++i) {
    const core::Status status = device.Write(pages_[i], image_);
    if (i == 2) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable) << i;
      EXPECT_TRUE(status.retryable());
    } else if (pages_[i] == pages_[5]) {
      EXPECT_EQ(status.code(), StatusCode::kPermanentFailure) << i;
      EXPECT_FALSE(status.retryable());
    } else {
      EXPECT_TRUE(status.ok()) << i;
    }
  }
  EXPECT_EQ(device.fault_stats().write_transient_errors, 1u);
  EXPECT_EQ(device.fault_stats().write_permanent_errors, 1u);
  // A failed write must not reach the device: clean stats count clean I/O.
  EXPECT_EQ(device.stats().writes, pages_.size() - 2);
}

TEST_F(WriteFaultTest, TransientWriteLeavesDeviceUntouched) {
  FaultProfile profile;
  profile.write_schedule.push_back({0, FaultKind::kWriteTransient});
  FaultInjectingDevice device(disk_, profile);
  const uint32_t before = crc32c::Checksum(disk_.PeekPage(pages_[0]));
  EXPECT_EQ(device.Write(pages_[0], image_).code(), StatusCode::kUnavailable);
  EXPECT_EQ(crc32c::Checksum(disk_.PeekPage(pages_[0])), before)
      << "a rejected write must not have partially landed";
}

TEST_F(WriteFaultTest, DiskFullByCapacityAndByDraw) {
  FaultProfile capacity;
  capacity.disk_full_after = disk_.page_count() + 2;
  {
    FaultInjectingDevice device(disk_, capacity);
    EXPECT_TRUE(device.Allocate().ok());
    EXPECT_TRUE(device.Allocate().ok());
    const StatusOr<PageId> full = device.Allocate();
    EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(full.status().retryable())
        << "disk full is backpressure, not a retry candidate";
    EXPECT_EQ(device.fault_stats().disk_full_errors, 1u);
  }
  FaultProfile draws;
  draws.seed = 5;
  draws.disk_full_prob = 0.5;
  FaultInjectingDevice device(disk_, draws);
  uint64_t failed = 0;
  for (int i = 0; i < 32; ++i) {
    if (!device.Allocate().ok()) ++failed;
  }
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, 32u);
  EXPECT_EQ(device.fault_stats().disk_full_errors, failed);
}

TEST_F(WriteFaultTest, DiskManagerCapacityReturnsResourceExhausted) {
  DiskManager disk;
  disk.set_page_capacity(2);
  EXPECT_TRUE(disk.Allocate().ok());
  EXPECT_TRUE(disk.Allocate().ok());
  const StatusOr<PageId> full = disk.Allocate();
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(disk.page_count(), 2u);
}

TEST_F(WriteFaultTest, FailedSyncRevertsWritesSinceLastSync) {
  FaultProfile profile;
  profile.sync_schedule.push_back(0);  // first Sync fails, second succeeds
  FaultInjectingDevice device(disk_, profile);
  const uint32_t before_a = crc32c::Checksum(disk_.PeekPage(pages_[0]));
  const uint32_t before_b = crc32c::Checksum(disk_.PeekPage(pages_[1]));
  ASSERT_TRUE(device.Write(pages_[0], image_).ok());
  ASSERT_TRUE(device.Write(pages_[1], image_).ok());
  // The acknowledged writes are in the page cache; the lying fsync drops
  // them, exactly like a kernel discarding dirty pages on fsync failure.
  const core::Status synced = device.Sync();
  EXPECT_EQ(synced.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(synced.retryable());
  EXPECT_EQ(crc32c::Checksum(disk_.PeekPage(pages_[0])), before_a);
  EXPECT_EQ(crc32c::Checksum(disk_.PeekPage(pages_[1])), before_b);
  EXPECT_EQ(device.fault_stats().sync_failures, 1u);
  // Rewriting and syncing again (the fsyncgate-correct recovery protocol)
  // makes the bytes stick.
  ASSERT_TRUE(device.Write(pages_[0], image_).ok());
  ASSERT_TRUE(device.Write(pages_[1], image_).ok());
  ASSERT_TRUE(device.Sync().ok());
  EXPECT_EQ(crc32c::Checksum(disk_.PeekPage(pages_[0])),
            crc32c::Checksum({image_.data(), image_.size()}));
}

TEST_F(WriteFaultTest, SuccessfulSyncKeepsBytesAndClearsStash) {
  FaultProfile profile;
  profile.sync_schedule.push_back(1);  // second Sync fails
  FaultInjectingDevice device(disk_, profile);
  ASSERT_TRUE(device.Write(pages_[0], image_).ok());
  ASSERT_TRUE(device.Sync().ok());
  // The page was durable before the failing sync: nothing to revert.
  EXPECT_EQ(device.Sync().code(), StatusCode::kUnavailable);
  EXPECT_EQ(crc32c::Checksum(disk_.PeekPage(pages_[0])),
            crc32c::Checksum({image_.data(), image_.size()}))
      << "a failed sync must only drop writes since the last good sync";
}

TEST_F(WriteFaultTest, WriteFaultRunKeepsReadStatsClean) {
  // A run that recovers every write fault upstream must report the same
  // *clean* stats as a fault-free run — the paper's disk-access metric is
  // not perturbed by retry traffic.
  FaultProfile profile;
  profile.seed = 77;
  profile.write_transient_prob = 0.3;
  FaultInjectingDevice device(disk_, profile);
  std::vector<std::byte> out(disk_.page_size());
  uint64_t clean_writes = 0;
  for (const PageId page : pages_) {
    ASSERT_TRUE(device.Read(page, out).ok());
    while (!device.Write(page, image_).ok()) {
    }
    ++clean_writes;
  }
  EXPECT_EQ(device.stats().reads, pages_.size());
  EXPECT_EQ(device.stats().writes, clean_writes);
  EXPECT_GT(device.fault_stats().write_transient_errors, 0u);
  EXPECT_GT(device.writes_attempted(), clean_writes);
}

}  // namespace
}  // namespace sdb::storage
