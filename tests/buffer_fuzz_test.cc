#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;

/// Shadow-model fuzz: drive the buffer manager with a random interleaving
/// of fetches, long-lived pins, releases, page modifications, and flushes,
/// and check after every step against a trivially correct model:
///  * residency never exceeds capacity;
///  * pinned pages stay resident;
///  * page contents read back exactly what the model last wrote, no matter
///    how often the page was evicted and reloaded in between;
///  * hit/miss/eviction accounting stays consistent.
/// Parameterized over policies so every eviction strategy faces the same
/// adversarial schedule.
class BufferFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(BufferFuzzTest, RandomOpsAgainstShadowModel) {
  const auto& [policy_spec, seed] = GetParam();
  constexpr size_t kFrames = 8;
  constexpr size_t kPages = 40;
  constexpr int kSteps = 5000;

  DiskManager disk;
  std::vector<PageId> pages;
  for (size_t i = 0; i < kPages; ++i) {
    pages.push_back(test::StagePage(disk, storage::PageType::kData, 0,
                                    geom::Rect(0, 0, 0.01 * (i + 1), 0.01)));
  }
  BufferManager buffer(&disk, kFrames, CreatePolicy(policy_spec));

  // Shadow state: the authoritative byte each page must carry at offset
  // 100, and the set of long-lived pins.
  std::map<PageId, uint8_t> shadow_value;
  std::map<PageId, PageHandle> held_pins;
  Rng rng(seed);
  uint64_t query = 0;

  for (int step = 0; step < kSteps; ++step) {
    const double dice = rng.NextDouble();
    const PageId page = pages[rng.NextBelow(kPages)];
    const AccessContext ctx{++query};

    if (dice < 0.55) {
      // Plain access, with verification of the page contents.
      PageHandle handle = buffer.FetchOrDie(page, ctx);
      const auto it = shadow_value.find(page);
      const uint8_t expected = it == shadow_value.end() ? 0 : it->second;
      ASSERT_EQ(handle.bytes()[100], static_cast<std::byte>(expected))
          << policy_spec << " lost a write to page " << page;
    } else if (dice < 0.75) {
      // Modify the page in place.
      PageHandle handle = buffer.FetchOrDie(page, ctx);
      const uint8_t value = static_cast<uint8_t>(rng.NextBelow(250) + 1);
      handle.bytes()[100] = static_cast<std::byte>(value);
      handle.MarkDirty();
      shadow_value[page] = value;
    } else if (dice < 0.85) {
      // Take a long-lived pin (bounded so frames remain available).
      if (held_pins.size() < kFrames - 2 && !held_pins.contains(page)) {
        held_pins.emplace(page, buffer.FetchOrDie(page, ctx));
      }
    } else if (dice < 0.95) {
      // Drop a random long-lived pin.
      if (!held_pins.empty()) {
        auto it = held_pins.begin();
        std::advance(it, rng.NextBelow(held_pins.size()));
        held_pins.erase(it);
      }
    } else {
      buffer.FlushAll();
    }

    // Invariants after every step.
    ASSERT_LE(buffer.resident_count(), kFrames);
    for (const auto& [pinned_page, handle] : held_pins) {
      ASSERT_TRUE(buffer.Contains(pinned_page))
          << policy_spec << " evicted pinned page " << pinned_page;
    }
    ASSERT_EQ(buffer.stats().hits + buffer.stats().misses,
              buffer.stats().requests);
  }

  // Final consistency: flush and verify every page's disk image.
  held_pins.clear();
  buffer.FlushAll();
  for (const auto& [page, value] : shadow_value) {
    const std::span<const std::byte> image = disk.PeekPage(page);
    EXPECT_EQ(image[100], static_cast<std::byte>(value)) << "page " << page;
  }
}

/// Fault-mode fuzz: the same kind of adversarial schedule, but the buffer
/// reads through a FaultInjectingDevice with ~1% transient faults plus rare
/// corruptions. Every fault must be recovered within the bounded retry
/// budget (probabilistic faults redraw per attempt, so no page can fail
/// terminally), the shadow model must stay exact, and the recovery ledger
/// must balance — no crash, no unbounded retries.
class BufferFaultFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(BufferFaultFuzzTest, RandomOpsUnderTransientFaults) {
  const auto& [policy_spec, seed] = GetParam();
  constexpr size_t kFrames = 8;
  constexpr size_t kPages = 40;
  constexpr int kSteps = 3000;

  DiskManager disk;
  std::vector<PageId> pages;
  for (size_t i = 0; i < kPages; ++i) {
    pages.push_back(test::StagePage(disk, storage::PageType::kData, 0,
                                    geom::Rect(0, 0, 0.01 * (i + 1), 0.01)));
  }
  storage::FaultProfile profile;
  profile.seed = seed * 1000003 + 17;
  profile.transient_prob = 0.01;
  profile.bit_flip_prob = 0.002;
  profile.torn_read_prob = 0.002;
  storage::FaultInjectingDevice device(disk, profile);
  BufferManager buffer(&device, kFrames, CreatePolicy(policy_spec));

  std::map<PageId, uint8_t> shadow_value;
  std::map<PageId, PageHandle> held_pins;
  Rng rng(seed);
  uint64_t query = 0;

  for (int step = 0; step < kSteps; ++step) {
    const double dice = rng.NextDouble();
    const PageId page = pages[rng.NextBelow(kPages)];
    const AccessContext ctx{++query};

    if (dice < 0.6) {
      PageHandle handle = buffer.FetchOrDie(page, ctx);
      const auto it = shadow_value.find(page);
      const uint8_t expected = it == shadow_value.end() ? 0 : it->second;
      ASSERT_EQ(handle.bytes()[100], static_cast<std::byte>(expected))
          << policy_spec << " delivered stale/corrupt bytes for page "
          << page;
    } else if (dice < 0.8) {
      PageHandle handle = buffer.FetchOrDie(page, ctx);
      const uint8_t value = static_cast<uint8_t>(rng.NextBelow(250) + 1);
      handle.bytes()[100] = static_cast<std::byte>(value);
      handle.MarkDirty();
      shadow_value[page] = value;
    } else if (dice < 0.9) {
      if (held_pins.size() < kFrames - 2 && !held_pins.contains(page)) {
        held_pins.emplace(page, buffer.FetchOrDie(page, ctx));
      }
    } else {
      if (!held_pins.empty()) {
        auto it = held_pins.begin();
        std::advance(it, rng.NextBelow(held_pins.size()));
        held_pins.erase(it);
      }
    }

    ASSERT_LE(buffer.resident_count(), kFrames);
    ASSERT_EQ(buffer.stats().hits + buffer.stats().misses,
              buffer.stats().requests);
  }

  // No terminal failures, no quarantine, and the ledger balances: every
  // injected fault is exactly one retried read attempt.
  EXPECT_GT(device.fault_stats().injected(), 0u)
      << "the profile was supposed to inject faults";
  EXPECT_EQ(buffer.stats().io_permanent_failures, 0u);
  EXPECT_EQ(buffer.quarantined_count(), 0u);
  EXPECT_EQ(device.fault_stats().injected(), buffer.stats().io_read_retries);
  EXPECT_LE(buffer.stats().io_recovered_reads,
            buffer.stats().io_read_retries);
  // Bounded retries: attempts never exceed misses * (1 + retry budget).
  EXPECT_LE(device.reads_attempted(),
            buffer.stats().misses * (1 + buffer.resilience().max_read_retries));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BufferFaultFuzzTest,
    ::testing::Values(std::tuple<std::string, uint64_t>{"LRU", 1},
                      std::tuple<std::string, uint64_t>{"ASB", 1},
                      std::tuple<std::string, uint64_t>{"ARC", 2},
                      std::tuple<std::string, uint64_t>{"LRU-2", 3}),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>&
           info) {
      std::string name = std::get<0>(info.param) + "_s" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

std::vector<std::tuple<std::string, uint64_t>> FuzzParams() {
  std::vector<std::tuple<std::string, uint64_t>> params;
  for (const std::string& spec : KnownPolicySpecs()) {
    params.emplace_back(spec, 1);
  }
  // Extra seeds for a few representative policies.
  for (const uint64_t seed : {2, 3, 4}) {
    params.emplace_back("LRU", seed);
    params.emplace_back("ASB", seed);
    params.emplace_back("LRU-2", seed);
    params.emplace_back("ARC", seed);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BufferFuzzTest, ::testing::ValuesIn(FuzzParams()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>&
           info) {
      std::string name = std::get<0>(info.param) + "_s" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sdb::core
