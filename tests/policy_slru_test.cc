#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_slru.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StageAreaPage;
using test::Touch;

TEST(SelectSpatialLruVictimTest, EmptyInputYieldsInvalid) {
  std::vector<SpatialLruCandidate> none;
  EXPECT_EQ(SelectSpatialLruVictim(none, 3), kInvalidFrameId);
}

TEST(SelectSpatialLruVictimTest, CandidateSetOfOneIsPlainLru) {
  std::vector<SpatialLruCandidate> all = {
      {0, /*last_access=*/10, /*crit=*/0.1},
      {1, /*last_access=*/5, /*crit=*/99.0},  // LRU but spatially best
      {2, /*last_access=*/7, /*crit=*/0.2},
  };
  EXPECT_EQ(SelectSpatialLruVictim(all, 1), 1u);
}

TEST(SelectSpatialLruVictimTest, FullCandidateSetIsPureSpatial) {
  std::vector<SpatialLruCandidate> all = {
      {0, 10, 0.5},
      {1, 5, 99.0},
      {2, 7, 0.2},  // smallest criterion
  };
  EXPECT_EQ(SelectSpatialLruVictim(all, 3), 2u);
}

TEST(SelectSpatialLruVictimTest, SpatialAppliesOnlyWithinLruCandidates) {
  std::vector<SpatialLruCandidate> all = {
      {0, 1, 50.0},   // oldest
      {1, 2, 40.0},   // second oldest
      {2, 3, 0.001},  // spatially tiny but recently used
  };
  // Candidates = the 2 least recently used = frames 0 and 1; among them the
  // smaller criterion (frame 1) is the victim. Frame 2 is protected by LRU.
  EXPECT_EQ(SelectSpatialLruVictim(all, 2), 1u);
}

TEST(SelectSpatialLruVictimTest, TieOnCriterionFallsBackToLru) {
  std::vector<SpatialLruCandidate> all = {
      {0, 9, 1.0},
      {1, 4, 1.0},
      {2, 6, 1.0},
  };
  EXPECT_EQ(SelectSpatialLruVictim(all, 3), 1u);
}

TEST(SelectSpatialLruVictimTest, OversizedCandidateCountIsClamped) {
  std::vector<SpatialLruCandidate> all = {{0, 1, 2.0}, {1, 2, 1.0}};
  EXPECT_EQ(SelectSpatialLruVictim(all, 100), 1u);
}

class SlruPolicyTest : public ::testing::Test {
 protected:
  DiskManager disk_;
};

TEST_F(SlruPolicyTest, NameEncodesConfiguration) {
  EXPECT_EQ(SlruPolicy(SpatialCriterion::kArea, 0.25).name(),
            "SLRU(A,25%)");
  EXPECT_EQ(SlruPolicy(SpatialCriterion::kMargin, 0.5).name(),
            "SLRU(M,50%)");
}

TEST_F(SlruPolicyTest, CandidateSizeDerivedFromFraction) {
  auto policy_owner =
      std::make_unique<SlruPolicy>(SpatialCriterion::kArea, 0.25);
  SlruPolicy* policy = policy_owner.get();
  BufferManager buffer(&disk_, 8, std::move(policy_owner));
  EXPECT_EQ(policy->candidate_size(), 2u);
}

TEST_F(SlruPolicyTest, CandidateSizeAtLeastOne) {
  auto policy_owner =
      std::make_unique<SlruPolicy>(SpatialCriterion::kArea, 0.01);
  SlruPolicy* policy = policy_owner.get();
  BufferManager buffer(&disk_, 4, std::move(policy_owner));
  EXPECT_EQ(policy->candidate_size(), 1u);
}

TEST_F(SlruPolicyTest, RecentSmallPageSurvivesOutsideCandidateSet) {
  // 4 frames, candidate fraction 0.5 -> candidate set = 2 LRU pages.
  const PageId tiny_recent = StageAreaPage(disk_, 0.01);
  const PageId old_a = StageAreaPage(disk_, 1.0);
  const PageId old_b = StageAreaPage(disk_, 2.0);
  const PageId mid = StageAreaPage(disk_, 3.0);
  const PageId incoming = StageAreaPage(disk_, 4.0);
  BufferManager buffer(&disk_, 4, std::make_unique<SlruPolicy>(
                                      SpatialCriterion::kArea, 0.5));
  Touch(buffer, old_a, 1);
  Touch(buffer, old_b, 2);
  Touch(buffer, mid, 3);
  Touch(buffer, tiny_recent, 4);
  // Candidates: old_a (t1), old_b (t2). Victim: smaller area -> old_a.
  Touch(buffer, incoming, 5);
  EXPECT_FALSE(buffer.Contains(old_a));
  EXPECT_TRUE(buffer.Contains(tiny_recent))
      << "LRU pre-selection must protect recently used pages";
  EXPECT_TRUE(buffer.Contains(old_b));
  EXPECT_TRUE(buffer.Contains(mid));
}

TEST_F(SlruPolicyTest, FullFractionBehavesLikePureSpatial) {
  const PageId tiny_recent = StageAreaPage(disk_, 0.01);
  const PageId big_old = StageAreaPage(disk_, 5.0);
  const PageId incoming = StageAreaPage(disk_, 1.0);
  BufferManager buffer(&disk_, 2, std::make_unique<SlruPolicy>(
                                      SpatialCriterion::kArea, 1.0));
  Touch(buffer, big_old, 1);
  Touch(buffer, tiny_recent, 2);
  Touch(buffer, incoming, 3);  // full candidate set: tiny page is victim
  EXPECT_FALSE(buffer.Contains(tiny_recent));
  EXPECT_TRUE(buffer.Contains(big_old));
}

}  // namespace
}  // namespace sdb::core
