#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/trace_analysis.h"
#include "sim/scenario.h"
#include "sim/trace_analysis.h"

namespace sdb::sim {
namespace {

AccessTrace MakeTrace(std::vector<storage::PageId> pages) {
  AccessTrace trace;
  trace.name = "synthetic";
  uint64_t q = 0;
  for (const storage::PageId page : pages) {
    trace.accesses.push_back({page, ++q});
  }
  return trace;
}

TEST(TraceAnalysisTest, EmptyTrace) {
  const TraceProfile profile = AnalyzeTrace(MakeTrace({}));
  EXPECT_EQ(profile.total_accesses, 0u);
  EXPECT_EQ(profile.unique_pages, 0u);
  EXPECT_EQ(profile.LocalityAt(8), 0.0);
}

TEST(TraceAnalysisTest, FirstTouchesAreInfinite) {
  const TraceProfile profile = AnalyzeTrace(MakeTrace({1, 2, 3}));
  EXPECT_EQ(profile.unique_pages, 3u);
  for (const uint64_t d : profile.distances) {
    EXPECT_EQ(d, UINT64_MAX);
  }
  EXPECT_EQ(profile.LruMisses(100), 3u) << "cold misses remain misses";
}

TEST(TraceAnalysisTest, HandComputedDistances) {
  // Trace: A B C B A A
  const TraceProfile profile = AnalyzeTrace(MakeTrace({1, 2, 3, 2, 1, 1}));
  ASSERT_EQ(profile.distances.size(), 6u);
  EXPECT_EQ(profile.distances[0], UINT64_MAX);  // A cold
  EXPECT_EQ(profile.distances[1], UINT64_MAX);  // B cold
  EXPECT_EQ(profile.distances[2], UINT64_MAX);  // C cold
  EXPECT_EQ(profile.distances[3], 2u);          // B: {C} between, depth 2
  EXPECT_EQ(profile.distances[4], 3u);          // A: {B, C} between, depth 3
  EXPECT_EQ(profile.distances[5], 1u);          // A again: depth 1
}

TEST(TraceAnalysisTest, LruMissesMatchHandCount) {
  // Cyclic scan of 3 pages with a 2-frame LRU: everything misses.
  const TraceProfile cyclic =
      AnalyzeTrace(MakeTrace({1, 2, 3, 1, 2, 3, 1, 2, 3}));
  EXPECT_EQ(cyclic.LruMisses(2), 9u);
  EXPECT_EQ(cyclic.LruMisses(3), 3u) << "only the cold misses at C=3";
}

TEST(TraceAnalysisTest, HistogramBucketsArePowersOfTwo) {
  // Distances 1 and 2 and 4 land in buckets 0, 1, 2.
  const TraceProfile profile = AnalyzeTrace(
      MakeTrace({1, 1,                 // distance 1
                 2, 3, 2,              // distance 2
                 4, 5, 6, 7, 4}));     // distance 4
  ASSERT_GE(profile.distance_histogram.size(), 3u);
  EXPECT_EQ(profile.distance_histogram[0], 1u);
  EXPECT_EQ(profile.distance_histogram[1], 1u);
  EXPECT_EQ(profile.distance_histogram[2], 1u);
}

/// The core guarantee: the analytic LRU miss curve equals actual LRU
/// replay, for real traces recorded from the query workloads.
class MattsonConsistencyTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.kind = DatabaseKind::kUsLike;
    options.build = BuildMode::kBulkLoad;
    options.scale = 0.05;
    scenario_ = new Scenario(BuildScenario(options));
    workload::QuerySpec spec;
    spec.family = workload::QueryFamily::kSimilar;
    spec.ex = 100;
    spec.count = 150;
    spec.seed = 9;
    const workload::QuerySet queries =
        workload::MakeQuerySet(spec, scenario_->dataset, scenario_->places);
    trace_ = new AccessTrace(RecordQueryTrace(
        scenario_->disk.get(), scenario_->tree_meta, queries, 64));
    profile_ = new TraceProfile(AnalyzeTrace(*trace_));
  }
  static void TearDownTestSuite() {
    delete profile_;
    delete trace_;
    delete scenario_;
    scenario_ = nullptr;
    trace_ = nullptr;
    profile_ = nullptr;
  }

  static Scenario* scenario_;
  static AccessTrace* trace_;
  static TraceProfile* profile_;
};

Scenario* MattsonConsistencyTest::scenario_ = nullptr;
AccessTrace* MattsonConsistencyTest::trace_ = nullptr;
TraceProfile* MattsonConsistencyTest::profile_ = nullptr;

TEST_P(MattsonConsistencyTest, PredictedLruMissesEqualReplayedMisses) {
  const size_t frames = GetParam();
  const ReplayResult replayed =
      ReplayTrace(scenario_->disk.get(), *trace_, "LRU", frames);
  EXPECT_EQ(profile_->LruMisses(frames), replayed.disk_reads)
      << "Mattson stack distances must predict LRU exactly";
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, MattsonConsistencyTest,
                         ::testing::Values(4, 16, 48, 128, 512));

TEST(RecommendBufferSizeTest, ExactOnHandTraces) {
  // A B A B ... : distance 2 re-references; 2 cold misses.
  std::vector<storage::PageId> pattern;
  for (int i = 0; i < 10; ++i) {
    pattern.push_back(1);
    pattern.push_back(2);
  }
  const TraceProfile profile = AnalyzeTrace(MakeTrace(pattern));
  // 18 of 20 accesses can hit with 2 frames; none with 1.
  EXPECT_EQ(RecommendBufferSize(profile, 0.9), 2u);
  EXPECT_EQ(RecommendBufferSize(profile, 0.5), 2u);
  // 95% is unreachable: 2 compulsory misses of 20 cap the rate at 90%.
  EXPECT_FALSE(RecommendBufferSize(profile, 0.95).has_value());
  // Target 0 is satisfied by any buffer.
  EXPECT_EQ(RecommendBufferSize(profile, 0.0), 1u);
}

TEST(RecommendBufferSizeTest, EmptyTraceHasNoRecommendation) {
  const TraceProfile profile = AnalyzeTrace(MakeTrace({}));
  EXPECT_FALSE(RecommendBufferSize(profile, 0.5).has_value());
}

TEST_F(MattsonConsistencyTest, RecommendationIsTightOnRealTraces) {
  // The recommended size must reach the target and (size - 1) must not.
  for (const double target : {0.2, 0.3, 0.4}) {
    const auto frames = RecommendBufferSize(*profile_, target);
    ASSERT_TRUE(frames.has_value()) << target;
    EXPECT_GE(profile_->LocalityAt(*frames), target);
    if (*frames > 1) {
      EXPECT_LT(profile_->LocalityAt(*frames - 1), target);
    }
  }
}

TEST_F(MattsonConsistencyTest, LocalityIsMonotoneInBufferSize) {
  double previous = -1.0;
  for (const size_t frames : {2, 8, 32, 128, 1024}) {
    const double locality = profile_->LocalityAt(frames);
    EXPECT_GE(locality, previous);
    EXPECT_LE(locality, 1.0);
    previous = locality;
  }
}

}  // namespace
}  // namespace sdb::sim
