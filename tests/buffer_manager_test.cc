#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "core/policy_spatial.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StagePage;
using test::Touch;

std::unique_ptr<BufferManager> MakeLruBuffer(DiskManager& disk,
                                             size_t frames) {
  return std::make_unique<BufferManager>(&disk, frames,
                                         std::make_unique<LruPolicy>());
}

class BufferManagerTest : public ::testing::Test {
 protected:
  void StagePages(int n) {
    for (int i = 0; i < n; ++i) {
      pages_.push_back(StagePage(disk_, PageType::kData, 0,
                                 geom::Rect(0, 0, 1.0 + i, 1.0)));
    }
    disk_.ResetStats();
  }

  DiskManager disk_;
  std::vector<PageId> pages_;
};

TEST_F(BufferManagerTest, MissReadsFromDiskHitDoesNot) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 4);
  Touch(*buffer, pages_[0], 1);
  EXPECT_EQ(disk_.stats().reads, 1u);
  Touch(*buffer, pages_[0], 2);
  EXPECT_EQ(disk_.stats().reads, 1u);
  Touch(*buffer, pages_[1], 3);
  EXPECT_EQ(disk_.stats().reads, 2u);
  EXPECT_EQ(buffer->stats().requests, 3u);
  EXPECT_EQ(buffer->stats().hits, 1u);
  EXPECT_EQ(buffer->stats().misses, 2u);
}

TEST_F(BufferManagerTest, EvictsWhenFullAndRereadsOnReturn) {
  StagePages(3);
  auto buffer = MakeLruBuffer(disk_, 2);
  Touch(*buffer, pages_[0], 1);
  Touch(*buffer, pages_[1], 2);
  Touch(*buffer, pages_[2], 3);  // evicts pages_[0] (LRU)
  EXPECT_FALSE(buffer->Contains(pages_[0]));
  EXPECT_TRUE(buffer->Contains(pages_[1]));
  EXPECT_TRUE(buffer->Contains(pages_[2]));
  EXPECT_EQ(buffer->stats().evictions, 1u);
  Touch(*buffer, pages_[0], 4);  // miss again
  EXPECT_EQ(disk_.stats().reads, 4u);
}

TEST_F(BufferManagerTest, PinnedPageIsNotEvicted) {
  StagePages(3);
  auto buffer = MakeLruBuffer(disk_, 2);
  const AccessContext ctx{1};
  PageHandle pinned = buffer->FetchOrDie(pages_[0], ctx);  // stays pinned
  Touch(*buffer, pages_[1], 2);
  Touch(*buffer, pages_[2], 3);  // must evict pages_[1], not the pinned one
  EXPECT_TRUE(buffer->Contains(pages_[0]));
  EXPECT_FALSE(buffer->Contains(pages_[1]));
  pinned.Release();
}

TEST_F(BufferManagerTest, DirtyPageIsWrittenBackOnEviction) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  {
    const AccessContext ctx{1};
    PageHandle handle = buffer->FetchOrDie(pages_[0], ctx);
    handle.bytes()[100] = std::byte{0x77};
    handle.MarkDirty();
  }
  Touch(*buffer, pages_[1], 2);  // evicts the dirty page
  EXPECT_EQ(disk_.stats().writes, 1u);
  EXPECT_EQ(buffer->stats().dirty_writebacks, 1u);
  // The modification survived the round trip.
  const AccessContext ctx{3};
  PageHandle handle = buffer->FetchOrDie(pages_[0], ctx);
  EXPECT_EQ(handle.bytes()[100], std::byte{0x77});
}

TEST_F(BufferManagerTest, CleanEvictionDoesNotWrite) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  Touch(*buffer, pages_[0], 1);
  Touch(*buffer, pages_[1], 2);
  EXPECT_EQ(disk_.stats().writes, 0u);
}

TEST_F(BufferManagerTest, NewAllocatesPinnedZeroedPage) {
  StagePages(0);
  auto buffer = MakeLruBuffer(disk_, 2);
  const AccessContext ctx{1};
  PageHandle handle = buffer->NewOrDie(ctx);
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(disk_.stats().reads, 0u) << "New must not read";
  for (std::byte b : handle.bytes()) EXPECT_EQ(b, std::byte{0});
  const PageId id = handle.page_id();
  handle.Release();
  buffer->FlushAll();
  EXPECT_EQ(disk_.stats().writes, 1u) << "new pages reach disk on flush";
  EXPECT_TRUE(buffer->Contains(id));
}

TEST_F(BufferManagerTest, FlushAllWritesEveryDirtyPageOnce) {
  StagePages(3);
  auto buffer = MakeLruBuffer(disk_, 3);
  for (int i = 0; i < 3; ++i) {
    const AccessContext ctx{static_cast<uint64_t>(i + 1)};
    PageHandle handle = buffer->FetchOrDie(pages_[i], ctx);
    handle.MarkDirty();
  }
  buffer->FlushAll();
  EXPECT_EQ(disk_.stats().writes, 3u);
  buffer->FlushAll();  // now clean
  EXPECT_EQ(disk_.stats().writes, 3u);
}

TEST_F(BufferManagerTest, GetMetaReflectsInPlaceModification) {
  StagePages(1);
  auto buffer = MakeLruBuffer(disk_, 2);
  const AccessContext ctx{1};
  PageHandle handle = buffer->FetchOrDie(pages_[0], ctx);
  storage::PageHeaderView header = handle.header();
  header.set_level(7);
  geom::EntryAggregates agg;
  agg.mbr = geom::Rect(0, 0, 9, 9);
  header.set_aggregates(agg);
  handle.MarkDirty();
  // The policy-facing metadata must see the new values immediately.
  const storage::PageMeta meta = buffer->GetMeta(/*frame=*/0);
  EXPECT_EQ(meta.level, 7);
  EXPECT_EQ(meta.mbr, geom::Rect(0, 0, 9, 9));
}

TEST_F(BufferManagerTest, HandleMoveTransfersThePin) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  const AccessContext ctx{1};
  PageHandle a = buffer->FetchOrDie(pages_[0], ctx);
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move test
  EXPECT_TRUE(b.valid());
  b.Release();
  // Pin released exactly once: the frame is evictable again.
  Touch(*buffer, pages_[1], 2);
  EXPECT_TRUE(buffer->Contains(pages_[1]));
}

TEST_F(BufferManagerTest, RepinningSamePageCounts) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  const AccessContext ctx{1};
  PageHandle a = buffer->FetchOrDie(pages_[0], ctx);
  PageHandle b = buffer->FetchOrDie(pages_[0], ctx);
  a.Release();
  // Still pinned through b; with a single frame, fetching another page must
  // abort (no evictable frame) — checked via death below, here we just
  // confirm b still works.
  EXPECT_EQ(b.page_id(), pages_[0]);
  b.Release();
  Touch(*buffer, pages_[1], 2);
  EXPECT_TRUE(buffer->Contains(pages_[1]));
}

TEST_F(BufferManagerTest, ResetStatsClearsCounters) {
  StagePages(1);
  auto buffer = MakeLruBuffer(disk_, 1);
  Touch(*buffer, pages_[0], 1);
  buffer->ResetStats();
  EXPECT_EQ(buffer->stats().requests, 0u);
  EXPECT_EQ(buffer->stats().hits, 0u);
  EXPECT_EQ(buffer->stats().misses, 0u);
}

TEST_F(BufferManagerTest, HitRateComputation) {
  BufferStats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.requests = 10;
  stats.hits = 4;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.4);
}

TEST_F(BufferManagerTest, MetaCacheServesVictimScansWithoutDecodes) {
  // Victim scans of metadata-consuming policies go through GetMeta once per
  // resident frame per eviction. With the per-frame cache, pages that were
  // not modified since load are served from the cache: a read-only workload
  // performs zero header decodes on behalf of GetMeta, no matter how many
  // evictions run.
  StagePages(8);
  auto buffer = std::make_unique<BufferManager>(
      &disk_, 4, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  uint64_t query = 0;
  for (int round = 0; round < 3; ++round) {
    for (const PageId page : pages_) Touch(*buffer, page, ++query);
  }
  EXPECT_GT(buffer->stats().evictions, 10u);
  EXPECT_EQ(buffer->header_decodes(), 0u);

  // The same workload with the cache disabled decodes on every GetMeta —
  // the pre-cache behaviour the micro bench measures against.
  buffer->set_meta_cache_enabled(false);
  buffer->ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (const PageId page : pages_) Touch(*buffer, page, ++query);
  }
  EXPECT_GT(buffer->header_decodes(), buffer->stats().evictions)
      << "every victim scan visits several frames";
}

TEST_F(BufferManagerTest, MetaCacheRedecodesOnceAfterInvalidation) {
  StagePages(1);
  auto buffer = std::make_unique<BufferManager>(
      &disk_, 2, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  const AccessContext ctx{1};
  PageHandle handle = buffer->FetchOrDie(pages_[0], ctx);
  EXPECT_EQ(buffer->header_decodes(), 0u) << "load fill is not a decode";
  buffer->GetMeta(0);
  EXPECT_EQ(buffer->header_decodes(), 0u) << "served from the load fill";
  handle.MarkDirty();  // invalidates
  buffer->GetMeta(0);
  buffer->GetMeta(0);
  EXPECT_EQ(buffer->header_decodes(), 1u)
      << "one re-decode, then cached again";
}

TEST_F(BufferManagerTest, UnpinReportsUnknownFrame) {
  StagePages(1);
  auto buffer = MakeLruBuffer(disk_, 2);
  EXPECT_EQ(buffer->Unpin(17, /*dirty=*/false), UnpinStatus::kUnknownFrame)
      << "frame index out of range";
  EXPECT_EQ(buffer->Unpin(1, /*dirty=*/false), UnpinStatus::kUnknownFrame)
      << "frame exists but holds no page";
}

TEST_F(BufferManagerTest, UnpinReportsNotPinnedAndLeavesStateUntouched) {
  StagePages(1);
  auto buffer = MakeLruBuffer(disk_, 2);
  const AccessContext ctx{1};
  const FrameId frame = buffer->FetchOrDie(pages_[0], ctx).Detach();
  ASSERT_EQ(buffer->Unpin(frame, /*dirty=*/false), UnpinStatus::kOk);
  // The pin is gone; further manual unpins are an explicit error, and the
  // error path must not set the dirty bit (no write-back on eviction).
  EXPECT_EQ(buffer->Unpin(frame, /*dirty=*/true), UnpinStatus::kNotPinned);
  Touch(*buffer, pages_[0], 2);
  EXPECT_EQ(disk_.stats().writes, 0u);
}

TEST_F(BufferManagerTest, UnpinReportsQuarantinedFrame) {
  StagePages(2);
  storage::FaultProfile profile;
  profile.bad_begin = pages_[0];
  profile.bad_end = pages_[0] + 1;
  storage::FaultInjectingDevice device(disk_, profile);
  BufferManager buffer(&device, 4, std::make_unique<LruPolicy>());
  const AccessContext ctx{1};
  core::StatusOr<PageHandle> fetched = buffer.Fetch(pages_[0], ctx);
  ASSERT_FALSE(fetched.ok());
  ASSERT_EQ(buffer.quarantined_count(), 1u);
  // The failed fetch staged its read into the first free frame (0) before
  // the terminal error quarantined it. Manual unpins of that frame are an
  // explicit error distinct from "unknown" — the frame exists but is out of
  // service — and they must not resurrect it.
  EXPECT_EQ(buffer.Unpin(0, /*dirty=*/false), UnpinStatus::kQuarantined);
  EXPECT_EQ(buffer.Unpin(0, /*dirty=*/true), UnpinStatus::kQuarantined)
      << "double-unpin after a failed fetch stays an error";
  EXPECT_EQ(buffer.quarantined_count(), 1u);
  // A healthy page is unaffected and lands in a different frame.
  PageHandle ok = buffer.FetchOrDie(pages_[1], AccessContext{2});
  EXPECT_TRUE(ok.valid());
}

TEST_F(BufferManagerTest, FailedFetchLeavesNoPinBehind) {
  StagePages(3);
  storage::FaultProfile profile;
  profile.bad_begin = pages_[0];
  profile.bad_end = pages_[0] + 1;
  storage::FaultInjectingDevice device(disk_, profile);
  // Two frames, quarantine cap = 1: the first bad fetch quarantines its
  // frame, after which one frame must still cycle both healthy pages —
  // which only works if the failed fetch released every claim it held.
  BufferManager buffer(&device, 2, std::make_unique<LruPolicy>());
  ASSERT_FALSE(buffer.Fetch(pages_[0], AccessContext{1}).ok());
  ASSERT_EQ(buffer.quarantined_count(), 1u);
  for (uint64_t q = 2; q < 8; ++q) {
    const PageId page = pages_[1 + (q % 2)];
    PageHandle handle = buffer.FetchOrDie(page, AccessContext{q});
    ASSERT_TRUE(handle.valid());
  }
}

using BufferManagerDeathTest = BufferManagerTest;

TEST_F(BufferManagerDeathTest, DetachTransfersThePin) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  const AccessContext ctx{1};
  FrameId frame;
  {
    PageHandle handle = buffer->FetchOrDie(pages_[0], ctx);
    frame = handle.Detach();
    EXPECT_FALSE(handle.valid());
  }  // handle destruction must NOT release the detached pin
  EXPECT_DEATH(Touch(*buffer, pages_[1], 2), "no evictable frame")
      << "the page is still pinned after the handle died";
  EXPECT_EQ(buffer->Unpin(frame, /*dirty=*/false), UnpinStatus::kOk);
  Touch(*buffer, pages_[1], 3);  // now evictable
  EXPECT_TRUE(buffer->Contains(pages_[1]));
}

TEST_F(BufferManagerDeathTest, AllPinnedAborts) {
  StagePages(2);
  auto buffer = MakeLruBuffer(disk_, 1);
  const AccessContext ctx{1};
  PageHandle pinned = buffer->FetchOrDie(pages_[0], ctx);
  EXPECT_DEATH(Touch(*buffer, pages_[1], 2), "no evictable frame");
  pinned.Release();
}

}  // namespace
}  // namespace sdb::core
