// The buffer-manager write path end to end: dirty tracking and recovery
// LSNs, the write-ahead rule on eviction (including forced steals and
// re-logging after a redirty), typed Evict refusals, the dirty-pin
// lifecycle edges around quarantine, the writable sharded BufferService
// (New / Commit / Checkpoint across shards), a churn-then-crash-then-
// recover round trip through the R-tree, and the optimistic-vs-mutex
// FetchBatch serial-equality regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "geom/rect.h"
#include "rtree/rtree.h"
#include "sim/churn.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "svc/buffer_service.h"
#include "svc/flush_coordinator.h"
#include "test_util.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace sdb {
namespace {

using core::AccessContext;
using core::BufferManager;
using core::EvictStatus;
using core::PageHandle;
using core::UnpinStatus;
using storage::DiskManager;
using storage::PageId;
using storage::PageType;

/// The CI flusher soak varies the churn seed run-to-run; locally the
/// default is fixed so failures reproduce.
uint64_t SoakSeed(uint64_t fallback) {
  if (const char* env = std::getenv("SDB_SOAK_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

std::unique_ptr<BufferManager> MakeBuffer(storage::PageDevice& disk,
                                          size_t frames) {
  return std::make_unique<BufferManager>(&disk, frames,
                                         std::make_unique<core::LruPolicy>());
}

void FillPage(PageHandle& handle, uint8_t fill) {
  std::memset(handle.bytes().data(), fill, handle.bytes().size());
  handle.MarkDirty();
}

std::vector<std::byte> ReadPage(DiskManager& disk, PageId page) {
  std::vector<std::byte> out(disk.page_size());
  SDB_CHECK(disk.Read(page, out).ok());
  return out;
}

class WritePathTest : public ::testing::Test {
 protected:
  WritePathTest() : wal_(&log_) {}

  DiskManager disk_;
  DiskManager log_;
  wal::WalManager wal_;
  AccessContext ctx_{1};
};

TEST_F(WritePathTest, NewPinsAZeroedDirtyFrame) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  core::StatusOr<PageHandle> page = buffer->New(ctx_);
  ASSERT_TRUE(page.ok());
  for (const std::byte b : page->bytes()) {
    ASSERT_EQ(b, std::byte{0});
  }
  EXPECT_EQ(buffer->dirty_count(), 1u);
  EXPECT_EQ(buffer->min_rec_lsn(), 1u)
      << "rec_lsn is stored 1-based off an empty log";
  page->Release();
}

TEST_F(WritePathTest, CommitKeepsFramesDirtyButCheapToEvict) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0x5A);
  page.Release();

  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  EXPECT_EQ(wal_.stats().commits, 1u);
  EXPECT_EQ(wal_.stats().appends, 2u);  // one image + the commit record
  EXPECT_EQ(buffer->dirty_count(), 1u) << "commit does not write back";

  // The committed frame evicts without a steal: its image is in the log.
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 0u);
  EXPECT_FALSE(buffer->Contains(id));
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0x5A});
  EXPECT_EQ(buffer->stats().dirty_writebacks, 1u);
}

TEST_F(WritePathTest, EvictingUnloggedDirtyFrameForcesASteal) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0x7C);
  page.Release();

  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 1u)
      << "a dirty-unlogged victim must commit its own image first";
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0x7C});

  // The steal is a real commit: recovery replays it onto a fresh device.
  DiskManager recovered;
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log_, recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u);
  EXPECT_EQ(ReadPage(recovered, id)[0], std::byte{0x7C});
}

TEST_F(WritePathTest, RedirtyAfterCommitForcesRelogOnEviction) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0xA1);
  page.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());

  // Redirty the already-logged frame; its logged image (0xA1) is now stale.
  {
    PageHandle again = buffer->FetchOrDie(id, ctx_);
    FillPage(again, 0xB2);
  }
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 1u)
      << "eviction must re-log the new bytes, not reuse the stale image";
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0xB2});

  DiskManager recovered;
  ASSERT_TRUE(wal::Recover(log_, recovered).ok());
  EXPECT_EQ(ReadPage(recovered, id)[0], std::byte{0xB2})
      << "last committed image wins during redo";
}

TEST_F(WritePathTest, EvictRefusalsAreTyped) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  EXPECT_EQ(buffer->Evict(PageId{999}), EvictStatus::kNotResident);

  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kPinned);
  EXPECT_TRUE(buffer->Contains(id)) << "a refusal leaves the page resident";
  page.Release();
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
}

/// Device whose writes can be made to fail on demand (reads pass through).
class WriteFailingDevice final : public storage::PageDevice {
 public:
  explicit WriteFailingDevice(DiskManager& base) : base_(&base) {}

  size_t page_size() const override { return base_->page_size(); }
  core::StatusOr<PageId> Allocate() override { return base_->Allocate(); }
  core::Status Read(PageId id, std::span<std::byte> out) override {
    return base_->Read(id, out);
  }
  core::Status Write(PageId id, std::span<const std::byte> in) override {
    if (fail_writes) {
      return core::Status(core::StatusCode::kDataLoss, "injected write fail");
    }
    return base_->Write(id, in);
  }
  size_t page_count() const override { return base_->page_count(); }
  const storage::IoStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  bool fail_writes = true;

 private:
  DiskManager* base_;
};

TEST_F(WritePathTest, EvictReportsWriteBackFailure) {
  DiskManager base;
  const PageId id = test::StagePage(base, PageType::kData, 0,
                                    geom::Rect(0, 0, 1, 1));
  WriteFailingDevice device(base);
  auto buffer = MakeBuffer(device, 2);
  {
    PageHandle page = buffer->FetchOrDie(id, ctx_);
    FillPage(page, 0xEE);
  }
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kWriteBackFailed);
  EXPECT_TRUE(buffer->Contains(id)) << "a failed eviction keeps the page";
  EXPECT_EQ(buffer->dirty_count(), 1u) << "…and keeps it dirty";
  // Heal the device: the retried eviction now drains the frame.
  device.fail_writes = false;
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(ReadPage(base, id)[0], std::byte{0xEE});
}

TEST_F(WritePathTest, UnpinDirtyOnQuarantinedFrameIsRefused) {
  DiskManager base;
  const PageId good = test::StagePage(base, PageType::kData, 0,
                                      geom::Rect(0, 0, 1, 1));
  const PageId bad = test::StagePage(base, PageType::kData, 0,
                                     geom::Rect(0, 0, 2, 1));
  storage::FaultProfile profile;
  profile.bad_begin = bad;
  profile.bad_end = bad + 1;
  storage::FaultInjectingDevice faulty(base, profile);
  auto buffer = MakeBuffer(faulty, 4);

  ASSERT_FALSE(buffer->Fetch(bad, ctx_).ok());
  ASSERT_EQ(buffer->quarantined_count(), 1u);

  // A dirty unpin aimed at the quarantined frame must be refused without
  // dirtying anything; probing every frame finds exactly one refusal.
  size_t quarantined_refusals = 0;
  for (core::FrameId f = 0; f < buffer->frame_count(); ++f) {
    const UnpinStatus status = buffer->Unpin(f, /*dirty=*/true);
    if (status == UnpinStatus::kQuarantined) ++quarantined_refusals;
    EXPECT_NE(status, UnpinStatus::kOk) << "no frame holds a releasable pin";
  }
  EXPECT_EQ(quarantined_refusals, 1u);
  EXPECT_EQ(buffer->dirty_count(), 0u);
  (void)good;
}

TEST_F(WritePathTest, MinRecLsnTracksTheOldestDirtyFrame) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  EXPECT_EQ(buffer->min_rec_lsn(), 0u);

  PageHandle first = buffer->NewOrDie(ctx_);
  FillPage(first, 0x01);
  first.Release();
  const uint64_t first_rec = buffer->min_rec_lsn();
  EXPECT_EQ(first_rec, 1u);

  // Commit advances the log but not the recovery LSN: the frame is still
  // dirty, redo for it still starts at its first-dirty position.
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  EXPECT_EQ(buffer->min_rec_lsn(), first_rec);

  PageHandle second = buffer->NewOrDie(ctx_);
  FillPage(second, 0x02);
  second.Release();
  EXPECT_EQ(buffer->min_rec_lsn(), first_rec)
      << "the minimum is the OLDEST dirty frame";
  EXPECT_EQ(buffer->dirty_count(), 2u);

  // Forcing everything to the device clears the census entirely.
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
  EXPECT_EQ(buffer->dirty_count(), 0u);
  EXPECT_EQ(buffer->min_rec_lsn(), 0u);
}

TEST_F(WritePathTest, CheckpointMakesTheDeviceMatchTheCommittedState) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle a = buffer->NewOrDie(ctx_);
  const PageId id_a = a.page_id();
  FillPage(a, 0x11);
  a.Release();
  ASSERT_TRUE(buffer->Checkpoint(ctx_).ok());
  EXPECT_EQ(wal_.stats().checkpoints, 1u);
  EXPECT_EQ(buffer->dirty_count(), 0u);
  EXPECT_EQ(ReadPage(disk_, id_a)[0], std::byte{0x11});

  // Post-checkpoint commit; crash here. Recovery onto the checkpointed
  // device replays only the post-checkpoint group.
  PageHandle b = buffer->NewOrDie(ctx_);
  const PageId id_b = b.page_id();
  FillPage(b, 0x22);
  b.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());

  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log_, disk_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u)
      << "pre-checkpoint images are already on the device";
  EXPECT_EQ(ReadPage(disk_, id_b)[0], std::byte{0x22});

  // Quiesce the buffer before teardown (it still holds dirty frame b).
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
}

TEST_F(WritePathTest, FlushAllCommitsBeforeWritingBack) {
  {
    auto buffer = MakeBuffer(disk_, 4);
    buffer->AttachWal(&wal_);
    PageHandle page = buffer->NewOrDie(ctx_);
    FillPage(page, 0x33);
    page.Release();
    // Destructor runs FlushAll: with a WAL attached that must commit first
    // (write-ahead rule), then write back.
  }
  EXPECT_EQ(wal_.stats().commits, 1u);
  EXPECT_EQ(wal_.stats().forced_steals, 0u)
      << "FlushAll commits as one group, not per-frame steals";
  EXPECT_EQ(ReadPage(disk_, 0)[0], std::byte{0x33});
}

// ---------------------------------------------------------------------------
// Background write-back: harvest, flush, and eviction victim preference

TEST_F(WritePathTest, HarvestSelectsLoggedUnpinnedDirtyOldestFirst) {
  auto buffer = MakeBuffer(disk_, 8);
  buffer->AttachWal(&wal_);
  core::WritebackOptions writeback;
  writeback.enabled = true;
  buffer->ConfigureBackgroundWriteback(writeback);

  // Page A: dirtied on the empty log (rec_lsn 1), then committed.
  PageHandle a = buffer->NewOrDie(ctx_);
  const PageId id_a = a.page_id();
  FillPage(a, 0x0A);
  a.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  // Page B: dirtied after that commit, so its rec_lsn is strictly younger.
  PageHandle b = buffer->NewOrDie(ctx_);
  const PageId id_b = b.page_id();
  FillPage(b, 0x0B);
  b.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  // Page C: dirty but never committed (unlogged) AND still pinned — two
  // independent reasons the harvest must pass it over.
  PageHandle c = buffer->NewOrDie(ctx_);
  FillPage(c, 0x0C);

  std::vector<core::DirtyCandidate> candidates;
  EXPECT_EQ(buffer->HarvestFlushCandidates(1, &candidates), 1u)
      << "the cap bounds one harvest round";
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].page, id_a) << "oldest rec_lsn first";
  candidates.clear();
  ASSERT_EQ(buffer->HarvestFlushCandidates(8, &candidates), 2u);
  EXPECT_EQ(candidates[0].page, id_a);
  EXPECT_EQ(candidates[1].page, id_b);
  EXPECT_LT(candidates[0].rec_lsn, candidates[1].rec_lsn);

  const core::StatusOr<size_t> flushed =
      buffer->FlushFrames(candidates, ctx_);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 2u);
  EXPECT_EQ(buffer->dirty_count(), 1u) << "only the pinned page stays dirty";
  EXPECT_EQ(buffer->dirty_frame_count(), 1u) << "the O(1) census agrees";
  EXPECT_EQ(ReadPage(disk_, id_a)[0], std::byte{0x0A});
  EXPECT_EQ(ReadPage(disk_, id_b)[0], std::byte{0x0B});
  EXPECT_EQ(buffer->stats().sync_writeback_fallbacks, 0u)
      << "background flushing is not a fallback";
  EXPECT_EQ(wal_.stats().forced_steals, 0u)
      << "harvesting logged-only frames never steals";

  // A re-harvest finds nothing: the flushed frames are clean, C is pinned.
  candidates.clear();
  EXPECT_EQ(buffer->HarvestFlushCandidates(8, &candidates), 0u);
  c.Release();
}

TEST_F(WritePathTest, EvictionPrefersCleanVictimsUnderTheHighWatermark) {
  // 4-frame pool holding two dirty committed pages (LRU-oldest) and two
  // clean pages. With write-back configured and the dirty ratio at the
  // high watermark, eviction must pass over the dirty frames and take a
  // clean victim — zero foreground device writes.
  DiskManager base;
  const PageId clean_a = test::StagePage(base, PageType::kData, 0,
                                         geom::Rect(0, 0, 1, 1));
  const PageId clean_b = test::StagePage(base, PageType::kData, 0,
                                         geom::Rect(0, 0, 2, 1));
  const PageId extra = test::StagePage(base, PageType::kData, 0,
                                       geom::Rect(0, 0, 3, 1));
  DiskManager log;
  wal::WalManager wal(&log);
  auto buffer = MakeBuffer(base, 4);
  buffer->AttachWal(&wal);
  core::WritebackOptions writeback;
  writeback.enabled = true;
  buffer->ConfigureBackgroundWriteback(writeback);

  PageHandle dirty_a = buffer->NewOrDie(ctx_);
  const PageId id_a = dirty_a.page_id();
  FillPage(dirty_a, 0xA1);
  dirty_a.Release();
  PageHandle dirty_b = buffer->NewOrDie(ctx_);
  const PageId id_b = dirty_b.page_id();
  FillPage(dirty_b, 0xB2);
  dirty_b.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  buffer->FetchOrDie(clean_a, ctx_).Release();
  buffer->FetchOrDie(clean_b, ctx_).Release();

  // dirty ratio 2/4 == watermark 0.5: not yet past it, so prefer clean.
  buffer->FetchOrDie(extra, ctx_).Release();
  EXPECT_TRUE(buffer->Contains(id_a)) << "dirty frames were passed over";
  EXPECT_TRUE(buffer->Contains(id_b));
  EXPECT_FALSE(buffer->Contains(clean_a)) << "the oldest CLEAN page went";
  EXPECT_EQ(buffer->stats().sync_writeback_fallbacks, 0u);
  EXPECT_EQ(buffer->stats().dirty_writebacks, 0u)
      << "no device write on the foreground path";
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
}

TEST_F(WritePathTest, SyncWritebackFallbackIsCountedPastTheHighWatermark) {
  DiskManager base;
  const PageId staged = test::StagePage(base, PageType::kData, 0,
                                        geom::Rect(0, 0, 1, 1));
  DiskManager log;
  wal::WalManager wal(&log);
  auto buffer = MakeBuffer(base, 4);
  buffer->AttachWal(&wal);
  core::WritebackOptions writeback;
  writeback.enabled = true;
  buffer->ConfigureBackgroundWriteback(writeback);

  // Three of four frames dirty: past the 0.5 high watermark, so eviction
  // stops preferring clean victims and writes back in the foreground —
  // correct, but counted, because steady state should never get here.
  std::vector<PageId> ids;
  for (uint8_t i = 0; i < 3; ++i) {
    PageHandle page = buffer->NewOrDie(ctx_);
    ids.push_back(page.page_id());
    FillPage(page, static_cast<uint8_t>(0x10 + i));
    page.Release();
  }
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  buffer->FetchOrDie(staged, ctx_).Release();  // fills the 4th frame, clean

  // The LRU victim is ids[0] — dirty and logged. Past the watermark the
  // clean-preference scan is off, so the eviction writes it back inline.
  PageHandle fresh = buffer->NewOrDie(ctx_);
  fresh.Release();
  EXPECT_FALSE(buffer->Contains(ids[0]));
  EXPECT_EQ(buffer->stats().sync_writeback_fallbacks, 1u);
  EXPECT_EQ(buffer->stats().dirty_writebacks, 1u);
  EXPECT_EQ(ReadPage(base, ids[0])[0], std::byte{0x10});
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
}

// ---------------------------------------------------------------------------
// Writable sharded service

svc::BufferServiceConfig WritableConfig(size_t shards, size_t frames) {
  svc::BufferServiceConfig config;
  config.shard_count = shards;
  config.total_frames = frames;
  config.policy_spec = "LRU";
  return config;
}

TEST(WritableServiceTest, NewAllocatesAcrossShardsAndCommitIsOneGroup) {
  DiskManager disk;
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferService service(&disk, &wal, WritableConfig(4, 64));
  ASSERT_TRUE(service.writable());
  const AccessContext ctx{9};

  std::vector<PageId> pages;
  for (int i = 0; i < 12; ++i) {
    core::StatusOr<PageHandle> page = service.New(ctx);
    ASSERT_TRUE(page.ok());
    std::memset(page->bytes().data(), 0x40 + i, page->bytes().size());
    page->MarkDirty();
    pages.push_back(page->page_id());
    page->Release();
  }
  EXPECT_EQ(disk.page_count(), 12u);

  // One commit covers the dirty pages of every shard atomically.
  ASSERT_TRUE(service.Commit(ctx).ok());
  EXPECT_EQ(wal.stats().commits, 1u);
  EXPECT_EQ(wal.stats().appends, 13u);  // 12 images + 1 commit record

  // Byte-exactness of redo: replaying the (pre-checkpoint) log onto a
  // fresh device reproduces all 12 committed pages.
  {
    DiskManager recovered;
    ASSERT_TRUE(wal::Recover(log, recovered).ok());
    ASSERT_EQ(recovered.page_count(), disk.page_count());
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(ReadPage(recovered, pages[i])[0],
                std::byte{static_cast<uint8_t>(0x40 + i)});
    }
  }

  // Checkpoint forces the same bytes onto the data device — and from then
  // on recovery of the log replays nothing (the checkpoint asserts the
  // device already holds the committed state).
  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ReadPage(disk, pages[i])[0],
              std::byte{static_cast<uint8_t>(0x40 + i)});
  }
  DiskManager post_checkpoint;
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log, post_checkpoint);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 0u);
}

TEST(WritableServiceTest, ReadOnlyServiceStillRefusesNew) {
  DiskManager disk;
  test::StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  svc::BufferService service(disk, WritableConfig(2, 16));
  EXPECT_FALSE(service.writable());
  const core::StatusOr<PageHandle> page = service.New(AccessContext{1});
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), core::StatusCode::kUnimplemented);
  EXPECT_EQ(service.Commit().code(), core::StatusCode::kUnimplemented);
}

/// Churn an R-tree through the writable service with periodic commits and
/// checkpoints, crash (snapshot devices mid-flight), recover, and demand
/// the recovered tree equals the last committed tree: valid structure and
/// the exact same query answer.
TEST(WritableServiceTest, ChurnCrashRecoverRoundTrip) {
  const geom::Rect space(0, 0, 100, 100);
  DiskManager disk;
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferService service(&disk, &wal, WritableConfig(2, 128));
  const AccessContext ctx{3};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 400;
  options.delete_fraction = 0.35;
  options.seed = 1234;
  options.commit_every = 25;
  options.checkpoint_every = 100;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.checkpoint = [&] {
    tree.PersistMeta();
    return service.Checkpoint(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  ASSERT_TRUE(churn.ok());
  EXPECT_GT(churn->inserts, 0u);
  EXPECT_GT(churn->deletes, 0u);
  EXPECT_GT(churn->checkpoints, 0u);

  // Final commit: this is the state recovery must reproduce.
  tree.PersistMeta();
  ASSERT_TRUE(service.Commit(ctx).ok());
  const std::vector<rtree::Entry> committed = tree.WindowQuery(space, ctx);
  EXPECT_EQ(committed.size(), churn->live);

  // Crash: snapshot both devices while the service still holds dirty
  // frames, then recover the snapshots. SaveImage walks the device without
  // flushing anything, which is exactly a power-cut's view.
  const std::string data_path = ::testing::TempDir() + "/churn_data.img";
  const std::string log_path = ::testing::TempDir() + "/churn_log.img";
  ASSERT_TRUE(disk.SaveImage(data_path));
  ASSERT_TRUE(log.SaveImage(log_path));
  auto crashed_data = DiskManager::LoadImage(data_path);
  auto crashed_log = DiskManager::LoadImage(log_path);
  ASSERT_TRUE(crashed_data.has_value());
  ASSERT_TRUE(crashed_log.has_value());

  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(*crashed_log, *crashed_data);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->torn_tail);
  EXPECT_GT(result->replayed_pages, 0u);

  // Reopen the recovered database read-only and compare against the
  // committed answer.
  svc::BufferServiceConfig read_config = WritableConfig(2, 128);
  svc::BufferService reader(*crashed_data, read_config);
  rtree::RTree recovered =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  EXPECT_EQ(recovered.Validate(), "");
  std::vector<rtree::Entry> replayed = recovered.WindowQuery(space, ctx);
  ASSERT_EQ(replayed.size(), committed.size());
  auto by_id = [](const rtree::Entry& a, const rtree::Entry& b) {
    return a.id < b.id;
  };
  std::vector<rtree::Entry> expected = committed;
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(replayed.begin(), replayed.end(), by_id);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
  }

  // Quiesce the writable service before teardown.
  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
}

/// Spins until the flusher has written at least `target` pages (bounded).
void WaitForFlushedPages(svc::FlushCoordinator* flusher, uint64_t target) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (flusher->stats().pages_flushed >= target) return;
    flusher->Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "flusher never reached " << target << " flushed pages";
}

/// Churn through a writable service with the background flusher running
/// (concurrent flush + group commit — the write-ahead rule under real
/// threads), demand zero foreground write-backs and zero steals after
/// warm-up, then crash and recover byte-exactly.
TEST(WritableServiceTest, ChurnWithBackgroundFlusherAvoidsForegroundWrites) {
  const geom::Rect space(0, 0, 100, 100);
  DiskManager disk;
  DiskManager log;
  wal::WalOptions wal_options;
  wal_options.group_commit = true;
  wal::WalManager wal(&log, wal_options);
  svc::BufferServiceConfig config = WritableConfig(2, 128);
  config.flusher_threads = 2;
  config.dirty_low_watermark = 0.0;  // flush whenever anything is dirty
  svc::BufferService service(&disk, &wal, config);
  ASSERT_NE(service.flusher(), nullptr);
  const AccessContext ctx{3};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 600;
  options.delete_fraction = 0.35;
  options.seed = SoakSeed(4321);
  options.commit_every = 20;
  options.warmup_operations = 200;
  uint64_t fallbacks_at_warmup = 0;
  uint64_t steals_at_warmup = 0;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.on_steady_state = [&] {
    fallbacks_at_warmup =
        service.AggregateStats().buffer.sync_writeback_fallbacks;
    steals_at_warmup = wal.stats().forced_steals;
    return core::Status::Ok();
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  ASSERT_TRUE(churn.ok());

  tree.PersistMeta();
  ASSERT_TRUE(service.Commit(ctx).ok());
  const std::vector<rtree::Entry> committed = tree.WindowQuery(space, ctx);
  EXPECT_EQ(committed.size(), churn->live);

  // Steady state never touched the device from the foreground path.
  const svc::ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.sync_writeback_fallbacks, fallbacks_at_warmup)
      << "steady state must not fall back to synchronous write-back";
  EXPECT_EQ(wal.stats().forced_steals, steals_at_warmup)
      << "every flushed frame was already logged";
  WaitForFlushedPages(service.flusher(), 1);

  // Crash: stop the flusher (its workers write the data device; a snapshot
  // mid-write would be a race, and a real crash stops them too), snapshot
  // both devices, and recover.
  service.flusher()->Stop();
  const std::string data_path = ::testing::TempDir() + "/flusher_data.img";
  const std::string log_path = ::testing::TempDir() + "/flusher_log.img";
  ASSERT_TRUE(disk.SaveImage(data_path));
  ASSERT_TRUE(log.SaveImage(log_path));
  auto crashed_data = DiskManager::LoadImage(data_path);
  auto crashed_log = DiskManager::LoadImage(log_path);
  ASSERT_TRUE(crashed_data.has_value());
  ASSERT_TRUE(crashed_log.has_value());
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(*crashed_log, *crashed_data);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->replayed_pages, 0u);

  svc::BufferService reader(*crashed_data, WritableConfig(2, 128));
  rtree::RTree recovered =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  EXPECT_EQ(recovered.Validate(), "");
  std::vector<rtree::Entry> replayed = recovered.WindowQuery(space, ctx);
  ASSERT_EQ(replayed.size(), committed.size());
  auto by_id = [](const rtree::Entry& a, const rtree::Entry& b) {
    return a.id < b.id;
  };
  std::vector<rtree::Entry> expected = committed;
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(replayed.begin(), replayed.end(), by_id);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
  }

  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
}

/// Fuzzy checkpoints under churn: the checkpoint hook drains the dirty
/// census through FlushShardBatch (the flusher's own entry point), so the
/// sampled redo horizon advances and TruncateBelow reclaims whole log
/// segments — and a crash after all of that still recovers exactly.
TEST(WritableServiceTest, FuzzyCheckpointsTruncateTheLogAndStayRecoverable) {
  const geom::Rect space(0, 0, 100, 100);
  DiskManager disk;
  DiskManager log;
  wal::WalOptions wal_options;
  wal_options.segment_pages = 2;  // small segments so truncation triggers
  wal::WalManager wal(&log, wal_options);
  svc::BufferServiceConfig config = WritableConfig(2, 128);
  config.flusher_threads = 1;
  config.dirty_low_watermark = 0.0;
  config.fuzzy_checkpoints = true;
  config.truncate_wal = true;
  svc::BufferService service(&disk, &wal, config);
  const AccessContext ctx{6};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 400;
  options.delete_fraction = 0.35;
  options.seed = SoakSeed(98765);
  options.commit_every = 20;
  options.checkpoint_every = 80;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.checkpoint = [&] {
    tree.PersistMeta();
    if (core::Status status = service.Commit(ctx); !status.ok()) {
      return status;
    }
    // Drain every shard so the horizon is fresh when Checkpoint samples it.
    for (size_t s = 0; s < service.shard_count(); ++s) {
      while (true) {
        const core::StatusOr<size_t> flushed =
            service.FlushShardBatch(s, 32, ctx);
        if (!flushed.ok()) return flushed.status();
        if (*flushed == 0) break;
      }
    }
    return service.Checkpoint(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  ASSERT_TRUE(churn.ok());
  EXPECT_GT(churn->checkpoints, 0u);
  EXPECT_GE(wal.stats().segments_truncated, 1u)
      << "fuzzy checkpoints must reclaim log segments";
  EXPECT_GT(wal.truncated_lsn(), 0u);

  // Post-truncation commits, then crash and recover from the shortened log.
  tree.PersistMeta();
  ASSERT_TRUE(service.Commit(ctx).ok());
  const std::vector<rtree::Entry> committed = tree.WindowQuery(space, ctx);
  service.flusher()->Stop();
  const std::string data_path = ::testing::TempDir() + "/fuzzy_data.img";
  const std::string log_path = ::testing::TempDir() + "/fuzzy_log.img";
  ASSERT_TRUE(disk.SaveImage(data_path));
  ASSERT_TRUE(log.SaveImage(log_path));
  auto crashed_data = DiskManager::LoadImage(data_path);
  auto crashed_log = DiskManager::LoadImage(log_path);
  ASSERT_TRUE(crashed_data.has_value());
  ASSERT_TRUE(crashed_log.has_value());
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(*crashed_log, *crashed_data);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->start_lsn, 0u) << "the scan skipped the zeroed prefix";

  svc::BufferService reader(*crashed_data, WritableConfig(2, 128));
  rtree::RTree recovered =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  EXPECT_EQ(recovered.Validate(), "");
  std::vector<rtree::Entry> replayed = recovered.WindowQuery(space, ctx);
  ASSERT_EQ(replayed.size(), committed.size());
  auto by_id = [](const rtree::Entry& a, const rtree::Entry& b) {
    return a.id < b.id;
  };
  std::vector<rtree::Entry> expected = committed;
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(replayed.begin(), replayed.end(), by_id);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
  }

  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
}

TEST(WritableServiceTest, BatchPinBudgetLeavesEvictionHeadroom) {
  DiskManager disk;
  test::StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  // 64 frames over 4 shards = 16 per shard; the budget keeps 2 in reserve
  // so a full-width batch can never pin a shard wall-to-wall.
  svc::BufferService service(disk, WritableConfig(4, 64));
  EXPECT_EQ(service.BatchPinBudget(), 14u);
  // Tiny shards degrade to single-page batches, never to zero.
  svc::BufferService tiny(disk, WritableConfig(4, 12));
  EXPECT_EQ(tiny.BatchPinBudget(), 1u);
}

// ---------------------------------------------------------------------------
// Satellite: optimistic FetchBatch must preserve per-shard access order

/// Serial-equality regression: one thread, identical batch sequences, a
/// mutex service and an optimistic service must report bit-identical
/// hit/miss counts. The optimistic batch path probes hits latch-free
/// first; if that probe reordered a shard's accesses (hits before misses),
/// LRU state — and with it every subsequent eviction — would diverge.
TEST(WritableServiceTest, OptimisticBatchMatchesMutexHitForHitSerially) {
  DiskManager disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 48; ++i) {
    pages.push_back(test::StagePage(disk, PageType::kData, 0,
                                    geom::Rect(0, 0, 1.0 + i, 1.0)));
  }

  auto run = [&](svc::LatchMode mode) {
    svc::BufferServiceConfig config = WritableConfig(2, 16);
    config.latch_mode = mode;
    svc::BufferService service(disk, config);
    const AccessContext ctx{5};
    uint64_t state = 0x9E3779B97F4A7C15ull;
    auto next = [&state] {
      state += 0x9E3779B97F4A7C15ull;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    std::vector<core::StatusOr<PageHandle>> out;
    for (int round = 0; round < 200; ++round) {
      std::vector<PageId> batch;
      for (int i = 0; i < 6; ++i) {
        batch.push_back(pages[next() % pages.size()]);
      }
      out.clear();
      service.FetchBatch(batch, ctx, &out);
      for (auto& handle : out) EXPECT_TRUE(handle.ok());
      out.clear();  // release every pin before the next batch
    }
    const svc::ShardStats stats = service.AggregateStats();
    return std::pair<uint64_t, uint64_t>(stats.buffer.hits,
                                         stats.buffer.misses);
  };

  const auto mutex_counts = run(svc::LatchMode::kMutex);
  const auto optimistic_counts = run(svc::LatchMode::kOptimistic);
  EXPECT_EQ(optimistic_counts.first, mutex_counts.first)
      << "identical serial batch streams must hit identically";
  EXPECT_EQ(optimistic_counts.second, mutex_counts.second);
}

// ---------------------------------------------------------------------------
// Degraded read-only mode: failing writes, lying fsyncs, disk-full
// backpressure

TEST(DegradedServiceTest, DiskFullNewIsBackpressureNotDegradation) {
  DiskManager disk;
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferService service(&disk, &wal, WritableConfig(2, 32));
  const AccessContext ctx{1};
  disk.set_page_capacity(3);
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) {
    core::StatusOr<PageHandle> page = service.New(ctx);
    ASSERT_TRUE(page.ok());
    std::memset(page->bytes().data(), 0x50 + i, page->bytes().size());
    page->MarkDirty();
    pages.push_back(page->page_id());
  }
  const core::StatusOr<PageHandle> full = service.New(ctx);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), core::StatusCode::kResourceExhausted);
  // Backpressure, not a health event: the service stays writable for the
  // pages that exist, and commits keep working.
  EXPECT_FALSE(service.degraded());
  EXPECT_TRUE(service.Commit(ctx).ok());
  EXPECT_TRUE(service.Fetch(pages[0], ctx).ok());
}

TEST(DegradedServiceTest, DegradedReadAvailability) {
  // Reads must keep serving after the WAL goes sticky: the acceptance bar
  // for "degrade, don't die".
  DiskManager disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 12; ++i) {
    pages.push_back(test::StagePage(disk, PageType::kData, 0,
                                    geom::Rect(0, 0, i + 1.0, 1.0)));
  }
  DiskManager log;
  storage::FaultProfile log_faults;
  log_faults.sync_failure_prob = 1.0;  // every fsync lies, forever
  log_faults.seed = 13;
  storage::FaultInjectingDevice faulty_log(log, log_faults);
  wal::WalOptions wal_options;
  wal_options.max_flush_retries = 2;
  wal::WalManager wal(&faulty_log, wal_options);
  svc::BufferService service(&disk, &wal, WritableConfig(2, 64));
  const AccessContext ctx{2};

  // Warm half the working set before the failure.
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.Fetch(pages[i], ctx).ok());
  }
  for (int i = 0; i < 3; ++i) {
    core::StatusOr<PageHandle> page = service.New(ctx);
    ASSERT_TRUE(page.ok());
    std::memset(page->bytes().data(), 0x77, page->bytes().size());
    page->MarkDirty();
  }
  const core::Status committed = service.Commit(ctx);
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.code(), core::StatusCode::kUnavailable);
  ASSERT_TRUE(service.degraded());
  EXPECT_EQ(service.degraded_state(), svc::DegradedState::kWalError);
  EXPECT_EQ(service.degraded_entries(), 1u);

  // Mutations are refused fast — no second trip through the retry gauntlet.
  EXPECT_EQ(service.New(ctx).status().code(),
            core::StatusCode::kUnavailable);
  EXPECT_EQ(service.Commit(ctx).code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(service.Checkpoint(ctx).code(), core::StatusCode::kUnavailable);

  // Reads: warm pages hit, cold pages still miss in cleanly — every staged
  // page is served while the service is degraded.
  for (const PageId page : pages) {
    const core::StatusOr<PageHandle> fetched = service.Fetch(page, ctx);
    EXPECT_TRUE(fetched.ok()) << fetched.status().ToString();
  }

  // Background flushing parks instead of spinning EnsureDurable failures.
  const core::StatusOr<size_t> flushed = service.FlushShardBatch(0, 8, ctx);
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(*flushed, 0u);

  // The state is surfaced: stats carry it, and the Prometheus dump grows a
  // degraded gauge (absent on healthy services).
  const svc::ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.degraded,
            static_cast<uint64_t>(svc::DegradedState::kWalError));
  EXPECT_EQ(stats.degraded_entries, 1u);
  EXPECT_NE(service.StatsText().find("degraded"), std::string::npos);
}

TEST(DegradedServiceTest, PersistentWriteFaultsQuarantineBackoffSaturate) {
  // Data-device writes fail every time (retryable, so each round burns the
  // full retry budget): the flusher must escalate frames to
  // write-quarantine instead of dropping them, back off the failing shard
  // instead of hot-spinning, and saturating the quarantine must trip
  // degraded mode while reads keep serving.
  DiskManager disk;
  std::vector<PageId> staged;
  for (int i = 0; i < 4; ++i) {
    staged.push_back(test::StagePage(disk, PageType::kData, 0,
                                     geom::Rect(0, 0, i + 1.0, 1.0)));
  }
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferServiceConfig config = WritableConfig(1, 8);
  config.fault_profile.seed = 91;
  config.fault_profile.write_transient_prob = 1.0;
  config.flusher_threads = 1;
  config.flusher_batch_pages = 4;
  config.resilience.max_write_retries = 1;  // keep each failing round cheap
  svc::BufferService service(&disk, &wal, config);
  const AccessContext ctx{3};

  for (int i = 0; i < 5; ++i) {
    core::StatusOr<PageHandle> page = service.New(ctx);
    ASSERT_TRUE(page.ok());
    std::memset(page->bytes().data(), 0x60 + i, page->bytes().size());
    page->MarkDirty();
  }
  ASSERT_TRUE(service.Commit(ctx).ok())
      << "the WAL device is healthy: commits must keep succeeding";

  // cap = half of 8 frames = 4: wait for the quarantine to saturate.
  for (int spin = 0; spin < 10000 && !service.degraded(); ++spin) {
    service.flusher()->Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.degraded()) << "quarantine saturation never tripped";
  EXPECT_EQ(service.degraded_state(),
            svc::DegradedState::kQuarantineSaturated);

  const svc::ShardStats stats = service.AggregateStats();
  EXPECT_GE(stats.buffer.io_write_quarantined, 4u);
  EXPECT_GE(stats.buffer.io_write_retries, 4u);
  EXPECT_GE(stats.quarantined_frames, 4u);
  const svc::FlushCoordinatorStats flusher = service.flusher()->stats();
  EXPECT_GT(flusher.flush_errors, 0u);
  EXPECT_GT(flusher.backoff_skips, 0u)
      << "a persistently failing shard must be skipped, not hot-spun";
  // Degraded read-only: New refused, reads of device-resident pages serve.
  EXPECT_EQ(service.New(ctx).status().code(),
            core::StatusCode::kUnavailable);
  for (const PageId page : staged) {
    EXPECT_TRUE(service.Fetch(page, ctx).ok());
  }
}

// ---------------------------------------------------------------------------
// Chaos soak: churn x write faults x crash — no silent loss, no aborts

/// The tentpole proof, test-sized: drive the churn-crash-recover round trip
/// with transient write faults and lying fsyncs on the WAL device plus
/// transient write faults on the data device. Every acknowledged commit
/// must survive recovery byte-exact; the fault counters must show the run
/// actually injected; and nothing may abort or hang on the way.
TEST(WritableServiceTest, ChurnCrashRecoverSurvivesWriteFaults) {
  const geom::Rect space(0, 0, 100, 100);
  DiskManager disk;
  DiskManager log;
  storage::FaultProfile log_faults;
  log_faults.seed = SoakSeed(20260807);
  log_faults.write_transient_prob = 0.05;
  log_faults.sync_failure_prob = 0.02;
  storage::FaultInjectingDevice faulty_log(log, log_faults);
  wal::WalOptions wal_options;
  wal_options.max_flush_retries = 8;  // 0.05^9: exhaustion impossible
  wal::WalManager wal(&faulty_log, wal_options);
  svc::BufferServiceConfig config = WritableConfig(2, 128);
  config.fault_profile.seed = SoakSeed(20260807) ^ 0xD15EA5E;
  config.fault_profile.write_transient_prob = 0.02;
  svc::BufferService service(&disk, &wal, config);
  const AccessContext ctx{4};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 400;
  options.delete_fraction = 0.35;
  options.seed = SoakSeed(1234);
  options.commit_every = 25;
  options.checkpoint_every = 100;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.checkpoint = [&] {
    tree.PersistMeta();
    return service.Checkpoint(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  ASSERT_TRUE(churn.ok())
      << "transient-only faults must never fail a commit: "
      << churn.status().ToString();
  EXPECT_FALSE(service.degraded());

  tree.PersistMeta();
  ASSERT_TRUE(service.Commit(ctx).ok());
  const std::vector<rtree::Entry> committed = tree.WindowQuery(space, ctx);

  // The run must actually have been under fire, and every injection must
  // be visible as absorbed retry work — never as silent loss.
  EXPECT_GT(faulty_log.fault_stats().write_injected(), 0u);
  EXPECT_GT(wal.stats().write_retries, 0u);
  EXPECT_GT(service.AggregateFaultStats().write_injected(), 0u);

  // Crash and recover from the *underlying* devices (the power-cut view).
  const std::string data_path = ::testing::TempDir() + "/wfault_data.img";
  const std::string log_path = ::testing::TempDir() + "/wfault_log.img";
  ASSERT_TRUE(disk.SaveImage(data_path));
  ASSERT_TRUE(log.SaveImage(log_path));
  auto crashed_data = DiskManager::LoadImage(data_path);
  auto crashed_log = DiskManager::LoadImage(log_path);
  ASSERT_TRUE(crashed_data.has_value());
  ASSERT_TRUE(crashed_log.has_value());
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(*crashed_log, *crashed_data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  svc::BufferService reader(*crashed_data, WritableConfig(2, 128));
  rtree::RTree recovered =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  EXPECT_EQ(recovered.Validate(), "");
  std::vector<rtree::Entry> replayed = recovered.WindowQuery(space, ctx);
  ASSERT_EQ(replayed.size(), committed.size())
      << "acknowledged commits must survive recovery exactly";
  auto by_id = [](const rtree::Entry& a, const rtree::Entry& b) {
    return a.id < b.id;
  };
  std::vector<rtree::Entry> expected = committed;
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(replayed.begin(), replayed.end(), by_id);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
  }
  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace sdb
