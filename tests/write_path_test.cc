// The buffer-manager write path end to end: dirty tracking and recovery
// LSNs, the write-ahead rule on eviction (including forced steals and
// re-logging after a redirty), typed Evict refusals, the dirty-pin
// lifecycle edges around quarantine, the writable sharded BufferService
// (New / Commit / Checkpoint across shards), a churn-then-crash-then-
// recover round trip through the R-tree, and the optimistic-vs-mutex
// FetchBatch serial-equality regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "geom/rect.h"
#include "rtree/rtree.h"
#include "sim/churn.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/fault_injection.h"
#include "svc/buffer_service.h"
#include "test_util.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace sdb {
namespace {

using core::AccessContext;
using core::BufferManager;
using core::EvictStatus;
using core::PageHandle;
using core::UnpinStatus;
using storage::DiskManager;
using storage::PageId;
using storage::PageType;

std::unique_ptr<BufferManager> MakeBuffer(storage::PageDevice& disk,
                                          size_t frames) {
  return std::make_unique<BufferManager>(&disk, frames,
                                         std::make_unique<core::LruPolicy>());
}

void FillPage(PageHandle& handle, uint8_t fill) {
  std::memset(handle.bytes().data(), fill, handle.bytes().size());
  handle.MarkDirty();
}

std::vector<std::byte> ReadPage(DiskManager& disk, PageId page) {
  std::vector<std::byte> out(disk.page_size());
  SDB_CHECK(disk.Read(page, out).ok());
  return out;
}

class WritePathTest : public ::testing::Test {
 protected:
  WritePathTest() : wal_(&log_) {}

  DiskManager disk_;
  DiskManager log_;
  wal::WalManager wal_;
  AccessContext ctx_{1};
};

TEST_F(WritePathTest, NewPinsAZeroedDirtyFrame) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  core::StatusOr<PageHandle> page = buffer->New(ctx_);
  ASSERT_TRUE(page.ok());
  for (const std::byte b : page->bytes()) {
    ASSERT_EQ(b, std::byte{0});
  }
  EXPECT_EQ(buffer->dirty_count(), 1u);
  EXPECT_EQ(buffer->min_rec_lsn(), 1u)
      << "rec_lsn is stored 1-based off an empty log";
  page->Release();
}

TEST_F(WritePathTest, CommitKeepsFramesDirtyButCheapToEvict) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0x5A);
  page.Release();

  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  EXPECT_EQ(wal_.stats().commits, 1u);
  EXPECT_EQ(wal_.stats().appends, 2u);  // one image + the commit record
  EXPECT_EQ(buffer->dirty_count(), 1u) << "commit does not write back";

  // The committed frame evicts without a steal: its image is in the log.
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 0u);
  EXPECT_FALSE(buffer->Contains(id));
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0x5A});
  EXPECT_EQ(buffer->stats().dirty_writebacks, 1u);
}

TEST_F(WritePathTest, EvictingUnloggedDirtyFrameForcesASteal) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0x7C);
  page.Release();

  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 1u)
      << "a dirty-unlogged victim must commit its own image first";
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0x7C});

  // The steal is a real commit: recovery replays it onto a fresh device.
  DiskManager recovered;
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log_, recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u);
  EXPECT_EQ(ReadPage(recovered, id)[0], std::byte{0x7C});
}

TEST_F(WritePathTest, RedirtyAfterCommitForcesRelogOnEviction) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  FillPage(page, 0xA1);
  page.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());

  // Redirty the already-logged frame; its logged image (0xA1) is now stale.
  {
    PageHandle again = buffer->FetchOrDie(id, ctx_);
    FillPage(again, 0xB2);
  }
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(wal_.stats().forced_steals, 1u)
      << "eviction must re-log the new bytes, not reuse the stale image";
  EXPECT_EQ(ReadPage(disk_, id)[0], std::byte{0xB2});

  DiskManager recovered;
  ASSERT_TRUE(wal::Recover(log_, recovered).ok());
  EXPECT_EQ(ReadPage(recovered, id)[0], std::byte{0xB2})
      << "last committed image wins during redo";
}

TEST_F(WritePathTest, EvictRefusalsAreTyped) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  EXPECT_EQ(buffer->Evict(PageId{999}), EvictStatus::kNotResident);

  PageHandle page = buffer->NewOrDie(ctx_);
  const PageId id = page.page_id();
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kPinned);
  EXPECT_TRUE(buffer->Contains(id)) << "a refusal leaves the page resident";
  page.Release();
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
}

/// Device whose writes can be made to fail on demand (reads pass through).
class WriteFailingDevice final : public storage::PageDevice {
 public:
  explicit WriteFailingDevice(DiskManager& base) : base_(&base) {}

  size_t page_size() const override { return base_->page_size(); }
  PageId Allocate() override { return base_->Allocate(); }
  core::Status Read(PageId id, std::span<std::byte> out) override {
    return base_->Read(id, out);
  }
  core::Status Write(PageId id, std::span<const std::byte> in) override {
    if (fail_writes) {
      return core::Status(core::StatusCode::kDataLoss, "injected write fail");
    }
    return base_->Write(id, in);
  }
  size_t page_count() const override { return base_->page_count(); }
  const storage::IoStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  bool fail_writes = true;

 private:
  DiskManager* base_;
};

TEST_F(WritePathTest, EvictReportsWriteBackFailure) {
  DiskManager base;
  const PageId id = test::StagePage(base, PageType::kData, 0,
                                    geom::Rect(0, 0, 1, 1));
  WriteFailingDevice device(base);
  auto buffer = MakeBuffer(device, 2);
  {
    PageHandle page = buffer->FetchOrDie(id, ctx_);
    FillPage(page, 0xEE);
  }
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kWriteBackFailed);
  EXPECT_TRUE(buffer->Contains(id)) << "a failed eviction keeps the page";
  EXPECT_EQ(buffer->dirty_count(), 1u) << "…and keeps it dirty";
  // Heal the device: the retried eviction now drains the frame.
  device.fail_writes = false;
  EXPECT_EQ(buffer->Evict(id), EvictStatus::kOk);
  EXPECT_EQ(ReadPage(base, id)[0], std::byte{0xEE});
}

TEST_F(WritePathTest, UnpinDirtyOnQuarantinedFrameIsRefused) {
  DiskManager base;
  const PageId good = test::StagePage(base, PageType::kData, 0,
                                      geom::Rect(0, 0, 1, 1));
  const PageId bad = test::StagePage(base, PageType::kData, 0,
                                     geom::Rect(0, 0, 2, 1));
  storage::FaultProfile profile;
  profile.bad_begin = bad;
  profile.bad_end = bad + 1;
  storage::FaultInjectingDevice faulty(base, profile);
  auto buffer = MakeBuffer(faulty, 4);

  ASSERT_FALSE(buffer->Fetch(bad, ctx_).ok());
  ASSERT_EQ(buffer->quarantined_count(), 1u);

  // A dirty unpin aimed at the quarantined frame must be refused without
  // dirtying anything; probing every frame finds exactly one refusal.
  size_t quarantined_refusals = 0;
  for (core::FrameId f = 0; f < buffer->frame_count(); ++f) {
    const UnpinStatus status = buffer->Unpin(f, /*dirty=*/true);
    if (status == UnpinStatus::kQuarantined) ++quarantined_refusals;
    EXPECT_NE(status, UnpinStatus::kOk) << "no frame holds a releasable pin";
  }
  EXPECT_EQ(quarantined_refusals, 1u);
  EXPECT_EQ(buffer->dirty_count(), 0u);
  (void)good;
}

TEST_F(WritePathTest, MinRecLsnTracksTheOldestDirtyFrame) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  EXPECT_EQ(buffer->min_rec_lsn(), 0u);

  PageHandle first = buffer->NewOrDie(ctx_);
  FillPage(first, 0x01);
  first.Release();
  const uint64_t first_rec = buffer->min_rec_lsn();
  EXPECT_EQ(first_rec, 1u);

  // Commit advances the log but not the recovery LSN: the frame is still
  // dirty, redo for it still starts at its first-dirty position.
  ASSERT_TRUE(buffer->Commit(ctx_).ok());
  EXPECT_EQ(buffer->min_rec_lsn(), first_rec);

  PageHandle second = buffer->NewOrDie(ctx_);
  FillPage(second, 0x02);
  second.Release();
  EXPECT_EQ(buffer->min_rec_lsn(), first_rec)
      << "the minimum is the OLDEST dirty frame";
  EXPECT_EQ(buffer->dirty_count(), 2u);

  // Forcing everything to the device clears the census entirely.
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
  EXPECT_EQ(buffer->dirty_count(), 0u);
  EXPECT_EQ(buffer->min_rec_lsn(), 0u);
}

TEST_F(WritePathTest, CheckpointMakesTheDeviceMatchTheCommittedState) {
  auto buffer = MakeBuffer(disk_, 4);
  buffer->AttachWal(&wal_);
  PageHandle a = buffer->NewOrDie(ctx_);
  const PageId id_a = a.page_id();
  FillPage(a, 0x11);
  a.Release();
  ASSERT_TRUE(buffer->Checkpoint(ctx_).ok());
  EXPECT_EQ(wal_.stats().checkpoints, 1u);
  EXPECT_EQ(buffer->dirty_count(), 0u);
  EXPECT_EQ(ReadPage(disk_, id_a)[0], std::byte{0x11});

  // Post-checkpoint commit; crash here. Recovery onto the checkpointed
  // device replays only the post-checkpoint group.
  PageHandle b = buffer->NewOrDie(ctx_);
  const PageId id_b = b.page_id();
  FillPage(b, 0x22);
  b.Release();
  ASSERT_TRUE(buffer->Commit(ctx_).ok());

  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log_, disk_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u)
      << "pre-checkpoint images are already on the device";
  EXPECT_EQ(ReadPage(disk_, id_b)[0], std::byte{0x22});

  // Quiesce the buffer before teardown (it still holds dirty frame b).
  ASSERT_TRUE(buffer->ForceDirty(ctx_).ok());
}

TEST_F(WritePathTest, FlushAllCommitsBeforeWritingBack) {
  {
    auto buffer = MakeBuffer(disk_, 4);
    buffer->AttachWal(&wal_);
    PageHandle page = buffer->NewOrDie(ctx_);
    FillPage(page, 0x33);
    page.Release();
    // Destructor runs FlushAll: with a WAL attached that must commit first
    // (write-ahead rule), then write back.
  }
  EXPECT_EQ(wal_.stats().commits, 1u);
  EXPECT_EQ(wal_.stats().forced_steals, 0u)
      << "FlushAll commits as one group, not per-frame steals";
  EXPECT_EQ(ReadPage(disk_, 0)[0], std::byte{0x33});
}

// ---------------------------------------------------------------------------
// Writable sharded service

svc::BufferServiceConfig WritableConfig(size_t shards, size_t frames) {
  svc::BufferServiceConfig config;
  config.shard_count = shards;
  config.total_frames = frames;
  config.policy_spec = "LRU";
  return config;
}

TEST(WritableServiceTest, NewAllocatesAcrossShardsAndCommitIsOneGroup) {
  DiskManager disk;
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferService service(&disk, &wal, WritableConfig(4, 64));
  ASSERT_TRUE(service.writable());
  const AccessContext ctx{9};

  std::vector<PageId> pages;
  for (int i = 0; i < 12; ++i) {
    core::StatusOr<PageHandle> page = service.New(ctx);
    ASSERT_TRUE(page.ok());
    std::memset(page->bytes().data(), 0x40 + i, page->bytes().size());
    page->MarkDirty();
    pages.push_back(page->page_id());
    page->Release();
  }
  EXPECT_EQ(disk.page_count(), 12u);

  // One commit covers the dirty pages of every shard atomically.
  ASSERT_TRUE(service.Commit(ctx).ok());
  EXPECT_EQ(wal.stats().commits, 1u);
  EXPECT_EQ(wal.stats().appends, 13u);  // 12 images + 1 commit record

  // Byte-exactness of redo: replaying the (pre-checkpoint) log onto a
  // fresh device reproduces all 12 committed pages.
  {
    DiskManager recovered;
    ASSERT_TRUE(wal::Recover(log, recovered).ok());
    ASSERT_EQ(recovered.page_count(), disk.page_count());
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(ReadPage(recovered, pages[i])[0],
                std::byte{static_cast<uint8_t>(0x40 + i)});
    }
  }

  // Checkpoint forces the same bytes onto the data device — and from then
  // on recovery of the log replays nothing (the checkpoint asserts the
  // device already holds the committed state).
  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ReadPage(disk, pages[i])[0],
              std::byte{static_cast<uint8_t>(0x40 + i)});
  }
  DiskManager post_checkpoint;
  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(log, post_checkpoint);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 0u);
}

TEST(WritableServiceTest, ReadOnlyServiceStillRefusesNew) {
  DiskManager disk;
  test::StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  svc::BufferService service(disk, WritableConfig(2, 16));
  EXPECT_FALSE(service.writable());
  const core::StatusOr<PageHandle> page = service.New(AccessContext{1});
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), core::StatusCode::kUnimplemented);
  EXPECT_EQ(service.Commit().code(), core::StatusCode::kUnimplemented);
}

/// Churn an R-tree through the writable service with periodic commits and
/// checkpoints, crash (snapshot devices mid-flight), recover, and demand
/// the recovered tree equals the last committed tree: valid structure and
/// the exact same query answer.
TEST(WritableServiceTest, ChurnCrashRecoverRoundTrip) {
  const geom::Rect space(0, 0, 100, 100);
  DiskManager disk;
  DiskManager log;
  wal::WalManager wal(&log);
  svc::BufferService service(&disk, &wal, WritableConfig(2, 128));
  const AccessContext ctx{3};

  rtree::RTree tree(&disk, &service);
  sim::ChurnOptions options;
  options.operations = 400;
  options.delete_fraction = 0.35;
  options.seed = 1234;
  options.commit_every = 25;
  options.checkpoint_every = 100;
  sim::ChurnHooks hooks;
  hooks.commit = [&] {
    tree.PersistMeta();
    return service.Commit(ctx);
  };
  hooks.checkpoint = [&] {
    tree.PersistMeta();
    return service.Checkpoint(ctx);
  };
  const core::StatusOr<sim::ChurnResult> churn =
      sim::RunChurn(tree, space, options, hooks, ctx);
  ASSERT_TRUE(churn.ok());
  EXPECT_GT(churn->inserts, 0u);
  EXPECT_GT(churn->deletes, 0u);
  EXPECT_GT(churn->checkpoints, 0u);

  // Final commit: this is the state recovery must reproduce.
  tree.PersistMeta();
  ASSERT_TRUE(service.Commit(ctx).ok());
  const std::vector<rtree::Entry> committed = tree.WindowQuery(space, ctx);
  EXPECT_EQ(committed.size(), churn->live);

  // Crash: snapshot both devices while the service still holds dirty
  // frames, then recover the snapshots. SaveImage walks the device without
  // flushing anything, which is exactly a power-cut's view.
  const std::string data_path = ::testing::TempDir() + "/churn_data.img";
  const std::string log_path = ::testing::TempDir() + "/churn_log.img";
  ASSERT_TRUE(disk.SaveImage(data_path));
  ASSERT_TRUE(log.SaveImage(log_path));
  auto crashed_data = DiskManager::LoadImage(data_path);
  auto crashed_log = DiskManager::LoadImage(log_path);
  ASSERT_TRUE(crashed_data.has_value());
  ASSERT_TRUE(crashed_log.has_value());

  const core::StatusOr<wal::RecoveryResult> result =
      wal::Recover(*crashed_log, *crashed_data);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->torn_tail);
  EXPECT_GT(result->replayed_pages, 0u);

  // Reopen the recovered database read-only and compare against the
  // committed answer.
  svc::BufferServiceConfig read_config = WritableConfig(2, 128);
  svc::BufferService reader(*crashed_data, read_config);
  rtree::RTree recovered =
      rtree::RTree::Open(&*crashed_data, &reader, tree.meta_page());
  EXPECT_EQ(recovered.Validate(), "");
  std::vector<rtree::Entry> replayed = recovered.WindowQuery(space, ctx);
  ASSERT_EQ(replayed.size(), committed.size());
  auto by_id = [](const rtree::Entry& a, const rtree::Entry& b) {
    return a.id < b.id;
  };
  std::vector<rtree::Entry> expected = committed;
  std::sort(expected.begin(), expected.end(), by_id);
  std::sort(replayed.begin(), replayed.end(), by_id);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
  }

  // Quiesce the writable service before teardown.
  ASSERT_TRUE(service.Checkpoint(ctx).ok());
  std::remove(data_path.c_str());
  std::remove(log_path.c_str());
}

// ---------------------------------------------------------------------------
// Satellite: optimistic FetchBatch must preserve per-shard access order

/// Serial-equality regression: one thread, identical batch sequences, a
/// mutex service and an optimistic service must report bit-identical
/// hit/miss counts. The optimistic batch path probes hits latch-free
/// first; if that probe reordered a shard's accesses (hits before misses),
/// LRU state — and with it every subsequent eviction — would diverge.
TEST(WritableServiceTest, OptimisticBatchMatchesMutexHitForHitSerially) {
  DiskManager disk;
  std::vector<PageId> pages;
  for (int i = 0; i < 48; ++i) {
    pages.push_back(test::StagePage(disk, PageType::kData, 0,
                                    geom::Rect(0, 0, 1.0 + i, 1.0)));
  }

  auto run = [&](svc::LatchMode mode) {
    svc::BufferServiceConfig config = WritableConfig(2, 16);
    config.latch_mode = mode;
    svc::BufferService service(disk, config);
    const AccessContext ctx{5};
    uint64_t state = 0x9E3779B97F4A7C15ull;
    auto next = [&state] {
      state += 0x9E3779B97F4A7C15ull;
      uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    std::vector<core::StatusOr<PageHandle>> out;
    for (int round = 0; round < 200; ++round) {
      std::vector<PageId> batch;
      for (int i = 0; i < 6; ++i) {
        batch.push_back(pages[next() % pages.size()]);
      }
      out.clear();
      service.FetchBatch(batch, ctx, &out);
      for (auto& handle : out) EXPECT_TRUE(handle.ok());
      out.clear();  // release every pin before the next batch
    }
    const svc::ShardStats stats = service.AggregateStats();
    return std::pair<uint64_t, uint64_t>(stats.buffer.hits,
                                         stats.buffer.misses);
  };

  const auto mutex_counts = run(svc::LatchMode::kMutex);
  const auto optimistic_counts = run(svc::LatchMode::kOptimistic);
  EXPECT_EQ(optimistic_counts.first, mutex_counts.first)
      << "identical serial batch streams must hit identically";
  EXPECT_EQ(optimistic_counts.second, mutex_counts.second);
}

}  // namespace
}  // namespace sdb
