#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "core/policy_lru.h"
#include "quadtree/quadtree.h"
#include "test_util.h"

namespace sdb::quadtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Point;
using geom::Rect;
using storage::DiskManager;

struct Fixture {
  explicit Fixture(const QuadTreeConfig& config = QuadTreeConfig{})
      : buffer(&disk, 4096, std::make_unique<core::LruPolicy>()),
        tree(&disk, &buffer, config) {}

  DiskManager disk;
  BufferManager buffer;
  QuadTree tree;
  AccessContext ctx{1};
};

std::vector<std::pair<Point, uint64_t>> RandomPoints(size_t n,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, uint64_t>> points;
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(Point{rng.NextDouble(), rng.NextDouble()}, i + 1);
  }
  return points;
}

std::set<uint64_t> BruteForce(
    const std::vector<std::pair<Point, uint64_t>>& points,
    const Rect& window) {
  std::set<uint64_t> ids;
  for (const auto& [p, id] : points) {
    if (window.Contains(p)) ids.insert(id);
  }
  return ids;
}

std::set<uint64_t> Ids(const std::vector<QuadPoint>& points) {
  std::set<uint64_t> ids;
  for (const QuadPoint& p : points) ids.insert(p.id);
  return ids;
}

TEST(QuadTreeTest, EmptyTree) {
  Fixture f;
  EXPECT_EQ(f.tree.size(), 0u);
  EXPECT_TRUE(f.tree.WindowQuery(Rect(0, 0, 1, 1), f.ctx).empty());
  EXPECT_EQ(f.tree.Validate(), "");
}

TEST(QuadTreeTest, SinglePoint) {
  Fixture f;
  f.tree.Insert({0.3, 0.7}, 5, f.ctx);
  EXPECT_EQ(f.tree.size(), 1u);
  EXPECT_EQ(f.tree.Validate(), "");
  const auto hits = f.tree.WindowQuery(Rect(0.25, 0.65, 0.35, 0.75), f.ctx);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 5u);
  EXPECT_TRUE(f.tree.WindowQuery(Rect(0.8, 0.8, 0.9, 0.9), f.ctx).empty());
}

TEST(QuadTreeTest, SplitsWhenBucketOverflows) {
  QuadTreeConfig config;
  config.bucket_capacity = 4;
  Fixture f(config);
  const auto points = RandomPoints(100, 3);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  EXPECT_EQ(f.tree.Validate(), "");
  const QuadTreeStats stats = f.tree.ComputeStats();
  EXPECT_GT(stats.directory_pages, 0u);
  EXPECT_EQ(stats.point_count, 100u);
}

class QuadTreePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, size_t, uint32_t>> {};

TEST_P(QuadTreePropertyTest, WindowQueriesMatchBruteForce) {
  const auto [seed, count, bucket] = GetParam();
  QuadTreeConfig config;
  config.bucket_capacity = bucket;
  Fixture f(config);
  const auto points = RandomPoints(count, seed);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  ASSERT_EQ(f.tree.Validate(), "");
  Rng rng(seed ^ 0x77);
  for (int q = 0; q < 40; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.3);
    EXPECT_EQ(Ids(f.tree.WindowQuery(window, f.ctx)),
              BruteForce(points, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuadTreePropertyTest,
                         ::testing::Values(std::tuple{1ull, size_t{300}, 4u},
                                           std::tuple{2ull, size_t{1000}, 8u},
                                           std::tuple{3ull, size_t{5000},
                                                      64u}));

TEST(QuadTreeTest, DuplicatePositionsChainAtMaxDepth) {
  QuadTreeConfig config;
  config.bucket_capacity = 4;
  config.max_depth = 3;
  Fixture f(config);
  for (uint64_t id = 1; id <= 50; ++id) {
    f.tree.Insert({0.51, 0.51}, id, f.ctx);
  }
  EXPECT_EQ(f.tree.size(), 50u);
  EXPECT_EQ(f.tree.Validate(), "");
  const auto hits = f.tree.WindowQuery(Rect(0.5, 0.5, 0.52, 0.52), f.ctx);
  EXPECT_EQ(hits.size(), 50u);
  const QuadTreeStats stats = f.tree.ComputeStats();
  EXPECT_LE(stats.max_depth_used, 3u);
}

TEST(QuadTreeTest, DeleteRemovesExactRecord) {
  Fixture f;
  auto points = RandomPoints(800, 9);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  EXPECT_TRUE(f.tree.Delete(points[300].first, points[300].second, f.ctx));
  EXPECT_FALSE(f.tree.Delete(points[300].first, points[300].second, f.ctx));
  EXPECT_EQ(f.tree.size(), 799u);
  EXPECT_EQ(f.tree.Validate(), "");
  points.erase(points.begin() + 300);
  Rng rng(2);
  for (int q = 0; q < 20; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.3);
    EXPECT_EQ(Ids(f.tree.WindowQuery(window, f.ctx)),
              BruteForce(points, window));
  }
}

TEST(QuadTreeTest, DeleteFromOverflowChain) {
  QuadTreeConfig config;
  config.bucket_capacity = 4;
  config.max_depth = 2;
  Fixture f(config);
  for (uint64_t id = 1; id <= 30; ++id) {
    f.tree.Insert({0.9, 0.9}, id, f.ctx);
  }
  EXPECT_TRUE(f.tree.Delete({0.9, 0.9}, 25, f.ctx));
  EXPECT_EQ(f.tree.size(), 29u);
  EXPECT_EQ(f.tree.Validate(), "");
  EXPECT_FALSE(
      Ids(f.tree.WindowQuery(Rect(0.89, 0.89, 0.91, 0.91), f.ctx))
          .contains(25));
}

TEST(QuadTreeTest, PersistAndReopen) {
  DiskManager disk;
  storage::PageId meta;
  const auto points = RandomPoints(2000, 21);
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    QuadTree tree(&disk, &buffer);
    for (const auto& [p, id] : points) {
      tree.Insert(p, id, AccessContext{1});
    }
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  BufferManager fresh(&disk, 64, std::make_unique<core::LruPolicy>());
  const QuadTree reopened = QuadTree::Open(&disk, &fresh, meta);
  EXPECT_EQ(reopened.size(), 2000u);
  EXPECT_EQ(reopened.Validate(), "");
  Rng rng(8);
  for (int q = 0; q < 15; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.25);
    EXPECT_EQ(Ids(reopened.WindowQuery(window, AccessContext{2})),
              BruteForce(points, window));
  }
}

TEST(QuadTreeTest, PagesCarryCellMbrsForThePolicies) {
  // The quadtree's defining property for spatial replacement: page MBR =
  // quadrant cell, so dense regions have geometrically smaller pages.
  DiskManager disk;
  storage::PageId meta;
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    QuadTreeConfig config;
    config.bucket_capacity = 8;
    QuadTree tree(&disk, &buffer, config);
    Rng rng(5);
    uint64_t id = 0;
    // Dense cluster + sparse background.
    for (int i = 0; i < 800; ++i) {
      tree.Insert({0.5 + rng.NextDouble() * 0.01,
                   0.5 + rng.NextDouble() * 0.01},
                  ++id, AccessContext{1});
    }
    for (int i = 0; i < 50; ++i) {
      tree.Insert({rng.NextDouble(), rng.NextDouble()}, ++id,
                  AccessContext{1});
    }
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  double min_area = 1.0, max_area = 0.0;
  for (storage::PageId id = 0; id < disk.page_count(); ++id) {
    const storage::PageMeta page_meta = disk.PeekMeta(id);
    if (page_meta.type != storage::PageType::kData) continue;
    const double area = page_meta.mbr.Area();
    min_area = std::min(min_area, area);
    max_area = std::max(max_area, area);
  }
  EXPECT_LT(min_area, max_area / 100)
      << "hot-cluster cells must be much smaller than background cells";

  // A spatial policy runs on the quadtree and returns correct results.
  BufferManager spatial_buffer(&disk, 12, core::CreatePolicy("A"));
  const QuadTree tree = QuadTree::Open(&disk, &spatial_buffer, meta);
  EXPECT_GE(tree.WindowQuery(Rect(0.5, 0.5, 0.512, 0.512),
                             AccessContext{3})
                .size(),
            800u);
}

TEST(QuadTreeTest, QueryResultsAreInvariantUnderThePolicy) {
  DiskManager disk;
  storage::PageId meta;
  const auto points = RandomPoints(3000, 61);
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    QuadTree tree(&disk, &buffer);
    for (const auto& [p, id] : points) tree.Insert(p, id, AccessContext{1});
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  Rng rng(6);
  std::vector<Rect> windows;
  for (int q = 0; q < 10; ++q) {
    windows.push_back(test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2));
  }
  std::set<uint64_t> reference;
  for (const char* policy : {"LRU", "LRU-2", "A", "ASB", "2Q", "GCLOCK"}) {
    BufferManager buffer(&disk, 16, core::CreatePolicy(policy));
    const QuadTree tree = QuadTree::Open(&disk, &buffer, meta);
    std::set<uint64_t> found;
    uint64_t query_id = 0;
    for (const Rect& window : windows) {
      for (const QuadPoint& p :
           tree.WindowQuery(window, AccessContext{++query_id})) {
        found.insert(p.id);
      }
    }
    if (reference.empty()) reference = found;
    EXPECT_EQ(found, reference) << policy;
  }
}

TEST(QuadTreeDeathTest, RejectsPointsOutsideTheUnitSquare) {
  Fixture f;
  EXPECT_DEATH(f.tree.Insert({1.5, 0.5}, 1, f.ctx), "unit square");
}

}  // namespace
}  // namespace sdb::quadtree
