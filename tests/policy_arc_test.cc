#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_arc.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StagePage;
using test::Touch;

class ArcTest : public ::testing::Test {
 protected:
  ArcPolicy* MakeBuffer(size_t frames) {
    auto owner = std::make_unique<ArcPolicy>();
    ArcPolicy* policy = owner.get();
    buffer_ = std::make_unique<BufferManager>(&disk_, frames,
                                              std::move(owner));
    return policy;
  }

  PageId Page() {
    return StagePage(disk_, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  }

  DiskManager disk_;
  std::unique_ptr<BufferManager> buffer_;
};

TEST_F(ArcTest, FreshPagesEnterT1) {
  ArcPolicy* policy = MakeBuffer(4);
  Touch(*buffer_, Page(), 1);
  Touch(*buffer_, Page(), 2);
  EXPECT_EQ(policy->t1_size(), 2u);
  EXPECT_EQ(policy->t2_size(), 0u);
}

TEST_F(ArcTest, RereferenceMovesToT2) {
  ArcPolicy* policy = MakeBuffer(4);
  const PageId p = Page();
  Touch(*buffer_, p, 1);
  Touch(*buffer_, p, 2);
  EXPECT_EQ(policy->t1_size(), 0u);
  EXPECT_EQ(policy->t2_size(), 1u);
}

TEST_F(ArcTest, OneTimersChurnThroughT1) {
  // A T2-resident page survives a scan of one-timers (ARC's raison d'etre).
  MakeBuffer(3);
  const PageId hot = Page();
  Touch(*buffer_, hot, 1);
  Touch(*buffer_, hot, 2);  // -> T2
  for (int i = 0; i < 10; ++i) {
    Touch(*buffer_, Page(), static_cast<uint64_t>(10 + i));
  }
  EXPECT_TRUE(buffer_->Contains(hot));
}

TEST_F(ArcTest, EvictedT1PagesBecomeB1Ghosts) {
  // Note: with T2 empty and T1 filling the whole cache, canonical ARC
  // evicts WITHOUT leaving a ghost (|T1| == c case); a ghost survives only
  // while |T1| + |B1| <= c. Keep some frequency traffic in T2.
  ArcPolicy* policy = MakeBuffer(4);
  const PageId hot = Page();
  Touch(*buffer_, hot, 1);
  Touch(*buffer_, hot, 2);  // hot -> T2
  const PageId p = Page();
  Touch(*buffer_, p, 3);
  Touch(*buffer_, Page(), 4);
  Touch(*buffer_, Page(), 5);
  Touch(*buffer_, Page(), 6);  // evicts p (T1 LRU)
  ASSERT_FALSE(buffer_->Contains(p));
  EXPECT_GE(policy->ghost_size(), 1u);
}

TEST_F(ArcTest, FullT1LeavesNoGhostAtTinyCache) {
  // The |T1| == c corner of Case IV: the whole cache is one-timers, so the
  // eviction is ghost-free.
  ArcPolicy* policy = MakeBuffer(2);
  Touch(*buffer_, Page(), 1);
  Touch(*buffer_, Page(), 2);
  Touch(*buffer_, Page(), 3);
  EXPECT_EQ(policy->ghost_size(), 0u);
}

TEST_F(ArcTest, B1GhostHitGrowsTheRecencyTarget) {
  ArcPolicy* policy = MakeBuffer(4);
  const PageId hot = Page();
  Touch(*buffer_, hot, 1);
  Touch(*buffer_, hot, 2);     // keep T2 nonempty
  const PageId p = Page();
  Touch(*buffer_, p, 3);
  Touch(*buffer_, Page(), 4);
  Touch(*buffer_, Page(), 5);
  Touch(*buffer_, Page(), 6);  // p -> B1
  ASSERT_FALSE(buffer_->Contains(p));
  const size_t before = policy->target_t1();
  const size_t t2_before = policy->t2_size();
  Touch(*buffer_, p, 7);       // ghost hit in B1
  EXPECT_GT(policy->target_t1(), before);
  EXPECT_TRUE(buffer_->Contains(p));
  // A B1 refault is admitted directly into T2.
  EXPECT_EQ(policy->t2_size(), t2_before + 1);
}

TEST_F(ArcTest, B2GhostHitShrinksTheRecencyTarget) {
  ArcPolicy* policy = MakeBuffer(2);
  const PageId p = Page();
  // Get p into T2, then evict it into B2.
  Touch(*buffer_, p, 1);
  Touch(*buffer_, p, 2);       // T2
  Touch(*buffer_, Page(), 3);  // T1 gains one
  // Raise the target so T1 is preferred... simpler: churn until p falls out.
  for (int i = 0; i < 6; ++i) {
    const PageId q = Page();
    Touch(*buffer_, q, static_cast<uint64_t>(10 + 2 * i));
    Touch(*buffer_, q, static_cast<uint64_t>(11 + 2 * i));  // fill T2
  }
  ASSERT_FALSE(buffer_->Contains(p));
  // Grow the target first so the shrink is observable.
  const size_t grown = policy->target_t1();
  Touch(*buffer_, p, 100);  // if p is still remembered in B2 -> shrink
  EXPECT_LE(policy->target_t1(), grown);
}

TEST_F(ArcTest, GhostDirectoryIsBounded) {
  ArcPolicy* policy = MakeBuffer(8);
  for (int i = 0; i < 200; ++i) {
    Touch(*buffer_, Page(), static_cast<uint64_t>(i + 1));
  }
  // |B1| + |B2| can never exceed 2c (minus residents).
  EXPECT_LE(policy->ghost_size(), 16u);
}

TEST_F(ArcTest, AdaptsTargetUpwardUnderRecencyTraffic) {
  // Recency-heavy traffic over a working set slightly larger than the
  // recency share of the buffer — with some frequency traffic keeping T2
  // alive — produces B1 hits and pushes the target p toward recency.
  ArcPolicy* policy = MakeBuffer(6);
  const PageId hot1 = Page(), hot2 = Page();
  Touch(*buffer_, hot1, 1);
  Touch(*buffer_, hot1, 2);
  Touch(*buffer_, hot2, 3);
  Touch(*buffer_, hot2, 4);  // T2 = {hot1, hot2}
  std::vector<PageId> loop;
  for (int i = 0; i < 6; ++i) loop.push_back(Page());
  uint64_t q = 4;
  for (int round = 0; round < 5; ++round) {
    for (const PageId page : loop) {
      Touch(*buffer_, page, ++q);
    }
  }
  EXPECT_GT(policy->target_t1(), 0u);
}

TEST_F(ArcTest, PinnedPagesAreSkipped) {
  MakeBuffer(3);
  const PageId pinned_id = Page();
  const AccessContext ctx{1};
  PageHandle pinned = buffer_->FetchOrDie(pinned_id, ctx);
  for (int i = 0; i < 10; ++i) {
    Touch(*buffer_, Page(), static_cast<uint64_t>(i + 2));
  }
  EXPECT_TRUE(buffer_->Contains(pinned_id));
  pinned.Release();
}

}  // namespace
}  // namespace sdb::core
