#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_clock.h"
#include "core/policy_fifo.h"
#include "core/policy_lru.h"
#include "core/policy_lru_priority.h"
#include "core/policy_lru_type.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageMeta;
using storage::PageType;
using test::StagePage;
using test::Touch;

// --- LRU -------------------------------------------------------------------

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  DiskManager disk;
  std::vector<PageId> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back(StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 3, std::make_unique<LruPolicy>());
  Touch(buffer, p[0], 1);
  Touch(buffer, p[1], 2);
  Touch(buffer, p[2], 3);
  Touch(buffer, p[0], 4);       // p[1] is now the LRU page
  Touch(buffer, p[3], 5);       // evicts p[1]
  EXPECT_TRUE(buffer.Contains(p[0]));
  EXPECT_FALSE(buffer.Contains(p[1]));
  EXPECT_TRUE(buffer.Contains(p[2]));
  EXPECT_TRUE(buffer.Contains(p[3]));
}

TEST(LruPolicyTest, RepeatedAccessKeepsPageResident) {
  DiskManager disk;
  std::vector<PageId> p;
  for (int i = 0; i < 10; ++i) {
    p.push_back(StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 2, std::make_unique<LruPolicy>());
  Touch(buffer, p[0], 1);
  for (int i = 1; i < 10; ++i) {
    Touch(buffer, p[0], static_cast<uint64_t>(2 * i));      // keep p0 hot
    Touch(buffer, p[i], static_cast<uint64_t>(2 * i + 1));  // churn the rest
  }
  EXPECT_TRUE(buffer.Contains(p[0]));
}

// --- FIFO ------------------------------------------------------------------

TEST(FifoPolicyTest, EvictsOldestResidentRegardlessOfAccess) {
  DiskManager disk;
  std::vector<PageId> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back(StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 3, std::make_unique<FifoPolicy>());
  Touch(buffer, p[0], 1);
  Touch(buffer, p[1], 2);
  Touch(buffer, p[2], 3);
  Touch(buffer, p[0], 4);  // recency must NOT save p[0] under FIFO
  Touch(buffer, p[3], 5);  // evicts p[0], the first in
  EXPECT_FALSE(buffer.Contains(p[0]));
  EXPECT_TRUE(buffer.Contains(p[1]));
}

// --- CLOCK -----------------------------------------------------------------

TEST(ClockPolicyTest, SecondChanceForReferencedPage) {
  DiskManager disk;
  std::vector<PageId> p;
  for (int i = 0; i < 5; ++i) {
    p.push_back(StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 3, std::make_unique<ClockPolicy>());
  Touch(buffer, p[0], 1);
  Touch(buffer, p[1], 2);
  Touch(buffer, p[2], 3);
  // All bits set: this eviction sweeps once (clearing every bit) and takes
  // frame 0 (p[0]).
  Touch(buffer, p[3], 4);
  EXPECT_FALSE(buffer.Contains(p[0]));
  // p[1] gets its bit set again; the next eviction must skip it (second
  // chance) and take p[2], whose bit is still clear.
  Touch(buffer, p[1], 5);
  Touch(buffer, p[4], 6);
  EXPECT_TRUE(buffer.Contains(p[1]));
  EXPECT_FALSE(buffer.Contains(p[2]));
}

TEST(ClockPolicyTest, SweepsAllFramesEventually) {
  DiskManager disk;
  std::vector<PageId> p;
  for (int i = 0; i < 8; ++i) {
    p.push_back(StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 2, std::make_unique<ClockPolicy>());
  for (int i = 0; i < 8; ++i) {
    Touch(buffer, p[i], static_cast<uint64_t>(i + 1));
  }
  // Exactly the last two pages are resident.
  EXPECT_TRUE(buffer.Contains(p[7]));
  EXPECT_TRUE(buffer.Contains(p[6]));
  EXPECT_EQ(buffer.resident_count(), 2u);
}

// --- LRU-T -----------------------------------------------------------------

TEST(LruTypePolicyTest, CategoryRankOrder) {
  EXPECT_LT(LruTypePolicy::CategoryRank(PageType::kObject),
            LruTypePolicy::CategoryRank(PageType::kData));
  EXPECT_LT(LruTypePolicy::CategoryRank(PageType::kData),
            LruTypePolicy::CategoryRank(PageType::kDirectory));
}

TEST(LruTypePolicyTest, DropsObjectPagesFirst) {
  DiskManager disk;
  const PageId directory =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  const PageId data =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  const PageId object =
      StagePage(disk, PageType::kObject, 0, geom::Rect(0, 0, 1, 1));
  const PageId extra =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));

  BufferManager buffer(&disk, 3, std::make_unique<LruTypePolicy>());
  Touch(buffer, object, 1);
  Touch(buffer, data, 2);
  Touch(buffer, directory, 3);
  // The object page was referenced least recently anyway, but even a recent
  // reference must not save it from its category.
  Touch(buffer, object, 4);
  Touch(buffer, extra, 5);  // object page must fall first
  EXPECT_FALSE(buffer.Contains(object));
  EXPECT_TRUE(buffer.Contains(data));
  EXPECT_TRUE(buffer.Contains(directory));
}

TEST(LruTypePolicyTest, DataFallsBeforeDirectory) {
  DiskManager disk;
  const PageId directory =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  const PageId data =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  const PageId extra =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  BufferManager buffer(&disk, 2, std::make_unique<LruTypePolicy>());
  Touch(buffer, directory, 1);
  Touch(buffer, data, 2);
  Touch(buffer, extra, 3);
  EXPECT_FALSE(buffer.Contains(data));
  EXPECT_TRUE(buffer.Contains(directory));
}

TEST(LruTypePolicyTest, LruWithinCategory) {
  DiskManager disk;
  std::vector<PageId> data;
  for (int i = 0; i < 3; ++i) {
    data.push_back(
        StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 2, std::make_unique<LruTypePolicy>());
  Touch(buffer, data[0], 1);
  Touch(buffer, data[1], 2);
  Touch(buffer, data[0], 3);
  Touch(buffer, data[2], 4);  // same category: LRU evicts data[1]
  EXPECT_TRUE(buffer.Contains(data[0]));
  EXPECT_FALSE(buffer.Contains(data[1]));
}

// --- LRU-P -----------------------------------------------------------------

TEST(LruPriorityPolicyTest, PriorityAssignment) {
  PageMeta meta;
  meta.type = PageType::kObject;
  meta.level = 0;
  EXPECT_EQ(LruPriorityPolicy::Priority(meta), 0);
  meta.type = PageType::kData;
  EXPECT_EQ(LruPriorityPolicy::Priority(meta), 1);
  meta.type = PageType::kDirectory;
  meta.level = 1;
  EXPECT_EQ(LruPriorityPolicy::Priority(meta), 2);
  meta.level = 3;
  EXPECT_EQ(LruPriorityPolicy::Priority(meta), 4);
}

TEST(LruPriorityPolicyTest, HigherTreeLevelsSurviveLonger) {
  DiskManager disk;
  const PageId root =
      StagePage(disk, PageType::kDirectory, 3, geom::Rect(0, 0, 1, 1));
  const PageId mid =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  const PageId low =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  const PageId leaf =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  const PageId extra1 =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  const PageId extra2 =
      StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));

  BufferManager buffer(&disk, 4, std::make_unique<LruPriorityPolicy>());
  Touch(buffer, root, 1);
  Touch(buffer, mid, 2);
  Touch(buffer, low, 3);
  Touch(buffer, leaf, 4);
  Touch(buffer, extra1, 5);  // evicts leaf (priority 1, LRU among those)
  EXPECT_FALSE(buffer.Contains(leaf));
  Touch(buffer, extra2, 6);  // evicts extra1 (the remaining priority-1 page)
  EXPECT_FALSE(buffer.Contains(extra1));
  EXPECT_TRUE(buffer.Contains(root));
  EXPECT_TRUE(buffer.Contains(mid));
  EXPECT_TRUE(buffer.Contains(low));
}

TEST(LruPriorityPolicyTest, EvictsDirectoryWhenOnlyDirectoriesRemain) {
  DiskManager disk;
  const PageId deep =
      StagePage(disk, PageType::kDirectory, 3, geom::Rect(0, 0, 1, 1));
  const PageId shallow =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  const PageId extra =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  BufferManager buffer(&disk, 2, std::make_unique<LruPriorityPolicy>());
  Touch(buffer, deep, 1);
  Touch(buffer, shallow, 2);
  Touch(buffer, extra, 3);  // lowest level (1) goes first
  EXPECT_FALSE(buffer.Contains(shallow));
  EXPECT_TRUE(buffer.Contains(deep));
}

}  // namespace
}  // namespace sdb::core
