#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/scenario.h"
#include "svc/buffer_service.h"
#include "svc/session_executor.h"
#include "workload/session_generator.h"

namespace sdb::svc {
namespace {

class SessionExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioOptions options;
    options.kind = sim::DatabaseKind::kUsLike;
    options.build = sim::BuildMode::kBulkLoad;
    options.scale = 0.02;
    scenario_ = new sim::Scenario(sim::BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  /// A batch of short browsing sessions with distinct seeds.
  static std::vector<workload::QuerySet> Sessions(size_t count) {
    std::vector<workload::QuerySet> sessions;
    for (size_t i = 0; i < count; ++i) {
      workload::SessionParams params;
      params.steps = 60;
      params.seed = 100 + i;
      sessions.push_back(
          workload::MakeSessionQuerySet(params, scenario_->places));
    }
    return sessions;
  }

  /// Runs `sessions` through a fresh service with `workers` workers and
  /// returns (results, per-shard request counts).
  static std::pair<std::vector<SessionResult>, std::vector<uint64_t>> Run(
      const std::vector<workload::QuerySet>& sessions, size_t workers,
      size_t shards) {
    BufferServiceConfig service_config;
    service_config.total_frames = 64;
    service_config.shard_count = shards;
    service_config.policy_spec = "ASB";
    BufferService service(*scenario_->disk, service_config);
    SessionExecutorConfig executor_config;
    executor_config.workers = workers;
    executor_config.queue_capacity = 4;
    SessionExecutor executor(scenario_->disk.get(), &service,
                             scenario_->tree_meta, executor_config);
    for (const workload::QuerySet& session : sessions) {
      executor.Submit(session);
    }
    std::vector<SessionResult> results = executor.Finish();
    std::vector<uint64_t> shard_requests;
    for (size_t s = 0; s < service.shard_count(); ++s) {
      shard_requests.push_back(service.StatsOfShard(s).buffer.requests);
    }
    // Cross-check: session access totals must equal what the service saw.
    uint64_t access_sum = 0;
    for (const SessionResult& result : results) {
      access_sum += result.page_accesses;
    }
    EXPECT_EQ(access_sum, service.AggregateStats().buffer.requests);
    return {std::move(results), std::move(shard_requests)};
  }

  static sim::Scenario* scenario_;
};

sim::Scenario* SessionExecutorTest::scenario_ = nullptr;

// The determinism contract: per-session results and per-shard request
// counts are identical for ANY worker count (the paper-facing numbers a
// concurrent harness must not perturb).
TEST_F(SessionExecutorTest, ResultsIdenticalAcrossWorkerCounts) {
  const std::vector<workload::QuerySet> sessions = Sessions(8);
  const auto [serial, serial_shards] = Run(sessions, /*workers=*/1,
                                           /*shards=*/4);
  const auto [parallel, parallel_shards] = Run(sessions, /*workers=*/4,
                                               /*shards=*/4);
  ASSERT_EQ(serial.size(), sessions.size());
  ASSERT_EQ(parallel.size(), sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(serial[i].index, i);
    EXPECT_EQ(parallel[i].index, i);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].queries, sessions[i].queries.size());
    EXPECT_EQ(serial[i].result_objects, parallel[i].result_objects)
        << "session " << i << ": result set depends on scheduling";
    EXPECT_EQ(serial[i].page_accesses, parallel[i].page_accesses)
        << "session " << i << ": access count depends on scheduling";
    EXPECT_GT(serial[i].page_accesses, 0u);
  }
  EXPECT_EQ(serial_shards, parallel_shards)
      << "page→shard routing is fixed, so per-shard request counts must "
         "not depend on the worker count";
}

TEST_F(SessionExecutorTest, ShardCountDoesNotChangeSessionResults) {
  const std::vector<workload::QuerySet> sessions = Sessions(4);
  const auto [one_shard, unused1] = Run(sessions, /*workers=*/2,
                                        /*shards=*/1);
  const auto [many_shards, unused2] = Run(sessions, /*workers=*/2,
                                          /*shards=*/8);
  for (size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(one_shard[i].result_objects, many_shards[i].result_objects);
    EXPECT_EQ(one_shard[i].page_accesses, many_shards[i].page_accesses);
  }
}

TEST_F(SessionExecutorTest, BackpressureBoundsTheQueue) {
  const std::vector<workload::QuerySet> sessions = Sessions(10);
  BufferServiceConfig service_config;
  service_config.total_frames = 32;
  service_config.shard_count = 2;
  BufferService service(*scenario_->disk, service_config);
  SessionExecutorConfig executor_config;
  executor_config.workers = 1;  // one slow consumer
  executor_config.queue_capacity = 2;
  SessionExecutor executor(scenario_->disk.get(), &service,
                           scenario_->tree_meta, executor_config);
  for (const workload::QuerySet& session : sessions) {
    executor.Submit(session);
  }
  const std::vector<SessionResult> results = executor.Finish();
  EXPECT_EQ(results.size(), sessions.size());
  const SessionExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.sessions, sessions.size());
  EXPECT_LE(stats.max_queue_depth, executor_config.queue_capacity)
      << "Submit must block instead of growing the queue";
  EXPECT_GT(stats.backpressure_waits, 0u)
      << "10 sessions through a 2-deep queue with one worker must block";
}

TEST_F(SessionExecutorTest, FinishIsIdempotent) {
  BufferServiceConfig service_config;
  service_config.total_frames = 16;
  service_config.shard_count = 2;
  BufferService service(*scenario_->disk, service_config);
  SessionExecutor executor(scenario_->disk.get(), &service,
                           scenario_->tree_meta);
  for (const workload::QuerySet& session : Sessions(2)) {
    executor.Submit(session);
  }
  const std::vector<SessionResult> first = executor.Finish();
  const std::vector<SessionResult> second = executor.Finish();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), first.size());
  EXPECT_EQ(second[0].page_accesses, first[0].page_accesses);
}

// The paper's Sec. 4.2 clamp under adaptation races: while parallel workers
// drive shared-ASB adaptation, a sampler thread observes the published
// candidate-set size — it must never leave [1, min main capacity].
TEST_F(SessionExecutorTest, SharedCandidateStaysClampedUnderRaces) {
  const std::vector<workload::QuerySet> sessions = Sessions(8);
  BufferServiceConfig service_config;
  service_config.total_frames = 48;
  service_config.shard_count = 4;
  service_config.policy_spec = "ASB";
  service_config.share_asb_tuning = true;
  BufferService service(*scenario_->disk, service_config);
  ASSERT_NE(service.shared_tuning(), nullptr);
  const int64_t max_candidate = service.shared_tuning()->max_candidate();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> samples{0};
  std::atomic<bool> violated{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const size_t c = service.shared_candidate();
      if (c < 1 || c > static_cast<size_t>(max_candidate)) {
        violated.store(true, std::memory_order_release);
      }
      samples.fetch_add(1, std::memory_order_relaxed);
    }
  });

  {
    SessionExecutorConfig executor_config;
    executor_config.workers = 4;
    SessionExecutor executor(scenario_->disk.get(), &service,
                             scenario_->tree_meta, executor_config);
    for (const workload::QuerySet& session : sessions) {
      executor.Submit(session);
    }
    executor.Finish();
  }
  done.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_FALSE(violated.load()) << "published c left the Sec. 4.2 clamps";
  EXPECT_GT(samples.load(), 0u);
  const size_t final_c = service.shared_candidate();
  EXPECT_GE(final_c, 1u);
  EXPECT_LE(final_c, static_cast<size_t>(max_candidate));
}

}  // namespace
}  // namespace sdb::svc
