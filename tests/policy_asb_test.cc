#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_asb.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using test::StageAreaPage;
using test::Touch;

/// Fixture with helpers to build an ASB buffer over pages of chosen areas.
class AsbTest : public ::testing::Test {
 protected:
  /// Creates the buffer; returns the raw policy pointer for inspection.
  AsbPolicy* MakeBuffer(size_t frames, const AsbConfig& config) {
    auto policy_owner = std::make_unique<AsbPolicy>(config);
    AsbPolicy* policy = policy_owner.get();
    buffer_ =
        std::make_unique<BufferManager>(&disk_, frames,
                                        std::move(policy_owner));
    return policy;
  }

  PageId Page(double area) { return StageAreaPage(disk_, area); }

  void TouchAt(PageId page, uint64_t t) { Touch(*buffer_, page, t); }

  DiskManager disk_;
  std::unique_ptr<BufferManager> buffer_;
};

TEST_F(AsbTest, DefaultConfigMatchesPaper) {
  const AsbConfig config;
  EXPECT_EQ(config.criterion, SpatialCriterion::kArea);
  EXPECT_DOUBLE_EQ(config.overflow_fraction, 0.20);
  EXPECT_DOUBLE_EQ(config.initial_candidate_fraction, 0.25);
  EXPECT_DOUBLE_EQ(config.step_fraction, 0.01);
}

TEST_F(AsbTest, SectionCapacitiesFollowConfig) {
  AsbConfig config;
  config.overflow_fraction = 0.2;
  AsbPolicy* policy = MakeBuffer(100, config);
  EXPECT_EQ(policy->overflow_capacity(), 20u);
  EXPECT_EQ(policy->main_capacity(), 80u);
  EXPECT_EQ(policy->candidate_size(), 20u);  // 25% of the main section
  EXPECT_EQ(policy->step(), 1u);             // 1% of the main section
  EXPECT_EQ(policy->name(), "ASB");
}

TEST_F(AsbTest, TinyBufferStillHasBothSections) {
  AsbPolicy* policy = MakeBuffer(2, AsbConfig{});
  EXPECT_EQ(policy->overflow_capacity(), 1u);
  EXPECT_EQ(policy->main_capacity(), 1u);
  EXPECT_GE(policy->candidate_size(), 1u);
}

TEST_F(AsbTest, DemotionFillsOverflowFifo) {
  AsbConfig config;
  config.overflow_fraction = 0.4;            // 2 of 5 frames
  config.initial_candidate_fraction = 0.2;   // candidate set = 1 -> LRU
  config.step_fraction = 0.34;
  AsbPolicy* policy = MakeBuffer(5, config);
  ASSERT_EQ(policy->main_capacity(), 3u);

  TouchAt(Page(1), 1);
  TouchAt(Page(2), 2);
  TouchAt(Page(3), 3);
  EXPECT_EQ(policy->overflow_size(), 0u);
  TouchAt(Page(4), 4);  // main over capacity -> one page demoted
  EXPECT_EQ(policy->overflow_size(), 1u);
  TouchAt(Page(5), 5);
  EXPECT_EQ(policy->overflow_size(), 2u);
}

TEST_F(AsbTest, EvictionTakesTheOverflowFifoHead) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 0.2;  // LRU demotion
  config.step_fraction = 0.34;
  MakeBuffer(5, config);

  const PageId first = Page(1);
  const PageId second = Page(2);
  TouchAt(first, 1);
  TouchAt(second, 2);
  TouchAt(Page(3), 3);
  TouchAt(Page(4), 4);  // demotes `first` (LRU)
  TouchAt(Page(5), 5);  // demotes `second`
  // Buffer is full; the next miss evicts the FIFO head = `first`.
  TouchAt(Page(6), 6);
  EXPECT_FALSE(buffer_->Contains(first));
  EXPECT_TRUE(buffer_->Contains(second));
}

TEST_F(AsbTest, OverflowHitIsABufferHitNotADiskRead) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 0.2;
  config.step_fraction = 0.34;
  AsbPolicy* policy = MakeBuffer(5, config);

  const PageId first = Page(1);
  TouchAt(first, 1);
  TouchAt(Page(2), 2);
  TouchAt(Page(3), 3);
  TouchAt(Page(4), 4);  // demotes `first` into the overflow section
  const uint64_t reads_before = disk_.stats().reads;
  TouchAt(first, 5);  // overflow hit
  EXPECT_EQ(disk_.stats().reads, reads_before)
      << "an overflow page is still resident";
  EXPECT_EQ(policy->overflow_hits(), 1u);
  EXPECT_EQ(buffer_->stats().hits, 1u);
}

TEST_F(AsbTest, SpatialMisjudgementShrinksTheCandidateSet) {
  // Paper case 1: more overflow pages beat the re-referenced page p under
  // the spatial criterion than under LRU -> LRU judged better -> c shrinks.
  AsbConfig config;
  config.overflow_fraction = 0.4;            // overflow 2, main 3
  config.initial_candidate_fraction = 1.0;   // demotion = pure spatial
  config.step_fraction = 0.34;               // step 1
  AsbPolicy* policy = MakeBuffer(5, config);
  ASSERT_EQ(policy->candidate_size(), 3u);

  const PageId big = Page(10);
  const PageId x = Page(5);
  const PageId y = Page(6);
  const PageId p = Page(1);
  const PageId z = Page(7);
  TouchAt(big, 1);
  TouchAt(x, 2);
  TouchAt(y, 3);
  TouchAt(p, 4);  // spatial demotion throws out p itself (smallest area)
  TouchAt(z, 5);  // spatial demotion: x (area 5) joins the overflow
  // Overflow now holds p (area 1, t4) and x (area 5, t2). Re-referencing p:
  // x beats p spatially (1 page) but not under LRU (0 pages) -> decrease.
  TouchAt(p, 6);
  EXPECT_EQ(policy->candidate_size(), 2u);
  EXPECT_EQ(policy->candidate_decreases(), 1u);
  EXPECT_EQ(policy->candidate_increases(), 0u);
}

TEST_F(AsbTest, LruMisjudgementGrowsTheCandidateSet) {
  // Paper case 2: fewer overflow pages beat p spatially than under LRU ->
  // the spatial criterion would have kept p -> c grows.
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 0.2;  // candidate set 1 -> LRU demotion
  config.step_fraction = 0.34;
  AsbPolicy* policy = MakeBuffer(5, config);
  ASSERT_EQ(policy->candidate_size(), 1u);

  const PageId big = Page(10);
  const PageId small = Page(1);
  TouchAt(big, 1);
  TouchAt(small, 2);
  TouchAt(Page(6), 3);
  TouchAt(Page(7), 4);  // LRU demotion: big (t1) into overflow
  TouchAt(Page(8), 5);  // LRU demotion: small (t2) into overflow
  // Overflow: big (area 10, t1), small (area 1, t2). Re-reference big:
  // small beats it under LRU (newer) but not spatially -> increase.
  TouchAt(big, 6);
  EXPECT_EQ(policy->candidate_size(), 2u);
  EXPECT_EQ(policy->candidate_increases(), 1u);
  EXPECT_EQ(policy->candidate_decreases(), 0u);
}

TEST_F(AsbTest, BalancedEvidenceLeavesTheCandidateSetUnchanged) {
  // Paper case 3: equal counts -> no change. Constructed so the other
  // overflow page is both newer AND spatially larger.
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 0.2;  // LRU demotion
  config.step_fraction = 0.34;
  AsbPolicy* policy = MakeBuffer(5, config);

  const PageId p = Page(1);   // small, demoted first
  const PageId q = Page(9);   // big, demoted second
  TouchAt(p, 1);
  TouchAt(q, 2);
  TouchAt(Page(5), 3);
  TouchAt(Page(6), 4);  // demotes p
  TouchAt(Page(7), 5);  // demotes q
  // Overflow: p (area 1, t1), q (area 9, t2). Re-reference p: q beats p
  // both spatially (1) and under LRU (1) -> unchanged.
  TouchAt(p, 6);
  EXPECT_EQ(policy->candidate_size(), 1u);
  EXPECT_EQ(policy->candidate_increases(), 0u);
  EXPECT_EQ(policy->candidate_decreases(), 0u);
  EXPECT_EQ(policy->overflow_hits(), 1u);
}

TEST_F(AsbTest, CandidateSizeNeverDropsBelowOne) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 1.0;  // spatial demotion, candidate 3
  config.step_fraction = 1.0;               // huge step: 3 at once
  AsbPolicy* policy = MakeBuffer(5, config);
  ASSERT_EQ(policy->candidate_size(), 3u);

  // Same shrink scenario as above; one decrease with step 3 must clamp at 1.
  const PageId p = Page(1);
  TouchAt(Page(10), 1);
  TouchAt(Page(5), 2);
  TouchAt(Page(6), 3);
  TouchAt(p, 4);
  TouchAt(Page(7), 5);
  TouchAt(p, 6);
  EXPECT_EQ(policy->candidate_size(), 1u);
}

TEST_F(AsbTest, CandidateSizeNeverExceedsMainCapacity) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 1.0;  // already at the maximum (3)
  config.step_fraction = 1.0;
  AsbPolicy* policy = MakeBuffer(5, config);

  // Grow scenario: the overflow ends up holding `big` (area 2, accessed at
  // t1) and `small` (area 1, accessed at t2). Re-referencing `big` then
  // finds one page that beats it under LRU but none that beats it
  // spatially -> increase, clamped at the main capacity.
  const PageId big = Page(2);
  const PageId small = Page(1);
  TouchAt(big, 1);
  TouchAt(small, 2);
  TouchAt(Page(5), 3);
  TouchAt(Page(6), 4);  // spatial demotion among LRU-3: small (area 1)
  TouchAt(Page(7), 5);  // spatial demotion among LRU-3: big (area 2)
  TouchAt(big, 6);
  EXPECT_EQ(policy->candidate_increases(), 1u);
  EXPECT_EQ(policy->candidate_size(), 3u);
}

TEST_F(AsbTest, PromotedPageLeavesTheFifo) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = 0.2;
  config.step_fraction = 0.34;
  AsbPolicy* policy = MakeBuffer(5, config);

  const PageId first = Page(1);
  const PageId second = Page(2);
  TouchAt(first, 1);
  TouchAt(second, 2);
  TouchAt(Page(3), 3);
  TouchAt(Page(4), 4);  // demotes first
  TouchAt(Page(5), 5);  // demotes second
  TouchAt(first, 6);    // promotes first back to main (demoting another)
  EXPECT_EQ(policy->overflow_size(), 2u);
  // The next eviction must take `second` (now the FIFO head), not `first`.
  TouchAt(Page(6), 7);
  EXPECT_TRUE(buffer_->Contains(first));
  EXPECT_FALSE(buffer_->Contains(second));
}

TEST_F(AsbTest, MemoryIsBoundedByTheBufferItself) {
  // Unlike LRU-K, ASB keeps no state for evicted pages: churn many pages
  // through a small buffer and verify the overflow section stays bounded.
  AsbConfig config;
  AsbPolicy* policy = MakeBuffer(10, config);
  for (int i = 0; i < 200; ++i) {
    TouchAt(Page(1.0 + i), static_cast<uint64_t>(i + 1));
  }
  EXPECT_LE(policy->overflow_size(), policy->overflow_capacity());
  EXPECT_EQ(buffer_->resident_count(), 10u);
}

TEST_F(AsbTest, PinnedPagesAreNeverEvicted) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  MakeBuffer(5, config);
  const PageId pinned_id = Page(0.5);  // spatially the weakest page
  const AccessContext ctx{1};
  PageHandle pinned = buffer_->FetchOrDie(pinned_id, ctx);
  for (int i = 0; i < 20; ++i) {
    TouchAt(Page(10.0 + i), static_cast<uint64_t>(i + 2));
  }
  EXPECT_TRUE(buffer_->Contains(pinned_id));
  pinned.Release();
}

}  // namespace
}  // namespace sdb::core
