// Write-path fault injection through the WAL: transient write and sync
// failures retried within the flush budget (fsyncgate-correct: every retry
// rewrites the whole block), terminal failures turning into a sticky error
// that every waiter observes — group-commit committers, EnsureDurable and
// AppendCheckpoint callers all wake with the error, never hang, and the log
// never claims an LSN durable past a failed sync.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace sdb::wal {
namespace {

using core::StatusCode;

std::vector<std::byte> MakeImage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

PageImageRef Ref(storage::PageId page, const std::vector<std::byte>& bytes) {
  return {page, {bytes.data(), bytes.size()}};
}

// ---------------------------------------------------------------------------
// Retry within the flush budget

TEST(WalWriteFaultTest, TransientWriteFaultsRetryAndCommitSucceeds) {
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.write_schedule.push_back(
      {0, storage::FaultKind::kWriteTransient});
  storage::FaultInjectingDevice device(log, profile);
  WalManager wal(&device);
  const auto image = MakeImage(log.page_size(), 0xAA);
  const core::StatusOr<Lsn> end =
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{1});
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_TRUE(wal.sticky_error().ok());
  EXPECT_GE(wal.stats().write_retries, 1u);
  EXPECT_EQ(wal.durable_lsn(), *end);
  EXPECT_EQ(device.fault_stats().write_transient_errors, 1u);
}

TEST(WalWriteFaultTest, FailedSyncRetriesRewriteTheWholeBlock) {
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.sync_schedule.push_back(0);  // first sync lies, second succeeds
  storage::FaultInjectingDevice device(log, profile);
  WalManager wal(&device);
  const auto image = MakeImage(log.page_size(), 0xBB);
  const core::StatusOr<Lsn> end =
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{1});
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(device.fault_stats().sync_failures, 1u);
  EXPECT_GE(wal.stats().write_retries, 1u);
  // The failed sync dropped the first attempt's pages (fsyncgate); only the
  // rewrite made them stick. Recovery must find the commit byte-exact.
  storage::DiskManager data;
  const core::StatusOr<RecoveryResult> recovered = Recover(log, data);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(data.page_count(), 1u);
  EXPECT_EQ(data.PeekPage(0)[0], std::byte{0xBB});
}

// ---------------------------------------------------------------------------
// Terminal failures: sticky error, no hangs, no durability lies

TEST(WalWriteFaultTest, ExhaustedRetriesTurnSticky) {
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.sync_failure_prob = 1.0;  // every sync fails, forever
  profile.seed = 3;
  storage::FaultInjectingDevice device(log, profile);
  WalOptions options;
  options.max_flush_retries = 2;
  WalManager wal(&device, options);
  const auto image = MakeImage(log.page_size(), 0xCC);
  const Lsn durable_before = wal.durable_lsn();
  const core::StatusOr<Lsn> end =
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{1});
  ASSERT_FALSE(end.ok());
  EXPECT_EQ(end.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(wal.sticky_error().ok());
  EXPECT_EQ(wal.durable_lsn(), durable_before)
      << "no LSN may be durable after a failed sync";
  // The appended bytes survive in the in-memory tail (restored by the
  // failed flush): nothing acknowledged was lost — nothing was acknowledged.
  EXPECT_GT(wal.next_lsn(), wal.durable_lsn());
  // Later calls fail fast with the same sticky error instead of re-running
  // the retry gauntlet.
  const core::StatusOr<Lsn> again =
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{2});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(wal.EnsureDurable(wal.next_lsn()).code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(wal.AppendCheckpoint(1, core::AccessContext{3}).ok());
  EXPECT_FALSE(wal.TruncateBelow(wal.next_lsn()).ok());
}

TEST(WalWriteFaultTest, FullLogDeviceIsTerminalNotRetryable) {
  storage::DiskManager log;
  log.set_page_capacity(2);  // room for one commit group, then disk full
  WalManager wal(&log);
  const auto image = MakeImage(log.page_size(), 0xDD);
  // The first commit group fits into the capacity; the second needs another
  // log page and hits the cap.
  ASSERT_TRUE(wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{1})
                  .ok());
  const core::StatusOr<Lsn> full =
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{2});
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(wal.sticky_error().code(), StatusCode::kResourceExhausted);
}

TEST(WalWriteFaultTest, GroupCommitWaitersAllWakeWithStickyError) {
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.sync_failure_prob = 1.0;
  profile.seed = 17;
  storage::FaultInjectingDevice device(log, profile);
  WalOptions options;
  options.group_commit = true;
  options.group_window_us = 1000;  // wide window: waiters pile up
  options.max_flush_retries = 1;
  WalManager wal(&device, options);

  constexpr int kCommitters = 8;
  std::atomic<int> failed{0};
  std::atomic<int> succeeded{0};
  {
    std::vector<std::jthread> committers;
    committers.reserve(kCommitters);
    for (int t = 0; t < kCommitters; ++t) {
      committers.emplace_back([&, t] {
        const auto image = MakeImage(log.page_size(),
                                     static_cast<uint8_t>(t));
        const core::StatusOr<Lsn> end = wal.CommitPages(
            {{Ref(0, image)}}, 1,
            core::AccessContext{static_cast<uint64_t>(t) + 1});
        (end.ok() ? succeeded : failed).fetch_add(1);
      });
    }
    // jthread join on scope exit: the test hangs here if any waiter is
    // never woken — that IS the regression this test guards against.
  }
  EXPECT_EQ(succeeded.load(), 0);
  EXPECT_EQ(failed.load(), kCommitters)
      << "every group-commit waiter must wake with the sticky error";
  EXPECT_FALSE(wal.sticky_error().ok());
  EXPECT_EQ(wal.durable_lsn(), 0u);
}

TEST(WalWriteFaultTest, EnsureDurableWakesWithErrorInGroupCommitMode) {
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.sync_failure_prob = 1.0;
  profile.seed = 29;
  storage::FaultInjectingDevice device(log, profile);
  WalOptions options;
  options.group_commit = true;
  options.max_flush_retries = 0;
  WalManager wal(&device, options);
  const auto image = MakeImage(log.page_size(), 0xEE);
  // The commit fails (sticky); a durability probe for its LSN must report
  // the error, not block and not claim success.
  ASSERT_FALSE(
      wal.CommitPages({{Ref(0, image)}}, 1, core::AccessContext{1}).ok());
  const core::Status durable = wal.EnsureDurable(wal.next_lsn());
  EXPECT_EQ(durable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(wal.durable_lsn(), 0u);
}

TEST(WalWriteFaultTest, StickyLogRecoversOnlyAcknowledgedCommits) {
  // The no-silent-loss contract, device-level: commits acknowledged before
  // the log went sticky are recovered byte-exact; the commit that failed is
  // absent — not torn, not half-applied.
  storage::DiskManager log;
  storage::FaultProfile profile;
  profile.sync_schedule.push_back(1);  // second sync fails...
  profile.sync_schedule.push_back(2);  // ...and every retry of it
  profile.sync_schedule.push_back(3);
  profile.sync_schedule.push_back(4);
  profile.sync_schedule.push_back(5);
  storage::FaultInjectingDevice device(log, profile);
  WalOptions options;
  options.max_flush_retries = 3;
  WalManager wal(&device, options);
  const auto first = MakeImage(log.page_size(), 0x01);
  const auto second = MakeImage(log.page_size(), 0x02);
  ASSERT_TRUE(wal.CommitPages({{Ref(0, first)}}, 1, core::AccessContext{1})
                  .ok());
  ASSERT_FALSE(wal.CommitPages({{Ref(0, second)}}, 1, core::AccessContext{2})
                   .ok());
  EXPECT_FALSE(wal.sticky_error().ok());

  storage::DiskManager data;
  const core::StatusOr<RecoveryResult> recovered = Recover(log, data);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(data.page_count(), 1u);
  EXPECT_EQ(data.PeekPage(0)[0], std::byte{0x01})
      << "the acknowledged commit survives; the failed one is absent";
}

}  // namespace
}  // namespace sdb::wal
