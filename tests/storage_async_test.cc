#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <iterator>
#include <memory>
#include <numeric>
#include <vector>

#include "storage/async_device.h"
#include "storage/disk_manager.h"
#include "storage/disk_view.h"

namespace sdb::storage {
namespace {

/// Disk with `n` pages whose first byte tags the page id.
std::unique_ptr<DiskManager> StageDisk(size_t n) {
  auto disk = std::make_unique<DiskManager>();
  std::vector<std::byte> image(disk->page_size(), std::byte{0});
  for (size_t i = 0; i < n; ++i) {
    image[0] = static_cast<std::byte>(i);
    const PageId id = disk->AllocateOrDie();
    EXPECT_TRUE(disk->Write(id, image).ok());
  }
  return disk;
}

class AsyncDeviceTest : public ::testing::Test {
 protected:
  static constexpr size_t kPages = 32;

  AsyncDeviceTest() : disk_(StageDisk(kPages)), view_(*disk_) {}

  /// One page-sized staging buffer per possible in-flight request.
  std::vector<std::byte>& Buffer(size_t slot) {
    buffers_.resize(std::max(buffers_.size(), slot + 1));
    buffers_[slot].resize(view_.page_size());
    return buffers_[slot];
  }

  std::unique_ptr<DiskManager> disk_;
  ReadOnlyDiskView view_;
  std::vector<std::vector<std::byte>> buffers_;
};

TEST_F(AsyncDeviceTest, SeedZeroCompletesInSubmissionOrder) {
  AsyncPageDevice device(&view_, AsyncDeviceOptions{});
  const std::vector<PageId> pages{7, 3, 11, 0};
  for (size_t i = 0; i < pages.size(); ++i) {
    device.SubmitRead(pages[i], Buffer(i));
  }
  device.EndBatch();
  std::vector<AsyncPageDevice::Completion> completions;
  EXPECT_EQ(device.PollCompletions(&completions), pages.size());
  ASSERT_EQ(completions.size(), pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(completions[i].page, pages[i]) << "FIFO order at seed 0";
    ASSERT_TRUE(completions[i].status.ok());
    EXPECT_EQ(completions[i].buffer[0],
              static_cast<std::byte>(pages[i]))
        << "completion carries the page image";
  }
  EXPECT_EQ(device.in_flight(), 0u);
}

TEST_F(AsyncDeviceTest, NonzeroSeedReordersDeterministically) {
  std::vector<PageId> submitted(16);
  std::iota(submitted.begin(), submitted.end(), 0);
  std::vector<PageId> order_a, order_b;
  for (std::vector<PageId>* order : {&order_a, &order_b}) {
    AsyncDeviceOptions options;
    options.queue_depth = submitted.size();
    options.completion_seed = 0xfeedULL;
    AsyncPageDevice device(&view_, options);
    for (size_t i = 0; i < submitted.size(); ++i) {
      device.SubmitRead(submitted[i], Buffer(i));
    }
    device.EndBatch();
    std::vector<AsyncPageDevice::Completion> completions;
    device.PollCompletions(&completions);
    for (const auto& completion : completions) {
      order->push_back(completion.page);
    }
  }
  EXPECT_EQ(order_a, order_b) << "same seed, same schedule";
  EXPECT_NE(order_a, submitted) << "a nonzero seed must reorder 16 requests";
  std::vector<PageId> sorted = order_a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, submitted) << "every request completes exactly once";
}

TEST_F(AsyncDeviceTest, ReadsAreLazyAndCancelNeverTouchesTheDevice) {
  AsyncPageDevice device(&view_, AsyncDeviceOptions{});
  for (size_t i = 0; i < 5; ++i) {
    device.SubmitRead(static_cast<PageId>(i), Buffer(i));
  }
  device.EndBatch();
  EXPECT_EQ(view_.stats().reads, 0u) << "submission must not read";
  std::vector<AsyncPageDevice::Completion> completions;
  EXPECT_EQ(device.PollCompletions(&completions, 2), 2u);
  EXPECT_EQ(view_.stats().reads, 2u) << "reads happen at delivery";
  device.CancelAll();
  EXPECT_EQ(view_.stats().reads, 2u) << "canceled requests never read";
  EXPECT_EQ(device.in_flight(), 0u);
  const AsyncDeviceStats& stats = device.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.canceled, 3u);
}

TEST_F(AsyncDeviceTest, DepthStatsAndBatchCounting) {
  AsyncDeviceOptions options;
  options.queue_depth = 4;
  AsyncPageDevice device(&view_, options);
  std::vector<AsyncPageDevice::Completion> completions;
  // Two batches of 3 and 1; EndBatch with nothing submitted counts nothing.
  for (size_t i = 0; i < 3; ++i) {
    device.SubmitRead(static_cast<PageId>(i), Buffer(i));
  }
  device.EndBatch();
  device.PollCompletions(&completions);
  device.SubmitRead(PageId{9}, Buffer(0));
  device.EndBatch();
  device.EndBatch();
  device.PollCompletions(&completions);
  const AsyncDeviceStats& stats = device.stats();
  EXPECT_EQ(stats.batch_submits, 2u);
  EXPECT_EQ(stats.submitted, 4u);
  // Depths sampled at submission: 0, 1, 2 for the first batch, 0 for the
  // second.
  EXPECT_EQ(stats.depth_sum, 3u);
  uint64_t bucketed = 0;
  for (const uint64_t count : stats.depth_buckets) bucketed += count;
  EXPECT_EQ(bucketed, stats.submitted)
      << "every submission lands in exactly one depth bucket";
}

TEST_F(AsyncDeviceTest, DepthBoundsMatchBucketCount) {
  EXPECT_EQ(std::size(kAsyncQueueDepthBounds) + 1,
            AsyncDeviceStats::kDepthBuckets)
      << "obs export and device stats must agree on the bucket layout";
}

}  // namespace
}  // namespace sdb::storage
