#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "core/policy_asb.h"
#include "core/policy_factory.h"
#include "sim/scenario.h"
#include "svc/buffer_service.h"
#include "workload/query_generator.h"

namespace sdb::svc {
namespace {

using storage::PageId;

/// One small shared database for every service test (bulk-built for speed).
class BufferServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioOptions options;
    options.kind = sim::DatabaseKind::kUsLike;
    options.build = sim::BuildMode::kBulkLoad;
    options.scale = 0.02;
    scenario_ = new sim::Scenario(sim::BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static const storage::DiskManager& disk() { return *scenario_->disk; }

  /// Every allocated page id of the scenario's disk (the fetch universe).
  static std::vector<PageId> AllPages() {
    std::vector<PageId> pages;
    for (PageId id = 0; id < disk().page_count(); ++id) pages.push_back(id);
    return pages;
  }

  static sim::Scenario* scenario_;
};

sim::Scenario* BufferServiceTest::scenario_ = nullptr;

TEST_F(BufferServiceTest, SplitsCapacityWithRemainderToLowShards) {
  BufferServiceConfig config;
  config.total_frames = 103;
  config.shard_count = 4;
  BufferService service(disk(), config);
  ASSERT_EQ(service.shard_count(), 4u);
  size_t sum = 0;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(service.ShardFrames(s), s < 3 ? 26u : 25u);
    EXPECT_EQ(service.shard_buffer(s).frame_count(), service.ShardFrames(s));
    sum += service.ShardFrames(s);
  }
  EXPECT_EQ(sum, config.total_frames);
}

TEST_F(BufferServiceTest, ShardingIsStableAndInRange) {
  BufferServiceConfig config;
  config.total_frames = 64;
  config.shard_count = 7;
  BufferService service(disk(), config);
  std::vector<size_t> population(config.shard_count, 0);
  for (PageId id : AllPages()) {
    const size_t shard = service.ShardOf(id);
    ASSERT_LT(shard, config.shard_count);
    EXPECT_EQ(service.ShardOf(id), shard) << "hash must be stable";
    ++population[shard];
  }
  // The mix must not starve any shard on sequential page ids.
  for (size_t s = 0; s < config.shard_count; ++s) {
    EXPECT_GT(population[s], 0u) << "shard " << s << " serves no page";
  }
}

TEST_F(BufferServiceTest, FetchServesTheDiskImage) {
  BufferServiceConfig config;
  config.total_frames = 32;
  config.shard_count = 4;
  BufferService service(disk(), config);
  const core::AccessContext ctx{1};
  for (PageId id : {PageId{0}, PageId{5}, PageId{9}}) {
    core::PageHandle handle = service.FetchOrDie(id, ctx);
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.page_id(), id);
    const std::span<const std::byte> expected = disk().PeekPage(id);
    ASSERT_EQ(handle.bytes().size(), expected.size());
    EXPECT_EQ(std::memcmp(handle.bytes().data(), expected.data(),
                          expected.size()),
              0);
    EXPECT_TRUE(service.Contains(id));
    EXPECT_FALSE(service.Peek(id).empty());
  }
  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, 3u);
  EXPECT_EQ(stats.buffer.misses, 3u);
  EXPECT_EQ(stats.io.reads, 3u);
}

TEST_F(BufferServiceTest, OneShardBehavesLikeAPrivateBuffer) {
  // With one shard the service is a latched BufferManager: replaying the
  // same access string must produce identical counters.
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 16;
  config.shard_count = 1;
  config.policy_spec = "LRU";
  BufferService service(disk(), config);
  storage::ReadOnlyDiskView view(disk());
  core::BufferManager reference(&view, 16, core::CreatePolicy("LRU"));
  uint64_t query = 0;
  for (size_t round = 0; round < 3; ++round) {
    for (PageId id : pages) {
      const core::AccessContext ctx{++query};
      service.FetchOrDie(id, ctx).Release();
      reference.FetchOrDie(id, ctx).Release();
    }
  }
  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, reference.stats().requests);
  EXPECT_EQ(stats.buffer.hits, reference.stats().hits);
  EXPECT_EQ(stats.buffer.misses, reference.stats().misses);
  EXPECT_EQ(stats.buffer.evictions, reference.stats().evictions);
  EXPECT_EQ(stats.io.reads, view.stats().reads);
}

// Thread-shaped fetch storm (the tsan-labeled core of the suite): invariants
// that hold for ANY interleaving, checked after the join.
TEST_F(BufferServiceTest, ConcurrentFetchStormKeepsInvariants) {
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 48;
  config.shard_count = 4;
  config.policy_spec = "ASB";
  BufferService service(disk(), config);

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 3;
  // Per-shard request counts are interleaving-invariant: the page→shard map
  // is fixed, so they equal this precomputed expectation.
  std::vector<uint64_t> expected_requests(config.shard_count, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t round = 0; round < kRounds; ++round) {
      for (size_t i = t; i < pages.size(); i += 2) {
        ++expected_requests[service.ShardOf(pages[i])];
      }
    }
  }

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &pages, t] {
      uint64_t query = t * 1000000;
      for (size_t round = 0; round < kRounds; ++round) {
        // Stride-2 with thread-dependent phase: every page is contended by
        // half the threads each round.
        for (size_t i = t; i < pages.size(); i += 2) {
          const core::AccessContext ctx{++query};
          core::PageHandle handle = service.FetchOrDie(pages[i], ctx);
          ASSERT_EQ(handle.page_id(), pages[i]);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  uint64_t total_requests = 0;
  uint64_t expected_total = 0;
  for (uint64_t n : expected_requests) expected_total += n;
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const ShardStats stats = service.StatsOfShard(s);
    EXPECT_EQ(stats.buffer.requests, expected_requests[s])
        << "per-shard request count must not depend on interleaving";
    EXPECT_EQ(stats.buffer.requests, stats.buffer.hits + stats.buffer.misses);
    EXPECT_EQ(stats.buffer.misses, stats.io.reads)
        << "every miss costs exactly one read on the shard's view";
    EXPECT_EQ(stats.io.writes, 0u) << "read-only service must not write";
    EXPECT_LE(service.shard_buffer(s).resident_count(),
              service.ShardFrames(s));
    total_requests += stats.buffer.requests;
  }
  EXPECT_EQ(total_requests, expected_total);
}

TEST_F(BufferServiceTest, SharedAsbTuningPublishesOneClampedCandidate) {
  BufferServiceConfig config;
  config.total_frames = 60;
  config.shard_count = 3;
  config.policy_spec = "ASB";
  config.share_asb_tuning = true;
  BufferService service(disk(), config);
  ASSERT_NE(service.shared_tuning(), nullptr);

  // The global clamp is the smallest shard's main capacity.
  size_t min_main = SIZE_MAX;
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    ASSERT_EQ(policy.shared_tuning(), service.shared_tuning());
    min_main = std::min(min_main, policy.main_capacity());
  }
  EXPECT_EQ(service.shared_tuning()->max_candidate(),
            static_cast<int64_t>(min_main));

  // Drive enough traffic to trigger adaptation, racing over all shards.
  const std::vector<PageId> pages = AllPages();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&service, &pages, t] {
      uint64_t query = t * 1000000;
      for (size_t round = 0; round < 4; ++round) {
        for (size_t i = 0; i < pages.size(); ++i) {
          const core::AccessContext ctx{++query};
          // Re-touch a sliding window so overflow pages get hit again.
          service.FetchOrDie(pages[(i * (t + 1)) % pages.size()], ctx).Release();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const size_t c = service.shared_candidate();
  EXPECT_GE(c, 1u);
  EXPECT_LE(c, min_main);
  // Every shard's working candidate equals the published value (clamped to
  // its own capacity — identical capacities here make them equal).
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    EXPECT_LE(policy.candidate_size(), policy.main_capacity());
  }
}

TEST_F(BufferServiceTest, PrivateTuningWhenSharingDisabled) {
  BufferServiceConfig config;
  config.total_frames = 30;
  config.shard_count = 3;
  config.policy_spec = "ASB";
  config.share_asb_tuning = false;
  BufferService service(disk(), config);
  EXPECT_EQ(service.shared_tuning(), nullptr);
  EXPECT_EQ(service.shared_candidate(), 0u);
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    EXPECT_EQ(policy.shared_tuning(), nullptr);
  }
}

TEST_F(BufferServiceTest, NonAsbPolicyIgnoresSharing) {
  BufferServiceConfig config;
  config.total_frames = 12;
  config.shard_count = 2;
  config.policy_spec = "LRU";
  config.share_asb_tuning = true;
  BufferService service(disk(), config);
  EXPECT_EQ(service.shared_tuning(), nullptr);
  EXPECT_EQ(service.shared_candidate(), 0u);
}

TEST_F(BufferServiceTest, MetricsMergeShardsAndFlushDeltas) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  BufferServiceConfig config;
  config.total_frames = 24;
  config.shard_count = 3;
  config.collect_metrics = true;
  BufferService service(disk(), config);
  const std::vector<PageId> pages = AllPages();
  uint64_t query = 0;
  for (PageId id : pages) {
    service.FetchOrDie(id, core::AccessContext{++query}).Release();
  }
  const ShardStats aggregate = service.AggregateStats();

  auto find = [](const obs::MetricsSnapshot& snapshot,
                 std::string_view name) -> const obs::MetricValue* {
    for (const obs::MetricValue& metric : snapshot) {
      if (metric.name == name) return &metric;
    }
    return nullptr;
  };

  obs::MetricsSnapshot merged = service.MetricsSnapshot();
  const obs::MetricValue* requests = find(merged, "buffer.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->count, aggregate.buffer.requests);
  const obs::MetricValue* reads = find(merged, "svc.disk_reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->count, aggregate.io.reads);
  const obs::MetricValue* acquires = find(merged, "svc.latch_acquires");
  ASSERT_NE(acquires, nullptr);
  EXPECT_GE(acquires->count, aggregate.buffer.requests);

  // Delta-flush: snapshotting again without traffic must not double-count.
  obs::MetricsSnapshot again = service.MetricsSnapshot();
  EXPECT_EQ(find(again, "buffer.requests")->count, requests->count);
  EXPECT_EQ(find(again, "svc.disk_reads")->count, reads->count);

  // Per-shard snapshots cover every shard and sum to the merged counters.
  std::vector<obs::MetricsSnapshot> shards = service.ShardMetricsSnapshots();
  ASSERT_EQ(shards.size(), service.shard_count());
  uint64_t shard_sum = 0;
  for (const obs::MetricsSnapshot& snapshot : shards) {
    shard_sum += find(snapshot, "buffer.requests")->count;
  }
  EXPECT_EQ(shard_sum, requests->count);
}

TEST_F(BufferServiceTest, NewFailsOnReadOnlyService) {
  BufferServiceConfig config;
  config.total_frames = 8;
  config.shard_count = 2;
  BufferService service(disk(), config);
  core::StatusOr<core::PageHandle> made = service.New(core::AccessContext{1});
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), core::StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace sdb::svc
