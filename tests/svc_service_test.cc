#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/policy_asb.h"
#include "core/policy_factory.h"
#include "sim/scenario.h"
#include "svc/buffer_service.h"
#include "workload/query_generator.h"

namespace sdb::svc {
namespace {

using storage::PageId;

/// One small shared database for every service test (bulk-built for speed).
class BufferServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioOptions options;
    options.kind = sim::DatabaseKind::kUsLike;
    options.build = sim::BuildMode::kBulkLoad;
    options.scale = 0.02;
    scenario_ = new sim::Scenario(sim::BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static const storage::DiskManager& disk() { return *scenario_->disk; }

  /// Every allocated page id of the scenario's disk (the fetch universe).
  static std::vector<PageId> AllPages() {
    std::vector<PageId> pages;
    for (PageId id = 0; id < disk().page_count(); ++id) pages.push_back(id);
    return pages;
  }

  static sim::Scenario* scenario_;
};

sim::Scenario* BufferServiceTest::scenario_ = nullptr;

TEST_F(BufferServiceTest, SplitsCapacityWithRemainderToLowShards) {
  BufferServiceConfig config;
  config.total_frames = 103;
  config.shard_count = 4;
  BufferService service(disk(), config);
  ASSERT_EQ(service.shard_count(), 4u);
  size_t sum = 0;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(service.ShardFrames(s), s < 3 ? 26u : 25u);
    EXPECT_EQ(service.shard_buffer(s).frame_count(), service.ShardFrames(s));
    sum += service.ShardFrames(s);
  }
  EXPECT_EQ(sum, config.total_frames);
}

TEST_F(BufferServiceTest, ShardingIsStableAndInRange) {
  BufferServiceConfig config;
  config.total_frames = 64;
  config.shard_count = 7;
  BufferService service(disk(), config);
  std::vector<size_t> population(config.shard_count, 0);
  for (PageId id : AllPages()) {
    const size_t shard = service.ShardOf(id);
    ASSERT_LT(shard, config.shard_count);
    EXPECT_EQ(service.ShardOf(id), shard) << "hash must be stable";
    ++population[shard];
  }
  // The mix must not starve any shard on sequential page ids.
  for (size_t s = 0; s < config.shard_count; ++s) {
    EXPECT_GT(population[s], 0u) << "shard " << s << " serves no page";
  }
}

TEST_F(BufferServiceTest, FetchServesTheDiskImage) {
  BufferServiceConfig config;
  config.total_frames = 32;
  config.shard_count = 4;
  BufferService service(disk(), config);
  const core::AccessContext ctx{1};
  for (PageId id : {PageId{0}, PageId{5}, PageId{9}}) {
    core::PageHandle handle = service.FetchOrDie(id, ctx);
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.page_id(), id);
    const std::span<const std::byte> expected = disk().PeekPage(id);
    ASSERT_EQ(handle.bytes().size(), expected.size());
    EXPECT_EQ(std::memcmp(handle.bytes().data(), expected.data(),
                          expected.size()),
              0);
    EXPECT_TRUE(service.Contains(id));
    EXPECT_FALSE(service.Peek(id).empty());
  }
  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, 3u);
  EXPECT_EQ(stats.buffer.misses, 3u);
  EXPECT_EQ(stats.io.reads, 3u);
}

TEST_F(BufferServiceTest, OneShardBehavesLikeAPrivateBuffer) {
  // With one shard the service is a latched BufferManager: replaying the
  // same access string must produce identical counters.
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 16;
  config.shard_count = 1;
  config.policy_spec = "LRU";
  BufferService service(disk(), config);
  storage::ReadOnlyDiskView view(disk());
  core::BufferManager reference(&view, 16, core::CreatePolicy("LRU"));
  uint64_t query = 0;
  for (size_t round = 0; round < 3; ++round) {
    for (PageId id : pages) {
      const core::AccessContext ctx{++query};
      service.FetchOrDie(id, ctx).Release();
      reference.FetchOrDie(id, ctx).Release();
    }
  }
  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, reference.stats().requests);
  EXPECT_EQ(stats.buffer.hits, reference.stats().hits);
  EXPECT_EQ(stats.buffer.misses, reference.stats().misses);
  EXPECT_EQ(stats.buffer.evictions, reference.stats().evictions);
  EXPECT_EQ(stats.io.reads, view.stats().reads);
}

// Thread-shaped fetch storm (the tsan-labeled core of the suite): invariants
// that hold for ANY interleaving, checked after the join.
TEST_F(BufferServiceTest, ConcurrentFetchStormKeepsInvariants) {
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 48;
  config.shard_count = 4;
  config.policy_spec = "ASB";
  BufferService service(disk(), config);

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 3;
  // Per-shard request counts are interleaving-invariant: the page→shard map
  // is fixed, so they equal this precomputed expectation.
  std::vector<uint64_t> expected_requests(config.shard_count, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t round = 0; round < kRounds; ++round) {
      for (size_t i = t; i < pages.size(); i += 2) {
        ++expected_requests[service.ShardOf(pages[i])];
      }
    }
  }

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &pages, t] {
      uint64_t query = t * 1000000;
      for (size_t round = 0; round < kRounds; ++round) {
        // Stride-2 with thread-dependent phase: every page is contended by
        // half the threads each round.
        for (size_t i = t; i < pages.size(); i += 2) {
          const core::AccessContext ctx{++query};
          core::PageHandle handle = service.FetchOrDie(pages[i], ctx);
          ASSERT_EQ(handle.page_id(), pages[i]);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  uint64_t total_requests = 0;
  uint64_t expected_total = 0;
  for (uint64_t n : expected_requests) expected_total += n;
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const ShardStats stats = service.StatsOfShard(s);
    EXPECT_EQ(stats.buffer.requests, expected_requests[s])
        << "per-shard request count must not depend on interleaving";
    EXPECT_EQ(stats.buffer.requests, stats.buffer.hits + stats.buffer.misses);
    EXPECT_EQ(stats.buffer.misses, stats.io.reads)
        << "every miss costs exactly one read on the shard's view";
    EXPECT_EQ(stats.io.writes, 0u) << "read-only service must not write";
    EXPECT_LE(service.shard_buffer(s).resident_count(),
              service.ShardFrames(s));
    total_requests += stats.buffer.requests;
  }
  EXPECT_EQ(total_requests, expected_total);
}

TEST_F(BufferServiceTest, SharedAsbTuningPublishesOneClampedCandidate) {
  BufferServiceConfig config;
  config.total_frames = 60;
  config.shard_count = 3;
  config.policy_spec = "ASB";
  config.share_asb_tuning = true;
  BufferService service(disk(), config);
  ASSERT_NE(service.shared_tuning(), nullptr);

  // The global clamp is the smallest shard's main capacity.
  size_t min_main = SIZE_MAX;
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    ASSERT_EQ(policy.shared_tuning(), service.shared_tuning());
    min_main = std::min(min_main, policy.main_capacity());
  }
  EXPECT_EQ(service.shared_tuning()->max_candidate(),
            static_cast<int64_t>(min_main));

  // Drive enough traffic to trigger adaptation, racing over all shards.
  const std::vector<PageId> pages = AllPages();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&service, &pages, t] {
      uint64_t query = t * 1000000;
      for (size_t round = 0; round < 4; ++round) {
        for (size_t i = 0; i < pages.size(); ++i) {
          const core::AccessContext ctx{++query};
          // Re-touch a sliding window so overflow pages get hit again.
          service.FetchOrDie(pages[(i * (t + 1)) % pages.size()], ctx).Release();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const size_t c = service.shared_candidate();
  EXPECT_GE(c, 1u);
  EXPECT_LE(c, min_main);
  // Every shard's working candidate equals the published value (clamped to
  // its own capacity — identical capacities here make them equal).
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    EXPECT_LE(policy.candidate_size(), policy.main_capacity());
  }
}

TEST_F(BufferServiceTest, PrivateTuningWhenSharingDisabled) {
  BufferServiceConfig config;
  config.total_frames = 30;
  config.shard_count = 3;
  config.policy_spec = "ASB";
  config.share_asb_tuning = false;
  BufferService service(disk(), config);
  EXPECT_EQ(service.shared_tuning(), nullptr);
  EXPECT_EQ(service.shared_candidate(), 0u);
  for (size_t s = 0; s < service.shard_count(); ++s) {
    const auto& policy = dynamic_cast<const core::AsbPolicy&>(
        service.shard_buffer(s).policy());
    EXPECT_EQ(policy.shared_tuning(), nullptr);
  }
}

TEST_F(BufferServiceTest, NonAsbPolicyIgnoresSharing) {
  BufferServiceConfig config;
  config.total_frames = 12;
  config.shard_count = 2;
  config.policy_spec = "LRU";
  config.share_asb_tuning = true;
  BufferService service(disk(), config);
  EXPECT_EQ(service.shared_tuning(), nullptr);
  EXPECT_EQ(service.shared_candidate(), 0u);
}

TEST_F(BufferServiceTest, MetricsMergeShardsAndFlushDeltas) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  BufferServiceConfig config;
  config.total_frames = 24;
  config.shard_count = 3;
  config.collect_metrics = true;
  BufferService service(disk(), config);
  const std::vector<PageId> pages = AllPages();
  uint64_t query = 0;
  for (PageId id : pages) {
    service.FetchOrDie(id, core::AccessContext{++query}).Release();
  }
  const ShardStats aggregate = service.AggregateStats();

  auto find = [](const obs::MetricsSnapshot& snapshot,
                 std::string_view name) -> const obs::MetricValue* {
    for (const obs::MetricValue& metric : snapshot) {
      if (metric.name == name) return &metric;
    }
    return nullptr;
  };

  obs::MetricsSnapshot merged = service.MetricsSnapshot();
  const obs::MetricValue* requests = find(merged, "buffer.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->count, aggregate.buffer.requests);
  const obs::MetricValue* reads = find(merged, "svc.disk_reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->count, aggregate.io.reads);
  const obs::MetricValue* acquires = find(merged, "svc.latch_acquires");
  ASSERT_NE(acquires, nullptr);
  EXPECT_GE(acquires->count, aggregate.buffer.requests);

  // Delta-flush: snapshotting again without traffic must not double-count.
  obs::MetricsSnapshot again = service.MetricsSnapshot();
  EXPECT_EQ(find(again, "buffer.requests")->count, requests->count);
  EXPECT_EQ(find(again, "svc.disk_reads")->count, reads->count);

  // Per-shard snapshots cover every shard and sum to the merged counters.
  std::vector<obs::MetricsSnapshot> shards = service.ShardMetricsSnapshots();
  ASSERT_EQ(shards.size(), service.shard_count());
  uint64_t shard_sum = 0;
  for (const obs::MetricsSnapshot& snapshot : shards) {
    shard_sum += find(snapshot, "buffer.requests")->count;
  }
  EXPECT_EQ(shard_sum, requests->count);
}

TEST_F(BufferServiceTest, OptimisticSerialRunIsBitIdenticalToMutex) {
  // The deferred-event protocol's core promise: executed serially, the
  // optimistic service replays policy events in arrival order and therefore
  // produces the exact eviction/hit sequence of the blocking-mutex service.
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 24;
  config.shard_count = 4;
  config.policy_spec = "ASB";
  config.latch_mode = LatchMode::kMutex;
  BufferService mutex_service(disk(), config);
  config.latch_mode = LatchMode::kOptimistic;
  BufferService optimistic_service(disk(), config);
  EXPECT_EQ(optimistic_service.latch_mode(), LatchMode::kOptimistic);

  uint64_t query = 0;
  std::vector<core::StatusOr<core::PageHandle>> scratch;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < pages.size(); ++i) {
      const core::AccessContext ctx{++query};
      // Mix single fetches with small batches (same calls on both sides).
      if (i % 7 == 0 && i + 3 <= pages.size()) {
        const std::span<const PageId> batch(&pages[i], 3);
        for (BufferService* service : {&mutex_service, &optimistic_service}) {
          scratch.clear();
          service->FetchBatch(batch, ctx, &scratch);
          for (const auto& handle : scratch) ASSERT_TRUE(handle.ok());
        }
        i += 2;
      } else {
        mutex_service.FetchOrDie(pages[i], ctx).Release();
        optimistic_service.FetchOrDie(pages[i], ctx).Release();
        // Immediate re-touch: a guaranteed hit, served latch-free on the
        // optimistic side (a pure cyclic scan would never hit at all).
        const core::AccessContext again{++query};
        mutex_service.FetchOrDie(pages[i], again).Release();
        optimistic_service.FetchOrDie(pages[i], again).Release();
      }
    }
  }
  scratch.clear();
  const ShardStats mutex_stats = mutex_service.AggregateStats();
  const ShardStats optimistic_stats = optimistic_service.AggregateStats();
  EXPECT_EQ(optimistic_stats.buffer.requests, mutex_stats.buffer.requests);
  EXPECT_EQ(optimistic_stats.buffer.hits, mutex_stats.buffer.hits);
  EXPECT_EQ(optimistic_stats.buffer.misses, mutex_stats.buffer.misses);
  EXPECT_EQ(optimistic_stats.buffer.evictions, mutex_stats.buffer.evictions);
  EXPECT_EQ(optimistic_stats.io.reads, mutex_stats.io.reads);
  EXPECT_GT(optimistic_stats.optimistic_hits, 0u);
  EXPECT_EQ(mutex_stats.optimistic_hits, 0u);
}

TEST_F(BufferServiceTest, FetchBatchDeliversInputOrderAndCountsEachAccess) {
  BufferServiceConfig config;
  config.total_frames = 64;
  config.shard_count = 4;
  BufferService service(disk(), config);
  EXPECT_TRUE(service.PrefersBatchedReads());
  // Batch spanning all shards, with a duplicate (second occurrence must be
  // a hit within the same batch).
  const std::vector<PageId> batch{0, 5, 9, 5, 2, 7};
  std::vector<core::StatusOr<core::PageHandle>> handles;
  service.FetchBatch(batch, core::AccessContext{1}, &handles);
  ASSERT_EQ(handles.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(handles[i].ok()) << "slot " << i;
    EXPECT_EQ(handles[i].value().page_id(), batch[i]);
    const std::span<const std::byte> expected = disk().PeekPage(batch[i]);
    EXPECT_EQ(std::memcmp(handles[i].value().bytes().data(), expected.data(),
                          expected.size()),
              0);
  }
  handles.clear();  // release every pin
  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, batch.size());
  EXPECT_EQ(stats.buffer.misses, 5u) << "5 distinct pages";
  EXPECT_EQ(stats.buffer.hits, 1u) << "the duplicate hits in-batch";
  EXPECT_EQ(stats.io.reads, 5u);

  // A second identical batch is all hits (served optimistically) and costs
  // no reads.
  service.FetchBatch(batch, core::AccessContext{2}, &handles);
  for (const auto& handle : handles) ASSERT_TRUE(handle.ok());
  handles.clear();
  const ShardStats after = service.AggregateStats();
  EXPECT_EQ(after.buffer.hits, 1u + batch.size());
  EXPECT_EQ(after.io.reads, 5u);
  EXPECT_GT(after.optimistic_hits, 0u);
}

TEST_F(BufferServiceTest, DetachTransfersPinAndManualUnpinReportsErrors) {
  BufferServiceConfig config;
  config.total_frames = 16;
  config.shard_count = 1;
  BufferService service(disk(), config);
  // Detach: the handle dies without releasing; the pin must survive and be
  // releasable through an explicit Unpin on the shard's buffer.
  auto& buffer = const_cast<core::BufferManager&>(service.shard_buffer(0));
  core::FrameId detached = core::kInvalidFrameId;
  {
    core::PageHandle handle = service.FetchOrDie(3, core::AccessContext{1});
    detached = handle.Detach();
    EXPECT_FALSE(handle.valid()) << "Detach invalidates the handle";
  }
  // Frame still pinned: a second fetch of the same page and its release
  // must not drop the detached pin.
  service.FetchOrDie(3, core::AccessContext{2}).Release();
  EXPECT_EQ(buffer.Unpin(detached, /*dirty=*/false), core::UnpinStatus::kOk);
  EXPECT_EQ(buffer.Unpin(detached, /*dirty=*/false),
            core::UnpinStatus::kNotPinned)
      << "second manual unpin of the same pin";
  EXPECT_EQ(buffer.Unpin(core::FrameId{9999}, /*dirty=*/false),
            core::UnpinStatus::kUnknownFrame);

  // Move semantics: assignment releases the destination's old pin, the
  // source becomes invalid, self-sufficient double-Release is a no-op.
  core::PageHandle a = service.FetchOrDie(4, core::AccessContext{3});
  core::PageHandle b = service.FetchOrDie(5, core::AccessContext{4});
  b = std::move(a);
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.page_id(), 4u);
  b.Release();
  b.Release();
  // All pins gone: sweeping more distinct pages than frames must succeed
  // (a leaked pin would leave the single shard unevictable and abort).
  uint64_t query = 10;
  for (PageId id = 0; id < 2 * config.total_frames; ++id) {
    service.FetchOrDie(id % disk().page_count(), core::AccessContext{++query})
        .Release();
  }
}

// Thread-shaped satellite of the Detach test: racing pin/unpin on the SAME
// frame through detach/manual-unpin and handle moves, while other threads
// force eviction pressure on the rest of the shard. Invariant checked at
// the end: every pin was released exactly once (the shard survives a full
// eviction sweep).
TEST_F(BufferServiceTest, ConcurrentDetachAndMoveRacesOnOneFrame) {
  BufferServiceConfig config;
  config.total_frames = 48;
  config.shard_count = 2;
  BufferService service(disk(), config);
  const PageId hot = 1;  // every thread hammers this page's frame
  const size_t page_count = disk().page_count();

  constexpr size_t kThreads = 4;
  constexpr size_t kIters = 400;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& buffer = const_cast<core::BufferManager&>(
          service.shard_buffer(service.ShardOf(hot)));
      uint64_t query = t * 1000000;
      for (size_t i = 0; i < kIters; ++i) {
        const core::AccessContext ctx{++query};
        switch ((t + i) % 3) {
          case 0: {  // detach + manual unpin (must always be kOk: we own it)
            core::PageHandle handle = service.FetchOrDie(hot, ctx);
            const core::FrameId frame = handle.Detach();
            ASSERT_EQ(buffer.Unpin(frame, /*dirty=*/false),
                      core::UnpinStatus::kOk);
            break;
          }
          case 1: {  // move chain, single release at scope end
            core::PageHandle handle = service.FetchOrDie(hot, ctx);
            core::PageHandle moved = std::move(handle);
            core::PageHandle again = std::move(moved);
            ASSERT_EQ(again.page_id(), hot);
            break;
          }
          case 2: {  // eviction pressure elsewhere in both shards
            service
                .FetchOrDie(static_cast<PageId>((t * 131 + i) % page_count),
                            ctx)
                .Release();
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, kThreads * kIters);
  // No pin leaked: a sweep wider than the pool must not abort.
  uint64_t query = uint64_t{1} << 40;
  for (PageId id = 0; id < static_cast<PageId>(page_count); ++id) {
    service.FetchOrDie(id, core::AccessContext{++query}).Release();
  }
}

TEST_F(BufferServiceTest, TinyEventRingFallsBackWithoutLosingEvents) {
  const std::vector<PageId> pages = AllPages();
  BufferServiceConfig config;
  config.total_frames = 24;
  config.shard_count = 2;
  config.policy_spec = "ASB";
  config.event_ring_capacity = 4;  // storm: constant ring-full fallbacks
  BufferService service(disk(), config);

  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &pages, t] {
      uint64_t query = t * 1000000;
      for (size_t round = 0; round < 2; ++round) {
        for (const PageId id : pages) {
          service.FetchOrDie(id, core::AccessContext{++query}).Release();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, kThreads * 2 * pages.size())
      << "ring-full fallbacks must not drop or double-count accesses";
  EXPECT_EQ(stats.buffer.hits + stats.buffer.misses, stats.buffer.requests);
  EXPECT_EQ(stats.buffer.misses, stats.io.reads);
}

TEST_F(BufferServiceTest, MetricsStayMonotonicAcrossMidRunQuarantine) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  // Satellite regression for the delta-flush: quarantine (and the frame
  // churn it causes) mid-run must never make a flushed counter go
  // backwards or under-report — the saturating delta samples each source
  // once per flush.
  BufferServiceConfig config;
  config.total_frames = 24;
  config.shard_count = 2;
  config.collect_metrics = true;
  config.fault_profile.bad_begin = 4;
  config.fault_profile.bad_end = 6;  // pages 4,5 terminally unreadable
  BufferService service(disk(), config);

  auto counter_value = [](const obs::MetricsSnapshot& snapshot,
                          std::string_view name) -> uint64_t {
    for (const obs::MetricValue& metric : snapshot) {
      if (metric.name == name) return metric.count;
    }
    return 0;
  };
  const char* kMonotonic[] = {"svc.latch_waits", "svc.latch_acquires",
                              "svc.disk_reads", "svc.optimistic_hits",
                              "buffer.requests"};
  std::vector<uint64_t> last(std::size(kMonotonic), 0);
  uint64_t query = 0;
  const std::vector<PageId> pages = AllPages();
  for (size_t round = 0; round < 4; ++round) {
    for (const PageId id : pages) {
      // Bad pages fail (and quarantine their staging frame); keep going.
      auto fetched = service.Fetch(id, core::AccessContext{++query});
      if (fetched.ok()) std::move(fetched).value().Release();
    }
    const obs::MetricsSnapshot snapshot = service.MetricsSnapshot();
    for (size_t m = 0; m < std::size(kMonotonic); ++m) {
      const uint64_t now = counter_value(snapshot, kMonotonic[m]);
      EXPECT_GE(now, last[m]) << kMonotonic[m] << " went backwards in round "
                              << round;
      last[m] = now;
    }
  }
  const ShardStats stats = service.AggregateStats();
  EXPECT_GT(stats.quarantined_frames, 0u)
      << "the profile must actually quarantine mid-run";
  // Final flushed totals equal the live sources (no under-report).
  const obs::MetricsSnapshot final_snapshot = service.MetricsSnapshot();
  EXPECT_EQ(counter_value(final_snapshot, "svc.disk_reads"), stats.io.reads);
  EXPECT_EQ(counter_value(final_snapshot, "buffer.requests"),
            stats.buffer.requests);
}

TEST_F(BufferServiceTest, NewFailsOnReadOnlyService) {
  BufferServiceConfig config;
  config.total_frames = 8;
  config.shard_count = 2;
  BufferService service(disk(), config);
  core::StatusOr<core::PageHandle> made = service.New(core::AccessContext{1});
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), core::StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace sdb::svc
