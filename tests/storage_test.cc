#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/disk_view.h"
#include "storage/page.h"

namespace sdb::storage {
namespace {

std::vector<std::byte> MakeImage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

TEST(PageHeaderViewTest, RoundTripAllFields) {
  std::vector<std::byte> page(kDefaultPageSize, std::byte{0});
  PageHeaderView header(page.data());
  header.set_type(PageType::kDirectory);
  header.set_level(3);
  header.set_entry_count(42);
  geom::EntryAggregates agg;
  agg.mbr = geom::Rect(0.1, 0.2, 0.3, 0.4);
  agg.sum_entry_area = 1.5;
  agg.sum_entry_margin = 2.5;
  agg.entry_overlap = 0.25;
  header.set_aggregates(agg);

  const ConstPageHeaderView view(page.data());
  EXPECT_EQ(view.type(), PageType::kDirectory);
  EXPECT_EQ(view.level(), 3);
  EXPECT_EQ(view.entry_count(), 42);
  EXPECT_EQ(view.mbr(), geom::Rect(0.1, 0.2, 0.3, 0.4));
  EXPECT_DOUBLE_EQ(view.sum_entry_area(), 1.5);
  EXPECT_DOUBLE_EQ(view.sum_entry_margin(), 2.5);
  EXPECT_DOUBLE_EQ(view.entry_overlap(), 0.25);

  const PageMeta meta = view.ToMeta();
  EXPECT_EQ(meta.type, PageType::kDirectory);
  EXPECT_EQ(meta.level, 3);
  EXPECT_EQ(meta.entry_count, 42);
  EXPECT_EQ(meta.mbr, geom::Rect(0.1, 0.2, 0.3, 0.4));
}

TEST(PageHeaderViewTest, ZeroedPageDecodesAsFree) {
  std::vector<std::byte> page(kDefaultPageSize, std::byte{0});
  const ConstPageHeaderView view(page.data());
  EXPECT_EQ(view.type(), PageType::kFree);
  EXPECT_EQ(view.level(), 0);
  EXPECT_EQ(view.entry_count(), 0);
}

TEST(PageTypeTest, Names) {
  EXPECT_EQ(PageTypeName(PageType::kDirectory), "directory");
  EXPECT_EQ(PageTypeName(PageType::kData), "data");
  EXPECT_EQ(PageTypeName(PageType::kObject), "object");
  EXPECT_EQ(PageTypeName(PageType::kMeta), "meta");
  EXPECT_EQ(PageTypeName(PageType::kFree), "free");
}

TEST(DiskManagerTest, AllocateGrowsFile) {
  DiskManager disk;
  EXPECT_EQ(disk.page_count(), 0u);
  const PageId a = disk.AllocateOrDie();
  const PageId b = disk.AllocateOrDie();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.page_count(), 2u);
  EXPECT_EQ(disk.stats().accesses(), 0u) << "allocation is not I/O";
}

TEST(DiskManagerTest, ReadWriteRoundTrip) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  const auto out = MakeImage(disk.page_size(), 0xAB);
  ASSERT_TRUE(disk.Write(id, out).ok());
  auto in = MakeImage(disk.page_size(), 0);
  disk.Read(id, in);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), disk.page_size()), 0);
}

TEST(DiskManagerTest, FreshPageIsZeroed) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  auto in = MakeImage(disk.page_size(), 0xFF);
  disk.Read(id, in);
  for (std::byte b : in) EXPECT_EQ(b, std::byte{0});
}

TEST(DiskManagerTest, CountsReadsAndWrites) {
  DiskManager disk;
  const PageId a = disk.AllocateOrDie();
  const PageId b = disk.AllocateOrDie();
  auto image = MakeImage(disk.page_size(), 1);
  ASSERT_TRUE(disk.Write(a, image).ok());
  ASSERT_TRUE(disk.Write(b, image).ok());
  disk.Read(a, image);
  disk.Read(a, image);
  disk.Read(b, image);
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().reads, 3u);
  EXPECT_EQ(disk.stats().accesses(), 5u);
}

TEST(DiskManagerTest, DetectsSequentialReads) {
  DiskManager disk;
  for (int i = 0; i < 5; ++i) disk.AllocateOrDie();
  auto image = MakeImage(disk.page_size(), 0);
  disk.Read(0, image);
  disk.Read(1, image);  // sequential
  disk.Read(2, image);  // sequential
  disk.Read(0, image);  // random
  disk.Read(4, image);  // random
  EXPECT_EQ(disk.stats().reads, 5u);
  EXPECT_EQ(disk.stats().sequential_reads, 2u);
}

TEST(DiskManagerTest, DetectsSequentialWrites) {
  DiskManager disk;
  for (int i = 0; i < 4; ++i) disk.AllocateOrDie();
  auto image = MakeImage(disk.page_size(), 0);
  ASSERT_TRUE(disk.Write(2, image).ok());
  ASSERT_TRUE(disk.Write(3, image).ok());  // sequential
  ASSERT_TRUE(disk.Write(1, image).ok());  // random
  EXPECT_EQ(disk.stats().sequential_writes, 1u);
}

TEST(DiskManagerTest, WeightedCostModel) {
  IoStats stats;
  stats.reads = 10;
  stats.sequential_reads = 4;
  // 6 random + 4 sequential at 0.1 => 6.4
  EXPECT_DOUBLE_EQ(stats.WeightedCost(0.1), 6.4);
  EXPECT_DOUBLE_EQ(stats.WeightedCost(1.0), 10.0);
}

TEST(DiskManagerTest, ResetStatsClearsEverything) {
  DiskManager disk;
  disk.AllocateOrDie();
  auto image = MakeImage(disk.page_size(), 0);
  disk.Read(0, image);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
  EXPECT_EQ(disk.stats().writes, 0u);
  // After a reset the next read must not count as sequential.
  disk.Read(0, image);
  EXPECT_EQ(disk.stats().sequential_reads, 0u);
}

TEST(DiskManagerTest, PeekDoesNotCountIo) {
  DiskManager disk;
  const PageId id = disk.AllocateOrDie();
  std::vector<std::byte> image(disk.page_size(), std::byte{0});
  PageHeaderView(image.data()).set_type(PageType::kData);
  PageHeaderView(image.data()).set_level(0);
  ASSERT_TRUE(disk.Write(id, image).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.PeekMeta(id).type, PageType::kData);
  EXPECT_EQ(disk.PeekPage(id).size(), disk.page_size());
  EXPECT_EQ(disk.stats().accesses(), 0u);
}

TEST(DiskManagerTest, CustomPageSize) {
  DiskManager disk(512);
  EXPECT_EQ(disk.page_size(), 512u);
  const PageId id = disk.AllocateOrDie();
  auto image = MakeImage(512, 0x5A);
  ASSERT_TRUE(disk.Write(id, image).ok());
  auto in = MakeImage(512, 0);
  disk.Read(id, in);
  EXPECT_EQ(std::memcmp(in.data(), image.data(), 512), 0);
}

TEST(DiskImageTest, SaveLoadRoundTrip) {
  DiskManager disk(512);
  for (int i = 0; i < 5; ++i) disk.AllocateOrDie();
  std::vector<std::byte> image(512);
  for (int i = 0; i < 5; ++i) {
    std::fill(image.begin(), image.end(),
              static_cast<std::byte>(0x10 + i));
    ASSERT_TRUE(disk.Write(static_cast<PageId>(i), image).ok());
  }
  const std::string path = ::testing::TempDir() + "/sdb_disk_image.bin";
  ASSERT_TRUE(disk.SaveImage(path));

  auto loaded = DiskManager::LoadImage(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->page_size(), 512u);
  EXPECT_EQ(loaded->page_count(), 5u);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> in(512);
    loaded->Read(static_cast<PageId>(i), in);
    EXPECT_EQ(in[0], static_cast<std::byte>(0x10 + i));
    EXPECT_EQ(in[511], static_cast<std::byte>(0x10 + i));
  }
  std::remove(path.c_str());
}

TEST(DiskImageTest, LoadedImageStartsWithCleanStats) {
  DiskManager disk;
  disk.AllocateOrDie();
  std::vector<std::byte> image(disk.page_size(), std::byte{1});
  ASSERT_TRUE(disk.Write(0, image).ok());
  const std::string path = ::testing::TempDir() + "/sdb_disk_image2.bin";
  ASSERT_TRUE(disk.SaveImage(path));
  auto loaded = DiskManager::LoadImage(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->stats().accesses(), 0u);
  std::remove(path.c_str());
}

TEST(DiskImageTest, MissingOrCorruptFilesAreRejected) {
  EXPECT_FALSE(DiskManager::LoadImage("/nonexistent/dir/img").has_value());
  const std::string path = ::testing::TempDir() + "/sdb_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a disk image", f);
  std::fclose(f);
  EXPECT_FALSE(DiskManager::LoadImage(path).has_value());
  std::remove(path.c_str());
}

TEST(ReadOnlyDiskViewTest, ReadsSameBytesAsBase) {
  DiskManager disk;
  const PageId a = disk.AllocateOrDie();
  const PageId b = disk.AllocateOrDie();
  ASSERT_TRUE(disk.Write(a, MakeImage(disk.page_size(), 0x11)).ok());
  ASSERT_TRUE(disk.Write(b, MakeImage(disk.page_size(), 0x22)).ok());

  ReadOnlyDiskView view(disk);
  EXPECT_EQ(view.page_size(), disk.page_size());
  auto via_view = MakeImage(disk.page_size(), 0);
  auto via_base = MakeImage(disk.page_size(), 0);
  for (const PageId id : {a, b}) {
    view.Read(id, via_view);
    disk.Read(id, via_base);
    EXPECT_EQ(
        std::memcmp(via_view.data(), via_base.data(), disk.page_size()), 0);
  }
}

TEST(ReadOnlyDiskViewTest, CountersArePerViewAndLeaveBaseUntouched) {
  DiskManager disk;
  for (int i = 0; i < 4; ++i) disk.AllocateOrDie();
  disk.ResetStats();

  ReadOnlyDiskView first(disk);
  ReadOnlyDiskView second(disk);
  auto image = MakeImage(disk.page_size(), 0);
  first.Read(0, image);
  first.Read(1, image);  // sequential
  first.Read(3, image);  // random
  second.Read(2, image);

  EXPECT_EQ(first.stats().reads, 3u);
  EXPECT_EQ(first.stats().sequential_reads, 1u);
  EXPECT_EQ(second.stats().reads, 1u);
  EXPECT_EQ(second.stats().sequential_reads, 0u);
  EXPECT_EQ(disk.stats().accesses(), 0u)
      << "view reads must not mutate the shared device counters";

  first.ResetStats();
  EXPECT_EQ(first.stats().reads, 0u);
  // After a reset the next read must not count as sequential.
  first.Read(0, image);
  EXPECT_EQ(first.stats().sequential_reads, 0u);
}

TEST(ReadOnlyDiskViewTest, WriteAndAllocateReturnUnimplemented) {
  DiskManager disk;
  disk.AllocateOrDie();
  ReadOnlyDiskView view(disk);
  auto image = MakeImage(disk.page_size(), 0);
  const core::Status written = view.Write(0, image);
  EXPECT_EQ(written.code(), core::StatusCode::kUnimplemented);
  const core::StatusOr<PageId> allocated = view.Allocate();
  EXPECT_EQ(allocated.status().code(), core::StatusCode::kUnimplemented);
  EXPECT_EQ(disk.page_count(), 1u) << "the refusal must not touch the device";
}

TEST(DiskManagerDeathTest, OutOfRangeAborts) {
  DiskManager disk;
  auto image = MakeImage(disk.page_size(), 0);
  EXPECT_DEATH(disk.Read(7, image), "out of range");
}

TEST(DiskManagerDeathTest, WrongBufferSizeAborts) {
  DiskManager disk;
  disk.AllocateOrDie();
  auto small = MakeImage(16, 0);
  EXPECT_DEATH(disk.Read(0, small), "SDB_CHECK");
}

}  // namespace
}  // namespace sdb::storage
