// Property suite for the batch geometry kernels (geom/kernels): every
// compiled-in dispatch tier must match the scalar reference BIT-FOR-BIT —
// same mask bytes and hit counts from IntersectMask, and identical double
// bit patterns from the three sum kernels — over adversarial rectangle
// sets: empty (inverted, ±inf coordinates), degenerate points/lines,
// touching edges, huge-magnitude coordinates, and dense random mixtures.
//
// Carries the "kernels" ctest label so the asan preset (full suite) and the
// tsan preset (label filter tsan|obs|kernels) both exercise it.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "geom/entry_aggregates.h"
#include "geom/kernels/kernels.h"
#include "rtree/node_view.h"
#include "rtree/rtree.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace sdb::geom::kernels {
namespace {

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels{Level::kScalar};
  if (LevelAvailable(Level::kSse2)) levels.push_back(Level::kSse2);
  if (LevelAvailable(Level::kAvx2)) levels.push_back(Level::kAvx2);
  return levels;
}

/// SoA rect set under construction.
struct RectSet {
  std::vector<double> xmin, ymin, xmax, ymax;

  size_t size() const { return xmin.size(); }
  void Add(const Rect& r) {
    xmin.push_back(r.xmin);
    ymin.push_back(r.ymin);
    xmax.push_back(r.xmax);
    ymax.push_back(r.ymax);
  }
  Rect At(size_t i) const {
    return Rect(xmin[i], ymin[i], xmax[i], ymax[i]);
  }
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One random rect drawn from the adversarial categories.
Rect AdversarialRect(Rng& rng) {
  switch (rng.NextU64() % 8) {
    case 0:
      return Rect();  // empty: ±inf sentinel coordinates
    case 1: {          // inverted on one axis
      const double x = rng.Uniform(-1, 1), y = rng.Uniform(-1, 1);
      return Rect(x + 0.5, y, x, y + 0.5);
    }
    case 2: {  // degenerate point
      const double x = rng.Uniform(-1, 1), y = rng.Uniform(-1, 1);
      return Rect(x, y, x, y);
    }
    case 3: {  // degenerate horizontal/vertical line
      const double x = rng.Uniform(-1, 1), y = rng.Uniform(-1, 1);
      return rng.NextU64() % 2 ? Rect(x, y, x + 0.5, y) : Rect(x, y, x, y + 0.5);
    }
    case 4: {  // integer grid: exact touching edges/corners
      const double x = static_cast<double>(rng.NextU64() % 8);
      const double y = static_cast<double>(rng.NextU64() % 8);
      return Rect(x, y, x + static_cast<double>(rng.NextU64() % 3),
                  y + static_cast<double>(rng.NextU64() % 3));
    }
    case 5: {  // huge-magnitude coordinates
      const double s = 1e300;
      const double x = rng.Uniform(-1, 1) * s, y = rng.Uniform(-1, 1) * s;
      return Rect(x, y, x + rng.NextDouble() * s, y + rng.NextDouble() * s);
    }
    case 6: {  // half-open to infinity
      const double x = rng.Uniform(-1, 1), y = rng.Uniform(-1, 1);
      return rng.NextU64() % 2 ? Rect(x, y, kInf, y + 1)
                            : Rect(-kInf, y, x, y + 1);
    }
    default: {  // plain random box
      const double x = rng.Uniform(-2, 2), y = rng.Uniform(-2, 2);
      return Rect(x, y, x + rng.NextDouble(), y + rng.NextDouble());
    }
  }
}

RectSet AdversarialSet(Rng& rng, size_t n) {
  RectSet set;
  for (size_t i = 0; i < n; ++i) set.Add(AdversarialRect(rng));
  return set;
}

/// EXPECT bit-identical doubles (distinguishes ±0, compares NaN payloads).
void ExpectBitEqual(double reference, double candidate, const char* what,
                    Level level, size_t n) {
  EXPECT_EQ(std::bit_cast<uint64_t>(reference),
            std::bit_cast<uint64_t>(candidate))
      << what << " diverges from scalar at level "
      << LevelName(level) << " (n=" << n << "): scalar=" << reference
      << " got=" << candidate;
}

class KernelsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelsPropertyTest, AllTiersMatchScalarBitForBit) {
  Rng rng(GetParam());
  const std::vector<Level> levels = AvailableLevels();
  const Ops& scalar = OpsFor(Level::kScalar);
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63, 64, 84, 200};
  for (const size_t n : sizes) {
    const RectSet set = AdversarialSet(rng, n);
    const Rect query = AdversarialRect(rng);
    std::vector<uint8_t> ref_mask(n + 1, 0xee), mask(n + 1, 0xee);
    const size_t ref_hits =
        scalar.intersect_mask(query, set.xmin.data(), set.ymin.data(),
                              set.xmax.data(), set.ymax.data(), n,
                              ref_mask.data());
    const double ref_area = scalar.sum_areas(set.xmin.data(), set.ymin.data(),
                                             set.xmax.data(),
                                             set.ymax.data(), n);
    const double ref_margin = scalar.sum_margins(
        set.xmin.data(), set.ymin.data(), set.xmax.data(), set.ymax.data(),
        n);
    const double ref_overlap = scalar.pairwise_overlap_sum(
        set.xmin.data(), set.ymin.data(), set.xmax.data(), set.ymax.data(),
        n);

    // The scalar mask must agree with Rect::Intersects entry by entry.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ref_mask[i], query.Intersects(set.At(i)) ? 1 : 0) << i;
    }

    for (const Level level : levels) {
      const Ops& ops = OpsFor(level);
      const size_t hits =
          ops.intersect_mask(query, set.xmin.data(), set.ymin.data(),
                             set.xmax.data(), set.ymax.data(), n,
                             mask.data());
      EXPECT_EQ(hits, ref_hits) << LevelName(level) << " n=" << n;
      EXPECT_EQ(0, std::memcmp(mask.data(), ref_mask.data(), n))
          << "mask bytes diverge at level " << LevelName(level)
          << " n=" << n;
      EXPECT_EQ(mask[n], 0xee) << "wrote past the mask at "
                               << LevelName(level);
      ExpectBitEqual(ref_area,
                     ops.sum_areas(set.xmin.data(), set.ymin.data(),
                                   set.xmax.data(), set.ymax.data(), n),
                     "SumAreas", level, n);
      ExpectBitEqual(ref_margin,
                     ops.sum_margins(set.xmin.data(), set.ymin.data(),
                                     set.xmax.data(), set.ymax.data(), n),
                     "SumMargins", level, n);
      ExpectBitEqual(ref_overlap,
                     ops.pairwise_overlap_sum(set.xmin.data(),
                                              set.ymin.data(),
                                              set.xmax.data(),
                                              set.ymax.data(), n),
                     "PairwiseOverlapSum", level, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelsPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 42, 99, 12345));

TEST(KernelsTest, ScalarSumsMatchSequentialWithinTolerance) {
  // The canonical strided order is a reordering of the naive sequential
  // sum; on well-conditioned inputs they agree to tight relative error.
  Rng rng(7);
  const Rect space(0, 0, 1, 1);
  RectSet set;
  double seq_area = 0.0, seq_margin = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Rect r = test::RandomRect(rng, space, 0.2);
    set.Add(r);
    seq_area += r.Area();
    seq_margin += r.Margin();
  }
  const Ops& scalar = OpsFor(Level::kScalar);
  EXPECT_NEAR(scalar.sum_areas(set.xmin.data(), set.ymin.data(),
                               set.xmax.data(), set.ymax.data(), set.size()),
              seq_area, 1e-12 * std::abs(seq_area));
  EXPECT_NEAR(scalar.sum_margins(set.xmin.data(), set.ymin.data(),
                                 set.xmax.data(), set.ymax.data(),
                                 set.size()),
              seq_margin, 1e-12 * std::abs(seq_margin));
  double seq_overlap = 0.0;
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      seq_overlap += IntersectionArea(set.At(i), set.At(j));
    }
  }
  EXPECT_NEAR(scalar.pairwise_overlap_sum(set.xmin.data(), set.ymin.data(),
                                          set.xmax.data(), set.ymax.data(),
                                          set.size()),
              seq_overlap, 1e-12 * std::abs(seq_overlap));
}

TEST(KernelsTest, LevelNamesRoundTrip) {
  for (const Level level :
       {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    EXPECT_EQ(ParseLevelName(LevelName(level), Level::kScalar), level);
  }
  EXPECT_EQ(ParseLevelName("bogus", Level::kSse2), Level::kSse2);
  EXPECT_EQ(ParseLevelName("", Level::kAvx2), Level::kAvx2);
}

TEST(KernelsTest, ScalarAlwaysAvailableAndActiveLevelValid) {
  EXPECT_TRUE(LevelAvailable(Level::kScalar));
  EXPECT_TRUE(LevelAvailable(ActiveLevel()));
}

TEST(KernelsTest, SoaBufferGrowsAndKeepsSegmentsDisjoint) {
  SoaBuffer buf;
  buf.Reserve(10);
  const size_t cap = buf.capacity();
  ASSERT_GE(cap, 10u);
  EXPECT_EQ(buf.ymin(), buf.xmin() + cap);
  EXPECT_EQ(buf.xmax(), buf.xmin() + 2 * cap);
  EXPECT_EQ(buf.ymax(), buf.xmin() + 3 * cap);
  buf.Reserve(4);  // never shrinks
  EXPECT_EQ(buf.capacity(), cap);
  buf.Reserve(10 * cap);
  EXPECT_GE(buf.capacity(), 10 * cap);
}

// --- NodeView batch path --------------------------------------------------

TEST(KernelsNodeViewTest, GatherCoordsMatchesEntriesAndScanMatchesScalar) {
  std::vector<std::byte> page(storage::kDefaultPageSize);
  rtree::NodeView node(page);
  node.Init(/*level=*/0);
  Rng rng(5);
  const Rect space(0, 0, 1, 1);
  const uint32_t n = rtree::NodeView::Capacity(page.size());
  for (uint32_t i = 0; i < n; ++i) {
    rtree::Entry e;
    e.id = i + 1;
    e.rect = test::RandomRect(rng, space, 0.1);
    node.Append(e);
  }
  node.RefreshAggregates();

  SoaBuffer coords;
  ASSERT_EQ(node.GatherCoords(&coords), n);
  for (uint32_t i = 0; i < n; ++i) {
    const Rect r = node.GetEntry(static_cast<uint16_t>(i)).rect;
    EXPECT_EQ(coords.xmin()[i], r.xmin);
    EXPECT_EQ(coords.ymin()[i], r.ymin);
    EXPECT_EQ(coords.xmax()[i], r.xmax);
    EXPECT_EQ(coords.ymax()[i], r.ymax);
  }

  std::vector<uint8_t> mask;
  const Rect window = Rect::Centered({0.4, 0.6}, 0.3, 0.3);
  const size_t hits = node.ScanEntries(window, &coords, &mask);
  ASSERT_EQ(mask.size(), n);
  size_t expected_hits = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const bool hit =
        window.Intersects(node.GetEntry(static_cast<uint16_t>(i)).rect);
    EXPECT_EQ(mask[i], hit ? 1 : 0) << i;
    expected_hits += hit;
  }
  EXPECT_EQ(hits, expected_hits);

  // Header aggregates written by RefreshAggregates equal the span-based
  // recompute exactly (both route through the same kernels).
  std::vector<Rect> rects;
  for (uint32_t i = 0; i < n; ++i) {
    rects.push_back(node.GetEntry(static_cast<uint16_t>(i)).rect);
  }
  const EntryAggregates agg = ComputeEntryAggregates(rects);
  const storage::PageMeta meta = node.header().ToMeta();
  EXPECT_EQ(meta.mbr, agg.mbr);
  ExpectBitEqual(agg.sum_entry_area, meta.sum_entry_area, "header EA",
                 ActiveLevel(), n);
  ExpectBitEqual(agg.sum_entry_margin, meta.sum_entry_margin, "header EM",
                 ActiveLevel(), n);
  ExpectBitEqual(agg.entry_overlap, meta.entry_overlap, "header EO",
                 ActiveLevel(), n);
}

// --- end-to-end determinism: whole-tree queries per dispatch tier ---------

TEST(KernelsRTreeTest, WindowQueriesIdenticalAcrossDispatchLevels) {
  storage::DiskManager disk;
  core::BufferManager buffer(&disk, 256,
                             std::make_unique<core::LruPolicy>());
  rtree::RTree tree(&disk, &buffer);
  Rng rng(11);
  const Rect space(0, 0, 1, 1);
  for (uint64_t i = 1; i <= 3000; ++i) {
    rtree::Entry e;
    e.id = i;
    e.rect = test::RandomRect(rng, space, 0.02);
    tree.Insert(e, core::AccessContext{});
  }

  const Level original = ActiveLevel();
  std::vector<std::vector<rtree::Entry>> per_level;
  for (const Level level : AvailableLevels()) {
    ForceLevel(level);
    std::vector<rtree::Entry> hits;
    uint64_t query = 0;
    Rng qrng(23);
    for (int q = 0; q < 50; ++q) {
      const Rect window = Rect::Centered(
          {qrng.NextDouble(), qrng.NextDouble()}, 0.1, 0.1);
      const auto result =
          tree.WindowQuery(window, core::AccessContext{++query});
      hits.insert(hits.end(), result.begin(), result.end());
    }
    per_level.push_back(std::move(hits));
  }
  ForceLevel(original);
  for (size_t i = 1; i < per_level.size(); ++i) {
    EXPECT_EQ(per_level[i], per_level[0])
        << "query results diverge between dispatch tiers";
  }
}

}  // namespace
}  // namespace sdb::geom::kernels
