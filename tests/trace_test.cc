#include <gtest/gtest.h>

#include <memory>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace sdb::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.kind = DatabaseKind::kUsLike;
    options.build = BuildMode::kBulkLoad;
    options.scale = 0.05;
    scenario_ = new Scenario(BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static workload::QuerySet Queries(size_t count) {
    workload::QuerySpec spec;
    spec.family = workload::QueryFamily::kSimilar;
    spec.ex = 100;
    spec.count = count;
    spec.seed = 3;
    return workload::MakeQuerySet(spec, scenario_->dataset,
                                  scenario_->places);
  }

  static Scenario* scenario_;
};

Scenario* TraceTest::scenario_ = nullptr;

TEST_F(TraceTest, RecordsEveryBufferRequest) {
  const workload::QuerySet queries = Queries(80);
  const AccessTrace trace = RecordQueryTrace(
      scenario_->disk.get(), scenario_->tree_meta, queries, 64);
  EXPECT_EQ(trace.name, queries.name);
  EXPECT_GT(trace.accesses.size(), queries.queries.size())
      << "every query touches at least the root";
  for (const PageAccess& access : trace.accesses) {
    EXPECT_NE(access.page, storage::kInvalidPageId);
    EXPECT_GE(access.query_id, 1u);
  }
}

TEST_F(TraceTest, TraceIsIndependentOfTheRecordingPolicy) {
  const workload::QuerySet queries = Queries(60);
  const AccessTrace a = RecordQueryTrace(scenario_->disk.get(),
                                         scenario_->tree_meta, queries, 48,
                                         "LRU");
  const AccessTrace b = RecordQueryTrace(scenario_->disk.get(),
                                         scenario_->tree_meta, queries, 48,
                                         "A");
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].page, b.accesses[i].page);
    EXPECT_EQ(a.accesses[i].query_id, b.accesses[i].query_id);
  }
}

TEST_F(TraceTest, ReplayMatchesDirectExecution) {
  // The core guarantee: replaying the trace under policy P costs exactly
  // the same disk reads as running the queries under P.
  const workload::QuerySet queries = Queries(100);
  const size_t frames = scenario_->BufferFrames(0.012);
  const AccessTrace trace = RecordQueryTrace(
      scenario_->disk.get(), scenario_->tree_meta, queries, frames);
  for (const char* policy : {"LRU", "LRU-2", "A", "SLRU:A:0.25", "ASB",
                             "2Q", "GCLOCK"}) {
    RunOptions options;
    options.buffer_frames = frames;
    const RunResult direct = RunQuerySet(
        scenario_->disk.get(), scenario_->tree_meta, policy, queries,
        options);
    const ReplayResult replayed =
        ReplayTrace(scenario_->disk.get(), trace, policy, frames);
    EXPECT_EQ(replayed.disk_reads, direct.disk_reads) << policy;
    EXPECT_EQ(replayed.requests, direct.buffer_requests) << policy;
    EXPECT_EQ(replayed.hits, direct.buffer_hits) << policy;
  }
}

TEST_F(TraceTest, ReplayAcrossBufferSizes) {
  const workload::QuerySet queries = Queries(60);
  const AccessTrace trace = RecordQueryTrace(
      scenario_->disk.get(), scenario_->tree_meta, queries, 128);
  uint64_t previous = ~0ull;
  for (size_t frames : {16, 64, 256}) {
    const ReplayResult result =
        ReplayTrace(scenario_->disk.get(), trace, "LRU", frames);
    EXPECT_LE(result.disk_reads, previous);
    previous = result.disk_reads;
  }
}

}  // namespace
}  // namespace sdb::sim
