#include <gtest/gtest.h>

#include "core/policy_asb.h"
#include "core/policy_factory.h"
#include "core/policy_lru_k.h"
#include "core/policy_slru.h"
#include "core/policy_spatial.h"

namespace sdb::core {
namespace {

TEST(PolicyFactoryTest, CreatesSimplePolicies) {
  for (const char* spec : {"LRU", "FIFO", "CLOCK", "LRU-T", "LRU-P"}) {
    auto policy = CreatePolicy(spec);
    ASSERT_NE(policy, nullptr) << spec;
    EXPECT_EQ(policy->name(), spec);
  }
}

TEST(PolicyFactoryTest, CreatesLruK) {
  auto policy = CreatePolicy("LRU-2");
  ASSERT_NE(policy, nullptr);
  auto* lru_k = dynamic_cast<LruKPolicy*>(policy.get());
  ASSERT_NE(lru_k, nullptr);
  EXPECT_EQ(lru_k->k(), 2);
  EXPECT_EQ(CreatePolicy("LRU-5")->name(), "LRU-5");
}

TEST(PolicyFactoryTest, CreatesLruKWithCorrelationPeriod) {
  auto policy = CreatePolicy("LRU-2:T50");
  ASSERT_NE(policy, nullptr);
  auto* lru_k = dynamic_cast<LruKPolicy*>(policy.get());
  ASSERT_NE(lru_k, nullptr);
  EXPECT_EQ(lru_k->correlation_mode(), CorrelationMode::kByPeriod);
  EXPECT_EQ(lru_k->correlation_period(), 50u);
  EXPECT_EQ(CreatePolicy("LRU-2:Txy"), nullptr);
  EXPECT_EQ(CreatePolicy("LRU-2:50"), nullptr);
}

TEST(PolicyFactoryTest, CreatesSpatialPolicies) {
  for (const char* spec : {"A", "EA", "M", "EM", "EO"}) {
    auto policy = CreatePolicy(spec);
    ASSERT_NE(policy, nullptr) << spec;
    EXPECT_EQ(policy->name(), spec);
    EXPECT_NE(dynamic_cast<SpatialPolicy*>(policy.get()), nullptr);
  }
}

TEST(PolicyFactoryTest, CreatesSlruWithDefaults) {
  auto policy = CreatePolicy("SLRU");
  ASSERT_NE(policy, nullptr);
  auto* slru = dynamic_cast<SlruPolicy*>(policy.get());
  ASSERT_NE(slru, nullptr);
  EXPECT_EQ(slru->criterion(), SpatialCriterion::kArea);
  EXPECT_EQ(policy->name(), "SLRU(A,25%)");
}

TEST(PolicyFactoryTest, CreatesSlruWithArguments) {
  auto policy = CreatePolicy("SLRU:M:0.5");
  ASSERT_NE(policy, nullptr);
  auto* slru = dynamic_cast<SlruPolicy*>(policy.get());
  ASSERT_NE(slru, nullptr);
  EXPECT_EQ(slru->criterion(), SpatialCriterion::kMargin);
  EXPECT_EQ(policy->name(), "SLRU(M,50%)");
}

TEST(PolicyFactoryTest, CreatesAsbWithDefaults) {
  auto policy = CreatePolicy("ASB");
  ASSERT_NE(policy, nullptr);
  auto* asb = dynamic_cast<AsbPolicy*>(policy.get());
  ASSERT_NE(asb, nullptr);
  EXPECT_DOUBLE_EQ(asb->config().overflow_fraction, 0.20);
}

TEST(PolicyFactoryTest, CreatesAsbWithFullArguments) {
  auto policy = CreatePolicy("ASB:M:0.3:0.5:0.02");
  ASSERT_NE(policy, nullptr);
  auto* asb = dynamic_cast<AsbPolicy*>(policy.get());
  ASSERT_NE(asb, nullptr);
  EXPECT_EQ(asb->config().criterion, SpatialCriterion::kMargin);
  EXPECT_DOUBLE_EQ(asb->config().overflow_fraction, 0.3);
  EXPECT_DOUBLE_EQ(asb->config().initial_candidate_fraction, 0.5);
  EXPECT_DOUBLE_EQ(asb->config().step_fraction, 0.02);
}

TEST(PolicyFactoryTest, RejectsUnknownSpecs) {
  EXPECT_EQ(CreatePolicy(""), nullptr);
  EXPECT_EQ(CreatePolicy("MRU"), nullptr);
  EXPECT_EQ(CreatePolicy("LRU-x"), nullptr);
  EXPECT_EQ(CreatePolicy("LRU-0"), nullptr);
  EXPECT_EQ(CreatePolicy("SLRU:XX"), nullptr);
  EXPECT_EQ(CreatePolicy("SLRU:A:2.0"), nullptr);
  EXPECT_EQ(CreatePolicy("SLRU:A:0.25:9"), nullptr);
  EXPECT_EQ(CreatePolicy("ASB:QQ"), nullptr);
  EXPECT_EQ(CreatePolicy("ASB:A:0.2:0.25:0.01:7"), nullptr);
}

TEST(PolicyFactoryTest, EveryKnownSpecIsCreatable) {
  for (const std::string& spec : KnownPolicySpecs()) {
    EXPECT_NE(CreatePolicy(spec), nullptr) << spec;
  }
}

}  // namespace
}  // namespace sdb::core
