#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/session_generator.h"

namespace sdb::workload {
namespace {

using geom::Rect;

MapParams SmallUs() {
  MapParams params = UsLikeParams(/*scale=*/0.05);  // 10k objects
  return params;
}

MapParams SmallWorld() {
  MapParams params = WorldLikeParams(/*scale=*/0.05);  // 6k objects
  return params;
}

TEST(DataGeneratorTest, ProducesRequestedObjectCount) {
  const GeneratedMap map = GenerateMap(SmallUs());
  EXPECT_EQ(map.dataset.objects.size(), 10'000u);
  EXPECT_EQ(map.dataset.name, "us-like");
  EXPECT_FALSE(map.places.places.empty());
}

TEST(DataGeneratorTest, DeterministicInSeed) {
  const GeneratedMap a = GenerateMap(SmallUs());
  const GeneratedMap b = GenerateMap(SmallUs());
  ASSERT_EQ(a.dataset.objects.size(), b.dataset.objects.size());
  for (size_t i = 0; i < a.dataset.objects.size(); i += 997) {
    EXPECT_EQ(a.dataset.objects[i].rect, b.dataset.objects[i].rect);
  }
  MapParams other = SmallUs();
  other.seed += 1;
  const GeneratedMap c = GenerateMap(other);
  bool any_difference = false;
  for (size_t i = 0; i < a.dataset.objects.size(); ++i) {
    if (!(a.dataset.objects[i].rect == c.dataset.objects[i].rect)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DataGeneratorTest, ObjectsStayWithinLand) {
  const MapParams params = SmallUs();
  const GeneratedMap map = GenerateMap(params);
  Rect land = params.land[0];
  // Extended objects wander up to ~half an extent beyond their anchor.
  land.xmin -= 0.05;
  land.ymin -= 0.05;
  land.xmax += 0.05;
  land.ymax += 0.05;
  for (const SpatialObject& object : map.dataset.objects) {
    EXPECT_TRUE(land.Contains(object.rect))
        << geom::ToString(object.rect);
  }
}

TEST(DataGeneratorTest, UsCoversMostSpaceWorldDoesNot) {
  const GeneratedMap us = GenerateMap(SmallUs());
  const GeneratedMap world = GenerateMap(SmallWorld());
  const double us_coverage = CoverageFraction(us.dataset);
  const double world_coverage = CoverageFraction(world.dataset);
  EXPECT_GT(us_coverage, 0.55)
      << "the mainland must cover most of the space";
  EXPECT_LT(world_coverage, 0.45) << "the world map must be mostly water";
  EXPECT_GT(us_coverage, world_coverage + 0.2);
}

TEST(DataGeneratorTest, MixOfPointAndExtendedObjects) {
  const GeneratedMap map = GenerateMap(SmallUs());
  size_t points = 0, extended = 0;
  for (const SpatialObject& object : map.dataset.objects) {
    if (object.vertices.size() == 1) {
      ++points;
      EXPECT_EQ(object.rect.Area(), 0.0);
    } else {
      ++extended;
      EXPECT_GE(object.vertices.size(), 3u);
    }
  }
  EXPECT_GT(points, map.dataset.objects.size() / 4);
  EXPECT_GT(extended, map.dataset.objects.size() / 4);
}

TEST(DataGeneratorTest, PlacePopulationsAreSkewed) {
  const GeneratedMap map = GenerateMap(SmallUs());
  std::vector<double> pops;
  for (const Place& place : map.places.places) {
    EXPECT_GT(place.population, 0.0);
    pops.push_back(place.population);
  }
  std::sort(pops.begin(), pops.end(), std::greater<>());
  const double total = TotalPopulation(map.places);
  // Zipf-like skew: the top 1% of places holds a disproportionate share.
  double top_share = 0.0;
  for (size_t i = 0; i < pops.size() / 100; ++i) top_share += pops[i];
  EXPECT_GT(top_share / total, 0.10);
}

TEST(DataGeneratorTest, DatasetMbrWithinDataSpace) {
  const GeneratedMap map = GenerateMap(SmallUs());
  EXPECT_TRUE(map.dataset.data_space.Contains(DatasetMbr(map.dataset)));
}

// --- query sets -------------------------------------------------------------

class QueryGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    map_ = new GeneratedMap(GenerateMap(SmallUs()));
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
  }

  static GeneratedMap* map_;
};

GeneratedMap* QueryGeneratorTest::map_ = nullptr;

TEST_F(QueryGeneratorTest, NamesFollowThePaper) {
  EXPECT_EQ(QuerySetName(QueryFamily::kUniform, 0), "U-P");
  EXPECT_EQ(QuerySetName(QueryFamily::kUniform, 33), "U-W-33");
  EXPECT_EQ(QuerySetName(QueryFamily::kIdentical, 0), "ID-P");
  EXPECT_EQ(QuerySetName(QueryFamily::kIdentical, 1), "ID-W");
  EXPECT_EQ(QuerySetName(QueryFamily::kSimilar, 100), "S-W-100");
  EXPECT_EQ(QuerySetName(QueryFamily::kIntensified, 0), "INT-P");
  EXPECT_EQ(QuerySetName(QueryFamily::kIndependent, 1000), "IND-W-1000");
}

TEST_F(QueryGeneratorTest, PointQueriesAreDegenerate) {
  QuerySpec spec;
  spec.family = QueryFamily::kUniform;
  spec.ex = 0;
  spec.count = 100;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);
  EXPECT_TRUE(set.is_point());
  EXPECT_EQ(set.queries.size(), 100u);
  for (const Rect& q : set.queries) {
    EXPECT_EQ(q.Area(), 0.0);
    EXPECT_EQ(q.xmin, q.xmax);
  }
}

TEST_F(QueryGeneratorTest, WindowExtentMatchesSpec) {
  QuerySpec spec;
  spec.family = QueryFamily::kUniform;
  spec.ex = 33;
  spec.count = 50;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);
  for (const Rect& q : set.queries) {
    EXPECT_NEAR(q.width(), 1.0 / 33, 1e-12);
    EXPECT_NEAR(q.height(), 1.0 / 33, 1e-12);
  }
}

TEST_F(QueryGeneratorTest, IdenticalWindowsMaintainObjectSizes) {
  QuerySpec spec;
  spec.family = QueryFamily::kIdentical;
  spec.ex = 1;  // any nonzero: sizes come from the objects
  spec.count = 200;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);
  // Every query rect must be the MBR of some database object.
  size_t matched = 0;
  for (const Rect& q : set.queries) {
    for (const SpatialObject& object : map_->dataset.objects) {
      if (object.rect == q) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, set.queries.size());
}

TEST_F(QueryGeneratorTest, SimilarQueriesSitOnPlaces) {
  QuerySpec spec;
  spec.family = QueryFamily::kSimilar;
  spec.ex = 0;
  spec.count = 200;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);
  for (const Rect& q : set.queries) {
    bool found = false;
    for (const Place& place : map_->places.places) {
      if (place.location.x == q.xmin && place.location.y == q.ymin) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(QueryGeneratorTest, IndependentQueriesAreXFlippedPlaces) {
  QuerySpec spec;
  spec.family = QueryFamily::kIndependent;
  spec.ex = 0;
  spec.count = 200;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);
  for (const Rect& q : set.queries) {
    bool found = false;
    for (const Place& place : map_->places.places) {
      if (std::abs((1.0 - place.location.x) - q.xmin) < 1e-12 &&
          place.location.y == q.ymin) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(QueryGeneratorTest, IntensifiedConcentratesOnPopulatedPlaces) {
  QuerySpec spec;
  spec.family = QueryFamily::kIntensified;
  spec.ex = 0;
  spec.count = 4000;
  const QuerySet set = MakeQuerySet(spec, map_->dataset, map_->places);

  // Empirical hit share of the most populated place must clearly exceed the
  // uniform share 1/|places| (probability ~ sqrt(population)).
  const Place* top = &map_->places.places[0];
  for (const Place& place : map_->places.places) {
    if (place.population > top->population) top = &place;
  }
  size_t top_hits = 0;
  for (const Rect& q : set.queries) {
    if (q.xmin == top->location.x && q.ymin == top->location.y) ++top_hits;
  }
  const double uniform_share = 1.0 / map_->places.places.size();
  EXPECT_GT(static_cast<double>(top_hits) / set.queries.size(),
            3.0 * uniform_share);
}

TEST_F(QueryGeneratorTest, DeterministicInSeed) {
  QuerySpec spec;
  spec.family = QueryFamily::kSimilar;
  spec.ex = 100;
  spec.count = 50;
  spec.seed = 7;
  const QuerySet a = MakeQuerySet(spec, map_->dataset, map_->places);
  const QuerySet b = MakeQuerySet(spec, map_->dataset, map_->places);
  EXPECT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i], b.queries[i]);
  }
}

TEST_F(QueryGeneratorTest, ConcatKeepsOrderAndJoinsNames) {
  QuerySpec spec;
  spec.family = QueryFamily::kUniform;
  spec.ex = 33;
  spec.count = 10;
  const QuerySet a = MakeQuerySet(spec, map_->dataset, map_->places);
  spec.family = QueryFamily::kSimilar;
  spec.count = 5;
  const QuerySet b = MakeQuerySet(spec, map_->dataset, map_->places);
  const QuerySet mixed = ConcatQuerySets({a, b});
  EXPECT_EQ(mixed.name, "U-W-33+S-W-33");
  ASSERT_EQ(mixed.queries.size(), 15u);
  EXPECT_EQ(mixed.queries[0], a.queries[0]);
  EXPECT_EQ(mixed.queries[10], b.queries[0]);
}

// --- browsing sessions ------------------------------------------------------

class SessionGeneratorTest : public QueryGeneratorTest {};

TEST_F(SessionGeneratorTest, ProducesRequestedSteps) {
  SessionParams params;
  params.steps = 500;
  const QuerySet session = MakeSessionQuerySet(params, map_->places);
  EXPECT_EQ(session.name, "SESSION");
  EXPECT_EQ(session.queries.size(), 500u);
}

TEST_F(SessionGeneratorTest, ViewportsStayWithinExtentBounds) {
  SessionParams params;
  params.steps = 1000;
  const QuerySet session = MakeSessionQuerySet(params, map_->places);
  for (const Rect& viewport : session.queries) {
    EXPECT_GE(viewport.width(), params.min_extent - 1e-12);
    EXPECT_LE(viewport.width(), params.max_extent + 1e-12);
    // Width and height agree up to floating-point rounding of the center.
    EXPECT_NEAR(viewport.width(), viewport.height(), 1e-12);
  }
}

TEST_F(SessionGeneratorTest, ConsecutivePansOverlap) {
  SessionParams params;
  params.steps = 2000;
  params.pan_probability = 1.0;  // pure panning
  params.zoom_probability = 0.0;
  const QuerySet session = MakeSessionQuerySet(params, map_->places);
  size_t overlapping = 0;
  for (size_t i = 1; i < session.queries.size(); ++i) {
    if (session.queries[i].Intersects(session.queries[i - 1])) {
      ++overlapping;
    }
  }
  // Pans move at most half a viewport, so consecutive viewports always
  // overlap.
  EXPECT_EQ(overlapping, session.queries.size() - 1);
}

TEST_F(SessionGeneratorTest, JumpsLandOnTopBookmarks) {
  SessionParams params;
  params.steps = 3000;
  params.pan_probability = 0.0;
  params.zoom_probability = 0.0;  // pure jumping
  params.bookmark_count = 5;
  const QuerySet session = MakeSessionQuerySet(params, map_->places);
  // Collect the 5 most-populated places.
  std::vector<Place> ranked = map_->places.places;
  std::sort(ranked.begin(), ranked.end(),
            [](const Place& a, const Place& b) {
              return a.population > b.population;
            });
  for (const Rect& viewport : session.queries) {
    const geom::Point center = viewport.Center();
    bool on_bookmark = false;
    for (size_t b = 0; b < 5; ++b) {
      // Jump targets may be clamped at the space border.
      if (std::abs(center.x - std::clamp(ranked[b].location.x, 0.0, 1.0)) <
              1e-9 &&
          std::abs(center.y - std::clamp(ranked[b].location.y, 0.0, 1.0)) <
              1e-9) {
        on_bookmark = true;
        break;
      }
    }
    EXPECT_TRUE(on_bookmark);
  }
}

TEST_F(SessionGeneratorTest, DeterministicInSeed) {
  SessionParams params;
  params.steps = 300;
  params.seed = 9;
  const QuerySet a = MakeSessionQuerySet(params, map_->places);
  const QuerySet b = MakeSessionQuerySet(params, map_->places);
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i], b.queries[i]);
  }
  params.seed = 10;
  const QuerySet c = MakeSessionQuerySet(params, map_->places);
  bool differs = false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (!(a.queries[i] == c.queries[i])) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace sdb::workload
