#include <gtest/gtest.h>

#include <vector>

#include "rtree/node_view.h"
#include "storage/page.h"

namespace sdb::rtree {
namespace {

class NodeViewTest : public ::testing::Test {
 protected:
  NodeViewTest() : page_(storage::kDefaultPageSize, std::byte{0xEE}) {}

  NodeView View() { return NodeView(page_); }

  std::vector<std::byte> page_;
};

TEST_F(NodeViewTest, CapacityLeavesRoomForHeader) {
  const uint32_t capacity = NodeView::Capacity(storage::kDefaultPageSize);
  EXPECT_EQ(capacity, (4096u - 64u) / 48u);
  EXPECT_GE(capacity, 51u) << "the paper's directory fanout must fit";
}

TEST_F(NodeViewTest, InitLeafClearsPage) {
  NodeView node = View();
  node.Init(0);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.level(), 0);
  EXPECT_EQ(node.count(), 0);
  EXPECT_TRUE(node.mbr().IsEmpty());
  EXPECT_EQ(node.header().type(), storage::PageType::kData);
}

TEST_F(NodeViewTest, InitDirectory) {
  NodeView node = View();
  node.Init(2);
  EXPECT_FALSE(node.is_leaf());
  EXPECT_EQ(node.level(), 2);
  EXPECT_EQ(node.header().type(), storage::PageType::kDirectory);
}

TEST_F(NodeViewTest, AppendAndGetRoundTrip) {
  NodeView node = View();
  node.Init(0);
  Entry e;
  e.rect = geom::Rect(0.1, 0.2, 0.3, 0.4);
  e.id = 0xDEADBEEFCAFEull;
  e.ref = ObjectRef{1234, 56};
  node.Append(e);
  ASSERT_EQ(node.count(), 1);
  EXPECT_EQ(node.GetEntry(0), e);
}

TEST_F(NodeViewTest, SetEntryOverwrites) {
  NodeView node = View();
  node.Init(0);
  Entry a;
  a.rect = geom::Rect(0, 0, 1, 1);
  a.id = 1;
  node.Append(a);
  Entry b;
  b.rect = geom::Rect(2, 2, 3, 3);
  b.id = 2;
  node.SetEntry(0, b);
  EXPECT_EQ(node.GetEntry(0), b);
}

TEST_F(NodeViewTest, WriteEntriesRefreshesAggregates) {
  NodeView node = View();
  node.Init(1);
  std::vector<Entry> entries(2);
  entries[0].rect = geom::Rect(0, 0, 1, 1);
  entries[0].id = 10;
  entries[1].rect = geom::Rect(0.5, 0, 1.5, 1);
  entries[1].id = 11;
  node.WriteEntries(entries);
  EXPECT_EQ(node.count(), 2);
  EXPECT_EQ(node.mbr(), geom::Rect(0, 0, 1.5, 1));
  const storage::PageMeta meta = node.header().ToMeta();
  EXPECT_DOUBLE_EQ(meta.sum_entry_area, 2.0);
  EXPECT_DOUBLE_EQ(meta.sum_entry_margin, 4.0);
  EXPECT_DOUBLE_EQ(meta.entry_overlap, 0.5);
}

TEST_F(NodeViewTest, LoadEntriesReturnsAllInOrder) {
  NodeView node = View();
  node.Init(0);
  std::vector<Entry> entries(5);
  for (int i = 0; i < 5; ++i) {
    entries[i].rect = geom::Rect(i, i, i + 1, i + 1);
    entries[i].id = static_cast<uint64_t>(100 + i);
  }
  node.WriteEntries(entries);
  EXPECT_EQ(node.LoadEntries(), entries);
}

TEST_F(NodeViewTest, WriteShrinkingEntrySetUpdatesCount) {
  NodeView node = View();
  node.Init(0);
  std::vector<Entry> five(5);
  for (int i = 0; i < 5; ++i) five[i].id = static_cast<uint64_t>(i);
  node.WriteEntries(five);
  std::vector<Entry> two(2);
  two[0].id = 7;
  two[1].id = 8;
  node.WriteEntries(two);
  EXPECT_EQ(node.count(), 2);
  EXPECT_EQ(node.LoadEntries(), two);
}

TEST_F(NodeViewTest, DirEntryChildAccessor) {
  Entry e;
  e.id = 4711;
  EXPECT_EQ(e.child(), 4711u);
}

TEST_F(NodeViewTest, RefreshAggregatesAfterManualAppend) {
  NodeView node = View();
  node.Init(0);
  Entry e;
  e.rect = geom::Rect(1, 1, 3, 2);
  node.Append(e);
  node.RefreshAggregates();
  EXPECT_EQ(node.mbr(), geom::Rect(1, 1, 3, 2));
  EXPECT_DOUBLE_EQ(node.header().ToMeta().sum_entry_area, 2.0);
}

TEST_F(NodeViewTest, EmptyWriteClearsAggregates) {
  NodeView node = View();
  node.Init(0);
  std::vector<Entry> one(1);
  one[0].rect = geom::Rect(0, 0, 1, 1);
  node.WriteEntries(one);
  node.WriteEntries({});
  EXPECT_EQ(node.count(), 0);
  EXPECT_TRUE(node.mbr().IsEmpty());
  EXPECT_EQ(node.header().ToMeta().sum_entry_area, 0.0);
}

}  // namespace
}  // namespace sdb::rtree
