#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace sdb::sim {
namespace {

/// End-to-end checks on a dynamically (insert-)built tree — the full paper
/// pipeline in miniature: synthetic map -> R*-tree -> query sets -> policy
/// comparison. Directional assertions use deliberately robust scenarios.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.kind = DatabaseKind::kUsLike;
    options.build = BuildMode::kInsert;  // the paper's construction
    options.scale = 0.25;                // 50k objects
    scenario_ = new Scenario(BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static RunResult Run(const std::string& policy,
                       const workload::QuerySet& queries, double fraction) {
    RunOptions options;
    options.buffer_frames = scenario_->BufferFrames(fraction);
    return RunQuerySet(scenario_->disk.get(), scenario_->tree_meta, policy,
                       queries, options);
  }

  static Scenario* scenario_;
};

Scenario* IntegrationTest::scenario_ = nullptr;

TEST_F(IntegrationTest, InsertBuiltTreeMatchesPaperShape) {
  const rtree::TreeStats& stats = scenario_->tree_stats;
  EXPECT_EQ(stats.object_count, 50'000u);
  EXPECT_GE(stats.height, 3u);
  // The paper's trees have ~2.8% directory pages; ours must be in the same
  // ballpark (fanout-dependent).
  EXPECT_GT(stats.directory_share(), 0.005);
  EXPECT_LT(stats.directory_share(), 0.10);
  // Dynamically built R*-trees are typically ~70% full.
  EXPECT_GT(stats.avg_data_fill, 0.55 * 42);
  EXPECT_LT(stats.avg_data_fill, 0.95 * 42);
}

TEST_F(IntegrationTest, AllPoliciesAgreeOnQueryResults) {
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kIdentical, 1);
  uint64_t reference = 0;
  for (const char* policy : {"LRU", "LRU-P", "LRU-2", "A", "SLRU:A:0.25",
                             "ASB", "FIFO", "EO"}) {
    const RunResult result = Run(policy, queries, 0.012);
    if (reference == 0) reference = result.result_objects;
    EXPECT_EQ(result.result_objects, reference) << policy;
  }
}

TEST_F(IntegrationTest, SpatialPolicyWinsOnUniformWindows) {
  // Fig. 7: for uniformly distributed window queries the pure spatial
  // policy A clearly beats LRU.
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kUniform, 100);
  const RunResult lru = Run("LRU", queries, 0.006);
  const RunResult a = Run("A", queries, 0.006);
  EXPECT_LT(a.disk_reads, lru.disk_reads)
      << "A must beat LRU on the uniform distribution";
}

TEST_F(IntegrationTest, SpatialPolicyLosesOnIntensified) {
  // Fig. 9: areas of intensified interest have *small* pages, so the pure
  // spatial policy backfires there.
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kIntensified, 100);
  const RunResult lru = Run("LRU", queries, 0.047);
  const RunResult a = Run("A", queries, 0.047);
  EXPECT_GT(a.disk_reads, lru.disk_reads)
      << "A must lose against LRU on the intensified distribution";
}

TEST_F(IntegrationTest, AsbIsRobustAcrossDistributions) {
  // The headline claim (Sec. 4.3/5): ASB never increases I/O cost
  // meaningfully versus LRU on ANY investigated distribution, while pure A
  // does. Allow a small tolerance for adaptation warm-up.
  for (const auto family :
       {workload::QueryFamily::kUniform, workload::QueryFamily::kSimilar,
        workload::QueryFamily::kIntensified,
        workload::QueryFamily::kIdentical}) {
    const workload::QuerySet queries =
        StandardQuerySet(*scenario_, family, 100);
    const RunResult lru = Run("LRU", queries, 0.047);
    const RunResult asb = Run("ASB", queries, 0.047);
    EXPECT_LT(static_cast<double>(asb.disk_reads),
              1.06 * static_cast<double>(lru.disk_reads))
        << "ASB must stay close to LRU or better on " << queries.name;
  }
}

TEST_F(IntegrationTest, AsbTracksTheSpatialWinnerOnUniform) {
  // Where A wins big, ASB must capture a substantial part of that win.
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kUniform, 0);
  const RunResult lru = Run("LRU", queries, 0.047);
  const RunResult asb = Run("ASB", queries, 0.047);
  EXPECT_LT(asb.disk_reads, lru.disk_reads)
      << "ASB must beat LRU where the spatial criterion is right";
}

TEST_F(IntegrationTest, Lru2BeatsLruOnPointQueries) {
  // Fig. 5: LRU-2 gains 15-25% on point-query sets.
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kSimilar, 0);
  const RunResult lru = Run("LRU", queries, 0.047);
  const RunResult lru2 = Run("LRU-2", queries, 0.047);
  EXPECT_LT(lru2.disk_reads, lru.disk_reads);
}

TEST_F(IntegrationTest, LruPBeatsLruOnSmallBuffers) {
  // Fig. 4: priority-based LRU wins for small buffers (keeping the upper
  // tree levels resident).
  const workload::QuerySet queries =
      StandardQuerySet(*scenario_, workload::QueryFamily::kUniform, 333);
  const RunResult lru = Run("LRU", queries, 0.003);
  const RunResult lru_p = Run("LRU-P", queries, 0.003);
  EXPECT_LT(lru_p.disk_reads, lru.disk_reads);
}

TEST_F(IntegrationTest, CandidateSetAdaptsToTheWorkloadMix) {
  // Fig. 14 in miniature: intensified queries shrink the candidate set,
  // uniform queries grow it again.
  const workload::QuerySet intensified =
      StandardQuerySet(*scenario_, workload::QueryFamily::kIntensified, 33);
  const workload::QuerySet uniform =
      StandardQuerySet(*scenario_, workload::QueryFamily::kUniform, 33);
  const workload::QuerySet mixed =
      workload::ConcatQuerySets({intensified, uniform});

  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(collect);
  RunOptions options;
  options.buffer_frames = scenario_->BufferFrames(0.047);
  options.collector = &collector;
  const RunResult result = RunQuerySet(
      scenario_->disk.get(), scenario_->tree_meta, "ASB", mixed, options);
  EXPECT_GT(result.disk_reads, 0u);
  const std::vector<size_t> trace =
      AsbCandidateTrace(collector.events(), mixed.queries.size());
  ASSERT_EQ(trace.size(), mixed.queries.size());

  const size_t phase1_end = intensified.queries.size();
  const size_t c_after_intensified = trace[phase1_end - 1];
  const size_t c_after_uniform = trace.back();
  EXPECT_GT(c_after_uniform, c_after_intensified)
      << "uniform phase must push the candidate set up";
}

TEST_F(IntegrationTest, WorldScenarioBuildsAndRuns) {
  ScenarioOptions options;
  options.kind = DatabaseKind::kWorldLike;
  options.build = BuildMode::kBulkLoad;
  options.scale = 0.05;
  const Scenario world = BuildScenario(options);
  EXPECT_EQ(world.name, "world-like");
  EXPECT_GT(world.tree_stats.total_pages(), 50u);

  const workload::QuerySet queries =
      StandardQuerySet(world, workload::QueryFamily::kIndependent, 100);
  RunOptions run;
  run.buffer_frames = world.BufferFrames(0.012);
  const RunResult lru = RunQuerySet(world.disk.get(), world.tree_meta, "LRU",
                                    queries, run);
  EXPECT_GT(lru.disk_reads, 0u);
}

}  // namespace
}  // namespace sdb::sim
