#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace sdb::rtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Rect;
using storage::DiskManager;

std::set<uint64_t> BruteForceWindow(const std::vector<Entry>& entries,
                                    const Rect& window) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) {
    if (e.rect.Intersects(window)) ids.insert(e.id);
  }
  return ids;
}

std::set<uint64_t> Ids(const std::vector<Entry>& entries) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) ids.insert(e.id);
  return ids;
}

std::vector<Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    e.id = i + 1;
    e.rect = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.01);
    entries.push_back(e);
  }
  return entries;
}

TEST(BulkLoadTest, EmptyLoadLeavesEmptyTree) {
  DiskManager disk;
  BufferManager buffer(&disk, 128, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  BulkLoad(&tree, {}, AccessContext{});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Validate(), "");
}

TEST(BulkLoadTest, SingleNodeLoad) {
  DiskManager disk;
  BufferManager buffer(&disk, 128, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  const std::vector<Entry> entries = RandomEntries(10, 1);
  BulkLoad(&tree, entries, AccessContext{});
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.Validate(), "");
  EXPECT_EQ(Ids(tree.WindowQuery(Rect(0, 0, 1, 1), AccessContext{1})),
            Ids(entries));
}

class BulkLoadPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(BulkLoadPropertyTest, LoadedTreeIsValidAndExact) {
  const auto [seed, count] = GetParam();
  DiskManager disk;
  BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  const std::vector<Entry> entries = RandomEntries(count, seed);
  BulkLoad(&tree, entries, AccessContext{});
  EXPECT_EQ(tree.size(), count);
  ASSERT_EQ(tree.Validate(), "");

  Rng rng(seed ^ 0xabcdef);
  const AccessContext ctx{2};
  for (int q = 0; q < 30; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2);
    EXPECT_EQ(Ids(tree.WindowQuery(window, ctx)),
              BruteForceWindow(entries, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BulkLoadPropertyTest,
                         ::testing::Values(std::tuple{1ull, size_t{43}},
                                           std::tuple{2ull, size_t{100}},
                                           std::tuple{3ull, size_t{1000}},
                                           std::tuple{4ull, size_t{5000}},
                                           std::tuple{5ull, size_t{20000}}));

TEST(BulkLoadTest, ProducesWellFilledPages) {
  DiskManager disk;
  BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  BulkLoad(&tree, RandomEntries(10'000, 9), AccessContext{});
  const TreeStats stats = tree.ComputeStats();
  // Target fill is 70% of 42 = ~29 entries per data page.
  EXPECT_GE(stats.avg_data_fill, 0.55 * tree.config().max_data_entries);
  EXPECT_LE(stats.avg_data_fill, 0.85 * tree.config().max_data_entries);
  EXPECT_LT(stats.directory_share(), 0.1);
}

TEST(BulkLoadTest, LoadedTreeSupportsSubsequentUpdates) {
  DiskManager disk;
  BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  std::vector<Entry> entries = RandomEntries(2000, 12);
  BulkLoad(&tree, entries, AccessContext{});
  const AccessContext ctx{3};
  // Insert more and delete some of the originals.
  Rng rng(77);
  for (size_t i = 0; i < 200; ++i) {
    Entry e;
    e.id = 100'000 + i;
    e.rect = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.01);
    tree.Insert(e, ctx);
    entries.push_back(e);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tree.Delete(entries[i].id, entries[i].rect, ctx));
  }
  entries.erase(entries.begin(), entries.begin() + 200);
  ASSERT_EQ(tree.Validate(), "");
  const Rect window(0.25, 0.25, 0.75, 0.75);
  EXPECT_EQ(Ids(tree.WindowQuery(window, ctx)),
            BruteForceWindow(entries, window));
}

class ZOrderBulkLoadTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(ZOrderBulkLoadTest, ZOrderPackedTreeIsValidAndExact) {
  const auto [seed, count] = GetParam();
  DiskManager disk;
  BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  const std::vector<Entry> entries = RandomEntries(count, seed);
  BulkLoadOptions options;
  options.order = PackingOrder::kZOrder;
  BulkLoad(&tree, entries, AccessContext{}, options);
  EXPECT_EQ(tree.size(), count);
  ASSERT_EQ(tree.Validate(), "");

  Rng rng(seed ^ 0x1234);
  const AccessContext ctx{2};
  for (int q = 0; q < 25; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2);
    EXPECT_EQ(Ids(tree.WindowQuery(window, ctx)),
              BruteForceWindow(entries, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZOrderBulkLoadTest,
                         ::testing::Values(std::tuple{1ull, size_t{50}},
                                           std::tuple{2ull, size_t{2000}},
                                           std::tuple{3ull, size_t{10000}}));

TEST(BulkLoadTest, StrPagesAreMoreCompactThanZOrderPages) {
  // STR tiles produce square-ish pages; z-order pages straddle curve jumps.
  // Compare the total leaf-page area of both packings on the same data.
  const std::vector<Entry> entries = RandomEntries(20'000, 5);
  auto total_leaf_area = [&entries](PackingOrder order) {
    DiskManager disk;
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    RTree tree(&disk, &buffer);
    BulkLoadOptions options;
    options.order = order;
    BulkLoad(&tree, entries, AccessContext{}, options);
    buffer.FlushAll();
    double area = 0.0;
    for (storage::PageId id = 0; id < disk.page_count(); ++id) {
      const storage::PageMeta meta = disk.PeekMeta(id);
      if (meta.type == storage::PageType::kData) area += meta.mbr.Area();
    }
    return area;
  };
  EXPECT_LT(total_leaf_area(PackingOrder::kStr),
            total_leaf_area(PackingOrder::kZOrder));
}

TEST(BulkLoadTest, RejectsNonEmptyTree) {
  DiskManager disk;
  BufferManager buffer(&disk, 128, std::make_unique<core::LruPolicy>());
  RTree tree(&disk, &buffer);
  Entry e;
  e.id = 1;
  e.rect = Rect(0, 0, 0.1, 0.1);
  tree.Insert(e, AccessContext{});
  EXPECT_DEATH(BulkLoad(&tree, RandomEntries(5, 1), AccessContext{}),
               "empty tree");
}

}  // namespace
}  // namespace sdb::rtree
