#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "sim/sweep.h"

namespace sdb::sim {
namespace {

/// One small shared scenario for all sweep tests (bulk-built for speed).
class SweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.kind = DatabaseKind::kUsLike;
    options.build = BuildMode::kBulkLoad;
    options.scale = 0.05;  // 10k objects
    scenario_ = new Scenario(BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static SweepSpec Spec(unsigned threads) {
    using F = workload::QueryFamily;
    SweepSpec spec;
    spec.fractions = {0.006, 0.024};
    spec.sets = {{F::kUniform, 0}, {F::kUniform, 100}, {F::kSimilar, 33}};
    spec.policies = {"A", "SLRU:A:0.25", "ASB"};
    spec.threads = threads;
    return spec;
  }

  static Scenario* scenario_;
};

Scenario* SweepTest::scenario_ = nullptr;

TEST_F(SweepTest, GridShapeAndSharedBaselines) {
  const SweepSpec spec = Spec(1);
  const SweepResult result = RunSweep(*scenario_, spec);
  ASSERT_EQ(result.baselines.size(), spec.fractions.size() * spec.sets.size());
  ASSERT_EQ(result.cells.size(),
            result.baselines.size() * spec.policies.size());
  for (size_t fi = 0; fi < spec.fractions.size(); ++fi) {
    for (size_t si = 0; si < spec.sets.size(); ++si) {
      const RunResult& baseline = result.baseline(fi, si);
      EXPECT_EQ(baseline.policy, spec.baseline);
      EXPECT_GT(baseline.disk_reads, 0u);
      for (size_t pi = 0; pi < spec.policies.size(); ++pi) {
        const SweepCell& cell = result.cell(fi, si, pi);
        EXPECT_EQ(cell.fraction_index, fi);
        EXPECT_EQ(cell.set_index, si);
        EXPECT_EQ(cell.policy_index, pi);
        EXPECT_FALSE(cell.result.policy.empty());
        EXPECT_EQ(cell.result.result_objects, baseline.result_objects)
            << "policies must not change query results";
      }
    }
  }
}

TEST_F(SweepTest, ParallelSweepMatchesSequentialExactly) {
  const SweepResult sequential = RunSweep(*scenario_, Spec(1));
  const SweepResult parallel = RunSweep(*scenario_, Spec(4));
  ASSERT_EQ(parallel.cells.size(), sequential.cells.size());
  for (size_t i = 0; i < sequential.baselines.size(); ++i) {
    EXPECT_EQ(parallel.baselines[i].disk_reads,
              sequential.baselines[i].disk_reads);
    EXPECT_EQ(parallel.baselines[i].result_objects,
              sequential.baselines[i].result_objects);
  }
  for (size_t i = 0; i < sequential.cells.size(); ++i) {
    EXPECT_EQ(parallel.cells[i].result.disk_reads,
              sequential.cells[i].result.disk_reads);
    EXPECT_EQ(parallel.cells[i].result.sequential_reads,
              sequential.cells[i].result.sequential_reads);
    EXPECT_EQ(parallel.cells[i].result.result_objects,
              sequential.cells[i].result.result_objects);
    EXPECT_DOUBLE_EQ(parallel.cells[i].gain, sequential.cells[i].gain);
  }
}

TEST_F(SweepTest, PrintedTablesAreByteIdenticalAcrossThreadCounts) {
  const auto render = [&](unsigned threads) {
    const SweepSpec spec = Spec(threads);
    const SweepResult result = RunSweep(*scenario_, spec);
    ::testing::internal::CaptureStdout();
    PrintSweepTables(*scenario_, spec, result, "sweep-test");
    return ::testing::internal::GetCapturedStdout();
  };
  const std::string sequential = render(1);
  const std::string parallel = render(4);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(parallel, sequential);
}

TEST_F(SweepTest, MergedMetricsAreIdenticalAcrossThreadCounts) {
  // The per-task registries are merged in task-index order after the join,
  // so the merged snapshot must not depend on the worker-thread count.
  const auto run = [&](unsigned threads) {
    SweepSpec spec = Spec(threads);
    spec.collect_metrics = true;
    return RunSweep(*scenario_, spec);
  };
  const SweepResult sequential = run(1);
  const SweepResult parallel = run(4);
  ASSERT_FALSE(sequential.metrics.empty());
  EXPECT_EQ(parallel.metrics, sequential.metrics);
  // Per-run snapshots travel in the cells too.
  for (const SweepCell& cell : sequential.cells) {
    EXPECT_FALSE(cell.result.metrics.empty());
  }
  // The merged request counter is the sum over every run in the grid.
  uint64_t total_requests = 0;
  for (const RunResult& baseline : sequential.baselines) {
    total_requests += baseline.buffer_requests;
  }
  for (const SweepCell& cell : sequential.cells) {
    total_requests += cell.result.buffer_requests;
  }
  for (const obs::MetricValue& value : sequential.metrics) {
    if (value.name == "buffer.requests") {
      EXPECT_EQ(value.count, total_requests);
    }
  }
}

TEST_F(SweepTest, MetricsAreOffByDefault) {
  const SweepResult result = RunSweep(*scenario_, Spec(2));
  EXPECT_TRUE(result.metrics.empty());
  for (const SweepCell& cell : result.cells) {
    EXPECT_TRUE(cell.result.metrics.empty());
  }
}

TEST_F(SweepTest, TaskTimingsCoverEveryRun) {
  SweepSpec spec = Spec(3);
  const SweepResult result = RunSweep(*scenario_, spec);
  ASSERT_EQ(result.timings.size(),
            result.baselines.size() + result.cells.size());
  for (const TaskTiming& timing : result.timings) {
    EXPECT_FALSE(timing.name.empty());
    EXPECT_LT(timing.worker, spec.threads);
    EXPECT_GE(timing.end_us, timing.begin_us);
  }
  const std::string path = ::testing::TempDir() + "/sweep_trace.json";
  ASSERT_TRUE(WriteSweepTrace(path, result));
}

TEST_F(SweepTest, SweepLeavesSharedDiskStatsUntouched) {
  scenario_->disk->ResetStats();
  (void)RunSweep(*scenario_, Spec(4));
  EXPECT_EQ(scenario_->disk->stats().accesses(), 0u)
      << "runs must count I/O on their private views only";
}

TEST_F(SweepTest, ThreadsEnvParsing) {
  ASSERT_EQ(setenv("SDB_BENCH_THREADS", "4", 1), 0);
  EXPECT_EQ(BenchThreadsFromEnv(), 4u);
  ASSERT_EQ(setenv("SDB_BENCH_THREADS", "0", 1), 0);
  EXPECT_EQ(BenchThreadsFromEnv(), 1u) << "clamped to at least one";
  ASSERT_EQ(setenv("SDB_BENCH_THREADS", "junk", 1), 0);
  EXPECT_EQ(BenchThreadsFromEnv(), 1u);
  ASSERT_EQ(unsetenv("SDB_BENCH_THREADS"), 0);
  EXPECT_EQ(BenchThreadsFromEnv(), 1u);
}

}  // namespace
}  // namespace sdb::sim
