#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StagePage;
using test::Touch;

/// The contract every replacement policy must honor, verified uniformly
/// across all predefined specs (parameterized suite). Whatever clever
/// structure a policy maintains internally, the buffer-facing behaviour
/// must satisfy these invariants.
class PolicyContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void StagePages(DiskManager& disk, int n) {
    Rng rng(7);
    for (int i = 0; i < n; ++i) {
      const PageType type = i % 5 == 0   ? PageType::kDirectory
                            : i % 5 == 1 ? PageType::kObject
                                         : PageType::kData;
      const uint8_t level =
          type == PageType::kDirectory ? static_cast<uint8_t>(1 + i % 3) : 0;
      const double side = 0.01 + rng.NextDouble() * 0.3;
      pages_.push_back(StagePage(disk, type, level,
                                 geom::Rect(0, 0, side, side),
                                 side * side / 2, side, side * 0.1));
    }
  }

  std::vector<PageId> pages_;
};

TEST_P(PolicyContractTest, SurvivesRandomWorkloadWithinCapacity) {
  DiskManager disk;
  StagePages(disk, 60);
  BufferManager buffer(&disk, 12, CreatePolicy(GetParam()));
  Rng rng(42);
  for (int i = 0; i < 3000; ++i) {
    const PageId page = pages_[rng.NextBelow(pages_.size())];
    Touch(buffer, page, 1 + rng.NextBelow(500));
    ASSERT_LE(buffer.resident_count(), 12u);
    ASSERT_TRUE(buffer.Contains(page))
        << "the page just touched must be resident";
  }
  // Accounting is consistent.
  EXPECT_EQ(buffer.stats().hits + buffer.stats().misses,
            buffer.stats().requests);
  EXPECT_EQ(disk.stats().reads, buffer.stats().misses);
}

TEST_P(PolicyContractTest, NeverEvictsPinnedPages) {
  DiskManager disk;
  StagePages(disk, 40);
  BufferManager buffer(&disk, 8, CreatePolicy(GetParam()));
  // Pin three pages for the whole run.
  std::vector<PageHandle> pins;
  for (int i = 0; i < 3; ++i) {
    pins.push_back(buffer.FetchOrDie(pages_[i], AccessContext{1}));
  }
  Rng rng(11);
  for (int i = 0; i < 1500; ++i) {
    Touch(buffer, pages_[3 + rng.NextBelow(pages_.size() - 3)],
          2 + rng.NextBelow(400));
    for (int p = 0; p < 3; ++p) {
      ASSERT_TRUE(buffer.Contains(pages_[p]))
          << GetParam() << " evicted a pinned page";
    }
  }
  pins.clear();
}

TEST_P(PolicyContractTest, DeterministicAcrossIdenticalRuns) {
  auto run = [this]() {
    DiskManager disk;
    pages_.clear();
    StagePages(disk, 50);
    BufferManager buffer(&disk, 10, CreatePolicy(GetParam()));
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
      Touch(buffer, pages_[rng.NextBelow(pages_.size())],
            1 + rng.NextBelow(300));
    }
    return disk.stats().reads;
  };
  const uint64_t first = run();
  const uint64_t second = run();
  EXPECT_EQ(first, second) << GetParam() << " is not deterministic";
}

TEST_P(PolicyContractTest, SingleFrameBufferDegeneratesGracefully) {
  DiskManager disk;
  StagePages(disk, 10);
  BufferManager buffer(&disk, 1, CreatePolicy(GetParam()));
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const PageId page = pages_[rng.NextBelow(pages_.size())];
    Touch(buffer, page, 1 + rng.NextBelow(100));
    ASSERT_TRUE(buffer.Contains(page));
    ASSERT_EQ(buffer.resident_count(), 1u);
  }
}

TEST_P(PolicyContractTest, HotPageHeldUnderModestReusePressure) {
  // Weak performance sanity: a page touched on every second access must
  // produce a decent hit rate under ANY reasonable policy (it is in the
  // buffer's working set by every criterion used here).
  DiskManager disk;
  StagePages(disk, 30);
  BufferManager buffer(&disk, 15, CreatePolicy(GetParam()));
  Rng rng(3);
  const PageId hot = pages_[0];
  for (int i = 0; i < 2000; ++i) {
    Touch(buffer, hot, 1 + i);
    Touch(buffer, pages_[1 + rng.NextBelow(pages_.size() - 1)],
          1 + i);
  }
  EXPECT_GT(buffer.stats().HitRate(), 0.4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContractTest,
    ::testing::ValuesIn(KnownPolicySpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sdb::core
