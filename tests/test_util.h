#ifndef SPATIALBUFFER_TESTS_TEST_UTIL_H_
#define SPATIALBUFFER_TESTS_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/buffer_manager.h"
#include "geom/rect.h"
#include "rtree/node_view.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sdb::test {

/// Writes a page with the given header metadata straight to disk (bypassing
/// any buffer), so policy tests can stage pages with controlled spatial
/// properties. Returns the page id.
inline storage::PageId StagePage(storage::DiskManager& disk,
                                 storage::PageType type, uint8_t level,
                                 const geom::Rect& mbr,
                                 double sum_entry_area = 0.0,
                                 double sum_entry_margin = 0.0,
                                 double entry_overlap = 0.0) {
  const storage::PageId id = disk.AllocateOrDie();
  std::vector<std::byte> image(disk.page_size(), std::byte{0});
  storage::PageHeaderView header(image.data());
  header.set_type(type);
  header.set_level(level);
  header.set_entry_count(0);
  geom::EntryAggregates agg;
  agg.mbr = mbr;
  agg.sum_entry_area = sum_entry_area;
  agg.sum_entry_margin = sum_entry_margin;
  agg.entry_overlap = entry_overlap;
  header.set_aggregates(agg);
  SDB_CHECK(disk.Write(id, image).ok());
  return id;
}

/// Stages a square data page whose MBR area equals `area` (side sqrt(area)),
/// anchored at (0, 0).
inline storage::PageId StageAreaPage(storage::DiskManager& disk,
                                     double area) {
  const double side = area <= 0.0 ? 0.0 : std::sqrt(area);
  return StagePage(disk, storage::PageType::kData, 0,
                   geom::Rect(0, 0, side, side));
}

/// Fetches and immediately unpins a page (a plain "reference" as the
/// replacement-policy literature uses the term).
inline void Touch(core::BufferManager& buffer, storage::PageId page,
                  uint64_t query_id) {
  const core::AccessContext ctx{query_id};
  core::PageHandle handle = buffer.FetchOrDie(page, ctx);
  handle.Release();
}

/// Random rectangle with center in `space` and extents up to `max_extent`.
inline geom::Rect RandomRect(Rng& rng, const geom::Rect& space,
                             double max_extent) {
  const double cx = rng.Uniform(space.xmin, space.xmax);
  const double cy = rng.Uniform(space.ymin, space.ymax);
  const double w = rng.NextDouble() * max_extent;
  const double h = rng.NextDouble() * max_extent;
  return geom::Rect(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2);
}

}  // namespace sdb::test

#endif  // SPATIALBUFFER_TESTS_TEST_UTIL_H_
