#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/spatial_join.h"
#include "test_util.h"

namespace sdb::rtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Rect;
using storage::DiskManager;

std::vector<Entry> RandomEntries(size_t n, uint64_t seed, uint64_t id_base,
                                 double extent) {
  Rng rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    e.id = id_base + i;
    e.rect = test::RandomRect(rng, Rect(0, 0, 1, 1), extent);
    entries.push_back(e);
  }
  return entries;
}

uint64_t BruteForcePairCount(const std::vector<Entry>& a,
                             const std::vector<Entry>& b) {
  uint64_t pairs = 0;
  for (const Entry& ea : a) {
    for (const Entry& eb : b) {
      if (ea.rect.Intersects(eb.rect)) ++pairs;
    }
  }
  return pairs;
}

struct JoinFixture {
  JoinFixture(const std::vector<Entry>& entries, bool bulk = true)
      : buffer(&disk, 2048, std::make_unique<core::LruPolicy>()),
        tree(&disk, &buffer) {
    if (bulk) {
      BulkLoad(&tree, entries, AccessContext{});
    } else {
      for (const Entry& e : entries) tree.Insert(e, AccessContext{});
    }
  }
  DiskManager disk;
  BufferManager buffer;
  RTree tree;
};

class SpatialJoinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpatialJoinTest, CountMatchesBruteForce) {
  const uint64_t seed = GetParam();
  const auto left_entries = RandomEntries(800, seed, 1, 0.02);
  const auto right_entries = RandomEntries(600, seed + 100, 10'000, 0.03);
  JoinFixture left(left_entries);
  JoinFixture right(right_entries);

  const JoinStats stats =
      SpatialJoinCount(left.tree, right.tree, AccessContext{1});
  EXPECT_EQ(stats.result_pairs,
            BruteForcePairCount(left_entries, right_entries));
  EXPECT_GT(stats.node_pairs_visited, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialJoinTest,
                         ::testing::Values(1, 2, 3, 42));

TEST(SpatialJoinVisitTest, ReportsExactPairs) {
  const auto left_entries = RandomEntries(200, 7, 1, 0.05);
  const auto right_entries = RandomEntries(200, 8, 10'000, 0.05);
  JoinFixture left(left_entries);
  JoinFixture right(right_entries);

  std::set<std::pair<uint64_t, uint64_t>> reported;
  SpatialJoin(left.tree, right.tree, AccessContext{1},
              [&reported](const Entry& a, const Entry& b) {
                reported.emplace(a.id, b.id);
              });
  std::set<std::pair<uint64_t, uint64_t>> expected;
  for (const Entry& a : left_entries) {
    for (const Entry& b : right_entries) {
      if (a.rect.Intersects(b.rect)) expected.emplace(a.id, b.id);
    }
  }
  EXPECT_EQ(reported, expected);
}

TEST(SpatialJoinVisitTest, DifferentTreeHeights) {
  // A large insert-built tree against a tiny one (height 1).
  const auto left_entries = RandomEntries(1500, 9, 1, 0.01);
  const auto right_entries = RandomEntries(10, 10, 10'000, 0.3);
  JoinFixture left(left_entries, /*bulk=*/false);
  JoinFixture right(right_entries);
  ASSERT_GT(left.tree.height(), right.tree.height());

  const JoinStats stats =
      SpatialJoinCount(left.tree, right.tree, AccessContext{1});
  EXPECT_EQ(stats.result_pairs,
            BruteForcePairCount(left_entries, right_entries));
}

TEST(SpatialJoinVisitTest, SelfJoinIncludesSelfPairs) {
  const auto entries = RandomEntries(300, 11, 1, 0.02);
  JoinFixture fixture(entries);
  const JoinStats stats =
      SpatialJoinCount(fixture.tree, fixture.tree, AccessContext{1});
  // Every entry intersects itself, so the self-join has at least n pairs.
  EXPECT_GE(stats.result_pairs, entries.size());
  EXPECT_EQ(stats.result_pairs, BruteForcePairCount(entries, entries));
}

TEST(SpatialJoinVisitTest, DisjointDataSetsProduceNoPairs) {
  std::vector<Entry> left_entries, right_entries;
  Rng rng(3);
  for (uint64_t i = 0; i < 100; ++i) {
    Entry e;
    e.id = i + 1;
    e.rect = test::RandomRect(rng, Rect(0, 0, 0.4, 1), 0.02);
    left_entries.push_back(e);
    Entry f;
    f.id = 1000 + i;
    f.rect = test::RandomRect(rng, Rect(0.6, 0, 1, 1), 0.02);
    right_entries.push_back(f);
  }
  JoinFixture left(left_entries);
  JoinFixture right(right_entries);
  const JoinStats stats =
      SpatialJoinCount(left.tree, right.tree, AccessContext{1});
  EXPECT_EQ(stats.result_pairs, 0u);
  // The synchronized traversal must prune: far fewer node pairs than the
  // full cross product of pages.
  const TreeStats ls = left.tree.ComputeStats();
  const TreeStats rs = right.tree.ComputeStats();
  EXPECT_LT(stats.node_pairs_visited,
            static_cast<uint64_t>(ls.total_pages()) * rs.total_pages());
}

}  // namespace
}  // namespace sdb::rtree
