#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/entry_aggregates.h"
#include "geom/rect.h"
#include "test_util.h"

namespace sdb::geom {
namespace {

TEST(RectTest, DefaultConstructedIsEmpty) {
  const Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  EXPECT_EQ(r.width(), 0.0);
  EXPECT_EQ(r.height(), 0.0);
}

TEST(RectTest, DegeneratePointRect) {
  const Rect r = Rect::FromPoint({0.5, 0.25});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  EXPECT_TRUE(r.Contains(Point{0.5, 0.25}));
}

TEST(RectTest, AreaAndMargin) {
  const Rect r(1, 2, 4, 6);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center().x, 2.5);
  EXPECT_EQ(r.Center().y, 4.0);
}

TEST(RectTest, CenteredConstruction) {
  const Rect r = Rect::Centered({0.5, 0.5}, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(r.xmin, 0.4);
  EXPECT_DOUBLE_EQ(r.xmax, 0.6);
  EXPECT_DOUBLE_EQ(r.ymin, 0.45);
  EXPECT_DOUBLE_EQ(r.ymax, 0.55);
}

TEST(RectTest, IntersectsIsClosed) {
  const Rect a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Rect(1, 0, 2, 1)));   // shared edge
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 2, 2)));   // shared corner
  EXPECT_FALSE(a.Intersects(Rect(1.01, 0, 2, 1)));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(RectTest, ContainsRect) {
  const Rect a(0, 0, 1, 1);
  EXPECT_TRUE(a.Contains(Rect(0.2, 0.2, 0.8, 0.8)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Rect(0.2, 0.2, 1.2, 0.8)));
  EXPECT_FALSE(a.Contains(Rect()));  // empty is contained in nothing
}

TEST(RectTest, ExtendFromEmptyYieldsOther) {
  Rect r;
  r.Extend(Rect(1, 2, 3, 4));
  EXPECT_EQ(r, Rect(1, 2, 3, 4));
}

TEST(RectTest, ExtendByEmptyIsNoop) {
  Rect r(1, 2, 3, 4);
  r.Extend(Rect());
  EXPECT_EQ(r, Rect(1, 2, 3, 4));
}

TEST(RectTest, UnionCoversBoth) {
  const Rect u = Union(Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5));
  EXPECT_EQ(u, Rect(0, -1, 3, 1));
}

TEST(RectTest, IntersectionBasics) {
  const Rect a(0, 0, 2, 2);
  const Rect b(1, 1, 3, 3);
  EXPECT_EQ(Intersection(a, b), Rect(1, 1, 2, 2));
  EXPECT_TRUE(Intersection(a, Rect(5, 5, 6, 6)).IsEmpty());
}

TEST(RectTest, IntersectionAreaMatchesIntersection) {
  const Rect a(0, 0, 2, 2);
  const Rect b(1, 1, 3, 3);
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 1.0);
  EXPECT_DOUBLE_EQ(IntersectionArea(a, Rect(2, 2, 3, 3)), 0.0);  // corner
  EXPECT_DOUBLE_EQ(IntersectionArea(a, Rect(5, 0, 6, 1)), 0.0);
}

TEST(RectTest, AreaEnlargement) {
  const Rect base(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(AreaEnlargement(base, Rect(0.2, 0.2, 0.4, 0.4)), 0.0);
  EXPECT_DOUBLE_EQ(AreaEnlargement(base, Rect(0, 0, 2, 1)), 1.0);
}

TEST(RectTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, ToStringIsReadable) {
  EXPECT_EQ(ToString(Rect(0, 0, 1, 2)), "[0,0..1,2]");
}

// --- property tests -------------------------------------------------------

class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, UnionIsCommutativeAndCovering) {
  Rng rng(GetParam());
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 200; ++i) {
    const Rect a = test::RandomRect(rng, space, 0.3);
    const Rect b = test::RandomRect(rng, space, 0.3);
    const Rect u = Union(a, b);
    EXPECT_EQ(u, Union(b, a));
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    EXPECT_GE(u.Area() + 1e-12, std::max(a.Area(), b.Area()));
  }
}

TEST_P(RectPropertyTest, IntersectionIsSymmetricAndContained) {
  Rng rng(GetParam());
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 200; ++i) {
    const Rect a = test::RandomRect(rng, space, 0.4);
    const Rect b = test::RandomRect(rng, space, 0.4);
    const Rect ab = Intersection(a, b);
    EXPECT_EQ(ab, Intersection(b, a));
    EXPECT_DOUBLE_EQ(IntersectionArea(a, b), ab.Area());
    if (!ab.IsEmpty()) {
      EXPECT_TRUE(a.Contains(ab));
      EXPECT_TRUE(b.Contains(ab));
      EXPECT_TRUE(a.Intersects(b));
    } else {
      EXPECT_FALSE(a.Intersects(b));
    }
  }
}

TEST_P(RectPropertyTest, EnlargementIsNonNegativeAndZeroForContained) {
  Rng rng(GetParam());
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 200; ++i) {
    const Rect a = test::RandomRect(rng, space, 0.3);
    const Rect b = test::RandomRect(rng, space, 0.3);
    EXPECT_GE(AreaEnlargement(a, b), -1e-12);
    if (a.Contains(b)) {
      EXPECT_DOUBLE_EQ(AreaEnlargement(a, b), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// --- entry aggregates -----------------------------------------------------

TEST(EntryAggregatesTest, EmptySpan) {
  const EntryAggregates agg = ComputeEntryAggregates({});
  EXPECT_TRUE(agg.mbr.IsEmpty());
  EXPECT_EQ(agg.sum_entry_area, 0.0);
  EXPECT_EQ(agg.sum_entry_margin, 0.0);
  EXPECT_EQ(agg.entry_overlap, 0.0);
}

TEST(EntryAggregatesTest, SingleEntry) {
  const Rect r(0, 0, 2, 3);
  const EntryAggregates agg = ComputeEntryAggregates({{r}});
  EXPECT_EQ(agg.mbr, r);
  EXPECT_DOUBLE_EQ(agg.sum_entry_area, 6.0);
  EXPECT_DOUBLE_EQ(agg.sum_entry_margin, 5.0);
  EXPECT_EQ(agg.entry_overlap, 0.0);
}

TEST(EntryAggregatesTest, HandComputedPair) {
  // Two unit squares overlapping in a 0.5 x 1 strip.
  const std::vector<Rect> entries = {Rect(0, 0, 1, 1), Rect(0.5, 0, 1.5, 1)};
  const EntryAggregates agg = ComputeEntryAggregates(entries);
  EXPECT_EQ(agg.mbr, Rect(0, 0, 1.5, 1));
  EXPECT_DOUBLE_EQ(agg.sum_entry_area, 2.0);
  EXPECT_DOUBLE_EQ(agg.sum_entry_margin, 4.0);
  EXPECT_DOUBLE_EQ(agg.entry_overlap, 0.5);
}

TEST(EntryAggregatesTest, OverlapCountsEachUnorderedPairOnce) {
  // Three identical unit squares: 3 unordered pairs, each overlap 1.
  const std::vector<Rect> entries = {Rect(0, 0, 1, 1), Rect(0, 0, 1, 1),
                                     Rect(0, 0, 1, 1)};
  const EntryAggregates agg = ComputeEntryAggregates(entries);
  EXPECT_DOUBLE_EQ(agg.entry_overlap, 3.0);
}

TEST(EntryAggregatesTest, DisjointEntriesHaveZeroOverlap) {
  const std::vector<Rect> entries = {Rect(0, 0, 1, 1), Rect(2, 2, 3, 3),
                                     Rect(4, 0, 5, 1)};
  const EntryAggregates agg = ComputeEntryAggregates(entries);
  EXPECT_EQ(agg.entry_overlap, 0.0);
  EXPECT_DOUBLE_EQ(agg.sum_entry_area, 3.0);
}

}  // namespace
}  // namespace sdb::geom
