#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_spatial.h"
#include "core/spatial_criterion.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageMeta;
using storage::PageType;
using test::StagePage;
using test::Touch;

TEST(SpatialCriterionTest, EvaluatesAllFiveCriteria) {
  PageMeta meta;
  meta.mbr = geom::Rect(0, 0, 2, 3);
  meta.sum_entry_area = 4.5;
  meta.sum_entry_margin = 7.25;
  meta.entry_overlap = 0.125;
  EXPECT_DOUBLE_EQ(EvaluateCriterion(SpatialCriterion::kArea, meta), 6.0);
  EXPECT_DOUBLE_EQ(EvaluateCriterion(SpatialCriterion::kEntryArea, meta),
                   4.5);
  EXPECT_DOUBLE_EQ(EvaluateCriterion(SpatialCriterion::kMargin, meta), 5.0);
  EXPECT_DOUBLE_EQ(EvaluateCriterion(SpatialCriterion::kEntryMargin, meta),
                   7.25);
  EXPECT_DOUBLE_EQ(EvaluateCriterion(SpatialCriterion::kEntryOverlap, meta),
                   0.125);
}

TEST(SpatialCriterionTest, NamesAndParsing) {
  for (SpatialCriterion crit : kAllCriteria) {
    const auto parsed = ParseCriterion(CriterionName(crit));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, crit);
  }
  EXPECT_FALSE(ParseCriterion("XYZ").has_value());
  EXPECT_FALSE(ParseCriterion("").has_value());
}

/// Fixture staging pages with distinct values for every criterion dimension.
class SpatialPolicyTest : public ::testing::Test {
 protected:
  /// Page whose criterion values are: area = a, entry area = ea,
  /// margin = 2*sqrt(a)... to keep things independent we set the header
  /// aggregates explicitly instead of deriving them from entries.
  PageId Stage(double area, double ea, double em, double eo) {
    const double side = std::sqrt(area);
    return StagePage(disk_, PageType::kData, 0, geom::Rect(0, 0, side, side),
                     ea, em, eo);
  }

  DiskManager disk_;
};

TEST_F(SpatialPolicyTest, AreaCriterionEvictsSmallestPage) {
  const PageId small = Stage(1.0, 0, 0, 0);
  const PageId medium = Stage(4.0, 0, 0, 0);
  const PageId large = Stage(9.0, 0, 0, 0);
  const PageId next = Stage(16.0, 0, 0, 0);
  BufferManager buffer(
      &disk_, 3, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  // Access order is deliberately the reverse of area order: the small page
  // is the most recently used yet must still be the victim.
  Touch(buffer, large, 1);
  Touch(buffer, medium, 2);
  Touch(buffer, small, 3);
  Touch(buffer, next, 4);
  EXPECT_FALSE(buffer.Contains(small));
  EXPECT_TRUE(buffer.Contains(medium));
  EXPECT_TRUE(buffer.Contains(large));
}

TEST_F(SpatialPolicyTest, EntryAreaCriterionUsesSumOfEntryAreas) {
  // Same page MBR everywhere; only the entry-area sums differ.
  const PageId low = Stage(1.0, 0.1, 0, 0);
  const PageId high = Stage(1.0, 0.9, 0, 0);
  const PageId next = Stage(1.0, 0.5, 0, 0);
  BufferManager buffer(&disk_, 2, std::make_unique<SpatialPolicy>(
                                      SpatialCriterion::kEntryArea));
  Touch(buffer, high, 1);
  Touch(buffer, low, 2);
  Touch(buffer, next, 3);
  EXPECT_FALSE(buffer.Contains(low));
  EXPECT_TRUE(buffer.Contains(high));
}

TEST_F(SpatialPolicyTest, EntryMarginCriterion) {
  const PageId low = Stage(1.0, 0, 0.2, 0);
  const PageId high = Stage(1.0, 0, 5.0, 0);
  const PageId next = Stage(1.0, 0, 1.0, 0);
  BufferManager buffer(&disk_, 2, std::make_unique<SpatialPolicy>(
                                      SpatialCriterion::kEntryMargin));
  Touch(buffer, high, 1);
  Touch(buffer, low, 2);
  Touch(buffer, next, 3);
  EXPECT_FALSE(buffer.Contains(low));
  EXPECT_TRUE(buffer.Contains(high));
}

TEST_F(SpatialPolicyTest, EntryOverlapCriterion) {
  const PageId low = Stage(1.0, 0, 0, 0.01);
  const PageId high = Stage(1.0, 0, 0, 0.8);
  const PageId next = Stage(1.0, 0, 0, 0.3);
  BufferManager buffer(&disk_, 2, std::make_unique<SpatialPolicy>(
                                      SpatialCriterion::kEntryOverlap));
  Touch(buffer, high, 1);
  Touch(buffer, low, 2);
  Touch(buffer, next, 3);
  EXPECT_FALSE(buffer.Contains(low));
  EXPECT_TRUE(buffer.Contains(high));
}

TEST_F(SpatialPolicyTest, MarginCriterionPrefersLongBoundaries) {
  // A thin, wide page has a larger margin than a compact page of equal
  // area: margin keeps the thin page.
  const PageId compact =
      StagePage(disk_, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
  const PageId thin =
      StagePage(disk_, PageType::kData, 0, geom::Rect(0, 0, 100, 0.01));
  const PageId next =
      StagePage(disk_, PageType::kData, 0, geom::Rect(0, 0, 2, 2));
  BufferManager buffer(
      &disk_, 2, std::make_unique<SpatialPolicy>(SpatialCriterion::kMargin));
  Touch(buffer, thin, 1);
  Touch(buffer, compact, 2);
  Touch(buffer, next, 3);
  EXPECT_FALSE(buffer.Contains(compact));  // margin 2 < 100.01
  EXPECT_TRUE(buffer.Contains(thin));
}

TEST_F(SpatialPolicyTest, TieBrokenByLru) {
  const PageId a = Stage(1.0, 0, 0, 0);
  const PageId b = Stage(1.0, 0, 0, 0);
  const PageId next = Stage(1.0, 0, 0, 0);
  BufferManager buffer(
      &disk_, 2, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  Touch(buffer, a, 1);
  Touch(buffer, b, 2);
  Touch(buffer, a, 3);      // b is now least recently used
  Touch(buffer, next, 4);   // equal areas -> LRU tie-break evicts b
  EXPECT_TRUE(buffer.Contains(a));
  EXPECT_FALSE(buffer.Contains(b));
}

TEST_F(SpatialPolicyTest, RecomputedCriterionIsLive) {
  // A page whose header is modified while resident must be re-ranked with
  // its *current* value, not the value at load time.
  const PageId shrinker = Stage(100.0, 0, 0, 0);
  const PageId stable = Stage(4.0, 0, 0, 0);
  const PageId next = Stage(9.0, 0, 0, 0);
  BufferManager buffer(
      &disk_, 2, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  {
    const AccessContext ctx{1};
    PageHandle handle = buffer.FetchOrDie(shrinker, ctx);
    geom::EntryAggregates agg;
    agg.mbr = geom::Rect(0, 0, 0.1, 0.1);  // area collapses to 0.01
    handle.header().set_aggregates(agg);
    handle.MarkDirty();
  }
  Touch(buffer, stable, 2);
  Touch(buffer, next, 3);  // shrinker now has the smallest area -> evicted
  EXPECT_FALSE(buffer.Contains(shrinker));
  EXPECT_TRUE(buffer.Contains(stable));
}

TEST_F(SpatialPolicyTest, CriterionCacheInvalidatedByPinnedRewrite) {
  // Regression test for the per-frame criterion cache: an earlier eviction
  // scan caches every resident page's criterion; a page whose MBR is then
  // rewritten in place (while pinned) and marked dirty must be re-ranked
  // with the *new* value on the next eviction, not the cached one.
  const PageId big = Stage(100.0, 0, 0, 0);
  const PageId mid = Stage(4.0, 0, 0, 0);
  const PageId other = Stage(9.0, 0, 0, 0);
  const PageId next = Stage(16.0, 0, 0, 0);
  const PageId last = Stage(25.0, 0, 0, 0);
  BufferManager buffer(
      &disk_, 3, std::make_unique<SpatialPolicy>(SpatialCriterion::kArea));
  Touch(buffer, big, 1);
  Touch(buffer, mid, 2);
  Touch(buffer, other, 3);
  Touch(buffer, next, 4);  // scan caches all criteria; evicts mid (area 4)
  ASSERT_FALSE(buffer.Contains(mid));
  {
    const AccessContext ctx{5};
    PageHandle handle = buffer.FetchOrDie(big, ctx);  // hit: pinned in place
    geom::EntryAggregates agg;
    agg.mbr = geom::Rect(0, 0, 0.1, 0.1);  // area 100 -> 0.01
    handle.header().set_aggregates(agg);
    handle.MarkDirty();
  }
  // With a stale criterion cache the scan would still rank big at 100 and
  // evict other (area 9); the invalidation makes big (0.01) the victim.
  Touch(buffer, last, 6);
  EXPECT_FALSE(buffer.Contains(big));
  EXPECT_TRUE(buffer.Contains(other));
  EXPECT_TRUE(buffer.Contains(next));
}

TEST_F(SpatialPolicyTest, NamesMatchPaper) {
  EXPECT_EQ(SpatialPolicy(SpatialCriterion::kArea).name(), "A");
  EXPECT_EQ(SpatialPolicy(SpatialCriterion::kEntryArea).name(), "EA");
  EXPECT_EQ(SpatialPolicy(SpatialCriterion::kMargin).name(), "M");
  EXPECT_EQ(SpatialPolicy(SpatialCriterion::kEntryMargin).name(), "EM");
  EXPECT_EQ(SpatialPolicy(SpatialCriterion::kEntryOverlap).name(), "EO");
}

}  // namespace
}  // namespace sdb::core
