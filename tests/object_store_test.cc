#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "objstore/object_store.h"
#include "test_util.h"

namespace sdb::objstore {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Point;
using geom::Rect;
using storage::DiskManager;

ExactObject MakePointObject(uint64_t id, double x, double y) {
  ExactObject object;
  object.id = id;
  object.vertices = {Point{x, y}};
  object.mbr = Rect::FromPoint({x, y});
  return object;
}

ExactObject MakeLineObject(uint64_t id, std::vector<Point> vertices) {
  ExactObject object;
  object.id = id;
  for (const Point& v : vertices) object.mbr.Extend(v);
  object.vertices = std::move(vertices);
  return object;
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest()
      : buffer_(&disk_, 64, std::make_unique<core::LruPolicy>()),
        store_(&disk_, &buffer_) {}

  DiskManager disk_;
  BufferManager buffer_;
  ObjectStore store_;
  AccessContext ctx_{1};
};

TEST_F(ObjectStoreTest, AppendGetRoundTrip) {
  const ExactObject object =
      MakeLineObject(42, {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.2}});
  const rtree::ObjectRef ref = store_.Append(object, ctx_);
  const auto loaded = store_.Get(ref, ctx_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->id, 42u);
  EXPECT_EQ(loaded->mbr, object.mbr);
  ASSERT_EQ(loaded->vertices.size(), 3u);
  EXPECT_EQ(loaded->vertices[2], (Point{0.5, 0.2}));
}

TEST_F(ObjectStoreTest, ManyObjectsSpillAcrossPages) {
  std::vector<rtree::ObjectRef> refs;
  for (uint64_t i = 0; i < 500; ++i) {
    ExactObject object = MakeLineObject(
        i, {{0.001 * i, 0.1}, {0.001 * i + 0.01, 0.2},
            {0.001 * i + 0.02, 0.1}});
    refs.push_back(store_.Append(object, ctx_));
  }
  EXPECT_GT(store_.page_count(), 1u);
  for (uint64_t i = 0; i < 500; ++i) {
    const auto loaded = store_.Get(refs[i], ctx_);
    ASSERT_TRUE(loaded.has_value()) << i;
    EXPECT_EQ(loaded->id, i);
  }
}

TEST_F(ObjectStoreTest, InvalidRefsReturnNullopt) {
  EXPECT_FALSE(store_.Get({storage::kInvalidPageId, 0}, ctx_).has_value());
  EXPECT_FALSE(store_.Get({999, 0}, ctx_).has_value());
  const rtree::ObjectRef ref = store_.Append(MakePointObject(1, 0.5, 0.5),
                                             ctx_);
  EXPECT_FALSE(store_.Get({ref.page, 55}, ctx_).has_value())
      << "slot out of range";
}

TEST_F(ObjectStoreTest, ObjectPagesCarrySpatialAggregates) {
  const rtree::ObjectRef ref =
      store_.Append(MakeLineObject(1, {{0.0, 0.0}, {0.5, 0.5}}), ctx_);
  store_.Append(MakeLineObject(2, {{0.25, 0.0}, {0.75, 0.5}}), ctx_);
  buffer_.FlushAll();
  const storage::PageMeta meta = disk_.PeekMeta(ref.page);
  EXPECT_EQ(meta.type, storage::PageType::kObject);
  EXPECT_EQ(meta.entry_count, 2);
  EXPECT_EQ(meta.mbr, Rect(0, 0, 0.75, 0.5));
  EXPECT_GT(meta.sum_entry_area, 0.0);
  EXPECT_GT(meta.entry_overlap, 0.0);
}

TEST_F(ObjectStoreTest, PointRefinement) {
  const rtree::ObjectRef ref =
      store_.Append(MakePointObject(1, 0.5, 0.5), ctx_);
  EXPECT_TRUE(store_.RefineWindow(ref, Rect(0.4, 0.4, 0.6, 0.6), ctx_));
  EXPECT_FALSE(store_.RefineWindow(ref, Rect(0.6, 0.6, 0.7, 0.7), ctx_));
}

TEST_F(ObjectStoreTest, LineRefinementIsExact) {
  // Diagonal line; its MBR covers the whole square but the geometry only
  // passes through the diagonal strip.
  const rtree::ObjectRef ref =
      store_.Append(MakeLineObject(1, {{0.0, 0.0}, {1.0, 1.0}}), ctx_);
  EXPECT_TRUE(store_.RefineWindow(ref, Rect(0.45, 0.45, 0.55, 0.55), ctx_));
  // Window inside the MBR but away from the diagonal: the filter step would
  // accept it, the refinement must reject it.
  EXPECT_FALSE(store_.RefineWindow(ref, Rect(0.8, 0.0, 0.95, 0.15), ctx_));
}

TEST(GeometryIntersectTest, SegmentCrossingWindowWithoutVertexInside) {
  const ExactObject line = MakeLineObject(1, {{0.0, 0.5}, {1.0, 0.5}});
  // Both vertices outside; the segment passes through the window.
  EXPECT_TRUE(ObjectStore::GeometryIntersectsWindow(
      line, Rect(0.4, 0.4, 0.6, 0.6)));
  EXPECT_FALSE(ObjectStore::GeometryIntersectsWindow(
      line, Rect(0.4, 0.6, 0.6, 0.8)));
}

TEST(GeometryIntersectTest, VerticalSegment) {
  const ExactObject line = MakeLineObject(1, {{0.5, 0.0}, {0.5, 1.0}});
  EXPECT_TRUE(ObjectStore::GeometryIntersectsWindow(
      line, Rect(0.45, 0.2, 0.55, 0.3)));
  EXPECT_FALSE(ObjectStore::GeometryIntersectsWindow(
      line, Rect(0.6, 0.2, 0.7, 0.3)));
}

TEST(GeometryIntersectTest, TouchingEndpointCounts) {
  const ExactObject line = MakeLineObject(1, {{0.0, 0.0}, {0.4, 0.4}});
  EXPECT_TRUE(ObjectStore::GeometryIntersectsWindow(
      line, Rect(0.4, 0.4, 0.6, 0.6)));
}

TEST(GeometryIntersectTest, EmptyVerticesFallBackToMbr) {
  ExactObject object;
  object.id = 1;
  object.mbr = Rect(0, 0, 1, 1);
  EXPECT_TRUE(ObjectStore::GeometryIntersectsWindow(
      object, Rect(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(ObjectStore::GeometryIntersectsWindow(
      object, Rect(1.5, 1.5, 2, 2)));
}

TEST_F(ObjectStoreTest, EncodedSize) {
  EXPECT_EQ(ObjectStore::EncodedSize(MakePointObject(1, 0, 0)), 44u + 16u);
  EXPECT_EQ(
      ObjectStore::EncodedSize(MakeLineObject(1, {{0, 0}, {1, 1}, {2, 0}})),
      44u + 48u);
}

TEST_F(ObjectStoreTest, ReadsGoThroughTheBuffer) {
  const rtree::ObjectRef ref =
      store_.Append(MakePointObject(1, 0.5, 0.5), ctx_);
  buffer_.FlushAll();
  disk_.ResetStats();
  // Separate read buffer simulating an experiment.
  BufferManager read_buffer(&disk_, 8, std::make_unique<core::LruPolicy>());
  ObjectStore reader(&disk_, &read_buffer);
  EXPECT_TRUE(reader.Get(ref, ctx_).has_value());
  EXPECT_EQ(disk_.stats().reads, 1u);
  EXPECT_TRUE(reader.Get(ref, ctx_).has_value());
  EXPECT_EQ(disk_.stats().reads, 1u) << "second read must hit the buffer";
}

}  // namespace
}  // namespace sdb::objstore
