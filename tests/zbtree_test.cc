#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_factory.h"
#include "core/policy_lru.h"
#include "test_util.h"
#include "zbtree/zbtree.h"

namespace sdb::zbtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Point;
using geom::Rect;
using storage::DiskManager;

struct Fixture {
  explicit Fixture(const ZBTreeConfig& config = ZBTreeConfig{})
      : buffer(&disk, 4096, std::make_unique<core::LruPolicy>()),
        tree(&disk, &buffer, config) {}

  DiskManager disk;
  BufferManager buffer;
  ZBTree tree;
  AccessContext ctx{1};
};

std::vector<std::pair<Point, uint64_t>> RandomPoints(size_t n,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Point, uint64_t>> points;
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(Point{rng.NextDouble(), rng.NextDouble()}, i + 1);
  }
  return points;
}

std::set<uint64_t> BruteForce(
    const std::vector<std::pair<Point, uint64_t>>& points,
    const Rect& window) {
  std::set<uint64_t> ids;
  for (const auto& [p, id] : points) {
    if (window.Contains(p)) ids.insert(id);
  }
  return ids;
}

std::set<uint64_t> Ids(const std::vector<ZPoint>& points) {
  std::set<uint64_t> ids;
  for (const ZPoint& zp : points) ids.insert(zp.id);
  return ids;
}

TEST(ZBTreeTest, EmptyTree) {
  Fixture f;
  EXPECT_EQ(f.tree.size(), 0u);
  EXPECT_EQ(f.tree.height(), 1u);
  EXPECT_TRUE(f.tree.WindowQuery(Rect(0, 0, 1, 1), f.ctx).empty());
  EXPECT_EQ(f.tree.Validate(), "");
}

TEST(ZBTreeTest, SinglePoint) {
  Fixture f;
  f.tree.Insert({0.3, 0.7}, 42, f.ctx);
  EXPECT_EQ(f.tree.size(), 1u);
  EXPECT_EQ(f.tree.Validate(), "");
  const auto hits = f.tree.WindowQuery(Rect(0.2, 0.6, 0.4, 0.8), f.ctx);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42u);
  EXPECT_EQ(hits[0].point, (Point{0.3, 0.7}));
  EXPECT_TRUE(f.tree.WindowQuery(Rect(0.8, 0.8, 0.9, 0.9), f.ctx).empty());
}

TEST(ZBTreeTest, GrowsAndStaysValid) {
  Fixture f;
  const auto points = RandomPoints(5000, 3);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  EXPECT_EQ(f.tree.size(), 5000u);
  EXPECT_GT(f.tree.height(), 1u);
  ASSERT_EQ(f.tree.Validate(), "");
}

class ZBTreePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, size_t, uint32_t, uint32_t>> {};

TEST_P(ZBTreePropertyTest, WindowQueriesMatchBruteForce) {
  const auto [seed, count, leaf_max, inner_max] = GetParam();
  ZBTreeConfig config;
  config.max_leaf_entries = leaf_max;
  config.max_inner_entries = inner_max;
  Fixture f(config);
  const auto points = RandomPoints(count, seed);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  ASSERT_EQ(f.tree.Validate(), "");

  Rng rng(seed ^ 0x5555);
  for (int q = 0; q < 40; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.25);
    EXPECT_EQ(Ids(f.tree.WindowQuery(window, f.ctx)),
              BruteForce(points, window));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZBTreePropertyTest,
    ::testing::Values(std::tuple{1ull, size_t{200}, 4u, 4u},
                      std::tuple{2ull, size_t{1000}, 8u, 8u},
                      std::tuple{3ull, size_t{3000}, 32u, 16u},
                      std::tuple{4ull, size_t{8000}, 126u, 72u}));

TEST(ZBTreeTest, RangeScanVisitsInOrder) {
  Fixture f;
  const auto points = RandomPoints(2000, 9);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  ZValue previous = 0;
  size_t visited = 0;
  f.tree.RangeScan(0, ~0ull, f.ctx,
                   [&](ZValue z, const ZPoint&) {
                     EXPECT_GE(z, previous);
                     previous = z;
                     ++visited;
                   });
  EXPECT_EQ(visited, 2000u);
}

TEST(ZBTreeTest, RangeScanRespectsBounds) {
  Fixture f;
  const auto points = RandomPoints(2000, 10);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  const ZValue lo = EncodeZ({0.25, 0.25});
  const ZValue hi = EncodeZ({0.5, 0.5});
  size_t expected = 0;
  for (const auto& [p, id] : points) {
    const ZValue z = EncodeZ(p);
    if (z >= lo && z <= hi) ++expected;
  }
  size_t visited = 0;
  f.tree.RangeScan(lo, hi, f.ctx, [&](ZValue z, const ZPoint&) {
    EXPECT_GE(z, lo);
    EXPECT_LE(z, hi);
    ++visited;
  });
  EXPECT_EQ(visited, expected);
}

TEST(ZBTreeTest, DuplicatePositionsAreSupported) {
  Fixture f;
  for (uint64_t id = 1; id <= 300; ++id) {
    f.tree.Insert({0.5, 0.5}, id, f.ctx);
  }
  EXPECT_EQ(f.tree.Validate(), "");
  EXPECT_EQ(
      f.tree.WindowQuery(Rect(0.49, 0.49, 0.51, 0.51), f.ctx).size(), 300u);
}

TEST(ZBTreeTest, DeleteRemovesExactRecord) {
  Fixture f;
  auto points = RandomPoints(1500, 11);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);

  EXPECT_TRUE(f.tree.Delete(points[700].first, points[700].second, f.ctx));
  EXPECT_FALSE(f.tree.Delete(points[700].first, points[700].second, f.ctx));
  EXPECT_EQ(f.tree.size(), 1499u);
  EXPECT_EQ(f.tree.Validate(), "");

  points.erase(points.begin() + 700);
  Rng rng(4);
  for (int q = 0; q < 20; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.3);
    EXPECT_EQ(Ids(f.tree.WindowQuery(window, f.ctx)),
              BruteForce(points, window));
  }
}

TEST(ZBTreeTest, DeleteAmongDuplicatesPicksTheRightId) {
  Fixture f;
  ZBTreeConfig config;
  config.max_leaf_entries = 8;  // force duplicates to spill across leaves
  Fixture g(config);
  for (uint64_t id = 1; id <= 100; ++id) {
    g.tree.Insert({0.5, 0.5}, id, g.ctx);
  }
  EXPECT_TRUE(g.tree.Delete({0.5, 0.5}, 77, g.ctx));
  EXPECT_EQ(g.tree.size(), 99u);
  const auto hits = g.tree.WindowQuery(Rect(0.4, 0.4, 0.6, 0.6), g.ctx);
  EXPECT_EQ(hits.size(), 99u);
  EXPECT_FALSE(Ids(hits).contains(77));
}

TEST(ZBTreeTest, PersistAndReopen) {
  DiskManager disk;
  storage::PageId meta;
  std::vector<std::pair<Point, uint64_t>> points = RandomPoints(2500, 21);
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    ZBTree tree(&disk, &buffer);
    for (const auto& [p, id] : points) {
      tree.Insert(p, id, AccessContext{1});
    }
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  BufferManager fresh(&disk, 64, std::make_unique<core::LruPolicy>());
  const ZBTree reopened = ZBTree::Open(&disk, &fresh, meta);
  EXPECT_EQ(reopened.size(), 2500u);
  EXPECT_EQ(reopened.Validate(), "");
  Rng rng(5);
  for (int q = 0; q < 15; ++q) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2);
    EXPECT_EQ(Ids(reopened.WindowQuery(window, AccessContext{2})),
              BruteForce(points, window));
  }
}

TEST(ZBTreeTest, PagesCarrySpatialAggregatesForThePolicies) {
  // The point of the z-tree in this project: its pages are rankable by the
  // spatial criteria. Check that leaf headers carry sane MBRs and that a
  // spatial policy runs on the tree.
  DiskManager disk;
  storage::PageId meta;
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    ZBTree tree(&disk, &buffer);
    const auto points = RandomPoints(4000, 31);
    for (const auto& [p, id] : points) {
      tree.Insert(p, id, AccessContext{1});
    }
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  // Every data page on disk has a non-empty MBR within the unit square.
  size_t data_pages = 0;
  for (storage::PageId id = 0; id < disk.page_count(); ++id) {
    const storage::PageMeta page_meta = disk.PeekMeta(id);
    if (page_meta.type != storage::PageType::kData) continue;
    if (page_meta.entry_count == 0) continue;
    ++data_pages;
    EXPECT_FALSE(page_meta.mbr.IsEmpty());
    EXPECT_TRUE(Rect(0, 0, 1, 1).Contains(page_meta.mbr));
  }
  EXPECT_GT(data_pages, 10u);

  // Run window queries through a spatial buffer; results must be correct.
  BufferManager spatial_buffer(&disk, 16, core::CreatePolicy("A"));
  const ZBTree tree = ZBTree::Open(&disk, &spatial_buffer, meta);
  const auto hits =
      tree.WindowQuery(Rect(0.2, 0.2, 0.4, 0.4), AccessContext{5});
  EXPECT_GT(hits.size(), 0u);
  EXPECT_GT(spatial_buffer.stats().hits, 0u);
}

TEST(ZBTreeTest, QueryResultsAreInvariantUnderThePolicy) {
  DiskManager disk;
  storage::PageId meta;
  const auto points = RandomPoints(4000, 51);
  {
    BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
    ZBTree tree(&disk, &buffer);
    for (const auto& [p, id] : points) tree.Insert(p, id, AccessContext{1});
    tree.PersistMeta();
    buffer.FlushAll();
    meta = tree.meta_page();
  }
  Rng rng(6);
  std::vector<Rect> windows;
  for (int q = 0; q < 10; ++q) {
    windows.push_back(test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2));
  }
  std::set<uint64_t> reference;
  for (const char* policy : {"LRU", "LRU-2", "A", "ASB", "ARC", "DOM"}) {
    BufferManager buffer(&disk, 16, core::CreatePolicy(policy));
    const ZBTree tree = ZBTree::Open(&disk, &buffer, meta);
    std::set<uint64_t> found;
    uint64_t query_id = 0;
    for (const Rect& window : windows) {
      for (const ZPoint& zp :
           tree.WindowQuery(window, AccessContext{++query_id})) {
        found.insert(zp.id);
      }
    }
    if (reference.empty()) reference = found;
    EXPECT_EQ(found, reference) << policy;
  }
}

TEST(ZBTreeTest, StatsCountPagesAndPoints) {
  Fixture f;
  const auto points = RandomPoints(3000, 41);
  for (const auto& [p, id] : points) f.tree.Insert(p, id, f.ctx);
  const ZTreeStats stats = f.tree.ComputeStats();
  EXPECT_EQ(stats.point_count, 3000u);
  EXPECT_EQ(stats.height, f.tree.height());
  EXPECT_GT(stats.leaf_pages, 1u);
  EXPECT_GT(stats.total_pages(), stats.leaf_pages);
}

}  // namespace
}  // namespace sdb::zbtree
