// End-to-end span-trace propagation: a SessionExecutor with a tracer runs
// browsing sessions against a sharded BufferService, and the emitted kSpan
// stream must reconstruct the session → query → shard-fetch → async-I/O
// causality exactly — deterministic trace ids from the session's query-id
// stride, parent links that respect the span hierarchy, and the same trace
// population regardless of worker count.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "obs/events.h"
#include "obs/trace.h"
#include "sim/scenario.h"
#include "svc/buffer_service.h"
#include "svc/session_executor.h"
#include "workload/session_generator.h"

namespace sdb::svc {
namespace {

using obs::Event;
using obs::SpanKind;

constexpr size_t kSessions = 6;
constexpr size_t kSteps = 60;

class ObsTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioOptions options;
    options.kind = sim::DatabaseKind::kUsLike;
    options.build = sim::BuildMode::kBulkLoad;
    options.scale = 0.02;
    scenario_ = new sim::Scenario(sim::BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static std::vector<workload::QuerySet> Sessions() {
    std::vector<workload::QuerySet> sessions;
    for (size_t i = 0; i < kSessions; ++i) {
      workload::SessionParams params;
      params.steps = kSteps;
      params.seed = 300 + i;
      sessions.push_back(
          workload::MakeSessionQuerySet(params, scenario_->places));
    }
    return sessions;
  }

  /// Runs the sessions through a fresh tracer-attached service and returns
  /// the retained span stream (complete — the ring is unbounded).
  static std::vector<Event> Run(
      const std::vector<workload::QuerySet>& sessions, size_t workers,
      uint64_t sample_every) {
    obs::TracerOptions tracer_options;
    tracer_options.sample_every = sample_every;
    tracer_options.event_capacity = obs::EventRing::kUnbounded;
    obs::Tracer tracer(tracer_options);
    BufferServiceConfig service_config;
    service_config.total_frames = 64;
    service_config.shard_count = 4;
    service_config.policy_spec = "ASB";
    BufferService service(*scenario_->disk, service_config);
    SessionExecutorConfig executor_config;
    executor_config.workers = workers;
    executor_config.tracer = &tracer;
    SessionExecutor executor(scenario_->disk.get(), &service,
                             scenario_->tree_meta, executor_config);
    for (const workload::QuerySet& session : sessions) {
      executor.Submit(session);
    }
    executor.Finish();
    EXPECT_EQ(tracer.dropped(), 0u) << "unbounded ring must retain all";
    return tracer.Spans();
  }

  static uint64_t Stride() { return SessionExecutorConfig{}.query_id_stride; }

  static sim::Scenario* scenario_;
};

sim::Scenario* ObsTraceTest::scenario_ = nullptr;

// Trace ids are a pure function of the session's stride slot: the session
// span's trace id is the query-id base (logical * stride, which no query
// uses), and every query trace id falls inside its session's slot — on the
// session's track.
TEST_F(ObsTraceTest, TraceIdsAreDeterministicPerSessionStride) {
  const std::vector<Event> spans = Run(Sessions(), /*workers=*/2,
                                       /*sample_every=*/1);
  const uint64_t stride = Stride();
  size_t session_spans = 0;
  size_t query_spans = 0;
  for (const Event& span : spans) {
    ASSERT_EQ(span.kind, obs::EventKind::kSpan);
    const uint32_t track = obs::SpanTrackOf(span);
    ASSERT_LT(track, kSessions);
    if (obs::SpanKindOf(span) == SpanKind::kSession) {
      ++session_spans;
      EXPECT_EQ(span.query, track * stride)
          << "session trace id = the slot's query-id base";
      EXPECT_EQ(obs::SpanPayloadOf(span), kSteps);
    } else {
      const uint64_t base = track * stride;
      EXPECT_GT(span.query, base) << "query ids start at base + 1";
      EXPECT_LE(span.query, base + kSteps);
    }
    if (obs::SpanKindOf(span) == SpanKind::kQuery) ++query_spans;
  }
  EXPECT_EQ(session_spans, kSessions);
  EXPECT_EQ(query_spans, kSessions * kSteps)
      << "sample_every=1 traces every query";
}

// The three-case parent rule: roots (kSession, kQuery) have parent 0, a
// kShardFetch's parent resolves to the kQuery span of its own trace, and a
// kAsync* span's parent resolves to a kShardFetch.
TEST_F(ObsTraceTest, ParentLinksRespectTheSpanHierarchy) {
  const std::vector<Event> spans = Run(Sessions(), /*workers=*/2,
                                       /*sample_every=*/1);
  // kind of every span, keyed by (trace, span id) — parent links only ever
  // point within one trace.
  std::map<std::pair<uint64_t, uint16_t>, SpanKind> kind_of;
  for (const Event& span : spans) {
    kind_of[{span.query, obs::SpanIdOf(span)}] = obs::SpanKindOf(span);
  }
  size_t shard_fetches = 0;
  size_t async_spans = 0;
  for (const Event& span : spans) {
    const uint16_t parent = obs::SpanParentOf(span);
    switch (obs::SpanKindOf(span)) {
      case SpanKind::kSession:
      case SpanKind::kQuery:
        EXPECT_EQ(parent, 0) << "roots have no parent";
        break;
      case SpanKind::kShardFetch: {
        ++shard_fetches;
        ASSERT_NE(parent, 0);
        const auto it = kind_of.find({span.query, parent});
        ASSERT_NE(it, kind_of.end());
        EXPECT_EQ(it->second, SpanKind::kQuery)
            << "shard fetches hang off the query span";
        break;
      }
      case SpanKind::kAsyncSubmit:
      case SpanKind::kAsyncComplete: {
        ++async_spans;
        ASSERT_NE(parent, 0);
        const auto it = kind_of.find({span.query, parent});
        ASSERT_NE(it, kind_of.end());
        EXPECT_EQ(it->second, SpanKind::kShardFetch)
            << "async I/O spans hang off the shard fetch that staged them";
        break;
      }
      case SpanKind::kWalAppend:
      case SpanKind::kCheckpoint:
      case SpanKind::kRecovery:
        ADD_FAILURE() << "read-only replay must not emit write-path spans";
        break;
    }
  }
  EXPECT_GT(shard_fetches, 0u);
  EXPECT_GT(async_spans, 0u)
      << "64 frames cannot hold the working set — misses must stage reads";
}

// Everything but the wall-clock fields is reproducible: two serial runs
// over the same sessions emit identical span streams (ids, parents, pages,
// payloads, order).
TEST_F(ObsTraceTest, SerialSpanStreamIsReproducible) {
  const std::vector<workload::QuerySet> sessions = Sessions();
  const auto signature = [](const std::vector<Event>& spans) {
    std::vector<std::tuple<uint64_t, int8_t, uint32_t, uint64_t, uint64_t,
                           bool>>
        sig;
    sig.reserve(spans.size());
    for (const Event& span : spans) {
      sig.emplace_back(span.query, span.delta, span.frame, span.a, span.page,
                       span.flag);
    }
    return sig;
  };
  const std::vector<Event> first = Run(sessions, /*workers=*/1,
                                       /*sample_every=*/4);
  const std::vector<Event> second = Run(sessions, /*workers=*/1,
                                        /*sample_every=*/4);
  EXPECT_EQ(signature(first), signature(second));
}

// Scheduling must not change which traces exist or their per-trace shape:
// a 4-worker run samples the same query ids as a serial run, with exactly
// one root query span per trace.
TEST_F(ObsTraceTest, SampledTracePopulationIsWorkerCountInvariant) {
  const std::vector<workload::QuerySet> sessions = Sessions();
  const auto query_traces = [](const std::vector<Event>& spans) {
    std::set<uint64_t> traces;
    for (const Event& span : spans) {
      if (obs::SpanKindOf(span) == SpanKind::kQuery) traces.insert(span.query);
    }
    return traces;
  };
  const std::vector<Event> serial = Run(sessions, /*workers=*/1,
                                        /*sample_every=*/4);
  const std::vector<Event> parallel = Run(sessions, /*workers=*/4,
                                          /*sample_every=*/4);
  const std::set<uint64_t> serial_traces = query_traces(serial);
  EXPECT_EQ(query_traces(parallel), serial_traces)
      << "sampling is a pure function of the query id";
  EXPECT_FALSE(serial_traces.empty());
  for (const uint64_t trace : serial_traces) {
    EXPECT_EQ(trace % 4, 0u) << "sample_every=4 keeps multiples of 4";
  }
  // Per trace: exactly one kQuery root in both runs.
  std::map<uint64_t, size_t> roots;
  for (const Event& span : parallel) {
    if (obs::SpanKindOf(span) == SpanKind::kQuery) ++roots[span.query];
  }
  for (const auto& [trace, count] : roots) {
    EXPECT_EQ(count, 1u) << "trace " << trace;
  }
}

}  // namespace
}  // namespace sdb::svc
