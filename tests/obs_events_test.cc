#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_asb.h"
#include "obs/collector.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using test::StageAreaPage;
using test::Touch;

/// Validates the observability event stream against the paper's Sec. 4.2
/// adaptation rule: the scenarios mirror policy_asb_test, but the assertions
/// run against the emitted kAsbInit/kAsbAdapt/kEviction events instead of
/// the policy's counters.
class ObsEventsTest : public ::testing::Test {
 protected:
  AsbPolicy* MakeBuffer(size_t frames, const AsbConfig& config) {
    obs::CollectorOptions options;
    options.event_capacity = obs::EventRing::kUnbounded;
    collector_ = std::make_unique<obs::Collector>(options);
    auto policy_owner = std::make_unique<AsbPolicy>(config);
    AsbPolicy* policy = policy_owner.get();
    buffer_ = std::make_unique<BufferManager>(
        &disk_, frames, std::move(policy_owner), collector_.get());
    return policy;
  }

  PageId Page(double area) { return StageAreaPage(disk_, area); }

  void TouchAt(PageId page, uint64_t t) { Touch(*buffer_, page, t); }

  std::vector<obs::Event> EventsOfKind(obs::EventKind kind) const {
    std::vector<obs::Event> out;
    collector_->events().ForEach([&](const obs::Event& event) {
      if (event.kind == kind) out.push_back(event);
    });
    return out;
  }

  DiskManager disk_;
  std::unique_ptr<obs::Collector> collector_;
  std::unique_ptr<BufferManager> buffer_;
};

/// The 5-frame configuration the adaptation scenarios use: overflow 2,
/// main 3, step 1.
AsbConfig SmallConfig(double initial_candidate_fraction) {
  AsbConfig config;
  config.overflow_fraction = 0.4;
  config.initial_candidate_fraction = initial_candidate_fraction;
  config.step_fraction = 0.34;
  return config;
}

TEST_F(ObsEventsTest, InitEventCarriesTheBoundConfiguration) {
  AsbPolicy* policy = MakeBuffer(5, SmallConfig(1.0));
  const std::vector<obs::Event> inits =
      EventsOfKind(obs::EventKind::kAsbInit);
  ASSERT_EQ(inits.size(), 1u);
  EXPECT_EQ(inits[0].a, policy->main_capacity());
  EXPECT_EQ(inits[0].b, policy->overflow_capacity());
  EXPECT_EQ(inits[0].c, policy->candidate_size());
  EXPECT_EQ(inits[0].page, policy->step());
}

TEST_F(ObsEventsTest, SpatialMisjudgementEmitsADecreaseEvent) {
  // Paper case 1 (better_spatial > better_lru): the spatial criterion
  // misjudged the re-referenced page -> c shrinks by one step.
  MakeBuffer(5, SmallConfig(1.0));  // spatial demotion, candidate 3
  const PageId p = Page(1);
  TouchAt(Page(10), 1);
  TouchAt(Page(5), 2);
  TouchAt(Page(6), 3);
  TouchAt(p, 4);        // spatial demotion throws out p itself
  TouchAt(Page(7), 5);  // demotes x (area 5)
  TouchAt(p, 6);        // overflow hit on p

  const std::vector<obs::Event> adapts =
      EventsOfKind(obs::EventKind::kAsbAdapt);
  ASSERT_EQ(adapts.size(), 1u);
  const obs::Event& event = adapts[0];
  EXPECT_EQ(event.a, 1u) << "one overflow page beats p spatially";
  EXPECT_EQ(event.b, 0u) << "no overflow page beats p under LRU";
  EXPECT_EQ(event.delta, -1);
  EXPECT_EQ(event.c, 2u) << "candidate set shrank 3 -> 2";
  EXPECT_EQ(event.page, p);
  EXPECT_EQ(event.query, 6u);
}

TEST_F(ObsEventsTest, LruMisjudgementEmitsAnIncreaseEvent) {
  // Paper case 2 (better_spatial < better_lru): LRU misjudged the page the
  // spatial criterion would have kept -> c grows by one step.
  MakeBuffer(5, SmallConfig(0.2));  // candidate 1 -> LRU demotion
  const PageId big = Page(10);
  TouchAt(big, 1);
  TouchAt(Page(1), 2);
  TouchAt(Page(6), 3);
  TouchAt(Page(7), 4);  // LRU demotion: big (t1)
  TouchAt(Page(8), 5);  // LRU demotion: small (t2)
  TouchAt(big, 6);      // overflow hit on big

  const std::vector<obs::Event> adapts =
      EventsOfKind(obs::EventKind::kAsbAdapt);
  ASSERT_EQ(adapts.size(), 1u);
  const obs::Event& event = adapts[0];
  EXPECT_EQ(event.a, 0u);
  EXPECT_EQ(event.b, 1u);
  EXPECT_EQ(event.delta, 1);
  EXPECT_EQ(event.c, 2u) << "candidate set grew 1 -> 2";
  EXPECT_EQ(event.page, big);
}

TEST_F(ObsEventsTest, BalancedEvidenceEmitsATieEvent) {
  // Paper case 3 (equal counts): the event still records the overflow hit,
  // with delta 0 and an unchanged candidate size.
  MakeBuffer(5, SmallConfig(0.2));
  const PageId p = Page(1);
  TouchAt(p, 1);
  TouchAt(Page(9), 2);
  TouchAt(Page(5), 3);
  TouchAt(Page(6), 4);  // demotes p
  TouchAt(Page(7), 5);  // demotes q (area 9, t2)
  TouchAt(p, 6);        // q beats p both spatially and under LRU

  const std::vector<obs::Event> adapts =
      EventsOfKind(obs::EventKind::kAsbAdapt);
  ASSERT_EQ(adapts.size(), 1u);
  EXPECT_EQ(adapts[0].a, 1u);
  EXPECT_EQ(adapts[0].b, 1u);
  EXPECT_EQ(adapts[0].delta, 0);
  EXPECT_EQ(adapts[0].c, 1u) << "candidate size unchanged";
}

TEST_F(ObsEventsTest, EvictionEventCarriesTheVictim) {
  MakeBuffer(5, SmallConfig(0.2));
  const PageId first = Page(1);
  TouchAt(first, 1);
  TouchAt(Page(2), 2);
  TouchAt(Page(3), 3);
  TouchAt(Page(4), 4);
  TouchAt(Page(5), 5);
  ASSERT_TRUE(EventsOfKind(obs::EventKind::kEviction).empty())
      << "filling free frames evicts nothing";
  TouchAt(Page(6), 6);  // buffer full: evicts the FIFO head = `first`

  const std::vector<obs::Event> evictions =
      EventsOfKind(obs::EventKind::kEviction);
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0].page, first);
  EXPECT_FALSE(evictions[0].flag) << "clean page, no writeback";
  EXPECT_EQ(evictions[0].query, 6u);
}

TEST_F(ObsEventsTest, EventStreamSatisfiesTheThreeCaseRule) {
  // Churn pages through a 10-frame buffer, re-referencing recently demoted
  // pages to provoke overflow hits, then replay the whole event stream
  // against the paper's rule: every kAsbAdapt must encode
  // delta = sign(better_lru - better_spatial) and the clamped step update
  // c' = clamp(c +- step, 1, main_capacity).
  AsbConfig config;
  config.overflow_fraction = 0.4;             // overflow 4, main 6
  config.initial_candidate_fraction = 0.5;    // candidate 3
  config.step_fraction = 0.17;                // step 1
  MakeBuffer(10, config);

  // Cycle over a working set of 8 pages that fits the 10-frame buffer
  // entirely: nothing is ever evicted, but the main section only holds 6
  // pages, so 2 of the 8 always sit in the overflow section. Whenever the
  // cycle reaches one of those, the touch is an overflow hit and must emit
  // one kAsbAdapt event — reliably dozens of them over 200 touches.
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(Page(1.0 + (i * 5) % 8));
  uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    TouchAt(pages[static_cast<size_t>(i) % pages.size()], ++t);
  }

  const std::vector<obs::Event> inits =
      EventsOfKind(obs::EventKind::kAsbInit);
  ASSERT_EQ(inits.size(), 1u);
  const uint64_t main_capacity = inits[0].a;
  const uint64_t step = inits[0].page;
  uint64_t candidate = inits[0].c;

  const std::vector<obs::Event> adapts =
      EventsOfKind(obs::EventKind::kAsbAdapt);
  ASSERT_GT(adapts.size(), 10u) << "the workload must provoke overflow hits";
  bool saw_decrease = false, saw_increase = false;
  for (const obs::Event& event : adapts) {
    const int expected_delta =
        event.a > event.b ? -1 : (event.a < event.b ? 1 : 0);
    EXPECT_EQ(event.delta, expected_delta)
        << "better_spatial=" << event.a << " better_lru=" << event.b;
    uint64_t expected_c = candidate;
    if (expected_delta > 0) {
      expected_c = std::min(main_capacity, candidate + step);
    } else if (expected_delta < 0) {
      expected_c = candidate > step ? candidate - step : 1;
    }
    EXPECT_EQ(event.c, expected_c);
    candidate = event.c;
    saw_decrease = saw_decrease || event.delta < 0;
    saw_increase = saw_increase || event.delta > 0;
  }
  EXPECT_TRUE(saw_decrease || saw_increase)
      << "at least one adaptation must actually move the candidate set";

  // The registry's counters must agree with the event stream.
  const obs::MetricsSnapshot snapshot = collector_->metrics().Snapshot();
  for (const obs::MetricValue& value : snapshot) {
    if (value.name == "asb.overflow_hits") {
      EXPECT_EQ(value.count, adapts.size());
    }
    if (value.name == "asb.candidate") {
      EXPECT_DOUBLE_EQ(value.value, static_cast<double>(candidate));
    }
    if (value.name == "asb.candidate_decreases") {
      EXPECT_EQ(value.count, static_cast<uint64_t>(std::count_if(
                                 adapts.begin(), adapts.end(),
                                 [](const obs::Event& e) {
                                   return e.delta < 0;
                                 })));
    }
  }
}

}  // namespace
}  // namespace sdb::core
