#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_lru_k.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StagePage;
using test::Touch;

class LruKTest : public ::testing::Test {
 protected:
  void Stage(int n) {
    for (int i = 0; i < n; ++i) {
      p_.push_back(StagePage(disk_, PageType::kData, 0,
                             geom::Rect(0, 0, 1, 1)));
    }
  }

  DiskManager disk_;
  std::vector<PageId> p_;
};

TEST_F(LruKTest, NameCarriesK) {
  LruKPolicy two(2), five(5);
  EXPECT_EQ(two.name(), "LRU-2");
  EXPECT_EQ(five.name(), "LRU-5");
  EXPECT_EQ(two.k(), 2);
}

TEST_F(LruKTest, PagesWithoutKthReferenceLoseToPagesWithHistory) {
  // p0 gets two uncorrelated references; p1 only one. With a full buffer,
  // LRU-2 must evict p1 (backward-2 distance infinite) even though p1 was
  // referenced more recently.
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(2));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[0], 2);  // second, uncorrelated reference
  Touch(buffer, p_[1], 3);
  Touch(buffer, p_[2], 4);  // victim must be p1
  EXPECT_TRUE(buffer.Contains(p_[0]));
  EXPECT_FALSE(buffer.Contains(p_[1]));
}

TEST_F(LruKTest, CorrelatedReferencesCollapse) {
  // p0 is referenced twice by the SAME query -> only one uncorrelated
  // reference on record, so p0 has no backward-2 distance and loses against
  // p1, which has two references from different queries.
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(2));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[0], 1);  // correlated (same query)
  Touch(buffer, p_[1], 2);
  Touch(buffer, p_[1], 3);  // uncorrelated
  Touch(buffer, p_[2], 4);
  EXPECT_FALSE(buffer.Contains(p_[0]));
  EXPECT_TRUE(buffer.Contains(p_[1]));
}

TEST_F(LruKTest, OldestBackwardKDistanceLosesAmongFullHistories) {
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(2));
  // Both pages get 2 uncorrelated references; p0's SECOND-most-recent
  // reference (t=1) is older than p1's (t=3), so p0 is the victim, although
  // p0's most recent reference (t=4) is newer than p1's (t=3)!
  Touch(buffer, p_[0], 1);   // t=1
  Touch(buffer, p_[1], 2);   // t=2
  Touch(buffer, p_[1], 3);   // t=3 -> HIST(p1) = {3, 2}
  Touch(buffer, p_[0], 4);   // t=4 -> HIST(p0) = {4, 1}
  Touch(buffer, p_[2], 5);
  EXPECT_FALSE(buffer.Contains(p_[0]));  // HIST(p0,2)=1 < HIST(p1,2)=2
  EXPECT_TRUE(buffer.Contains(p_[1]));
}

TEST_F(LruKTest, HistorySurvivesEviction) {
  Stage(3);
  auto policy_owner = std::make_unique<LruKPolicy>(2);
  LruKPolicy* policy = policy_owner.get();
  BufferManager buffer(&disk_, 2, std::move(policy_owner));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[0], 2);
  Touch(buffer, p_[1], 3);
  Touch(buffer, p_[2], 4);  // evicts p1 -> its history is retained
  EXPECT_EQ(policy->retained_history_size(), 1u);
  // Reloading p1 restores its old stamp: after this access it has TWO
  // uncorrelated references (restored + new).
  Touch(buffer, p_[1], 5);  // evicts p2 (only 1 reference, older HIST(.,1))
  EXPECT_FALSE(buffer.Contains(p_[2]));
  EXPECT_TRUE(buffer.Contains(p_[0]));
  EXPECT_TRUE(buffer.Contains(p_[1]));
}

TEST_F(LruKTest, CurrentQueryPagesAreProtectedFromEviction) {
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(2));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[1], 2);
  // Query 2 just touched p1; when query 2 now faults in p2, the candidate
  // set excludes p1 (correlated with the current access) -> p0 is evicted
  // even though p0 and p1 both lack a backward-2 distance and p0 is older
  // under plain LRU as well... make p0 the recent one to show exclusion:
  Touch(buffer, p_[0], 3);  // now p0 is more recent than p1
  const AccessContext ctx{2};  // same query as p1's last reference
  PageHandle h = buffer.FetchOrDie(p_[2], ctx);
  h.Release();
  EXPECT_TRUE(buffer.Contains(p_[1])) << "correlated page must be excluded";
  EXPECT_FALSE(buffer.Contains(p_[0]));
}

TEST_F(LruKTest, FallsBackToLruWhenEverythingIsCorrelated) {
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(2));
  Touch(buffer, p_[0], 7);
  Touch(buffer, p_[1], 7);
  // The same query faults in a third page; all resident pages are
  // correlated with it, so the policy falls back to LRU and evicts p0.
  Touch(buffer, p_[2], 7);
  EXPECT_FALSE(buffer.Contains(p_[0]));
  EXPECT_TRUE(buffer.Contains(p_[1]));
  EXPECT_TRUE(buffer.Contains(p_[2]));
}

TEST_F(LruKTest, HistAccessorExposesStamps) {
  Stage(1);
  auto policy_owner = std::make_unique<LruKPolicy>(3);
  LruKPolicy* policy = policy_owner.get();
  BufferManager buffer(&disk_, 1, std::move(policy_owner));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[0], 2);
  Touch(buffer, p_[0], 3);
  // Frame 0 holds p0 with three uncorrelated references.
  EXPECT_GT(policy->HistOf(0, 1), policy->HistOf(0, 2));
  EXPECT_GT(policy->HistOf(0, 2), policy->HistOf(0, 3));
  EXPECT_GT(policy->HistOf(0, 3), 0u);
  EXPECT_EQ(policy->HistOf(0, 4), 0u) << "beyond K is 'infinitely old'";
}

TEST_F(LruKTest, Lru1WithQueryCorrelationBehavesLikeLru) {
  Stage(4);
  BufferManager buffer(&disk_, 3, std::make_unique<LruKPolicy>(1));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[1], 2);
  Touch(buffer, p_[2], 3);
  Touch(buffer, p_[0], 4);
  Touch(buffer, p_[3], 5);  // evicts p1 like plain LRU
  EXPECT_FALSE(buffer.Contains(p_[1]));
  EXPECT_TRUE(buffer.Contains(p_[0]));
}

TEST_F(LruKTest, RetainedHistoryGrowsWithDistinctEvictedPages) {
  Stage(6);
  auto policy_owner = std::make_unique<LruKPolicy>(2);
  LruKPolicy* policy = policy_owner.get();
  BufferManager buffer(&disk_, 2, std::move(policy_owner));
  for (int i = 0; i < 6; ++i) {
    Touch(buffer, p_[i], static_cast<uint64_t>(i + 1));
  }
  // 4 pages were evicted, each leaving one retained record — the memory
  // overhead the paper criticizes about LRU-K.
  EXPECT_EQ(policy->retained_history_size(), 4u);
}

// --- correlation-period mode (O'Neil's original definition) -----------------

TEST_F(LruKTest, PeriodModeCollapsesBurstsAcrossQueries) {
  // Two references within the period are correlated even though they come
  // from DIFFERENT queries — the opposite of the by-query default.
  Stage(3);
  BufferManager buffer(&disk_, 2, std::make_unique<LruKPolicy>(
                                      2, CorrelationMode::kByPeriod, 100));
  Touch(buffer, p_[0], 1);
  Touch(buffer, p_[0], 2);  // different query, but within 100 ticks
  Touch(buffer, p_[1], 3);
  Touch(buffer, p_[1], 4);
  // Neither page has an uncorrelated second reference, and both were
  // touched within the last 100 ticks of the faulting access, so the
  // policy falls back to LRU and evicts p0.
  Touch(buffer, p_[2], 5);
  EXPECT_FALSE(buffer.Contains(p_[0]));
  EXPECT_TRUE(buffer.Contains(p_[1]));
}

TEST_F(LruKTest, PeriodModeDivergesFromByQueryOnSingleQueryStreams) {
  // Everything below runs inside ONE query. By-query mode treats all of it
  // as correlated: HISTs collapse and the victim falls back to plain LRU.
  // Period-0 mode treats every tick as uncorrelated: full HISTs are
  // recorded and the backward-2 distance decides — with the opposite
  // outcome on this access pattern.
  //   t1: p0   t2: p1   t3: p1   t4: p0   t5: p2   then fault p3.
  //   By-query: LRU fallback evicts p1 (oldest last access, t3).
  //   Period-0: p2 (just touched) is excluded; between p0 and p1 the
  //   backward-2 distances decide: HIST(p0,2)=t1 < HIST(p1,2)=t2 -> p0.
  const auto run = [this](std::unique_ptr<LruKPolicy> policy) {
    DiskManager disk;
    p_.clear();
    for (int i = 0; i < 4; ++i) {
      p_.push_back(StagePage(disk, PageType::kData, 0,
                             geom::Rect(0, 0, 1, 1)));
    }
    BufferManager buffer(&disk, 3, std::move(policy));
    Touch(buffer, p_[0], 7);
    Touch(buffer, p_[1], 7);
    Touch(buffer, p_[1], 7);
    Touch(buffer, p_[0], 7);
    Touch(buffer, p_[2], 7);
    Touch(buffer, p_[3], 7);
    return std::pair{buffer.Contains(p_[0]), buffer.Contains(p_[1])};
  };
  const auto [q_p0, q_p1] =
      run(std::make_unique<LruKPolicy>(2, CorrelationMode::kByQuery, 0));
  EXPECT_TRUE(q_p0) << "by-query: LRU fallback evicts p1";
  EXPECT_FALSE(q_p1);
  const auto [t_p0, t_p1] =
      run(std::make_unique<LruKPolicy>(2, CorrelationMode::kByPeriod, 0));
  EXPECT_FALSE(t_p0) << "period-0: backward-2 distance evicts p0";
  EXPECT_TRUE(t_p1);
}

TEST_F(LruKTest, PeriodModeNameCarriesPeriod) {
  LruKPolicy policy(2, CorrelationMode::kByPeriod, 50);
  EXPECT_EQ(policy.name(), "LRU-2:T50");
  EXPECT_EQ(policy.correlation_mode(), CorrelationMode::kByPeriod);
  EXPECT_EQ(policy.correlation_period(), 50u);
}

}  // namespace
}  // namespace sdb::core
