// Soak test of the optimistic latching protocol: 16 worker threads over a
// 16-shard service, mixing single fetches, batched fetches, handle moves
// and detach/manual-unpin — the full pin/unpin surface — over a buffer
// small enough that eviction (the writer side of the version-stamp
// protocol) runs constantly. The suite carries the "tsan" label; under
// ThreadSanitizer it is the latch-stress CI job's main payload.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/disk_manager.h"
#include "svc/buffer_service.h"

namespace sdb::svc {
namespace {

using storage::PageId;

class LatchStressTest : public ::testing::Test {
 protected:
  // Synthetic page universe, sized well above the service's frame floor so
  // the soak constantly evicts (the scenario databases are too small for a
  // 16-shard pool with full batch headroom).
  static constexpr size_t kPages = 4096;

  static void SetUpTestSuite() {
    disk_ = new storage::DiskManager();
    std::vector<std::byte> image(disk_->page_size(), std::byte{0});
    for (size_t i = 0; i < kPages; ++i) {
      image[0] = static_cast<std::byte>(i);
      ASSERT_TRUE(disk_->Write(disk_->AllocateOrDie(), image).ok());
    }
  }
  static void TearDownTestSuite() {
    delete disk_;
    disk_ = nullptr;
  }

  static const storage::DiskManager& disk() { return *disk_; }

  static storage::DiskManager* disk_;
};

storage::DiskManager* LatchStressTest::disk_ = nullptr;

TEST_F(LatchStressTest, SixteenWorkersSixteenShardsSoak) {
  constexpr size_t kWorkers = 16;
  constexpr size_t kShards = 16;
  constexpr size_t kOpsPerWorker = 1500;
  constexpr size_t kBatch = 4;
  const size_t page_count = disk().page_count();
  ASSERT_GT(page_count, 0u);

  BufferServiceConfig config;
  config.shard_count = kShards;
  // Tight: enough headroom for every worker's batch to land in one shard
  // (the unevictable-buffer contract), but small against the page universe
  // so the soak constantly evicts.
  config.total_frames = kShards * (kWorkers * (kBatch + 1) + 1);
  config.policy_spec = "ASB";
  config.event_ring_capacity = 64;  // small ring: force frequent drains
  BufferService service(disk(), config);
  ASSERT_EQ(service.latch_mode(), LatchMode::kOptimistic);

  std::atomic<uint64_t> total_fetches{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0x51e55ull + w);
      uint64_t fetches = 0;
      uint64_t query = w * (uint64_t{1} << 32);
      core::PageHandle held;  // carried across iterations (move semantics)
      for (size_t op = 0; op < kOpsPerWorker; ++op) {
        const core::AccessContext ctx{++query};
        const PageId page =
            static_cast<PageId>(rng.NextBelow(page_count));
        switch (op % 4) {
          case 0: {  // fetch + immediate release
            core::PageHandle handle = service.FetchOrDie(page, ctx);
            ASSERT_EQ(handle.page_id(), page);
            ++fetches;
            break;
          }
          case 1: {  // fetch, hold across the next iteration via move
            core::PageHandle handle = service.FetchOrDie(page, ctx);
            held = std::move(handle);
            EXPECT_FALSE(handle.valid());
            ++fetches;
            break;
          }
          case 2: {  // batched fetch, pages possibly duplicated
            PageId batch[kBatch];
            for (size_t i = 0; i < kBatch; ++i) {
              batch[i] = static_cast<PageId>(
                  (page + i * (i == kBatch - 1 ? 0 : 17)) % page_count);
            }
            std::vector<core::StatusOr<core::PageHandle>> handles;
            service.FetchBatch(batch, ctx, &handles);
            ASSERT_EQ(handles.size(), kBatch);
            for (size_t i = 0; i < kBatch; ++i) {
              ASSERT_TRUE(handles[i].ok());
              EXPECT_EQ(handles[i].value().page_id(), batch[i]);
            }
            fetches += kBatch;
            break;
          }
          case 3: {  // release whatever is held
            held.Release();
            break;
          }
        }
      }
      held.Release();
      total_fetches.fetch_add(fetches, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : workers) worker.join();

  const ShardStats stats = service.AggregateStats();
  EXPECT_EQ(stats.buffer.requests, total_fetches.load());
  EXPECT_EQ(stats.buffer.hits + stats.buffer.misses, stats.buffer.requests);
  EXPECT_EQ(stats.buffer.misses, stats.io.reads)
      << "every miss costs exactly one device read (fault-free)";
  EXPECT_GT(stats.buffer.evictions, 0u) << "the soak must exercise eviction";
  EXPECT_GT(stats.optimistic_hits, 0u)
      << "the soak must exercise the latch-free hit path";
  // After the storm every pin is released: a full sweep of the page
  // universe must not abort on an unevictable shard.
  uint64_t query = uint64_t{1} << 62;
  for (PageId page = 0; page < page_count; ++page) {
    service.FetchOrDie(page, core::AccessContext{++query}).Release();
  }
}

}  // namespace
}  // namespace sdb::svc
