#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "obs/collector.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/scenario.h"

namespace sdb::sim {
namespace {

/// One small shared scenario for all experiment tests (bulk-built for
/// speed).
class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.kind = DatabaseKind::kUsLike;
    options.build = BuildMode::kBulkLoad;
    options.scale = 0.05;  // 10k objects
    scenario_ = new Scenario(BuildScenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static workload::QuerySet Queries(workload::QueryFamily family, int ex,
                                    size_t count) {
    workload::QuerySpec spec;
    spec.family = family;
    spec.ex = ex;
    spec.count = count;
    spec.seed = 5;
    return workload::MakeQuerySet(spec, scenario_->dataset,
                                  scenario_->places);
  }

  static Scenario* scenario_;
};

Scenario* ExperimentTest::scenario_ = nullptr;

TEST_F(ExperimentTest, ScenarioIsSane) {
  EXPECT_GT(scenario_->tree_stats.total_pages(), 100u);
  EXPECT_GT(scenario_->tree_stats.height, 1u);
  EXPECT_EQ(scenario_->tree_stats.object_count, 10'000u);
  EXPECT_GT(scenario_->BufferFrames(0.047), scenario_->BufferFrames(0.003));
  EXPECT_GE(scenario_->BufferFrames(0.0001), 8u) << "lower bound";
}

TEST_F(ExperimentTest, ReplayCountsDiskReads) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kUniform, 33, 100);
  RunOptions options;
  options.buffer_frames = scenario_->BufferFrames(0.01);
  const RunResult result = RunQuerySet(scenario_->disk.get(),
                                       scenario_->tree_meta, "LRU", queries,
                                       options);
  EXPECT_EQ(result.policy, "LRU");
  EXPECT_EQ(result.query_set, "U-W-33");
  EXPECT_GT(result.disk_reads, 0u);
  EXPECT_GT(result.buffer_requests, result.disk_reads)
      << "some requests must be buffer hits";
  EXPECT_EQ(result.buffer_hits + result.disk_reads, result.buffer_requests);
  EXPECT_GT(result.result_objects, 0u);
}

TEST_F(ExperimentTest, QueryResultsAreInvariantUnderThePolicy) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kSimilar, 100, 120);
  RunOptions options;
  options.buffer_frames = scenario_->BufferFrames(0.006);
  uint64_t reference = 0;
  for (const char* policy :
       {"LRU", "FIFO", "CLOCK", "GCLOCK", "2Q", "PIN-1", "LRU-T", "LRU-P",
        "LRU-2", "LRU-3", "A", "EA", "M", "EM", "EO", "SLRU:A:0.25",
        "ASB"}) {
    const RunResult result =
        RunQuerySet(scenario_->disk.get(), scenario_->tree_meta, policy,
                    queries, options);
    if (reference == 0) {
      reference = result.result_objects;
    }
    EXPECT_EQ(result.result_objects, reference)
        << "policy " << policy << " changed query results";
    EXPECT_GT(result.disk_reads, 0u);
  }
}

TEST_F(ExperimentTest, LargerBuffersNeverIncreaseLruReads) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kUniform, 100, 150);
  uint64_t previous = ~0ull;
  for (double fraction : {0.003, 0.012, 0.047, 0.2}) {
    RunOptions options;
    options.buffer_frames = scenario_->BufferFrames(fraction);
    const RunResult result = RunQuerySet(
        scenario_->disk.get(), scenario_->tree_meta, "LRU", queries, options);
    EXPECT_LE(result.disk_reads, previous)
        << "LRU reads must shrink with buffer size (fraction " << fraction
        << ")";
    previous = result.disk_reads;
  }
}

TEST_F(ExperimentTest, ColdBufferLowerBound) {
  // With an enormous buffer every distinct page is read exactly once, so
  // disk reads equal the number of touched pages; any smaller buffer reads
  // at least as much.
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kUniform, 33, 80);
  RunOptions huge;
  huge.buffer_frames = scenario_->tree_stats.total_pages() + 16;
  const RunResult cold = RunQuerySet(scenario_->disk.get(),
                                     scenario_->tree_meta, "LRU", queries,
                                     huge);
  RunOptions small;
  small.buffer_frames = scenario_->BufferFrames(0.003);
  for (const char* policy : {"LRU", "LRU-2", "A", "ASB"}) {
    const RunResult result =
        RunQuerySet(scenario_->disk.get(), scenario_->tree_meta, policy,
                    queries, small);
    EXPECT_GE(result.disk_reads, cold.disk_reads) << policy;
  }
}

TEST_F(ExperimentTest, AsbTracesCandidateSize) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kIntensified, 33, 100);
  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(collect);
  RunOptions options;
  options.buffer_frames = scenario_->BufferFrames(0.024);
  options.collector = &collector;
  const RunResult result = RunQuerySet(
      scenario_->disk.get(), scenario_->tree_meta, "ASB", queries, options);
  const std::vector<size_t> trace =
      AsbCandidateTrace(collector.events(), queries.queries.size());
  ASSERT_EQ(trace.size(), queries.queries.size());
  for (size_t c : trace) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, options.buffer_frames);
  }
  EXPECT_GT(result.disk_reads, 0u);
}

TEST_F(ExperimentTest, NonAsbPoliciesProduceNoTrace) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kUniform, 0, 50);
  obs::CollectorOptions collect;
  collect.event_capacity = obs::EventRing::kUnbounded;
  obs::Collector collector(collect);
  RunOptions options;
  options.buffer_frames = 32;
  options.collector = &collector;
  const RunResult result = RunQuerySet(
      scenario_->disk.get(), scenario_->tree_meta, "LRU", queries, options);
  EXPECT_TRUE(AsbCandidateTrace(collector.events(), queries.queries.size())
                  .empty())
      << "no kAsbInit event, so no candidate trace";
  EXPECT_GT(result.disk_reads, 0u);
}

TEST_F(ExperimentTest, RunResultCarriesIoSplitAndMetrics) {
  const workload::QuerySet queries =
      Queries(workload::QueryFamily::kUniform, 33, 80);
  obs::Collector collector;
  RunOptions options;
  options.buffer_frames = scenario_->BufferFrames(0.01);
  options.collector = &collector;
  const RunResult result = RunQuerySet(
      scenario_->disk.get(), scenario_->tree_meta, "LRU", queries, options);
  // The per-view device counters survive into the result...
  EXPECT_EQ(result.io.reads, result.disk_reads);
  EXPECT_EQ(result.io.sequential_reads, result.sequential_reads);
  EXPECT_EQ(result.io.random_reads() + result.io.sequential_reads,
            result.io.reads);
  EXPECT_EQ(result.io.writes, 0u);
  // ...and so does the metrics snapshot, consistent with the counters.
  ASSERT_FALSE(result.metrics.empty());
  auto metric = [&](std::string_view name) -> const obs::MetricValue& {
    for (const obs::MetricValue& value : result.metrics) {
      if (value.name == name) return value;
    }
    ADD_FAILURE() << "metric " << name << " missing";
    static const obs::MetricValue none{};
    return none;
  };
  EXPECT_EQ(metric("buffer.requests").count, result.buffer_requests);
  EXPECT_EQ(metric("buffer.hits").count, result.buffer_hits);
  EXPECT_EQ(metric("disk.reads").count, result.disk_reads);
  EXPECT_EQ(metric("disk.sequential_reads").count, result.sequential_reads);
  // Every miss either fills a free frame or evicts: with more misses than
  // frames, most of them evict.
  const uint64_t misses = result.buffer_requests - result.buffer_hits;
  EXPECT_EQ(metric("buffer.evictions").count,
            misses - std::min<uint64_t>(misses, options.buffer_frames));
}

TEST_F(ExperimentTest, GainComputation) {
  RunResult baseline, better, worse;
  baseline.disk_reads = 1200;
  better.disk_reads = 1000;
  worse.disk_reads = 1500;
  EXPECT_NEAR(GainVersus(baseline, better), 0.2, 1e-12);
  EXPECT_NEAR(GainVersus(baseline, worse), -0.2, 1e-12);
  EXPECT_DOUBLE_EQ(GainVersus(baseline, baseline), 0.0);
}

TEST_F(ExperimentTest, ReportFormatting) {
  EXPECT_EQ(FormatGain(0.123), "+12.3%");
  EXPECT_EQ(FormatGain(-0.042), "-4.2%");
  EXPECT_EQ(FormatPercent(0.973), "97.3%");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST_F(ExperimentTest, CachedScenarioReplaysIdentically) {
  const std::string cache_dir = ::testing::TempDir();
  ASSERT_EQ(setenv("SDB_CACHE_DIR", cache_dir.c_str(), 1), 0);
  ScenarioOptions options;
  options.kind = DatabaseKind::kUsLike;
  options.build = BuildMode::kInsert;
  options.scale = 0.02;  // tiny: 4k objects
  options.seed = 777;

  const Scenario first = BuildCachedScenario(options);   // builds + saves
  const Scenario second = BuildCachedScenario(options);  // loads the image
  ASSERT_EQ(unsetenv("SDB_CACHE_DIR"), 0);
  EXPECT_EQ(second.tree_stats.total_pages(), first.tree_stats.total_pages());
  EXPECT_EQ(second.tree_stats.object_count, first.tree_stats.object_count);

  const workload::QuerySet queries =
      StandardQuerySet(first, workload::QueryFamily::kUniform, 100);
  RunOptions run;
  run.buffer_frames = first.BufferFrames(0.047);
  const RunResult a = RunQuerySet(first.disk.get(), first.tree_meta, "LRU",
                                  queries, run);
  const RunResult b = RunQuerySet(second.disk.get(), second.tree_meta,
                                  "LRU", queries, run);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.result_objects, b.result_objects);
}

TEST_F(ExperimentTest, TablePrinting) {
  Table table({"set", "LRU", "ASB"});
  table.AddRow({"U-P", "100", "90"});
  table.Print("smoke");  // must not crash; output inspected by humans
  SUCCEED();
}

TEST_F(ExperimentTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"x,y", "2"});
  ::testing::internal::CaptureStdout();
  table.PrintCsv("t");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("# csv: t"), std::string::npos);
  EXPECT_NE(out.find("a,b"), std::string::npos);
  EXPECT_NE(out.find("\"x,y\",2"), std::string::npos);
}

}  // namespace
}  // namespace sdb::sim
