#include <gtest/gtest.h>

#include <memory>

#include "core/buffer_manager.h"
#include "core/policy_domain.h"
#include "core/policy_gclock.h"
#include "core/policy_pin_levels.h"
#include "core/policy_two_queue.h"
#include "test_util.h"

namespace sdb::core {
namespace {

using storage::DiskManager;
using storage::PageId;
using storage::PageType;
using test::StagePage;
using test::Touch;

PageId DataPage(DiskManager& disk) {
  return StagePage(disk, PageType::kData, 0, geom::Rect(0, 0, 1, 1));
}

// --- 2Q ---------------------------------------------------------------------

class TwoQueueTest : public ::testing::Test {
 protected:
  TwoQueuePolicy* MakeBuffer(size_t frames, double a1in = 0.25,
                             double a1out = 0.5) {
    auto owner = std::make_unique<TwoQueuePolicy>(a1in, a1out);
    TwoQueuePolicy* policy = owner.get();
    buffer_ = std::make_unique<BufferManager>(&disk_, frames,
                                              std::move(owner));
    return policy;
  }

  DiskManager disk_;
  std::unique_ptr<BufferManager> buffer_;
};

TEST_F(TwoQueueTest, FreshPagesEnterProbation) {
  TwoQueuePolicy* policy = MakeBuffer(4);
  Touch(*buffer_, DataPage(disk_), 1);
  Touch(*buffer_, DataPage(disk_), 2);
  EXPECT_EQ(policy->a1in_size(), 2u);
  EXPECT_FALSE(policy->InMainQueue(0));
}

TEST_F(TwoQueueTest, OneTimersAreEvictedFirst) {
  // A page promoted into Am (via a ghost refault) is scan-resistant:
  // subsequent one-timers churn through A1in without displacing it.
  MakeBuffer(4);
  const PageId hot = DataPage(disk_);
  Touch(*buffer_, hot, 1);
  // Evict hot from A1in (it becomes a ghost), then refault it into Am.
  std::vector<PageId> filler;
  for (int i = 0; i < 4; ++i) {
    filler.push_back(DataPage(disk_));
    Touch(*buffer_, filler.back(), static_cast<uint64_t>(2 + i));
  }
  ASSERT_FALSE(buffer_->Contains(hot));
  Touch(*buffer_, hot, 10);  // ghost hit -> Am
  // Now churn one-timers; the Am-resident page must survive.
  for (int i = 0; i < 6; ++i) {
    Touch(*buffer_, DataPage(disk_), static_cast<uint64_t>(20 + i));
  }
  EXPECT_TRUE(buffer_->Contains(hot))
      << "scan resistance: one-timers must not evict the re-used page";
}

TEST_F(TwoQueueTest, GhostHitPromotesToMainQueue) {
  TwoQueuePolicy* policy = MakeBuffer(3, /*a1in=*/0.34, /*a1out=*/1.0);
  const PageId p = DataPage(disk_);
  Touch(*buffer_, p, 1);
  // Push p out of A1in (capacity 1).
  Touch(*buffer_, DataPage(disk_), 2);
  Touch(*buffer_, DataPage(disk_), 3);
  Touch(*buffer_, DataPage(disk_), 4);
  ASSERT_FALSE(buffer_->Contains(p));
  ASSERT_TRUE(policy->IsGhost(p));
  // Refault: p is remembered and admitted into Am.
  Touch(*buffer_, p, 5);
  EXPECT_FALSE(policy->IsGhost(p));
  EXPECT_TRUE(buffer_->Contains(p));
  // And it is indeed in the main queue, immune to A1in churn.
  Touch(*buffer_, DataPage(disk_), 6);
  Touch(*buffer_, DataPage(disk_), 7);
  EXPECT_TRUE(buffer_->Contains(p));
}

TEST_F(TwoQueueTest, GhostQueueIsBounded) {
  TwoQueuePolicy* policy = MakeBuffer(4, 0.25, 0.5);
  for (int i = 0; i < 100; ++i) {
    Touch(*buffer_, DataPage(disk_), static_cast<uint64_t>(i + 1));
  }
  EXPECT_LE(policy->ghost_size(), 2u) << "a1out capacity = 0.5 * 4 frames";
}

// --- GCLOCK -----------------------------------------------------------------

class GClockTest : public ::testing::Test {
 protected:
  GClockPolicy* MakeBuffer(size_t frames, int init = 1, int max = 7) {
    auto owner = std::make_unique<GClockPolicy>(init, max);
    GClockPolicy* policy = owner.get();
    buffer_ = std::make_unique<BufferManager>(&disk_, frames,
                                              std::move(owner));
    return policy;
  }

  DiskManager disk_;
  std::unique_ptr<BufferManager> buffer_;
};

TEST_F(GClockTest, CountersTrackFrequency) {
  GClockPolicy* policy = MakeBuffer(4);
  const PageId p = DataPage(disk_);
  Touch(*buffer_, p, 1);
  EXPECT_EQ(policy->CountOf(0), 1);
  Touch(*buffer_, p, 2);
  Touch(*buffer_, p, 3);
  EXPECT_EQ(policy->CountOf(0), 3);
}

TEST_F(GClockTest, CounterIsCapped) {
  GClockPolicy* policy = MakeBuffer(2, /*init=*/1, /*max=*/3);
  const PageId p = DataPage(disk_);
  for (int i = 0; i < 10; ++i) {
    Touch(*buffer_, p, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(policy->CountOf(0), 3);
}

TEST_F(GClockTest, FrequentPageOutlivesSeveralOneTimers) {
  // GCLOCK grants a frequently used page as many sweeps as its counter —
  // more grace than CLOCK's single bit, but not unlimited: each one-timer
  // eviction costs the hot page roughly two decrements in a 3-frame buffer.
  MakeBuffer(3);
  const PageId hot = DataPage(disk_);
  for (int i = 0; i < 5; ++i) {
    Touch(*buffer_, hot, static_cast<uint64_t>(i + 1));  // counter -> 5
  }
  for (int i = 0; i < 4; ++i) {
    Touch(*buffer_, DataPage(disk_), static_cast<uint64_t>(100 + i));
  }
  EXPECT_TRUE(buffer_->Contains(hot)) << "survives the first sweeps";
  // Sustained churn eventually drains the counter (GCLOCK is frequency-
  // aware, not pin-forever).
  for (int i = 0; i < 12; ++i) {
    Touch(*buffer_, DataPage(disk_), static_cast<uint64_t>(200 + i));
  }
  EXPECT_FALSE(buffer_->Contains(hot));
}

// --- PIN-l ------------------------------------------------------------------

TEST(PinLevelsTest, ProtectsUpperLevels) {
  DiskManager disk;
  const PageId root =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  const PageId mid =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  const PageId leaf1 = DataPage(disk);
  const PageId leaf2 = DataPage(disk);

  BufferManager buffer(&disk, 3, std::make_unique<PinLevelsPolicy>(1));
  Touch(buffer, root, 1);
  Touch(buffer, mid, 2);
  Touch(buffer, leaf1, 3);
  Touch(buffer, leaf2, 4);  // the only unprotected page is leaf1 -> evicted
  EXPECT_FALSE(buffer.Contains(leaf1));
  EXPECT_TRUE(buffer.Contains(root));
  EXPECT_TRUE(buffer.Contains(mid));
}

TEST(PinLevelsTest, HigherThresholdProtectsLess) {
  DiskManager disk;
  const PageId root =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  const PageId mid =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  const PageId extra =
      StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1));
  BufferManager buffer(&disk, 2, std::make_unique<PinLevelsPolicy>(2));
  Touch(buffer, root, 1);
  Touch(buffer, mid, 2);
  Touch(buffer, extra, 3);  // level-1 pages are fair game under PIN-2
  EXPECT_FALSE(buffer.Contains(mid));
  EXPECT_TRUE(buffer.Contains(root));
}

TEST(PinLevelsTest, DegradesToLruWhenEverythingIsProtected) {
  DiskManager disk;
  std::vector<PageId> dirs;
  for (int i = 0; i < 3; ++i) {
    dirs.push_back(
        StagePage(disk, PageType::kDirectory, 3, geom::Rect(0, 0, 1, 1)));
  }
  BufferManager buffer(&disk, 2, std::make_unique<PinLevelsPolicy>(1));
  Touch(buffer, dirs[0], 1);
  Touch(buffer, dirs[1], 2);
  Touch(buffer, dirs[2], 3);  // must not abort; LRU fallback evicts dirs[0]
  EXPECT_FALSE(buffer.Contains(dirs[0]));
  EXPECT_TRUE(buffer.Contains(dirs[1]));
}

TEST(PinLevelsTest, NameCarriesThreshold) {
  EXPECT_EQ(PinLevelsPolicy(1).name(), "PIN-1");
  EXPECT_EQ(PinLevelsPolicy(3).name(), "PIN-3");
}

// --- domain separation -------------------------------------------------------

TEST(DomainPolicyTest, NameCarriesQuota) {
  EXPECT_EQ(DomainPolicy(0.1).name(), "DOM:10%");
  EXPECT_EQ(DomainPolicy(0.25).name(), "DOM:25%");
}

TEST(DomainPolicyTest, DirectoryProtectedUnderQuota) {
  DiskManager disk;
  const PageId directory =
      StagePage(disk, PageType::kDirectory, 2, geom::Rect(0, 0, 1, 1));
  std::vector<PageId> data;
  for (int i = 0; i < 8; ++i) data.push_back(DataPage(disk));

  // Quota 25% of 4 frames = 1 directory page allowed.
  BufferManager buffer(&disk, 4, std::make_unique<DomainPolicy>(0.25));
  Touch(buffer, directory, 1);
  for (int i = 0; i < 8; ++i) {
    Touch(buffer, data[i], static_cast<uint64_t>(i + 2));
  }
  // The single directory page never exceeded its quota, so only data pages
  // churned.
  EXPECT_TRUE(buffer.Contains(directory));
}

TEST(DomainPolicyTest, DirectoryEvictedWhenOverQuota) {
  DiskManager disk;
  std::vector<PageId> dirs;
  for (int i = 0; i < 3; ++i) {
    dirs.push_back(
        StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1)));
  }
  const PageId data = DataPage(disk);
  const PageId more_data = DataPage(disk);

  // Quota 25% of 4 frames = 1 directory page; three directories overflow it.
  BufferManager buffer(&disk, 4, std::make_unique<DomainPolicy>(0.25));
  Touch(buffer, dirs[0], 1);
  Touch(buffer, dirs[1], 2);
  Touch(buffer, dirs[2], 3);
  Touch(buffer, data, 4);
  // Buffer full with 3 directories (over quota). The next miss must evict
  // the LRU *directory*, not the data page.
  Touch(buffer, more_data, 5);
  EXPECT_FALSE(buffer.Contains(dirs[0]));
  EXPECT_TRUE(buffer.Contains(data));
}

TEST(DomainPolicyTest, FallsBackAcrossDomains) {
  DiskManager disk;
  std::vector<PageId> dirs;
  for (int i = 0; i < 3; ++i) {
    dirs.push_back(
        StagePage(disk, PageType::kDirectory, 1, geom::Rect(0, 0, 1, 1)));
  }
  // Quota 100%: directories never over quota; but with ONLY directories
  // resident, the non-directory domain is empty and the fallback must still
  // produce a victim.
  BufferManager buffer(&disk, 2, std::make_unique<DomainPolicy>(1.0));
  Touch(buffer, dirs[0], 1);
  Touch(buffer, dirs[1], 2);
  Touch(buffer, dirs[2], 3);
  EXPECT_FALSE(buffer.Contains(dirs[0]));
  EXPECT_TRUE(buffer.Contains(dirs[2]));
}

}  // namespace
}  // namespace sdb::core
