#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/collector.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"

// Global allocation counter for the zero-allocation fast-path tests: the
// registry promises that only registration (Get*) allocates, never the
// per-event Add/Set/Observe/Push operations.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sdb::obs {
namespace {

constexpr double kBounds[] = {1.0, 2.0, 4.0};

TEST(MetricsTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(2.5);
  gauge->Set(1.5);  // last write wins
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
  EXPECT_EQ(registry.GetCounter("c"), counter) << "same name, same handle";
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", kBounds);
  h->Observe(0.5);   // bucket 0 (<= 1)
  h->Observe(1.0);   // bucket 0 (inclusive)
  h->Observe(2.0);   // bucket 1
  h->Observe(3.0);   // bucket 2
  h->Observe(100.0); // overflow bucket
  ASSERT_EQ(h->counts().size(), 4u);
  EXPECT_EQ(h->counts()[0], 2u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_EQ(h->observations(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 106.5);
  EXPECT_DOUBLE_EQ(h->mean(), 106.5 / 5.0);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("mid", kBounds);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[1].name, "mid");
  EXPECT_EQ(snapshot[2].name, "zebra");
}

TEST(MetricsTest, MergeAddsCountersTakesGaugeMaxAddsBuckets) {
  MetricsRegistry a;
  a.GetCounter("c")->Add(10);
  a.GetGauge("g")->Set(3.0);
  a.GetHistogram("h", kBounds)->Observe(1.0);

  MetricsRegistry b;
  b.GetCounter("c")->Add(5);
  b.GetGauge("g")->Set(7.0);
  b.GetHistogram("h", kBounds)->Observe(9.0);
  b.GetCounter("only_in_b")->Add(1);

  a.Merge(b.Snapshot());
  EXPECT_EQ(a.GetCounter("c")->value(), 15u);
  EXPECT_DOUBLE_EQ(a.GetGauge("g")->value(), 7.0) << "gauge merge = max";
  Histogram* h = a.GetHistogram("h", kBounds);
  EXPECT_EQ(h->observations(), 2u);
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);
  EXPECT_EQ(a.GetCounter("only_in_b")->value(), 1u)
      << "absent metrics are registered by the merge";
}

TEST(MetricsTest, MergeIsOrderInsensitive) {
  const auto snapshot_of = [](uint64_t c, double g, double obs) {
    MetricsRegistry r;
    r.GetCounter("c")->Add(c);
    r.GetGauge("g")->Set(g);
    r.GetHistogram("h", kBounds)->Observe(obs);
    return r.Snapshot();
  };
  const MetricsSnapshot s1 = snapshot_of(1, 5.0, 0.5);
  const MetricsSnapshot s2 = snapshot_of(2, 3.0, 8.0);
  const MetricsSnapshot s3 = snapshot_of(3, 9.0, 2.0);

  MetricsRegistry forward, backward;
  for (const auto* s : {&s1, &s2, &s3}) forward.Merge(*s);
  for (const auto* s : {&s3, &s2, &s1}) backward.Merge(*s);
  EXPECT_EQ(forward.Snapshot(), backward.Snapshot());
}

TEST(MetricsTest, MergeOnJoinIsDeterministicAcrossThreadCounts) {
  // The sweep-runner pattern in miniature: N tasks each fill a private
  // registry; snapshots are stored in preassigned slots and merged in index
  // order after the join. The merged result must not depend on how many
  // threads executed the tasks.
  constexpr size_t kTasks = 12;
  const auto run_with = [](unsigned threads) {
    std::vector<MetricsSnapshot> slots(kTasks);
    const auto task = [&slots](size_t i) {
      MetricsRegistry registry;
      registry.GetCounter("events")->Add(i + 1);
      registry.GetGauge("last")->Set(static_cast<double>(i));
      Histogram* h = registry.GetHistogram("dist", kBounds);
      for (size_t k = 0; k <= i; ++k) {
        h->Observe(static_cast<double>(k % 5));
      }
      slots[i] = registry.Snapshot();
    };
    if (threads <= 1) {
      for (size_t i = 0; i < kTasks; ++i) task(i);
    } else {
      std::atomic<size_t> next{0};
      std::vector<std::jthread> pool;
      for (unsigned w = 0; w < threads; ++w) {
        pool.emplace_back([&] {
          for (size_t i = next.fetch_add(1); i < kTasks;
               i = next.fetch_add(1)) {
            task(i);
          }
        });
      }
    }
    MetricsRegistry merged;
    for (const MetricsSnapshot& slot : slots) merged.Merge(slot);
    return merged.Snapshot();
  };
  const MetricsSnapshot sequential = run_with(1);
  EXPECT_EQ(run_with(4), sequential);
  EXPECT_EQ(run_with(7), sequential);
}

TEST(MetricsTest, FastPathDoesNotAllocate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h", kBounds);
  EventRing ring(64);
  Event event;
  for (int i = 0; i < 100; ++i) ring.Push(event);  // fill to capacity

  const uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    counter->Add();
    gauge->Set(static_cast<double>(i));
    histogram->Observe(static_cast<double>(i % 8));
    ring.Push(event);  // at capacity: overwrite, no growth
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "Add/Set/Observe/Push must not allocate";
}

TEST(EventRingTest, BoundedRingKeepsTheNewestEvents) {
  EventRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    Event event;
    event.page = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<uint64_t> pages;
  ring.ForEach([&pages](const Event& e) { pages.push_back(e.page); });
  EXPECT_EQ(pages, (std::vector<uint64_t>{6, 7, 8, 9}))
      << "chronological order, oldest retained first";
}

TEST(EventRingTest, CapacityZeroCountsWithoutStoring) {
  EventRing ring(0);
  ring.Push(Event{});
  ring.Push(Event{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(EventRingTest, UnboundedRingDropsNothing) {
  EventRing ring(EventRing::kUnbounded);
  for (uint64_t i = 0; i < 10000; ++i) {
    Event event;
    event.page = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.size(), 10000u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<Event> snapshot = ring.Snapshot();
  EXPECT_EQ(snapshot.front().page, 0u);
  EXPECT_EQ(snapshot.back().page, 9999u);
}

TEST(CollectorTest, WindowedHitRatio) {
  CollectorOptions options;
  options.window = 4;
  options.event_capacity = 0;
  Collector collector(options);
  // Window 1: 2 hits of 4. Window 2: 4 hits of 4.
  for (bool hit : {true, false, true, false, true, true, true, true}) {
    collector.OnBufferRequest(1, 1, hit);
  }
  const MetricsSnapshot snapshot = collector.metrics().Snapshot();
  for (const MetricValue& value : snapshot) {
    if (value.name == "buffer.requests") EXPECT_EQ(value.count, 8u);
    if (value.name == "buffer.hits") EXPECT_EQ(value.count, 6u);
    if (value.name == "buffer.misses") EXPECT_EQ(value.count, 2u);
    if (value.name == "buffer.window_hit_ratio") {
      EXPECT_EQ(value.observations, 2u);
      EXPECT_DOUBLE_EQ(value.value, 1.5);  // 0.5 + 1.0
    }
    if (value.name == "buffer.window_hit_ratio.last") {
      EXPECT_DOUBLE_EQ(value.value, 1.0);
    }
  }
}

TEST(CollectorTest, RecordAccessesPushesPageAccessEvents) {
  CollectorOptions options;
  options.record_accesses = true;
  options.event_capacity = EventRing::kUnbounded;
  Collector collector(options);
  collector.OnBufferRequest(7, 3, /*hit=*/false);
  collector.OnBufferRequest(7, 4, /*hit=*/true);
  ASSERT_EQ(collector.events().size(), 2u);
  const std::vector<Event> events = collector.events().Snapshot();
  EXPECT_EQ(events[0].kind, EventKind::kPageAccess);
  EXPECT_EQ(events[0].page, 7u);
  EXPECT_EQ(events[0].query, 3u);
  EXPECT_FALSE(events[0].flag);
  EXPECT_TRUE(events[1].flag);
}

TEST(ExportTest, MetricsJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.gauge")->Set(1.5);
  registry.GetHistogram("c.hist", kBounds)->Observe(2.0);
  const std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.hist\":{\"bounds\":[1,2,4],\"counts\":[0,1,0,0]"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ExportTest, MetricsJsonLinesRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(1);
  registry.GetGauge("y")->Set(2.0);
  const std::string path = ::testing::TempDir() + "/obs_metrics.jsonl";
  ASSERT_TRUE(WriteMetricsJsonLines(path, "label-1", registry.Snapshot()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  const std::string version =
      "\"schema_version\":" + std::to_string(kBenchJsonSchemaVersion);
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"label\":\"label-1\""), std::string::npos) << line;
    EXPECT_NE(line.find(version), std::string::npos)
        << "every row carries the writer's schema version: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u) << "one JSONL record per metric";
}

TEST(ExportTest, ChromeTraceFile) {
  ChromeTraceWriter writer;
  writer.SetThreadName(0, "worker 0");
  writer.AddCompleteEvent("LRU/U-P/64", 0, 100, 50);
  writer.AddCompleteEvent("ASB/U-P/64", 0, 150, 75);
  EXPECT_EQ(writer.event_count(), 2u);
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(writer.Write(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("LRU/U-P/64"), std::string::npos);
}

}  // namespace
}  // namespace sdb::obs
