#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/asb_timeline.h"
#include "obs/collector.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

// Global allocation counter for the zero-allocation fast-path tests: the
// registry promises that only registration (Get*) allocates, never the
// per-event Add/Set/Observe/Push operations.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sdb::obs {
namespace {

constexpr double kBounds[] = {1.0, 2.0, 4.0};

TEST(MetricsTest, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(2.5);
  gauge->Set(1.5);  // last write wins
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
  EXPECT_EQ(registry.GetCounter("c"), counter) << "same name, same handle";
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", kBounds);
  h->Observe(0.5);   // bucket 0 (<= 1)
  h->Observe(1.0);   // bucket 0 (inclusive)
  h->Observe(2.0);   // bucket 1
  h->Observe(3.0);   // bucket 2
  h->Observe(100.0); // overflow bucket
  ASSERT_EQ(h->counts().size(), 4u);
  EXPECT_EQ(h->counts()[0], 2u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_EQ(h->observations(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 106.5);
  EXPECT_DOUBLE_EQ(h->mean(), 106.5 / 5.0);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("mid", kBounds);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[1].name, "mid");
  EXPECT_EQ(snapshot[2].name, "zebra");
}

TEST(MetricsTest, MergeAddsCountersTakesGaugeMaxAddsBuckets) {
  MetricsRegistry a;
  a.GetCounter("c")->Add(10);
  a.GetGauge("g")->Set(3.0);
  a.GetHistogram("h", kBounds)->Observe(1.0);

  MetricsRegistry b;
  b.GetCounter("c")->Add(5);
  b.GetGauge("g")->Set(7.0);
  b.GetHistogram("h", kBounds)->Observe(9.0);
  b.GetCounter("only_in_b")->Add(1);

  a.Merge(b.Snapshot());
  EXPECT_EQ(a.GetCounter("c")->value(), 15u);
  EXPECT_DOUBLE_EQ(a.GetGauge("g")->value(), 7.0) << "gauge merge = max";
  Histogram* h = a.GetHistogram("h", kBounds);
  EXPECT_EQ(h->observations(), 2u);
  EXPECT_EQ(h->counts()[0], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);
  EXPECT_EQ(a.GetCounter("only_in_b")->value(), 1u)
      << "absent metrics are registered by the merge";
}

TEST(MetricsTest, MergeIsOrderInsensitive) {
  const auto snapshot_of = [](uint64_t c, double g, double obs) {
    MetricsRegistry r;
    r.GetCounter("c")->Add(c);
    r.GetGauge("g")->Set(g);
    r.GetHistogram("h", kBounds)->Observe(obs);
    return r.Snapshot();
  };
  const MetricsSnapshot s1 = snapshot_of(1, 5.0, 0.5);
  const MetricsSnapshot s2 = snapshot_of(2, 3.0, 8.0);
  const MetricsSnapshot s3 = snapshot_of(3, 9.0, 2.0);

  MetricsRegistry forward, backward;
  for (const auto* s : {&s1, &s2, &s3}) forward.Merge(*s);
  for (const auto* s : {&s3, &s2, &s1}) backward.Merge(*s);
  EXPECT_EQ(forward.Snapshot(), backward.Snapshot());
}

TEST(MetricsTest, MergeOnJoinIsDeterministicAcrossThreadCounts) {
  // The sweep-runner pattern in miniature: N tasks each fill a private
  // registry; snapshots are stored in preassigned slots and merged in index
  // order after the join. The merged result must not depend on how many
  // threads executed the tasks.
  constexpr size_t kTasks = 12;
  const auto run_with = [](unsigned threads) {
    std::vector<MetricsSnapshot> slots(kTasks);
    const auto task = [&slots](size_t i) {
      MetricsRegistry registry;
      registry.GetCounter("events")->Add(i + 1);
      registry.GetGauge("last")->Set(static_cast<double>(i));
      Histogram* h = registry.GetHistogram("dist", kBounds);
      for (size_t k = 0; k <= i; ++k) {
        h->Observe(static_cast<double>(k % 5));
      }
      slots[i] = registry.Snapshot();
    };
    if (threads <= 1) {
      for (size_t i = 0; i < kTasks; ++i) task(i);
    } else {
      std::atomic<size_t> next{0};
      std::vector<std::jthread> pool;
      for (unsigned w = 0; w < threads; ++w) {
        pool.emplace_back([&] {
          for (size_t i = next.fetch_add(1); i < kTasks;
               i = next.fetch_add(1)) {
            task(i);
          }
        });
      }
    }
    MetricsRegistry merged;
    for (const MetricsSnapshot& slot : slots) merged.Merge(slot);
    return merged.Snapshot();
  };
  const MetricsSnapshot sequential = run_with(1);
  EXPECT_EQ(run_with(4), sequential);
  EXPECT_EQ(run_with(7), sequential);
}

TEST(MetricsTest, FastPathDoesNotAllocate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h", kBounds);
  EventRing ring(64);
  Event event;
  for (int i = 0; i < 100; ++i) ring.Push(event);  // fill to capacity

  const uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    counter->Add();
    gauge->Set(static_cast<double>(i));
    histogram->Observe(static_cast<double>(i % 8));
    ring.Push(event);  // at capacity: overwrite, no growth
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "Add/Set/Observe/Push must not allocate";
}

TEST(EventRingTest, BoundedRingKeepsTheNewestEvents) {
  EventRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    Event event;
    event.page = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<uint64_t> pages;
  ring.ForEach([&pages](const Event& e) { pages.push_back(e.page); });
  EXPECT_EQ(pages, (std::vector<uint64_t>{6, 7, 8, 9}))
      << "chronological order, oldest retained first";
}

TEST(EventRingTest, CapacityZeroCountsWithoutStoring) {
  EventRing ring(0);
  ring.Push(Event{});
  ring.Push(Event{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(EventRingTest, UnboundedRingDropsNothing) {
  EventRing ring(EventRing::kUnbounded);
  for (uint64_t i = 0; i < 10000; ++i) {
    Event event;
    event.page = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.size(), 10000u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<Event> snapshot = ring.Snapshot();
  EXPECT_EQ(snapshot.front().page, 0u);
  EXPECT_EQ(snapshot.back().page, 9999u);
}

TEST(CollectorTest, WindowedHitRatio) {
  CollectorOptions options;
  options.window = 4;
  options.event_capacity = 0;
  Collector collector(options);
  // Window 1: 2 hits of 4. Window 2: 4 hits of 4.
  for (bool hit : {true, false, true, false, true, true, true, true}) {
    collector.OnBufferRequest(1, 1, hit);
  }
  const MetricsSnapshot snapshot = collector.metrics().Snapshot();
  for (const MetricValue& value : snapshot) {
    if (value.name == "buffer.requests") EXPECT_EQ(value.count, 8u);
    if (value.name == "buffer.hits") EXPECT_EQ(value.count, 6u);
    if (value.name == "buffer.misses") EXPECT_EQ(value.count, 2u);
    if (value.name == "buffer.window_hit_ratio") {
      EXPECT_EQ(value.observations, 2u);
      EXPECT_DOUBLE_EQ(value.value, 1.5);  // 0.5 + 1.0
    }
    if (value.name == "buffer.window_hit_ratio.last") {
      EXPECT_DOUBLE_EQ(value.value, 1.0);
    }
  }
}

TEST(CollectorTest, RecordAccessesPushesPageAccessEvents) {
  CollectorOptions options;
  options.record_accesses = true;
  options.event_capacity = EventRing::kUnbounded;
  Collector collector(options);
  collector.OnBufferRequest(7, 3, /*hit=*/false);
  collector.OnBufferRequest(7, 4, /*hit=*/true);
  ASSERT_EQ(collector.events().size(), 2u);
  const std::vector<Event> events = collector.events().Snapshot();
  EXPECT_EQ(events[0].kind, EventKind::kPageAccess);
  EXPECT_EQ(events[0].page, 7u);
  EXPECT_EQ(events[0].query, 3u);
  EXPECT_FALSE(events[0].flag);
  EXPECT_TRUE(events[1].flag);
}

TEST(ExportTest, MetricsJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.gauge")->Set(1.5);
  registry.GetHistogram("c.hist", kBounds)->Observe(2.0);
  const std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.hist\":{\"bounds\":[1,2,4],\"counts\":[0,1,0,0]"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ExportTest, MetricsJsonLinesRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(1);
  registry.GetGauge("y")->Set(2.0);
  const std::string path = ::testing::TempDir() + "/obs_metrics.jsonl";
  ASSERT_TRUE(WriteMetricsJsonLines(path, "label-1", registry.Snapshot()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  const std::string version =
      "\"schema_version\":" + std::to_string(kBenchJsonSchemaVersion);
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"label\":\"label-1\""), std::string::npos) << line;
    EXPECT_NE(line.find(version), std::string::npos)
        << "every row carries the writer's schema version: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u) << "one JSONL record per metric";
}

TEST(ExportTest, ChromeTraceFile) {
  ChromeTraceWriter writer;
  writer.SetThreadName(0, "worker 0");
  writer.AddCompleteEvent("LRU/U-P/64", 0, 100, 50);
  writer.AddCompleteEvent("ASB/U-P/64", 0, 150, 75);
  EXPECT_EQ(writer.event_count(), 2u);
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(writer.Write(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("LRU/U-P/64"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HistogramQuantile edge cases: the nearest-rank-with-interpolation contract
// at the boundaries of q and of the bucket layout.

TEST(HistogramQuantileTest, QZeroTargetsTheFirstObservation) {
  const std::vector<uint64_t> counts = {2, 0, 0, 0};
  // rank = max(1, round(0 * 2)) = 1 → halfway into [0, 1].
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, -3.0), 0.5)
      << "q below the domain clamps to 0";
}

TEST(HistogramQuantileTest, QOneSaturatesAtTheTopBound) {
  const std::vector<uint64_t> counts = {1, 1, 1, 1};
  // rank 4 lands in the overflow bucket, which has no upper edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 5.0), 4.0)
      << "q above the domain clamps to 1";
}

TEST(HistogramQuantileTest, AllObservationsInOverflowReportTheTopBound) {
  const std::vector<uint64_t> counts = {0, 0, 0, 5};
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, 1.0), 4.0);
}

TEST(HistogramQuantileTest, NoObservationsReturnZero) {
  const std::vector<uint64_t> counts = {0, 0, 0, 0};
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(HistogramQuantile(kBounds, counts, q), 0.0);
  }
  EXPECT_DOUBLE_EQ(
      HistogramQuantile(std::span<const double>{},
                        std::vector<uint64_t>{0}, 0.5),
      0.0)
      << "a boundless histogram with no observations";
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesWithinIt) {
  const double bounds[] = {10.0};
  const std::vector<uint64_t> counts = {4, 0};
  // rank r of 4 observations → 10 * r / 4.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 1.0), 10.0);
}

TEST(HistogramQuantileTest, MetricValueOverloadMatchesTheSpanOverload) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", kBounds);
  for (const double v : {0.5, 1.5, 3.0, 3.5}) h->Observe(v);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot[0], q),
                     HistogramQuantile(kBounds, snapshot[0].bucket_counts, q));
  }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

TEST(ExportTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("svc.latch_waits")->Add(7);
  registry.GetGauge("io.queue_depth")->Set(2.5);
  Histogram* h = registry.GetHistogram("pin.ns", kBounds);
  h->Observe(1.0);
  h->Observe(3.0);
  h->Observe(100.0);
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE sdb_svc_latch_waits counter\n"
                      "sdb_svc_latch_waits 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sdb_io_queue_depth gauge\n"
                      "sdb_io_queue_depth 2.5\n"),
            std::string::npos)
      << "dots sanitize to underscores: " << text;
  // Bucket samples are cumulative, closed by +Inf at the observation total.
  EXPECT_NE(text.find("sdb_pin_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sdb_pin_ns_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sdb_pin_ns_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("sdb_pin_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sdb_pin_ns_sum 104\n"), std::string::npos);
  EXPECT_NE(text.find("sdb_pin_ns_count 3\n"), std::string::npos);
}

TEST(ExportTest, PrometheusTextHonorsThePrefix) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(1);
  EXPECT_NE(PrometheusText(registry.Snapshot(), "spatial")
                .find("spatial_c 1\n"),
            std::string::npos);
}

TEST(ExportTest, ChromeTraceNanosecondEventsKeepSubMicrosecondDetail) {
  ChromeTraceWriter writer;
  writer.AddCompleteEventNs("pin", 0, 1500, 250, "trace");
  const std::string path = ::testing::TempDir() + "/obs_trace_ns.json";
  ASSERT_TRUE(writer.Write(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos)
      << "1500 ns = 1.5 µs: " << json;
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Span tracing: packing, sampling, nesting, rendering.

TEST(TracerTest, ShouldSampleSelectsEveryNthTraceDeterministically) {
  TracerOptions every4;
  every4.sample_every = 4;
  const Tracer tracer(every4);
  EXPECT_TRUE(tracer.ShouldSample(0));
  EXPECT_FALSE(tracer.ShouldSample(1));
  EXPECT_FALSE(tracer.ShouldSample(3));
  EXPECT_TRUE(tracer.ShouldSample(4));
  EXPECT_TRUE(tracer.ShouldSample(8));

  TracerOptions off;
  off.sample_every = 0;
  const Tracer disabled(off);
  EXPECT_FALSE(disabled.ShouldSample(0));
  EXPECT_FALSE(disabled.ShouldSample(64));
}

TEST(TracerTest, NestedScopedSpansPackIdsParentsAndTrack) {
  Tracer tracer;
  SpanContext ctx;
  ctx.tracer = &tracer;
  ctx.trace_id = 42;
  ctx.track = 7;
  {
    ScopedSpan query(&ctx, SpanKind::kQuery);
    ASSERT_TRUE(query.armed());
    query.set_payload(3);
    {
      ScopedSpan fetch(&ctx, SpanKind::kShardFetch);
      fetch.set_page(99);
      fetch.set_flag(true);
    }
    EXPECT_EQ(ctx.parent, 1) << "closing the child restores the parent";
  }
  EXPECT_EQ(ctx.parent, 0) << "closing the root restores root level";

  const std::vector<Event> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u) << "children close (and emit) first";
  const Event& fetch = spans[0];
  const Event& query = spans[1];
  EXPECT_EQ(SpanKindOf(fetch), SpanKind::kShardFetch);
  EXPECT_EQ(SpanIdOf(fetch), 2);
  EXPECT_EQ(SpanParentOf(fetch), 1) << "child points at the enclosing span";
  EXPECT_EQ(SpanTrackOf(fetch), 7u);
  EXPECT_EQ(fetch.query, 42u);
  EXPECT_EQ(fetch.page, 99u);
  EXPECT_TRUE(fetch.flag);
  EXPECT_EQ(SpanKindOf(query), SpanKind::kQuery);
  EXPECT_EQ(SpanIdOf(query), 1);
  EXPECT_EQ(SpanParentOf(query), 0) << "root span has no parent";
  EXPECT_EQ(SpanPayloadOf(query), 3u);
  EXPECT_LE(query.b, fetch.b) << "parent begins before the child";
  EXPECT_GE(query.b + query.c, fetch.b + fetch.c)
      << "parent ends after the child (time containment)";
}

TEST(TracerTest, DetachedSpanIsInert) {
  ScopedSpan detached(nullptr, SpanKind::kQuery);
  EXPECT_FALSE(detached.armed());
  detached.set_page(1);
  detached.set_payload(2);
  detached.set_flag(true);  // all no-ops, must not crash

  SpanContext no_tracer;  // default: tracer == nullptr
  ScopedSpan unarmed(&no_tracer, SpanKind::kShardFetch);
  EXPECT_FALSE(unarmed.armed());
  EXPECT_EQ(no_tracer.next_id, 1) << "no id minted without a tracer";
}

TEST(TracerTest, WriteChromeTraceRendersTracksAndSpanNames) {
  Tracer tracer;
  SpanContext ctx;
  ctx.tracer = &tracer;
  ctx.trace_id = 43;
  ctx.track = 5;
  {
    ScopedSpan query(&ctx, SpanKind::kQuery);
    ScopedSpan fetch(&ctx, SpanKind::kShardFetch);
  }
  EXPECT_EQ(tracer.total(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::string path = ::testing::TempDir() + "/obs_span_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("session 5"), std::string::npos)
      << "one named track per session: " << json;
  EXPECT_NE(json.find("query #43.1"), std::string::npos) << json;
  EXPECT_NE(json.find("shard_fetch #43.2"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Windowed time-series telemetry.

MetricsSnapshot ServiceSnapshot(uint64_t requests, uint64_t hits,
                                uint64_t latch_waits, uint64_t disk_reads,
                                double queue_depth, double candidate) {
  MetricsRegistry registry;
  registry.GetCounter("buffer.requests")->Add(requests);
  registry.GetCounter("buffer.hits")->Add(hits);
  registry.GetCounter("svc.latch_waits")->Add(latch_waits);
  registry.GetCounter("svc.latch_acquires")->Add(latch_waits * 2);
  registry.GetCounter("svc.disk_reads")->Add(disk_reads);
  registry.GetGauge("io.queue_depth")->Set(queue_depth);
  registry.GetGauge("asb.candidate")->Set(candidate);
  return registry.Snapshot();
}

TEST(TelemetryHubTest, FirstSampleOnlyEstablishesTheBase) {
  TelemetryHub hub;
  hub.Sample(0, ServiceSnapshot(100, 90, 0, 10, 0, 8));
  EXPECT_TRUE(hub.Windows().empty())
      << "startup totals must not become a window";
  hub.Sample(5000, ServiceSnapshot(300, 250, 4, 50, 2, 12));
  ASSERT_EQ(hub.Windows().size(), 1u);
}

TEST(TelemetryHubTest, WindowsCarryCounterDeltasAndGaugeLevels) {
  TelemetryHub hub;
  hub.Sample(0, ServiceSnapshot(100, 90, 2, 10, 1, 8));
  hub.Sample(200, ServiceSnapshot(300, 250, 6, 50, 3, 12));
  const std::vector<TelemetryWindow> windows = hub.Windows();
  ASSERT_EQ(windows.size(), 1u);
  const TelemetryWindow& w = windows[0];
  EXPECT_EQ(w.clock, 200u);
  EXPECT_EQ(w.requests, 200u) << "counter series are per-window deltas";
  EXPECT_EQ(w.hits, 160u);
  EXPECT_DOUBLE_EQ(w.hit_rate, 160.0 / 200.0);
  EXPECT_EQ(w.latch_waits, 4u);
  EXPECT_EQ(w.latch_acquires, 8u);
  EXPECT_EQ(w.disk_reads, 40u);
  EXPECT_EQ(w.io_queue_depth, 3u) << "gauges are levels, not deltas";
  EXPECT_EQ(w.asb_candidate, 12u);
}

TEST(TelemetryHubTest, ExplicitCandidateOverridesTheGauge) {
  TelemetryHub hub;
  hub.Sample(0, ServiceSnapshot(1, 1, 0, 0, 0, 8));
  hub.Sample(100, ServiceSnapshot(2, 2, 0, 0, 0, 8), /*asb_candidate=*/31);
  ASSERT_EQ(hub.Windows().size(), 1u);
  EXPECT_EQ(hub.Windows()[0].asb_candidate, 31u);
}

TEST(TelemetryHubTest, WantsSampleGatesOnTheClockInterval) {
  TelemetryHubOptions options;
  options.window_clock_interval = 100;
  TelemetryHub hub(options);
  EXPECT_FALSE(hub.WantsSample(99));
  EXPECT_TRUE(hub.WantsSample(100));
  hub.Sample(100, ServiceSnapshot(1, 1, 0, 0, 0, 1));
  EXPECT_FALSE(hub.WantsSample(150));
  EXPECT_FALSE(hub.WantsSample(100)) << "no progress, no sample";
  EXPECT_TRUE(hub.WantsSample(200));
}

TEST(TelemetryHubTest, StaleClocksAndCounterResetsDoNotCorruptTheSeries) {
  TelemetryHub hub;
  hub.Sample(0, ServiceSnapshot(100, 90, 0, 0, 0, 1));
  hub.Sample(100, ServiceSnapshot(200, 180, 0, 0, 0, 1));
  hub.Sample(100, ServiceSnapshot(999, 999, 9, 9, 9, 9));
  EXPECT_EQ(hub.Windows().size(), 1u) << "a non-advancing clock is dropped";
  // A source reset (totals going backwards) saturates at zero instead of
  // wrapping around.
  hub.Sample(300, ServiceSnapshot(50, 40, 0, 0, 0, 1));
  ASSERT_EQ(hub.Windows().size(), 2u);
  EXPECT_EQ(hub.Windows()[1].requests, 0u);
  EXPECT_EQ(hub.Windows()[1].hits, 0u);
}

TEST(TelemetryHubTest, TimeSeriesJsonCarriesWindowsAndMarks) {
  TelemetryHub hub;
  hub.Sample(0, ServiceSnapshot(0, 0, 0, 0, 0, 4));
  hub.Sample(100, ServiceSnapshot(80, 60, 1, 20, 2, 6));
  hub.Mark(50, "workload_shift");
  const std::string path = ::testing::TempDir() + "/obs_timeseries.jsonl";
  ASSERT_TRUE(WriteTimeSeriesJson(path, hub.Windows(), hub.Marks()));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u) << "one record per window plus one per mark";
  const std::string version =
      "\"schema_version\":" + std::to_string(kBenchJsonSchemaVersion);
  EXPECT_NE(lines[0].find(version), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"kind\":\"window\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"clock\":100"), std::string::npos);
  EXPECT_NE(lines[0].find("\"requests\":80"), std::string::npos);
  EXPECT_NE(lines[0].find("\"hit_rate\":0.750000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"asb_candidate\":6"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"mark\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"label\":\"workload_shift\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ASB adaptation-timeline analysis.

TEST(AsbTimelineTest, ComputesPerPhaseConvergenceLag) {
  // Phase 0 (implied, clock 0..25): settled at 8 immediately.
  // Phase 1 (shift at 25): climbs 16 → 24 → 30 → 31 → 32; with tolerance 1
  // the settled band is [31, 33], entered at clock 60.
  const std::vector<AsbTimelinePoint> points = {
      {10, 8}, {20, 8},                                   // phase 0
      {30, 16}, {40, 24}, {50, 30}, {60, 31}, {70, 32},   // phase 1
  };
  const AsbTimelineReport report =
      AnalyzeAsbTimeline(points, /*shifts=*/{25}, /*tolerance=*/1);
  ASSERT_EQ(report.phases.size(), 2u) << "implied leading phase + one shift";
  EXPECT_EQ(report.phases[0].shift_clock, 0u);
  EXPECT_EQ(report.phases[0].settled_candidate, 8u);
  ASSERT_TRUE(report.phases[0].converged);
  EXPECT_EQ(report.phases[0].converged_clock, 10u);
  EXPECT_EQ(report.phases[0].lag, 10u);
  EXPECT_EQ(report.phases[1].shift_clock, 25u);
  EXPECT_EQ(report.phases[1].settled_candidate, 32u);
  ASSERT_TRUE(report.phases[1].converged);
  EXPECT_EQ(report.phases[1].converged_clock, 60u);
  EXPECT_EQ(report.phases[1].lag, 35u);
}

TEST(AsbTimelineTest, PhaseWithoutPointsDoesNotConverge) {
  const std::vector<AsbTimelinePoint> points = {{10, 8}, {20, 8}};
  const AsbTimelineReport report = AnalyzeAsbTimeline(points, {100});
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_TRUE(report.phases[0].converged);
  EXPECT_FALSE(report.phases[1].converged)
      << "no observations after the shift";
}

TEST(AsbTimelineTest, PointsFromEventsUseTheAdaptationIndexAsClock) {
  std::vector<Event> events(4);
  events[0].kind = EventKind::kAsbAdapt;
  events[0].c = 10;
  events[1].kind = EventKind::kEviction;  // skipped
  events[2].kind = EventKind::kAsbAdapt;
  events[2].c = 11;
  events[3].kind = EventKind::kPageAccess;  // skipped
  const std::vector<AsbTimelinePoint> points = AsbPointsFromEvents(events);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].clock, 1u);
  EXPECT_EQ(points[0].candidate, 10u);
  EXPECT_EQ(points[1].clock, 2u);
  EXPECT_EQ(points[1].candidate, 11u);
}

TEST(AsbTimelineTest, PointsFromWindowsCarryTheWindowClock) {
  std::vector<TelemetryWindow> windows(2);
  windows[0].clock = 4096;
  windows[0].asb_candidate = 9;
  windows[1].clock = 8192;
  windows[1].asb_candidate = 13;
  const std::vector<AsbTimelinePoint> points = AsbPointsFromWindows(windows);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].clock, 4096u);
  EXPECT_EQ(points[1].candidate, 13u);
}

}  // namespace
}  // namespace sdb::obs
