#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "test_util.h"
#include "zbtree/zcurve.h"

namespace sdb::zbtree {
namespace {

using geom::Point;
using geom::Rect;

TEST(ZCurveTest, EncodeDecodeRoundTripStaysInCell) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    const ZValue z = EncodeZ(p);
    EXPECT_TRUE(CellOf(z).Contains(p))
        << "point must lie in its own cell";
    EXPECT_TRUE(CellOf(z).Contains(DecodeZ(z)));
  }
}

TEST(ZCurveTest, CornerCases) {
  EXPECT_EQ(EncodeZ({0.0, 0.0}), 0u);
  // Values at/above 1.0 are clamped into the last cell, not wrapped.
  const ZValue top = EncodeZ({1.0, 1.0});
  EXPECT_EQ(top, EncodeZ({2.0, 5.0}));
  EXPECT_EQ(top, (1ull << (2 * kZBits)) - 1);
  EXPECT_EQ(EncodeZ({-1.0, -1.0}), 0u);
}

TEST(ZCurveTest, LocalityOrderWithinQuadrants) {
  // All of the lower-left quadrant precedes all of the upper-right
  // quadrant in z order.
  const ZValue ll = EncodeZ({0.2, 0.2});
  const ZValue ur = EncodeZ({0.7, 0.7});
  const ZValue lr = EncodeZ({0.7, 0.2});
  const ZValue ul = EncodeZ({0.2, 0.7});
  EXPECT_LT(ll, lr);
  EXPECT_LT(lr, ul);
  EXPECT_LT(ul, ur);
}

TEST(ZCurveTest, CellsAreTinyAndDisjointForDistinctValues) {
  const ZValue a = EncodeZ({0.25, 0.25});
  const ZValue b = EncodeZ({0.75, 0.75});
  EXPECT_NE(a, b);
  EXPECT_EQ(geom::IntersectionArea(CellOf(a), CellOf(b)), 0.0);
  EXPECT_NEAR(CellOf(a).width(), 1.0 / (1 << kZBits), 1e-12);
}

TEST(ZCurveDecomposeTest, FullSpaceIsOneRange) {
  const auto ranges = DecomposeWindow(Rect(0, 0, 1, 1));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, (1ull << (2 * kZBits)) - 1);
}

TEST(ZCurveDecomposeTest, EmptyWindowYieldsNothing) {
  EXPECT_TRUE(DecomposeWindow(Rect()).empty());
}

TEST(ZCurveDecomposeTest, RangesAreSortedAndDisjoint) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Rect window = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.2);
    const auto ranges = DecomposeWindow(window);
    for (size_t r = 1; r < ranges.size(); ++r) {
      EXPECT_GT(ranges[r].lo, ranges[r - 1].hi + 1)
          << "adjacent ranges must have been merged";
    }
    EXPECT_LE(ranges.size(), 64u * 2) << "budget roughly respected";
  }
}

class ZCurveCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZCurveCoverageTest, DecompositionCoversEveryPointInTheWindow) {
  // Soundness: every point inside the window maps to a z-value inside one
  // of the ranges (the decomposition may over-approximate, never under-).
  Rng rng(GetParam());
  for (int w = 0; w < 20; ++w) {
    const Rect window = test::RandomRect(rng, Rect(0.1, 0.1, 0.9, 0.9), 0.3);
    const auto ranges = DecomposeWindow(window);
    for (int i = 0; i < 200; ++i) {
      const Point p{rng.Uniform(window.xmin, window.xmax),
                    rng.Uniform(window.ymin, window.ymax)};
      const ZValue z = EncodeZ(p);
      const bool covered = std::any_of(
          ranges.begin(), ranges.end(),
          [z](const ZRange& r) { return r.lo <= z && z <= r.hi; });
      EXPECT_TRUE(covered) << "uncovered point in window";
    }
  }
}

TEST_P(ZCurveCoverageTest, TightWithGenerousBudget) {
  // With a huge budget the decomposition of a quadrant-aligned window is
  // exact: points far outside are never covered.
  Rng rng(GetParam() + 100);
  const Rect window(0.25, 0.25, 0.5, 0.5);  // one exact quadrant
  const auto ranges = DecomposeWindow(window, 1u << 20);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    if (window.Contains(p)) continue;
    // Skip boundary cells.
    if (p.x > 0.24 && p.x < 0.51 && p.y > 0.24 && p.y < 0.51) continue;
    const ZValue z = EncodeZ(p);
    const bool covered = std::any_of(
        ranges.begin(), ranges.end(),
        [z](const ZRange& r) { return r.lo <= z && z <= r.hi; });
    EXPECT_FALSE(covered) << "point outside covered by exact decomposition";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZCurveCoverageTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace sdb::zbtree
