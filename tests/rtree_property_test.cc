#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/buffer_manager.h"
#include "core/policy_lru.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace sdb::rtree {
namespace {

using core::AccessContext;
using core::BufferManager;
using geom::Rect;
using storage::DiskManager;

std::set<uint64_t> BruteForceWindow(const std::vector<Entry>& entries,
                                    const Rect& window) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) {
    if (e.rect.Intersects(window)) ids.insert(e.id);
  }
  return ids;
}

std::set<uint64_t> Ids(const std::vector<Entry>& entries) {
  std::set<uint64_t> ids;
  for (const Entry& e : entries) ids.insert(e.id);
  return ids;
}

/// Parameter: (seed, object count, max object extent, dir fanout,
/// data fanout, variant). Sweeps tree shapes from tiny fanouts (deep trees,
/// many splits and reinsertion cascades) to the paper's configuration, and
/// all three construction variants.
using Param =
    std::tuple<uint64_t, size_t, double, uint32_t, uint32_t, TreeVariant>;

class RTreePropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(RTreePropertyTest, InsertQueryDeleteInvariants) {
  const auto [seed, count, extent, dir_fanout, data_fanout, variant] =
      GetParam();

  DiskManager disk;
  BufferManager buffer(&disk, 4096, std::make_unique<core::LruPolicy>());
  RTreeConfig config;
  config.variant = variant;
  config.max_dir_entries = dir_fanout;
  config.max_data_entries = data_fanout;
  RTree tree(&disk, &buffer, config);
  const AccessContext ctx{1};

  Rng rng(seed);
  const Rect space(0, 0, 1, 1);
  std::vector<Entry> live;

  // Phase 1: insert everything; the tree must stay structurally valid and
  // answer window queries exactly.
  for (size_t i = 0; i < count; ++i) {
    Entry e;
    e.id = i + 1;
    e.rect = test::RandomRect(rng, space, extent);
    tree.Insert(e, ctx);
    live.push_back(e);
  }
  ASSERT_EQ(tree.Validate(), "") << "after inserts";
  ASSERT_EQ(tree.size(), live.size());
  for (int q = 0; q < 25; ++q) {
    const Rect window = test::RandomRect(rng, space, 0.25);
    ASSERT_EQ(Ids(tree.WindowQuery(window, ctx)),
              BruteForceWindow(live, window));
  }

  // Phase 2: interleave deletions and insertions (update workload), then
  // re-check validity and exactness.
  std::vector<Entry> inserted_later;
  for (size_t round = 0; round < count / 2; ++round) {
    if (round % 3 != 2 && !live.empty()) {
      const size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(tree.Delete(live[victim].id, live[victim].rect, ctx));
      live.erase(live.begin() + victim);
    } else {
      Entry e;
      e.id = 1'000'000 + round;
      e.rect = test::RandomRect(rng, space, extent);
      tree.Insert(e, ctx);
      live.push_back(e);
    }
  }
  ASSERT_EQ(tree.Validate(), "") << "after mixed updates";
  ASSERT_EQ(tree.size(), live.size());
  for (int q = 0; q < 25; ++q) {
    const Rect window = test::RandomRect(rng, space, 0.25);
    ASSERT_EQ(Ids(tree.WindowQuery(window, ctx)),
              BruteForceWindow(live, window));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreePropertyTest,
    ::testing::Values(
        // Tiny fanouts: deep trees, heavy split/reinsert/condense traffic.
        Param{1, 200, 0.02, 4, 4, TreeVariant::kRStar},
        Param{2, 300, 0.05, 5, 4, TreeVariant::kRStar},
        Param{3, 500, 0.01, 8, 6, TreeVariant::kRStar},
        // Moderate fanouts.
        Param{4, 800, 0.02, 16, 12, TreeVariant::kRStar},
        Param{5, 600, 0.10, 10, 10, TreeVariant::kRStar},
        // Point-like objects (zero-extent rectangles).
        Param{6, 700, 0.0, 8, 8, TreeVariant::kRStar},
        // The paper's fanout configuration.
        Param{7, 1500, 0.01, 51, 42, TreeVariant::kRStar},
        Param{8, 1000, 0.03, 51, 42, TreeVariant::kRStar},
        // Guttman variants: quadratic and linear splits, no reinsertion.
        Param{9, 500, 0.01, 8, 6, TreeVariant::kGuttmanQuadratic},
        Param{10, 1000, 0.03, 16, 12, TreeVariant::kGuttmanQuadratic},
        Param{11, 1500, 0.01, 51, 42, TreeVariant::kGuttmanQuadratic},
        Param{12, 500, 0.01, 8, 6, TreeVariant::kGuttmanLinear},
        Param{13, 1000, 0.03, 16, 12, TreeVariant::kGuttmanLinear},
        Param{14, 1500, 0.01, 51, 42, TreeVariant::kGuttmanLinear}));

/// Header aggregates must stay consistent under updates — the replacement
/// policies depend on them.
class AggregateConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateConsistencyTest, HeadersMatchRecomputedAggregates) {
  DiskManager disk;
  BufferManager buffer(&disk, 2048, std::make_unique<core::LruPolicy>());
  RTreeConfig config;
  config.max_dir_entries = 8;
  config.max_data_entries = 8;
  RTree tree(&disk, &buffer, config);
  const AccessContext ctx{1};
  Rng rng(GetParam());

  std::vector<Entry> live;
  for (size_t i = 0; i < 400; ++i) {
    Entry e;
    e.id = i + 1;
    e.rect = test::RandomRect(rng, Rect(0, 0, 1, 1), 0.03);
    tree.Insert(e, ctx);
    live.push_back(e);
    if (i % 7 == 6) {
      const size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(tree.Delete(live[victim].id, live[victim].rect, ctx));
      live.erase(live.begin() + victim);
    }
  }
  buffer.FlushAll();
  // Validate() recomputes every node's aggregates from its entries and
  // compares with the stored header (among other checks).
  EXPECT_EQ(tree.Validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateConsistencyTest,
                         ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace sdb::rtree
