// The write-ahead log from the record wire format up: encode/parse
// round-trips and rejection of every corruption class, inline and
// group-commit durability through WalManager, redo-only recovery with its
// commit horizon and checkpoint bound, and the crash suite — a torn log
// flush at EVERY write index must leave recovery byte-exact against the
// snapshot of the last commit whose records survived intact.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "wal/log_record.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace sdb::wal {
namespace {

constexpr size_t kPageSize = 512;

std::vector<std::byte> MakeImage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

/// Lays a raw log stream onto a device in page-size blocks (zero-padded
/// tail), the way WalManager's flush would have.
void WriteStream(storage::DiskManager& log,
                 const std::vector<std::byte>& stream) {
  const size_t page_size = log.page_size();
  const size_t pages = (stream.size() + page_size - 1) / page_size;
  std::vector<std::byte> image(page_size);
  for (size_t p = 0; p < pages; ++p) {
    while (log.page_count() <= p) log.AllocateOrDie();
    const size_t offset = p * page_size;
    const size_t n = std::min(page_size, stream.size() - offset);
    std::memcpy(image.data(), stream.data() + offset, n);
    std::memset(image.data() + n, 0, page_size - n);
    ASSERT_TRUE(log.Write(static_cast<storage::PageId>(p), image).ok());
  }
}

/// Reads the whole log device back into one flat stream.
std::vector<std::byte> ReadStream(storage::PageDevice& log) {
  const size_t page_size = log.page_size();
  std::vector<std::byte> stream(log.page_count() * page_size);
  for (size_t p = 0; p < log.page_count(); ++p) {
    EXPECT_TRUE(log.Read(static_cast<storage::PageId>(p),
                         {stream.data() + p * page_size, page_size})
                    .ok());
  }
  return stream;
}

// ---------------------------------------------------------------------------
// Record wire format

TEST(LogRecordTest, AppendParseRoundTrip) {
  std::vector<std::byte> stream;
  const auto payload = MakeImage(kPageSize, 0xAB);
  const size_t first = AppendRecord(RecordType::kPageImage, 0, 7, payload,
                                    &stream);
  EXPECT_EQ(first, RecordHeader::kSize + kPageSize);
  const size_t second =
      AppendRecord(RecordType::kCommit, first, 3, {}, &stream);
  EXPECT_EQ(second, RecordHeader::kSize);

  const auto image = ParseRecordAt(stream, 0);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->header.type, RecordType::kPageImage);
  EXPECT_EQ(image->header.page, 7u);
  EXPECT_EQ(image->header.lsn, 0u);
  EXPECT_EQ(image->payload.size(), kPageSize);
  EXPECT_EQ(std::memcmp(image->payload.data(), payload.data(), kPageSize), 0);
  EXPECT_EQ(image->end, first);

  const auto commit = ParseRecordAt(stream, image->end);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->header.type, RecordType::kCommit);
  EXPECT_EQ(commit->header.page, 3u) << "commit carries the data page count";
  EXPECT_EQ(commit->end, stream.size());
}

TEST(LogRecordTest, RejectsEveryCorruptionClass) {
  std::vector<std::byte> stream;
  const auto payload = MakeImage(kPageSize, 0x11);
  AppendRecord(RecordType::kPageImage, 0, 1, payload, &stream);

  // Payload bit flip breaks the CRC.
  {
    auto copy = stream;
    copy[RecordHeader::kSize + 100] ^= std::byte{0x01};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Header bit flip (page field) breaks the CRC too.
  {
    auto copy = stream;
    copy[24] ^= std::byte{0x01};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Wrong magic.
  {
    auto copy = stream;
    copy[0] = std::byte{0x00};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Stale-bytes defense: a perfectly valid record read at the wrong offset
  // fails the lsn==offset rule.
  {
    std::vector<std::byte> shifted(32, std::byte{0});
    shifted.insert(shifted.end(), stream.begin(), stream.end());
    EXPECT_FALSE(ParseRecordAt(shifted, 32).has_value());
  }
  // Truncation (torn tail mid-payload).
  {
    auto copy = stream;
    copy.resize(copy.size() - 10);
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Zeroes (clean end of log).
  {
    const std::vector<std::byte> zeros(256, std::byte{0});
    EXPECT_FALSE(ParseRecordAt(zeros, 0).has_value());
  }
  // Unknown record type.
  {
    auto copy = stream;
    copy[4] = std::byte{9};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
}

// ---------------------------------------------------------------------------
// WalManager, inline mode

TEST(WalManagerTest, InlineCommitIsImmediatelyDurable) {
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto a = MakeImage(kPageSize, 0xA1);
  const auto b = MakeImage(kPageSize, 0xB2);
  const PageImageRef images[] = {{4, a}, {9, b}};
  const core::StatusOr<Lsn> end = wal.CommitPages(images, 10, {});
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, wal.next_lsn());
  EXPECT_EQ(wal.durable_lsn(), wal.next_lsn()) << "inline commit flushes";

  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.appends, 3u);  // two images + one commit
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.fsyncs, 1u);
  EXPECT_EQ(stats.grouped_commits, 1u);
  EXPECT_EQ(stats.forced_steals, 0u);

  // The on-device stream parses back to exactly that group.
  const std::vector<std::byte> stream = ReadStream(log);
  const auto first = ParseRecordAt(stream, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.page, 4u);
  const auto second = ParseRecordAt(stream, first->end);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->header.page, 9u);
  const auto commit = ParseRecordAt(stream, second->end);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->header.type, RecordType::kCommit);
  EXPECT_EQ(commit->header.page, 10u);
}

TEST(WalManagerTest, PartialTailPageSurvivesRepeatedFlushes) {
  // Records are much smaller than a page, so consecutive flushes keep
  // rewriting the same tail page; the already-durable head must survive.
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  for (uint8_t i = 0; i < 20; ++i) {
    const auto image = MakeImage(kPageSize, i);
    const PageImageRef ref{i, image};
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, 20, {}).ok());
  }
  const std::vector<std::byte> stream = ReadStream(log);
  Lsn offset = 0;
  size_t images = 0;
  size_t commits = 0;
  while (const auto record = ParseRecordAt(stream, offset)) {
    if (record->header.type == RecordType::kPageImage) {
      EXPECT_EQ(record->payload[0], std::byte{static_cast<uint8_t>(images)});
      ++images;
    } else if (record->header.type == RecordType::kCommit) {
      ++commits;
    }
    offset = record->end;
  }
  EXPECT_EQ(images, 20u);
  EXPECT_EQ(commits, 20u);
  EXPECT_EQ(offset, wal.durable_lsn()) << "whole durable stream parses";
}

TEST(WalManagerTest, SegmentBoundariesAreCounted) {
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.segment_pages = 2;  // 1 KiB segments: the images cross often
  WalManager wal(&log, options);
  for (int i = 0; i < 8; ++i) {
    const auto image = MakeImage(kPageSize, 0x33);
    const PageImageRef ref{0, image};
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, 1, {}).ok());
  }
  EXPECT_GE(wal.stats().segments_opened, 3u);
}

TEST(WalManagerTest, EnsureDurableIsIdempotentOnDurablePrefix) {
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto image = MakeImage(kPageSize, 0x44);
  const PageImageRef ref{0, image};
  const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 1, {});
  ASSERT_TRUE(end.ok());
  EXPECT_TRUE(wal.EnsureDurable(*end).ok());
  EXPECT_TRUE(wal.EnsureDurable(0).ok());
}

// ---------------------------------------------------------------------------
// WalManager, group-commit mode (threaded; runs under tsan)

TEST(WalGroupCommitTest, ConcurrentCommittersAllBecomeDurable) {
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.group_commit = true;
  options.group_window_us = 200;
  options.commit_queue_capacity = 4;  // exercise backpressure
  constexpr size_t kThreads = 4;
  constexpr size_t kCommitsPerThread = 8;
  {
    WalManager wal(&log, options);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (size_t i = 0; i < kCommitsPerThread; ++i) {
          const auto image = MakeImage(
              kPageSize, static_cast<uint8_t>(t * kCommitsPerThread + i));
          const PageImageRef ref{static_cast<storage::PageId>(t), image};
          const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 4, {});
          ASSERT_TRUE(end.ok());
          EXPECT_TRUE(wal.EnsureDurable(*end).ok());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const WalStats stats = wal.stats();
    EXPECT_EQ(stats.commits, kThreads * kCommitsPerThread);
    EXPECT_EQ(stats.grouped_commits, kThreads * kCommitsPerThread)
        << "every commit was covered by some flush";
    EXPECT_LE(stats.fsyncs, stats.commits);
    EXPECT_EQ(wal.durable_lsn(), wal.next_lsn());
  }
  // The interleaving is nondeterministic but the stream must still be one
  // valid chain holding every commit.
  storage::DiskManager& device = log;
  const std::vector<std::byte> stream = ReadStream(device);
  Lsn offset = 0;
  size_t commits = 0;
  while (const auto record = ParseRecordAt(stream, offset)) {
    if (record->header.type == RecordType::kCommit) ++commits;
    offset = record->end;
  }
  EXPECT_EQ(commits, kThreads * kCommitsPerThread);
}

TEST(WalGroupCommitTest, ShutdownUnderLoadAcknowledgesOnlyDurableCommits) {
  // Shutdown races live committers: every CommitPages call must return
  // either success (and then the commit is durable) or Unavailable — never
  // hang, never acknowledge a commit the final flush did not cover.
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.group_commit = true;
  options.group_window_us = 100;
  options.commit_queue_capacity = 4;  // keep committers blocked in the queue
  WalManager wal(&log, options);
  constexpr size_t kThreads = 4;
  std::vector<std::vector<Lsn>> acknowledged(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &acknowledged, t] {
      for (size_t i = 0; i < 64; ++i) {
        const auto image = MakeImage(kPageSize, static_cast<uint8_t>(i));
        const PageImageRef ref{static_cast<storage::PageId>(t), image};
        const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 4, {});
        if (!end.ok()) {
          // The log closed mid-stream: the only legal refusal. The thread's
          // records may still be durable — recovery's problem, not ours.
          EXPECT_EQ(end.status().code(), core::StatusCode::kUnavailable);
          return;
        }
        acknowledged[t].push_back(*end);
      }
    });
  }
  // Let some commits land, then pull the plug while committers are in
  // flight (appending, queued, or blocked on backpressure).
  std::this_thread::sleep_for(std::chrono::microseconds(500));
  wal.Shutdown();
  for (std::thread& thread : threads) thread.join();
  wal.Shutdown();  // idempotent

  size_t acks = 0;
  for (const std::vector<Lsn>& lsns : acknowledged) {
    for (const Lsn end : lsns) {
      EXPECT_LE(end, wal.durable_lsn())
          << "an acknowledged commit must be durable";
      ++acks;
    }
  }
  // The device stream is one valid record chain holding at least every
  // acknowledged commit (unacknowledged stragglers may have made it too).
  const std::vector<std::byte> stream = ReadStream(log);
  Lsn offset = 0;
  size_t commits = 0;
  while (const auto record = ParseRecordAt(stream, offset)) {
    if (record->header.type == RecordType::kCommit) ++commits;
    offset = record->end;
  }
  EXPECT_GE(commits, acks);
  EXPECT_GE(offset, wal.durable_lsn()) << "the durable prefix parses";
}

TEST(WalGroupCommitTest, CheckpointsAndTruncationRunConcurrentlyWithCommits) {
  // Liveness of the two-latch split: fuzzy checkpoints and segment
  // truncation (device writes under the file latch) interleave with live
  // group committers (queue latch) without deadlock or starvation.
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.group_commit = true;
  options.group_window_us = 50;
  options.segment_pages = 2;
  WalManager wal(&log, options);
  std::vector<std::thread> committers;
  for (size_t t = 0; t < 2; ++t) {
    committers.emplace_back([&wal, t] {
      for (size_t i = 0; i < 48; ++i) {
        const auto image = MakeImage(kPageSize, static_cast<uint8_t>(i));
        const PageImageRef ref{static_cast<storage::PageId>(t), image};
        const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 2, {});
        EXPECT_TRUE(end.ok());
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    const Lsn redo = wal.durable_lsn();
    const core::StatusOr<Lsn> end = wal.AppendCheckpoint(2, {}, redo);
    ASSERT_TRUE(end.ok());
    ASSERT_TRUE(wal.EnsureDurable(*end).ok());
    ASSERT_TRUE(wal.TruncateBelow(redo).ok());
  }
  for (std::thread& thread : committers) thread.join();
  EXPECT_EQ(wal.durable_lsn(), wal.next_lsn())
      << "every committer waited for durability";
  EXPECT_EQ(wal.stats().checkpoints, 8u);
  EXPECT_EQ(wal.truncated_lsn() % (options.segment_pages * kPageSize), 0u);
}

// ---------------------------------------------------------------------------
// Fuzzy checkpoints and segment truncation

TEST(WalManagerTest, TruncateBelowZerosWholeSegmentsAndRecoveryStillWorks) {
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.segment_pages = 2;  // 1 KiB segments
  WalManager wal(&log, options);
  // Four single-page commits, each to its own page, fills 1..4.
  std::vector<Lsn> ends;
  for (uint8_t p = 0; p < 4; ++p) {
    const auto image = MakeImage(kPageSize, static_cast<uint8_t>(p + 1));
    const PageImageRef ref{p, image};
    const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 4, {});
    ASSERT_TRUE(end.ok());
    ends.push_back(*end);
  }
  // Fuzzy checkpoint at commit 2's end: pages 0 and 1 are on the data
  // device, pages 2 and 3 are still dirty in the pool.
  const Lsn redo = ends[1];
  ASSERT_TRUE(wal.AppendCheckpoint(4, {}, redo).ok());
  ASSERT_TRUE(wal.TruncateBelow(redo).ok());

  const Lsn segment_bytes = options.segment_pages * kPageSize;
  const Lsn truncated = wal.truncated_lsn();
  EXPECT_GT(truncated, 0u);
  EXPECT_LE(truncated, redo) << "only segments wholly below the horizon";
  EXPECT_EQ(truncated % segment_bytes, 0u) << "always a segment boundary";
  EXPECT_GE(wal.stats().segments_truncated, 1u);
  const std::vector<std::byte> stream = ReadStream(log);
  for (Lsn b = 0; b < truncated; ++b) {
    ASSERT_EQ(stream[b], std::byte{0}) << "offset " << b;
  }

  // Recovery of the truncated log, onto a device holding the flushed
  // prefix state, reproduces all four pages byte-exactly.
  storage::DiskManager data(kPageSize);
  for (uint8_t p = 0; p < 2; ++p) {
    data.AllocateOrDie();
    ASSERT_TRUE(data.Write(p, MakeImage(kPageSize, p + 1)).ok());
  }
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->start_lsn, truncated)
      << "start discovery skips the zero prefix (plus straddler garbage)";
  EXPECT_FALSE(result->torn_tail);
  std::vector<std::byte> page(kPageSize);
  for (uint8_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(data.Read(p, page).ok());
    for (const std::byte b : page) {
      ASSERT_EQ(b, std::byte{static_cast<uint8_t>(p + 1)}) << "page " << p;
    }
  }
}

TEST(WalCrashTest, CrashMidTruncationLeavesARecoverableLog) {
  // TruncateBelow zeros segments in ascending page order, so a crash after
  // k zeroed segments leaves exactly a k-segment zero prefix. Recovery must
  // be byte-exact at EVERY such k.
  constexpr size_t kCommits = 8;
  constexpr size_t kFlushed = 6;  // pages 0..5 on the data device at the ckpt
  WalOptions options;
  options.segment_pages = 2;
  const Lsn segment_bytes = options.segment_pages * kPageSize;

  // The workload is deterministic: run it once to learn the redo horizon
  // (commit kFlushed's end), then replay it fresh for every crash point.
  const auto run_workload = [&](storage::DiskManager* log) {
    WalManager wal(log, options);
    std::vector<Lsn> ends;
    for (uint8_t p = 0; p < kCommits; ++p) {
      const auto image = MakeImage(kPageSize, static_cast<uint8_t>(p + 1));
      const PageImageRef ref{p, image};
      const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, kCommits, {});
      EXPECT_TRUE(end.ok());
      ends.push_back(*end);
    }
    const Lsn redo = ends[kFlushed - 1];
    EXPECT_TRUE(wal.AppendCheckpoint(kCommits, {}, redo).ok());
    return redo;
  };
  Lsn redo = 0;
  {
    storage::DiskManager probe(kPageSize);
    redo = run_workload(&probe);
  }
  const size_t full_segments = redo / segment_bytes;
  ASSERT_GE(full_segments, 2u) << "the matrix needs several crash points";

  for (size_t crashed_after = 0; crashed_after <= full_segments;
       ++crashed_after) {
    storage::DiskManager log(kPageSize);
    ASSERT_EQ(run_workload(&log), redo);
    const std::vector<std::byte> zeros(kPageSize, std::byte{0});
    for (size_t p = 0; p < crashed_after * options.segment_pages; ++p) {
      ASSERT_TRUE(log.Write(static_cast<storage::PageId>(p), zeros).ok());
    }

    storage::DiskManager data(kPageSize);
    for (size_t p = 0; p < kFlushed; ++p) {
      data.AllocateOrDie();
      ASSERT_TRUE(
          data.Write(static_cast<storage::PageId>(p),
                     MakeImage(kPageSize, static_cast<uint8_t>(p + 1)))
              .ok());
    }
    const core::StatusOr<RecoveryResult> result = Recover(log, data);
    ASSERT_TRUE(result.ok()) << "crashed after " << crashed_after
                             << " segments";
    std::vector<std::byte> page(kPageSize);
    for (size_t p = 0; p < kCommits; ++p) {
      ASSERT_TRUE(data.Read(static_cast<storage::PageId>(p), page).ok());
      for (const std::byte b : page) {
        ASSERT_EQ(b, std::byte{static_cast<uint8_t>(p + 1)})
            << "crashed after " << crashed_after << " segments, page " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery

TEST(RecoveryTest, ReplaysOnlyCommittedImages) {
  std::vector<std::byte> stream;
  const auto committed_a = MakeImage(kPageSize, 0xAA);
  const auto committed_b = MakeImage(kPageSize, 0xBB);
  const auto uncommitted = MakeImage(kPageSize, 0xCC);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, committed_a, &stream);
  lsn += AppendRecord(RecordType::kPageImage, lsn, 1, committed_b, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 2, {}, &stream);
  // A valid image with no commit after it: the crash hit between its append
  // and its commit record's flush. Recovery must discard it.
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, uncommitted, &stream);

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scanned_records, 4u);
  EXPECT_EQ(result->replayed_pages, 2u);
  EXPECT_EQ(result->committed_page_count, 2u);
  EXPECT_FALSE(result->torn_tail) << "a valid-but-uncommitted tail is not torn";

  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0xAA}) << "uncommitted image must not replay";
  ASSERT_TRUE(data.Read(1, page).ok());
  EXPECT_EQ(page[0], std::byte{0xBB});
}

TEST(RecoveryTest, CheckpointBoundsTheReplay) {
  std::vector<std::byte> stream;
  const auto before = MakeImage(kPageSize, 0x01);
  const auto after = MakeImage(kPageSize, 0x02);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, before, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  lsn += AppendRecord(RecordType::kCheckpoint, lsn, 1, {}, &stream);
  lsn += AppendRecord(RecordType::kPageImage, lsn, 1, after, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 2, {}, &stream);

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  // The data device is in its checkpoint state: page 0 already holds the
  // forced image (that is what the checkpoint record asserts).
  data.AllocateOrDie();
  ASSERT_TRUE(data.Write(0, before).ok());

  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u)
      << "images before the checkpoint are already on the device";
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(1, page).ok());
  EXPECT_EQ(page[0], std::byte{0x02});
}

TEST(RecoveryTest, EmptyLogRecoversToNothing) {
  storage::DiskManager log(kPageSize);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scanned_records, 0u);
  EXPECT_EQ(result->replayed_pages, 0u);
  EXPECT_EQ(result->last_commit_lsn, kNullLsn);
  EXPECT_FALSE(result->torn_tail);
}

TEST(RecoveryTest, TornTailIsDetectedAndDiscarded) {
  std::vector<std::byte> stream;
  const auto good = MakeImage(kPageSize, 0x10);
  const auto lost = MakeImage(kPageSize, 0x20);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, good, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  const Lsn valid_end = lsn;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, lost, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  // Tear the second group mid-record.
  for (size_t i = valid_end + 40; i < stream.size(); i += 7) {
    stream[i] ^= std::byte{0xA5};
  }

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->valid_prefix, valid_end);
  EXPECT_TRUE(result->torn_tail);
  EXPECT_EQ(result->replayed_pages, 1u);
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0x10}) << "the torn group must not replay";
}

TEST(RecoveryTest, FuzzyCheckpointRedoHorizonSkipsFlushedImages) {
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto flushed = MakeImage(kPageSize, 0xF1);
  const auto pending = MakeImage(kPageSize, 0xD2);
  const PageImageRef first{0, flushed};
  const core::StatusOr<Lsn> e1 = wal.CommitPages({&first, 1}, 2, {});
  ASSERT_TRUE(e1.ok());
  const PageImageRef second{1, pending};
  ASSERT_TRUE(wal.CommitPages({&second, 1}, 2, {}).ok());
  // Fuzzy checkpoint: page 0 made it to the data device (its rec_lsn is
  // behind the horizon), page 1 is still dirty in the pool — so the record
  // carries redo = e1 and recovery replays from there, not from the record.
  ASSERT_TRUE(wal.AppendCheckpoint(2, {}, *e1).ok());
  EXPECT_EQ(wal.stats().checkpoints, 1u);

  storage::DiskManager data(kPageSize);
  data.AllocateOrDie();
  ASSERT_TRUE(data.Write(0, flushed).ok());
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->redo_lsn, *e1) << "the carried horizon drives the redo";
  EXPECT_EQ(result->replayed_pages, 1u) << "the flushed image is skipped";
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(1, page).ok());
  EXPECT_EQ(page[0], std::byte{0xD2});
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0xF1});
}

TEST(RecoveryTest, FuzzyRedoZeroReplaysEverything) {
  // redo_lsn 0 is a legal fuzzy horizon (min rec_lsn 1 -> redo 0) and must
  // NOT collapse into a strict checkpoint: every committed image replays.
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto image = MakeImage(kPageSize, 0x77);
  const PageImageRef ref{0, image};
  ASSERT_TRUE(wal.CommitPages({&ref, 1}, 1, {}).ok());
  ASSERT_TRUE(wal.AppendCheckpoint(1, {}, Lsn{0}).ok());

  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->redo_lsn, 0u);
  EXPECT_EQ(result->replayed_pages, 1u);
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0x77});
}

TEST(RecoveryTest, ParallelRedoIsByteIdenticalToSerial) {
  // Partitioning committed images by page-id hash keeps each page's images
  // on one worker in log order, so any worker count must reproduce the
  // serial device bytes exactly — across seeds and replay interleavings.
  for (const uint64_t seed : {7ull, 1337ull, 99991ull}) {
    storage::DiskManager log(kPageSize);
    constexpr size_t kDataPages = 32;
    {
      WalManager wal(&log);
      uint64_t rng = seed;
      for (size_t i = 0; i < 48; ++i) {
        const size_t group = 1 + static_cast<size_t>((rng >> 40) % 4);
        std::vector<std::vector<std::byte>> images;
        images.reserve(group);
        std::vector<PageImageRef> refs;
        for (size_t g = 0; g < group; ++g) {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          const auto page =
              static_cast<storage::PageId>((rng >> 33) % kDataPages);
          images.push_back(
              MakeImage(kPageSize, static_cast<uint8_t>(rng >> 16)));
          refs.push_back({page, images.back()});
        }
        ASSERT_TRUE(wal.CommitPages(refs, kDataPages, {}).ok());
      }
    }

    storage::DiskManager serial(kPageSize);
    RecoveryOptions serial_options;
    serial_options.redo_workers = 1;
    const core::StatusOr<RecoveryResult> base =
        Recover(log, serial, {}, nullptr, serial_options);
    ASSERT_TRUE(base.ok());
    EXPECT_EQ(base->redo_workers, 1u);
    ASSERT_GT(base->replayed_pages, 0u);

    for (const size_t workers : {size_t{2}, size_t{3}, size_t{8}}) {
      storage::DiskManager data(kPageSize);
      RecoveryOptions options;
      options.redo_workers = workers;
      const core::StatusOr<RecoveryResult> result =
          Recover(log, data, {}, nullptr, options);
      ASSERT_TRUE(result.ok()) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(result->redo_workers, workers);
      EXPECT_EQ(result->replayed_pages, base->replayed_pages);
      ASSERT_EQ(data.page_count(), serial.page_count());
      std::vector<std::byte> expected(kPageSize);
      std::vector<std::byte> got(kPageSize);
      for (storage::PageId p = 0; p < data.page_count(); ++p) {
        ASSERT_TRUE(serial.Read(p, expected).ok());
        ASSERT_TRUE(data.Read(p, got).ok());
        ASSERT_EQ(std::memcmp(expected.data(), got.data(), kPageSize), 0)
            << "seed " << seed << " workers " << workers << " page " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Crash suite: torn log writes at every index

/// One run of the crash workload: M commit groups over a 3-page data space,
/// with the log device tearing (silently corrupting) its `torn_index`-th
/// write. Returns via out-params the per-commit page-state snapshots and
/// the commit-end-LSN -> commit-index map, which are identical for every
/// torn_index (the appended stream does not depend on the fault).
struct CrashRun {
  storage::DiskManager log{kPageSize};
  /// expected_pages[i][p] = fill byte of page p after commit i.
  std::vector<std::vector<uint8_t>> expected_pages;
  std::map<Lsn, size_t> commit_of_end_lsn;
  uint64_t torn_writes = 0;
};

void RunCrashWorkload(uint64_t torn_index, uint64_t seed, CrashRun* run) {
  constexpr size_t kDataPages = 3;
  constexpr size_t kCommits = 8;
  storage::FaultProfile profile;
  profile.write_schedule = {torn_index};
  storage::FaultInjectingDevice faulty(run->log, profile);
  WalManager wal(&faulty);

  std::vector<uint8_t> state(kDataPages, 0);
  uint64_t rng = seed;
  for (size_t i = 0; i < kCommits; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const auto page = static_cast<storage::PageId>((rng >> 33) % kDataPages);
    const auto fill = static_cast<uint8_t>(1 + i);
    const auto image = MakeImage(kPageSize, fill);
    const PageImageRef ref{page, image};
    // The torn write is silent: CommitPages reports success even when the
    // flush corrupted the device. That IS the crash model — the loss is
    // only discoverable at recovery.
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, kDataPages, {}).ok());
    state[page] = fill;
    run->expected_pages.push_back(state);
    run->commit_of_end_lsn[wal.next_lsn()] = i;
  }
  run->torn_writes = faulty.fault_stats().torn_writes;
}

TEST(WalCrashTest, TornWriteAtEveryIndexRecoversByteExact) {
  // Baseline: how many device writes does the workload issue untorn?
  CrashRun clean;
  RunCrashWorkload(/*torn_index=*/1u << 20, /*seed=*/7, &clean);
  ASSERT_EQ(clean.torn_writes, 0u);
  const uint64_t total_writes = clean.log.stats().writes;
  ASSERT_GT(total_writes, 4u);

  // The CI soak varies the workload seed run-to-run; locally it is fixed.
  uint64_t seed = 7;
  if (const char* env = std::getenv("SDB_SOAK_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  for (uint64_t torn = 0; torn < total_writes; ++torn) {
    CrashRun run;
    RunCrashWorkload(torn, seed, &run);
    ASSERT_EQ(run.torn_writes, 1u) << "torn index " << torn;

    storage::DiskManager data(kPageSize);
    const core::StatusOr<RecoveryResult> recovered = Recover(run.log, data);
    ASSERT_TRUE(recovered.ok()) << "torn index " << torn;

    // Identify the last commit whose group survived the tear intact…
    std::vector<uint8_t> expected(3, 0);
    if (recovered->last_commit_lsn != kNullLsn) {
      // last_commit_lsn is the commit record's START; its group's end is
      // the next map key past it.
      const auto it =
          run.commit_of_end_lsn.upper_bound(recovered->last_commit_lsn);
      ASSERT_NE(it, run.commit_of_end_lsn.end()) << "torn index " << torn;
      expected = run.expected_pages[it->second];
    }
    // …and demand byte-exactness of every committed page against that
    // commit's snapshot.
    ASSERT_EQ(recovered->committed_page_count == 0 ? 0u : 3u,
              recovered->committed_page_count)
        << "torn index " << torn;
    std::vector<std::byte> page(kPageSize);
    for (storage::PageId p = 0; p < data.page_count(); ++p) {
      ASSERT_TRUE(data.Read(p, page).ok());
      for (const std::byte b : page) {
        ASSERT_EQ(b, std::byte{expected[p]})
            << "torn index " << torn << " page " << p;
      }
    }
  }
}

}  // namespace
}  // namespace sdb::wal
