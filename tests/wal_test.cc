// The write-ahead log from the record wire format up: encode/parse
// round-trips and rejection of every corruption class, inline and
// group-commit durability through WalManager, redo-only recovery with its
// commit horizon and checkpoint bound, and the crash suite — a torn log
// flush at EVERY write index must leave recovery byte-exact against the
// snapshot of the last commit whose records survived intact.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "wal/log_record.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace sdb::wal {
namespace {

constexpr size_t kPageSize = 512;

std::vector<std::byte> MakeImage(size_t size, uint8_t fill) {
  return std::vector<std::byte>(size, std::byte{fill});
}

/// Lays a raw log stream onto a device in page-size blocks (zero-padded
/// tail), the way WalManager's flush would have.
void WriteStream(storage::DiskManager& log,
                 const std::vector<std::byte>& stream) {
  const size_t page_size = log.page_size();
  const size_t pages = (stream.size() + page_size - 1) / page_size;
  std::vector<std::byte> image(page_size);
  for (size_t p = 0; p < pages; ++p) {
    while (log.page_count() <= p) log.Allocate();
    const size_t offset = p * page_size;
    const size_t n = std::min(page_size, stream.size() - offset);
    std::memcpy(image.data(), stream.data() + offset, n);
    std::memset(image.data() + n, 0, page_size - n);
    ASSERT_TRUE(log.Write(static_cast<storage::PageId>(p), image).ok());
  }
}

/// Reads the whole log device back into one flat stream.
std::vector<std::byte> ReadStream(storage::PageDevice& log) {
  const size_t page_size = log.page_size();
  std::vector<std::byte> stream(log.page_count() * page_size);
  for (size_t p = 0; p < log.page_count(); ++p) {
    EXPECT_TRUE(log.Read(static_cast<storage::PageId>(p),
                         {stream.data() + p * page_size, page_size})
                    .ok());
  }
  return stream;
}

// ---------------------------------------------------------------------------
// Record wire format

TEST(LogRecordTest, AppendParseRoundTrip) {
  std::vector<std::byte> stream;
  const auto payload = MakeImage(kPageSize, 0xAB);
  const size_t first = AppendRecord(RecordType::kPageImage, 0, 7, payload,
                                    &stream);
  EXPECT_EQ(first, RecordHeader::kSize + kPageSize);
  const size_t second =
      AppendRecord(RecordType::kCommit, first, 3, {}, &stream);
  EXPECT_EQ(second, RecordHeader::kSize);

  const auto image = ParseRecordAt(stream, 0);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->header.type, RecordType::kPageImage);
  EXPECT_EQ(image->header.page, 7u);
  EXPECT_EQ(image->header.lsn, 0u);
  EXPECT_EQ(image->payload.size(), kPageSize);
  EXPECT_EQ(std::memcmp(image->payload.data(), payload.data(), kPageSize), 0);
  EXPECT_EQ(image->end, first);

  const auto commit = ParseRecordAt(stream, image->end);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->header.type, RecordType::kCommit);
  EXPECT_EQ(commit->header.page, 3u) << "commit carries the data page count";
  EXPECT_EQ(commit->end, stream.size());
}

TEST(LogRecordTest, RejectsEveryCorruptionClass) {
  std::vector<std::byte> stream;
  const auto payload = MakeImage(kPageSize, 0x11);
  AppendRecord(RecordType::kPageImage, 0, 1, payload, &stream);

  // Payload bit flip breaks the CRC.
  {
    auto copy = stream;
    copy[RecordHeader::kSize + 100] ^= std::byte{0x01};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Header bit flip (page field) breaks the CRC too.
  {
    auto copy = stream;
    copy[24] ^= std::byte{0x01};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Wrong magic.
  {
    auto copy = stream;
    copy[0] = std::byte{0x00};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Stale-bytes defense: a perfectly valid record read at the wrong offset
  // fails the lsn==offset rule.
  {
    std::vector<std::byte> shifted(32, std::byte{0});
    shifted.insert(shifted.end(), stream.begin(), stream.end());
    EXPECT_FALSE(ParseRecordAt(shifted, 32).has_value());
  }
  // Truncation (torn tail mid-payload).
  {
    auto copy = stream;
    copy.resize(copy.size() - 10);
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
  // Zeroes (clean end of log).
  {
    const std::vector<std::byte> zeros(256, std::byte{0});
    EXPECT_FALSE(ParseRecordAt(zeros, 0).has_value());
  }
  // Unknown record type.
  {
    auto copy = stream;
    copy[4] = std::byte{9};
    EXPECT_FALSE(ParseRecordAt(copy, 0).has_value());
  }
}

// ---------------------------------------------------------------------------
// WalManager, inline mode

TEST(WalManagerTest, InlineCommitIsImmediatelyDurable) {
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto a = MakeImage(kPageSize, 0xA1);
  const auto b = MakeImage(kPageSize, 0xB2);
  const PageImageRef images[] = {{4, a}, {9, b}};
  const core::StatusOr<Lsn> end = wal.CommitPages(images, 10, {});
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, wal.next_lsn());
  EXPECT_EQ(wal.durable_lsn(), wal.next_lsn()) << "inline commit flushes";

  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.appends, 3u);  // two images + one commit
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.fsyncs, 1u);
  EXPECT_EQ(stats.grouped_commits, 1u);
  EXPECT_EQ(stats.forced_steals, 0u);

  // The on-device stream parses back to exactly that group.
  const std::vector<std::byte> stream = ReadStream(log);
  const auto first = ParseRecordAt(stream, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.page, 4u);
  const auto second = ParseRecordAt(stream, first->end);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->header.page, 9u);
  const auto commit = ParseRecordAt(stream, second->end);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->header.type, RecordType::kCommit);
  EXPECT_EQ(commit->header.page, 10u);
}

TEST(WalManagerTest, PartialTailPageSurvivesRepeatedFlushes) {
  // Records are much smaller than a page, so consecutive flushes keep
  // rewriting the same tail page; the already-durable head must survive.
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  for (uint8_t i = 0; i < 20; ++i) {
    const auto image = MakeImage(kPageSize, i);
    const PageImageRef ref{i, image};
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, 20, {}).ok());
  }
  const std::vector<std::byte> stream = ReadStream(log);
  Lsn offset = 0;
  size_t images = 0;
  size_t commits = 0;
  while (const auto record = ParseRecordAt(stream, offset)) {
    if (record->header.type == RecordType::kPageImage) {
      EXPECT_EQ(record->payload[0], std::byte{static_cast<uint8_t>(images)});
      ++images;
    } else if (record->header.type == RecordType::kCommit) {
      ++commits;
    }
    offset = record->end;
  }
  EXPECT_EQ(images, 20u);
  EXPECT_EQ(commits, 20u);
  EXPECT_EQ(offset, wal.durable_lsn()) << "whole durable stream parses";
}

TEST(WalManagerTest, SegmentBoundariesAreCounted) {
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.segment_pages = 2;  // 1 KiB segments: the images cross often
  WalManager wal(&log, options);
  for (int i = 0; i < 8; ++i) {
    const auto image = MakeImage(kPageSize, 0x33);
    const PageImageRef ref{0, image};
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, 1, {}).ok());
  }
  EXPECT_GE(wal.stats().segments_opened, 3u);
}

TEST(WalManagerTest, EnsureDurableIsIdempotentOnDurablePrefix) {
  storage::DiskManager log(kPageSize);
  WalManager wal(&log);
  const auto image = MakeImage(kPageSize, 0x44);
  const PageImageRef ref{0, image};
  const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 1, {});
  ASSERT_TRUE(end.ok());
  EXPECT_TRUE(wal.EnsureDurable(*end).ok());
  EXPECT_TRUE(wal.EnsureDurable(0).ok());
}

// ---------------------------------------------------------------------------
// WalManager, group-commit mode (threaded; runs under tsan)

TEST(WalGroupCommitTest, ConcurrentCommittersAllBecomeDurable) {
  storage::DiskManager log(kPageSize);
  WalOptions options;
  options.group_commit = true;
  options.group_window_us = 200;
  options.commit_queue_capacity = 4;  // exercise backpressure
  constexpr size_t kThreads = 4;
  constexpr size_t kCommitsPerThread = 8;
  {
    WalManager wal(&log, options);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (size_t i = 0; i < kCommitsPerThread; ++i) {
          const auto image = MakeImage(
              kPageSize, static_cast<uint8_t>(t * kCommitsPerThread + i));
          const PageImageRef ref{static_cast<storage::PageId>(t), image};
          const core::StatusOr<Lsn> end = wal.CommitPages({&ref, 1}, 4, {});
          ASSERT_TRUE(end.ok());
          EXPECT_TRUE(wal.EnsureDurable(*end).ok());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const WalStats stats = wal.stats();
    EXPECT_EQ(stats.commits, kThreads * kCommitsPerThread);
    EXPECT_EQ(stats.grouped_commits, kThreads * kCommitsPerThread)
        << "every commit was covered by some flush";
    EXPECT_LE(stats.fsyncs, stats.commits);
    EXPECT_EQ(wal.durable_lsn(), wal.next_lsn());
  }
  // The interleaving is nondeterministic but the stream must still be one
  // valid chain holding every commit.
  storage::DiskManager& device = log;
  const std::vector<std::byte> stream = ReadStream(device);
  Lsn offset = 0;
  size_t commits = 0;
  while (const auto record = ParseRecordAt(stream, offset)) {
    if (record->header.type == RecordType::kCommit) ++commits;
    offset = record->end;
  }
  EXPECT_EQ(commits, kThreads * kCommitsPerThread);
}

// ---------------------------------------------------------------------------
// Recovery

TEST(RecoveryTest, ReplaysOnlyCommittedImages) {
  std::vector<std::byte> stream;
  const auto committed_a = MakeImage(kPageSize, 0xAA);
  const auto committed_b = MakeImage(kPageSize, 0xBB);
  const auto uncommitted = MakeImage(kPageSize, 0xCC);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, committed_a, &stream);
  lsn += AppendRecord(RecordType::kPageImage, lsn, 1, committed_b, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 2, {}, &stream);
  // A valid image with no commit after it: the crash hit between its append
  // and its commit record's flush. Recovery must discard it.
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, uncommitted, &stream);

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scanned_records, 4u);
  EXPECT_EQ(result->replayed_pages, 2u);
  EXPECT_EQ(result->committed_page_count, 2u);
  EXPECT_FALSE(result->torn_tail) << "a valid-but-uncommitted tail is not torn";

  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0xAA}) << "uncommitted image must not replay";
  ASSERT_TRUE(data.Read(1, page).ok());
  EXPECT_EQ(page[0], std::byte{0xBB});
}

TEST(RecoveryTest, CheckpointBoundsTheReplay) {
  std::vector<std::byte> stream;
  const auto before = MakeImage(kPageSize, 0x01);
  const auto after = MakeImage(kPageSize, 0x02);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, before, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  lsn += AppendRecord(RecordType::kCheckpoint, lsn, 1, {}, &stream);
  lsn += AppendRecord(RecordType::kPageImage, lsn, 1, after, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 2, {}, &stream);

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  // The data device is in its checkpoint state: page 0 already holds the
  // forced image (that is what the checkpoint record asserts).
  data.Allocate();
  ASSERT_TRUE(data.Write(0, before).ok());

  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replayed_pages, 1u)
      << "images before the checkpoint are already on the device";
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(1, page).ok());
  EXPECT_EQ(page[0], std::byte{0x02});
}

TEST(RecoveryTest, EmptyLogRecoversToNothing) {
  storage::DiskManager log(kPageSize);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scanned_records, 0u);
  EXPECT_EQ(result->replayed_pages, 0u);
  EXPECT_EQ(result->last_commit_lsn, kNullLsn);
  EXPECT_FALSE(result->torn_tail);
}

TEST(RecoveryTest, TornTailIsDetectedAndDiscarded) {
  std::vector<std::byte> stream;
  const auto good = MakeImage(kPageSize, 0x10);
  const auto lost = MakeImage(kPageSize, 0x20);
  Lsn lsn = 0;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, good, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  const Lsn valid_end = lsn;
  lsn += AppendRecord(RecordType::kPageImage, lsn, 0, lost, &stream);
  lsn += AppendRecord(RecordType::kCommit, lsn, 1, {}, &stream);
  // Tear the second group mid-record.
  for (size_t i = valid_end + 40; i < stream.size(); i += 7) {
    stream[i] ^= std::byte{0xA5};
  }

  storage::DiskManager log(kPageSize);
  WriteStream(log, stream);
  storage::DiskManager data(kPageSize);
  const core::StatusOr<RecoveryResult> result = Recover(log, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->valid_prefix, valid_end);
  EXPECT_TRUE(result->torn_tail);
  EXPECT_EQ(result->replayed_pages, 1u);
  std::vector<std::byte> page(kPageSize);
  ASSERT_TRUE(data.Read(0, page).ok());
  EXPECT_EQ(page[0], std::byte{0x10}) << "the torn group must not replay";
}

// ---------------------------------------------------------------------------
// Crash suite: torn log writes at every index

/// One run of the crash workload: M commit groups over a 3-page data space,
/// with the log device tearing (silently corrupting) its `torn_index`-th
/// write. Returns via out-params the per-commit page-state snapshots and
/// the commit-end-LSN -> commit-index map, which are identical for every
/// torn_index (the appended stream does not depend on the fault).
struct CrashRun {
  storage::DiskManager log{kPageSize};
  /// expected_pages[i][p] = fill byte of page p after commit i.
  std::vector<std::vector<uint8_t>> expected_pages;
  std::map<Lsn, size_t> commit_of_end_lsn;
  uint64_t torn_writes = 0;
};

void RunCrashWorkload(uint64_t torn_index, uint64_t seed, CrashRun* run) {
  constexpr size_t kDataPages = 3;
  constexpr size_t kCommits = 8;
  storage::FaultProfile profile;
  profile.write_schedule = {torn_index};
  storage::FaultInjectingDevice faulty(run->log, profile);
  WalManager wal(&faulty);

  std::vector<uint8_t> state(kDataPages, 0);
  uint64_t rng = seed;
  for (size_t i = 0; i < kCommits; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const auto page = static_cast<storage::PageId>((rng >> 33) % kDataPages);
    const auto fill = static_cast<uint8_t>(1 + i);
    const auto image = MakeImage(kPageSize, fill);
    const PageImageRef ref{page, image};
    // The torn write is silent: CommitPages reports success even when the
    // flush corrupted the device. That IS the crash model — the loss is
    // only discoverable at recovery.
    ASSERT_TRUE(wal.CommitPages({&ref, 1}, kDataPages, {}).ok());
    state[page] = fill;
    run->expected_pages.push_back(state);
    run->commit_of_end_lsn[wal.next_lsn()] = i;
  }
  run->torn_writes = faulty.fault_stats().torn_writes;
}

TEST(WalCrashTest, TornWriteAtEveryIndexRecoversByteExact) {
  // Baseline: how many device writes does the workload issue untorn?
  CrashRun clean;
  RunCrashWorkload(/*torn_index=*/1u << 20, /*seed=*/7, &clean);
  ASSERT_EQ(clean.torn_writes, 0u);
  const uint64_t total_writes = clean.log.stats().writes;
  ASSERT_GT(total_writes, 4u);

  // The CI soak varies the workload seed run-to-run; locally it is fixed.
  uint64_t seed = 7;
  if (const char* env = std::getenv("SDB_SOAK_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  for (uint64_t torn = 0; torn < total_writes; ++torn) {
    CrashRun run;
    RunCrashWorkload(torn, seed, &run);
    ASSERT_EQ(run.torn_writes, 1u) << "torn index " << torn;

    storage::DiskManager data(kPageSize);
    const core::StatusOr<RecoveryResult> recovered = Recover(run.log, data);
    ASSERT_TRUE(recovered.ok()) << "torn index " << torn;

    // Identify the last commit whose group survived the tear intact…
    std::vector<uint8_t> expected(3, 0);
    if (recovered->last_commit_lsn != kNullLsn) {
      // last_commit_lsn is the commit record's START; its group's end is
      // the next map key past it.
      const auto it =
          run.commit_of_end_lsn.upper_bound(recovered->last_commit_lsn);
      ASSERT_NE(it, run.commit_of_end_lsn.end()) << "torn index " << torn;
      expected = run.expected_pages[it->second];
    }
    // …and demand byte-exactness of every committed page against that
    // commit's snapshot.
    ASSERT_EQ(recovered->committed_page_count == 0 ? 0u : 3u,
              recovered->committed_page_count)
        << "torn index " << torn;
    std::vector<std::byte> page(kPageSize);
    for (storage::PageId p = 0; p < data.page_count(); ++p) {
      ASSERT_TRUE(data.Read(p, page).ok());
      for (const std::byte b : page) {
        ASSERT_EQ(b, std::byte{expected[p]})
            << "torn index " << torn << " page " << p;
      }
    }
  }
}

}  // namespace
}  // namespace sdb::wal
