#include "storage/disk_manager.h"

#include <cstdio>
#include <cstring>

#include "common/macros.h"
#include "storage/crc32c.h"

namespace sdb::storage {

namespace {
uint32_t ZeroPageCrc(size_t page_size) {
  std::vector<std::byte> zero(page_size, std::byte{0});
  return crc32c::Checksum(zero);
}
}  // namespace

DiskManager::DiskManager(size_t page_size)
    : page_size_(page_size), zero_page_crc_(ZeroPageCrc(page_size)) {
  SDB_CHECK_MSG(page_size >= PageHeaderView::kHeaderSize,
                "page must fit its header");
}

core::StatusOr<PageId> DiskManager::Allocate() {
  // Disk-full is an operational condition, not a harness bug: the write
  // path surfaces it as backpressure (New() fails, the service stays up)
  // instead of aborting the process.
  if (pages_.size() >= kInvalidPageId ||
      (page_capacity_ != 0 && pages_.size() >= page_capacity_)) {
    return core::Status::ResourceExhausted("disk full");
  }
  auto page = std::make_unique<std::byte[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  checksums_.push_back(zero_page_crc_);
  return static_cast<PageId>(pages_.size() - 1);
}

core::Status DiskManager::Read(PageId id, std::span<std::byte> out) {
  SDB_CHECK(out.size() == page_size_);
  std::memcpy(out.data(), PagePtr(id), page_size_);
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  }
  last_read_ = id;
  return core::Status::Ok();
}

core::Status DiskManager::Write(PageId id, std::span<const std::byte> in) {
  // Hardened write path: short (or oversized) buffers and unallocated page
  // ids are rejected with a status, not an abort — the buffer manager
  // propagates the failure to the caller that dirtied the page.
  if (in.size() != page_size_) {
    return core::Status::InvalidArgument("short write: buffer size mismatch");
  }
  if (id >= pages_.size()) {
    return core::Status::InvalidArgument("write to unallocated page");
  }
  std::memcpy(PagePtr(id), in.data(), page_size_);
  checksums_[id] = crc32c::Checksum(in);
  // Verify the sidecar re-stamp against the bytes actually stored: a page
  // rewrite must leave device bytes and sidecar in agreement, or every later
  // fetch of the page would quarantine it.
  if (crc32c::Checksum({PagePtr(id), page_size_}) != checksums_[id]) {
    return core::Status::DataLoss("page rewrite failed checksum verification");
  }
  ++stats_.writes;
  if (last_write_ != kInvalidPageId && id == last_write_ + 1) {
    ++stats_.sequential_writes;
  }
  last_write_ = id;
  return core::Status::Ok();
}

core::Status DiskManager::WriteConcurrent(PageId id,
                                          std::span<const std::byte> in) {
  // Parallel-redo variant of Write: identical page/sidecar update, minus
  // the IoStats counters and last_write_ run tracking — the only members
  // shared between pages. Callers partition page ids across threads, so
  // pages_[id]/checksums_[id] are single-writer here.
  if (in.size() != page_size_) {
    return core::Status::InvalidArgument("short write: buffer size mismatch");
  }
  if (id >= pages_.size()) {
    return core::Status::InvalidArgument("write to unallocated page");
  }
  std::memcpy(PagePtr(id), in.data(), page_size_);
  checksums_[id] = crc32c::Checksum(in);
  if (crc32c::Checksum({PagePtr(id), page_size_}) != checksums_[id]) {
    return core::Status::DataLoss("page rewrite failed checksum verification");
  }
  return core::Status::Ok();
}

std::optional<uint32_t> DiskManager::PageChecksum(PageId id) const {
  SDB_CHECK_MSG(id < checksums_.size(), "page id out of range");
  return checksums_[id];
}

PageMeta DiskManager::PeekMeta(PageId id) const {
  return ConstPageHeaderView(PagePtr(id)).ToMeta();
}

std::span<const std::byte> DiskManager::PeekPage(PageId id) const {
  return {PagePtr(id), page_size_};
}

namespace {
/// Image file magic ("SDBDISK1").
constexpr uint64_t kImageMagic = 0x53444244'49534b31ull;

struct ImageHeader {
  uint64_t magic;
  uint64_t page_size;
  uint64_t page_count;
};

/// Owns a FILE* for exception-free early returns.
struct FileCloser {
  std::FILE* file;
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);
  }
};
}  // namespace

bool DiskManager::SaveImage(const std::string& path) const {
  FileCloser out{std::fopen(path.c_str(), "wb")};
  if (out.file == nullptr) return false;
  const ImageHeader header{kImageMagic, page_size_, pages_.size()};
  if (std::fwrite(&header, sizeof(header), 1, out.file) != 1) return false;
  for (const auto& page : pages_) {
    if (std::fwrite(page.get(), 1, page_size_, out.file) != page_size_) {
      return false;
    }
  }
  return std::fflush(out.file) == 0;
}

std::optional<DiskManager> DiskManager::LoadImage(const std::string& path) {
  FileCloser in{std::fopen(path.c_str(), "rb")};
  if (in.file == nullptr) return std::nullopt;
  ImageHeader header;
  if (std::fread(&header, sizeof(header), 1, in.file) != 1 ||
      header.magic != kImageMagic ||
      header.page_size < PageHeaderView::kHeaderSize) {
    return std::nullopt;
  }
  DiskManager disk(header.page_size);
  disk.pages_.reserve(header.page_count);
  disk.checksums_.reserve(header.page_count);
  for (uint64_t i = 0; i < header.page_count; ++i) {
    auto page = std::make_unique<std::byte[]>(header.page_size);
    if (std::fread(page.get(), 1, header.page_size, in.file) !=
        header.page_size) {
      return std::nullopt;
    }
    // Stamp the sidecar eagerly so views opened on the loaded image can
    // verify fetches without ever writing through this manager.
    disk.checksums_.push_back(
        crc32c::Checksum({page.get(), header.page_size}));
    disk.pages_.push_back(std::move(page));
  }
  return disk;
}

void DiskManager::ResetStats() {
  stats_ = IoStats{};
  last_read_ = kInvalidPageId;
  last_write_ = kInvalidPageId;
}

std::byte* DiskManager::PagePtr(PageId id) {
  SDB_CHECK_MSG(id < pages_.size(), "page id out of range");
  return pages_[id].get();
}

const std::byte* DiskManager::PagePtr(PageId id) const {
  SDB_CHECK_MSG(id < pages_.size(), "page id out of range");
  return pages_[id].get();
}

}  // namespace sdb::storage
