#ifndef SPATIALBUFFER_STORAGE_DISK_MANAGER_H_
#define SPATIALBUFFER_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/page.h"

namespace sdb::storage {

/// Counters of the simulated disk. The paper's experiments report the number
/// of disk accesses; the random/sequential breakdown supports the cost-model
/// ablation the paper lists as future work ("distinguishing random and
/// sequential I/O").
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sequential_reads = 0;  ///< reads at last-read page id + 1
  uint64_t sequential_writes = 0;

  uint64_t accesses() const { return reads + writes; }
  uint64_t random_reads() const { return reads - sequential_reads; }
  uint64_t random_writes() const { return writes - sequential_writes; }

  /// Weighted cost: a sequential access costs `sequential_cost` relative to
  /// a random access cost of 1.0 (a small fraction on spinning disks).
  double WeightedCost(double sequential_cost) const {
    const uint64_t sequential = sequential_reads + sequential_writes;
    const uint64_t random = accesses() - sequential;
    return static_cast<double>(random) +
           sequential_cost * static_cast<double>(sequential);
  }
};

/// Interface of everything a buffer pool needs from its backing store:
/// page-granular transfers plus per-device I/O accounting. DiskManager is
/// the canonical implementation; ReadOnlyDiskView (disk_view.h) adapts a
/// shared DiskManager for concurrent read-only replays, each view carrying
/// its own counters.
class PageDevice {
 public:
  virtual ~PageDevice() = default;

  virtual size_t page_size() const = 0;

  /// Appends a zeroed page and returns its id. Allocation is not counted as
  /// I/O (the zero page materializes in the buffer). Returns
  /// kResourceExhausted when the device is full (capacity reached or an
  /// injected disk-full fault) and kUnimplemented on read-only devices —
  /// callers surface the failure as backpressure instead of aborting.
  virtual core::StatusOr<PageId> Allocate() = 0;

  /// Allocate for call sites where a full disk indicates a harness bug
  /// (index builds and tests over an unbounded simulated device): unwraps
  /// or aborts with the error text.
  PageId AllocateOrDie() { return Allocate().ValueOrDie(); }

  /// Copies a page into `out` (which must be page_size() bytes). Returns
  /// non-OK when the device could not deliver the page — kUnavailable for
  /// transient failures worth retrying, kPermanentFailure for bad sectors.
  /// A non-OK read leaves `out` unspecified. Requesting a page id that was
  /// never allocated is a caller bug and still aborts.
  virtual core::Status Read(PageId id, std::span<std::byte> out) = 0;

  /// Copies `in` (page_size() bytes) onto the page. Returns non-OK instead
  /// of aborting on write failure: kInvalidArgument for short/oversized
  /// buffers or unallocated page ids, kDataLoss when the post-write checksum
  /// re-stamp does not verify, kUnimplemented on read-only devices.
  virtual core::Status Write(PageId id, std::span<const std::byte> in) = 0;

  /// True when WriteConcurrent may be called from several threads at once
  /// for *distinct* page ids. Devices whose write path mutates shared state
  /// beyond the page itself (fault schedules, wrapped views) answer false,
  /// and parallel writers must serialize through Write instead.
  virtual bool SupportsConcurrentWrites() const { return false; }

  /// Write variant that parallel redo calls concurrently for distinct page
  /// ids when SupportsConcurrentWrites(). Implementations skip the shared
  /// sequential-access accounting; the default forwards to Write for
  /// devices that never claim concurrency.
  virtual core::Status WriteConcurrent(PageId id,
                                       std::span<const std::byte> in) {
    return Write(id, in);
  }

  /// Makes every acknowledged Write durable ("fsync"). The in-memory
  /// devices are trivially durable, so the default succeeds; the fault
  /// layer overrides this to model failing fsyncs. The fsyncgate contract
  /// for callers: after a non-OK Sync, NONE of the writes since the last
  /// successful Sync may be assumed durable — re-write them from memory
  /// before the next Sync, or stop claiming durability.
  virtual core::Status Sync() { return core::Status::Ok(); }

  /// Number of allocated pages, when the device can tell (0 otherwise).
  /// The WAL stamps this into commit records so recovery can bound its
  /// byte-exactness check to pages that were committed.
  virtual size_t page_count() const { return 0; }

  /// Expected CRC-32C of the page as last written, if this device maintains
  /// checksums; nullopt disables verification on fetch. Checksums are kept
  /// out of band (a device sidecar, not page-header bytes) so the on-page
  /// layout — and with it fanout and every paper metric — is unchanged.
  virtual std::optional<uint32_t> PageChecksum(PageId /*id*/) const {
    return std::nullopt;
  }

  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

/// Simulated disk: a growable array of fixed-size pages held in memory, with
/// exact accounting of every page transfer. All experiment metrics are
/// computed from these counters, so buffer hits must never reach this class.
class DiskManager : public PageDevice {
 public:
  explicit DiskManager(size_t page_size = kDefaultPageSize);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  core::StatusOr<PageId> Allocate() override;
  core::Status Read(PageId id, std::span<std::byte> out) override;
  core::Status Write(PageId id, std::span<const std::byte> in) override;

  /// Artificial capacity in pages (0 = unbounded, the default): Allocate
  /// fails with kResourceExhausted once page_count() reaches it. The
  /// deterministic disk-full knob of the write-path fault tests.
  void set_page_capacity(size_t pages) { page_capacity_ = pages; }
  size_t page_capacity() const { return page_capacity_; }

  /// Distinct page ids touch distinct pages_/checksums_ slots, so writes to
  /// different pages need no synchronization once the shared IoStats and
  /// sequential-run bookkeeping are skipped.
  bool SupportsConcurrentWrites() const override { return true; }
  core::Status WriteConcurrent(PageId id,
                               std::span<const std::byte> in) override;

  /// CRC-32C sidecar, maintained eagerly: stamped on Allocate/Write (and in
  /// one pass by LoadImage), so concurrent ReadOnlyDiskViews can verify
  /// without synchronizing. The simulated disk itself never fails; the
  /// sidecar exists so corruption injected *between* disk and buffer (torn
  /// reads, bit flips) is detected on fetch.
  std::optional<uint32_t> PageChecksum(PageId id) const override;

  /// Header of a page as it is on disk — for offline inspection/validation
  /// without touching the I/O counters.
  PageMeta PeekMeta(PageId id) const;

  /// Whole page image as it is on disk, again without counting I/O. Used by
  /// structural validation and statistics walks; never by query execution.
  std::span<const std::byte> PeekPage(PageId id) const;

  /// Serializes the whole disk image to a file, so an expensively built
  /// database can be reused across processes (e.g. by benchmark runs).
  /// Returns false on I/O failure.
  bool SaveImage(const std::string& path) const;

  /// Restores a disk image written by SaveImage; nullopt if the file is
  /// missing or malformed.
  static std::optional<DiskManager> LoadImage(const std::string& path);

  DiskManager(DiskManager&&) = default;

  size_t page_size() const override { return page_size_; }
  size_t page_count() const override { return pages_.size(); }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override;

 private:
  std::byte* PagePtr(PageId id);
  const std::byte* PagePtr(PageId id) const;

  const size_t page_size_;
  // One heap block per page keeps Allocate O(1) without invalidating
  // outstanding writes; page images are only touched via Read/Write copies.
  std::vector<std::unique_ptr<std::byte[]>> pages_;
  // Parallel to pages_: CRC-32C of each page as last written.
  std::vector<uint32_t> checksums_;
  // CRC of the all-zero page, computed once so Allocate stays O(1).
  const uint32_t zero_page_crc_;
  size_t page_capacity_ = 0;  ///< 0 = unbounded
  IoStats stats_;
  PageId last_read_ = kInvalidPageId;
  PageId last_write_ = kInvalidPageId;
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_DISK_MANAGER_H_
