#include "storage/async_device.h"

#include <algorithm>

#include "common/macros.h"

namespace sdb::storage {

namespace {

/// splitmix64 finalizer, the repo-wide deterministic mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

AsyncPageDevice::AsyncPageDevice(PageDevice* base, AsyncDeviceOptions options)
    : base_(base), options_(options) {
  SDB_CHECK(base_ != nullptr);
  SDB_CHECK_MSG(options_.queue_depth > 0, "async queue needs a depth");
  pending_.reserve(options_.queue_depth);
}

AsyncPageDevice::RequestId AsyncPageDevice::SubmitRead(
    PageId page, std::span<std::byte> buffer) {
  SDB_CHECK_MSG(pending_.size() < options_.queue_depth,
                "async submission queue full: drain completions first");
  SDB_CHECK(buffer.size() == base_->page_size());
  const size_t b = [&] {
    const double depth = static_cast<double>(pending_.size());
    size_t i = 0;
    while (i < AsyncDeviceStats::kDepthBuckets - 1 &&
           depth > kAsyncQueueDepthBounds[i]) {
      ++i;
    }
    return i;
  }();
  ++stats_.depth_buckets[b];
  stats_.depth_sum += pending_.size();
  Pending request;
  request.id = next_id_++;
  request.page = page;
  request.buffer = buffer;
  // Simulated per-request service time: with a nonzero seed, requests
  // complete in rank order rather than submission order — the deterministic
  // stand-in for real devices finishing nearby sectors out of turn. Seed 0
  // ranks by id alone, i.e. FIFO.
  request.rank = options_.completion_seed == 0
                     ? request.id
                     : Mix64(options_.completion_seed ^ request.id ^
                             (static_cast<uint64_t>(page) << 20));
  pending_.push_back(request);
  ++stats_.submitted;
  ++batch_open_;
  return request.id;
}

void AsyncPageDevice::EndBatch() {
  if (batch_open_ > 0) ++stats_.batch_submits;
  batch_open_ = 0;
}

size_t AsyncPageDevice::PollCompletions(std::vector<Completion>* out,
                                        size_t max) {
  SDB_CHECK(out != nullptr);
  if (max == 0 || max > pending_.size()) max = pending_.size();
  size_t delivered = 0;
  while (delivered < max) {
    // Smallest rank completes next; ties (only possible across seeds, since
    // ids are unique inputs to the mix) break by submission order.
    const auto next = std::min_element(
        pending_.begin(), pending_.end(),
        [](const Pending& a, const Pending& b) {
          return a.rank != b.rank ? a.rank < b.rank : a.id < b.id;
        });
    Pending request = *next;
    pending_.erase(next);
    Completion completion;
    completion.id = request.id;
    completion.page = request.page;
    // The physical read happens now — completion time — so a request that
    // was canceled never consumed a device read (or a fault draw).
    completion.status = base_->Read(request.page, request.buffer);
    completion.buffer = request.buffer;
    out->push_back(std::move(completion));
    ++stats_.completed;
    ++delivered;
  }
  return delivered;
}

void AsyncPageDevice::CancelAll() {
  stats_.canceled += pending_.size();
  pending_.clear();
  batch_open_ = 0;
}

}  // namespace sdb::storage
