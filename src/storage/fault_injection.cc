#include "storage/fault_injection.h"

#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"

namespace sdb::storage {

namespace {

/// splitmix64 finalizer — the same mixer the service shards use for page-id
/// hashing. Every fault decision is a pure function of its output.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a mixed draw. `salt`
/// decorrelates the per-kind draws of one read.
double Draw(uint64_t seed, uint64_t read_index, PageId page, uint64_t salt) {
  const uint64_t h =
      Mix64(seed ^ Mix64(read_index + 1) ^ Mix64(page * 0x9E3779B97F4A7C15ull +
                                                 salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kSaltTransient = 0xA1;
constexpr uint64_t kSaltTorn = 0xB2;
constexpr uint64_t kSaltBitFlip = 0xC3;
constexpr uint64_t kSaltLatency = 0xD4;
constexpr uint64_t kSaltFlipPos = 0xE5;
constexpr uint64_t kSaltTornWrite = 0xF6;
constexpr uint64_t kSaltWriteTransient = 0x107;
constexpr uint64_t kSaltSyncFail = 0x218;
constexpr uint64_t kSaltDiskFull = 0x329;

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kTornRead:
      return "torn";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kLatencySpike:
      return "latency";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kWriteTransient:
      return "write_transient";
    case FaultKind::kWriteBadSector:
      return "write_bad_sector";
    case FaultKind::kSyncFailure:
      return "sync_failure";
    case FaultKind::kDiskFull:
      return "disk_full";
  }
  return "unknown";
}

namespace {

bool ParseDouble(std::string_view text, double* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         *out >= 0.0 && *out <= 1.0;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// "A-B" page range, end exclusive.
bool ParseRange(std::string_view text, PageId* begin, PageId* end) {
  const size_t dash = text.find('-');
  if (dash == std::string_view::npos) return false;
  uint64_t lo = 0;
  uint64_t hi = 0;
  if (!ParseU64(text.substr(0, dash), &lo) ||
      !ParseU64(text.substr(dash + 1), &hi) || hi < lo) {
    return false;
  }
  *begin = static_cast<PageId>(lo);
  *end = static_cast<PageId>(hi);
  return true;
}

std::optional<FaultKind> ParseKind(std::string_view text) {
  if (text == "transient") return FaultKind::kTransient;
  if (text == "permanent") return FaultKind::kPermanent;
  if (text == "torn") return FaultKind::kTornRead;
  if (text == "bitflip") return FaultKind::kBitFlip;
  if (text == "latency") return FaultKind::kLatencySpike;
  return std::nullopt;
}

/// Kinds a `wsched=N:kind` entry may script; `transient`/`permanent` here
/// mean their write-side variants.
std::optional<FaultKind> ParseWriteKind(std::string_view text) {
  if (text == "torn_write" || text == "torn") return FaultKind::kTornWrite;
  if (text == "transient") return FaultKind::kWriteTransient;
  if (text == "permanent") return FaultKind::kWriteBadSector;
  return std::nullopt;
}

}  // namespace

std::optional<FaultProfile> FaultProfile::Parse(std::string_view spec) {
  FaultProfile profile;
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    const std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    uint64_t u64 = 0;
    if (key == "seed") {
      if (!ParseU64(value, &profile.seed)) return std::nullopt;
    } else if (key == "transient") {
      if (!ParseDouble(value, &profile.transient_prob)) return std::nullopt;
    } else if (key == "torn") {
      if (!ParseDouble(value, &profile.torn_read_prob)) return std::nullopt;
    } else if (key == "torn_write") {
      if (!ParseDouble(value, &profile.torn_write_prob)) return std::nullopt;
    } else if (key == "bitflip") {
      if (!ParseDouble(value, &profile.bit_flip_prob)) return std::nullopt;
    } else if (key == "latency") {
      if (!ParseDouble(value, &profile.latency_spike_prob)) {
        return std::nullopt;
      }
    } else if (key == "latency_us") {
      if (!ParseU64(value, &u64)) return std::nullopt;
      profile.latency_spike_us = static_cast<uint32_t>(u64);
    } else if (key == "wtransient") {
      if (!ParseDouble(value, &profile.write_transient_prob)) {
        return std::nullopt;
      }
    } else if (key == "sync_fail") {
      if (!ParseDouble(value, &profile.sync_failure_prob)) return std::nullopt;
    } else if (key == "disk_full") {
      if (!ParseDouble(value, &profile.disk_full_prob)) return std::nullopt;
    } else if (key == "full_after") {
      if (!ParseU64(value, &profile.disk_full_after)) return std::nullopt;
    } else if (key == "bad") {
      if (!ParseRange(value, &profile.bad_begin, &profile.bad_end)) {
        return std::nullopt;
      }
    } else if (key == "wbad") {
      if (!ParseRange(value, &profile.write_bad_begin,
                      &profile.write_bad_end)) {
        return std::nullopt;
      }
    } else if (key == "target") {
      if (!ParseRange(value, &profile.target_begin, &profile.target_end)) {
        return std::nullopt;
      }
    } else if (key == "sched") {
      const size_t colon = value.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      ScheduledFault entry;
      const auto kind = ParseKind(value.substr(colon + 1));
      if (!ParseU64(value.substr(0, colon), &entry.read_index) ||
          !kind.has_value()) {
        return std::nullopt;
      }
      entry.kind = *kind;
      profile.schedule.push_back(entry);
    } else if (key == "wsched") {
      const size_t colon = value.find(':');
      ScheduledWriteFault entry;
      if (colon == std::string_view::npos) {
        if (!ParseU64(value, &entry.write_index)) return std::nullopt;
      } else {
        const auto kind = ParseWriteKind(value.substr(colon + 1));
        if (!ParseU64(value.substr(0, colon), &entry.write_index) ||
            !kind.has_value()) {
          return std::nullopt;
        }
        entry.kind = *kind;
      }
      profile.write_schedule.push_back(entry);
    } else if (key == "ssched") {
      if (!ParseU64(value, &u64)) return std::nullopt;
      profile.sync_schedule.push_back(u64);
    } else {
      return std::nullopt;
    }
  }
  return profile;
}

FaultKind FaultInjectingDevice::Decide(uint64_t read_index, PageId id) const {
  for (const ScheduledFault& entry : profile_.schedule) {
    if (entry.read_index == read_index) return entry.kind;
  }
  // Bad sectors are driven by the page id alone: retries cannot clear them.
  if (id >= profile_.bad_begin && id < profile_.bad_end) {
    return FaultKind::kPermanent;
  }
  if (id < profile_.target_begin || id >= profile_.target_end) {
    return FaultKind::kNone;
  }
  // Probabilistic kinds, in fixed priority order. Each kind draws its own
  // salted uniform, so the kinds fire independently; retries advance
  // read_index and therefore re-draw.
  if (profile_.transient_prob > 0.0 &&
      Draw(profile_.seed, read_index, id, kSaltTransient) <
          profile_.transient_prob) {
    return FaultKind::kTransient;
  }
  if (profile_.torn_read_prob > 0.0 &&
      Draw(profile_.seed, read_index, id, kSaltTorn) <
          profile_.torn_read_prob) {
    return FaultKind::kTornRead;
  }
  if (profile_.bit_flip_prob > 0.0 &&
      Draw(profile_.seed, read_index, id, kSaltBitFlip) <
          profile_.bit_flip_prob) {
    return FaultKind::kBitFlip;
  }
  if (profile_.latency_spike_prob > 0.0 &&
      Draw(profile_.seed, read_index, id, kSaltLatency) <
          profile_.latency_spike_prob) {
    return FaultKind::kLatencySpike;
  }
  return FaultKind::kNone;
}

core::Status FaultInjectingDevice::Read(PageId id, std::span<std::byte> out) {
  const uint64_t read_index = read_seq_++;
  const FaultKind fault = Decide(read_index, id);

  if (fault == FaultKind::kTransient) {
    ++fault_stats_.transient_errors;
    return core::Status::Unavailable("injected transient read error");
  }
  if (fault == FaultKind::kPermanent) {
    ++fault_stats_.permanent_errors;
    return core::Status::PermanentFailure("injected bad sector");
  }
  if (fault == FaultKind::kLatencySpike) {
    ++fault_stats_.latency_spikes;
    if (profile_.latency_spike_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(profile_.latency_spike_us));
    }
  }

  core::Status status = base_->Read(id, out);
  if (!status.ok()) return status;

  if (fault == FaultKind::kTornRead) {
    // The tail half never arrived: XOR keeps the corruption deterministic
    // and guarantees the page differs from the stamped checksum.
    ++fault_stats_.torn_reads;
    for (size_t i = out.size() / 2; i < out.size(); ++i) {
      out[i] ^= std::byte{0xA5};
    }
    return core::Status::Ok();
  }
  if (fault == FaultKind::kBitFlip) {
    ++fault_stats_.bit_flips;
    const uint64_t pos = Mix64(profile_.seed ^ Mix64(read_index) ^ kSaltFlipPos)
                         % (out.size() * 8);
    out[pos / 8] ^= std::byte{static_cast<unsigned char>(1u << (pos % 8))};
    return core::Status::Ok();
  }

  // Clean read: this is the only path that feeds the exported IoStats, so a
  // fully-recovered run reports exactly the counters of a fault-free run.
  ++clean_stats_.reads;
  if (last_clean_read_ != kInvalidPageId && id == last_clean_read_ + 1) {
    ++clean_stats_.sequential_reads;
  }
  last_clean_read_ = id;
  return core::Status::Ok();
}

FaultKind FaultInjectingDevice::DecideWrite(uint64_t write_index,
                                            PageId id) const {
  for (const ScheduledWriteFault& entry : profile_.write_schedule) {
    if (entry.write_index == write_index) return entry.kind;
  }
  // Unwritable sectors are driven by the page id alone: retries cannot
  // clear them, so the layer above must quarantine the frame.
  if (id >= profile_.write_bad_begin && id < profile_.write_bad_end) {
    return FaultKind::kWriteBadSector;
  }
  if (id < profile_.target_begin || id >= profile_.target_end) {
    return FaultKind::kNone;
  }
  if (profile_.write_transient_prob > 0.0 &&
      Draw(profile_.seed, write_index, id, kSaltWriteTransient) <
          profile_.write_transient_prob) {
    return FaultKind::kWriteTransient;
  }
  if (profile_.torn_write_prob > 0.0 &&
      Draw(profile_.seed, write_index, id, kSaltTornWrite) <
          profile_.torn_write_prob) {
    return FaultKind::kTornWrite;
  }
  return FaultKind::kNone;
}

void FaultInjectingDevice::StashPreImage(PageId id) {
  if (!profile_.sync_faults_enabled()) return;
  if (id >= base_->page_count()) return;  // base will reject the write
  for (const auto& [page, image] : presync_images_) {
    if (page == id) return;  // keep the oldest image since the last sync
  }
  std::vector<std::byte> image(base_->page_size());
  // Reads the pre-write bytes through the base device (outside clean_stats_,
  // so the fault ledger is unperturbed; base counters only move on runs that
  // configure sync faults).
  if (base_->Read(id, image).ok()) {
    presync_images_.emplace_back(id, std::move(image));
  }
}

core::Status FaultInjectingDevice::Write(PageId id,
                                         std::span<const std::byte> in) {
  const uint64_t write_index = write_seq_++;
  const FaultKind fault = DecideWrite(write_index, id);

  if (fault == FaultKind::kWriteTransient) {
    ++fault_stats_.write_transient_errors;
    return core::Status::Unavailable("injected transient write error");
  }
  if (fault == FaultKind::kWriteBadSector) {
    ++fault_stats_.write_permanent_errors;
    return core::Status::PermanentFailure("injected unwritable sector");
  }

  StashPreImage(id);
  if (fault == FaultKind::kTornWrite) {
    // The head half reaches the device, the tail half never does, and the
    // device acknowledges anyway — the silent mid-transfer crash model.
    // Nothing downstream notices until recovery walks the record checksums.
    ++fault_stats_.torn_writes;
    std::vector<std::byte> torn_image(in.begin(), in.end());
    for (size_t i = torn_image.size() / 2; i < torn_image.size(); ++i) {
      torn_image[i] ^= std::byte{0xA5};
    }
    return base_->Write(id, torn_image);
  }
  const core::Status status = base_->Write(id, in);
  if (!status.ok()) return status;
  ++clean_stats_.writes;
  if (last_write_ != kInvalidPageId && id == last_write_ + 1) {
    ++clean_stats_.sequential_writes;
  }
  last_write_ = id;
  return core::Status::Ok();
}

core::StatusOr<PageId> FaultInjectingDevice::Allocate() {
  const uint64_t alloc_index = alloc_seq_++;
  if (profile_.disk_full_after > 0 &&
      base_->page_count() >= profile_.disk_full_after) {
    ++fault_stats_.disk_full_errors;
    return core::Status::ResourceExhausted("injected disk full (capacity)");
  }
  if (profile_.disk_full_prob > 0.0 &&
      Draw(profile_.seed, alloc_index, 0, kSaltDiskFull) <
          profile_.disk_full_prob) {
    ++fault_stats_.disk_full_errors;
    return core::Status::ResourceExhausted("injected disk full");
  }
  return base_->Allocate();
}

core::Status FaultInjectingDevice::Sync() {
  const uint64_t sync_index = sync_seq_++;
  bool fail = false;
  for (const uint64_t scheduled : profile_.sync_schedule) {
    if (scheduled == sync_index) fail = true;
  }
  if (!fail && profile_.sync_failure_prob > 0.0 &&
      Draw(profile_.seed, sync_index, 0, kSaltSyncFail) <
          profile_.sync_failure_prob) {
    fail = true;
  }
  if (fail) {
    // fsyncgate: the failed fsync dropped every dirty page. Model it by
    // restoring the pre-write image of each page written since the last
    // successful Sync — a caller that retries Sync without re-writing the
    // pages "durably persists" stale bytes, exactly the bug class the WAL
    // must defend against.
    ++fault_stats_.sync_failures;
    for (const auto& [page, image] : presync_images_) {
      (void)base_->Write(page, image);
    }
    presync_images_.clear();
    return core::Status::Unavailable("injected sync failure");
  }
  const core::Status status = base_->Sync();
  if (status.ok()) presync_images_.clear();
  return status;
}

void FaultInjectingDevice::ResetStats() {
  clean_stats_ = IoStats{};
  last_clean_read_ = kInvalidPageId;
  last_write_ = kInvalidPageId;
}

}  // namespace sdb::storage
