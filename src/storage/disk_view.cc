#include "storage/disk_view.h"

#include <cstring>

#include "common/macros.h"

namespace sdb::storage {

core::StatusOr<PageId> ReadOnlyDiskView::Allocate() {
  return core::Status::Unimplemented(
      "read-only disk view cannot allocate pages");
}

core::Status ReadOnlyDiskView::Read(PageId id, std::span<std::byte> out) {
  SDB_CHECK(out.size() == base_->page_size());
  std::span<const std::byte> page = base_->PeekPage(id);
  std::memcpy(out.data(), page.data(), page.size());
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  }
  last_read_ = id;
  return core::Status::Ok();
}

core::Status ReadOnlyDiskView::Write(PageId, std::span<const std::byte>) {
  return core::Status::Unimplemented("read-only disk view cannot write pages");
}

void ReadOnlyDiskView::ResetStats() {
  stats_ = IoStats{};
  last_read_ = kInvalidPageId;
}

core::StatusOr<PageId> WritableDiskView::Allocate() {
  std::lock_guard<std::mutex> lock(*mu_);
  return base_->Allocate();
}

core::Status WritableDiskView::Sync() {
  std::lock_guard<std::mutex> lock(*mu_);
  return base_->Sync();
}

core::Status WritableDiskView::Read(PageId id, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(*mu_);
  SDB_CHECK(out.size() == page_size_);
  std::span<const std::byte> page = base_->PeekPage(id);
  std::memcpy(out.data(), page.data(), page.size());
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  }
  last_read_ = id;
  return core::Status::Ok();
}

core::Status WritableDiskView::Write(PageId id, std::span<const std::byte> in) {
  std::lock_guard<std::mutex> lock(*mu_);
  const core::Status status = base_->Write(id, in);
  if (!status.ok()) return status;
  ++stats_.writes;
  if (last_write_ != kInvalidPageId && id == last_write_ + 1) {
    ++stats_.sequential_writes;
  }
  last_write_ = id;
  return core::Status::Ok();
}

void WritableDiskView::ResetStats() {
  stats_ = IoStats{};
  last_read_ = kInvalidPageId;
  last_write_ = kInvalidPageId;
}

}  // namespace sdb::storage
