#include "storage/disk_view.h"

#include <cstring>

#include "common/macros.h"

namespace sdb::storage {

PageId ReadOnlyDiskView::Allocate() {
  SDB_CHECK_MSG(false, "read-only disk view cannot allocate pages");
  return kInvalidPageId;
}

core::Status ReadOnlyDiskView::Read(PageId id, std::span<std::byte> out) {
  SDB_CHECK(out.size() == base_->page_size());
  std::span<const std::byte> page = base_->PeekPage(id);
  std::memcpy(out.data(), page.data(), page.size());
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  }
  last_read_ = id;
  return core::Status::Ok();
}

void ReadOnlyDiskView::Write(PageId, std::span<const std::byte>) {
  SDB_CHECK_MSG(false, "read-only disk view cannot write pages");
}

void ReadOnlyDiskView::ResetStats() {
  stats_ = IoStats{};
  last_read_ = kInvalidPageId;
}

}  // namespace sdb::storage
