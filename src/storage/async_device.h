#ifndef SPATIALBUFFER_STORAGE_ASYNC_DEVICE_H_
#define SPATIALBUFFER_STORAGE_ASYNC_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sdb::storage {

/// Construction knobs of an AsyncPageDevice.
struct AsyncDeviceOptions {
  /// Submission-queue capacity: most requests that may be in flight at
  /// once. Submitting beyond it aborts — callers size their batches (or
  /// drain completions) against in_flight() first, mirroring an io_uring
  /// SQ-full condition.
  size_t queue_depth = 8;
  /// Seed of the deterministic out-of-order completion schedule. 0 keeps
  /// completions FIFO (submission order); any other value reorders them by
  /// a per-request simulated service time, the way requests on a real
  /// device overtake each other across queue lanes.
  uint64_t completion_seed = 0;
};

/// Counters of one AsyncPageDevice. `depth_buckets` histograms the queue
/// depth observed at each submission (inclusive upper bounds in
/// kAsyncQueueDepthBounds plus one overflow bucket) so the service layer can
/// export an `io.queue_depth` histogram without the storage layer depending
/// on obs.
struct AsyncDeviceStats {
  static constexpr size_t kDepthBuckets = 8;

  uint64_t batch_submits = 0;  ///< submission batches (EndBatch with >=1 read)
  uint64_t submitted = 0;      ///< read requests enqueued
  uint64_t completed = 0;      ///< completions delivered by PollCompletions
  uint64_t canceled = 0;       ///< requests dropped before their read ran
  uint64_t depth_sum = 0;      ///< sum of sampled depths (histogram sum)
  uint64_t depth_buckets[kDepthBuckets] = {};
};

/// Inclusive upper bounds of AsyncDeviceStats::depth_buckets (the last
/// bucket is overflow). Shared with the obs export so both sides agree.
inline constexpr double kAsyncQueueDepthBounds[AsyncDeviceStats::kDepthBuckets -
                                               1] = {1, 2, 4, 8, 16, 32, 64};

/// io_uring-shaped asynchronous read front-end over a synchronous
/// PageDevice: reads are submitted in batches into caller-owned buffers and
/// harvested as out-of-order completions.
///
/// Simulation contract: the physical `base->Read` executes at
/// completion-delivery time, in a deterministic per-seed completion order
/// (seed 0 = FIFO). Requests canceled before delivery never touch the
/// device, so the wrapped device's read count — including every fault the
/// fault-injection layer would draw, latency spikes included — is exactly
/// the count of *delivered* completions, and a batched replay performs the
/// same number of device reads as the sequential replay it replaces.
class AsyncPageDevice {
 public:
  using RequestId = uint64_t;

  /// One harvested read: `status` and `buffer` carry what a synchronous
  /// `Read(page, buffer)` would have returned.
  struct Completion {
    RequestId id = 0;
    PageId page = kInvalidPageId;
    core::Status status;
    std::span<std::byte> buffer;
  };

  AsyncPageDevice(PageDevice* base, AsyncDeviceOptions options);

  AsyncPageDevice(const AsyncPageDevice&) = delete;
  AsyncPageDevice& operator=(const AsyncPageDevice&) = delete;

  /// Enqueues a read of `page` into `buffer` (caller-owned, page_size()
  /// bytes, alive until the completion is delivered or canceled). Aborts
  /// when the submission queue is full — callers check in_flight() against
  /// queue_depth() and drain first.
  RequestId SubmitRead(PageId page, std::span<std::byte> buffer);

  /// Marks the end of one submission batch (the io_uring_submit analogue);
  /// counts a batch submit when the batch enqueued at least one read.
  void EndBatch();

  /// Delivers up to `max` completions (0 = all in flight) in the schedule's
  /// completion order, executing the physical read of each as it completes.
  /// Returns the number delivered.
  size_t PollCompletions(std::vector<Completion>* out, size_t max = 0);

  /// Drops every in-flight request without reading (counted in
  /// stats().canceled).
  void CancelAll();

  size_t in_flight() const { return pending_.size(); }
  size_t queue_depth() const { return options_.queue_depth; }
  PageDevice& base() { return *base_; }
  const AsyncDeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AsyncDeviceStats{}; }

 private:
  struct Pending {
    RequestId id = 0;
    PageId page = kInvalidPageId;
    std::span<std::byte> buffer;
    uint64_t rank = 0;  ///< completion order key (service-time proxy)
  };

  PageDevice* base_;
  AsyncDeviceOptions options_;
  AsyncDeviceStats stats_;
  std::vector<Pending> pending_;
  RequestId next_id_ = 1;
  size_t batch_open_ = 0;  ///< reads submitted since the last EndBatch
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_ASYNC_DEVICE_H_
