#ifndef SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_
#define SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "storage/disk_manager.h"

namespace sdb::storage {

/// What a single injected fault does to one Read call.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// Read fails with kUnavailable; a retry draws fresh randomness and will
  /// eventually succeed.
  kTransient,
  /// Read fails with kPermanentFailure; every retry fails the same way
  /// (bad-sector semantics, driven by the page id, not the read sequence).
  kPermanent,
  /// Read "succeeds" but the second half of the page is garbage, as if the
  /// device tore mid-transfer. Detected by checksum verification.
  kTornRead,
  /// Read "succeeds" with exactly one flipped bit. Detected by checksum
  /// verification.
  kBitFlip,
  /// Read succeeds with correct data after an artificial delay. Not a data
  /// fault: excluded from the recovery ledger, visible only in latency.
  kLatencySpike,
  /// Write "succeeds" (returns OK) but the second half of the page never
  /// reaches the device — the mid-commit crash model for the WAL tail.
  /// Detected only later, by record checksums during recovery.
  kTornWrite,
};

std::string_view FaultKindName(FaultKind kind);

/// One scripted fault: at the `read_index`-th Read call (0-based, counted
/// across all pages), inject `kind` regardless of the probabilistic draws.
/// Schedules make failure scenarios exactly replayable in tests.
struct ScheduledFault {
  uint64_t read_index = 0;
  FaultKind kind = FaultKind::kNone;
};

/// Deterministic fault configuration. All probabilistic decisions are pure
/// functions of (seed, read sequence number, page id), so a run with the
/// same profile and the same read sequence injects the same faults —
/// replayable by construction.
struct FaultProfile {
  uint64_t seed = 0;

  /// Per-read probabilities in [0, 1]; evaluated in this priority order.
  double transient_prob = 0.0;
  double torn_read_prob = 0.0;
  double torn_write_prob = 0.0;
  double bit_flip_prob = 0.0;
  double latency_spike_prob = 0.0;
  /// Sleep applied on a latency spike; 0 keeps the spike accounting-only
  /// (counted but no wall-clock delay), which tests use for determinism.
  uint32_t latency_spike_us = 0;

  /// Pages in [bad_begin, bad_end) are permanently unreadable bad sectors.
  PageId bad_begin = 0;
  PageId bad_end = 0;

  /// Probabilistic faults apply only to pages in [target_begin, target_end).
  /// Default targets every page.
  PageId target_begin = 0;
  PageId target_end = kInvalidPageId;

  /// Exact overrides by read index; checked before the probabilistic draws.
  std::vector<ScheduledFault> schedule;

  /// Exact torn-write overrides by *write* index (0-based, counted across
  /// all Write calls). The seeded "crash here" knob of the recovery soak:
  /// pointing one at the WAL tail tears a commit mid-flush, replayably.
  std::vector<uint64_t> write_schedule;

  /// A profile with every probability 0, no bad range and no schedule
  /// injects nothing (the wrapper then only forwards).
  bool enabled() const {
    return transient_prob > 0.0 || torn_read_prob > 0.0 ||
           torn_write_prob > 0.0 || bit_flip_prob > 0.0 ||
           latency_spike_prob > 0.0 || bad_end > bad_begin ||
           !schedule.empty() || !write_schedule.empty();
  }

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,transient=0.01,bitflip=0.001,torn=0.001,torn_write=0.001,
  ///    latency=0.05,latency_us=200,bad=18-20,target=0-4096,
  ///    sched=12:transient,wsched=3"
  /// (`sched=`/`wsched=` may repeat). Returns nullopt on a malformed spec.
  /// This is the format of the SDB_FAULT_PROFILE env knob.
  static std::optional<FaultProfile> Parse(std::string_view spec);
};

/// Injection counters, by fault kind. `injected()` is the recovery-ledger
/// side: every one of those faults must show up downstream as a retry, a
/// recovery, or a quarantine/permanent failure.
struct FaultStats {
  uint64_t transient_errors = 0;
  uint64_t permanent_errors = 0;
  uint64_t torn_reads = 0;
  uint64_t torn_writes = 0;
  uint64_t bit_flips = 0;
  uint64_t latency_spikes = 0;

  /// Data faults only; latency spikes return correct data.
  uint64_t injected() const {
    return transient_errors + permanent_errors + torn_reads + bit_flips;
  }
};

/// PageDevice decorator that injects deterministic seeded faults into reads.
///
/// Wraps any device; Write/Allocate forward untouched (the fault model is
/// read-side). Read consults the scripted schedule, then the bad-sector
/// range, then per-kind probability draws keyed on (seed, read sequence,
/// page id) — retries of the same page are fresh draws, so transient faults
/// clear, while bad sectors fail forever.
///
/// stats() reports *clean* I/O only: reads that returned correct data,
/// with sequential-run detection over that clean sequence. When every
/// injected fault is recovered by the layer above, these counters are
/// bit-identical to the same run over the bare device — the paper's
/// disk-access metric is not perturbed by retry traffic. Attempt counts and
/// per-kind injections are reported separately via fault_stats().
class FaultInjectingDevice final : public PageDevice {
 public:
  /// `base` must outlive the wrapper.
  FaultInjectingDevice(PageDevice& base, FaultProfile profile)
      : base_(&base), profile_(std::move(profile)) {}

  size_t page_size() const override { return base_->page_size(); }
  PageId Allocate() override { return base_->Allocate(); }

  core::Status Read(PageId id, std::span<std::byte> out) override;
  core::Status Write(PageId id, std::span<const std::byte> in) override;

  size_t page_count() const override { return base_->page_count(); }

  std::optional<uint32_t> PageChecksum(PageId id) const override {
    return base_->PageChecksum(id);
  }

  /// Clean reads only — see class comment.
  const IoStats& stats() const override { return clean_stats_; }
  void ResetStats() override;

  const FaultStats& fault_stats() const { return fault_stats_; }
  /// Total Read calls, including faulted attempts.
  uint64_t reads_attempted() const { return read_seq_; }
  /// Total Write calls, including torn ones.
  uint64_t writes_attempted() const { return write_seq_; }

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultKind Decide(uint64_t read_index, PageId id) const;

  PageDevice* base_;
  FaultProfile profile_;
  FaultStats fault_stats_;
  IoStats clean_stats_;
  PageId last_clean_read_ = kInvalidPageId;
  PageId last_write_ = kInvalidPageId;
  uint64_t read_seq_ = 0;
  uint64_t write_seq_ = 0;
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_
