#ifndef SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_
#define SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/disk_manager.h"

namespace sdb::storage {

/// What a single injected fault does to one Read call.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// Read fails with kUnavailable; a retry draws fresh randomness and will
  /// eventually succeed.
  kTransient,
  /// Read fails with kPermanentFailure; every retry fails the same way
  /// (bad-sector semantics, driven by the page id, not the read sequence).
  kPermanent,
  /// Read "succeeds" but the second half of the page is garbage, as if the
  /// device tore mid-transfer. Detected by checksum verification.
  kTornRead,
  /// Read "succeeds" with exactly one flipped bit. Detected by checksum
  /// verification.
  kBitFlip,
  /// Read succeeds with correct data after an artificial delay. Not a data
  /// fault: excluded from the recovery ledger, visible only in latency.
  kLatencySpike,
  /// Write "succeeds" (returns OK) but the second half of the page never
  /// reaches the device — the mid-commit crash model for the WAL tail.
  /// Detected only later, by record checksums during recovery.
  kTornWrite,
  /// Write fails with kUnavailable before touching the device; a retry
  /// draws fresh randomness and will eventually succeed.
  kWriteTransient,
  /// Write fails with kPermanentFailure; every retry fails the same way
  /// (bad-sector semantics, driven by the page id, not the write sequence).
  kWriteBadSector,
  /// Sync fails with kUnavailable AND the device reverts every page written
  /// since the last successful Sync to its pre-write image — the fsyncgate
  /// model: after a failed fsync the kernel may have dropped your dirty
  /// pages, so callers must re-write from memory before claiming durability.
  kSyncFailure,
  /// Allocate fails with kResourceExhausted — disk-full backpressure. Not
  /// retryable: the layer above surfaces it to the caller instead of
  /// spinning.
  kDiskFull,
};

std::string_view FaultKindName(FaultKind kind);

/// One scripted fault: at the `read_index`-th Read call (0-based, counted
/// across all pages), inject `kind` regardless of the probabilistic draws.
/// Schedules make failure scenarios exactly replayable in tests.
struct ScheduledFault {
  uint64_t read_index = 0;
  FaultKind kind = FaultKind::kNone;
};

/// One scripted write-side fault at the `write_index`-th Write call. The
/// implicit single-argument form keeps the historical `write_schedule =
/// {index}` spelling meaning "tear this write" — the crash knob of the
/// recovery soak — while `{index, kind}` scripts the newer write faults.
struct ScheduledWriteFault {
  ScheduledWriteFault() = default;
  ScheduledWriteFault(uint64_t index)  // NOLINT(google-explicit-constructor)
      : write_index(index) {}
  ScheduledWriteFault(uint64_t index, FaultKind fault)
      : write_index(index), kind(fault) {}

  uint64_t write_index = 0;
  FaultKind kind = FaultKind::kTornWrite;
};

/// Deterministic fault configuration. All probabilistic decisions are pure
/// functions of (seed, read sequence number, page id), so a run with the
/// same profile and the same read sequence injects the same faults —
/// replayable by construction.
struct FaultProfile {
  uint64_t seed = 0;

  /// Per-read probabilities in [0, 1]; evaluated in this priority order.
  double transient_prob = 0.0;
  double torn_read_prob = 0.0;
  double torn_write_prob = 0.0;
  double bit_flip_prob = 0.0;
  double latency_spike_prob = 0.0;
  /// Sleep applied on a latency spike; 0 keeps the spike accounting-only
  /// (counted but no wall-clock delay), which tests use for determinism.
  uint32_t latency_spike_us = 0;

  /// Per-write probability of a transient write error (kWriteTransient),
  /// keyed on (seed, write sequence, page id) — retries re-draw.
  double write_transient_prob = 0.0;
  /// Per-sync probability of an fsyncgate failure (kSyncFailure), keyed on
  /// (seed, sync sequence).
  double sync_failure_prob = 0.0;
  /// Per-allocate probability of injected disk-full (kDiskFull), keyed on
  /// (seed, allocate sequence).
  double disk_full_prob = 0.0;
  /// Hard capacity: once the base device holds this many pages, every
  /// Allocate fails with kResourceExhausted (0 = unbounded). The
  /// deterministic "disk fills up mid-run" knob.
  uint64_t disk_full_after = 0;

  /// Pages in [bad_begin, bad_end) are permanently unreadable bad sectors.
  PageId bad_begin = 0;
  PageId bad_end = 0;

  /// Pages in [write_bad_begin, write_bad_end) are permanently unwritable
  /// bad sectors (kWriteBadSector); reads of them still succeed.
  PageId write_bad_begin = 0;
  PageId write_bad_end = 0;

  /// Probabilistic faults apply only to pages in [target_begin, target_end).
  /// Default targets every page.
  PageId target_begin = 0;
  PageId target_end = kInvalidPageId;

  /// Exact overrides by read index; checked before the probabilistic draws.
  std::vector<ScheduledFault> schedule;

  /// Exact overrides by *write* index (0-based, counted across all Write
  /// calls); default kind is kTornWrite. The seeded "crash here" knob of
  /// the recovery soak: pointing one at the WAL tail tears a commit
  /// mid-flush, replayably.
  std::vector<ScheduledWriteFault> write_schedule;

  /// Exact sync-failure overrides by *Sync* index (0-based): the scripted
  /// "this fsync lies" knob of the fsyncgate tests.
  std::vector<uint64_t> sync_schedule;

  /// A profile with every probability 0, no bad range and no schedule
  /// injects nothing (the wrapper then only forwards).
  bool enabled() const {
    return transient_prob > 0.0 || torn_read_prob > 0.0 ||
           torn_write_prob > 0.0 || bit_flip_prob > 0.0 ||
           latency_spike_prob > 0.0 || write_transient_prob > 0.0 ||
           sync_failure_prob > 0.0 || disk_full_prob > 0.0 ||
           disk_full_after > 0 || bad_end > bad_begin ||
           write_bad_end > write_bad_begin || !schedule.empty() ||
           !write_schedule.empty() || !sync_schedule.empty();
  }

  /// True when the profile can fail a Sync — the wrapper then stashes
  /// pre-write images so an injected sync failure can drop them.
  bool sync_faults_enabled() const {
    return sync_failure_prob > 0.0 || !sync_schedule.empty();
  }

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,transient=0.01,bitflip=0.001,torn=0.001,torn_write=0.001,
  ///    wtransient=0.01,sync_fail=0.001,disk_full=0.0001,full_after=4096,
  ///    latency=0.05,latency_us=200,bad=18-20,wbad=30-32,target=0-4096,
  ///    sched=12:transient,wsched=3,wsched=9:transient,ssched=2"
  /// (`sched=`/`wsched=`/`ssched=` may repeat; `wsched=N` defaults to a
  /// torn write, `wsched=N:kind` scripts transient/permanent write faults).
  /// Returns nullopt on a malformed spec. This is the format of the
  /// SDB_FAULT_PROFILE env knob.
  static std::optional<FaultProfile> Parse(std::string_view spec);
};

/// Injection counters, by fault kind. `injected()` is the recovery-ledger
/// side: every one of those faults must show up downstream as a retry, a
/// recovery, or a quarantine/permanent failure.
struct FaultStats {
  uint64_t transient_errors = 0;
  uint64_t permanent_errors = 0;
  uint64_t torn_reads = 0;
  uint64_t torn_writes = 0;
  uint64_t bit_flips = 0;
  uint64_t latency_spikes = 0;
  uint64_t write_transient_errors = 0;
  uint64_t write_permanent_errors = 0;
  uint64_t sync_failures = 0;
  uint64_t disk_full_errors = 0;

  /// Read-side data faults only; latency spikes return correct data.
  uint64_t injected() const {
    return transient_errors + permanent_errors + torn_reads + bit_flips;
  }

  /// Write-side injections: every one must show up downstream as a WAL
  /// retry, a write-quarantine, a degraded-mode entry, or a reported
  /// commit/New failure — never as silent loss.
  uint64_t write_injected() const {
    return write_transient_errors + write_permanent_errors + torn_writes +
           sync_failures + disk_full_errors;
  }
};

/// PageDevice decorator that injects deterministic seeded faults into both
/// halves of the I/O path.
///
/// Read consults the scripted schedule, then the bad-sector range, then
/// per-kind probability draws keyed on (seed, read sequence, page id) —
/// retries of the same page are fresh draws, so transient faults clear,
/// while bad sectors fail forever. Write mirrors that structure with its own
/// schedule, bad range and draws (torn, transient, permanent), Allocate can
/// inject disk-full, and Sync can fail fsyncgate-style: pages written since
/// the last successful Sync revert to their pre-write images, exactly as if
/// the kernel dropped the dirty pages on the failed fsync.
///
/// stats() reports *clean* I/O only: reads/writes that transferred correct
/// data, with sequential-run detection over that clean sequence. When every
/// injected fault is recovered by the layer above, these counters are
/// bit-identical to the same run over the bare device — the paper's
/// disk-access metric is not perturbed by retry traffic. Attempt counts and
/// per-kind injections are reported separately via fault_stats().
class FaultInjectingDevice final : public PageDevice {
 public:
  /// `base` must outlive the wrapper.
  FaultInjectingDevice(PageDevice& base, FaultProfile profile)
      : base_(&base), profile_(std::move(profile)) {}

  size_t page_size() const override { return base_->page_size(); }
  core::StatusOr<PageId> Allocate() override;

  core::Status Read(PageId id, std::span<std::byte> out) override;
  core::Status Write(PageId id, std::span<const std::byte> in) override;
  core::Status Sync() override;

  size_t page_count() const override { return base_->page_count(); }

  std::optional<uint32_t> PageChecksum(PageId id) const override {
    return base_->PageChecksum(id);
  }

  /// Clean reads only — see class comment.
  const IoStats& stats() const override { return clean_stats_; }
  void ResetStats() override;

  const FaultStats& fault_stats() const { return fault_stats_; }
  /// Total Read calls, including faulted attempts.
  uint64_t reads_attempted() const { return read_seq_; }
  /// Total Write calls, including faulted/torn ones.
  uint64_t writes_attempted() const { return write_seq_; }
  /// Total Sync calls, including failed ones.
  uint64_t syncs_attempted() const { return sync_seq_; }
  /// Total Allocate calls, including disk-full rejections.
  uint64_t allocs_attempted() const { return alloc_seq_; }

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultKind Decide(uint64_t read_index, PageId id) const;
  FaultKind DecideWrite(uint64_t write_index, PageId id) const;
  void StashPreImage(PageId id);

  PageDevice* base_;
  FaultProfile profile_;
  FaultStats fault_stats_;
  IoStats clean_stats_;
  PageId last_clean_read_ = kInvalidPageId;
  PageId last_write_ = kInvalidPageId;
  uint64_t read_seq_ = 0;
  uint64_t write_seq_ = 0;
  uint64_t sync_seq_ = 0;
  uint64_t alloc_seq_ = 0;
  /// Pre-write image of every page first written since the last successful
  /// Sync, kept only when the profile can fail syncs. An injected sync
  /// failure writes these back — the dirty pages the kernel "dropped".
  std::vector<std::pair<PageId, std::vector<std::byte>>> presync_images_;
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_FAULT_INJECTION_H_
