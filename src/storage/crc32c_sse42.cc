// SSE4.2 tier of the page-checksum CRC-32C. This translation unit is the
// only one compiled with -msse4.2 (see src/CMakeLists.txt); it must not be
// reached unless the runtime cpuid probe confirmed the instruction set, same
// contract as geom/kernels/kernels_avx2.cc.
#include <cstddef>
#include <cstdint>

#if defined(SDB_CRC32C_HAVE_SSE42)
#include <nmmintrin.h>
#endif

namespace sdb::storage::crc32c::detail {

#if defined(SDB_CRC32C_HAVE_SSE42)

uint32_t ChecksumSse42(const std::byte* data, size_t size) {
  uint64_t crc = 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p + i, 8);
    crc = _mm_crc32_u64(crc, chunk);
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  for (; i < size; ++i) {
    crc32 = _mm_crc32_u8(crc32, p[i]);
  }
  return crc32 ^ 0xFFFFFFFFu;
}

#else

uint32_t ChecksumSse42(const std::byte*, size_t) { return 0; }

#endif

}  // namespace sdb::storage::crc32c::detail
