#ifndef SPATIALBUFFER_STORAGE_DISK_VIEW_H_
#define SPATIALBUFFER_STORAGE_DISK_VIEW_H_

#include <cstddef>
#include <mutex>
#include <span>

#include "storage/disk_manager.h"

namespace sdb::storage {

/// Read-only window onto a shared DiskManager with its own I/O counters.
///
/// The experiment harness replays many (policy × buffer-size × query-set)
/// cells against one expensively built disk image. The image itself is never
/// modified by a replay, but DiskManager::Read mutates the device counters,
/// so concurrent replays over the shared manager would race and corrupt the
/// metrics. Each replay instead wraps the manager in its own view: reads are
/// served straight from the shared page array (which must not be mutated
/// while views exist), while read counts and sequential-run detection are
/// tracked per view. Write and Allocate return kUnimplemented — a replay
/// that dirties pages is a harness bug, reported as a status.
class ReadOnlyDiskView final : public PageDevice {
 public:
  explicit ReadOnlyDiskView(const DiskManager& base) : base_(&base) {}

  size_t page_size() const override { return base_->page_size(); }
  size_t page_count() const override { return base_->page_count(); }

  core::StatusOr<PageId> Allocate() override;
  core::Status Read(PageId id, std::span<std::byte> out) override;
  core::Status Write(PageId id, std::span<const std::byte> in) override;

  /// Forwards to the shared manager's eagerly-maintained sidecar; safe to
  /// call from concurrent views because replays never write.
  std::optional<uint32_t> PageChecksum(PageId id) const override {
    return base_->PageChecksum(id);
  }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override;

  const DiskManager& base() const { return *base_; }

 private:
  const DiskManager* base_;
  IoStats stats_;
  PageId last_read_ = kInvalidPageId;
};

/// Writable window onto a shared DiskManager for the sharded write path.
///
/// DiskManager is not thread-safe: Allocate grows the page and checksum
/// vectors, and Write mutates the sidecar, so concurrent shards cannot hit
/// the manager directly even though the service's page partitioning
/// guarantees each page's *bytes* are only touched under one shard's latch.
/// All views over one manager therefore share a device mutex (owned by the
/// service) that serializes every call through to the base; I/O counters and
/// sequential-run detection stay per view so shard statistics remain exact.
class WritableDiskView final : public PageDevice {
 public:
  WritableDiskView(DiskManager& base, std::mutex& device_mu)
      : base_(&base), mu_(&device_mu), page_size_(base.page_size()) {}

  size_t page_size() const override { return page_size_; }
  size_t page_count() const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return base_->page_count();
  }

  core::StatusOr<PageId> Allocate() override;
  core::Status Read(PageId id, std::span<std::byte> out) override;
  core::Status Write(PageId id, std::span<const std::byte> in) override;
  core::Status Sync() override;

  std::optional<uint32_t> PageChecksum(PageId id) const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return base_->PageChecksum(id);
  }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override;

 private:
  DiskManager* base_;
  std::mutex* mu_;
  const size_t page_size_;
  IoStats stats_;
  PageId last_read_ = kInvalidPageId;
  PageId last_write_ = kInvalidPageId;
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_DISK_VIEW_H_
