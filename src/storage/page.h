#ifndef SPATIALBUFFER_STORAGE_PAGE_H_
#define SPATIALBUFFER_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "geom/entry_aggregates.h"
#include "geom/rect.h"

namespace sdb::storage {

/// Identifier of a page within one simulated disk file.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page size. The paper's trees have fanout 51 (directory) / 42
/// (data); we reproduce those fanouts via explicit entry caps, so the byte
/// size only has to be large enough.
inline constexpr size_t kDefaultPageSize = 4096;

/// The three page categories a spatial DBMS distinguishes (paper Sec. 2.1,
/// Fig. 1): directory pages and data pages of the spatial access method, and
/// object pages holding exact object representations.
enum class PageType : uint8_t {
  kFree = 0,       ///< unallocated / zeroed page
  kDirectory = 1,  ///< inner node of the SAM
  kData = 2,       ///< leaf node of the SAM
  kObject = 3,     ///< exact-geometry object page
  kMeta = 4,       ///< file metadata (tree header etc.)
};

/// Human-readable page-type name.
std::string_view PageTypeName(PageType type);

/// Everything a replacement policy may want to know about a resident page.
/// Mirrors the on-page header; read via PageHeaderView so the values always
/// reflect the current page content.
struct PageMeta {
  PageType type = PageType::kFree;
  uint8_t level = 0;        ///< SAM level; 0 = data page / object page.
  uint16_t entry_count = 0; ///< number of entries on the page.
  geom::Rect mbr;           ///< MBR over all entries (empty if none).
  double sum_entry_area = 0.0;
  double sum_entry_margin = 0.0;
  double entry_overlap = 0.0;
};

/// Fixed 64-byte header at the start of every page.
///
/// layout (little-endian, 8-byte aligned doubles):
///   [0]   u8   type
///   [1]   u8   level
///   [2]   u16  entry_count
///   [4]   u32  reserved
///   [8]   f64  mbr.xmin
///   [16]  f64  mbr.ymin
///   [24]  f64  mbr.xmax
///   [32]  f64  mbr.ymax
///   [40]  f64  sum_entry_area
///   [48]  f64  sum_entry_margin
///   [56]  f64  entry_overlap
///
/// The spatial aggregates are maintained by whoever writes the page (the
/// R*-tree recomputes them whenever a node changes), so the replacement
/// policies can evaluate any spatial criterion from the header alone.
class PageHeaderView {
 public:
  static constexpr size_t kHeaderSize = 64;

  /// Wraps (does not own) the first kHeaderSize bytes of a page buffer.
  explicit PageHeaderView(std::byte* data) : data_(data) {}

  PageType type() const {
    return static_cast<PageType>(LoadU8(0));
  }
  void set_type(PageType t) { StoreU8(0, static_cast<uint8_t>(t)); }

  uint8_t level() const { return LoadU8(1); }
  void set_level(uint8_t level) { StoreU8(1, level); }

  uint16_t entry_count() const { return LoadU16(2); }
  void set_entry_count(uint16_t n) { StoreU16(2, n); }

  /// Access-method-specific auxiliary field (bytes 4..7); the z-order
  /// B+-tree stores its next-leaf pointer here, the R*-tree leaves it 0.
  uint32_t aux() const { return LoadU32(4); }
  void set_aux(uint32_t v) { StoreU32(4, v); }

  geom::Rect mbr() const {
    return geom::Rect(LoadF64(8), LoadF64(16), LoadF64(24), LoadF64(32));
  }
  void set_mbr(const geom::Rect& r) {
    StoreF64(8, r.xmin);
    StoreF64(16, r.ymin);
    StoreF64(24, r.xmax);
    StoreF64(32, r.ymax);
  }

  double sum_entry_area() const { return LoadF64(40); }
  double sum_entry_margin() const { return LoadF64(48); }
  double entry_overlap() const { return LoadF64(56); }

  /// Writes the precomputed spatial aggregates.
  void set_aggregates(const geom::EntryAggregates& agg) {
    set_mbr(agg.mbr);
    StoreF64(40, agg.sum_entry_area);
    StoreF64(48, agg.sum_entry_margin);
    StoreF64(56, agg.entry_overlap);
  }

  /// Decodes the whole header into a PageMeta value.
  PageMeta ToMeta() const {
    PageMeta m;
    m.type = type();
    m.level = level();
    m.entry_count = entry_count();
    m.mbr = mbr();
    m.sum_entry_area = sum_entry_area();
    m.sum_entry_margin = sum_entry_margin();
    m.entry_overlap = entry_overlap();
    return m;
  }

 private:
  uint8_t LoadU8(size_t off) const {
    return static_cast<uint8_t>(data_[off]);
  }
  void StoreU8(size_t off, uint8_t v) {
    data_[off] = static_cast<std::byte>(v);
  }
  uint16_t LoadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  void StoreU16(size_t off, uint16_t v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }
  uint32_t LoadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  void StoreU32(size_t off, uint32_t v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }
  double LoadF64(size_t off) const {
    double v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  void StoreF64(size_t off, double v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }

  std::byte* data_;
};

/// Read-only variant of PageHeaderView.
class ConstPageHeaderView {
 public:
  explicit ConstPageHeaderView(const std::byte* data)
      // PageHeaderView only mutates through the setters, which this wrapper
      // does not expose; the const_cast is confined here.
      : view_(const_cast<std::byte*>(data)) {}

  PageType type() const { return view_.type(); }
  uint8_t level() const { return view_.level(); }
  uint16_t entry_count() const { return view_.entry_count(); }
  uint32_t aux() const { return view_.aux(); }
  geom::Rect mbr() const { return view_.mbr(); }
  double sum_entry_area() const { return view_.sum_entry_area(); }
  double sum_entry_margin() const { return view_.sum_entry_margin(); }
  double entry_overlap() const { return view_.entry_overlap(); }
  PageMeta ToMeta() const { return view_.ToMeta(); }

 private:
  PageHeaderView view_;
};

}  // namespace sdb::storage

#endif  // SPATIALBUFFER_STORAGE_PAGE_H_
