#include "storage/crc32c.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace sdb::storage::crc32c {

namespace detail {
// Defined in crc32c_sse42.cc (compiled with -msse4.2 when available).
uint32_t ChecksumSse42(const std::byte* data, size_t size);
}  // namespace detail

namespace {

/// Reflected CRC-32C lookup table (polynomial 0x82F63B78), built at compile
/// time so the scalar tier has no startup cost.
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

bool CpuHasSse42() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool CompiledSse42() {
#if defined(SDB_CRC32C_COMPILED_SSE42)
  return true;
#else
  return false;
#endif
}

Level DetectBest() {
  if (CompiledSse42() && CpuHasSse42()) return Level::kSse42;
  return Level::kScalar;
}

/// Startup tier: best available, unless SDB_CRC32C pins one.
Level InitialLevel() {
  const char* env = std::getenv("SDB_CRC32C");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "sse42") == 0) {
      SDB_CHECK_MSG(LevelAvailable(Level::kSse42),
                    "SDB_CRC32C=sse42 but SSE4.2 is unavailable");
      return Level::kSse42;
    }
    SDB_CHECK_MSG(false, "SDB_CRC32C must be 'scalar' or 'sse42'");
  }
  return DetectBest();
}

Level g_level = InitialLevel();

}  // namespace

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse42";
  }
  return "unknown";
}

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse42:
      return CompiledSse42() && CpuHasSse42();
  }
  return false;
}

Level ActiveLevel() { return g_level; }

void ForceLevel(Level level) {
  SDB_CHECK_MSG(LevelAvailable(level), "requested CRC32C tier unavailable");
  g_level = level;
}

uint32_t ChecksumScalar(std::span<const std::byte> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data) {
    crc = kTable[(crc ^ static_cast<uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Checksum(std::span<const std::byte> data) {
  if (g_level == Level::kSse42) {
    return detail::ChecksumSse42(data.data(), data.size());
  }
  return ChecksumScalar(data);
}

}  // namespace sdb::storage::crc32c
