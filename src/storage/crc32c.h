#ifndef SPATIALBUFFER_STORAGE_CRC32C_H_
#define SPATIALBUFFER_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace sdb::storage::crc32c {

/// Implementation tiers, mirroring geom/kernels: runtime cpuid probe picks
/// the best available one, SDB_CRC32C=scalar|sse42 overrides at startup, and
/// ForceLevel supports A/B benchmarking. Every tier produces the identical
/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) value.
enum class Level : uint8_t {
  kScalar = 0,
  kSse42 = 1,
};

std::string_view LevelName(Level level);

/// True if this build + CPU can execute the tier.
bool LevelAvailable(Level level);

Level ActiveLevel();

/// Pins the dispatcher to one tier (must be available). Not thread-safe;
/// call before spawning readers.
void ForceLevel(Level level);

/// CRC-32C of `data` via the active tier.
uint32_t Checksum(std::span<const std::byte> data);

/// Reference implementation (table-driven); always available. The hardware
/// tier must match it bit-for-bit on every input.
uint32_t ChecksumScalar(std::span<const std::byte> data);

}  // namespace sdb::storage::crc32c

#endif  // SPATIALBUFFER_STORAGE_CRC32C_H_
