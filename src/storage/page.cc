#include "storage/page.h"

namespace sdb::storage {

std::string_view PageTypeName(PageType type) {
  switch (type) {
    case PageType::kFree:
      return "free";
    case PageType::kDirectory:
      return "directory";
    case PageType::kData:
      return "data";
    case PageType::kObject:
      return "object";
    case PageType::kMeta:
      return "meta";
  }
  return "unknown";
}

}  // namespace sdb::storage
