#include "zbtree/zcurve.h"

#include <algorithm>
#include <cmath>

namespace sdb::zbtree {

namespace {

constexpr uint64_t kGrid = 1ull << kZBits;

/// Spreads the low kZBits bits of v to the even bit positions.
uint64_t SpreadBits(uint64_t v) {
  // Classic bit-twiddling expansion for up to 32 input bits.
  v &= 0xffffffffull;
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Inverse of SpreadBits.
uint64_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffull;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffull;
  v = (v | (v >> 16)) & 0x00000000ffffffffull;
  return v;
}

uint64_t GridCoord(double value) {
  const double scaled = value * static_cast<double>(kGrid);
  const int64_t cell = static_cast<int64_t>(std::floor(scaled));
  return static_cast<uint64_t>(
      std::clamp<int64_t>(cell, 0, static_cast<int64_t>(kGrid) - 1));
}

struct Quadrant {
  uint64_t x = 0, y = 0;  // grid coordinates of the lower-left corner
  int level = kZBits;     // side length = 2^level cells
  ZValue prefix = 0;      // z-value of the first cell in the quadrant
};

geom::Rect QuadrantRect(const Quadrant& q) {
  const double cell = 1.0 / static_cast<double>(kGrid);
  const double side = cell * static_cast<double>(1ull << q.level);
  const double x0 = cell * static_cast<double>(q.x);
  const double y0 = cell * static_cast<double>(q.y);
  return geom::Rect(x0, y0, x0 + side, y0 + side);
}

ZRange QuadrantRange(const Quadrant& q) {
  const ZValue span = q.level >= 32 ? ~0ull : (1ull << (2 * q.level)) - 1;
  return ZRange{q.prefix, q.prefix + span};
}

}  // namespace

ZValue EncodeZ(const geom::Point& p) {
  return SpreadBits(GridCoord(p.x)) | (SpreadBits(GridCoord(p.y)) << 1);
}

geom::Point DecodeZ(ZValue z) {
  const double cell = 1.0 / static_cast<double>(kGrid);
  const double x = static_cast<double>(CompactBits(z)) * cell;
  const double y = static_cast<double>(CompactBits(z >> 1)) * cell;
  return geom::Point{x + cell / 2, y + cell / 2};
}

geom::Rect CellOf(ZValue z) {
  const double cell = 1.0 / static_cast<double>(kGrid);
  const double x = static_cast<double>(CompactBits(z)) * cell;
  const double y = static_cast<double>(CompactBits(z >> 1)) * cell;
  return geom::Rect(x, y, x + cell, y + cell);
}

std::vector<ZRange> DecomposeWindow(const geom::Rect& window,
                                    size_t max_ranges) {
  std::vector<ZRange> ranges;
  if (window.IsEmpty()) return ranges;
  max_ranges = std::max<size_t>(max_ranges, 1);

  // Breadth-first refinement with a budget: each round splits the largest
  // partially-overlapping quadrants; when the budget would be exceeded the
  // remaining partials are emitted as over-approximations.
  std::vector<Quadrant> partial{{0, 0, kZBits, 0}};
  // A quadrant fully inside the window contributes one exact range.
  std::vector<ZRange> exact;

  while (!partial.empty() &&
         exact.size() + 4 * partial.size() <= 4 * max_ranges) {
    std::vector<Quadrant> next;
    bool refined_any = false;
    for (const Quadrant& q : partial) {
      const geom::Rect rect = QuadrantRect(q);
      if (!rect.Intersects(window)) continue;
      if (window.Contains(rect) || q.level == 0) {
        exact.push_back(QuadrantRange(q));
        continue;
      }
      if (exact.size() + next.size() + 4 >= 2 * max_ranges) {
        // Budget pressure: keep as-is.
        next.push_back(q);
        continue;
      }
      refined_any = true;
      const int child_level = q.level - 1;
      const uint64_t half = 1ull << child_level;
      const ZValue child_span = 1ull << (2 * child_level);
      for (int i = 0; i < 4; ++i) {
        Quadrant child;
        child.level = child_level;
        child.x = q.x + (i & 1 ? half : 0);
        child.y = q.y + (i & 2 ? half : 0);
        // Z-order within a quadrant: the (y,x) bit pair selects the child,
        // which equals i under this iteration order.
        child.prefix = q.prefix + static_cast<ZValue>(i) * child_span;
        next.push_back(child);
      }
    }
    partial = std::move(next);
    if (!refined_any) break;
  }
  // Remaining partials: over-approximate.
  for (const Quadrant& q : partial) {
    if (QuadrantRect(q).Intersects(window)) {
      exact.push_back(QuadrantRange(q));
    }
  }

  // Sort and merge adjacent/overlapping intervals.
  std::sort(exact.begin(), exact.end(),
            [](const ZRange& a, const ZRange& b) { return a.lo < b.lo; });
  for (const ZRange& r : exact) {
    if (!ranges.empty() && r.lo <= ranges.back().hi + 1) {
      ranges.back().hi = std::max(ranges.back().hi, r.hi);
    } else {
      ranges.push_back(r);
    }
  }
  return ranges;
}

}  // namespace sdb::zbtree
