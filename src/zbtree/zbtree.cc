#include "zbtree/zbtree.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "geom/entry_aggregates.h"
#include "storage/page.h"

namespace sdb::zbtree {

namespace {

using core::AccessContext;
using core::BufferManager;
using core::PageHandle;
using geom::Point;
using geom::Rect;
using storage::PageHeaderView;
using storage::PageId;

/// On-page leaf record: z-value, object id and the exact coordinates (so
/// window refinement needs no second lookup). 32 bytes.
struct LeafRecord {
  ZValue z;
  uint64_t id;
  double x, y;
};
static_assert(sizeof(LeafRecord) == 32);

/// On-page inner record: separator key (composite z-value + id, so that
/// duplicate z-values split cleanly across leaves), child page and the
/// child's MBR (carrying the MBR keeps the spatial criteria O(1) per page).
struct InnerRecord {
  ZValue sep;
  uint64_t sep_id;
  uint32_t child;
  uint32_t pad;
  double xmin, ymin, xmax, ymax;
};
static_assert(sizeof(InnerRecord) == 56);

/// Composite record key: records are ordered by (z, id), which makes every
/// key unique and duplicate positions unambiguous.
struct Key {
  ZValue z;
  uint64_t id;

  friend bool operator<(const Key& a, const Key& b) {
    return a.z != b.z ? a.z < b.z : a.id < b.id;
  }
  friend bool operator<=(const Key& a, const Key& b) { return !(b < a); }
};

Key KeyOf(const LeafRecord& r) { return Key{r.z, r.id}; }

constexpr size_t kHeader = PageHeaderView::kHeaderSize;

struct MetaRecord {
  PageId root;
  PageId first_leaf;
  uint32_t height;
  uint32_t pad;
  uint64_t size;
  uint32_t max_leaf_entries;
  uint32_t max_inner_entries;
};

template <typename Record>
std::vector<Record> LoadRecords(std::span<const std::byte> page) {
  const uint16_t n = storage::ConstPageHeaderView(page.data()).entry_count();
  std::vector<Record> records(n);
  if (n != 0) {  // empty vector's data() may be null; memcpy forbids that
    std::memcpy(records.data(), page.data() + kHeader, n * sizeof(Record));
  }
  return records;
}

/// Writes leaf records and refreshes the spatial aggregates (cell rects).
void WriteLeaf(PageHandle& page, const std::vector<LeafRecord>& records) {
  PageHeaderView header = page.header();
  header.set_type(storage::PageType::kData);
  header.set_level(0);
  header.set_entry_count(static_cast<uint16_t>(records.size()));
  if (!records.empty()) {
    std::memcpy(page.bytes().data() + kHeader, records.data(),
                records.size() * sizeof(LeafRecord));
  }
  std::vector<Rect> cells;
  cells.reserve(records.size());
  for (const LeafRecord& r : records) cells.push_back(CellOf(r.z));
  header.set_aggregates(geom::ComputeEntryAggregates(cells));
  page.MarkDirty();
}

/// Writes inner records and refreshes the aggregates (child MBRs).
void WriteInner(PageHandle& page, uint8_t level,
                const std::vector<InnerRecord>& records) {
  PageHeaderView header = page.header();
  header.set_type(storage::PageType::kDirectory);
  header.set_level(level);
  header.set_entry_count(static_cast<uint16_t>(records.size()));
  if (!records.empty()) {
    std::memcpy(page.bytes().data() + kHeader, records.data(),
                records.size() * sizeof(InnerRecord));
  }
  std::vector<Rect> rects;
  rects.reserve(records.size());
  for (const InnerRecord& r : records) {
    rects.emplace_back(r.xmin, r.ymin, r.xmax, r.ymax);
  }
  header.set_aggregates(geom::ComputeEntryAggregates(rects));
  page.MarkDirty();
}

/// Index of the child covering `key`: the last entry whose separator is
/// <= key (entry 0 covers everything below its separator as well).
size_t ChildIndex(const std::vector<InnerRecord>& records, const Key& key) {
  size_t index = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    if (Key{records[i].sep, records[i].sep_id} <= key) {
      index = i;
    } else {
      break;
    }
  }
  return index;
}

InnerRecord MakeInnerRecord(const Key& sep, PageId child, const Rect& mbr) {
  InnerRecord r;
  r.sep = sep.z;
  r.sep_id = sep.id;
  r.child = child;
  r.pad = 0;
  r.xmin = mbr.xmin;
  r.ymin = mbr.ymin;
  r.xmax = mbr.xmax;
  r.ymax = mbr.ymax;
  return r;
}

}  // namespace

ZBTree::ZBTree(storage::DiskManager* disk, core::BufferManager* buffer,
               const ZBTreeConfig& config)
    : disk_(disk), buffer_(buffer), config_(config) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  SDB_CHECK(&buffer->disk() == disk);
  const size_t page_size = disk->page_size();
  SDB_CHECK_MSG(kHeader + config.max_leaf_entries * sizeof(LeafRecord) <=
                    page_size,
                "leaf fanout too large for the page size");
  SDB_CHECK_MSG(kHeader + config.max_inner_entries * sizeof(InnerRecord) <=
                    page_size,
                "inner fanout too large for the page size");
  SDB_CHECK(config.max_leaf_entries >= 4 && config.max_inner_entries >= 4);

  const AccessContext ctx;
  PageHandle meta = buffer_->NewOrDie(ctx);
  meta_page_ = meta.page_id();
  meta.header().set_type(storage::PageType::kMeta);
  meta.MarkDirty();
  meta.Release();

  PageHandle root = buffer_->NewOrDie(ctx);
  root_ = root.page_id();
  first_leaf_ = root_;
  WriteLeaf(root, {});
  root.header().set_aux(storage::kInvalidPageId);  // no next leaf
  root.Release();
  height_ = 1;
  size_ = 0;
  PersistMeta();
}

ZBTree::ZBTree(storage::DiskManager* disk, core::BufferManager* buffer,
               const ZBTreeConfig& config, storage::PageId meta_page)
    : disk_(disk), buffer_(buffer), config_(config), meta_page_(meta_page) {}

ZBTree ZBTree::Open(storage::DiskManager* disk, core::BufferManager* buffer,
                    storage::PageId meta_page) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  MetaRecord record;
  std::span<const std::byte> page = disk->PeekPage(meta_page);
  const std::span<const std::byte> resident = buffer->Peek(meta_page);
  if (!resident.empty()) page = resident;
  SDB_CHECK_MSG(storage::ConstPageHeaderView(page.data()).type() ==
                    storage::PageType::kMeta,
                "not a z-tree meta page");
  std::memcpy(&record, page.data() + kHeader, sizeof(record));
  ZBTreeConfig config;
  config.max_leaf_entries = record.max_leaf_entries;
  config.max_inner_entries = record.max_inner_entries;
  ZBTree tree(disk, buffer, config, meta_page);
  tree.root_ = record.root;
  tree.first_leaf_ = record.first_leaf;
  tree.height_ = record.height;
  tree.size_ = record.size;
  return tree;
}

void ZBTree::PersistMeta() {
  MetaRecord record;
  record.root = root_;
  record.first_leaf = first_leaf_;
  record.height = height_;
  record.pad = 0;
  record.size = size_;
  record.max_leaf_entries = config_.max_leaf_entries;
  record.max_inner_entries = config_.max_inner_entries;
  const AccessContext ctx;
  PageHandle meta = buffer_->FetchOrDie(meta_page_, ctx);
  std::memcpy(meta.bytes().data() + kHeader, &record, sizeof(record));
  meta.MarkDirty();
}

void ZBTree::Insert(const Point& point, uint64_t id,
                    const AccessContext& ctx) {
  const ZValue z = EncodeZ(point);
  const Key key{z, id};
  const Rect cell = CellOf(z);

  // Descend, remembering (page, entry index) per inner level.
  std::vector<std::pair<PageId, size_t>> path;
  PageId current = root_;
  for (uint32_t level = height_; level > 1; --level) {
    PageHandle page = buffer_->FetchOrDie(current, ctx);
    const std::vector<InnerRecord> records =
        LoadRecords<InnerRecord>(page.bytes());
    const size_t index = ChildIndex(records, key);
    path.emplace_back(current, index);
    current = records[index].child;
  }

  // Insert into the leaf, keeping (z, id) order.
  PageHandle leaf_page = buffer_->FetchOrDie(current, ctx);
  std::vector<LeafRecord> records = LoadRecords<LeafRecord>(
      leaf_page.bytes());
  LeafRecord record{z, id, point.x, point.y};
  const auto pos = std::upper_bound(
      records.begin(), records.end(), key,
      [](const Key& value, const LeafRecord& r) { return value < KeyOf(r); });
  records.insert(pos, record);
  ++size_;

  // Pending split entry for the parent level (if any).
  std::optional<InnerRecord> pending;

  if (records.size() <= config_.max_leaf_entries) {
    WriteLeaf(leaf_page, records);
    leaf_page.Release();
  } else {
    // Leaf split at the midpoint.
    const size_t mid = records.size() / 2;
    std::vector<LeafRecord> right(records.begin() + mid, records.end());
    records.resize(mid);

    const uint32_t old_next = leaf_page.header().aux();
    PageHandle fresh = buffer_->NewOrDie(ctx);
    const PageId right_id = fresh.page_id();
    WriteLeaf(fresh, right);
    fresh.header().set_aux(old_next);
    const Rect right_region = fresh.header().mbr();
    fresh.Release();

    WriteLeaf(leaf_page, records);
    leaf_page.header().set_aux(right_id);
    const Rect left_region = leaf_page.header().mbr();
    leaf_page.Release();

    pending = MakeInnerRecord(KeyOf(right.front()), right_id, right_region);

    if (path.empty()) {
      // The leaf was the root: grow.
      PageHandle new_root = buffer_->NewOrDie(ctx);
      std::vector<InnerRecord> root_records{
          MakeInnerRecord(Key{0, 0}, current, left_region), *pending};
      WriteInner(new_root, 1, root_records);
      root_ = new_root.page_id();
      height_ = 2;
      return;
    }
  }

  // Walk the path upward: extend MBRs by the new cell, apply a pending
  // split entry, split inner nodes as needed.
  for (size_t depth = path.size(); depth > 0; --depth) {
    const auto [page_id, child_index] = path[depth - 1];
    PageHandle page = buffer_->FetchOrDie(page_id, ctx);
    std::vector<InnerRecord> records =
        LoadRecords<InnerRecord>(page.bytes());

    // Extend the taken child's MBR by the inserted cell.
    InnerRecord& taken = records[child_index];
    Rect mbr(taken.xmin, taken.ymin, taken.xmax, taken.ymax);
    mbr.Extend(cell);
    taken.xmin = mbr.xmin;
    taken.ymin = mbr.ymin;
    taken.xmax = mbr.xmax;
    taken.ymax = mbr.ymax;

    if (pending) {
      records.insert(records.begin() + child_index + 1, *pending);
      pending.reset();
    }

    if (records.size() <= config_.max_inner_entries) {
      WriteInner(page, page.header().level(), records);
      page.Release();
      continue;
    }

    // Inner split.
    const uint8_t level = page.header().level();
    const size_t mid = records.size() / 2;
    std::vector<InnerRecord> right(records.begin() + mid, records.end());
    records.resize(mid);

    PageHandle fresh = buffer_->NewOrDie(ctx);
    const PageId right_id = fresh.page_id();
    WriteInner(fresh, level, right);
    const Rect right_region = fresh.header().mbr();
    fresh.Release();

    WriteInner(page, level, records);
    const Rect left_region = page.header().mbr();
    page.Release();

    pending = MakeInnerRecord(Key{right.front().sep, right.front().sep_id},
                              right_id, right_region);

    if (depth == 1) {
      // Split reached the root.
      PageHandle new_root = buffer_->NewOrDie(ctx);
      std::vector<InnerRecord> root_records{
          MakeInnerRecord(Key{0, 0}, page_id, left_region), *pending};
      WriteInner(new_root, static_cast<uint8_t>(level + 1), root_records);
      root_ = new_root.page_id();
      ++height_;
      return;
    }
  }
  SDB_CHECK_MSG(!pending.has_value(), "unapplied split entry");
}

bool ZBTree::Delete(const Point& point, uint64_t id,
                    const AccessContext& ctx) {
  const ZValue z = EncodeZ(point);
  const Key key{z, id};
  PageId current = root_;
  for (uint32_t level = height_; level > 1; --level) {
    PageHandle page = buffer_->FetchOrDie(current, ctx);
    const std::vector<InnerRecord> records =
        LoadRecords<InnerRecord>(page.bytes());
    current = records[ChildIndex(records, key)].child;
  }
  // The composite key is unique, so the record lives in exactly this leaf.
  PageHandle page = buffer_->FetchOrDie(current, ctx);
  std::vector<LeafRecord> records = LoadRecords<LeafRecord>(page.bytes());
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].z != z || records[i].id != id) continue;
    if (records[i].x != point.x || records[i].y != point.y) continue;
    records.erase(records.begin() + i);
    // Lazy deletion: no merging; MBRs keep over-approximating.
    WriteLeaf(page, records);
    --size_;
    return true;
  }
  return false;
}

void ZBTree::RangeScan(
    ZValue lo, ZValue hi, const AccessContext& ctx,
    const std::function<void(ZValue, const ZPoint&)>& visit) const {
  if (lo > hi) return;
  // Descend to the leaf that may contain lo.
  PageId current = root_;
  for (uint32_t level = height_; level > 1; --level) {
    PageHandle page = buffer_->FetchOrDie(current, ctx);
    const std::vector<InnerRecord> records =
        LoadRecords<InnerRecord>(page.bytes());
    current = records[ChildIndex(records, Key{lo, 0})].child;
  }
  while (current != storage::kInvalidPageId) {
    PageHandle page = buffer_->FetchOrDie(current, ctx);
    const std::vector<LeafRecord> records =
        LoadRecords<LeafRecord>(page.bytes());
    const auto begin = std::lower_bound(
        records.begin(), records.end(), lo,
        [](const LeafRecord& r, ZValue value) { return r.z < value; });
    for (auto it = begin; it != records.end(); ++it) {
      if (it->z > hi) return;
      ZPoint zp;
      zp.point = Point{it->x, it->y};
      zp.id = it->id;
      visit(it->z, zp);
    }
    if (!records.empty() && records.back().z > hi) return;
    current = page.header().aux();
  }
}

void ZBTree::WindowQueryVisit(
    const Rect& window, const AccessContext& ctx,
    const std::function<void(const ZPoint&)>& visit) const {
  for (const ZRange& range : DecomposeWindow(window)) {
    RangeScan(range.lo, range.hi, ctx,
              [&window, &visit](ZValue, const ZPoint& zp) {
                if (window.Contains(zp.point)) visit(zp);
              });
  }
}

std::vector<ZPoint> ZBTree::WindowQuery(const Rect& window,
                                        const AccessContext& ctx) const {
  std::vector<ZPoint> out;
  WindowQueryVisit(window, ctx,
                   [&out](const ZPoint& zp) { out.push_back(zp); });
  return out;
}

// ---------------------------------------------------------------------------
// Offline inspection
// ---------------------------------------------------------------------------

namespace {

std::span<const std::byte> PeekImage(const storage::DiskManager& disk,
                                     const BufferManager* buffer, PageId id) {
  if (buffer != nullptr) {
    const std::span<const std::byte> resident = buffer->Peek(id);
    if (!resident.empty()) return resident;
  }
  return disk.PeekPage(id);
}

struct ZWalk {
  uint64_t points = 0;
  uint32_t leaves = 0;
  uint32_t inners = 0;
  PageId leftmost_leaf = storage::kInvalidPageId;
  std::string error;
};

/// Validates the subtree under `id`, which must cover keys in [lo, hi).
void WalkZ(const storage::DiskManager& disk, const BufferManager* buffer,
           PageId id, uint32_t level, Key lo, bool has_hi, Key hi,
           ZWalk* out) {
  if (!out->error.empty()) return;
  const std::span<const std::byte> raw = PeekImage(disk, buffer, id);
  const storage::ConstPageHeaderView header(raw.data());
  auto fail = [&](const std::string& what) {
    out->error = "z-page " + std::to_string(id) + ": " + what;
  };

  if (level == 1) {
    if (header.type() != storage::PageType::kData) {
      fail("leaf with non-data type");
      return;
    }
    const std::vector<LeafRecord> records = LoadRecords<LeafRecord>(raw);
    Key previous = lo;
    Rect region;
    for (const LeafRecord& r : records) {
      if (KeyOf(r) < previous) {
        fail("records out of order");
        return;
      }
      if (KeyOf(r) < lo || (has_hi && hi <= KeyOf(r))) {
        fail("record outside separator bounds");
        return;
      }
      previous = KeyOf(r);
      region.Extend(CellOf(r.z));
    }
    if (!records.empty() && !header.mbr().Contains(region)) {
      fail("leaf MBR does not cover its records");
      return;
    }
    ++out->leaves;
    out->points += records.size();
    if (out->leftmost_leaf == storage::kInvalidPageId) {
      out->leftmost_leaf = id;
    }
    return;
  }

  if (header.type() != storage::PageType::kDirectory) {
    fail("inner with non-directory type");
    return;
  }
  const std::vector<InnerRecord> records = LoadRecords<InnerRecord>(raw);
  if (records.empty()) {
    fail("empty inner node");
    return;
  }
  ++out->inners;
  for (size_t i = 0; i < records.size(); ++i) {
    const Key sep{records[i].sep, records[i].sep_id};
    if (i > 0 && sep <= Key{records[i - 1].sep, records[i - 1].sep_id}) {
      fail("separators out of order");
      return;
    }
    const Key child_lo = i == 0 ? lo : sep;
    const bool child_has_hi = has_hi || i + 1 < records.size();
    const Key child_hi =
        i + 1 < records.size()
            ? Key{records[i + 1].sep, records[i + 1].sep_id}
            : hi;
    // The stored child MBR must cover the child's actual region.
    const storage::ConstPageHeaderView child_header(
        PeekImage(disk, buffer, records[i].child).data());
    const Rect stored(records[i].xmin, records[i].ymin, records[i].xmax,
                      records[i].ymax);
    if (child_header.entry_count() > 0 &&
        !stored.Contains(child_header.mbr())) {
      fail("entry MBR does not cover child " +
           std::to_string(records[i].child));
      return;
    }
    WalkZ(disk, buffer, records[i].child, level - 1, child_lo, child_has_hi,
          child_hi, out);
    if (!out->error.empty()) return;
  }
}

}  // namespace

std::string ZBTree::Validate() const {
  ZWalk walk;
  WalkZ(*disk_, buffer_, root_, height_, Key{0, 0}, false, Key{0, 0},
        &walk);
  if (!walk.error.empty()) return walk.error;
  if (walk.points != size_) {
    return "point count mismatch: tree holds " +
           std::to_string(walk.points) + ", size() reports " +
           std::to_string(size_);
  }
  if (walk.leftmost_leaf != first_leaf_) {
    return "first_leaf does not match the leftmost leaf";
  }
  // The leaf chain must enumerate exactly the walk's points in z order.
  uint64_t chained = 0;
  Key previous{0, 0};
  PageId current = first_leaf_;
  while (current != storage::kInvalidPageId) {
    const std::span<const std::byte> raw =
        PeekImage(*disk_, buffer_, current);
    for (const LeafRecord& r : LoadRecords<LeafRecord>(raw)) {
      if (KeyOf(r) < previous) return "leaf chain out of order";
      previous = KeyOf(r);
      ++chained;
    }
    current = storage::ConstPageHeaderView(raw.data()).aux();
  }
  if (chained != size_) return "leaf chain misses records";
  return "";
}

ZTreeStats ZBTree::ComputeStats() const {
  ZWalk walk;
  WalkZ(*disk_, buffer_, root_, height_, Key{0, 0}, false, Key{0, 0},
        &walk);
  ZTreeStats stats;
  stats.point_count = walk.points;
  stats.height = height_;
  stats.leaf_pages = walk.leaves;
  stats.inner_pages = walk.inners;
  return stats;
}

}  // namespace sdb::zbtree
