#ifndef SPATIALBUFFER_ZBTREE_ZCURVE_H_
#define SPATIALBUFFER_ZBTREE_ZCURVE_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace sdb::zbtree {

/// Z-order (Morton) value of a point on a 2^kZBits x 2^kZBits grid over the
/// unit square. Bit-interleaved x/y, x in the even (low) positions.
using ZValue = uint64_t;

/// Grid resolution per dimension.
inline constexpr int kZBits = 20;

/// Encodes a point of the unit square (values outside are clamped).
ZValue EncodeZ(const geom::Point& p);

/// Center of the grid cell addressed by a z-value.
geom::Point DecodeZ(ZValue z);

/// Rectangle of the single grid cell addressed by a z-value.
geom::Rect CellOf(ZValue z);

/// Inclusive z-value interval.
struct ZRange {
  ZValue lo = 0;
  ZValue hi = 0;

  friend bool operator==(const ZRange&, const ZRange&) = default;
};

/// Decomposes a query window into at most `max_ranges` z-intervals that
/// together cover every grid cell intersecting the window (standard
/// quadrant decomposition [Orenstein & Manola, PROBE]). When the budget is
/// too small to describe the window exactly, partially overlapping
/// quadrants are over-approximated by their full interval — callers filter
/// exact coordinates anyway. Adjacent intervals are merged.
std::vector<ZRange> DecomposeWindow(const geom::Rect& window,
                                    size_t max_ranges = 64);

}  // namespace sdb::zbtree

#endif  // SPATIALBUFFER_ZBTREE_ZCURVE_H_
