#ifndef SPATIALBUFFER_ZBTREE_ZBTREE_H_
#define SPATIALBUFFER_ZBTREE_ZBTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/access_context.h"
#include "core/buffer_manager.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "storage/disk_manager.h"
#include "zbtree/zcurve.h"

namespace sdb::zbtree {

/// Structural parameters of the z-order B+-tree.
struct ZBTreeConfig {
  uint32_t max_leaf_entries = 126;  ///< 32-byte records in a 4 KiB page
  uint32_t max_inner_entries = 72;  ///< 56-byte records in a 4 KiB page
};

/// Statistics of an offline walk.
struct ZTreeStats {
  uint64_t point_count = 0;
  uint32_t height = 0;
  uint32_t leaf_pages = 0;
  uint32_t inner_pages = 0;

  uint32_t total_pages() const { return leaf_pages + inner_pages; }
};

/// One stored point with its id.
struct ZPoint {
  geom::Point point;
  uint64_t id = 0;
};

/// A paged B+-tree over z-order (Morton) values — the second spatial access
/// method of this library, after the paper's remark that its replacement
/// criteria apply equally to "z-values stored in a B-tree" [Orenstein &
/// Manola]. Point features are keyed by their z-value; window queries
/// decompose the window into z-intervals and range-scan the linked leaf
/// level, filtering on the exact coordinates stored with each record.
///
/// Every page carries the standard spatial-metadata header: a leaf's MBR is
/// the bounding box of its points' grid cells, an inner page's entries
/// store their child's MBR. The spatial replacement policies therefore work
/// on this tree exactly as on the R*-tree.
///
/// Deletion is lazy, as in several production B-trees: records are removed,
/// pages are never merged, and page MBRs are not shrunk (they stay valid
/// over-approximations).
class ZBTree {
 public:
  ZBTree(storage::DiskManager* disk, core::BufferManager* buffer,
         const ZBTreeConfig& config = ZBTreeConfig{});

  static ZBTree Open(storage::DiskManager* disk, core::BufferManager* buffer,
                     storage::PageId meta_page);

  ZBTree(ZBTree&&) = default;
  ZBTree& operator=(ZBTree&&) = delete;
  ZBTree(const ZBTree&) = delete;
  ZBTree& operator=(const ZBTree&) = delete;

  void set_buffer(core::BufferManager* buffer) { buffer_ = buffer; }
  core::BufferManager* buffer() const { return buffer_; }

  /// Inserts a point feature.
  void Insert(const geom::Point& point, uint64_t id,
              const core::AccessContext& ctx);

  /// Removes one record with this exact position and id; false if absent.
  bool Delete(const geom::Point& point, uint64_t id,
              const core::AccessContext& ctx);

  /// Visits every stored point inside the window.
  void WindowQueryVisit(const geom::Rect& window,
                        const core::AccessContext& ctx,
                        const std::function<void(const ZPoint&)>& visit) const;

  std::vector<ZPoint> WindowQuery(const geom::Rect& window,
                                  const core::AccessContext& ctx) const;

  /// Visits all records with z-value in [lo, hi].
  void RangeScan(ZValue lo, ZValue hi, const core::AccessContext& ctx,
                 const std::function<void(ZValue, const ZPoint&)>& visit)
      const;

  void PersistMeta();

  /// Offline structural check (key order, leaf chain, separator bounds,
  /// MBR containment). Empty string when valid.
  std::string Validate() const;

  ZTreeStats ComputeStats() const;

  storage::PageId meta_page() const { return meta_page_; }
  storage::PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  uint64_t size() const { return size_; }
  const ZBTreeConfig& config() const { return config_; }

 private:
  ZBTree(storage::DiskManager* disk, core::BufferManager* buffer,
         const ZBTreeConfig& config, storage::PageId meta_page);

  storage::DiskManager* disk_;
  core::BufferManager* buffer_;
  ZBTreeConfig config_;
  storage::PageId meta_page_ = storage::kInvalidPageId;
  storage::PageId root_ = storage::kInvalidPageId;
  storage::PageId first_leaf_ = storage::kInvalidPageId;
  uint32_t height_ = 1;
  uint64_t size_ = 0;
};

}  // namespace sdb::zbtree

#endif  // SPATIALBUFFER_ZBTREE_ZBTREE_H_
