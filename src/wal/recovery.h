#ifndef SPATIALBUFFER_WAL_RECOVERY_H_
#define SPATIALBUFFER_WAL_RECOVERY_H_

#include <cstdint>

#include "core/access_context.h"
#include "core/status.h"
#include "obs/collector.h"
#include "storage/disk_manager.h"
#include "wal/log_record.h"

namespace sdb::wal {

/// Knobs of one Recover call.
struct RecoveryOptions {
  /// Worker threads for the replay pass. 0 (the default) reads
  /// SDB_REDO_WORKERS from the environment, falling back to 1. With 1 the
  /// replay runs serially on the calling thread, byte-for-byte the legacy
  /// path. More than one partitions committed images by page-id hash across
  /// a thread pool — byte-identical to serial because each page's images
  /// all land on one worker, in log order — and requires the data device to
  /// answer SupportsConcurrentWrites(); otherwise the replay stays serial.
  size_t redo_workers = 0;
};

/// Outcome of one redo pass.
struct RecoveryResult {
  /// Records in the valid log prefix (images + commits + checkpoints).
  uint64_t scanned_records = 0;
  /// Page images replayed onto the data device.
  uint64_t replayed_pages = 0;
  /// Byte length of the valid log prefix; everything past it failed
  /// validation (torn tail, zeros, stale bytes) and was discarded.
  Lsn valid_prefix = kNullLsn;
  /// LSN of the last commit record (kNullLsn when the log commits nothing).
  Lsn last_commit_lsn = kNullLsn;
  /// LSN of the last checkpoint record (kNullLsn when none).
  Lsn last_checkpoint_lsn = kNullLsn;
  /// Data-device page count stamped into the last commit (or checkpoint,
  /// whichever is later). Pages at or beyond this id were never committed;
  /// byte-exactness checks must ignore them.
  uint64_t committed_page_count = 0;
  /// True when invalid bytes followed the valid prefix within the allocated
  /// log pages — the signature of a torn tail, as opposed to a clean end.
  bool torn_tail = false;
  /// Offset of the first valid record. Nonzero only after segment
  /// truncation zeroed a log prefix: the scan skips the zeros plus the
  /// bounded garbage window a record straddling the truncation boundary
  /// can leave behind.
  Lsn start_lsn = kNullLsn;
  /// Redo horizon the replay used: committed images at or past this offset
  /// were replayed. The last checkpoint's carried redo_lsn (fuzzy) or its
  /// record end (strict); start_lsn when the log holds no checkpoint.
  Lsn redo_lsn = kNullLsn;
  /// Threads that ran the replay pass (1 = serial on the caller).
  size_t redo_workers = 1;
};

/// ARIES-style redo-only recovery: scans the log's valid prefix, then
/// replays every committed physical page image that follows the last
/// checkpoint onto the data device, in log order. Uncommitted images — any
/// image after the last valid commit record — are discarded, which is
/// exactly safe because the write-ahead rule guarantees the data device
/// never saw them. Idempotent: replaying an already-applied image rewrites
/// identical bytes (and re-stamps the same CRC sidecar).
///
/// `log` is read page-by-page (counting toward its stats); pages missing
/// from `data` are allocated before being replayed.
core::StatusOr<RecoveryResult> Recover(storage::PageDevice& log,
                                       storage::PageDevice& data,
                                       const core::AccessContext& ctx = {},
                                       obs::Collector* collector = nullptr,
                                       const RecoveryOptions& options = {});

}  // namespace sdb::wal

#endif  // SPATIALBUFFER_WAL_RECOVERY_H_
