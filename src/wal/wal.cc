#include "wal/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/macros.h"
#include "obs/trace.h"

namespace sdb::wal {

std::string_view RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kPageImage:
      return "page_image";
    case RecordType::kCommit:
      return "commit";
    case RecordType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

WalManager::WalManager(storage::PageDevice* device, WalOptions options,
                       obs::Collector* collector)
    : device_(device),
      options_(options),
      page_size_(device->page_size()),
      collector_(collector) {
  SDB_CHECK_MSG(options_.segment_pages > 0, "segment must hold pages");
  SDB_CHECK_MSG(options_.commit_queue_capacity > 0,
                "commit queue must admit at least one commit");
  partial_.reserve(page_size_);
  if (collector_ != nullptr) {
    appends_metric_ = collector_->metrics().GetCounter("wal.appends");
    commits_metric_ = collector_->metrics().GetCounter("wal.commits");
    fsyncs_metric_ = collector_->metrics().GetCounter("wal.fsyncs");
    steals_metric_ = collector_->metrics().GetCounter("wal.forced_steals");
    static constexpr double kGroupBounds[] = {1, 2, 4, 8, 16, 32, 64};
    group_size_metric_ =
        collector_->metrics().GetHistogram("wal.group_commit_size",
                                           kGroupBounds);
  }
  if (options_.group_commit) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

WalManager::~WalManager() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!tail_.empty() && sticky_error_.ok()) FlushLocked();
    stop_ = true;
  }
  writer_cv_.notify_all();
  durable_cv_.notify_all();
  space_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

Lsn WalManager::AppendLocked(RecordType type, uint64_t page,
                             std::span<const std::byte> payload) {
  const Lsn lsn = next_lsn_;
  const size_t encoded = AppendRecord(type, lsn, page, payload, &tail_);
  const uint64_t segment_before = lsn / (options_.segment_pages * page_size_);
  next_lsn_ += encoded;
  const uint64_t segment_after =
      (next_lsn_ - 1) / (options_.segment_pages * page_size_);
  stats_.segments_opened += segment_after - segment_before;
  ++stats_.appends;
  stats_.bytes_appended += encoded;
  if (appends_metric_ != nullptr) appends_metric_->Add();
  return lsn;
}

void WalManager::FlushLocked() {
  if (tail_.empty() || !sticky_error_.ok()) return;

  // Compose the dirty device pages: the already-durable head of the current
  // tail page, then everything appended since the last flush.
  const Lsn flush_begin = durable_lsn_ - partial_.size();
  SDB_CHECK(flush_begin % page_size_ == 0);
  std::vector<std::byte> block(partial_.size() + tail_.size());
  if (!partial_.empty()) {
    std::memcpy(block.data(), partial_.data(), partial_.size());
  }
  std::memcpy(block.data() + partial_.size(), tail_.data(), tail_.size());

  const size_t page_count = (block.size() + page_size_ - 1) / page_size_;
  const storage::PageId first_page =
      static_cast<storage::PageId>(flush_begin / page_size_);
  while (device_->page_count() < first_page + page_count) {
    device_->Allocate();
  }
  std::vector<std::byte> image(page_size_);
  for (size_t p = 0; p < page_count; ++p) {
    const size_t offset = p * page_size_;
    const size_t n = std::min(page_size_, block.size() - offset);
    std::memcpy(image.data(), block.data() + offset, n);
    std::memset(image.data() + n, 0, page_size_ - n);
    const core::Status status =
        device_->Write(static_cast<storage::PageId>(first_page + p), image);
    if (!status.ok()) {
      sticky_error_ = status;
      durable_cv_.notify_all();
      return;
    }
  }

  durable_lsn_ += tail_.size();
  tail_.clear();
  partial_.assign(block.end() - (block.size() % page_size_), block.end());

  ++stats_.fsyncs;
  if (fsyncs_metric_ != nullptr) fsyncs_metric_->Add();
  if (pending_commits_ > 0) {
    stats_.grouped_commits += pending_commits_;
    if (group_size_metric_ != nullptr) {
      group_size_metric_->Observe(static_cast<double>(pending_commits_));
    }
    pending_commits_ = 0;
    space_cv_.notify_all();
  }
  durable_cv_.notify_all();
}

void WalManager::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    writer_cv_.wait(lock, [this] {
      return stop_ || pending_commits_ > 0 || urgent_flush_;
    });
    if (stop_) return;
    if (options_.group_window_us > 0 && !urgent_flush_) {
      // Collection window: let stragglers join the batch. An urgent request
      // (EnsureDurable under eviction pressure) or shutdown cuts it short.
      writer_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.group_window_us),
                          [this] { return stop_ || urgent_flush_; });
      if (stop_) return;
    }
    FlushLocked();
    urgent_flush_ = false;
  }
}

core::StatusOr<Lsn> WalManager::CommitPages(
    std::span<const PageImageRef> images, uint64_t data_page_count,
    const core::AccessContext& ctx, bool forced_steal) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kWalAppend);
  span.set_payload(images.size());
  span.set_flag(forced_steal);

  std::unique_lock<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  if (options_.group_commit) {
    // Bounded commit queue: hold new groups back while the writer is behind.
    space_cv_.wait(lock, [this] {
      return pending_commits_ < options_.commit_queue_capacity || stop_ ||
             !sticky_error_.ok();
    });
    if (!sticky_error_.ok()) return sticky_error_;
    if (stop_) return core::Status::Unavailable("wal shutting down");
  }

  // The whole group — images plus its commit record — is appended under one
  // mutex hold, so groups never interleave and recovery may treat every
  // image that precedes a commit record as committed.
  for (const PageImageRef& ref : images) {
    SDB_CHECK_MSG(ref.bytes.size() == page_size_,
                  "page image must be exactly one page");
    AppendLocked(RecordType::kPageImage, ref.page, ref.bytes);
  }
  const Lsn commit_lsn = AppendLocked(RecordType::kCommit, data_page_count, {});
  const Lsn end = next_lsn_;
  ++stats_.commits;
  if (commits_metric_ != nullptr) commits_metric_->Add();
  if (forced_steal) {
    ++stats_.forced_steals;
    if (steals_metric_ != nullptr) steals_metric_->Add();
  }
  (void)commit_lsn;

  if (!options_.group_commit) {
    ++pending_commits_;
    FlushLocked();
    if (!sticky_error_.ok()) return sticky_error_;
    return end;
  }

  ++pending_commits_;
  writer_cv_.notify_one();
  durable_cv_.wait(lock, [this, end] {
    return durable_lsn_ >= end || !sticky_error_.ok() || stop_;
  });
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ < end) {
    return core::Status::Unavailable("wal shut down before commit flushed");
  }
  return end;
}

core::StatusOr<Lsn> WalManager::AppendCheckpoint(
    uint64_t data_page_count, const core::AccessContext& ctx) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kCheckpoint);
  std::unique_lock<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  AppendLocked(RecordType::kCheckpoint, data_page_count, {});
  const Lsn end = next_lsn_;
  ++stats_.checkpoints;
  FlushLocked();
  if (!sticky_error_.ok()) return sticky_error_;
  return end;
}

core::Status WalManager::EnsureDurable(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ >= lsn) return core::Status::Ok();
  if (!options_.group_commit) {
    FlushLocked();
    return sticky_error_;
  }
  urgent_flush_ = true;
  writer_cv_.notify_one();
  durable_cv_.wait(lock, [this, lsn] {
    return durable_lsn_ >= lsn || !sticky_error_.ok() || stop_;
  });
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ < lsn) {
    return core::Status::Unavailable("wal shut down before flush");
  }
  return core::Status::Ok();
}

Lsn WalManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn WalManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

WalStats WalManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdb::wal
