#include "wal/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"
#include "obs/trace.h"

namespace sdb::wal {

namespace {
/// splitmix64 finalizer, for the deterministic retry-backoff jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

std::string_view RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kPageImage:
      return "page_image";
    case RecordType::kCommit:
      return "commit";
    case RecordType::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

WalManager::WalManager(storage::PageDevice* device, WalOptions options,
                       obs::Collector* collector)
    : device_(device),
      options_(options),
      page_size_(device->page_size()),
      collector_(collector) {
  SDB_CHECK_MSG(options_.segment_pages > 0, "segment must hold pages");
  SDB_CHECK_MSG(options_.commit_queue_capacity > 0,
                "commit queue must admit at least one commit");
  partial_.reserve(page_size_);
  if (collector_ != nullptr) {
    appends_metric_ = collector_->metrics().GetCounter("wal.appends");
    commits_metric_ = collector_->metrics().GetCounter("wal.commits");
    fsyncs_metric_ = collector_->metrics().GetCounter("wal.fsyncs");
    steals_metric_ = collector_->metrics().GetCounter("wal.forced_steals");
    static constexpr double kGroupBounds[] = {1, 2, 4, 8, 16, 32, 64};
    group_size_metric_ =
        collector_->metrics().GetHistogram("wal.group_commit_size",
                                           kGroupBounds);
  }
  if (options_.group_commit) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

WalManager::~WalManager() { Shutdown(); }

void WalManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // idempotent: first caller did the work below
    stop_ = true;
  }
  writer_cv_.notify_all();
  durable_cv_.notify_all();
  space_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  // Final flush after the writer is gone: everything appended before the
  // shutdown reaches the device, so a clean close never loses records —
  // only the *acknowledgement* of commits caught mid-queue is withdrawn.
  Flush();
}

Lsn WalManager::AppendLocked(RecordType type, uint64_t page,
                             std::span<const std::byte> payload) {
  const Lsn lsn = next_lsn_;
  const size_t encoded = AppendRecord(type, lsn, page, payload, &tail_);
  const uint64_t segment_before = lsn / (options_.segment_pages * page_size_);
  next_lsn_ += encoded;
  const uint64_t segment_after =
      (next_lsn_ - 1) / (options_.segment_pages * page_size_);
  stats_.segments_opened += segment_after - segment_before;
  ++stats_.appends;
  stats_.bytes_appended += encoded;
  if (appends_metric_ != nullptr) appends_metric_->Add();
  return lsn;
}

void WalManager::Flush() {
  std::lock_guard<std::mutex> file_lock(file_mu_);

  // Claim the appended-but-unflushed bytes under the queue latch, then do
  // the device writes holding only the file latch: appenders and new
  // committers keep queueing while this block is on its way out. The
  // covered-commit count is snapshotted with the claim — a commit record is
  // in the claimed chunk iff its CommitPages call incremented
  // pending_commits_ in the same mu_ hold that appended it.
  std::vector<std::byte> chunk;
  Lsn flush_begin = 0;
  size_t covered = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tail_.empty() || !sticky_error_.ok()) return;
    chunk.swap(tail_);
    flush_begin = durable_lsn_ - partial_.size();
    covered = pending_commits_;
  }
  SDB_CHECK(flush_begin % page_size_ == 0);

  // Compose the dirty device pages: the already-durable head of the current
  // tail page, then everything claimed above.
  std::vector<std::byte> block(partial_.size() + chunk.size());
  if (!partial_.empty()) {
    std::memcpy(block.data(), partial_.data(), partial_.size());
  }
  std::memcpy(block.data() + partial_.size(), chunk.data(), chunk.size());

  const size_t page_count = (block.size() + page_size_ - 1) / page_size_;
  const storage::PageId first_page =
      static_cast<storage::PageId>(flush_begin / page_size_);

  // Whole-attempt retry loop. Each attempt rewrites EVERY page of the block
  // and then syncs: after a failed sync the device may have dropped any page
  // written since the last successful one (fsyncgate), so resuming from the
  // page that errored — or re-syncing without rewriting — could persist a
  // hole while claiming durability.
  core::Status status = core::Status::Ok();
  uint32_t retries = 0;
  for (uint32_t attempt = 0;; ++attempt) {
    status = WriteBlockAndSync(first_page, page_count, block);
    if (status.ok()) break;
    if (!status.retryable() || attempt >= options_.max_flush_retries) break;
    ++retries;
    BackoffBeforeRetry(attempt);
  }

  if (!status.ok()) {
    // Terminal: restore the claimed bytes to the front of the tail so the
    // invariant "tail_ holds exactly [durable_lsn_, next_lsn_)" survives —
    // the in-memory tail stays the single source of truth for what was
    // never acknowledged. Then go sticky and wake everyone: committers and
    // EnsureDurable callers return the error instead of hanging, and the
    // writer thread parks until shutdown.
    {
      std::lock_guard<std::mutex> lock(mu_);
      tail_.insert(tail_.begin(), chunk.begin(), chunk.end());
      sticky_error_ = status;
      stats_.write_retries += retries;
      if (retries > 0 && collector_ != nullptr) {
        if (write_retries_metric_ == nullptr) {
          write_retries_metric_ =
              collector_->metrics().GetCounter("wal.write_retries");
        }
        write_retries_metric_->Add(retries);
      }
    }
    durable_cv_.notify_all();
    space_cv_.notify_all();
    writer_cv_.notify_all();
    return;
  }

  partial_.assign(block.end() - (block.size() % page_size_), block.end());

  {
    std::lock_guard<std::mutex> lock(mu_);
    durable_lsn_ += chunk.size();
    ++stats_.fsyncs;
    if (fsyncs_metric_ != nullptr) fsyncs_metric_->Add();
    stats_.write_retries += retries;
    if (retries > 0 && collector_ != nullptr) {
      if (write_retries_metric_ == nullptr) {
        write_retries_metric_ =
            collector_->metrics().GetCounter("wal.write_retries");
      }
      write_retries_metric_->Add(retries);
    }
    if (covered > 0) {
      stats_.grouped_commits += covered;
      if (group_size_metric_ != nullptr) {
        group_size_metric_->Observe(static_cast<double>(covered));
      }
      pending_commits_ -= covered;
    }
  }
  if (covered > 0) space_cv_.notify_all();
  durable_cv_.notify_all();
}

core::Status WalManager::WriteBlockAndSync(storage::PageId first_page,
                                           size_t page_count,
                                           std::span<const std::byte> block) {
  while (device_->page_count() < first_page + page_count) {
    const core::StatusOr<storage::PageId> page = device_->Allocate();
    // A full log device is terminal, not retryable: surface it unchanged so
    // the flush goes sticky and the service degrades.
    if (!page.ok()) return page.status();
  }
  std::vector<std::byte> image(page_size_);
  for (size_t p = 0; p < page_count; ++p) {
    const size_t offset = p * page_size_;
    const size_t n = std::min(page_size_, block.size() - offset);
    std::memcpy(image.data(), block.data() + offset, n);
    std::memset(image.data() + n, 0, page_size_ - n);
    const core::Status status =
        device_->Write(static_cast<storage::PageId>(first_page + p), image);
    if (!status.ok()) return status;
  }
  // Durability is claimed only after the sync reports success; the caller
  // publishes durable_lsn_ strictly after this returns Ok.
  return device_->Sync();
}

void WalManager::BackoffBeforeRetry(uint32_t failures) const {
  if (options_.retry_backoff_us == 0) return;
  const uint64_t exp = std::min<uint32_t>(failures, 6);
  const uint64_t ceiling = static_cast<uint64_t>(options_.retry_backoff_us)
                           << exp;
  const uint64_t jitter =
      Mix64(options_.retry_backoff_seed ^ Mix64(failures + 1)) %
      (options_.retry_backoff_us / 2 + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(ceiling + jitter));
}

core::Status WalManager::TruncateBelow(Lsn lsn) {
  std::lock_guard<std::mutex> file_lock(file_mu_);
  Lsn durable = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sticky_error_.ok()) return sticky_error_;
    durable = durable_lsn_;
  }
  const uint64_t segment_bytes = options_.segment_pages * page_size_;
  const Lsn bound = std::min(lsn, durable);
  const Lsn target = bound - bound % segment_bytes;
  if (target <= truncated_lsn_) return core::Status::Ok();

  // Zero whole segments in ascending page order: a crash at any point
  // leaves zeros in [0, k) for some k and intact records past it — the
  // zero-prefix shape recovery's start discovery expects.
  std::vector<std::byte> zero(page_size_, std::byte{0});
  const auto first = static_cast<storage::PageId>(truncated_lsn_ / page_size_);
  const auto last = static_cast<storage::PageId>(target / page_size_);
  for (storage::PageId p = first; p < last; ++p) {
    // Transient zeroing failures retry with the flush backoff policy; only
    // a persistent failure turns sticky. (Losing a zeroing write in a crash
    // is harmless — recovery just replays records the checkpoint already
    // covered — but a device that cannot be written at all is the same
    // terminal condition a failed flush is.)
    core::Status status = core::Status::Ok();
    for (uint32_t attempt = 0;; ++attempt) {
      status = device_->Write(p, zero);
      if (status.ok()) break;
      if (!status.retryable() || attempt >= options_.max_flush_retries) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.write_retries;
      }
      BackoffBeforeRetry(attempt);
    }
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        sticky_error_ = status;
      }
      durable_cv_.notify_all();
      space_cv_.notify_all();
      writer_cv_.notify_all();
      return status;
    }
  }
  const uint64_t segments = (target - truncated_lsn_) / segment_bytes;
  truncated_lsn_ = target;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.segments_truncated += segments;
  return core::Status::Ok();
}

void WalManager::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    writer_cv_.wait(lock, [this] {
      // Once the log is sticky there is nothing useful to flush: park until
      // shutdown instead of hot-spinning on the undrainable commit queue.
      return stop_ ||
             ((pending_commits_ > 0 || urgent_flush_) && sticky_error_.ok());
    });
    if (stop_) return;
    if (options_.group_window_us > 0 && !urgent_flush_) {
      // Collection window: let stragglers join the batch. An urgent request
      // (EnsureDurable under eviction pressure) or shutdown cuts it short.
      writer_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.group_window_us),
                          [this] { return stop_ || urgent_flush_; });
      if (stop_) return;
    }
    // Reset the urgent flag before dropping the latch: the flush below
    // claims everything appended up to its swap, so any request raised
    // before this point is covered, and one raised later re-wakes the loop.
    urgent_flush_ = false;
    lock.unlock();
    Flush();
    lock.lock();
  }
}

core::StatusOr<Lsn> WalManager::CommitPages(
    std::span<const PageImageRef> images, uint64_t data_page_count,
    const core::AccessContext& ctx, bool forced_steal) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kWalAppend);
  span.set_payload(images.size());
  span.set_flag(forced_steal);

  std::unique_lock<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  if (options_.group_commit) {
    // Bounded commit queue: hold new groups back while the writer is behind.
    space_cv_.wait(lock, [this] {
      return pending_commits_ < options_.commit_queue_capacity || stop_ ||
             !sticky_error_.ok();
    });
    if (!sticky_error_.ok()) return sticky_error_;
    if (stop_) return core::Status::Unavailable("wal shutting down");
  }

  // The whole group — images plus its commit record — is appended under one
  // mutex hold, so groups never interleave and recovery may treat every
  // image that precedes a commit record as committed.
  for (const PageImageRef& ref : images) {
    SDB_CHECK_MSG(ref.bytes.size() == page_size_,
                  "page image must be exactly one page");
    AppendLocked(RecordType::kPageImage, ref.page, ref.bytes);
  }
  const Lsn commit_lsn = AppendLocked(RecordType::kCommit, data_page_count, {});
  const Lsn end = next_lsn_;
  ++stats_.commits;
  if (commits_metric_ != nullptr) commits_metric_->Add();
  if (forced_steal) {
    ++stats_.forced_steals;
    if (steals_metric_ != nullptr) steals_metric_->Add();
  }
  (void)commit_lsn;

  if (!options_.group_commit) {
    ++pending_commits_;
    lock.unlock();
    Flush();
    lock.lock();
    if (!sticky_error_.ok()) return sticky_error_;
    // Our record was in the tail when Flush was called, and every flush
    // claims the whole tail — so whichever flusher won the file latch
    // first, the prefix through `end` is durable by now unless the log
    // went sticky (checked above). Report, never abort: a short durable
    // horizon here is a failed commit, not a harness bug.
    if (durable_lsn_ < end) {
      return core::Status::Unavailable("wal flush fell short of commit");
    }
    return end;
  }

  ++pending_commits_;
  writer_cv_.notify_one();
  durable_cv_.wait(lock, [this, end] {
    return durable_lsn_ >= end || !sticky_error_.ok() || stop_;
  });
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ < end) {
    return core::Status::Unavailable("wal shut down before commit flushed");
  }
  return end;
}

core::StatusOr<Lsn> WalManager::AppendCheckpoint(
    uint64_t data_page_count, const core::AccessContext& ctx,
    std::optional<Lsn> redo_lsn) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kCheckpoint);
  span.set_payload(redo_lsn.value_or(kNullLsn));
  Lsn end = kNullLsn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sticky_error_.ok()) return sticky_error_;
    std::byte payload[kCheckpointRedoPayloadSize];
    std::span<const std::byte> body;
    if (redo_lsn.has_value()) {
      // Fuzzy checkpoint: carry the redo low-water mark instead of
      // asserting that the data device is clean.
      detail::PutU64(payload, *redo_lsn);
      body = {payload, sizeof(payload)};
    }
    AppendLocked(RecordType::kCheckpoint, data_page_count, body);
    end = next_lsn_;
    ++stats_.checkpoints;
  }
  // Flush on the checkpointing thread, holding only the file latch for the
  // device writes: group commits keep queueing and draining meanwhile.
  Flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ < end) {
    return core::Status::Unavailable("wal flush fell short of checkpoint");
  }
  return end;
}

core::Status WalManager::EnsureDurable(Lsn lsn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!sticky_error_.ok()) return sticky_error_;
    if (durable_lsn_ >= lsn) return core::Status::Ok();
    if (options_.group_commit && !stop_) {
      urgent_flush_ = true;
      writer_cv_.notify_one();
      durable_cv_.wait(lock, [this, lsn] {
        return durable_lsn_ >= lsn || !sticky_error_.ok() || stop_;
      });
      if (!sticky_error_.ok()) return sticky_error_;
      if (durable_lsn_ < lsn) {
        return core::Status::Unavailable("wal shut down before flush");
      }
      return core::Status::Ok();
    }
  }
  // Inline mode (or a stopped writer): flush on the calling thread.
  Flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (!sticky_error_.ok()) return sticky_error_;
  if (durable_lsn_ >= lsn) return core::Status::Ok();
  return core::Status::Unavailable("wal shut down before flush");
}

Lsn WalManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn WalManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Lsn WalManager::truncated_lsn() const {
  std::lock_guard<std::mutex> lock(file_mu_);
  return truncated_lsn_;
}

core::Status WalManager::sticky_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sticky_error_;
}

WalStats WalManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdb::wal
