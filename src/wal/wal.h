#ifndef SPATIALBUFFER_WAL_WAL_H_
#define SPATIALBUFFER_WAL_WAL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/access_context.h"
#include "core/status.h"
#include "obs/collector.h"
#include "storage/disk_manager.h"
#include "wal/log_record.h"

namespace sdb::wal {

/// Construction knobs of a WalManager.
struct WalOptions {
  /// Group commit: run a dedicated writer thread that batches commit fsyncs
  /// inside a collection window. Off (the default) appends and flushes
  /// inline on the committing thread — fully deterministic, one fsync per
  /// commit, which is what tests and single-threaded replays want.
  bool group_commit = false;
  /// Collection window of the writer thread: after the first commit of a
  /// batch arrives the writer waits this long for stragglers before it
  /// flushes. 0 flushes as soon as the writer wakes.
  uint32_t group_window_us = 100;
  /// Bounded commit queue: at most this many commits may be waiting on the
  /// writer before further committers block (backpressure).
  size_t commit_queue_capacity = 64;
  /// Pages per log segment. Segments only rotate accounting (the log lives
  /// on one PageDevice), but the boundary is observable: stats count every
  /// segment the tail crosses, matching a file-per-segment layout.
  size_t segment_pages = 1024;
  /// Retry budget for one flush: a retryable device failure (transient
  /// write, failed sync) re-runs the whole write+sync attempt up to this
  /// many extra times before the error turns sticky. Each attempt rewrites
  /// every page of the block — the fsyncgate rule: a failed sync may have
  /// dropped anything written since the last successful one.
  uint32_t max_flush_retries = 3;
  /// Backoff before the k-th flush retry: retry_backoff_us << min(k, 6)
  /// plus a small deterministic jitter drawn from retry_backoff_seed.
  /// 0 (the default) disables the sleep entirely — tests stay exact.
  uint32_t retry_backoff_us = 0;
  uint64_t retry_backoff_seed = 0;
};

/// Counters of one WalManager, all maintained under its mutex.
struct WalStats {
  uint64_t appends = 0;        ///< records appended (images + commits + ckpts)
  uint64_t commits = 0;        ///< commit records, including steals
  uint64_t forced_steals = 0;  ///< commits forced by eviction of unlogged dirty
  uint64_t checkpoints = 0;
  uint64_t fsyncs = 0;         ///< durable flush batches
  uint64_t grouped_commits = 0;  ///< commits covered by those fsyncs
  uint64_t bytes_appended = 0;
  uint64_t segments_opened = 0;
  uint64_t segments_truncated = 0;  ///< whole segments zeroed by TruncateBelow
  uint64_t write_retries = 0;  ///< flush attempts re-run after retryable faults
};

/// One page image queued for a commit group.
struct PageImageRef {
  storage::PageId page = storage::kInvalidPageId;
  std::span<const std::byte> bytes;
};

/// Append-only, segmented, redo-only write-ahead log over a PageDevice.
///
/// The log is a byte stream of checksummed records (log_record.h) stored in
/// page-size blocks on its own device — its *own*, never the data device, so
/// the fault layer can tear the log tail without touching data pages. An LSN
/// is a byte offset into that stream; durability is tracked as the stream
/// prefix that has reached the device.
///
/// Commit protocol: CommitPages appends the group's page images plus one
/// commit record while holding the log mutex, so groups are contiguous —
/// recovery may treat every image before a commit record as committed.
/// In group-commit mode the committer then blocks until the writer thread's
/// next batched flush covers its commit record; many committers share one
/// device flush ("fsync"), which is the throughput lever the bench measures.
///
/// Thread-safe, with two latches: the queue latch `mu_` covers the append
/// tail, LSN bookkeeping and the commit queue, while the file latch
/// `file_mu_` covers device writes (flushes and truncation). A flush claims
/// the tail under `mu_`, writes it out holding only `file_mu_`, then
/// re-acquires `mu_` to publish durability — so committers keep appending
/// (and the queue keeps draining) while a flush or checkpoint is writing
/// pages. Lock order is file_mu_ -> mu_; mu_ is never held across a device
/// write. The writer thread (group-commit mode only) is joined by
/// Shutdown()/the destructor, which then runs one final flush.
class WalManager {
 public:
  /// `device` must outlive the manager and must start empty (recovery
  /// re-opens a log by scanning, not by instantiating a WalManager on it).
  /// `collector`, when given, receives wal.* counters and the group-commit
  /// size histogram; it must not be shared with a concurrent mutator.
  explicit WalManager(storage::PageDevice* device,
                      WalOptions options = WalOptions{},
                      obs::Collector* collector = nullptr);
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Appends the images and a commit record as one contiguous group and
  /// makes the group durable (inline, or via the writer thread's next
  /// batched flush). `data_page_count` is stamped into the commit record so
  /// recovery can bound byte-exactness to committed pages. Returns the LSN
  /// just past the commit record — the caller's new durable horizon.
  core::StatusOr<Lsn> CommitPages(std::span<const PageImageRef> images,
                                  uint64_t data_page_count,
                                  const core::AccessContext& ctx,
                                  bool forced_steal = false);

  /// Appends a checkpoint record and makes it durable. Without a `redo_lsn`
  /// the record is *strict* (empty payload): the caller must have forced
  /// every committed dirty page to the data device first, and recovery
  /// redoes nothing before it. With one the checkpoint is *fuzzy*: the
  /// record carries that redo low-water mark (a value of 0 is legal and
  /// just means "replay everything"), dirty pages stay in the pool, and
  /// recovery replays committed images from `redo_lsn` on. Fuzzy
  /// checkpoints run concurrently with mutators and license
  /// TruncateBelow(redo_lsn) once durable.
  core::StatusOr<Lsn> AppendCheckpoint(uint64_t data_page_count,
                                       const core::AccessContext& ctx,
                                       std::optional<Lsn> redo_lsn = {});

  /// Zeros every whole log segment strictly below `lsn` (clamped to the
  /// durable prefix), reclaiming the space a durable fuzzy checkpoint made
  /// dead. Segments are zeroed in ascending page order, so a crash at any
  /// point leaves the log with a zero prefix — which recovery's start
  /// discovery skips — never a gap that could resurrect stale records. The
  /// caller must only pass a redo_lsn whose checkpoint record is durable.
  core::Status TruncateBelow(Lsn lsn);

  /// Stops accepting group commits, joins the writer thread and runs one
  /// final flush, so everything appended before the call is durable when it
  /// returns. Committers blocked in CommitPages observe the shutdown and
  /// return Unavailable (their records may still become durable — an
  /// unacknowledged commit is replayed by recovery, which is the usual
  /// weakening). Idempotent; the destructor calls it.
  void Shutdown();

  /// Blocks until the stream prefix [0, lsn) is on the device. The
  /// write-ahead rule: eviction write-back of a logged page calls this with
  /// the page's LSN before touching the data device.
  core::Status EnsureDurable(Lsn lsn);

  /// Next LSN to be assigned (current end of the appended stream).
  Lsn next_lsn() const;
  /// End of the durable prefix.
  Lsn durable_lsn() const;
  /// End of the zeroed (truncated) prefix; always a segment boundary.
  Lsn truncated_lsn() const;
  /// The sticky terminal error, Ok while the log is healthy. Once set (a
  /// device failure that survived the retry budget) the log stops flushing
  /// and every commit/durability call returns this error — the service's
  /// trigger for degraded read-only mode. The in-memory tail still holds
  /// every unflushed byte (the failed flush restores its claim), so nothing
  /// acknowledged was lost: it was never acknowledged.
  core::Status sticky_error() const;

  WalStats stats() const;
  const WalOptions& options() const { return options_; }
  storage::PageDevice& device() { return *device_; }

 private:
  struct AppendedGroup {
    Lsn end = kNullLsn;
    core::Status status = core::Status::Ok();
  };

  /// Appends one record to the tail. Caller holds mu_.
  Lsn AppendLocked(RecordType type, uint64_t page,
                   std::span<const std::byte> payload);
  /// Claims the tail (under mu_), writes it out in page-size blocks (under
  /// file_mu_ only) and publishes the new durable_lsn_. Caller must hold
  /// NEITHER latch. Retries retryable device failures up to
  /// max_flush_retries; a terminal failure restores the claimed bytes to
  /// the tail, sets sticky_error_ and wakes every waiter.
  void Flush();
  /// One flush attempt: allocate missing log pages, write the whole block,
  /// then Sync. Caller holds file_mu_. Never publishes durability — a
  /// non-OK return means nothing in the block may be assumed on the device.
  core::Status WriteBlockAndSync(storage::PageId first_page, size_t page_count,
                                 std::span<const std::byte> block);
  /// Deterministic sleep before the `failures`-th retry; no-op when
  /// retry_backoff_us is 0.
  void BackoffBeforeRetry(uint32_t failures) const;
  /// Group-commit writer thread body.
  void WriterLoop();

  storage::PageDevice* device_;
  const WalOptions options_;
  const size_t page_size_;

  /// File latch: serializes device writes (flush blocks, truncation) and
  /// guards partial_/truncated_lsn_. Acquired before mu_, never inside it.
  mutable std::mutex file_mu_;
  std::vector<std::byte> partial_;  ///< durable bytes of the tail page
  Lsn truncated_lsn_ = 0;           ///< zeroed prefix end (segment-aligned)

  /// Queue latch: append tail, LSN bookkeeping, commit queue, stats.
  mutable std::mutex mu_;
  std::condition_variable writer_cv_;   ///< wakes the writer thread
  std::condition_variable durable_cv_;  ///< wakes committers / EnsureDurable
  std::condition_variable space_cv_;    ///< wakes committers on queue space

  std::vector<std::byte> tail_;  ///< appended, not yet claimed by a flush
  Lsn next_lsn_ = 0;
  Lsn durable_lsn_ = 0;
  size_t pending_commits_ = 0;  ///< commits waiting on the writer thread
  bool urgent_flush_ = false;   ///< EnsureDurable wants the window skipped
  bool stop_ = false;
  core::Status sticky_error_ = core::Status::Ok();

  WalStats stats_;

  obs::Collector* collector_ = nullptr;
  obs::Counter* appends_metric_ = nullptr;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* fsyncs_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Histogram* group_size_metric_ = nullptr;
  /// Registered lazily on the first retry so the exported metric set of a
  /// healthy run is unchanged. Guarded by mu_.
  obs::Counter* write_retries_metric_ = nullptr;

  std::thread writer_;
};

}  // namespace sdb::wal

#endif  // SPATIALBUFFER_WAL_WAL_H_
