#include "wal/recovery.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"

namespace sdb::wal {

namespace {

/// splitmix64 finalizer — the same mix the buffer service uses to shard
/// page ids, so the redo partition spreads adjacent page ids instead of
/// striping hot ranges onto one worker.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t ResolveRedoWorkers(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SDB_REDO_WORKERS");
      env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

/// Locates the first valid record of a log whose head segments were
/// truncated (zeroed). Returns 0 when the stream starts with a record or
/// with arbitrary garbage: only a zero *prefix* is evidence of truncation,
/// so a torn record in the middle of an untruncated log can never
/// resurrect the records behind it.
Lsn FindStartLsn(std::span<const std::byte> stream) {
  if (ParseRecordAt(stream, 0).has_value()) return 0;
  if (stream.empty() || stream[0] != std::byte{0}) return 0;
  size_t zeros = 0;
  while (zeros < stream.size() && stream[zeros] == std::byte{0}) ++zeros;
  if (zeros == stream.size()) return 0;
  // A record straddling the truncation boundary leaves at most one
  // record's worth of dead bytes past the zeros; scan that bounded window
  // for a self-validating record (magic + LSN-equals-offset + CRC).
  const size_t limit = std::min(
      stream.size(), zeros + RecordHeader::kSize + RecordHeader::kMaxPayload);
  for (size_t at = zeros; at < limit; ++at) {
    if (ParseRecordAt(stream, at).has_value()) return at;
  }
  return 0;
}

/// One committed page image selected for replay; `bytes` aliases the
/// scanned stream.
struct ReplayImage {
  storage::PageId page = storage::kInvalidPageId;
  std::span<const std::byte> bytes;
};

}  // namespace

core::StatusOr<RecoveryResult> Recover(storage::PageDevice& log,
                                       storage::PageDevice& data,
                                       const core::AccessContext& ctx,
                                       obs::Collector* collector,
                                       const RecoveryOptions& options) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kRecovery);

  const size_t page_size = log.page_size();
  const size_t log_pages = log.page_count();
  std::vector<std::byte> stream(log_pages * page_size);
  for (size_t p = 0; p < log_pages; ++p) {
    const core::Status status =
        log.Read(static_cast<storage::PageId>(p),
                 {stream.data() + p * page_size, page_size});
    if (!status.ok()) return status;
  }

  // Pass 1: walk the valid prefix. The scan stops at the first record that
  // fails validation — magic, type, length bound, LSN-equals-offset, or
  // CRC — which is how a torn flush manifests. Records are only *located*
  // here; whether an image replays is decided by the redo horizon below.
  RecoveryResult result;
  result.start_lsn = FindStartLsn(stream);
  Lsn last_commit_start = kNullLsn;
  bool any_commit = false;
  Lsn redo_horizon = result.start_lsn;
  Lsn offset = result.start_lsn;
  while (true) {
    const std::optional<ParsedRecord> record = ParseRecordAt(stream, offset);
    if (!record.has_value()) break;
    ++result.scanned_records;
    switch (record->header.type) {
      case RecordType::kPageImage:
        break;
      case RecordType::kCommit:
        last_commit_start = offset;
        any_commit = true;
        result.last_commit_lsn = offset;
        result.committed_page_count = record->header.page;
        break;
      case RecordType::kCheckpoint: {
        result.last_checkpoint_lsn = offset;
        result.committed_page_count = record->header.page;
        // A fuzzy checkpoint carries its redo low-water mark (min rec_lsn
        // over dirty frames at scan time); a strict one (empty payload)
        // asserts everything committed before it is on the data device.
        const std::optional<Lsn> fuzzy = CheckpointRedoLsn(*record);
        redo_horizon = fuzzy.has_value() ? *fuzzy : record->end;
        break;
      }
    }
    offset = record->end;
  }
  result.valid_prefix = offset;
  result.redo_lsn = redo_horizon;
  // A clean end leaves only zero padding behind; anything else in the
  // allocated log pages means a record was torn mid-flush.
  for (size_t i = offset; i < stream.size(); ++i) {
    if (stream[i] != std::byte{0}) {
      result.torn_tail = true;
      break;
    }
  }

  // Pass 2: redo. Replay every committed image in [redo horizon, last
  // commit) in log order. Images before the horizon are already on the data
  // device (strict checkpoint) or will be re-covered by one that is not
  // (fuzzy horizon = min rec_lsn); images after the last commit record are
  // uncommitted and must not reach it.
  if (any_commit) {
    obs::Counter* replayed_metric =
        collector == nullptr
            ? nullptr
            : collector->metrics().GetCounter("wal.recovery_replayed");
    std::vector<ReplayImage> images;
    offset = result.start_lsn;
    while (offset < result.valid_prefix) {
      const std::optional<ParsedRecord> record = ParseRecordAt(stream, offset);
      SDB_CHECK(record.has_value());  // pass 1 validated this prefix
      if (record->header.type == RecordType::kPageImage &&
          offset >= redo_horizon && offset < last_commit_start) {
        images.push_back(
            {static_cast<storage::PageId>(record->header.page),
             record->payload});
      }
      offset = record->end;
    }

    size_t workers = 1;
    if (!images.empty() && data.SupportsConcurrentWrites()) {
      workers = std::min(ResolveRedoWorkers(options.redo_workers),
                         images.size());
    }
    result.redo_workers = std::max<size_t>(workers, 1);

    if (workers <= 1) {
      // Serial replay, page allocation interleaved with the writes —
      // byte-for-byte (and stats-for-stats) the single-threaded path.
      for (const ReplayImage& image : images) {
        while (data.page_count() <= image.page) {
          const core::StatusOr<storage::PageId> allocated = data.Allocate();
          if (!allocated.ok()) return allocated.status();
        }
        const core::Status status = data.Write(image.page, image.bytes);
        if (!status.ok()) return status;
        ++result.replayed_pages;
        if (replayed_metric != nullptr) replayed_metric->Add();
      }
    } else {
      // Parallel replay: allocate serially up front, then partition images
      // by page-id hash so each page's images land on exactly one worker,
      // in log order — which makes the result byte-identical to serial
      // regardless of worker count or scheduling.
      storage::PageId max_page = 0;
      for (const ReplayImage& image : images) {
        max_page = std::max(max_page, image.page);
      }
      while (data.page_count() <= max_page) {
        const core::StatusOr<storage::PageId> allocated = data.Allocate();
        if (!allocated.ok()) return allocated.status();
      }
      std::vector<core::Status> statuses(workers, core::Status::Ok());
      std::vector<uint64_t> replayed(workers, 0);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (const ReplayImage& image : images) {
            if (Mix64(image.page) % workers != w) continue;
            const core::Status status =
                data.WriteConcurrent(image.page, image.bytes);
            if (!status.ok()) {
              statuses[w] = status;
              return;
            }
            ++replayed[w];
          }
        });
      }
      for (std::thread& worker : pool) worker.join();
      for (size_t w = 0; w < workers; ++w) {
        if (!statuses[w].ok()) return statuses[w];
        result.replayed_pages += replayed[w];
      }
      if (replayed_metric != nullptr) {
        replayed_metric->Add(result.replayed_pages);
      }
    }
  }

  span.set_payload(result.replayed_pages);
  span.set_flag(result.torn_tail);
  return result;
}

}  // namespace sdb::wal
