#include "wal/recovery.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"

namespace sdb::wal {

core::StatusOr<RecoveryResult> Recover(storage::PageDevice& log,
                                       storage::PageDevice& data,
                                       const core::AccessContext& ctx,
                                       obs::Collector* collector) {
  obs::ScopedSpan span(ctx.span, obs::SpanKind::kRecovery);

  const size_t page_size = log.page_size();
  const size_t log_pages = log.page_count();
  std::vector<std::byte> stream(log_pages * page_size);
  for (size_t p = 0; p < log_pages; ++p) {
    const core::Status status =
        log.Read(static_cast<storage::PageId>(p),
                 {stream.data() + p * page_size, page_size});
    if (!status.ok()) return status;
  }

  // Pass 1: walk the valid prefix. The scan stops at the first record that
  // fails validation — magic, type, length bound, LSN-equals-offset, or
  // CRC — which is how a torn flush manifests. Records are only *located*
  // here; whether an image replays is decided by the commit horizon below.
  RecoveryResult result;
  Lsn last_commit_start = kNullLsn;
  bool any_commit = false;
  bool any_checkpoint = false;
  Lsn offset = 0;
  while (true) {
    const std::optional<ParsedRecord> record = ParseRecordAt(stream, offset);
    if (!record.has_value()) break;
    ++result.scanned_records;
    switch (record->header.type) {
      case RecordType::kPageImage:
        break;
      case RecordType::kCommit:
        last_commit_start = offset;
        any_commit = true;
        result.last_commit_lsn = offset;
        result.committed_page_count = record->header.page;
        break;
      case RecordType::kCheckpoint:
        result.last_checkpoint_lsn = offset;
        result.committed_page_count = record->header.page;
        any_checkpoint = true;
        break;
    }
    offset = record->end;
  }
  result.valid_prefix = offset;
  // A clean end leaves only zero padding behind; anything else in the
  // allocated log pages means a record was torn mid-flush.
  for (size_t i = offset; i < stream.size(); ++i) {
    if (stream[i] != std::byte{0}) {
      result.torn_tail = true;
      break;
    }
  }

  // Pass 2: redo. Replay every image in (last checkpoint, last commit) in
  // log order. Images before the checkpoint are already on the data device
  // (the checkpoint forced them); images after the last commit record are
  // uncommitted and must not reach it.
  if (any_commit) {
    obs::Counter* replayed_metric =
        collector == nullptr
            ? nullptr
            : collector->metrics().GetCounter("wal.recovery_replayed");
    offset = 0;
    while (offset < result.valid_prefix) {
      const std::optional<ParsedRecord> record = ParseRecordAt(stream, offset);
      SDB_CHECK(record.has_value());  // pass 1 validated this prefix
      if (record->header.type == RecordType::kPageImage &&
          (!any_checkpoint || offset > result.last_checkpoint_lsn) &&
          offset < last_commit_start) {
        const auto page = static_cast<storage::PageId>(record->header.page);
        while (data.page_count() <= page) data.Allocate();
        const core::Status status = data.Write(page, record->payload);
        if (!status.ok()) return status;
        ++result.replayed_pages;
        if (replayed_metric != nullptr) replayed_metric->Add();
      }
      offset = record->end;
    }
  }

  span.set_payload(result.replayed_pages);
  span.set_flag(result.torn_tail);
  return result;
}

}  // namespace sdb::wal
