#ifndef SPATIALBUFFER_WAL_LOG_RECORD_H_
#define SPATIALBUFFER_WAL_LOG_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "storage/crc32c.h"
#include "storage/page.h"

namespace sdb::wal {

/// Log sequence number: the byte offset of a record's first header byte in
/// the logical (segment-spanning) log stream. Monotone by construction, and
/// self-checking — recovery rejects any record whose stored LSN disagrees
/// with the offset it was scanned at, which catches stale bytes left from a
/// recycled tail page.
using Lsn = uint64_t;

inline constexpr Lsn kNullLsn = 0;

/// Record types of the redo-only log. There is no undo: recovery replays
/// committed physical page images and discards everything after the last
/// valid commit, so these three kinds are the whole vocabulary.
enum class RecordType : uint8_t {
  /// Full physical after-image of one page; payload is page_size bytes.
  kPageImage = 1,
  /// Makes every record appended before it durable-and-committed. The
  /// `page` header field carries the data device's page count at commit so
  /// recovery can bound its byte-exactness check to committed pages.
  kCommit = 2,
  /// All committed images up to here are on the data device; redo starts
  /// after the last one of these. `page` carries the device page count.
  kCheckpoint = 3,
};

std::string_view RecordTypeName(RecordType type);

/// Fixed 32-byte header preceding every record payload.
///
/// wire layout (little-endian):
///   [0]   u32  magic
///   [4]   u8   type
///   [5]   u8x3 zero padding
///   [8]   u32  payload length
///   [12]  u32  CRC-32C over (header with crc field zeroed) + payload
///   [16]  u64  lsn (offset of this header in the log stream)
///   [24]  u64  page (page id for images; device page count for
///              commit/checkpoint)
struct RecordHeader {
  static constexpr uint32_t kMagic = 0x57414C52u;  // "WALR"
  static constexpr size_t kSize = 32;
  /// Defensive bound on payload length during recovery scans: no record
  /// payload is larger than a page, but a torn header could claim anything.
  static constexpr uint32_t kMaxPayload = 1u << 24;

  uint32_t magic = kMagic;
  RecordType type = RecordType::kPageImage;
  uint32_t length = 0;
  uint32_t crc = 0;
  Lsn lsn = kNullLsn;
  uint64_t page = 0;
};

namespace detail {

inline void PutU32(std::byte* at, uint32_t v) { std::memcpy(at, &v, 4); }
inline void PutU64(std::byte* at, uint64_t v) { std::memcpy(at, &v, 8); }
inline uint32_t GetU32(const std::byte* at) {
  uint32_t v;
  std::memcpy(&v, at, 4);
  return v;
}
inline uint64_t GetU64(const std::byte* at) {
  uint64_t v;
  std::memcpy(&v, at, 8);
  return v;
}

}  // namespace detail

/// Serializes the header (crc field as given) into `out[0..kSize)`.
inline void EncodeHeader(const RecordHeader& header, std::byte* out) {
  std::memset(out, 0, RecordHeader::kSize);
  detail::PutU32(out + 0, header.magic);
  out[4] = static_cast<std::byte>(header.type);
  detail::PutU32(out + 8, header.length);
  detail::PutU32(out + 12, header.crc);
  detail::PutU64(out + 16, header.lsn);
  detail::PutU64(out + 24, header.page);
}

/// Appends one whole record (header + payload) to `out`, computing the CRC
/// over the zero-crc header and the payload. Returns the record's total
/// encoded size.
inline size_t AppendRecord(RecordType type, Lsn lsn, uint64_t page,
                           std::span<const std::byte> payload,
                           std::vector<std::byte>* out) {
  RecordHeader header;
  header.type = type;
  header.length = static_cast<uint32_t>(payload.size());
  header.lsn = lsn;
  header.page = page;

  const size_t start = out->size();
  out->resize(start + RecordHeader::kSize + payload.size());
  std::byte* base = out->data() + start;
  EncodeHeader(header, base);  // crc field still zero
  if (!payload.empty()) {
    std::memcpy(base + RecordHeader::kSize, payload.data(), payload.size());
  }
  const uint32_t crc = storage::crc32c::Checksum(
      {base, RecordHeader::kSize + payload.size()});
  detail::PutU32(base + 12, crc);
  return RecordHeader::kSize + payload.size();
}

/// One record located in a log stream by a recovery scan.
struct ParsedRecord {
  RecordHeader header;
  /// Payload bytes, aliasing the scanned stream.
  std::span<const std::byte> payload;
  /// Offset just past the record — the next record's LSN.
  Lsn end = kNullLsn;
};

/// Validates and parses the record starting at `offset` in `stream`.
/// Returns nullopt if the bytes are not a whole, checksummed record whose
/// stored LSN equals `offset` — the recovery scan treats that as the end of
/// the valid prefix (a torn tail, trailing zeros, or stale bytes).
inline std::optional<ParsedRecord> ParseRecordAt(
    std::span<const std::byte> stream, Lsn offset) {
  if (offset + RecordHeader::kSize > stream.size()) return std::nullopt;
  const std::byte* base = stream.data() + offset;

  ParsedRecord record;
  record.header.magic = detail::GetU32(base + 0);
  if (record.header.magic != RecordHeader::kMagic) return std::nullopt;
  const uint8_t raw_type = static_cast<uint8_t>(base[4]);
  if (raw_type < static_cast<uint8_t>(RecordType::kPageImage) ||
      raw_type > static_cast<uint8_t>(RecordType::kCheckpoint)) {
    return std::nullopt;
  }
  record.header.type = static_cast<RecordType>(raw_type);
  record.header.length = detail::GetU32(base + 8);
  record.header.crc = detail::GetU32(base + 12);
  record.header.lsn = detail::GetU64(base + 16);
  record.header.page = detail::GetU64(base + 24);

  if (record.header.length > RecordHeader::kMaxPayload) return std::nullopt;
  if (record.header.lsn != offset) return std::nullopt;
  const size_t total = RecordHeader::kSize + record.header.length;
  if (offset + total > stream.size()) return std::nullopt;

  // CRC covers the header with its crc field zeroed, plus the payload.
  std::byte scratch[RecordHeader::kSize];
  std::memcpy(scratch, base, RecordHeader::kSize);
  detail::PutU32(scratch + 12, 0);
  uint32_t crc = storage::crc32c::Checksum({scratch, RecordHeader::kSize});
  if (record.header.length > 0) {
    // Continue the CRC over the payload by checksumming the concatenation;
    // crc32c::Checksum has no streaming entry point, so build it in one
    // buffer only when the payload is present.
    std::vector<std::byte> whole(total);
    std::memcpy(whole.data(), scratch, RecordHeader::kSize);
    std::memcpy(whole.data() + RecordHeader::kSize, base + RecordHeader::kSize,
                record.header.length);
    crc = storage::crc32c::Checksum(whole);
  }
  if (crc != record.header.crc) return std::nullopt;

  record.payload = {base + RecordHeader::kSize, record.header.length};
  record.end = offset + total;
  return record;
}

/// Payload size of a fuzzy checkpoint record: one little-endian u64 redo
/// low-water mark (the min rec_lsn across dirty frames when the checkpoint
/// scanned them). A strict checkpoint has an empty payload.
inline constexpr size_t kCheckpointRedoPayloadSize = 8;

/// Redo low-water mark carried by a fuzzy checkpoint record, or nullopt for
/// a strict checkpoint (empty payload), whose redo horizon is the record's
/// own end — every committed image before it is already on the data device.
inline std::optional<Lsn> CheckpointRedoLsn(const ParsedRecord& record) {
  if (record.header.type != RecordType::kCheckpoint) return std::nullopt;
  if (record.payload.size() < kCheckpointRedoPayloadSize) return std::nullopt;
  return detail::GetU64(record.payload.data());
}

}  // namespace sdb::wal

#endif  // SPATIALBUFFER_WAL_LOG_RECORD_H_
