#include "rtree/node_view.h"

#include <cstring>

#include "common/macros.h"
#include "geom/entry_aggregates.h"

namespace sdb::rtree {

namespace {

/// On-page POD image of one entry.
struct EntryRecord {
  double xmin, ymin, xmax, ymax;
  uint64_t id;
  uint32_t obj_page;
  uint16_t obj_slot;
  uint16_t pad;
};
static_assert(sizeof(EntryRecord) == NodeView::kEntrySize);

EntryRecord ToRecord(const Entry& e) {
  return EntryRecord{e.rect.xmin, e.rect.ymin, e.rect.xmax, e.rect.ymax,
                     e.id,        e.ref.page,  e.ref.slot,  0};
}

Entry FromRecord(const EntryRecord& r) {
  Entry e;
  e.rect = geom::Rect(r.xmin, r.ymin, r.xmax, r.ymax);
  e.id = r.id;
  e.ref.page = r.obj_page;
  e.ref.slot = r.obj_slot;
  return e;
}

}  // namespace

void NodeView::Init(uint8_t level) {
  std::memset(page_.data(), 0, page_.size());
  storage::PageHeaderView h = header();
  h.set_type(level == 0 ? storage::PageType::kData
                        : storage::PageType::kDirectory);
  h.set_level(level);
  h.set_entry_count(0);
  h.set_aggregates(geom::EntryAggregates{});
}

Entry NodeView::GetEntry(uint16_t i) const {
  SDB_DCHECK(i < count());
  EntryRecord r;
  std::memcpy(&r, EntryPtr(i), sizeof(r));
  return FromRecord(r);
}

void NodeView::SetEntry(uint16_t i, const Entry& e) {
  SDB_DCHECK(i < count());
  const EntryRecord r = ToRecord(e);
  std::memcpy(EntryPtr(i), &r, sizeof(r));
}

void NodeView::Append(const Entry& e) {
  const uint16_t i = count();
  SDB_CHECK_MSG(i < Capacity(page_.size()), "node page overflow");
  header().set_entry_count(i + 1);
  SetEntry(i, e);
}

std::vector<Entry> NodeView::LoadEntries() const {
  const uint16_t n = count();
  std::vector<Entry> entries;
  entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) entries.push_back(GetEntry(i));
  return entries;
}

void NodeView::WriteEntries(std::span<const Entry> entries) {
  SDB_CHECK_MSG(entries.size() <= Capacity(page_.size()),
                "node page overflow");
  header().set_entry_count(static_cast<uint16_t>(entries.size()));
  for (uint16_t i = 0; i < entries.size(); ++i) SetEntry(i, entries[i]);
  RefreshAggregates();
}

uint16_t NodeView::GatherCoords(geom::kernels::SoaBuffer* coords) const {
  const uint16_t n = count();
  coords->Reserve(n);
  double* xmin = coords->xmin();
  double* ymin = coords->ymin();
  double* xmax = coords->xmax();
  double* ymax = coords->ymax();
  const std::byte* p = page_.data() + storage::PageHeaderView::kHeaderSize;
  for (uint16_t i = 0; i < n; ++i, p += kEntrySize) {
    // The record's first four doubles are xmin, ymin, xmax, ymax.
    double c[4];
    std::memcpy(c, p, sizeof(c));
    xmin[i] = c[0];
    ymin[i] = c[1];
    xmax[i] = c[2];
    ymax[i] = c[3];
  }
  return n;
}

size_t NodeView::ScanEntries(const geom::Rect& query,
                             geom::kernels::SoaBuffer* coords,
                             std::vector<uint8_t>* mask) const {
  const uint16_t n = GatherCoords(coords);
  mask->resize(n);
  if (n == 0) return 0;
  return geom::kernels::IntersectMask(query, coords->xmin(), coords->ymin(),
                                      coords->xmax(), coords->ymax(), n,
                                      mask->data());
}

void NodeView::RefreshAggregates() {
  thread_local geom::kernels::SoaBuffer scratch;
  const uint16_t n = GatherCoords(&scratch);
  header().set_aggregates(geom::ComputeEntryAggregatesSoA(
      scratch.xmin(), scratch.ymin(), scratch.xmax(), scratch.ymax(), n));
}

std::byte* NodeView::EntryPtr(uint16_t i) {
  return page_.data() + storage::PageHeaderView::kHeaderSize +
         static_cast<size_t>(i) * kEntrySize;
}

const std::byte* NodeView::EntryPtr(uint16_t i) const {
  return page_.data() + storage::PageHeaderView::kHeaderSize +
         static_cast<size_t>(i) * kEntrySize;
}

}  // namespace sdb::rtree
