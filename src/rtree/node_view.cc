#include "rtree/node_view.h"

#include <cstring>

#include "common/macros.h"
#include "geom/entry_aggregates.h"

namespace sdb::rtree {

namespace {

/// On-page POD image of one entry.
struct EntryRecord {
  double xmin, ymin, xmax, ymax;
  uint64_t id;
  uint32_t obj_page;
  uint16_t obj_slot;
  uint16_t pad;
};
static_assert(sizeof(EntryRecord) == NodeView::kEntrySize);

EntryRecord ToRecord(const Entry& e) {
  return EntryRecord{e.rect.xmin, e.rect.ymin, e.rect.xmax, e.rect.ymax,
                     e.id,        e.ref.page,  e.ref.slot,  0};
}

Entry FromRecord(const EntryRecord& r) {
  Entry e;
  e.rect = geom::Rect(r.xmin, r.ymin, r.xmax, r.ymax);
  e.id = r.id;
  e.ref.page = r.obj_page;
  e.ref.slot = r.obj_slot;
  return e;
}

}  // namespace

void NodeView::Init(uint8_t level) {
  std::memset(page_.data(), 0, page_.size());
  storage::PageHeaderView h = header();
  h.set_type(level == 0 ? storage::PageType::kData
                        : storage::PageType::kDirectory);
  h.set_level(level);
  h.set_entry_count(0);
  h.set_aggregates(geom::EntryAggregates{});
}

Entry NodeView::GetEntry(uint16_t i) const {
  SDB_DCHECK(i < count());
  EntryRecord r;
  std::memcpy(&r, EntryPtr(i), sizeof(r));
  return FromRecord(r);
}

void NodeView::SetEntry(uint16_t i, const Entry& e) {
  SDB_DCHECK(i < count());
  const EntryRecord r = ToRecord(e);
  std::memcpy(EntryPtr(i), &r, sizeof(r));
}

void NodeView::Append(const Entry& e) {
  const uint16_t i = count();
  SDB_CHECK_MSG(i < Capacity(page_.size()), "node page overflow");
  header().set_entry_count(i + 1);
  SetEntry(i, e);
}

std::vector<Entry> NodeView::LoadEntries() const {
  const uint16_t n = count();
  std::vector<Entry> entries;
  entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) entries.push_back(GetEntry(i));
  return entries;
}

void NodeView::WriteEntries(std::span<const Entry> entries) {
  SDB_CHECK_MSG(entries.size() <= Capacity(page_.size()),
                "node page overflow");
  header().set_entry_count(static_cast<uint16_t>(entries.size()));
  for (uint16_t i = 0; i < entries.size(); ++i) SetEntry(i, entries[i]);
  RefreshAggregates();
}

void NodeView::RefreshAggregates() {
  const uint16_t n = count();
  std::vector<geom::Rect> rects;
  rects.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    EntryRecord r;
    std::memcpy(&r, EntryPtr(i), sizeof(r));
    rects.emplace_back(r.xmin, r.ymin, r.xmax, r.ymax);
  }
  header().set_aggregates(geom::ComputeEntryAggregates(rects));
}

std::byte* NodeView::EntryPtr(uint16_t i) {
  return page_.data() + storage::PageHeaderView::kHeaderSize +
         static_cast<size_t>(i) * kEntrySize;
}

const std::byte* NodeView::EntryPtr(uint16_t i) const {
  return page_.data() + storage::PageHeaderView::kHeaderSize +
         static_cast<size_t>(i) * kEntrySize;
}

}  // namespace sdb::rtree
