#ifndef SPATIALBUFFER_RTREE_BULK_LOAD_H_
#define SPATIALBUFFER_RTREE_BULK_LOAD_H_

#include <vector>

#include "rtree/rtree.h"

namespace sdb::rtree {

/// How the bulk loader orders entries before packing them into pages.
enum class PackingOrder {
  /// Sort-Tile-Recursive [Leutenegger et al., ICDE 1997]: sort by x, tile
  /// into vertical slices, sort each slice by y. Compact, square-ish pages.
  kStr,
  /// Z-order (Morton) packing: one global sort by the Morton code of the
  /// entry centers. Simpler and fully incremental-friendly, but pages can
  /// straddle curve jumps and cover large areas.
  kZOrder,
};

/// Options of the bulk loader.
struct BulkLoadOptions {
  /// Target fill of the produced pages relative to the fanout, mirroring the
  /// typical fill of a dynamically built R*-tree.
  double fill_fraction = 0.7;
  PackingOrder order = PackingOrder::kStr;
};

/// Builds an R-tree bottom-up by packing sorted entries into pages (STR or
/// z-order, see PackingOrder). Produces a well-clustered tree orders of
/// magnitude faster than one-by-one insertion; used to stand up the large
/// experiment databases quickly.
///
/// The tree must be empty. After loading, the tree is persisted and valid.
void BulkLoad(RTree* tree, std::vector<Entry> entries,
              const core::AccessContext& ctx,
              const BulkLoadOptions& options = BulkLoadOptions{});

}  // namespace sdb::rtree

#endif  // SPATIALBUFFER_RTREE_BULK_LOAD_H_
