#ifndef SPATIALBUFFER_RTREE_RTREE_H_
#define SPATIALBUFFER_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/access_context.h"
#include "core/buffer_manager.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/node_view.h"
#include "rtree/rtree_config.h"
#include "storage/disk_manager.h"

namespace sdb::rtree {

/// Defined in rtree/bulk_load.h; forward-declared for the loader's friend
/// declaration below.
enum class PackingOrder;

/// Aggregate statistics of a tree, computed by an offline walk (no I/O is
/// charged). Matches the numbers the paper reports for its two databases.
struct TreeStats {
  uint64_t object_count = 0;
  uint32_t height = 0;
  uint32_t directory_pages = 0;
  uint32_t data_pages = 0;
  double avg_dir_fill = 0.0;   ///< mean entries per directory page
  double avg_data_fill = 0.0;  ///< mean entries per data page

  uint32_t total_pages() const { return directory_pages + data_pages; }
  double directory_share() const {
    return total_pages() == 0
               ? 0.0
               : static_cast<double>(directory_pages) / total_pages();
  }
};

/// A paged R*-tree [Beckmann et al., SIGMOD 1990] — the spatial access
/// method of the paper's experiments. All node accesses at run time go
/// through a pluggable core::PageSource (a private BufferManager, or the
/// sharded svc::BufferService for concurrent clients) so replacement
/// policies can be evaluated; structural inspection (Validate,
/// ComputeStats) bypasses the buffer and is free of I/O cost.
///
/// The tree persists its root/height in a meta page, so a tree built with
/// one buffer can be reopened with another (fresh) buffer — exactly how the
/// experiment harness replays one query set per policy.
class RTree {
 public:
  /// Creates an empty tree on `disk`, performing its page I/O through
  /// `buffer` (which must wrap the same disk).
  RTree(const storage::DiskManager* disk, core::PageSource* buffer,
        const RTreeConfig& config = RTreeConfig{});

  /// Reopens a persisted tree. `meta_page` is the page id returned by
  /// meta_page() of the instance that built the tree.
  static RTree Open(const storage::DiskManager* disk, core::PageSource* buffer,
                    storage::PageId meta_page);

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = delete;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Swaps the buffer the tree performs I/O through (e.g. a fresh buffer
  /// with a different replacement policy). The previous buffer must have
  /// been flushed or destroyed by the caller.
  void set_buffer(core::PageSource* buffer) { buffer_ = buffer; }

  /// Buffer the tree currently performs its I/O through.
  core::PageSource* buffer() const { return buffer_; }

  /// Inserts one object entry (R* insertion with forced reinsertion).
  void Insert(const Entry& entry, const core::AccessContext& ctx);

  /// Removes the entry with the given id whose rectangle matches `rect`.
  /// Returns false if no such entry exists.
  bool Delete(uint64_t id, const geom::Rect& rect,
              const core::AccessContext& ctx);

  /// All entries whose rectangle intersects `window`.
  std::vector<Entry> WindowQuery(const geom::Rect& window,
                                 const core::AccessContext& ctx) const;

  /// All entries whose rectangle contains the point.
  std::vector<Entry> PointQuery(const geom::Point& point,
                                const core::AccessContext& ctx) const;

  /// Streaming variant of WindowQuery.
  void WindowQueryVisit(const geom::Rect& window,
                        const core::AccessContext& ctx,
                        const std::function<void(const Entry&)>& visit) const;

  /// The k entries whose rectangles are nearest to `point` (min-distance
  /// branch-and-bound). Extension beyond the paper's workloads.
  std::vector<Entry> NearestNeighbors(const geom::Point& point, size_t k,
                                      const core::AccessContext& ctx) const;

  /// Persists root id / height / size to the meta page. Call after building
  /// or updating, before reopening with another buffer.
  void PersistMeta();

  /// Offline structural check: entry counts within bounds, parent rects
  /// equal to child MBRs, header aggregates consistent, all data pages at
  /// level 0, object count consistent. Returns an empty string when the
  /// tree is valid, otherwise a description of the first violation.
  std::string Validate() const;

  /// Offline statistics walk.
  TreeStats ComputeStats() const;

  /// I/O errors the query paths absorbed (fetches that failed after the
  /// buffer's bounded retries). A failed directory fetch prunes its whole
  /// subtree, so a nonzero count means query results may be incomplete —
  /// degraded, not aborted. Mutation paths never absorb errors: they run
  /// during builds over a fault-free device and abort on failure.
  uint64_t io_errors() const { return io_errors_; }
  /// The most recent absorbed error (OK when io_errors() == 0).
  const core::Status& last_io_error() const { return last_io_error_; }
  void ClearIoErrors() {
    io_errors_ = 0;
    last_io_error_ = core::Status::Ok();
  }

  storage::PageId meta_page() const { return meta_page_; }
  storage::PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  uint64_t size() const { return size_; }
  const RTreeConfig& config() const { return config_; }

 private:
  friend void BulkLoadInternal(RTree* tree, std::vector<Entry>&& entries,
                               const core::AccessContext& ctx,
                               double fill_fraction, PackingOrder order);

  RTree(const storage::DiskManager* disk, core::PageSource* buffer,
        const RTreeConfig& config, storage::PageId meta_page);

  uint32_t MaxEntries(uint8_t level) const {
    return level == 0 ? config_.max_data_entries : config_.max_dir_entries;
  }
  uint32_t MinEntries(uint8_t level) const {
    return level == 0 ? config_.min_data_entries()
                      : config_.min_dir_entries();
  }

  /// Descends from the root to the node at `target_level`, choosing
  /// subtrees by the R* criteria. Returns the page-id path root..target and
  /// (parallel, one shorter) the entry index taken within each directory
  /// node.
  void ChoosePath(const geom::Rect& rect, uint8_t target_level,
                  const core::AccessContext& ctx,
                  std::vector<storage::PageId>* path,
                  std::vector<uint16_t>* child_index) const;

  /// Core insertion: places `entry` at `target_level`, handling overflow by
  /// forced reinsertion (once per level per user-level insert) or split.
  void InsertAtLevel(const Entry& entry, uint8_t target_level,
                     const core::AccessContext& ctx,
                     std::vector<bool>* reinserted_at_level);

  /// Updates the parent entry rectangles along `path` after the node at
  /// position `depth` changed its MBR.
  void AdjustPathUpwards(const std::vector<storage::PageId>& path,
                         const std::vector<uint16_t>& child_index,
                         size_t depth, const core::AccessContext& ctx);

  /// R* split of `entries` (which exceed the node capacity) along the best
  /// axis/distribution. Output groups are non-empty and respect min fill.
  void SplitEntries(std::vector<Entry>& entries, uint8_t level,
                    std::vector<Entry>* group_a,
                    std::vector<Entry>* group_b) const;

  /// Makes a new root above the two given nodes.
  void GrowRoot(const Entry& a, const Entry& b, uint8_t new_root_level,
                const core::AccessContext& ctx);

  /// MBR of a node as currently stored on its page header.
  geom::Rect NodeMbr(storage::PageId id, const core::AccessContext& ctx) const;

  /// Query-path error bookkeeping (const traversals, hence mutable).
  void RecordIoError(const core::Status& status) const {
    ++io_errors_;
    last_io_error_ = status;
  }

  const storage::DiskManager* disk_;
  core::PageSource* buffer_;
  RTreeConfig config_;
  storage::PageId meta_page_ = storage::kInvalidPageId;
  storage::PageId root_ = storage::kInvalidPageId;
  uint32_t height_ = 1;  ///< number of levels; root level = height - 1
  uint64_t size_ = 0;    ///< number of object entries
  mutable uint64_t io_errors_ = 0;
  mutable core::Status last_io_error_;
};

}  // namespace sdb::rtree

#endif  // SPATIALBUFFER_RTREE_RTREE_H_
