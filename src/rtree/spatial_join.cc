#include "rtree/spatial_join.h"

#include <vector>

namespace sdb::rtree {

namespace {

using core::AccessContext;
using storage::PageId;

struct JoinContext {
  const RTree* left;
  const RTree* right;
  const AccessContext* ctx;
  const std::function<void(const Entry&, const Entry&)>* visit;
  JoinStats stats;
};

void JoinNodes(JoinContext& jc, PageId left_id, PageId right_id) {
  ++jc.stats.node_pairs_visited;
  core::PageHandle left_page = jc.left->buffer()->Fetch(left_id, *jc.ctx);
  core::PageHandle right_page = jc.right->buffer()->Fetch(right_id, *jc.ctx);
  const NodeView left(left_page.bytes());
  const NodeView right(right_page.bytes());
  const std::vector<Entry> a = left.LoadEntries();
  const std::vector<Entry> b = right.LoadEntries();
  const bool left_leaf = left.is_leaf();
  const bool right_leaf = right.is_leaf();
  // Release the pins before recursing so deep descents never exhaust small
  // buffers.
  const geom::Rect left_mbr = left.mbr();
  const geom::Rect right_mbr = right.mbr();
  left_page.Release();
  right_page.Release();

  if (left_leaf && right_leaf) {
    for (const Entry& ea : a) {
      for (const Entry& eb : b) {
        if (ea.rect.Intersects(eb.rect)) {
          ++jc.stats.result_pairs;
          if (*jc.visit) (*jc.visit)(ea, eb);
        }
      }
    }
    return;
  }
  if (left_leaf) {
    // Descend only the right tree; restrict to children meeting the left
    // node's region.
    for (const Entry& eb : b) {
      if (eb.rect.Intersects(left_mbr)) JoinNodes(jc, left_id, eb.child());
    }
    return;
  }
  if (right_leaf) {
    for (const Entry& ea : a) {
      if (ea.rect.Intersects(right_mbr)) JoinNodes(jc, ea.child(), right_id);
    }
    return;
  }
  for (const Entry& ea : a) {
    for (const Entry& eb : b) {
      if (ea.rect.Intersects(eb.rect)) {
        JoinNodes(jc, ea.child(), eb.child());
      }
    }
  }
}

}  // namespace

JoinStats SpatialJoin(
    const RTree& left, const RTree& right, const AccessContext& ctx,
    const std::function<void(const Entry&, const Entry&)>& visit) {
  JoinContext jc{&left, &right, &ctx, &visit, JoinStats{}};
  JoinNodes(jc, left.root(), right.root());
  return jc.stats;
}

JoinStats SpatialJoinCount(const RTree& left, const RTree& right,
                           const AccessContext& ctx) {
  return SpatialJoin(left, right, ctx, nullptr);
}

}  // namespace sdb::rtree
