#include "rtree/spatial_join.h"

#include <utility>
#include <vector>

namespace sdb::rtree {

namespace {

using core::AccessContext;
using storage::PageId;

struct JoinContext {
  const RTree* left;
  const RTree* right;
  const AccessContext* ctx;
  const std::function<void(const Entry&, const Entry&)>* visit;
  JoinStats stats;
  // Per-node scan scratch, reused across the whole recursion: each call
  // finishes with the scratch before descending (descent pairs are collected
  // first), so a single set of buffers serves every depth with no per-node
  // entry copies.
  geom::kernels::SoaBuffer right_coords;
  std::vector<uint8_t> mask;
};

void JoinNodes(JoinContext& jc, PageId left_id, PageId right_id) {
  ++jc.stats.node_pairs_visited;
  // An unreadable node skips this pair (both subtrees below it): the join
  // result degrades to a subset, reported via JoinStats::io_errors.
  core::StatusOr<core::PageHandle> left_fetched =
      jc.left->buffer()->Fetch(left_id, *jc.ctx);
  if (!left_fetched.ok()) {
    ++jc.stats.io_errors;
    return;
  }
  core::StatusOr<core::PageHandle> right_fetched =
      jc.right->buffer()->Fetch(right_id, *jc.ctx);
  if (!right_fetched.ok()) {
    ++jc.stats.io_errors;
    return;
  }
  core::PageHandle left_page = std::move(left_fetched).value();
  core::PageHandle right_page = std::move(right_fetched).value();
  const NodeView left(left_page.bytes());
  const NodeView right(right_page.bytes());
  const uint16_t na = left.count();
  const bool left_leaf = left.is_leaf();
  const bool right_leaf = right.is_leaf();
  const geom::Rect left_mbr = left.mbr();
  const geom::Rect right_mbr = right.mbr();

  if (left_leaf && right_leaf) {
    // Batch the inner loop: one dispatched intersect-mask scan of the right
    // node per left entry, materializing entries only for actual hits.
    const uint16_t nb = right.GatherCoords(&jc.right_coords);
    jc.mask.resize(nb);
    for (uint16_t ia = 0; ia < na; ++ia) {
      const Entry ea = left.GetEntry(ia);
      if (nb == 0 ||
          geom::kernels::IntersectMask(
              ea.rect, jc.right_coords.xmin(), jc.right_coords.ymin(),
              jc.right_coords.xmax(), jc.right_coords.ymax(), nb,
              jc.mask.data()) == 0) {
        continue;
      }
      for (uint16_t ib = 0; ib < nb; ++ib) {
        if (!jc.mask[ib]) continue;
        ++jc.stats.result_pairs;
        if (*jc.visit) (*jc.visit)(ea, right.GetEntry(ib));
      }
    }
    return;
  }

  // Directory descent: collect the qualifying child pairs while the pages
  // are pinned, then release the pins before recursing so deep descents
  // never exhaust small buffers (and the scan scratch is free for reuse).
  std::vector<std::pair<PageId, PageId>> next;
  if (left_leaf) {
    // Descend only the right tree; restrict to children meeting the left
    // node's region.
    const size_t hits = right.ScanEntries(left_mbr, &jc.right_coords,
                                          &jc.mask);
    const uint16_t nb = right.count();
    if (hits != 0) {
      for (uint16_t ib = 0; ib < nb; ++ib) {
        if (jc.mask[ib]) next.emplace_back(left_id, right.GetEntry(ib).child());
      }
    }
  } else if (right_leaf) {
    const size_t hits = left.ScanEntries(right_mbr, &jc.right_coords,
                                         &jc.mask);
    if (hits != 0) {
      for (uint16_t ia = 0; ia < na; ++ia) {
        if (jc.mask[ia]) next.emplace_back(left.GetEntry(ia).child(), right_id);
      }
    }
  } else {
    const uint16_t nb = right.GatherCoords(&jc.right_coords);
    jc.mask.resize(nb);
    for (uint16_t ia = 0; ia < na; ++ia) {
      const Entry ea = left.GetEntry(ia);
      if (nb == 0 ||
          geom::kernels::IntersectMask(
              ea.rect, jc.right_coords.xmin(), jc.right_coords.ymin(),
              jc.right_coords.xmax(), jc.right_coords.ymax(), nb,
              jc.mask.data()) == 0) {
        continue;
      }
      for (uint16_t ib = 0; ib < nb; ++ib) {
        if (jc.mask[ib]) next.emplace_back(ea.child(), right.GetEntry(ib).child());
      }
    }
  }
  left_page.Release();
  right_page.Release();
  for (const auto& [l, r] : next) JoinNodes(jc, l, r);
}

}  // namespace

JoinStats SpatialJoin(
    const RTree& left, const RTree& right, const AccessContext& ctx,
    const std::function<void(const Entry&, const Entry&)>& visit) {
  JoinContext jc{&left, &right, &ctx, &visit, JoinStats{}, {}, {}};
  JoinNodes(jc, left.root(), right.root());
  return jc.stats;
}

JoinStats SpatialJoinCount(const RTree& left, const RTree& right,
                           const AccessContext& ctx) {
  return SpatialJoin(left, right, ctx, nullptr);
}

}  // namespace sdb::rtree
