#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace sdb::rtree {

namespace {

/// Splits n items into groups whose sizes are as equal as possible while
/// respecting [min_size, max_size]; aims for `target` items per group.
/// Returns the group sizes (summing to n). n may be smaller than min_size
/// only when a single group results (the root exemption).
std::vector<size_t> BalancedGroupSizes(size_t n, size_t target,
                                       size_t min_size, size_t max_size) {
  SDB_CHECK(n > 0 && target > 0 && min_size <= max_size);
  size_t groups = (n + target - 1) / target;
  // Too many groups would underfill them; too few would overflow pages.
  if (groups > 1 && n / groups < min_size) {
    groups = std::max<size_t>(1, n / min_size);
  }
  groups = std::max(groups, (n + max_size - 1) / max_size);
  std::vector<size_t> sizes(groups, n / groups);
  for (size_t i = 0; i < n % groups; ++i) ++sizes[i];
  return sizes;
}

double CenterX(const Entry& e) { return (e.rect.xmin + e.rect.xmax) / 2; }
double CenterY(const Entry& e) { return (e.rect.ymin + e.rect.ymax) / 2; }

/// Morton code of an entry center on a 2^20 grid over the unit square
/// (matching zbtree/zcurve.h; duplicated locally to keep the R-tree module
/// independent of the z-B+-tree module).
uint64_t MortonOf(const Entry& e) {
  auto spread = [](uint64_t v) {
    v &= 0xffffffffull;
    v = (v | (v << 16)) & 0x0000ffff0000ffffull;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
    v = (v | (v << 2)) & 0x3333333333333333ull;
    v = (v | (v << 1)) & 0x5555555555555555ull;
    return v;
  };
  constexpr double kGrid = 1024.0 * 1024.0;
  auto coord = [](double value) {
    const int64_t cell = static_cast<int64_t>(value * kGrid);
    return static_cast<uint64_t>(
        std::clamp<int64_t>(cell, 0, static_cast<int64_t>(kGrid) - 1));
  };
  return spread(coord(CenterX(e))) | (spread(coord(CenterY(e))) << 1);
}

}  // namespace

/// Friend of RTree; performs the actual load.
void BulkLoadInternal(RTree* tree, std::vector<Entry>&& entries,
                      const core::AccessContext& ctx, double fill_fraction,
                      PackingOrder order) {
  SDB_CHECK_MSG(tree->size() == 0, "bulk load requires an empty tree");
  SDB_CHECK(fill_fraction > 0.0 && fill_fraction <= 1.0);
  if (entries.empty()) return;

  const uint64_t object_count = entries.size();
  std::vector<Entry> items = std::move(entries);
  uint8_t level = 0;

  while (true) {
    const uint32_t max_entries = tree->MaxEntries(level);
    const uint32_t min_entries = tree->MinEntries(level);
    const size_t target = std::clamp<size_t>(
        static_cast<size_t>(std::lround(fill_fraction * max_entries)),
        min_entries, max_entries);

    if (items.size() <= max_entries) {
      // Final level: one node becomes the root.
      core::PageHandle page = tree->buffer_->NewOrDie(ctx);
      NodeView node(page.bytes());
      node.Init(level);
      node.WriteEntries(items);
      page.MarkDirty();
      tree->root_ = page.page_id();
      tree->height_ = level + 1;
      tree->size_ = object_count;
      tree->PersistMeta();
      return;
    }

    if (order == PackingOrder::kZOrder) {
      // One global Morton sort, then sequential packing.
      std::stable_sort(items.begin(), items.end(),
                       [](const Entry& a, const Entry& b) {
                         return MortonOf(a) < MortonOf(b);
                       });
      std::vector<Entry> parents;
      size_t pos = 0;
      for (const size_t group :
           BalancedGroupSizes(items.size(), target, min_entries,
                              max_entries)) {
        core::PageHandle page = tree->buffer_->NewOrDie(ctx);
        NodeView node(page.bytes());
        node.Init(level);
        node.WriteEntries(std::span<const Entry>(&items[pos], group));
        page.MarkDirty();
        Entry parent;
        parent.rect = node.mbr();
        parent.id = page.page_id();
        parents.push_back(parent);
        pos += group;
      }
      items = std::move(parents);
      ++level;
      continue;
    }

    // Sort-Tile-Recursive: slice by x, tile by y within each slice.
    const size_t node_count_estimate = (items.size() + target - 1) / target;
    const size_t slice_count = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(std::ceil(std::sqrt(
                   static_cast<double>(node_count_estimate))))));
    std::stable_sort(items.begin(), items.end(),
                     [](const Entry& a, const Entry& b) {
                       return CenterX(a) < CenterX(b);
                     });

    std::vector<Entry> parents;
    std::vector<size_t> slice_sizes(slice_count, items.size() / slice_count);
    for (size_t i = 0; i < items.size() % slice_count; ++i) ++slice_sizes[i];

    size_t offset = 0;
    for (const size_t slice_size : slice_sizes) {
      if (slice_size == 0) continue;
      const auto begin = items.begin() + offset;
      const auto end = begin + slice_size;
      std::stable_sort(begin, end, [](const Entry& a, const Entry& b) {
        return CenterY(a) < CenterY(b);
      });
      size_t pos = 0;
      for (const size_t group :
           BalancedGroupSizes(slice_size, target, min_entries, max_entries)) {
        core::PageHandle page = tree->buffer_->NewOrDie(ctx);
        NodeView node(page.bytes());
        node.Init(level);
        node.WriteEntries(
            std::span<const Entry>(&*(begin + pos), group));
        page.MarkDirty();
        Entry parent;
        parent.rect = node.mbr();
        parent.id = page.page_id();
        parents.push_back(parent);
        pos += group;
      }
      offset += slice_size;
    }
    items = std::move(parents);
    ++level;
  }
}

void BulkLoad(RTree* tree, std::vector<Entry> entries,
              const core::AccessContext& ctx,
              const BulkLoadOptions& options) {
  BulkLoadInternal(tree, std::move(entries), ctx, options.fill_fraction,
                   options.order);
}

}  // namespace sdb::rtree
