#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/macros.h"

namespace sdb::rtree {

namespace {

using core::AccessContext;
using geom::Point;
using geom::Rect;
using storage::PageId;

/// Meta-page payload, stored right after the standard page header.
struct MetaRecord {
  PageId root;
  uint32_t height;
  uint64_t size;
  uint32_t max_dir_entries;
  uint32_t max_data_entries;
  double min_fill_fraction;
  double reinsert_fraction;
  uint32_t variant;
  uint32_t pad;
};

Entry MakeDirEntry(const Rect& rect, PageId child) {
  Entry e;
  e.rect = rect;
  e.id = child;
  return e;
}

Rect MbrOf(std::span<const Entry> entries) {
  Rect r;
  for (const Entry& e : entries) r.Extend(e.rect);
  return r;
}

}  // namespace

RTree::RTree(const storage::DiskManager* disk, core::PageSource* buffer,
             const RTreeConfig& config)
    : disk_(disk), buffer_(buffer), config_(config) {
  // `buffer` must wrap `disk` (or a view of it); the PageSource interface
  // cannot expose its backing device, so this is the caller's contract.
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  const uint32_t capacity =
      NodeView::Capacity(disk->page_size());
  SDB_CHECK_MSG(config.max_dir_entries >= 4 &&
                    config.max_dir_entries <= capacity,
                "directory fanout out of range for the page size");
  SDB_CHECK_MSG(config.max_data_entries >= 4 &&
                    config.max_data_entries <= capacity,
                "data fanout out of range for the page size");

  const AccessContext ctx;
  core::PageHandle meta = buffer_->NewOrDie(ctx);
  meta_page_ = meta.page_id();
  meta.header().set_type(storage::PageType::kMeta);
  meta.MarkDirty();
  meta.Release();

  core::PageHandle root = buffer_->NewOrDie(ctx);
  root_ = root.page_id();
  NodeView(root.bytes()).Init(/*level=*/0);
  root.MarkDirty();
  root.Release();

  height_ = 1;
  size_ = 0;
  PersistMeta();
}

RTree::RTree(const storage::DiskManager* disk, core::PageSource* buffer,
             const RTreeConfig& config, storage::PageId meta_page)
    : disk_(disk), buffer_(buffer), config_(config), meta_page_(meta_page) {}

RTree RTree::Open(const storage::DiskManager* disk,
                  core::PageSource* buffer,
                  storage::PageId meta_page) {
  SDB_CHECK(disk != nullptr && buffer != nullptr);
  MetaRecord record;
  std::span<const std::byte> page = disk->PeekPage(meta_page);
  SDB_CHECK_MSG(storage::ConstPageHeaderView(page.data()).type() ==
                    storage::PageType::kMeta,
                "not a tree meta page");
  std::memcpy(&record, page.data() + storage::PageHeaderView::kHeaderSize,
              sizeof(record));
  RTreeConfig config;
  config.variant = static_cast<TreeVariant>(record.variant);
  config.max_dir_entries = record.max_dir_entries;
  config.max_data_entries = record.max_data_entries;
  config.min_fill_fraction = record.min_fill_fraction;
  config.reinsert_fraction = record.reinsert_fraction;
  RTree tree(disk, buffer, config, meta_page);
  tree.root_ = record.root;
  tree.height_ = record.height;
  tree.size_ = record.size;
  return tree;
}

void RTree::PersistMeta() {
  MetaRecord record;
  record.root = root_;
  record.height = height_;
  record.size = size_;
  record.max_dir_entries = config_.max_dir_entries;
  record.max_data_entries = config_.max_data_entries;
  record.min_fill_fraction = config_.min_fill_fraction;
  record.reinsert_fraction = config_.reinsert_fraction;
  record.variant = static_cast<uint32_t>(config_.variant);
  record.pad = 0;
  const AccessContext ctx;
  core::PageHandle meta = buffer_->FetchOrDie(meta_page_, ctx);
  std::memcpy(meta.bytes().data() + storage::PageHeaderView::kHeaderSize,
              &record, sizeof(record));
  meta.MarkDirty();
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

void RTree::Insert(const Entry& entry, const AccessContext& ctx) {
  SDB_CHECK_MSG(!entry.rect.IsEmpty(), "cannot index an empty rectangle");
  // One forced reinsertion per level per user-level insertion (R* rule);
  // generously sized so root growth during the insert stays in range.
  std::vector<bool> reinserted(64, false);
  InsertAtLevel(entry, /*target_level=*/0, ctx, &reinserted);
  ++size_;
}

void RTree::ChoosePath(const Rect& rect, uint8_t target_level,
                       const AccessContext& ctx,
                       std::vector<PageId>* path,
                       std::vector<uint16_t>* child_index) const {
  path->clear();
  child_index->clear();
  PageId current = root_;
  while (true) {
    path->push_back(current);
    core::PageHandle page = buffer_->FetchOrDie(current, ctx);
    const NodeView node(page.bytes());
    const uint8_t level = node.level();
    if (level == target_level) return;
    SDB_DCHECK(level > target_level);
    const std::vector<Entry> entries = node.LoadEntries();
    SDB_CHECK_MSG(!entries.empty(), "descending through an empty node");

    size_t best = 0;
    if (level == 1 && config_.variant == TreeVariant::kRStar) {
      // Children are data pages: minimize overlap enlargement; resolve ties
      // by area enlargement, then by area (R* ChooseSubtree).
      double best_overlap = 0.0, best_enlarge = 0.0, best_area = 0.0;
      for (size_t i = 0; i < entries.size(); ++i) {
        const Rect united = geom::Union(entries[i].rect, rect);
        double overlap_delta = 0.0;
        for (size_t j = 0; j < entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta +=
              geom::IntersectionArea(united, entries[j].rect) -
              geom::IntersectionArea(entries[i].rect, entries[j].rect);
        }
        const double enlarge = geom::AreaEnlargement(entries[i].rect, rect);
        const double area = entries[i].rect.Area();
        if (i == 0 || overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = i;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    } else {
      // Children are directory pages: minimize area enlargement, ties by
      // area.
      double best_enlarge = 0.0, best_area = 0.0;
      for (size_t i = 0; i < entries.size(); ++i) {
        const double enlarge = geom::AreaEnlargement(entries[i].rect, rect);
        const double area = entries[i].rect.Area();
        if (i == 0 || enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = i;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    }
    child_index->push_back(static_cast<uint16_t>(best));
    current = entries[best].child();
  }
}

void RTree::InsertAtLevel(const Entry& entry, uint8_t target_level,
                          const AccessContext& ctx,
                          std::vector<bool>* reinserted_at_level) {
  std::vector<PageId> path;
  std::vector<uint16_t> child_index;
  ChoosePath(entry.rect, target_level, ctx, &path, &child_index);

  // Walk upward from the target node, carrying at most one pending entry
  // (the split partner) to add to the next ancestor.
  Entry pending = entry;
  size_t depth = path.size() - 1;
  uint8_t level = target_level;

  while (true) {
    const PageId node_id = path[depth];
    core::PageHandle page = buffer_->FetchOrDie(node_id, ctx);
    NodeView node(page.bytes());
    std::vector<Entry> entries = node.LoadEntries();
    entries.push_back(pending);

    if (entries.size() <= MaxEntries(level)) {
      node.WriteEntries(entries);
      page.MarkDirty();
      page.Release();
      AdjustPathUpwards(path, child_index, depth, ctx);
      return;
    }

    const bool is_root = (node_id == root_);
    if (config_.variant == TreeVariant::kRStar && !is_root &&
        !(*reinserted_at_level)[level]) {
      // --- Forced reinsertion (R* OverflowTreatment, first time per level).
      (*reinserted_at_level)[level] = true;
      const Rect node_mbr = MbrOf(entries);
      const Point center = node_mbr.Center();
      // Sort by distance of the entry's center from the node's center,
      // farthest first.
      std::stable_sort(entries.begin(), entries.end(),
                       [&center](const Entry& a, const Entry& b) {
                         return geom::SquaredDistance(a.rect.Center(),
                                                      center) >
                                geom::SquaredDistance(b.rect.Center(),
                                                      center);
                       });
      const uint32_t p = config_.reinsert_count(MaxEntries(level));
      std::vector<Entry> removed(entries.begin(), entries.begin() + p);
      entries.erase(entries.begin(), entries.begin() + p);
      node.WriteEntries(entries);
      page.MarkDirty();
      page.Release();
      AdjustPathUpwards(path, child_index, depth, ctx);
      // Close reinsert: re-add starting with the entry nearest the center.
      for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
        InsertAtLevel(*it, level, ctx, reinserted_at_level);
      }
      return;
    }

    // --- Split.
    std::vector<Entry> group_a, group_b;
    SplitEntries(entries, level, &group_a, &group_b);
    node.WriteEntries(group_a);
    page.MarkDirty();
    page.Release();

    core::PageHandle fresh = buffer_->NewOrDie(ctx);
    const PageId new_id = fresh.page_id();
    NodeView new_node(fresh.bytes());
    new_node.Init(level);
    new_node.WriteEntries(group_b);
    fresh.MarkDirty();
    fresh.Release();

    if (is_root) {
      GrowRoot(MakeDirEntry(MbrOf(group_a), node_id),
               MakeDirEntry(MbrOf(group_b), new_id),
               static_cast<uint8_t>(level + 1), ctx);
      return;
    }

    // Update the parent's rectangle for the shrunk node, then ascend with
    // the new node's entry as the pending insertion.
    {
      const PageId parent_id = path[depth - 1];
      core::PageHandle parent_page = buffer_->FetchOrDie(parent_id, ctx);
      NodeView parent(parent_page.bytes());
      Entry parent_entry = parent.GetEntry(child_index[depth - 1]);
      parent_entry.rect = MbrOf(group_a);
      parent.SetEntry(child_index[depth - 1], parent_entry);
      parent.RefreshAggregates();
      parent_page.MarkDirty();
    }
    pending = MakeDirEntry(MbrOf(group_b), new_id);
    --depth;
    ++level;
  }
}

void RTree::AdjustPathUpwards(const std::vector<PageId>& path,
                              const std::vector<uint16_t>& child_index,
                              size_t depth, const AccessContext& ctx) {
  for (size_t d = depth; d > 0; --d) {
    const Rect child_mbr = NodeMbr(path[d], ctx);
    core::PageHandle parent_page = buffer_->FetchOrDie(path[d - 1], ctx);
    NodeView parent(parent_page.bytes());
    Entry entry = parent.GetEntry(child_index[d - 1]);
    if (entry.rect == child_mbr) return;  // ancestors already consistent
    entry.rect = child_mbr;
    parent.SetEntry(child_index[d - 1], entry);
    parent.RefreshAggregates();
    parent_page.MarkDirty();
  }
}

namespace {

/// Guttman's quadratic split: seed the two groups with the pair whose
/// combined bounding box wastes the most area, then repeatedly assign the
/// entry with the strongest preference, honoring the minimum fill.
void QuadraticSplit(std::vector<Entry>& entries, uint32_t min_entries,
                    std::vector<Entry>* group_a, std::vector<Entry>* group_b) {
  const size_t total = entries.size();
  // PickSeeds.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -1.0;
  for (size_t i = 0; i < total; ++i) {
    for (size_t j = i + 1; j < total; ++j) {
      const double waste = geom::Union(entries[i].rect, entries[j].rect)
                               .Area() -
                           entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  group_a->clear();
  group_b->clear();
  group_a->push_back(entries[seed_a]);
  group_b->push_back(entries[seed_b]);
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;

  std::vector<Entry> remaining;
  for (size_t i = 0; i < total; ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(entries[i]);
  }
  while (!remaining.empty()) {
    // If one group must take everything left to reach min fill, do so.
    if (group_a->size() + remaining.size() == min_entries) {
      for (const Entry& e : remaining) group_a->push_back(e);
      break;
    }
    if (group_b->size() + remaining.size() == min_entries) {
      for (const Entry& e : remaining) group_b->push_back(e);
      break;
    }
    // PickNext: the entry with the greatest enlargement difference.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const double da = geom::AreaEnlargement(mbr_a, remaining[i].rect);
      const double db = geom::AreaEnlargement(mbr_b, remaining[i].rect);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const Entry e = remaining[pick];
    remaining.erase(remaining.begin() + pick);
    const double da = geom::AreaEnlargement(mbr_a, e.rect);
    const double db = geom::AreaEnlargement(mbr_b, e.rect);
    const bool to_a =
        da < db ||
        (da == db && (mbr_a.Area() < mbr_b.Area() ||
                      (mbr_a.Area() == mbr_b.Area() &&
                       group_a->size() <= group_b->size())));
    if (to_a) {
      group_a->push_back(e);
      mbr_a.Extend(e.rect);
    } else {
      group_b->push_back(e);
      mbr_b.Extend(e.rect);
    }
  }
}

/// Guttman's linear split: seeds are the pair with the greatest normalized
/// separation along any dimension; the rest is assigned like quadratic.
void LinearSplit(std::vector<Entry>& entries, uint32_t min_entries,
                 std::vector<Entry>* group_a, std::vector<Entry>* group_b) {
  const size_t total = entries.size();
  size_t best_pair[2] = {0, 1};
  double best_separation = -1.0;
  for (int axis = 0; axis < 2; ++axis) {
    // Highest low side and lowest high side.
    size_t highest_low = 0, lowest_high = 0;
    double min_low = 0, max_high = 0;
    for (size_t i = 0; i < total; ++i) {
      const double low = axis == 0 ? entries[i].rect.xmin
                                   : entries[i].rect.ymin;
      const double high = axis == 0 ? entries[i].rect.xmax
                                    : entries[i].rect.ymax;
      if (i == 0) {
        min_low = low;
        max_high = high;
        continue;
      }
      const double hl_low = axis == 0 ? entries[highest_low].rect.xmin
                                      : entries[highest_low].rect.ymin;
      if (low > hl_low) highest_low = i;
      const double lh_high = axis == 0 ? entries[lowest_high].rect.xmax
                                       : entries[lowest_high].rect.ymax;
      if (high < lh_high) lowest_high = i;
      min_low = std::min(min_low, low);
      max_high = std::max(max_high, high);
    }
    if (highest_low == lowest_high) continue;
    const double width = max_high - min_low;
    if (width <= 0) continue;
    const double hl = axis == 0 ? entries[highest_low].rect.xmin
                                : entries[highest_low].rect.ymin;
    const double lh = axis == 0 ? entries[lowest_high].rect.xmax
                                : entries[lowest_high].rect.ymax;
    const double separation = (hl - lh) / width;
    if (separation > best_separation) {
      best_separation = separation;
      best_pair[0] = lowest_high;
      best_pair[1] = highest_low;
    }
  }
  if (best_pair[0] == best_pair[1]) best_pair[1] = best_pair[0] ? 0 : 1;

  group_a->clear();
  group_b->clear();
  group_a->push_back(entries[best_pair[0]]);
  group_b->push_back(entries[best_pair[1]]);
  Rect mbr_a = entries[best_pair[0]].rect;
  Rect mbr_b = entries[best_pair[1]].rect;
  std::vector<Entry> remaining;
  for (size_t i = 0; i < total; ++i) {
    if (i != best_pair[0] && i != best_pair[1]) {
      remaining.push_back(entries[i]);
    }
  }
  for (size_t i = 0; i < remaining.size(); ++i) {
    const Entry& e = remaining[i];
    const size_t left = remaining.size() - i;  // including e
    // A group that needs every remaining entry to reach min fill gets them.
    if (group_a->size() + left <= min_entries) {
      group_a->push_back(e);
      mbr_a.Extend(e.rect);
      continue;
    }
    if (group_b->size() + left <= min_entries) {
      group_b->push_back(e);
      mbr_b.Extend(e.rect);
      continue;
    }
    const double da = geom::AreaEnlargement(mbr_a, e.rect);
    const double db = geom::AreaEnlargement(mbr_b, e.rect);
    if (da < db || (da == db && group_a->size() <= group_b->size())) {
      group_a->push_back(e);
      mbr_a.Extend(e.rect);
    } else {
      group_b->push_back(e);
      mbr_b.Extend(e.rect);
    }
  }
}

}  // namespace

void RTree::SplitEntries(std::vector<Entry>& entries, uint8_t level,
                         std::vector<Entry>* group_a,
                         std::vector<Entry>* group_b) const {
  const uint32_t max_entries = MaxEntries(level);
  const uint32_t min_entries = MinEntries(level);
  SDB_CHECK(entries.size() == max_entries + 1);
  if (config_.variant == TreeVariant::kGuttmanQuadratic) {
    QuadraticSplit(entries, min_entries, group_a, group_b);
    return;
  }
  if (config_.variant == TreeVariant::kGuttmanLinear) {
    LinearSplit(entries, min_entries, group_a, group_b);
    return;
  }
  const uint32_t total = max_entries + 1;
  const uint32_t distributions = total - 2 * min_entries + 1;
  SDB_CHECK_MSG(distributions >= 1, "fanout too small to split");

  // R* ChooseSplitAxis: for each axis consider the entries sorted by lower
  // and by upper boundary; the axis with the minimal sum of margins over
  // all legal distributions wins.
  std::vector<Entry> best_sorted;
  double best_margin_sum = 0.0;
  bool have_axis = false;

  for (int axis = 0; axis < 2; ++axis) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<Entry> sorted = entries;
      std::stable_sort(
          sorted.begin(), sorted.end(),
          [axis, by_upper](const Entry& a, const Entry& b) {
            const double ka = axis == 0
                                  ? (by_upper ? a.rect.xmax : a.rect.xmin)
                                  : (by_upper ? a.rect.ymax : a.rect.ymin);
            const double kb = axis == 0
                                  ? (by_upper ? b.rect.xmax : b.rect.xmin)
                                  : (by_upper ? b.rect.ymax : b.rect.ymin);
            return ka < kb;
          });
      // Prefix/suffix MBRs make each distribution O(1).
      std::vector<Rect> prefix(total), suffix(total);
      Rect acc;
      for (uint32_t i = 0; i < total; ++i) {
        acc.Extend(sorted[i].rect);
        prefix[i] = acc;
      }
      acc = Rect();
      for (uint32_t i = total; i > 0; --i) {
        acc.Extend(sorted[i - 1].rect);
        suffix[i - 1] = acc;
      }
      double margin_sum = 0.0;
      for (uint32_t k = min_entries; k <= total - min_entries; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      if (!have_axis || margin_sum < best_margin_sum) {
        have_axis = true;
        best_margin_sum = margin_sum;
        best_sorted = std::move(sorted);
      }
    }
  }

  // R* ChooseSplitIndex on the winning ordering: minimal overlap between the
  // two groups, ties by minimal total area.
  std::vector<Rect> prefix(total), suffix(total);
  Rect acc;
  for (uint32_t i = 0; i < total; ++i) {
    acc.Extend(best_sorted[i].rect);
    prefix[i] = acc;
  }
  acc = Rect();
  for (uint32_t i = total; i > 0; --i) {
    acc.Extend(best_sorted[i - 1].rect);
    suffix[i - 1] = acc;
  }
  uint32_t best_k = min_entries;
  double best_overlap = 0.0, best_area = 0.0;
  bool have_k = false;
  for (uint32_t k = min_entries; k <= total - min_entries; ++k) {
    const double overlap = geom::IntersectionArea(prefix[k - 1], suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (!have_k || overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      have_k = true;
      best_k = k;
      best_overlap = overlap;
      best_area = area;
    }
  }

  group_a->assign(best_sorted.begin(), best_sorted.begin() + best_k);
  group_b->assign(best_sorted.begin() + best_k, best_sorted.end());
}

void RTree::GrowRoot(const Entry& a, const Entry& b, uint8_t new_root_level,
                     const AccessContext& ctx) {
  core::PageHandle page = buffer_->NewOrDie(ctx);
  NodeView node(page.bytes());
  node.Init(new_root_level);
  node.Append(a);
  node.Append(b);
  node.RefreshAggregates();
  page.MarkDirty();
  root_ = page.page_id();
  height_ = new_root_level + 1;
}

geom::Rect RTree::NodeMbr(PageId id, const AccessContext& ctx) const {
  core::PageHandle page = buffer_->FetchOrDie(id, ctx);
  return page.header().mbr();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

namespace {

/// Path step used during deletion: node id plus the entry index taken in the
/// parent (undefined for the root).
struct PathStep {
  PageId page;
  uint16_t index_in_parent;
};

}  // namespace

bool RTree::Delete(uint64_t id, const Rect& rect, const AccessContext& ctx) {
  // Depth-first search for the leaf holding the entry, keeping the path.
  std::vector<PathStep> path{{root_, 0}};
  std::vector<uint16_t> cursor{0};
  std::optional<uint16_t> found_index;

  while (!path.empty()) {
    const PageId node_id = path.back().page;
    core::PageHandle page = buffer_->FetchOrDie(node_id, ctx);
    const NodeView node(page.bytes());
    const uint16_t n = node.count();
    const bool leaf = node.is_leaf();
    bool descended = false;
    uint16_t i = cursor.back();
    for (; i < n; ++i) {
      const Entry e = node.GetEntry(i);
      if (leaf) {
        if (e.id == id && e.rect == rect) {
          found_index = i;
          break;
        }
      } else if (e.rect.Intersects(rect)) {
        cursor.back() = i + 1;  // resume after this child on backtrack
        path.push_back({e.child(), i});
        cursor.push_back(0);
        descended = true;
        break;
      }
    }
    if (!descended) cursor.back() = i;
    if (found_index) break;
    if (!descended) {
      path.pop_back();
      cursor.pop_back();
    }
  }
  if (!found_index) return false;

  // Remove the entry from the leaf.
  std::vector<Entry> orphans;  // data entries to reinsert
  {
    const PageId leaf_id = path.back().page;
    core::PageHandle page = buffer_->FetchOrDie(leaf_id, ctx);
    NodeView node(page.bytes());
    std::vector<Entry> entries = node.LoadEntries();
    entries.erase(entries.begin() + *found_index);
    node.WriteEntries(entries);
    page.MarkDirty();
  }
  --size_;

  // CondenseTree: walk upward; underfull non-root nodes are dissolved and
  // their entries queued for reinsertion at their original level.
  for (size_t depth = path.size() - 1; depth > 0; --depth) {
    const PageId node_id = path[depth].page;
    core::PageHandle page = buffer_->FetchOrDie(node_id, ctx);
    NodeView node(page.bytes());
    const uint8_t level = node.level();
    const std::vector<Entry> entries = node.LoadEntries();
    const bool underfull = entries.size() < MinEntries(level);

    core::PageHandle parent_page = buffer_->FetchOrDie(path[depth - 1].page, ctx);
    NodeView parent(parent_page.bytes());
    std::vector<Entry> parent_entries = parent.LoadEntries();
    const uint16_t my_index = path[depth].index_in_parent;

    if (underfull) {
      // Dissolve the node. Data entries are queued directly; a directory
      // node's subtrees are dismantled down to their data entries, which is
      // always level-consistent no matter how far the root later shrinks.
      if (level == 0) {
        orphans.insert(orphans.end(), entries.begin(), entries.end());
      } else {
        std::vector<PageId> stack;
        for (const Entry& e : entries) stack.push_back(e.child());
        while (!stack.empty()) {
          const PageId sub = stack.back();
          stack.pop_back();
          core::PageHandle sub_page = buffer_->FetchOrDie(sub, ctx);
          const NodeView sub_node(sub_page.bytes());
          const uint16_t sub_n = sub_node.count();
          for (uint16_t j = 0; j < sub_n; ++j) {
            const Entry e = sub_node.GetEntry(j);
            if (sub_node.is_leaf()) {
              orphans.push_back(e);
            } else {
              stack.push_back(e.child());
            }
          }
        }
      }
      parent_entries.erase(parent_entries.begin() + my_index);
      // Later path indexes into this parent are unaffected because the path
      // only references one child per node.
    } else {
      parent_entries[my_index].rect = MbrOf(entries);
    }
    parent.WriteEntries(parent_entries);
    parent_page.MarkDirty();
  }

  // Shrink the root while it is a directory with a single child.
  while (height_ > 1) {
    core::PageHandle page = buffer_->FetchOrDie(root_, ctx);
    const NodeView node(page.bytes());
    if (node.is_leaf()) break;
    if (node.count() == 0) {
      // Every subtree dissolved (mass deletion): restart from an empty leaf;
      // the orphans below re-populate it.
      page.Release();
      core::PageHandle fresh = buffer_->NewOrDie(ctx);
      NodeView(fresh.bytes()).Init(/*level=*/0);
      fresh.MarkDirty();
      root_ = fresh.page_id();
      height_ = 1;
      break;
    }
    if (node.count() != 1) break;
    root_ = node.GetEntry(0).child();
    --height_;
  }

  // Reinsert the orphaned data entries (size_ is unaffected: they were
  // already counted).
  for (const Entry& entry : orphans) {
    std::vector<bool> reinserted(64, false);
    InsertAtLevel(entry, /*target_level=*/0, ctx, &reinserted);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

// Leaves fetched per FetchBatch call under a level-1 node. Bounds the
// number of simultaneously pinned handles, so callers running over a shared
// buffer service need (kLeafBatchPins + 1) frames of per-shard headroom.
constexpr size_t kLeafBatchPins = 8;

void RTree::WindowQueryVisit(
    const Rect& window, const AccessContext& ctx,
    const std::function<void(const Entry&)>& visit) const {
  std::vector<PageId> stack{root_};
  // Scratch threaded through the whole traversal: the batch scan
  // deinterleaves each node's entry rects in place and runs the dispatched
  // intersect kernel, so no per-node entry vector is ever allocated.
  geom::kernels::SoaBuffer coords;
  std::vector<uint8_t> mask;
  std::vector<PageId> leaf_batch;
  std::vector<core::StatusOr<core::PageHandle>> leaves;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    core::StatusOr<core::PageHandle> fetched = buffer_->Fetch(id, ctx);
    if (!fetched.ok()) {
      // An unreadable node prunes its subtree: the query degrades to a
      // partial result (reported via io_errors()) instead of killing the
      // process.
      RecordIoError(fetched.status());
      continue;
    }
    core::PageHandle page = std::move(fetched).value();
    const NodeView node(page.bytes());
    const uint16_t n = node.count();
    const bool leaf = node.is_leaf();
    if (node.ScanEntries(window, &coords, &mask) == 0) continue;
    if (!leaf && node.level() == 1 && buffer_->PrefersBatchedReads()) {
      // Every matching child is a leaf: fetch them through the source's
      // batched path instead of one stack round-trip each, in reverse entry
      // order — exactly the LIFO pop order of the stack they replace, so
      // visit order and the page-access sequence are unchanged. The parent
      // is released first to keep peak pins at (chunk + 1).
      leaf_batch.clear();
      for (uint16_t i = n; i > 0; --i) {
        if (mask[i - 1]) leaf_batch.push_back(node.GetEntry(i - 1).child());
      }
      page.Release();
      // Chunk to the source's pin budget when it advertises one: a sharded
      // source can land a whole chunk on one shard, and a chunk wider than
      // the shard pins it wall-to-wall.
      const size_t budget = buffer_->BatchPinBudget();
      const size_t chunk =
          budget == 0 ? kLeafBatchPins : std::min(kLeafBatchPins, budget);
      for (size_t begin = 0; begin < leaf_batch.size(); begin += chunk) {
        const size_t count = std::min(leaf_batch.size() - begin, chunk);
        leaves.clear();
        buffer_->FetchBatch(
            std::span<const PageId>(leaf_batch.data() + begin, count), ctx,
            &leaves);
        for (core::StatusOr<core::PageHandle>& fetched_leaf : leaves) {
          if (!fetched_leaf.ok()) {
            RecordIoError(fetched_leaf.status());
            continue;
          }
          core::PageHandle leaf_page = std::move(fetched_leaf).value();
          const NodeView leaf_node(leaf_page.bytes());
          const uint16_t leaf_n = leaf_node.count();
          if (leaf_node.ScanEntries(window, &coords, &mask) == 0) continue;
          for (uint16_t i = 0; i < leaf_n; ++i) {
            if (mask[i]) visit(leaf_node.GetEntry(i));
          }
        }
      }
      continue;
    }
    for (uint16_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      const Entry e = node.GetEntry(i);
      if (leaf) {
        visit(e);
      } else {
        stack.push_back(e.child());
      }
    }
  }
}

std::vector<Entry> RTree::WindowQuery(const Rect& window,
                                      const AccessContext& ctx) const {
  std::vector<Entry> out;
  WindowQueryVisit(window, ctx, [&out](const Entry& e) { out.push_back(e); });
  return out;
}

std::vector<Entry> RTree::PointQuery(const Point& point,
                                     const AccessContext& ctx) const {
  return WindowQuery(Rect::FromPoint(point), ctx);
}

std::vector<Entry> RTree::NearestNeighbors(const Point& point, size_t k,
                                           const AccessContext& ctx) const {
  struct QueueItem {
    double dist;
    bool is_entry;
    PageId page;  // when !is_entry
    Entry entry;  // when is_entry
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.dist > b.dist;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  auto rect_distance = [&point](const Rect& r) {
    const double dx =
        std::max({r.xmin - point.x, 0.0, point.x - r.xmax});
    const double dy =
        std::max({r.ymin - point.y, 0.0, point.y - r.ymax});
    return dx * dx + dy * dy;
  };
  queue.push({0.0, false, root_, Entry{}});
  std::vector<Entry> out;
  while (!queue.empty() && out.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.is_entry) {
      out.push_back(item.entry);
      continue;
    }
    core::StatusOr<core::PageHandle> fetched = buffer_->Fetch(item.page, ctx);
    if (!fetched.ok()) {
      RecordIoError(fetched.status());
      continue;  // prune this subtree; nearer candidates may still complete
    }
    core::PageHandle page = std::move(fetched).value();
    const NodeView node(page.bytes());
    const uint16_t n = node.count();
    const bool leaf = node.is_leaf();
    for (uint16_t i = 0; i < n; ++i) {
      const Entry e = node.GetEntry(i);
      if (leaf) {
        queue.push({rect_distance(e.rect), true, storage::kInvalidPageId, e});
      } else {
        queue.push({rect_distance(e.rect), false, e.child(), Entry{}});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Offline inspection
// ---------------------------------------------------------------------------

namespace {

struct WalkResult {
  uint64_t objects = 0;
  uint32_t dir_pages = 0;
  uint32_t data_pages = 0;
  uint64_t dir_entries = 0;
  uint64_t data_entries = 0;
  std::string error;
};

/// Current image of a page: the (possibly newer) buffered copy when
/// resident, the disk copy otherwise. Costs no counted I/O.
std::span<const std::byte> PeekImage(const storage::DiskManager& disk,
                                     const core::PageSource* buffer,
                                     PageId id) {
  if (buffer != nullptr) {
    const std::span<const std::byte> resident = buffer->Peek(id);
    if (!resident.empty()) return resident;
  }
  return disk.PeekPage(id);
}

void OfflineWalk(const storage::DiskManager& disk,
                 const core::PageSource* buffer,
                 const RTreeConfig& config, PageId id, uint8_t expected_level,
                 bool is_root, WalkResult* out) {
  if (!out->error.empty()) return;
  std::span<const std::byte> raw = PeekImage(disk, buffer, id);
  // NodeView does not mutate through the const accessors used below.
  NodeView node(std::span<std::byte>(
      const_cast<std::byte*>(raw.data()), raw.size()));
  const storage::PageMeta meta = node.header().ToMeta();

  auto fail = [&](const std::string& what) {
    out->error = "page " + std::to_string(id) + ": " + what;
  };

  if (meta.level != expected_level) {
    fail("level " + std::to_string(meta.level) + " != expected " +
         std::to_string(expected_level));
    return;
  }
  const bool leaf = expected_level == 0;
  if (leaf && meta.type != storage::PageType::kData) {
    fail("leaf page with non-data type");
    return;
  }
  if (!leaf && meta.type != storage::PageType::kDirectory) {
    fail("inner page with non-directory type");
    return;
  }
  const uint32_t max_entries =
      leaf ? config.max_data_entries : config.max_dir_entries;
  const uint32_t min_entries =
      leaf ? config.min_data_entries() : config.min_dir_entries();
  if (meta.entry_count > max_entries) {
    fail("overfull node");
    return;
  }
  if (!is_root && meta.entry_count < min_entries) {
    fail("underfull node");
    return;
  }
  if (!leaf && is_root && meta.entry_count < 2) {
    fail("directory root with fewer than 2 entries");
    return;
  }

  const std::vector<Entry> entries = node.LoadEntries();
  std::vector<Rect> rects;
  rects.reserve(entries.size());
  for (const Entry& e : entries) rects.push_back(e.rect);
  const geom::EntryAggregates agg = geom::ComputeEntryAggregates(rects);
  if (!(agg.mbr == meta.mbr) && !entries.empty()) {
    fail("header MBR out of date");
    return;
  }
  const auto close = [](double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    return std::abs(a - b) <= 1e-9 * scale;
  };
  if (!close(agg.sum_entry_area, meta.sum_entry_area) ||
      !close(agg.sum_entry_margin, meta.sum_entry_margin) ||
      !close(agg.entry_overlap, meta.entry_overlap)) {
    fail("header aggregates out of date");
    return;
  }

  if (leaf) {
    ++out->data_pages;
    out->data_entries += entries.size();
    out->objects += entries.size();
    return;
  }
  ++out->dir_pages;
  out->dir_entries += entries.size();
  for (const Entry& e : entries) {
    const storage::PageMeta child =
        storage::ConstPageHeaderView(PeekImage(disk, buffer, e.child()).data())
            .ToMeta();
    if (!(child.mbr == e.rect)) {
      fail("entry rect differs from child MBR (child " +
           std::to_string(e.child()) + ")");
      return;
    }
    OfflineWalk(disk, buffer, config, e.child(),
                static_cast<uint8_t>(expected_level - 1), false, out);
    if (!out->error.empty()) return;
  }
}

}  // namespace

std::string RTree::Validate() const {
  WalkResult result;
  OfflineWalk(*disk_, buffer_, config_, root_,
              static_cast<uint8_t>(height_ - 1),
              /*is_root=*/true, &result);
  if (!result.error.empty()) return result.error;
  if (result.objects != size_) {
    return "object count mismatch: tree holds " +
           std::to_string(result.objects) + ", size() reports " +
           std::to_string(size_);
  }
  return "";
}

TreeStats RTree::ComputeStats() const {
  WalkResult result;
  OfflineWalk(*disk_, buffer_, config_, root_,
              static_cast<uint8_t>(height_ - 1),
              /*is_root=*/true, &result);
  TreeStats stats;
  stats.object_count = result.objects;
  stats.height = height_;
  stats.directory_pages = result.dir_pages;
  stats.data_pages = result.data_pages;
  stats.avg_dir_fill =
      result.dir_pages == 0
          ? 0.0
          : static_cast<double>(result.dir_entries) / result.dir_pages;
  stats.avg_data_fill =
      result.data_pages == 0
          ? 0.0
          : static_cast<double>(result.data_entries) / result.data_pages;
  return stats;
}

}  // namespace sdb::rtree
