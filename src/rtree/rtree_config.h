#ifndef SPATIALBUFFER_RTREE_RTREE_CONFIG_H_
#define SPATIALBUFFER_RTREE_RTREE_CONFIG_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sdb::rtree {

/// Which R-tree construction algorithm drives ChooseSubtree, splits, and
/// overflow handling.
enum class TreeVariant : uint32_t {
  /// Beckmann et al. 1990: overlap-aware ChooseSubtree at the leaf level,
  /// margin/overlap-driven topological split, forced reinsertion. The
  /// paper's trees.
  kRStar = 0,
  /// Guttman 1984 with the quadratic split (PickSeeds/PickNext) and pure
  /// area-enlargement ChooseSubtree; no reinsertion. Produces sloppier
  /// (more overlapping) pages — a structure baseline for the policies.
  kGuttmanQuadratic = 1,
  /// Guttman 1984 with the linear split.
  kGuttmanLinear = 2,
};

/// Structural parameters of the R-tree family. The defaults reproduce the
/// paper's trees: the R* variant, at most 51 entries per directory page and
/// 42 per data page (Sec. 3), the R* minimum fill of 40%, and forced
/// reinsertion of 30% of the entries on the first overflow per level.
struct RTreeConfig {
  TreeVariant variant = TreeVariant::kRStar;
  uint32_t max_dir_entries = 51;
  uint32_t max_data_entries = 42;
  double min_fill_fraction = 0.4;
  double reinsert_fraction = 0.3;

  uint32_t min_dir_entries() const {
    return std::max<uint32_t>(
        2, static_cast<uint32_t>(std::lround(min_fill_fraction *
                                             max_dir_entries)));
  }
  uint32_t min_data_entries() const {
    return std::max<uint32_t>(
        2, static_cast<uint32_t>(std::lround(min_fill_fraction *
                                             max_data_entries)));
  }
  /// Number of entries removed by one forced reinsertion of a node with
  /// `max + 1` entries; at least 1, and small enough that the node keeps its
  /// minimum fill.
  uint32_t reinsert_count(uint32_t max_entries) const {
    return std::clamp<uint32_t>(
        static_cast<uint32_t>(std::lround(reinsert_fraction *
                                          (max_entries + 1))),
        1, max_entries + 1 - 2);
  }
};

}  // namespace sdb::rtree

#endif  // SPATIALBUFFER_RTREE_RTREE_CONFIG_H_
