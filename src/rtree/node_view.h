#ifndef SPATIALBUFFER_RTREE_NODE_VIEW_H_
#define SPATIALBUFFER_RTREE_NODE_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/kernels/kernels.h"
#include "geom/rect.h"
#include "storage/page.h"

namespace sdb::rtree {

/// Reference from a data-page entry to the exact object representation in
/// the object store (object page id + slot).
struct ObjectRef {
  storage::PageId page = storage::kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

/// One R*-tree node entry. In a directory page, `id` is the child page id;
/// in a data page, `id` is the object id and `ref` points into the object
/// store.
struct Entry {
  geom::Rect rect;
  uint64_t id = 0;
  ObjectRef ref;

  storage::PageId child() const {
    return static_cast<storage::PageId>(id);
  }

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Structured accessor over the byte image of one R*-tree page (a directory
/// or data node). The node owns no memory — it wraps a pinned buffer frame
/// (or any page-sized byte span) and reads/writes the page in place.
///
/// On-page layout: the standard 64-byte storage header (which carries the
/// spatial aggregates used by the replacement policies), followed by an
/// array of fixed 48-byte entry records:
///   f64 xmin, ymin, xmax, ymax; u64 id; u32 obj_page; u16 obj_slot; u16 pad
class NodeView {
 public:
  static constexpr size_t kEntrySize = 48;

  /// Largest entry count a page of `page_size` bytes can hold.
  static constexpr uint32_t Capacity(size_t page_size) {
    return static_cast<uint32_t>(
        (page_size - storage::PageHeaderView::kHeaderSize) / kEntrySize);
  }

  explicit NodeView(std::span<std::byte> page) : page_(page) {}

  storage::PageHeaderView header() {
    return storage::PageHeaderView(page_.data());
  }
  storage::ConstPageHeaderView header() const {
    return storage::ConstPageHeaderView(page_.data());
  }

  /// Initializes an empty node of the given kind. `level` 0 = data page.
  void Init(uint8_t level);

  bool is_leaf() const { return header().type() == storage::PageType::kData; }
  uint8_t level() const { return header().level(); }
  uint16_t count() const { return header().entry_count(); }
  geom::Rect mbr() const { return header().mbr(); }

  Entry GetEntry(uint16_t i) const;
  void SetEntry(uint16_t i, const Entry& e);

  /// Appends without refreshing aggregates; call RefreshAggregates (or
  /// WriteEntries) once the batch of modifications is complete.
  void Append(const Entry& e);

  /// Copies all entries out.
  std::vector<Entry> LoadEntries() const;

  /// Deinterleaves the fixed-stride entry records' MBR coordinates into the
  /// caller's SoA scratch (growing it as needed, zero allocation once warm)
  /// and returns the entry count. The batch-kernel entry point: traversals
  /// thread one scratch through all visited nodes instead of copying
  /// entries into per-node vectors.
  uint16_t GatherCoords(geom::kernels::SoaBuffer* coords) const;

  /// GatherCoords + dispatched IntersectMask in one step: after the call,
  /// (*mask)[i] is 1 iff entry i intersects `query` (closed-set semantics).
  /// Returns the hit count; `coords`/`mask` are reused scratch.
  size_t ScanEntries(const geom::Rect& query,
                     geom::kernels::SoaBuffer* coords,
                     std::vector<uint8_t>* mask) const;

  /// Replaces the entry array and refreshes the header aggregates.
  void WriteEntries(std::span<const Entry> entries);

  /// Recomputes MBR / Σarea / Σmargin / pairwise overlap from the current
  /// entries and stores them in the header, keeping the replacement
  /// policies' view of the page accurate.
  void RefreshAggregates();

 private:
  std::byte* EntryPtr(uint16_t i);
  const std::byte* EntryPtr(uint16_t i) const;

  std::span<std::byte> page_;
};

}  // namespace sdb::rtree

#endif  // SPATIALBUFFER_RTREE_NODE_VIEW_H_
