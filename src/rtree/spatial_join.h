#ifndef SPATIALBUFFER_RTREE_SPATIAL_JOIN_H_
#define SPATIALBUFFER_RTREE_SPATIAL_JOIN_H_

#include <functional>

#include "rtree/rtree.h"

namespace sdb::rtree {

/// Counters of one spatial-join execution.
struct JoinStats {
  uint64_t result_pairs = 0;
  uint64_t node_pairs_visited = 0;
  /// Node pairs skipped because one side's page could not be read; nonzero
  /// means the reported pairs are a subset of the true join.
  uint64_t io_errors = 0;
};

/// R-tree spatial join by synchronized traversal [Brinkhoff, Kriegel &
/// Seeger, SIGMOD 1993]: descends both trees simultaneously, only into pairs
/// of subtrees whose directory rectangles intersect, and reports every pair
/// of data entries with intersecting rectangles.
///
/// This implements the paper's future-work item 2 ("study the influence of
/// the strategies on ... spatial joins"): each tree performs its page I/O
/// through its own buffer manager, so join I/O can be measured per policy.
JoinStats SpatialJoin(
    const RTree& left, const RTree& right, const core::AccessContext& ctx,
    const std::function<void(const Entry&, const Entry&)>& visit);

/// Convenience overload that only counts result pairs.
JoinStats SpatialJoinCount(const RTree& left, const RTree& right,
                           const core::AccessContext& ctx);

}  // namespace sdb::rtree

#endif  // SPATIALBUFFER_RTREE_SPATIAL_JOIN_H_
