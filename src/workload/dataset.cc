#include "workload/dataset.h"

#include <algorithm>
#include <cmath>

namespace sdb::workload {

geom::Rect DatasetMbr(const Dataset& dataset) {
  geom::Rect mbr;
  for (const SpatialObject& object : dataset.objects) {
    mbr.Extend(object.rect);
  }
  return mbr;
}

double TotalPopulation(const PlacesTable& places) {
  double total = 0.0;
  for (const Place& place : places.places) total += place.population;
  return total;
}

double CoverageFraction(const Dataset& dataset, size_t grid) {
  if (grid == 0) return 0.0;
  const geom::Rect space = dataset.data_space;
  // For each grid cell, test whether any object MBR (dilated by half a cell
  // via cell-rect intersection) meets it. O(objects * hit cells) via
  // rasterizing each object into the grid.
  std::vector<char> hit(grid * grid, 0);
  const double cell_w = space.width() / static_cast<double>(grid);
  const double cell_h = space.height() / static_cast<double>(grid);
  if (cell_w <= 0.0 || cell_h <= 0.0) return 0.0;
  const auto cell_index = [grid](double value, double origin, double cell) {
    const long idx = static_cast<long>(std::floor((value - origin) / cell));
    return static_cast<size_t>(
        std::clamp(idx, 0L, static_cast<long>(grid) - 1));
  };
  for (const SpatialObject& object : dataset.objects) {
    const size_t x0 = cell_index(object.rect.xmin, space.xmin, cell_w);
    const size_t x1 = cell_index(object.rect.xmax, space.xmin, cell_w);
    const size_t y0 = cell_index(object.rect.ymin, space.ymin, cell_h);
    const size_t y1 = cell_index(object.rect.ymax, space.ymin, cell_h);
    for (size_t y = y0; y <= y1; ++y) {
      for (size_t x = x0; x <= x1; ++x) {
        hit[y * grid + x] = 1;
      }
    }
  }
  size_t covered = 0;
  for (char c : hit) covered += c;
  return static_cast<double>(covered) / static_cast<double>(grid * grid);
}

}  // namespace sdb::workload
