#include "workload/data_generator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace sdb::workload {

namespace {

using geom::Point;
using geom::Rect;

/// Clamps a point into a rectangle.
Point ClampInto(const Point& p, const Rect& r) {
  return Point{std::clamp(p.x, r.xmin, r.xmax),
               std::clamp(p.y, r.ymin, r.ymax)};
}

Point UniformIn(Rng& rng, const Rect& r) {
  return Point{rng.Uniform(r.xmin, r.xmax), rng.Uniform(r.ymin, r.ymax)};
}

/// Builds the exact geometry of one object around an anchor point and
/// returns it together with its MBR.
SpatialObject MakeObject(Rng& rng, uint64_t id, const Point& anchor,
                         bool extended, double max_extent) {
  SpatialObject object;
  object.id = id;
  if (!extended) {
    object.vertices = {anchor};
    object.rect = Rect::FromPoint(anchor);
    return object;
  }
  // A short polyline wandering from the anchor: 3..8 vertices within the
  // extent box, like a road/river/boundary fragment.
  const int n = 3 + static_cast<int>(rng.NextBelow(6));
  Point cursor = anchor;
  object.vertices.reserve(n);
  Rect mbr;
  for (int i = 0; i < n; ++i) {
    object.vertices.push_back(cursor);
    mbr.Extend(cursor);
    cursor.x += rng.Uniform(-max_extent / 2, max_extent / 2);
    cursor.y += rng.Uniform(-max_extent / 2, max_extent / 2);
  }
  object.rect = mbr;
  return object;
}

}  // namespace

MapParams UsLikeParams(double scale, uint64_t seed) {
  MapParams params;
  params.name = "us-like";
  params.seed = seed;
  params.object_count =
      static_cast<size_t>(std::llround(200'000.0 * scale));
  params.cluster_count = 400;
  params.place_count = 5'000;
  // GNIS-like: features everywhere on the mainland, with strong clustering
  // around populated places.
  params.background_fraction = 0.25;
  // One mainland block spanning nearly the whole square: mirroring a point
  // at x = 0.5 lands on the mainland again.
  params.land = {Rect(0.04, 0.08, 0.96, 0.92)};
  return params;
}

MapParams WorldLikeParams(double scale, uint64_t seed) {
  MapParams params;
  params.name = "world-like";
  params.seed = seed;
  params.object_count =
      static_cast<size_t>(std::llround(120'000.0 * scale));
  params.cluster_count = 300;
  params.place_count = 4'000;
  params.cluster_sigma = 0.010;
  // Disjoint continents covering roughly a quarter of the space, placed so
  // their x-mirror images fall mostly onto water.
  params.land = {
      Rect(0.05, 0.55, 0.33, 0.93),  // "north-west continent"
      Rect(0.10, 0.08, 0.30, 0.42),  // "south-west continent"
      Rect(0.42, 0.58, 0.58, 0.88),  // small central landmass
      Rect(0.47, 0.12, 0.61, 0.34),  // southern island group
      Rect(0.70, 0.62, 0.88, 0.90),  // "north-east continent"
  };
  return params;
}

GeneratedMap GenerateMap(const MapParams& params) {
  SDB_CHECK(!params.land.empty());
  SDB_CHECK(params.object_count > 0);
  SDB_CHECK(params.cluster_count > 0);
  Rng rng(params.seed);

  GeneratedMap out;
  out.dataset.name = params.name;
  out.dataset.data_space = Rect(0.0, 0.0, 1.0, 1.0);
  out.dataset.objects.reserve(params.object_count);

  // Land patches are sampled proportionally to their area.
  std::vector<double> land_weights;
  land_weights.reserve(params.land.size());
  for (const Rect& patch : params.land) land_weights.push_back(patch.Area());
  const WeightedSampler land_sampler(land_weights);

  // Cluster centers with Zipf-skewed weights; the weight doubles as the
  // relative population of the cluster's main place.
  struct Cluster {
    Point center;
    Rect patch;
    double weight;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(params.cluster_count);
  std::vector<double> cluster_weights;
  cluster_weights.reserve(params.cluster_count);
  for (size_t i = 0; i < params.cluster_count; ++i) {
    const Rect& patch = params.land[land_sampler.Sample(rng)];
    const double weight =
        1.0 / std::pow(static_cast<double>(i + 1), params.zipf_exponent);
    clusters.push_back({UniformIn(rng, patch), patch, weight});
    cluster_weights.push_back(weight);
  }
  const WeightedSampler cluster_sampler(cluster_weights);

  // Objects: clustered around the centers plus a uniform background.
  for (size_t i = 0; i < params.object_count; ++i) {
    Point anchor;
    if (rng.NextDouble() < params.background_fraction) {
      anchor = UniformIn(rng, params.land[land_sampler.Sample(rng)]);
    } else {
      const Cluster& cluster = clusters[cluster_sampler.Sample(rng)];
      anchor = ClampInto(
          Point{cluster.center.x + rng.NextGaussian() * params.cluster_sigma,
                cluster.center.y + rng.NextGaussian() * params.cluster_sigma},
          cluster.patch);
    }
    const bool extended = rng.NextDouble() < params.extended_fraction;
    out.dataset.objects.push_back(MakeObject(
        rng, static_cast<uint64_t>(i + 1), anchor, extended,
        params.max_object_extent));
  }

  // Places: the cluster centers themselves (population proportional to the
  // cluster weight) plus secondary places scattered within clusters.
  const double population_unit = 1'000'000.0;
  out.places.places.reserve(params.cluster_count + params.place_count);
  for (const Cluster& cluster : clusters) {
    out.places.places.push_back(
        Place{cluster.center, cluster.weight * population_unit});
  }
  for (size_t i = 0; i < params.place_count; ++i) {
    const Cluster& cluster = clusters[cluster_sampler.Sample(rng)];
    const Point location = ClampInto(
        Point{cluster.center.x + rng.NextGaussian() * params.cluster_sigma,
              cluster.center.y + rng.NextGaussian() * params.cluster_sigma},
        cluster.patch);
    // Secondary places are small towns: a random fraction of the cluster's
    // population, skewed toward small values.
    const double share = std::pow(rng.NextDouble(), 3.0) * 0.2 + 0.0005;
    out.places.places.push_back(
        Place{location, cluster.weight * population_unit * share});
  }
  return out;
}

}  // namespace sdb::workload
