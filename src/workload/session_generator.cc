#include "workload/session_generator.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"

namespace sdb::workload {

QuerySet MakeSessionQuerySet(const SessionParams& params,
                             const PlacesTable& places) {
  SDB_CHECK(params.steps > 0);
  SDB_CHECK_MSG(!places.places.empty(), "sessions need jump targets");
  SDB_CHECK(params.pan_probability + params.zoom_probability <= 1.0);
  SDB_CHECK(params.min_extent > 0 &&
            params.min_extent <= params.max_extent);

  // Bookmark targets: the most populated places.
  std::vector<const Place*> ranked;
  ranked.reserve(places.places.size());
  for (const Place& place : places.places) ranked.push_back(&place);
  std::sort(ranked.begin(), ranked.end(),
            [](const Place* a, const Place* b) {
              return a->population > b->population;
            });
  const size_t bookmarks =
      std::min(std::max<size_t>(1, params.bookmark_count), ranked.size());

  Rng rng(params.seed);
  QuerySet session;
  session.name = "SESSION";
  session.family = QueryFamily::kSimilar;  // closest family semantically
  session.ex = 0;
  session.queries.reserve(params.steps);

  geom::Point center{0.5, 0.5};
  double extent = params.initial_extent;
  for (size_t i = 0; i < params.steps; ++i) {
    const double action = rng.NextDouble();
    if (action < params.pan_probability) {
      center.x += rng.Uniform(-extent / 2, extent / 2);
      center.y += rng.Uniform(-extent / 2, extent / 2);
    } else if (action < params.pan_probability + params.zoom_probability) {
      extent *= (rng.NextDouble() < 0.5 ? 0.5 : 2.0);
      extent = std::clamp(extent, params.min_extent, params.max_extent);
    } else {
      center = ranked[rng.NextBelow(bookmarks)]->location;
      extent = std::clamp(params.initial_extent / 4, params.min_extent,
                          params.max_extent);
    }
    center.x = std::clamp(center.x, 0.0, 1.0);
    center.y = std::clamp(center.y, 0.0, 1.0);
    session.queries.push_back(geom::Rect::Centered(center, extent, extent));
  }
  return session;
}

}  // namespace sdb::workload
