#ifndef SPATIALBUFFER_WORKLOAD_SESSION_GENERATOR_H_
#define SPATIALBUFFER_WORKLOAD_SESSION_GENERATOR_H_

#include <cstdint>

#include "workload/dataset.h"
#include "workload/query_generator.h"

namespace sdb::workload {

/// Parameters of an interactive map-browsing session: a Markov mixture of
/// viewport pans, zoom steps, and jumps to popular places ("bookmarks").
///
/// The paper's five query distributions are i.i.d. draws; real GIS clients
/// issue *sessions* whose consecutive viewports overlap heavily (pans) but
/// occasionally teleport (jumps). Sessions therefore mix strong spatial
/// locality with hot-spot revisits — a workload class none of the paper's
/// sets covers, and a natural stress test for the adaptable buffer.
struct SessionParams {
  size_t steps = 2000;
  double pan_probability = 0.65;   ///< small viewport move
  double zoom_probability = 0.20;  ///< halve/double the viewport edge
  /// remaining probability: jump to one of the `bookmark_count` most
  /// populated places
  size_t bookmark_count = 20;
  double initial_extent = 1.0 / 20;  ///< viewport edge length
  double min_extent = 1.0 / 320;
  double max_extent = 1.0 / 10;
  uint64_t seed = 1;
};

/// Generates one browsing session as a query set (name "SESSION"). Requires
/// a non-empty places table for the jump targets.
QuerySet MakeSessionQuerySet(const SessionParams& params,
                             const PlacesTable& places);

}  // namespace sdb::workload

#endif  // SPATIALBUFFER_WORKLOAD_SESSION_GENERATOR_H_
