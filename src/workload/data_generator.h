#ifndef SPATIALBUFFER_WORKLOAD_DATA_GENERATOR_H_
#define SPATIALBUFFER_WORKLOAD_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/dataset.h"

namespace sdb::workload {

/// Parameters of the clustered synthetic-map generator.
///
/// Real geographic feature sets (the paper uses USGS GNIS features of the US
/// mainland and a world atlas) are strongly clustered: most features sit
/// near populated places, a minority is spread as background, and a share of
/// the features are extended (lines/areas) rather than points. The generator
/// reproduces those properties inside configurable "land" regions.
struct MapParams {
  std::string name = "synthetic";
  uint64_t seed = 1;
  size_t object_count = 200'000;
  size_t cluster_count = 400;
  size_t place_count = 5'000;     ///< populated places derived from clusters
  double cluster_sigma = 0.012;   ///< std-dev of a cluster (data space units)
  double background_fraction = 0.15;  ///< objects spread uniformly over land
  double extended_fraction = 0.45;    ///< polyline objects (rest are points)
  double max_object_extent = 0.004;   ///< max edge length of an object MBR
  double zipf_exponent = 0.9;     ///< skew of cluster weights/populations
  /// Land regions; clusters and background objects fall only inside these.
  std::vector<geom::Rect> land;
};

/// Result of a generation run: the dataset plus the correlated places table
/// (one place per cluster and `place_count` secondary places).
struct GeneratedMap {
  Dataset dataset;
  PlacesTable places;
};

/// Parameters mimicking database 1 (US mainland, paper Sec. 3): one large
/// land region covering most of the unit square, so that x-mirrored query
/// points still fall onto land. `scale` multiplies the object count
/// (1.0 = 200k objects).
MapParams UsLikeParams(double scale = 1.0, uint64_t seed = 42);

/// Parameters mimicking database 2 (world atlas): several disjoint
/// "continents" covering only ~1/4 of the space and placed x-asymmetric, so
/// most x-mirrored query points fall into empty "water" — the property
/// driving the paper's Fig. 9 result for the independent distribution.
MapParams WorldLikeParams(double scale = 1.0, uint64_t seed = 77);

/// Runs the generator. Deterministic in params.seed.
GeneratedMap GenerateMap(const MapParams& params);

}  // namespace sdb::workload

#endif  // SPATIALBUFFER_WORKLOAD_DATA_GENERATOR_H_
