#include "workload/query_generator.h"

#include <cmath>
#include <memory>

#include "common/macros.h"
#include "common/random.h"

namespace sdb::workload {

namespace {

using geom::Point;
using geom::Rect;

std::string FamilyPrefix(QueryFamily family) {
  switch (family) {
    case QueryFamily::kUniform:
      return "U";
    case QueryFamily::kIdentical:
      return "ID";
    case QueryFamily::kSimilar:
      return "S";
    case QueryFamily::kIntensified:
      return "INT";
    case QueryFamily::kIndependent:
      return "IND";
  }
  return "?";
}

/// Samples one place index according to the family's selection rule.
size_t SamplePlace(Rng& rng, const WeightedSampler* intensified,
                   size_t place_count, QueryFamily family) {
  if (family == QueryFamily::kIntensified) {
    SDB_CHECK(intensified != nullptr);
    return intensified->Sample(rng);
  }
  return static_cast<size_t>(rng.NextBelow(place_count));
}

}  // namespace

std::string QuerySetName(QueryFamily family, int ex) {
  std::string name = FamilyPrefix(family);
  if (ex == 0) {
    name += "-P";
  } else {
    name += "-W";
    // ID-W maintains object sizes, so it carries no extent suffix in the
    // paper; every other family appends the reciprocal extent.
    if (family != QueryFamily::kIdentical) {
      name += "-" + std::to_string(ex);
    }
  }
  return name;
}

QuerySet MakeQuerySet(const QuerySpec& spec, const Dataset& dataset,
                      const PlacesTable& places) {
  SDB_CHECK(spec.count > 0);
  SDB_CHECK(spec.ex >= 0);
  Rng rng(spec.seed);

  QuerySet set;
  set.family = spec.family;
  set.ex = spec.ex;
  set.name = QuerySetName(spec.family, spec.ex);
  set.queries.reserve(spec.count);

  const Rect space = dataset.data_space;
  const double window_w =
      spec.ex == 0 ? 0.0 : space.width() / static_cast<double>(spec.ex);
  const double window_h =
      spec.ex == 0 ? 0.0 : space.height() / static_cast<double>(spec.ex);

  // Intensified selection: probability proportional to sqrt(population).
  std::unique_ptr<WeightedSampler> intensified;
  if (spec.family == QueryFamily::kIntensified) {
    SDB_CHECK_MSG(!places.places.empty(),
                  "intensified queries need a places table");
    std::vector<double> weights;
    weights.reserve(places.places.size());
    for (const Place& place : places.places) {
      weights.push_back(std::sqrt(std::max(0.0, place.population)));
    }
    intensified = std::make_unique<WeightedSampler>(weights);
  }

  for (size_t i = 0; i < spec.count; ++i) {
    switch (spec.family) {
      case QueryFamily::kUniform: {
        // Uniform over the *whole* data space — deliberately including the
        // regions where no objects are stored.
        const Point p{rng.Uniform(space.xmin, space.xmax),
                      rng.Uniform(space.ymin, space.ymax)};
        set.queries.push_back(spec.ex == 0
                                  ? Rect::FromPoint(p)
                                  : Rect::Centered(p, window_w, window_h));
        break;
      }
      case QueryFamily::kIdentical: {
        const SpatialObject& object = dataset.objects[static_cast<size_t>(
            rng.NextBelow(dataset.objects.size()))];
        if (spec.ex == 0) {
          set.queries.push_back(Rect::FromPoint(object.rect.Center()));
        } else {
          // "For the window queries, the size of the objects is maintained."
          set.queries.push_back(object.rect);
        }
        break;
      }
      case QueryFamily::kSimilar:
      case QueryFamily::kIntensified:
      case QueryFamily::kIndependent: {
        SDB_CHECK_MSG(!places.places.empty(),
                      "place-based queries need a places table");
        const size_t index = SamplePlace(rng, intensified.get(),
                                         places.places.size(), spec.family);
        Point p = places.places[index].location;
        if (spec.family == QueryFamily::kIndependent) {
          // Flip the x-coordinate: a place in the west queries the east.
          p.x = space.xmin + space.xmax - p.x;
        }
        set.queries.push_back(spec.ex == 0
                                  ? Rect::FromPoint(p)
                                  : Rect::Centered(p, window_w, window_h));
        break;
      }
    }
  }
  return set;
}

QuerySet ConcatQuerySets(const std::vector<QuerySet>& sets) {
  SDB_CHECK(!sets.empty());
  QuerySet out;
  out.family = sets.front().family;
  out.ex = sets.front().ex;
  for (size_t i = 0; i < sets.size(); ++i) {
    if (i > 0) out.name += "+";
    out.name += sets[i].name;
    out.queries.insert(out.queries.end(), sets[i].queries.begin(),
                       sets[i].queries.end());
  }
  return out;
}

}  // namespace sdb::workload
