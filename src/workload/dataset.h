#ifndef SPATIALBUFFER_WORKLOAD_DATASET_H_
#define SPATIALBUFFER_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace sdb::workload {

/// One spatial object of a synthetic dataset: an MBR plus the exact vertex
/// geometry (one vertex = point feature, several = polyline feature).
struct SpatialObject {
  uint64_t id = 0;
  geom::Rect rect;
  std::vector<geom::Point> vertices;
};

/// A generated spatial database.
struct Dataset {
  std::string name;
  geom::Rect data_space;           ///< full query space (the unit square)
  std::vector<SpatialObject> objects;
};

/// A populated place (city/town) — the basis of the similar, intensified and
/// independent query distributions, standing in for the paper's US places
/// file from the USGS GNIS.
struct Place {
  geom::Point location;
  double population = 0.0;
};

struct PlacesTable {
  std::vector<Place> places;
};

/// MBR over all objects of the dataset.
geom::Rect DatasetMbr(const Dataset& dataset);

/// Sum of the place populations (normalization constant of the intensified
/// distribution).
double TotalPopulation(const PlacesTable& places);

/// Fraction of `probe` sample points (on a regular grid over the data
/// space) that hit at least one object MBR — a cheap coverage measure used
/// to verify that the US-like dataset covers most of the space while the
/// world-like dataset leaves most of it empty.
double CoverageFraction(const Dataset& dataset, size_t grid = 64);

}  // namespace sdb::workload

#endif  // SPATIALBUFFER_WORKLOAD_DATASET_H_
