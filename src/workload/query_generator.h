#ifndef SPATIALBUFFER_WORKLOAD_QUERY_GENERATOR_H_
#define SPATIALBUFFER_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/dataset.h"

namespace sdb::workload {

/// The five query-distribution families of the paper (Sec. 3.1).
enum class QueryFamily {
  kUniform,      ///< U: uniform over the whole data space (incl. empty areas)
  kIdentical,    ///< ID: randomly selected database objects
  kSimilar,      ///< S: populated places, selected uniformly
  kIntensified,  ///< INT: places, probability ~ sqrt(population)
  kIndependent,  ///< IND: like S but with x-coordinates flipped
};

/// One ready-to-run query set: window rectangles (point queries are
/// degenerate windows), plus its paper-style name such as "U-W-33" or
/// "INT-P".
struct QuerySet {
  std::string name;
  QueryFamily family = QueryFamily::kUniform;
  /// 0 for point queries, otherwise the reciprocal extent: the window's
  /// x-extension is 1/ex of the data space's x-extension.
  int ex = 0;
  std::vector<geom::Rect> queries;

  bool is_point() const { return ex == 0; }
};

/// Specification of a query set to generate.
struct QuerySpec {
  QueryFamily family = QueryFamily::kUniform;
  /// 0 = point queries; otherwise window queries with x-extent 1/ex of the
  /// data space (the paper uses ex in {33, 100, 333, 1000}).
  int ex = 0;
  size_t count = 1000;
  uint64_t seed = 1;
};

/// Paper-style name, e.g. {kUniform, 33} -> "U-W-33", {kIntensified, 0} ->
/// "INT-P".
std::string QuerySetName(QueryFamily family, int ex);

/// Generates a query set over the given database and places table.
/// For the identical family, window queries reuse the selected object's MBR
/// ("the size of the objects is maintained"); for every other family,
/// windows are squares of the spec'd extent centered at the sampled point.
QuerySet MakeQuerySet(const QuerySpec& spec, const Dataset& dataset,
                      const PlacesTable& places);

/// Concatenates query sets into one (for the Fig. 14 mixed workload). The
/// result's name joins the inputs with '+'.
QuerySet ConcatQuerySets(const std::vector<QuerySet>& sets);

}  // namespace sdb::workload

#endif  // SPATIALBUFFER_WORKLOAD_QUERY_GENERATOR_H_
